// Command nimage-eval regenerates the paper's evaluation (Sec. 7): the
// page-fault reductions of Figures 2 and 3, the execution-time speedups of
// Figures 4 and 5, the profiling-overhead table of Sec. 7.4, the
// accessed-object fraction of Sec. 7.2, and the Fig. 6 page-grid
// visualization. Results are printed as ASCII charts and written as CSV
// files into the output directory. The geomean factors of every figure are
// additionally collected into a benchmark-baseline document
// (BENCH_baseline.json), and the "report" experiment writes the
// consolidated observability document (output/report.json).
//
// Usage:
//
//	nimage-eval [-figure all|2|3|4|5|overhead|accessed|6|report] [-builds N] [-iters N] [-device ssd|nfs] [-out output]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nimage/internal/core"
	"nimage/internal/eval"
	"nimage/internal/osim"
	"nimage/internal/textviz"
	"nimage/internal/workloads"
)

// benchSchema identifies the benchmark-baseline document format.
const benchSchema = "nimage.bench/v1"

// benchDoc is the committed benchmark baseline: the per-strategy geometric
// means of every figure, so regressions in the headline factors are a JSON
// diff away.
type benchDoc struct {
	Schema     string                        `json:"schema"`
	Device     string                        `json:"device"`
	Builds     int                           `json:"builds"`
	Iterations int                           `json:"iterations"`
	Figures    map[string]map[string]float64 `json:"figures"`
}

func main() {
	figure := flag.String("figure", "all", "which experiment: all|2|3|4|5|overhead|accessed|6|report")
	builds := flag.Int("builds", 3, "images per strategy (paper: 10)")
	iters := flag.Int("iters", 3, "cold runs per image (paper: 10)")
	device := flag.String("device", "ssd", "storage device: ssd|nfs")
	out := flag.String("out", "output", "output directory for CSV/PPM files")
	bench := flag.String("bench", "BENCH_baseline.json", "benchmark-baseline JSON path (empty = skip)")
	viz := flag.String("viz-workload", "Bounce", "workload of the Fig. 6 visualization")
	workers := flag.Int("workers", 0, "concurrent build+measure tasks (0 = GOMAXPROCS; results are identical for every count)")
	flag.Parse()

	cfg := eval.DefaultConfig()
	cfg.Builds = *builds
	cfg.Iterations = *iters
	cfg.Workers = *workers
	if *device == "nfs" {
		cfg.Device = osim.NFS()
	}
	h := eval.NewHarness(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	start := time.Now()
	run := func(name string, f func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		if err := f(); err != nil {
			fail(fmt.Errorf("figure %s: %w", name, err))
		}
	}

	baseline := benchDoc{
		Schema: benchSchema, Device: cfg.Device.Name,
		Builds: cfg.Builds, Iterations: cfg.Iterations,
		Figures: map[string]map[string]float64{},
	}
	table := func(key, file string, make func() (*eval.Table, error)) error {
		t, err := make()
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		path := filepath.Join(*out, file)
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		geo := map[string]float64{}
		for _, s := range t.Strategies {
			// Degenerate cells carry NaN factors, which encoding/json rejects.
			if c := t.Get(eval.GeoMeanRow, s); c != nil && !c.Degenerate {
				geo[s] = c.Factor
			}
		}
		if len(geo) > 0 {
			baseline.Figures[key] = geo
		}
		return nil
	}

	run("2", func() error { return table("figure2-pagefaults-awfy", "figure2-pagefaults-awfy.csv", h.Figure2) })
	run("3", func() error {
		return table("figure3-pagefaults-microservices", "figure3-pagefaults-microservices.csv", h.Figure3)
	})
	run("4", func() error {
		return table("figure4-speedup-microservices", "figure4-speedup-microservices.csv", h.Figure4)
	})
	run("5", func() error { return table("figure5-speedup-awfy", "figure5-speedup-awfy.csv", h.Figure5) })
	run("overhead", func() error {
		return table("overhead", "overhead.csv", func() (*eval.Table, error) { return h.Overhead(workloads.All()) })
	})
	run("accessed", func() error {
		fracs, err := h.AccessedFraction(workloads.AWFY())
		if err != nil {
			return err
		}
		names := make([]string, 0, len(fracs))
		for n := range fracs {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		sb.WriteString("workload,accessed_fraction\n")
		sum := 0.0
		fmt.Println("Accessed snapshot-object fraction (Sec. 7.2; paper: ~4% on AWFY)")
		for _, n := range names {
			fmt.Printf("  %-12s %5.1f%%\n", n, 100*fracs[n])
			fmt.Fprintf(&sb, "%s,%.4f\n", n, fracs[n])
			sum += fracs[n]
		}
		fmt.Printf("  %-12s %5.1f%%\n", "mean", 100*sum/float64(len(fracs)))
		path := filepath.Join(*out, "accessed-fraction.csv")
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	})
	run("6", func() error {
		regular, optimized, err := h.Figure6(*viz)
		if err != nil {
			return err
		}
		txt := textviz.SideBySide(
			fmt.Sprintf("Figure 6a: %s .text, regular binary", *viz), regular,
			fmt.Sprintf("Figure 6b: %s .text, cu-ordered binary", *viz), optimized,
			64)
		fmt.Println(txt)
		if err := os.WriteFile(filepath.Join(*out, "figure6.txt"), []byte(txt), 0o644); err != nil {
			return err
		}
		for _, part := range []struct {
			name   string
			states []osim.PageState
		}{{"figure6a-regular.ppm", regular}, {"figure6b-cu.ppm", optimized}} {
			path := filepath.Join(*out, part.name)
			if err := os.WriteFile(path, []byte(textviz.PPM(part.states, 64, 4)), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
		return nil
	})
	run("report", func() error {
		// The observability deep-dive is deliberately small: one image and
		// one cold run per configuration carry full per-event records
		// (pipeline stage spans, per-section fault timelines, match
		// breakdowns, profiler dump statistics), which would be wasteful at
		// the figures' build counts.
		rcfg := cfg
		rcfg.Builds = 1
		rcfg.Iterations = 1
		rcfg.Observe = true
		rh := eval.NewHarness(rcfg)
		var ws []workloads.Workload
		for _, name := range []string{"Bounce", "micronaut"} {
			w, err := workloads.ByName(name)
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		rep, err := rh.Report(ws, []string{core.StrategyCU, core.StrategyHeapPath, core.StrategyCombined})
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "report.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("Observability report: %d entries over %d workloads\n", len(rep.Entries), len(ws))
		for _, e := range rep.Entries {
			label := e.Strategy
			if label == "" {
				label = "baseline"
			}
			var stages int
			if len(e.Pipeline) > 0 {
				stages = len(e.Pipeline[0].Spans)
			}
			var faults int
			if len(e.Runs) > 0 {
				if tl := e.Runs[0].Timeline("osim.faults"); tl != nil {
					faults = len(tl.Events)
				}
			}
			fmt.Printf("  %-10s %-12s %2d pipeline spans, %4d fault events\n",
				e.Workload, label, stages, faults)
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	})

	if *bench != "" && len(baseline.Figures) > 0 {
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*bench, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d figures)\n", *bench, len(baseline.Figures))
	}

	wall := time.Since(start)
	fmt.Printf("done in %v (builds=%d, iterations=%d, device=%s)\n",
		wall.Round(time.Millisecond), cfg.Builds, cfg.Iterations, cfg.Device.Name)
	if work := h.WorkDuration(); work > 0 && wall > 0 {
		fmt.Printf("scheduler: %d workers, %v of build+measure work in %v wall clock (%.2fx)\n",
			h.Workers(), work.Round(time.Millisecond), wall.Round(time.Millisecond),
			work.Seconds()/wall.Seconds())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nimage-eval:", err)
	os.Exit(1)
}
