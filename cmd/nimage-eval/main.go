// Command nimage-eval regenerates the paper's evaluation (Sec. 7): the
// page-fault reductions of Figures 2 and 3, the execution-time speedups of
// Figures 4 and 5, the profiling-overhead table of Sec. 7.4, the
// accessed-object fraction of Sec. 7.2, and the Fig. 6 page-grid
// visualization. Results are printed as ASCII charts and written as CSV
// files into the output directory.
//
// Usage:
//
//	nimage-eval [-figure all|2|3|4|5|overhead|accessed|6] [-builds N] [-iters N] [-device ssd|nfs] [-out output]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nimage/internal/eval"
	"nimage/internal/osim"
	"nimage/internal/textviz"
	"nimage/internal/workloads"
)

func main() {
	figure := flag.String("figure", "all", "which experiment: all|2|3|4|5|overhead|accessed|6")
	builds := flag.Int("builds", 3, "images per strategy (paper: 10)")
	iters := flag.Int("iters", 3, "cold runs per image (paper: 10)")
	device := flag.String("device", "ssd", "storage device: ssd|nfs")
	out := flag.String("out", "output", "output directory for CSV/PPM files")
	viz := flag.String("viz-workload", "Bounce", "workload of the Fig. 6 visualization")
	flag.Parse()

	cfg := eval.DefaultConfig()
	cfg.Builds = *builds
	cfg.Iterations = *iters
	if *device == "nfs" {
		cfg.Device = osim.NFS()
	}
	h := eval.NewHarness(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	start := time.Now()
	run := func(name string, f func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		if err := f(); err != nil {
			fail(fmt.Errorf("figure %s: %w", name, err))
		}
	}

	table := func(file string, make func() (*eval.Table, error)) error {
		t, err := make()
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		path := filepath.Join(*out, file)
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	}

	run("2", func() error { return table("figure2-pagefaults-awfy.csv", h.Figure2) })
	run("3", func() error { return table("figure3-pagefaults-microservices.csv", h.Figure3) })
	run("4", func() error { return table("figure4-speedup-microservices.csv", h.Figure4) })
	run("5", func() error { return table("figure5-speedup-awfy.csv", h.Figure5) })
	run("overhead", func() error {
		return table("overhead.csv", func() (*eval.Table, error) { return h.Overhead(workloads.All()) })
	})
	run("accessed", func() error {
		fracs, err := h.AccessedFraction(workloads.AWFY())
		if err != nil {
			return err
		}
		names := make([]string, 0, len(fracs))
		for n := range fracs {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		sb.WriteString("workload,accessed_fraction\n")
		sum := 0.0
		fmt.Println("Accessed snapshot-object fraction (Sec. 7.2; paper: ~4% on AWFY)")
		for _, n := range names {
			fmt.Printf("  %-12s %5.1f%%\n", n, 100*fracs[n])
			fmt.Fprintf(&sb, "%s,%.4f\n", n, fracs[n])
			sum += fracs[n]
		}
		fmt.Printf("  %-12s %5.1f%%\n", "mean", 100*sum/float64(len(fracs)))
		path := filepath.Join(*out, "accessed-fraction.csv")
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	})
	run("6", func() error {
		regular, optimized, err := h.Figure6(*viz)
		if err != nil {
			return err
		}
		txt := textviz.SideBySide(
			fmt.Sprintf("Figure 6a: %s .text, regular binary", *viz), regular,
			fmt.Sprintf("Figure 6b: %s .text, cu-ordered binary", *viz), optimized,
			64)
		fmt.Println(txt)
		if err := os.WriteFile(filepath.Join(*out, "figure6.txt"), []byte(txt), 0o644); err != nil {
			return err
		}
		for _, part := range []struct {
			name   string
			states []osim.PageState
		}{{"figure6a-regular.ppm", regular}, {"figure6b-cu.ppm", optimized}} {
			path := filepath.Join(*out, part.name)
			if err := os.WriteFile(path, []byte(textviz.PPM(part.states, 64, 4)), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
		return nil
	})

	fmt.Printf("done in %v (builds=%d, iterations=%d, device=%s)\n",
		time.Since(start).Round(time.Millisecond), cfg.Builds, cfg.Iterations, cfg.Device.Name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nimage-eval:", err)
	os.Exit(1)
}
