// Command nimage-eval regenerates the paper's evaluation (Sec. 7): the
// page-fault reductions of Figures 2 and 3, the execution-time speedups of
// Figures 4 and 5, the profiling-overhead table of Sec. 7.4, the
// accessed-object fraction of Sec. 7.2, and the Fig. 6 page-grid
// visualization. Results are printed as ASCII charts and written as CSV
// files into the output directory. The geomean factors of every figure are
// additionally collected into a benchmark-baseline document
// (BENCH_baseline.json), the "serve" experiment writes its own slice —
// warm-burst latency, re-fault, and layout-scorecard geomeans — to
// output/BENCH_serve.json, and the "report" experiment writes the
// consolidated observability document (output/report.json).
//
// The "slo" experiment is the serve SLO observatory: concurrent request
// streams at several pressure levels, per-strategy SLO attainment and
// error-budget burn (output/BENCH_slo.json, nimage.slo/v1, plus
// serve-slo-p*.csv), with a telemetry-on/off overhead control reported
// alongside.
//
// The "search" experiment runs the SLO-driven layout search on every
// serve workload and scores the searched layout against the c3 and
// ext-tsp seeds on the search's own objective (output/BENCH_search.json,
// per-workload nimage.search/v1 journals, plus search-iterations.csv).
//
// The "fleet" experiment is the multi-tenant observatory: mixed-strategy
// tenant fleets share ONE page cache at each tenant count, and the
// per-strategy SLO attainment, isolation-factor geomeans, and fairness
// spreads land in output/BENCH_fleet.json with the who-evicted-whom
// matrices in output/fleet-interference.csv.
//
// Usage:
//
//	nimage-eval [-figure all|2|3|4|5|overhead|accessed|6|serve|slo|search|fleet|report] [-workloads Bounce,micronaut]
//	            [-builds N] [-iters N] [-device ssd|nfs] [-out output]
//	            [-streams N] [-slo "p50=100us,p99=2ms"] [-slo-bursts N]
//	            [-search-iters N] [-search-topk N]
//	            [-tenants 2,4,8] [-budget PAGES] [-quota PCT] [-bursts N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nimage/internal/core"
	"nimage/internal/eval"
	"nimage/internal/obs"
	"nimage/internal/osim"
	"nimage/internal/textviz"
	"nimage/internal/workloads"
)

// benchSchema identifies the benchmark-baseline document format.
const benchSchema = "nimage.bench/v1"

// benchDoc is the committed benchmark baseline: the per-strategy geometric
// means of every figure, so regressions in the headline factors are a JSON
// diff away.
type benchDoc struct {
	Schema     string                        `json:"schema"`
	Device     string                        `json:"device"`
	Builds     int                           `json:"builds"`
	Iterations int                           `json:"iterations"`
	Figures    map[string]map[string]float64 `json:"figures"`
}

// geomean is the geometric mean of a set of positive factors.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// parseWorkloadFilter resolves a comma-separated -workloads value; an empty
// value means "no filter" (nil set).
func parseWorkloadFilter(list string) (map[string]bool, error) {
	if list == "" {
		return nil, nil
	}
	keep := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := workloads.ByName(name); err != nil {
			return nil, err
		}
		keep[name] = true
	}
	return keep, nil
}

// filterWorkloads restricts a figure's workload set to the -workloads
// selection. A nil filter keeps the set unchanged.
func filterWorkloads(ws []workloads.Workload, keep map[string]bool) []workloads.Workload {
	if keep == nil {
		return ws
	}
	var out []workloads.Workload
	for _, w := range ws {
		if keep[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// parseFleetTenants resolves the -tenants list of the fleet experiment.
// Each term is a tenant count; a fleet of one is a serve run, so counts
// below 2 are rejected rather than clamped.
func parseFleetTenants(list string) ([]int, error) {
	var out []int
	for _, t := range strings.Split(list, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(t, "%d", &n); err != nil || fmt.Sprint(n) != t {
			return nil, fmt.Errorf("-tenants terms must be integers, got %q", t)
		}
		if n < 2 {
			return nil, fmt.Errorf("-tenants terms must be >= 2 (a fleet of one is a serve run), got %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants must name at least one tenant count")
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nimage-eval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nimage-eval", flag.ContinueOnError)
	figure := fs.String("figure", "all", "which experiment: all|2|3|4|5|overhead|accessed|6|serve|slo|search|fleet|report")
	builds := fs.Int("builds", 3, "images per strategy (paper: 10)")
	iters := fs.Int("iters", 3, "cold runs per image (paper: 10)")
	device := fs.String("device", "ssd", "storage device: ssd|nfs")
	out := fs.String("out", "output", "output directory for CSV/PPM files")
	bench := fs.String("bench", "BENCH_baseline.json", "benchmark-baseline JSON path (empty = skip)")
	viz := fs.String("viz-workload", "Bounce", "workload of the Fig. 6 visualization")
	workers := fs.Int("workers", 0, "concurrent build+measure tasks (0 = GOMAXPROCS; results are identical for every count)")
	wfilter := fs.String("workloads", "", "comma-separated workload filter applied to every experiment (empty = full sets)")
	streams := fs.Int("streams", 2, "concurrent request streams of the slo experiment")
	sloFlag := fs.String("slo", "", "SLO targets of the slo experiment as p<quantile>=<duration> terms (empty = defaults)")
	sloBursts := fs.Int("slo-bursts", 0, "request bursts of the slo experiment (0 = serve default)")
	searchIters := fs.Int("search-iters", 2, "search iterations of the search experiment")
	searchTopK := fs.Int("search-topk", 2, "candidates promoted per iteration in the search experiment")
	fleetTenants := fs.String("tenants", "2,4,8", "comma-separated tenant counts of the fleet experiment (each >= 2)")
	fleetBudget := fs.Int("budget", 192, "shared resident-page budget of the fleet experiment")
	fleetQuota := fs.Int("quota", 0, "per-tenant residency quota of the fleet experiment, percent of the budget (0 = none)")
	fleetBursts := fs.Int("bursts", 4, "request bursts per tenant in the fleet experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject out-of-range sizing instead of clamping: zero builds or
	// iterations would silently measure nothing, and a negative worker
	// count is neither a cap nor the GOMAXPROCS default (that's 0).
	if *builds < 1 {
		return fmt.Errorf("-builds must be >= 1, got %d", *builds)
	}
	if *iters < 1 {
		return fmt.Errorf("-iters must be >= 1, got %d", *iters)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *streams < 1 {
		return fmt.Errorf("-streams must be >= 1 (concurrent request streams), got %d", *streams)
	}
	if *sloBursts < 0 {
		return fmt.Errorf("-slo-bursts must be >= 0 (0 = serve default), got %d", *sloBursts)
	}
	if *searchIters < 1 || *searchIters > 4096 {
		return fmt.Errorf("-search-iters must be between 1 and 4096, got %d", *searchIters)
	}
	if *searchTopK < 1 || *searchTopK > 1024 {
		return fmt.Errorf("-search-topk must be between 1 and 1024, got %d", *searchTopK)
	}
	fleetCounts, err := parseFleetTenants(*fleetTenants)
	if err != nil {
		return err
	}
	if *fleetQuota < 0 || *fleetQuota > 100 {
		return fmt.Errorf("-quota must be between 0 and 100 (percent of the shared budget), got %d", *fleetQuota)
	}
	if *fleetBudget <= 0 {
		return fmt.Errorf("-budget must be positive (shared resident pages of the fleet experiment), got %d", *fleetBudget)
	}
	if *fleetBursts <= 0 {
		return fmt.Errorf("-bursts must be positive (request bursts per tenant), got %d", *fleetBursts)
	}
	var sloTargets []obs.SLOTarget
	if *sloFlag != "" {
		var err error
		if sloTargets, err = obs.ParseSLOTargets(*sloFlag); err != nil {
			return err
		}
	}
	keep, err := parseWorkloadFilter(*wfilter)
	if err != nil {
		return err
	}

	cfg := eval.DefaultConfig()
	cfg.Builds = *builds
	cfg.Iterations = *iters
	cfg.Workers = *workers
	if *device == "nfs" {
		cfg.Device = osim.NFS()
	}
	h := eval.NewHarness(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	start := time.Now()
	var runErr error
	run := func(name string, f func() error) {
		if runErr != nil || (*figure != "all" && *figure != name) {
			return
		}
		if err := f(); err != nil {
			runErr = fmt.Errorf("figure %s: %w", name, err)
		}
	}

	baseline := benchDoc{
		Schema: benchSchema, Device: cfg.Device.Name,
		Builds: cfg.Builds, Iterations: cfg.Iterations,
		Figures: map[string]map[string]float64{},
	}
	table := func(key, file string, make func() (*eval.Table, error)) error {
		t, err := make()
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		path := filepath.Join(*out, file)
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		geo := map[string]float64{}
		for _, s := range t.Strategies {
			// Degenerate cells carry NaN factors, which encoding/json rejects.
			if c := t.Get(eval.GeoMeanRow, s); c != nil && !c.Degenerate {
				geo[s] = c.Factor
			}
		}
		if len(geo) > 0 {
			baseline.Figures[key] = geo
		}
		return nil
	}
	// figureTable runs one figure over its (possibly filtered) workload set;
	// a filter that empties the set skips the figure rather than failing, so
	// "-workloads Bounce" works with "-figure all".
	figureTable := func(key, file, title string, ws []workloads.Workload,
		make func(string, []workloads.Workload) (*eval.Table, error)) error {
		ws = filterWorkloads(ws, keep)
		if len(ws) == 0 {
			fmt.Printf("%s: no selected workloads, skipped\n\n", key)
			return nil
		}
		return table(key, file, func() (*eval.Table, error) { return make(title, ws) })
	}

	run("2", func() error {
		return figureTable("figure2-pagefaults-awfy", "figure2-pagefaults-awfy.csv",
			"Figure 2: page-fault reduction on AWFY", workloads.AWFY(), h.PageFaultTable)
	})
	run("3", func() error {
		return figureTable("figure3-pagefaults-microservices", "figure3-pagefaults-microservices.csv",
			"Figure 3: page-fault reduction on microservices", workloads.Microservices(), h.PageFaultTable)
	})
	run("4", func() error {
		return figureTable("figure4-speedup-microservices", "figure4-speedup-microservices.csv",
			"Figure 4: execution-time speedup on microservices", workloads.Microservices(), h.SpeedupTable)
	})
	run("5", func() error {
		return figureTable("figure5-speedup-awfy", "figure5-speedup-awfy.csv",
			"Figure 5: execution-time speedup on AWFY", workloads.AWFY(), h.SpeedupTable)
	})
	run("overhead", func() error {
		ws := filterWorkloads(workloads.All(), keep)
		if len(ws) == 0 {
			fmt.Printf("overhead: no selected workloads, skipped\n\n")
			return nil
		}
		return table("overhead", "overhead.csv", func() (*eval.Table, error) { return h.Overhead(ws) })
	})
	run("accessed", func() error {
		ws := filterWorkloads(workloads.AWFY(), keep)
		if len(ws) == 0 {
			fmt.Printf("accessed: no selected workloads, skipped\n\n")
			return nil
		}
		fracs, err := h.AccessedFraction(ws)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(fracs))
		for n := range fracs {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		sb.WriteString("workload,accessed_fraction\n")
		sum := 0.0
		fmt.Println("Accessed snapshot-object fraction (Sec. 7.2; paper: ~4% on AWFY)")
		for _, n := range names {
			fmt.Printf("  %-12s %5.1f%%\n", n, 100*fracs[n])
			fmt.Fprintf(&sb, "%s,%.4f\n", n, fracs[n])
			sum += fracs[n]
		}
		fmt.Printf("  %-12s %5.1f%%\n", "mean", 100*sum/float64(len(fracs)))
		path := filepath.Join(*out, "accessed-fraction.csv")
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	})
	run("6", func() error {
		regular, optimized, err := h.Figure6(*viz)
		if err != nil {
			return err
		}
		txt := textviz.SideBySide(
			fmt.Sprintf("Figure 6a: %s .text, regular binary", *viz), regular,
			fmt.Sprintf("Figure 6b: %s .text, cu-ordered binary", *viz), optimized,
			64)
		fmt.Println(txt)
		if err := os.WriteFile(filepath.Join(*out, "figure6.txt"), []byte(txt), 0o644); err != nil {
			return err
		}
		for _, part := range []struct {
			name   string
			states []osim.PageState
		}{{"figure6a-regular.ppm", regular}, {"figure6b-cu.ppm", optimized}} {
			path := filepath.Join(*out, part.name)
			if err := os.WriteFile(path, []byte(textviz.PPM(part.states, 64, 4)), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
		return nil
	})
	run("serve", func() error {
		// Serve-mode comparison: warm-burst latency and re-fault volume per
		// layout under mild and severe inter-burst pressure, plus the static
		// layout scorecards predicted from the baseline affinity recording.
		ws := filterWorkloads(workloads.Serve(), keep)
		if len(ws) == 0 {
			fmt.Printf("serve: no selected workloads, skipped\n\n")
			return nil
		}
		// The scorecards need the co-access recording, so the serve figure
		// runs on an affinity-tracking harness; latency/re-fault tables share
		// it, keeping every serve run measured exactly once.
		acfg := cfg
		acfg.TrackAffinity = true
		ah := eval.NewHarness(acfg)
		for _, p := range []int{30, 70} {
			scfg := eval.DefaultServeConfig()
			scfg.PressurePct = p
			lat := func() (*eval.Table, error) { return ah.ServeLatencyTable(ws, scfg, nil) }
			ref := func() (*eval.Table, error) { return ah.ServeRefaultTable(ws, scfg, nil) }
			if err := table(fmt.Sprintf("serve-latency-p%d", p),
				fmt.Sprintf("serve-latency-p%d.csv", p), lat); err != nil {
				return err
			}
			if err := table(fmt.Sprintf("serve-refaults-p%d", p),
				fmt.Sprintf("serve-refaults-p%d.csv", p), ref); err != nil {
				return err
			}
			var sb strings.Builder
			sb.WriteString("workload,strategy,pressure_pct,locality,avg_window_pages,peak_window_pages,predicted_refaults,predicted_cold_pages,refault_factor\n")
			factors := map[string][]float64{}
			for _, w := range ws {
				_, cards, err := ah.AffinityScorecards(w, scfg, nil)
				if err != nil {
					return err
				}
				fmt.Println(textviz.ScorecardTable(cards))
				for _, c := range cards {
					fmt.Fprintf(&sb, "%s,%s,%d,%.4f,%.2f,%d,%d,%d,%.4f\n",
						c.Workload, c.Strategy, c.PressurePct, c.LocalityScore,
						c.AvgWindowPages, c.PeakWindowPages,
						c.PredictedRefaults, c.PredictedColdPages,
						c.PredictedRefaultFactor)
					if c.Strategy != eval.LayoutBaseline && c.PredictedRefaultFactor > 0 {
						factors[c.Strategy] = append(factors[c.Strategy], c.PredictedRefaultFactor)
					}
				}
			}
			path := filepath.Join(*out, fmt.Sprintf("serve-scorecards-p%d.csv", p))
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
			geo := map[string]float64{}
			for s, fs := range factors {
				geo[s] = geomean(fs)
			}
			if len(geo) > 0 {
				baseline.Figures[fmt.Sprintf("serve-scorecards-p%d", p)] = geo
			}
		}
		// BENCH_serve.json is the serve slice of the bench doc — the
		// per-strategy warm-burst latency, measured re-fault, and predicted
		// scorecard geomeans per pressure — written unconditionally so the
		// nightly job and local runs get the serve baseline without -bench.
		serve := benchDoc{
			Schema: benchSchema, Device: cfg.Device.Name,
			Builds: cfg.Builds, Iterations: cfg.Iterations,
			Figures: map[string]map[string]float64{},
		}
		for key, geo := range baseline.Figures {
			if strings.HasPrefix(key, "serve-") {
				serve.Figures[key] = geo
			}
		}
		data, err := json.MarshalIndent(serve, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "BENCH_serve.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d figures)\n\n", path, len(serve.Figures))
		return nil
	})
	run("slo", func() error {
		// Serve SLO observatory: every layout scored against the latency
		// SLOs over concurrent request streams at each pressure level, with
		// the telemetry-on/off overhead control alongside.
		ws := filterWorkloads(workloads.Serve(), keep)
		if len(ws) == 0 {
			fmt.Printf("slo: no selected workloads, skipped\n\n")
			return nil
		}
		scfg := eval.DefaultServeConfig()
		scfg.Streams = *streams
		if *sloBursts > 0 {
			scfg.Bursts = *sloBursts
		}
		pressures := eval.DefaultSLOPressures()
		rep, err := h.SLOReport(ws, nil, scfg, sloTargets, pressures)
		if err != nil {
			return err
		}
		var labels []string
		for _, t := range rep.Targets {
			labels = append(labels, t.String())
		}
		rows := make([]textviz.SLORow, 0, len(rep.Entries)*len(rep.Targets))
		for _, e := range rep.Entries {
			for _, a := range e.Attainments {
				rows = append(rows, textviz.SLORow{
					Workload: e.Workload, Strategy: e.Strategy,
					PressurePct: e.PressurePct,
					Quantile:    a.Quantile, BudgetNanos: a.BudgetNanos,
					MeasuredNanos: a.MeasuredNanos,
					Violations:    a.Violations, Requests: a.Requests,
					BudgetBurn: a.BudgetBurn, Attained: a.Attained,
				})
			}
		}
		fmt.Println(textviz.SLOTable(fmt.Sprintf("SLO attainment (%d streams, targets %s)",
			rep.Streams, strings.Join(labels, " ")), rows))
		orows := make([]textviz.SLOOverheadRow, 0, len(rep.Overhead))
		for _, o := range rep.Overhead {
			orows = append(orows, textviz.SLOOverheadRow{
				Workload: o.Workload, Strategy: o.Strategy,
				OnWallNanosPerReq:  o.OnWallNanosPerReq,
				OffWallNanosPerReq: o.OffWallNanosPerReq,
				OverheadFrac:       o.OverheadFrac,
				SimIdentical:       o.SimIdentical,
			})
		}
		fmt.Println(textviz.SLOOverheadTable(orows))
		// One attainment CSV per pressure level, mirroring the serve CSVs.
		for _, p := range pressures {
			var sb strings.Builder
			sb.WriteString("workload,strategy,pressure_pct,streams,target,budget_nanos,measured_nanos,violations,requests,violation_frac,budget_burn,attained\n")
			for _, e := range rep.Entries {
				if e.PressurePct != p {
					continue
				}
				for _, a := range e.Attainments {
					fmt.Fprintf(&sb, "%s,%s,%d,%d,%s,%.0f,%.0f,%d,%d,%.6f,%.4f,%t\n",
						e.Workload, e.Strategy, e.PressurePct, e.Streams,
						obs.SLOTarget{Quantile: a.Quantile, BudgetNanos: a.BudgetNanos},
						a.BudgetNanos, a.MeasuredNanos, a.Violations, a.Requests,
						a.ViolationFrac, a.BudgetBurn, a.Attained)
				}
			}
			path := filepath.Join(*out, fmt.Sprintf("serve-slo-p%d.csv", p))
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		// BENCH_slo.json is the nimage.slo/v1 document itself.
		path := filepath.Join(*out, "BENCH_slo.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := obs.WriteSLOReport(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d entries, %d overhead controls)\n\n", path, len(rep.Entries), len(rep.Overhead))
		return nil
	})
	run("search", func() error {
		// SLO-driven layout search: run the budget-bounded rebake loop on
		// every serve workload, journal each trajectory, and score the
		// searched layout against the c3/ext-tsp seeds on the search's own
		// objective. The search and the comparison rows run on a
		// single-build harness, where the slo-search row reproduces the
		// in-loop measurement of the winner bit for bit.
		ws := filterWorkloads(workloads.Serve(), keep)
		if len(ws) == 0 {
			fmt.Printf("search: no selected workloads, skipped\n\n")
			return nil
		}
		scfg2 := eval.DefaultSearchConfig()
		scfg2.BudgetIters = *searchIters
		scfg2.TopK = *searchTopK
		scfg := cfg
		scfg.Builds = 1
		scfg.Iterations = 1
		sh := eval.NewHarness(scfg)
		strategies := []string{core.StrategyC3, core.StrategyExtTSP, core.StrategySLOSearch}
		var csv strings.Builder
		csv.WriteString("workload,iter,candidate,op,order_digest,predicted_refaults,predicted_locality,promoted,attained,targets,budget_burn,refault_geomean,accepted,reason\n")
		attained := map[int]map[string][]float64{}
		factors := map[int]map[string][]float64{}
		for _, w := range ws {
			res, err := sh.SearchLayout(w, scfg2)
			if err != nil {
				return err
			}
			rep := res.Journal
			rows := make([]textviz.SearchRow, 0, len(rep.Iterations))
			for _, it := range rep.Iterations {
				for _, c := range it.Candidates {
					rows = append(rows, textviz.SearchRow{
						Iter: it.Iter, Candidate: c.ID, Op: c.Op,
						PredictedRefaults: c.PredictedRefaults,
						Promoted:          c.Promoted,
						Attained:          c.Attained, Targets: c.Targets,
						RefaultGeomean: c.RefaultGeomean,
						Accepted:       c.Accepted, Reason: c.Reason,
					})
					fmt.Fprintf(&csv, "%s,%d,%s,%s,%s,%d,%.4f,%t,%d,%d,%.4f,%.4f,%t,%s\n",
						w.Name, it.Iter, c.ID, c.Op, c.OrderDigest,
						c.PredictedRefaults, c.PredictedLocality, c.Promoted,
						c.Attained, c.Targets, c.BudgetBurn, c.RefaultGeomean,
						c.Accepted, c.Reason)
				}
			}
			fmt.Println(textviz.SearchTable(fmt.Sprintf(
				"Layout search (%s, %d iterations, top-%d, pressures %v)",
				w.Name, rep.BudgetIters, rep.TopK, rep.Pressures), rows))
			jpath := filepath.Join(*out, fmt.Sprintf("search-%s.json", w.Name))
			jf, err := os.Create(jpath)
			if err != nil {
				return err
			}
			if err := obs.WriteSearchReport(jf, rep); err != nil {
				jf.Close()
				return err
			}
			if err := jf.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s (winner %s, attained %d/%d)\n\n",
				jpath, rep.Final.Candidate, rep.Final.Attained, rep.Final.Targets)
			// The comparison rows: every strategy scored on the search's own
			// objective from its memoized build-0 serve measurements.
			fmt.Printf("search objective per strategy (%s)\n", w.Name)
			for _, s := range strategies {
				sc, err := sh.MeasuredSearchScore(w, s, scfg2)
				if err != nil {
					return err
				}
				fmt.Printf("  %-12s attained %d/%d, refault-factor geomean %.3f, budget burn %.3f\n",
					s, sc.Attained, sc.Targets, sc.RefaultGeomean, sc.BudgetBurn)
				for _, ps := range sc.PerPressure {
					if attained[ps.PressurePct] == nil {
						attained[ps.PressurePct] = map[string][]float64{}
						factors[ps.PressurePct] = map[string][]float64{}
					}
					if ps.Targets > 0 {
						attained[ps.PressurePct][s] = append(attained[ps.PressurePct][s],
							float64(ps.Attained)/float64(ps.Targets))
					}
					if ps.RefaultFactor > 0 {
						factors[ps.PressurePct][s] = append(factors[ps.PressurePct][s], ps.RefaultFactor)
					}
				}
			}
			fmt.Println()
		}
		cpath := filepath.Join(*out, "search-iterations.csv")
		if err := os.WriteFile(cpath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cpath)
		// BENCH_search.json: per-pressure attained fraction (mean over
		// workloads) and refault-factor geomean per strategy.
		for p, byStrat := range attained {
			geo := map[string]float64{}
			for s, fs := range byStrat {
				sum := 0.0
				for _, f := range fs {
					sum += f
				}
				geo[s] = sum / float64(len(fs))
			}
			baseline.Figures[fmt.Sprintf("search-attained-p%d", p)] = geo
		}
		for p, byStrat := range factors {
			geo := map[string]float64{}
			for s, fs := range byStrat {
				geo[s] = geomean(fs)
			}
			baseline.Figures[fmt.Sprintf("search-refault-factor-p%d", p)] = geo
		}
		search := benchDoc{
			Schema: benchSchema, Device: cfg.Device.Name,
			Builds: 1, Iterations: 1,
			Figures: map[string]map[string]float64{},
		}
		for key, geo := range baseline.Figures {
			if strings.HasPrefix(key, "search-") {
				search.Figures[key] = geo
			}
		}
		data, err := json.MarshalIndent(search, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "BENCH_search.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d figures)\n\n", path, len(search.Figures))
		return nil
	})
	run("fleet", func() error {
		// Multi-tenant fleet observatory: at each tenant count, a
		// mixed-strategy fleet shares ONE page cache. The bench slice
		// carries the per-strategy SLO-attainment means, the isolation
		// geomeans vs each tenant's solo run, and the fairness spread
		// (min/max isolation across the fleet); the CSV carries the
		// who-evicted-whom matrices.
		ws := filterWorkloads(workloads.Serve(), keep)
		if len(ws) == 0 {
			fmt.Printf("fleet: no selected workloads, skipped\n\n")
			return nil
		}
		strategies := []string{core.StrategyCombined, core.StrategyC3, core.StrategyExtTSP, core.StrategySLOSearch}
		// One image per tenant layout: fleet interference is a property of
		// the shared cache, not of build-seed noise.
		fhcfg := cfg
		fhcfg.Builds = 1
		fhcfg.Iterations = 1
		fh := eval.NewHarness(fhcfg)
		var csv strings.Builder
		csv.WriteString("tenants,evictor,owner,pages\n")
		fairness := map[string]float64{}
		for _, n := range fleetCounts {
			if max := len(ws) * len(strategies); n > max {
				fmt.Printf("fleet: %d tenants exceeds the %d distinct workload×strategy pairs, skipped\n\n", n, max)
				continue
			}
			// Diagonal traversal of the workload×strategy grid: small fleets
			// already mix strategies instead of replaying one column.
			specs := make([]eval.TenantSpec, 0, n)
			for i := 0; i < n; i++ {
				specs = append(specs, eval.TenantSpec{
					Workload: ws[i%len(ws)].Name,
					Strategy: strategies[(i/len(ws)+i%len(ws))%len(strategies)],
					QuotaPct: *fleetQuota,
				})
			}
			fos, err := fh.MeasureFleet(eval.FleetConfig{
				Tenants:     specs,
				Bursts:      *fleetBursts,
				PressurePct: 40,
				CacheBudget: *fleetBudget,
			})
			if err != nil {
				return err
			}
			fo := fos[0]
			rows := make([]textviz.FleetRow, 0, len(fo.Tenants))
			for _, t := range fo.Tenants {
				att := 0
				for _, a := range t.Attainment {
					if a.Attained {
						att++
					}
				}
				rows = append(rows, textviz.FleetRow{
					Tenant: t.Tenant, Workload: t.Spec.Workload, Strategy: t.Spec.Strategy,
					QuotaPages: t.QuotaPages, StartupNanos: t.StartupNanos,
					WarmMeanNanos: t.WarmMeanNanos, WarmP99Nanos: t.WarmP99Nanos,
					MajorFaults: t.Counters.MajorFaults, Refaults: t.Counters.Refaults,
					EvictedPages: t.EvictedPages, ResidentPages: int64(t.ResidentPages),
					SLOAttained: att, SLOTargets: len(t.Attainment),
					IsolationLatency: t.IsolationLatency, IsolationRefault: t.IsolationRefault,
				})
			}
			fmt.Print(textviz.FleetTable(fmt.Sprintf(
				"Fleet scorecard (%d tenants, budget %d pages, quota %d%%)",
				n, *fleetBudget, *fleetQuota), rows))
			fmt.Println()
			fmt.Println(textviz.FleetMatrix(fo.EvictedBy, fo.TotalEvictions))
			label := func(i int) string {
				if i == 0 {
					return "ext"
				}
				t := fo.Tenants[i-1]
				return fmt.Sprintf("t%02d:%s/%s", t.Tenant, t.Spec.Workload, t.Spec.Strategy)
			}
			for i, row := range fo.EvictedBy {
				for j := 1; j < len(row); j++ {
					fmt.Fprintf(&csv, "%d,%s,%s,%d\n", n, label(i), label(j), row[j])
				}
			}
			attained := map[string][]float64{}
			isolation := map[string][]float64{}
			isoMin, isoMax := math.Inf(1), 0.0
			for _, t := range fo.Tenants {
				att := 0
				for _, a := range t.Attainment {
					if a.Attained {
						att++
					}
				}
				if len(t.Attainment) > 0 {
					attained[t.Spec.Strategy] = append(attained[t.Spec.Strategy],
						float64(att)/float64(len(t.Attainment)))
				}
				if t.IsolationLatency > 0 {
					isolation[t.Spec.Strategy] = append(isolation[t.Spec.Strategy], t.IsolationLatency)
					isoMin = math.Min(isoMin, t.IsolationLatency)
					isoMax = math.Max(isoMax, t.IsolationLatency)
				}
			}
			geoAtt := map[string]float64{}
			for s, fs := range attained {
				sum := 0.0
				for _, f := range fs {
					sum += f
				}
				geoAtt[s] = sum / float64(len(fs))
			}
			baseline.Figures[fmt.Sprintf("fleet-attained-t%d", n)] = geoAtt
			geoIso := map[string]float64{}
			for s, fs := range isolation {
				geoIso[s] = geomean(fs)
			}
			if len(geoIso) > 0 {
				baseline.Figures[fmt.Sprintf("fleet-isolation-t%d", n)] = geoIso
			}
			if isoMax > 0 {
				fairness[fmt.Sprintf("t%d", n)] = isoMin / isoMax
			}
		}
		if len(fairness) > 0 {
			baseline.Figures["fleet-fairness"] = fairness
		}
		cpath := filepath.Join(*out, "fleet-interference.csv")
		if err := os.WriteFile(cpath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cpath)
		// BENCH_fleet.json is the fleet slice of the bench doc.
		fleet := benchDoc{
			Schema: benchSchema, Device: cfg.Device.Name,
			Builds: 1, Iterations: 1,
			Figures: map[string]map[string]float64{},
		}
		for key, geo := range baseline.Figures {
			if strings.HasPrefix(key, "fleet-") {
				fleet.Figures[key] = geo
			}
		}
		data, err := json.MarshalIndent(fleet, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "BENCH_fleet.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d figures)\n\n", path, len(fleet.Figures))
		return nil
	})
	run("report", func() error {
		// The observability deep-dive is deliberately small: one image and
		// one cold run per configuration carry full per-event records
		// (pipeline stage spans, per-section fault timelines, match
		// breakdowns, profiler dump statistics), which would be wasteful at
		// the figures' build counts.
		rcfg := cfg
		rcfg.Builds = 1
		rcfg.Iterations = 1
		rcfg.Observe = true
		rh := eval.NewHarness(rcfg)
		var ws []workloads.Workload
		for _, name := range []string{"Bounce", "micronaut"} {
			if keep != nil && !keep[name] {
				continue
			}
			w, err := workloads.ByName(name)
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		if len(ws) == 0 {
			fmt.Printf("report: no selected workloads, skipped\n\n")
			return nil
		}
		// The report covers the serve-relevant layouts from the registry
		// (text-only, heap-only, combined, and the graph-based two), so a
		// newly registered serve strategy appears here without a list edit.
		rep, err := rh.Report(ws, core.ServeStrategyNames())
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "report.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("Observability report: %d entries over %d workloads\n", len(rep.Entries), len(ws))
		for _, e := range rep.Entries {
			label := e.Strategy
			if label == "" {
				label = "baseline"
			}
			var stages int
			if len(e.Pipeline) > 0 {
				stages = len(e.Pipeline[0].Spans)
			}
			var faults int
			if len(e.Runs) > 0 {
				if tl := e.Runs[0].Timeline("osim.faults"); tl != nil {
					faults = len(tl.Events)
				}
			}
			fmt.Printf("  %-10s %-12s %2d pipeline spans, %4d fault events\n",
				e.Workload, label, stages, faults)
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	})
	if runErr != nil {
		return runErr
	}

	if *bench != "" && len(baseline.Figures) > 0 {
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*bench, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d figures)\n", *bench, len(baseline.Figures))
	}

	wall := time.Since(start)
	fmt.Printf("done in %v (builds=%d, iterations=%d, device=%s)\n",
		wall.Round(time.Millisecond), cfg.Builds, cfg.Iterations, cfg.Device.Name)
	if work := h.WorkDuration(); work > 0 && wall > 0 {
		fmt.Printf("scheduler: %d workers, %v of build+measure work in %v wall clock (%.2fx)\n",
			h.Workers(), work.Round(time.Millisecond), wall.Round(time.Millisecond),
			work.Seconds()/wall.Seconds())
	}
	return nil
}
