package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nimage/internal/eval"
)

// TestRunFigure2Filtered smoke-tests the CLI end to end on a single
// workload: the figure CSV and the benchmark-baseline document must land in
// the chosen paths with the committed schema.
func TestRunFigure2Filtered(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "BENCH_baseline.json")
	err := run([]string{
		"-figure", "2", "-workloads", "Bounce",
		"-builds", "1", "-iters", "1",
		"-out", dir, "-bench", bench,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure2-pagefaults-awfy.csv")); err != nil {
		t.Errorf("figure CSV missing: %v", err)
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, benchSchema)
	}
	geo := doc.Figures["figure2-pagefaults-awfy"]
	if len(geo) == 0 {
		t.Fatalf("no geomeans recorded: %+v", doc.Figures)
	}
	for s, f := range geo {
		if f <= 0 {
			t.Errorf("strategy %s: non-positive geomean factor %v", s, f)
		}
	}
}

// TestRunReportFiltered smoke-tests the observability report path: the
// report document must carry its schema and at least one entry for the
// selected workload.
func TestRunReportFiltered(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-figure", "report", "-workloads", "Bounce",
		"-out", dir, "-bench", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Entries []struct {
			Workload string `json:"workload"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != eval.ReportSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, eval.ReportSchema)
	}
	if len(doc.Entries) == 0 {
		t.Fatal("report has no entries")
	}
	for _, e := range doc.Entries {
		if e.Workload != "Bounce" {
			t.Errorf("unexpected workload %q with -workloads Bounce", e.Workload)
		}
	}
}

// TestRunServeFiltered smoke-tests the serve figure: latency, re-fault,
// and scorecard tables must land for both pressure levels, with geomeans
// in the benchmark-baseline document and the serve slice in
// BENCH_serve.json.
func TestRunServeFiltered(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "BENCH_baseline.json")
	err := run([]string{
		"-figure", "serve", "-workloads", "serve-api",
		"-builds", "1", "-iters", "1",
		"-out", dir, "-bench", bench,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"serve-latency-p30.csv", "serve-refaults-p30.csv",
		"serve-latency-p70.csv", "serve-refaults-p70.csv",
		"serve-scorecards-p30.csv", "serve-scorecards-p70.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("figure CSV %s missing: %v", f, err)
		}
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Figures["serve-latency-p30"]) == 0 || len(doc.Figures["serve-latency-p70"]) == 0 {
		t.Fatalf("no serve geomeans recorded: %+v", doc.Figures)
	}
	if len(doc.Figures["serve-scorecards-p30"]) == 0 {
		t.Fatalf("no scorecard geomeans recorded: %+v", doc.Figures)
	}

	sdata, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var sdoc benchDoc
	if err := json.Unmarshal(sdata, &sdoc); err != nil {
		t.Fatal(err)
	}
	if sdoc.Schema != benchSchema {
		t.Errorf("BENCH_serve schema = %q, want %q", sdoc.Schema, benchSchema)
	}
	// Re-fault geomeans can be legitimately absent (a fully degenerate
	// zero-refault column at low pressure), so only latency and scorecard
	// figures are required.
	for _, key := range []string{
		"serve-latency-p30", "serve-scorecards-p30",
		"serve-latency-p70", "serve-scorecards-p70",
	} {
		if len(sdoc.Figures[key]) == 0 {
			t.Errorf("BENCH_serve figure %s missing: %+v", key, sdoc.Figures)
		}
	}
	for key, geo := range sdoc.Figures {
		if !strings.HasPrefix(key, "serve-") {
			t.Errorf("non-serve figure %q in BENCH_serve.json", key)
		}
		for s, f := range geo {
			if f <= 0 {
				t.Errorf("%s: strategy %s: non-positive geomean %v", key, s, f)
			}
		}
	}
}

// TestRunSloFiltered smoke-tests the SLO observatory figure: the
// nimage.slo/v1 document and the per-pressure attainment CSVs must land
// in the chosen output directory, with entries for every default
// pressure level and the telemetry-overhead control alongside.
func TestRunSloFiltered(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-figure", "slo", "-workloads", "serve-api",
		"-builds", "1", "-iters", "1",
		"-streams", "2", "-slo-bursts", "2",
		"-out", dir, "-bench", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"serve-slo-p0.csv", "serve-slo-p30.csv", "serve-slo-p70.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("figure CSV %s missing: %v", f, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_slo.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema    string `json:"schema"`
		Streams   int    `json:"streams"`
		Pressures []int  `json:"pressures"`
		Entries   []struct {
			PressurePct int `json:"pressure_pct"`
		} `json:"entries"`
		Overhead []struct {
			SimIdentical bool `json:"sim_identical"`
		} `json:"overhead"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "nimage.slo/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Streams != 2 {
		t.Errorf("streams = %d, want 2", doc.Streams)
	}
	seen := map[int]bool{}
	for _, e := range doc.Entries {
		seen[e.PressurePct] = true
	}
	for _, p := range []int{0, 30, 70} {
		if !seen[p] {
			t.Errorf("no entries at pressure %d%%: %+v", p, doc.Pressures)
		}
	}
	if len(doc.Overhead) == 0 {
		t.Fatal("no telemetry-overhead control recorded")
	}
	for _, o := range doc.Overhead {
		if !o.SimIdentical {
			t.Error("telemetry on/off runs diverged in simulated outcome")
		}
	}
}

func TestRunSearchFiltered(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-figure", "search", "-workloads", "serve-api",
		"-builds", "1", "-iters", "1",
		"-search-iters", "1", "-search-topk", "1",
		"-out", dir, "-bench", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "search-iterations.csv")); err != nil {
		t.Errorf("iteration CSV missing: %v", err)
	}
	jdata, err := os.ReadFile(filepath.Join(dir, "search-serve-api.json"))
	if err != nil {
		t.Fatal(err)
	}
	var journal struct {
		Schema string `json:"schema"`
		Final  struct {
			Candidate string `json:"candidate"`
			Attained  int    `json:"attained"`
			Targets   int    `json:"targets"`
		} `json:"final"`
	}
	if err := json.Unmarshal(jdata, &journal); err != nil {
		t.Fatal(err)
	}
	if journal.Schema != "nimage.search/v1" || journal.Final.Candidate == "" {
		t.Errorf("bad journal: schema=%q final=%+v", journal.Schema, journal.Final)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_search.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string                        `json:"schema"`
		Figures map[string]map[string]float64 `json:"figures"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "nimage.bench/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	// The acceptance criterion of the figure: at both swept pressures the
	// searched layout's attainment is >= the best seed's.
	for _, p := range []int{30, 70} {
		att := doc.Figures[fmt.Sprintf("search-attained-p%d", p)]
		if att == nil {
			t.Fatalf("no search-attained-p%d figure: %v", p, doc.Figures)
		}
		for _, s := range []string{"c3", "ext-tsp"} {
			if att["slo-search"] < att[s] {
				t.Errorf("p%d: slo-search attains %.3f, below %s's %.3f",
					p, att["slo-search"], s, att[s])
			}
		}
		if doc.Figures[fmt.Sprintf("search-refault-factor-p%d", p)] == nil {
			t.Errorf("no search-refault-factor-p%d figure", p)
		}
	}
}

// TestRunFleetFiltered smoke-tests the fleet observatory figure: the
// bench slice and the interference CSV must land, every attainment and
// isolation figure must be sane, and the graph-derived tenants must
// attain at least the combined-heuristic tenant's SLO cells.
func TestRunFleetFiltered(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-figure", "fleet",
		"-builds", "1", "-iters", "1",
		"-tenants", "2,4", "-budget", "192", "-bursts", "3",
		"-out", dir, "-bench", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	cdata, err := os.ReadFile(filepath.Join(dir, "fleet-interference.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(cdata)), "\n")
	// Header plus (2+1)² cells minus the omitted owner-0 column per mix:
	// 3×2 rows for 2 tenants, 5×4 for 4 tenants.
	if want := 1 + 3*2 + 5*4; len(lines) != want {
		t.Errorf("interference CSV rows = %d, want %d:\n%s", len(lines), want, cdata)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string                        `json:"schema"`
		Figures map[string]map[string]float64 `json:"figures"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "nimage.bench/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	for _, n := range []int{2, 4} {
		att := doc.Figures[fmt.Sprintf("fleet-attained-t%d", n)]
		if len(att) == 0 {
			t.Fatalf("no fleet-attained-t%d figure: %v", n, doc.Figures)
		}
		// The acceptance criterion: graph-based tenants hold at least the
		// combined heuristic's attainment inside the shared cache.
		if base, ok := att["cu+heap path"]; ok {
			for s, f := range att {
				if s != "cu+heap path" && f < base {
					t.Errorf("t%d: %s attains %.3f, below cu+heap path's %.3f", n, s, f, base)
				}
			}
		}
		iso := doc.Figures[fmt.Sprintf("fleet-isolation-t%d", n)]
		for s, f := range iso {
			if f <= 0 {
				t.Errorf("t%d: strategy %s: non-positive isolation geomean %v", n, s, f)
			}
		}
	}
	fair := doc.Figures["fleet-fairness"]
	for mix, f := range fair {
		if f <= 0 || f > 1 {
			t.Errorf("fairness %s = %v, want in (0, 1]", mix, f)
		}
	}
}

// TestRunRejectsBadFleetFlags: fleet knobs are rejected out of range,
// not clamped.
func TestRunRejectsBadFleetFlags(t *testing.T) {
	cases := map[string][]string{
		"tenants-one":      {"-tenants", "1"},
		"tenants-zero":     {"-tenants", "2,0"},
		"tenants-negative": {"-tenants", "-4"},
		"tenants-garbage":  {"-tenants", "2,abc"},
		"tenants-empty":    {"-tenants", ","},
		"quota-negative":   {"-quota", "-1"},
		"quota-over-100":   {"-quota", "101"},
		"budget-zero":      {"-budget", "0"},
		"budget-negative":  {"-budget", "-64"},
		"bursts-zero":      {"-bursts", "0"},
		"bursts-negative":  {"-bursts", "-3"},
	}
	for name, extra := range cases {
		args := append([]string{"-figure", "fleet", "-out", t.TempDir(), "-bench", ""}, extra...)
		err := run(args)
		if err == nil {
			t.Errorf("%s: accepted %v", name, extra)
			continue
		}
		if !strings.Contains(err.Error(), "must") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

// TestRunRejectsUnknownWorkload: filter names must resolve.
func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run([]string{"-figure", "2", "-workloads", "NoSuch", "-out", t.TempDir(), "-bench", ""}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestRunRejectsBadSizing: harness sizing is rejected out of range, not
// clamped — a zero build or iteration count would silently measure
// nothing, and negative workers are meaningless.
func TestRunRejectsBadSizing(t *testing.T) {
	cases := map[string][]string{
		"builds-zero":      {"-builds", "0"},
		"builds-negative":  {"-builds", "-3"},
		"iters-zero":       {"-iters", "0"},
		"iters-negative":   {"-iters", "-1"},
		"workers-negative": {"-workers", "-2"},
		"streams-zero":     {"-streams", "0"},
		"streams-negative": {"-streams", "-2"},
		"slo-bursts-neg":   {"-slo-bursts", "-1"},
		"slo-bad-target":   {"-slo", "p0=1ms"},
		"search-iters-0":   {"-search-iters", "0"},
		"search-iters-big": {"-search-iters", "99999"},
		"search-topk-0":    {"-search-topk", "0"},
		"search-topk-big":  {"-search-topk", "99999"},
	}
	for name, extra := range cases {
		args := append([]string{"-figure", "2", "-workloads", "Bounce", "-out", t.TempDir(), "-bench", ""}, extra...)
		err := run(args)
		if err == nil {
			t.Errorf("%s: accepted %v", name, extra)
			continue
		}
		if !strings.Contains(err.Error(), "must be") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}
