package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nimage/internal/eval"
)

// TestRunFigure2Filtered smoke-tests the CLI end to end on a single
// workload: the figure CSV and the benchmark-baseline document must land in
// the chosen paths with the committed schema.
func TestRunFigure2Filtered(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "BENCH_baseline.json")
	err := run([]string{
		"-figure", "2", "-workloads", "Bounce",
		"-builds", "1", "-iters", "1",
		"-out", dir, "-bench", bench,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure2-pagefaults-awfy.csv")); err != nil {
		t.Errorf("figure CSV missing: %v", err)
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, benchSchema)
	}
	geo := doc.Figures["figure2-pagefaults-awfy"]
	if len(geo) == 0 {
		t.Fatalf("no geomeans recorded: %+v", doc.Figures)
	}
	for s, f := range geo {
		if f <= 0 {
			t.Errorf("strategy %s: non-positive geomean factor %v", s, f)
		}
	}
}

// TestRunReportFiltered smoke-tests the observability report path: the
// report document must carry its schema and at least one entry for the
// selected workload.
func TestRunReportFiltered(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-figure", "report", "-workloads", "Bounce",
		"-out", dir, "-bench", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Entries []struct {
			Workload string `json:"workload"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != eval.ReportSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, eval.ReportSchema)
	}
	if len(doc.Entries) == 0 {
		t.Fatal("report has no entries")
	}
	for _, e := range doc.Entries {
		if e.Workload != "Bounce" {
			t.Errorf("unexpected workload %q with -workloads Bounce", e.Workload)
		}
	}
}

// TestRunServeFiltered smoke-tests the serve figure: latency and re-fault
// tables must land for both pressure levels, with geomeans in the
// benchmark-baseline document.
func TestRunServeFiltered(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "BENCH_baseline.json")
	err := run([]string{
		"-figure", "serve", "-workloads", "serve-api",
		"-builds", "1", "-iters", "1",
		"-out", dir, "-bench", bench,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"serve-latency-p30.csv", "serve-refaults-p30.csv",
		"serve-latency-p70.csv", "serve-refaults-p70.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("figure CSV %s missing: %v", f, err)
		}
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Figures["serve-latency-p30"]) == 0 || len(doc.Figures["serve-latency-p70"]) == 0 {
		t.Fatalf("no serve geomeans recorded: %+v", doc.Figures)
	}
}

// TestRunRejectsUnknownWorkload: filter names must resolve.
func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run([]string{"-figure", "2", "-workloads", "NoSuch", "-out", t.TempDir(), "-bench", ""}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
