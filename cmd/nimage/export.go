package main

import (
	"flag"
	"fmt"
	"os"

	"nimage"
	"nimage/internal/image"
)

// cmdExport builds an image (optionally through the profile-guided
// pipeline) and writes its portable recipe to a .nimg file. Because image
// builds are deterministic functions of the recipe, shipping the recipe is
// shipping the binary.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	name := workloadFlag(fs)
	strategy := fs.String("strategy", "", "optimize with this strategy (empty = regular build)")
	seed := fs.Uint64("seed", 1, "build seed")
	out := fs.String("o", "", "output .nimg path (default <workload>.nimg)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	p := w.Build()

	var img *nimage.Image
	if *strategy == "" {
		img, err = nimage.BuildImage(p, nimage.BuildOptions{
			Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(), BuildSeed: *seed,
		})
	} else {
		var res *nimage.PipelineResult
		res, err = nimage.ProfileAndOptimize(p, nimage.PipelineOptions{
			Compiler:         nimage.DefaultCompilerConfig(),
			Strategy:         *strategy,
			InstrumentedSeed: *seed + 100,
			OptimizedSeed:    *seed,
			Mode:             serviceMode(w),
			Args:             w.Args,
			Service:          w.Service,
		})
		if res != nil {
			img = res.Optimized
		}
	}
	if err != nil {
		return err
	}

	path := *out
	if path == "" {
		path = w.Name + ".nimg"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := image.WriteRecipe(f, image.RecipeOf(img)); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes): %s image of %s, file size %d bytes when baked\n",
		path, st.Size(), img.Opts.Kind, w.Name, img.FileSize)
	return nil
}

// serviceMode returns the trace-buffer mode a workload's profiling run
// needs (memory-mapped for services killed after their first response).
func serviceMode(w nimage.Workload) nimage.DumpMode {
	if w.Service {
		return nimage.MemoryMapped
	}
	return nimage.DumpOnFull
}

// cmdExec loads a .nimg recipe, bakes the image, and runs it cold.
func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	path := fs.String("image", "", ".nimg file to execute (required)")
	device := fs.String("device", "ssd", "storage device: ssd|nfs")
	iters := fs.Int("iters", 1, "cold iterations")
	report := fs.String("report", "", "write the runs' observability snapshot to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters < 1 {
		return fmt.Errorf("-iters must be >= 1, got %d", *iters)
	}
	if *path == "" {
		return fmt.Errorf("exec: -image is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	recipe, err := image.ReadRecipe(f)
	f.Close()
	if err != nil {
		return err
	}
	img, err := recipe.Bake()
	if err != nil {
		return err
	}
	w, err := nimage.WorkloadByName(img.Program.Name)
	args2 := []int64{1}
	service := false
	if err == nil {
		args2 = w.Args
		service = w.Service
	}

	dev := nimage.SSD()
	if *device == "nfs" {
		dev = nimage.NFS()
	}
	o := nimage.NewOS(dev)
	var reg *nimage.ObsRegistry
	if *report != "" {
		reg = nimage.NewObsRegistry()
		o.Obs = reg
	}
	fmt.Printf("%s (%s image from %s, %s)\n", img.Program.Name, img.Opts.Kind, *path, dev.Name)
	for it := 0; it < *iters; it++ {
		o.DropCaches()
		proc, err := img.NewProcess(o, nimage.Hooks{})
		if err != nil {
			return err
		}
		proc.Machine.StopOnRespond = service
		if err := proc.Run(args2...); err != nil {
			proc.Close()
			return err
		}
		st := proc.Stats()
		fmt.Printf("  iter %d: .text faults %d, .svm_heap faults %d, total %v\n",
			it, st.TextFaults.Total(), st.HeapFaults.Total(), st.Total)
		proc.Close()
	}
	if reg != nil {
		if err := writeSnapshot(*report, reg); err != nil {
			return err
		}
		fmt.Printf("wrote run report to %s\n", *report)
	}
	return nil
}
