package main

import (
	"flag"
	"fmt"
	"os"

	"nimage"
)

// validateServeFlags rejects out-of-range serve knobs up front: the
// harness would silently substitute defaults for non-positive burst
// counts, percentages outside [0,100] have no meaning as reclaim or
// traffic fractions, and a negative page budget is neither unlimited
// (that's 0) nor a cap. Shared by `nimage serve` and `nimage slo`.
func validateServeFlags(pressure, hotPct, bursts, burst, budget int) error {
	if pressure < 0 || pressure > 100 {
		return fmt.Errorf("-pressure must be between 0 and 100 (percent of resident pages), got %d", pressure)
	}
	if hotPct < 0 || hotPct > 100 {
		return fmt.Errorf("-hot-pct must be between 0 and 100 (percent of requests), got %d", hotPct)
	}
	if bursts <= 0 {
		return fmt.Errorf("-bursts must be positive, got %d", bursts)
	}
	if burst <= 0 {
		return fmt.Errorf("-burst must be positive (requests per burst), got %d", burst)
	}
	if budget < 0 {
		return fmt.Errorf("-budget must be >= 0 (resident pages, 0 = unlimited), got %d", budget)
	}
	return nil
}

// cmdServe runs a serve-mode scenario: startup, then request bursts with
// page-cache pressure between them, printing the per-burst telemetry
// table and warm-burst aggregates.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	name := fs.String("workload", "serve-api", "serve workload: serve-api|serve-cache")
	strategy := fs.String("strategy", "", "serve an optimized layout (empty = regular build)")
	device := fs.String("device", "ssd", "storage device: ssd|nfs")
	bursts := fs.Int("bursts", 5, "request bursts after startup (burst 0 is cold)")
	burst := fs.Int("burst", 24, "requests per burst")
	pressure := fs.Int("pressure", 50, "percent of resident pages reclaimed between bursts")
	budget := fs.Int("budget", 0, "resident-page budget in pages (0 = unlimited)")
	policy := fs.String("policy", "lru", "eviction policy: lru|clock")
	hotPct := fs.Int("hot-pct", 80, "percent of requests hitting the hot routes")
	hotRoutes := fs.Int("hot-routes", 4, "size of the hot route set")
	seed := fs.Uint64("seed", 0, "request-stream seed (0 = default)")
	streams := fs.Int("streams", 1, "concurrent closed-loop request streams")
	report := fs.String("report", "", "write a nimage.report/v6 JSON document to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	if err := validateServeFlags(*pressure, *hotPct, *bursts, *burst, *budget); err != nil {
		return err
	}
	if *streams < 1 {
		return fmt.Errorf("-streams must be >= 1 (concurrent request streams), got %d", *streams)
	}

	cfg := nimage.DefaultEvalConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = *report != ""
	if *device == "nfs" {
		cfg.Device = nimage.NFS()
	}
	scfg := nimage.ServeConfig{
		Bursts:      *bursts,
		BurstSize:   *burst,
		PressurePct: *pressure,
		CacheBudget: *budget,
		HotPct:      *hotPct,
		HotRoutes:   *hotRoutes,
		Seed:        *seed,
		Streams:     *streams,
		// The report's SLO section needs the per-request traces.
		RecordRequests: *report != "",
	}
	switch *policy {
	case "lru":
		scfg.Policy = nimage.EvictLRU
	case "clock":
		scfg.Policy = nimage.EvictClock
	default:
		return fmt.Errorf("unknown eviction policy %q", *policy)
	}

	h := nimage.NewHarness(cfg)
	outs, err := h.MeasureServe(w, *strategy, scfg)
	if err != nil {
		return err
	}
	o := outs[0]

	fmt.Printf("%s (%s layout, %s, %d bursts × %d requests, %d%% pressure",
		w.Name, o.Strategy, cfg.Device.Name, len(o.Bursts), scfg.BurstSize, *pressure)
	if *streams > 1 {
		fmt.Printf(", %d streams", *streams)
	}
	if *budget > 0 {
		fmt.Printf(", budget %d pages (%s)", *budget, *policy)
	}
	fmt.Println(")")
	fmt.Printf("  startup (time to first response): %.3fms\n", o.StartupNanos/1e6)
	rows := make([]nimage.BurstRowText, 0, len(o.Bursts))
	for _, b := range o.Bursts {
		rows = append(rows, nimage.BurstRowText{
			Burst: b.Burst, Requests: b.Requests,
			P50Nanos: b.P50Nanos, P99Nanos: b.P99Nanos,
			MajorFaults: b.MajorFaults, MinorFaults: b.MinorFaults,
			Refaults: b.Refaults, EvictedPages: b.EvictedPages,
			ResidentText: b.ResidentText, ResidentHeap: b.ResidentHeap,
		})
	}
	fmt.Print(nimage.BurstTableText("per-burst telemetry:", rows))
	fmt.Printf("  warm bursts: mean %.3fµs, p99 %.3fµs; run totals: %d pages evicted, %d re-faulted\n",
		o.WarmMeanNanos/1e3, o.WarmP99Nanos/1e3, o.EvictedPages, o.RefaultPages)

	if *report != "" {
		var strategies []string
		if *strategy != "" {
			strategies = []string{*strategy}
		}
		rep, err := h.ServeReport(w, strategies, scfg)
		if err != nil {
			return err
		}
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote serve report to %s\n", *report)
	}
	return nil
}
