package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nimage"
	"nimage/internal/eval"
	"nimage/internal/obs"
	"nimage/internal/obs/attrib"
	"nimage/internal/workloads"
)

// writeSnapshot writes a registry's snapshot as indented JSON to path.
func writeSnapshot(path string, r *nimage.ObsRegistry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nimage.ObsJSONSink{W: f, Indent: true}.Write(r.Snapshot())
}

// validateHarnessFlags rejects out-of-range harness sizing up front
// instead of letting the harness clamp or misbehave: zero builds or
// iterations would silently measure nothing, and a negative worker count
// is neither a concurrency cap nor the GOMAXPROCS default (that's 0).
func validateHarnessFlags(builds, iters, workers int) error {
	if builds < 1 {
		return fmt.Errorf("-builds must be >= 1, got %d", builds)
	}
	if iters < 1 {
		return fmt.Errorf("-iters must be >= 1, got %d", iters)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	return nil
}

// cmdReport runs an observed evaluation of one or more workloads and writes
// the consolidated report document, printing a human summary.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	names := fs.String("workloads", "Bounce,micronaut", "comma-separated workload names")
	strategies := fs.String("strategies", "cu,heap path", "comma-separated strategies (empty = baseline only)")
	builds := fs.Int("builds", 1, "images per strategy")
	iters := fs.Int("iters", 1, "cold iterations per image")
	workers := fs.Int("workers", 0, "concurrent build+measure tasks (0 = GOMAXPROCS; results are identical for every count)")
	out := fs.String("o", "report.json", "output JSON path")
	artifacts := fs.String("artifacts", "", "also write per-entry attribution artifacts (attrib JSON, pprof, Chrome trace) into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateHarnessFlags(*builds, *iters, *workers); err != nil {
		return err
	}

	var ws []workloads.Workload
	for _, n := range strings.Split(*names, ",") {
		w, err := nimage.WorkloadByName(strings.TrimSpace(n))
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	var strats []string
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			strats = append(strats, strings.TrimSpace(s))
		}
	}

	cfg := nimage.DefaultEvalConfig()
	cfg.Builds = *builds
	cfg.Iterations = *iters
	cfg.Workers = *workers
	cfg.Observe = true
	h := nimage.NewHarness(cfg)
	rep, err := h.Report(ws, strats)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("wrote %s (%d entries, device %s, %d builds x %d iterations)\n",
		*out, len(rep.Entries), rep.Device, rep.Builds, rep.Iterations)
	if *artifacts != "" {
		if err := writeArtifacts(*artifacts, rep); err != nil {
			return err
		}
	}
	for _, e := range rep.Entries {
		printEntrySummary(e)
	}
	return nil
}

// writeArtifacts exports each entry's merged attribution as the three
// artifact formats: the table JSON (the `nimage faults -diff` input), a
// pprof profile, and a Chrome trace built from the entry's first cold-run
// snapshot.
func writeArtifacts(dir string, rep *eval.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, e := range rep.Entries {
		if e.Attribution == nil {
			continue
		}
		layout := e.Strategy
		if layout == "" {
			layout = eval.LayoutBaseline
		}
		stem := filepath.Join(dir, e.Workload+"-"+strings.ReplaceAll(layout, " ", "_"))
		tab := e.Attribution
		if err := writeWith(stem+".attrib.json", func(f *os.File) error { return attrib.WriteTable(f, tab) }); err != nil {
			return err
		}
		if err := writeWith(stem+".pb.gz", func(f *os.File) error { return attrib.WritePprof(f, tab) }); err != nil {
			return err
		}
		var snap *obs.Snapshot
		if len(e.Runs) > 0 {
			snap = e.Runs[0]
		}
		if err := writeWith(stem+".trace.json", func(f *os.File) error { return attrib.WriteChromeTrace(f, snap, tab) }); err != nil {
			return err
		}
		fmt.Printf("wrote attribution artifacts %s.{attrib.json,pb.gz,trace.json}\n", stem)
	}
	return nil
}

// printEntrySummary prints the human-readable digest of one report entry.
func printEntrySummary(e eval.ReportEntry) {
	label := e.Strategy
	if label == "" {
		label = "baseline"
	}
	fmt.Printf("\n%s / %s\n", e.Workload, label)
	if len(e.Pipeline) > 0 {
		p := e.Pipeline[0]
		fmt.Println("  build pipeline (first build):")
		for _, sp := range p.Spans {
			fmt.Printf("    %-42s %v\n", sp.Name, time.Duration(sp.DurationNanos))
		}
		// Profiler totals aggregate over every build of the entry.
		merged := obs.MergeSnapshots(e.Pipeline...)
		if n := merged.Counter("profiler.paths"); n > 0 {
			fmt.Printf("    profiler (all %d builds): %d paths, %d flushes, %d remaps, %.0f trace bytes\n",
				len(e.Pipeline), n, merged.Counter("profiler.flushes"), merged.Counter("profiler.remaps"),
				merged.Gauge("profiler.bytes_written"))
		}
	}
	if len(e.Runs) > 0 {
		r := e.Runs[0]
		if tl := r.Timeline("osim.faults"); tl != nil {
			bySec := map[string]int{}
			for _, ev := range tl.Events {
				bySec[ev.Label]++
			}
			secs := make([]string, 0, len(bySec))
			for s := range bySec {
				secs = append(secs, s)
			}
			sort.Strings(secs)
			fmt.Print("  faults (first cold run):")
			for _, s := range secs {
				fmt.Printf(" %s=%d", s, bySec[s])
			}
			fmt.Println()
		}
		fmt.Printf("  time: cpu %v, io %v, total %v\n",
			time.Duration(r.Gauge("run.cpu_nanos")),
			time.Duration(r.Gauge("run.io_nanos")),
			time.Duration(r.Gauge("run.total_nanos")))
	}
	if e.HeapMatch != nil {
		hm := e.HeapMatch
		fmt.Printf("  heap match (%s): %d/%d objects matched (%.1f%% of %d entries), %d unmatched, %d in %d collision groups\n",
			hm.Strategy, hm.MatchedObjects, hm.MatchedObjects+hm.UnmatchedObjects,
			100*hm.MatchRate, hm.ProfileLen, hm.UnmatchedObjects,
			hm.CollisionObjects, hm.CollisionGroups)
	}
}

// cmdOrder runs the profile-guided pipeline once per object-identity
// strategy and prints the cross-build match breakdown: how many objects the
// strategy's IDs matched, how many were left behind, and how many were
// pulled forward only as part of an ambiguous collision group.
func cmdOrder(args []string) error {
	fs := flag.NewFlagSet("order", flag.ExitOnError)
	name := workloadFlag(fs)
	seed := fs.Uint64("seed", 1, "build seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	p := w.Build()

	fmt.Printf("%s: object match breakdown across builds (instrumented seed %d, optimized seed %d)\n",
		w.Name, *seed+100, *seed)
	fmt.Printf("  %-16s %10s %10s %10s %12s %12s %12s %10s\n",
		"strategy", "profile", "entries", "matched", "unmatched", "coll-groups", "coll-objs", "rate")
	for _, hs := range nimage.HeapStrategies() {
		res, err := nimage.ProfileAndOptimize(p, nimage.PipelineOptions{
			Compiler:         nimage.DefaultCompilerConfig(),
			Strategy:         hs.Name(),
			InstrumentedSeed: *seed + 100,
			OptimizedSeed:    *seed,
			Mode:             serviceMode(w),
			Args:             w.Args,
			Service:          w.Service,
		})
		if err != nil {
			return err
		}
		b := res.Optimized.HeapMatchStats.Breakdown(hs.Name())
		fmt.Printf("  %-16s %10d %10d %10d %12d %12d %12d %9.1f%%\n",
			b.Strategy, b.ProfileLen, b.MatchedEntries, b.MatchedObjects,
			b.UnmatchedObjects, b.CollisionGroups, b.CollisionObjects, 100*b.MatchRate)
	}
	return nil
}
