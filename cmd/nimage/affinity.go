package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nimage"
)

// cmdAffinity records the temporal co-access affinity graph of a serve
// run and prints the ranked top-edge table plus the layout scorecard.
// With -diff, it instead scores every strategy's layout against the
// baseline recording and ranks them by predicted refault factor.
func cmdAffinity(args []string) error {
	fs := flag.NewFlagSet("affinity", flag.ExitOnError)
	name := fs.String("workload", "serve-api", "serve workload: serve-api|serve-cache")
	strategy := fs.String("strategy", "", "record under this layout (empty = regular build)")
	strategies := fs.String("strategies", "", "comma-separated strategies for -diff (empty = serve strategies)")
	device := fs.String("device", "ssd", "storage device: ssd|nfs")
	bursts := fs.Int("bursts", 5, "request bursts after startup (burst 0 is cold)")
	burst := fs.Int("burst", 24, "requests per burst")
	pressure := fs.Int("pressure", 50, "percent of resident pages reclaimed between bursts")
	budget := fs.Int("budget", 0, "resident-page budget in pages (0 = unlimited)")
	hotPct := fs.Int("hot-pct", 80, "percent of requests hitting the hot routes")
	hotRoutes := fs.Int("hot-routes", 4, "size of the hot route set")
	seed := fs.Uint64("seed", 0, "request-stream seed (0 = default)")
	top := fs.Int("top", 20, "edges to print (0 = all)")
	out := fs.String("o", "", "write the affinity graph to this JSON file (nimage.affinity/v1)")
	dotOut := fs.String("dot", "", "write a GraphViz DOT rendering of the top edges here")
	traceOut := fs.String("trace", "", "write a Chrome trace-event co-residency track here")
	diff := fs.Bool("diff", false, "score every strategy's layout against the baseline recording")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	if err := validateServeFlags(*pressure, *hotPct, *bursts, *burst, *budget); err != nil {
		return err
	}

	cfg := nimage.DefaultEvalConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.TrackAffinity = true
	if *device == "nfs" {
		cfg.Device = nimage.NFS()
	}
	scfg := nimage.ServeConfig{
		Bursts:      *bursts,
		BurstSize:   *burst,
		PressurePct: *pressure,
		CacheBudget: *budget,
		HotPct:      *hotPct,
		HotRoutes:   *hotRoutes,
		Seed:        *seed,
	}
	h := nimage.NewHarness(cfg)

	var g *nimage.AffinityGraph
	if *diff {
		strats := nimage.ServeStrategies()
		if *strategies != "" {
			strats = nil
			for _, s := range strings.Split(*strategies, ",") {
				strats = append(strats, strings.TrimSpace(s))
			}
		}
		base, cards, err := h.AffinityScorecards(w, scfg, strats)
		if err != nil {
			return err
		}
		g = base
		fmt.Printf("%s: baseline recording scored against %d layouts\n", w.Name, len(cards))
		fmt.Print(nimage.ScorecardTableText(cards))
		// The strongest edge shifts between the baseline recording and
		// each strategy's own recording.
		for _, s := range strats {
			outs, err := h.MeasureServe(w, s, scfg)
			if err != nil {
				return err
			}
			var graphs []*nimage.AffinityGraph
			for _, o := range outs {
				if o.Affinity != nil {
					graphs = append(graphs, o.Affinity)
				}
			}
			if len(graphs) == 0 {
				continue
			}
			fmt.Println()
			fmt.Print(nimage.AffinityDiffText(g, nimage.MergeAffinityGraphs(graphs...), *top))
		}
	} else {
		outs, err := h.MeasureServe(w, *strategy, scfg)
		if err != nil {
			return err
		}
		var graphs []*nimage.AffinityGraph
		var cards []*nimage.AffinityScorecard
		for _, o := range outs {
			if o.Affinity != nil {
				graphs = append(graphs, o.Affinity)
			}
			if o.Scorecard != nil {
				cards = append(cards, o.Scorecard)
			}
		}
		if len(graphs) == 0 {
			return fmt.Errorf("no affinity graph recorded")
		}
		g = nimage.MergeAffinityGraphs(graphs...)
		fmt.Print(nimage.AffinityTableText(g, *top))
		if len(cards) > 0 {
			fmt.Println()
			fmt.Print(nimage.ScorecardTableText(cards))
		}
	}

	if *out != "" {
		if err := writeWith(*out, func(f *os.File) error { return nimage.WriteAffinityGraph(f, g) }); err != nil {
			return err
		}
		fmt.Printf("wrote affinity graph to %s\n", *out)
	}
	if *dotOut != "" {
		if err := writeWith(*dotOut, func(f *os.File) error { return nimage.WriteAffinityDOT(f, g, *top) }); err != nil {
			return err
		}
		fmt.Printf("wrote GraphViz DOT to %s (dot -Tsvg %s)\n", *dotOut, *dotOut)
	}
	if *traceOut != "" {
		if err := writeWith(*traceOut, func(f *os.File) error { return nimage.WriteAffinityTrace(f, g) }); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
	return nil
}
