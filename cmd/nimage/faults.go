package main

import (
	"flag"
	"fmt"
	"os"

	"nimage"
	"nimage/internal/obs/attrib"
	"nimage/internal/textviz"
)

// cmdFaults builds and cold-runs one image with per-fault attribution and
// prints the ranked cold-symbol table: which CUs, heap objects, and image
// regions still fault, in cold-start order, at what I/O cost. With -diff,
// it instead compares two attribution tables written by -o.
func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	name := workloadFlag(fs)
	strategy := fs.String("strategy", "", "optimize with this strategy first (empty = regular build)")
	device := fs.String("device", "ssd", "storage device: ssd|nfs")
	seed := fs.Uint64("seed", 1, "build seed")
	top := fs.Int("top", 20, "symbols to print (0 = all)")
	out := fs.String("o", "", "write the attribution table to this JSON file (the -diff input format)")
	pprofOut := fs.String("pprof", "", "write a pprof profile here (inspect with 'go tool pprof')")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON here (chrome://tracing, Perfetto)")
	diff := fs.Bool("diff", false, "diff two attribution tables: nimage faults -diff baseline.json optimized.json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		rest := fs.Args()
		if len(rest) < 2 {
			return fmt.Errorf("-diff takes two attribution tables (baseline.json optimized.json)")
		}
		// Accept flags after the two positional table paths too.
		if err := fs.Parse(rest[2:]); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("-diff takes exactly two attribution tables, got %q", append(rest[:2], fs.Args()...))
		}
		return faultsDiff(rest[0], rest[1], *top)
	}

	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	p := w.Build()
	reg := nimage.NewObsRegistry()
	var img *nimage.Image
	layout := "identity"
	if *strategy == "" {
		img, err = nimage.BuildImage(p, nimage.BuildOptions{
			Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(),
			BuildSeed: *seed, Obs: reg,
		})
	} else {
		layout = *strategy
		var res *nimage.PipelineResult
		res, err = nimage.ProfileAndOptimize(p, nimage.PipelineOptions{
			Compiler:         nimage.DefaultCompilerConfig(),
			Strategy:         *strategy,
			InstrumentedSeed: *seed + 100,
			OptimizedSeed:    *seed,
			Mode:             serviceMode(w),
			Args:             w.Args,
			Service:          w.Service,
			Obs:              reg,
		})
		if res != nil {
			img = res.Optimized
		}
	}
	if err != nil {
		return err
	}

	dev := nimage.SSD()
	if *device == "nfs" {
		dev = nimage.NFS()
	}
	o := nimage.NewOS(dev)
	o.Obs = reg
	o.DropCaches()
	proc, err := img.NewProcess(o, nimage.Hooks{})
	if err != nil {
		return err
	}
	proc.Machine.StopOnRespond = w.Service
	if err := proc.Run(w.Args...); err != nil {
		proc.Close()
		return err
	}
	tab := proc.AttributionTable()
	proc.Close()
	if tab == nil {
		return fmt.Errorf("no attribution recorded")
	}
	tab.Layout = layout

	fmt.Print(textviz.FaultTable(tab, *top))

	if *out != "" {
		if err := writeWith(*out, func(f *os.File) error { return attrib.WriteTable(f, tab) }); err != nil {
			return err
		}
		fmt.Printf("wrote attribution table to %s\n", *out)
	}
	if *pprofOut != "" {
		if err := writeWith(*pprofOut, func(f *os.File) error { return attrib.WritePprof(f, tab) }); err != nil {
			return err
		}
		fmt.Printf("wrote pprof profile to %s (go tool pprof -top %s)\n", *pprofOut, *pprofOut)
	}
	if *traceOut != "" {
		snap := reg.Snapshot()
		if err := writeWith(*traceOut, func(f *os.File) error { return attrib.WriteChromeTrace(f, snap, tab) }); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
	return nil
}

// faultsDiff loads two attribution tables and prints their symbol diff.
func faultsDiff(basePath, optPath string, top int) error {
	base, err := readTable(basePath)
	if err != nil {
		return err
	}
	opt, err := readTable(optPath)
	if err != nil {
		return err
	}
	d := attrib.DiffTables(base, opt)
	fmt.Print(textviz.FaultDiff(d, top))
	return nil
}

func readTable(path string) (*attrib.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := attrib.ReadTable(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// writeWith creates path and hands the file to write, closing it in every
// case.
func writeWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
