// Command nimage drives the simulated Native-Image toolchain on the
// built-in workloads: build images, run them cold, execute the
// profile-guided pipeline, and visualize page-fault maps.
//
// Usage:
//
//	nimage info
//	nimage build   -workload Bounce [-kind regular|instrumented|optimized] [-seed N] [-report out.json]
//	nimage run     -workload Bounce [-strategy cu] [-device ssd|nfs] [-iters N] [-report out.json]
//	nimage serve   -workload serve-api [-strategy cu] [-streams N] [-bursts N] [-burst N] [-pressure PCT] [-budget PAGES] [-report out.json]
//	nimage slo     [-workload serve-api] [-streams N] [-slo "p50=100us,p99=2ms"] [-pressures 0,30,70] [-trace t.json] [-o slo.json]
//	nimage tune    [-workload serve-api] [-budget-iters N] [-top-k N] [-seed N] [-pressures 30,70] [-slo "p99=2ms"] [-o search.json]
//	nimage profile -workload Bounce -strategy "heap path" [-out profile.csv] [-trace trace.bin]
//	nimage order   -workload Bounce [-seed N]
//	nimage report  -workloads Bounce,micronaut [-strategies "cu,heap path"] [-o report.json] [-artifacts dir]
//	nimage faults  -workload Bounce [-strategy cu] [-top 20] [-o attrib.json] [-pprof p.pb.gz] [-trace t.json]
//	nimage faults  -diff baseline.json optimized.json
//	nimage affinity -workload serve-api [-strategy cu] [-top 20] [-o graph.json] [-dot g.dot] [-trace t.json]
//	nimage affinity -workload serve-api -diff [-strategies "cu,heap path"]
//	nimage viz     -workload Bounce [-section text|heap] [-ppm out.ppm]
//	nimage export  -workload Towers -strategy "cu+heap path" -o towers.nimg
//	nimage exec    -image towers.nimg [-report out.json]
//	nimage verify  [-workloads Bounce] [-strategies "cu,heap path"] [-seeds N] [-o report.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"nimage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "info":
		err = cmdInfo(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "slo":
		err = cmdSlo(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "order":
		err = cmdOrder(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "faults":
		err = cmdFaults(os.Args[2:])
	case "affinity":
		err = cmdAffinity(os.Args[2:])
	case "viz":
		err = cmdViz(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "exec":
		err = cmdExec(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nimage: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nimage:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nimage <command> [flags]

commands:
  info      list workloads and their compiled-world sizes
  build     build one image and print its layout
  run       build and run images cold, print page faults and times
  serve     drive request bursts under cache pressure, print burst telemetry
  slo       sweep pressure with concurrent streams, score layouts against latency SLOs
  fleet     serve N tenants from one shared page cache, print the interference matrix
  tune      run the SLO-driven layout search, print the trajectory and winner
  profile   run the profile-guided pipeline, write ordering profiles
  order     print the per-strategy object match breakdown across builds
  report    run an observed evaluation, write a consolidated report.json
  faults    attribute cold-start page faults to symbols; -diff compares two runs
  affinity  record the temporal co-access graph, score layouts; -diff ranks strategies
  viz       render the Fig. 6 page-fault grid (-section text|heap)
  export    build an image and write its portable .nimg recipe
  exec      bake a .nimg recipe and run it cold
  verify    check baseline/instrumented/optimized behavioral equivalence

run 'nimage <command> -h' for flags`)
}

func workloadFlag(fs *flag.FlagSet) *string {
	return fs.String("workload", "Bounce", "workload name (see 'nimage info')")
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	h := nimage.NewHarness(nimage.DefaultEvalConfig())
	fmt.Println("workloads (AWFY + microservices):")
	info, err := h.CompilerInfo(nimage.AllWorkloads())
	if err != nil {
		return err
	}
	fmt.Print(info)
	fmt.Println("\nstrategies:", nimage.Strategies())
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	name := workloadFlag(fs)
	kind := fs.String("kind", "regular", "build kind: regular|instrumented|optimized")
	strategy := fs.String("strategy", nimage.StrategyCU, "strategy for instrumented/optimized builds")
	seed := fs.Uint64("seed", 1, "build seed (non-determinism source)")
	dump := fs.String("dump", "", "disassemble the method with this signature (e.g. 'BounceBench.benchmark(1)')")
	report := fs.String("report", "", "write the build's observability snapshot to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	p := w.Build()

	var reg *nimage.ObsRegistry
	if *report != "" {
		reg = nimage.NewObsRegistry()
	}
	var img *nimage.Image
	switch *kind {
	case "regular", "instrumented":
		opts := nimage.BuildOptions{
			Kind:      nimage.KindRegular,
			Compiler:  nimage.DefaultCompilerConfig(),
			BuildSeed: *seed,
			Obs:       reg,
		}
		if *kind == "instrumented" {
			opts.Kind = nimage.KindInstrumented
		}
		img, err = nimage.BuildImage(p, opts)
	case "optimized":
		var res *nimage.PipelineResult
		res, err = nimage.ProfileAndOptimize(p, nimage.PipelineOptions{
			Compiler:         nimage.DefaultCompilerConfig(),
			Strategy:         *strategy,
			InstrumentedSeed: *seed + 100,
			OptimizedSeed:    *seed,
			Mode:             serviceMode(w),
			Args:             w.Args,
			Service:          w.Service,
			Obs:              reg,
		})
		if res != nil {
			img = res.Optimized
		}
	default:
		return fmt.Errorf("unknown build kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if reg != nil {
		if err := writeSnapshot(*report, reg); err != nil {
			return err
		}
		fmt.Printf("wrote build report to %s\n", *report)
	}
	fmt.Printf("%s (%s build, seed %d)\n", w.Name, *kind, *seed)
	fmt.Printf("  classes:           %d\n", len(p.Classes))
	fmt.Printf("  methods:           %d\n", p.NumMethods())
	fmt.Printf("  compilation units: %d\n", len(img.CULayout))
	fmt.Printf("  snapshot objects:  %d (%d bytes)\n", len(img.Snapshot.Objects), img.Snapshot.TotalSize)
	fmt.Printf("  .text:             %d bytes at %d (native tail %d bytes)\n", img.TextSize(), img.TextSection.Off, img.NativeLen)
	fmt.Printf("  .svm_heap:         %d bytes at %d\n", img.HeapSize(), img.HeapSection.Off)
	fmt.Printf("  file size:         %d bytes\n", img.FileSize)
	if *kind == "optimized" {
		fmt.Printf("  code profile:      %d/%d entries matched\n", img.CodeOrderStats.Matched, img.CodeOrderStats.ProfileLen)
		fmt.Printf("  heap profile:      %d objects matched (%d entries)\n", img.HeapMatchStats.MatchedObjects, img.HeapMatchStats.ProfileLen)
	}
	if *dump != "" {
		var target *nimage.Method
		for _, c := range p.Classes {
			for _, m := range c.Methods {
				if m.Signature() == *dump {
					target = m
				}
			}
		}
		if target == nil {
			return fmt.Errorf("no method with signature %q", *dump)
		}
		fmt.Println()
		fmt.Print(nimage.Disassemble(target))
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := workloadFlag(fs)
	strategy := fs.String("strategy", "", "optimize with this strategy first (empty = regular build)")
	device := fs.String("device", "ssd", "storage device: ssd|nfs")
	iters := fs.Int("iters", 3, "cold iterations (caches dropped in between)")
	seed := fs.Uint64("seed", 1, "build seed")
	report := fs.String("report", "", "write the combined build+run observability snapshot to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters < 1 {
		return fmt.Errorf("-iters must be >= 1, got %d", *iters)
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	p := w.Build()

	var reg *nimage.ObsRegistry
	if *report != "" {
		reg = nimage.NewObsRegistry()
	}
	var img *nimage.Image
	if *strategy == "" {
		img, err = nimage.BuildImage(p, nimage.BuildOptions{
			Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(), BuildSeed: *seed,
			Obs: reg,
		})
	} else {
		var res *nimage.PipelineResult
		res, err = nimage.ProfileAndOptimize(p, nimage.PipelineOptions{
			Compiler:         nimage.DefaultCompilerConfig(),
			Strategy:         *strategy,
			InstrumentedSeed: *seed + 100,
			OptimizedSeed:    *seed,
			Mode:             serviceMode(w),
			Args:             w.Args,
			Service:          w.Service,
			Obs:              reg,
		})
		if res != nil {
			img = res.Optimized
		}
	}
	if err != nil {
		return err
	}

	dev := nimage.SSD()
	if *device == "nfs" {
		dev = nimage.NFS()
	}
	o := nimage.NewOS(dev)
	o.Obs = reg
	layout := "regular"
	if *strategy != "" {
		layout = *strategy
	}
	fmt.Printf("%s (%s layout, %s, %d cold iterations)\n", w.Name, layout, dev.Name, *iters)
	for it := 0; it < *iters; it++ {
		o.DropCaches()
		proc, err := img.NewProcess(o, nimage.Hooks{})
		if err != nil {
			return err
		}
		proc.Machine.StopOnRespond = w.Service
		if err := proc.Run(w.Args...); err != nil {
			proc.Close()
			return err
		}
		st := proc.Stats()
		line := fmt.Sprintf("  iter %d: .text faults %d, .svm_heap faults %d, total faults %d, cpu %v, io %v, total %v",
			it, st.TextFaults.Total(), st.HeapFaults.Total(), st.TotalFaults, st.CPUTime, st.IOTime, st.Total)
		if w.Service {
			line += fmt.Sprintf(", time-to-first-response %v", st.TimeToResponse)
		}
		fmt.Println(line)
		if it == 0 {
			fmt.Printf("  accessed %d of %d snapshot objects (%.1f%%)\n",
				st.AccessedObjects, st.SnapshotObjects,
				100*float64(st.AccessedObjects)/float64(st.SnapshotObjects))
		}
		proc.Close()
	}
	if reg != nil {
		if err := writeSnapshot(*report, reg); err != nil {
			return err
		}
		fmt.Printf("wrote run report to %s\n", *report)
	}
	return nil
}
