package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The commands are plain functions over argument slices, so they can be
// exercised end to end without spawning processes.

func TestCmdInfo(t *testing.T) {
	if err := cmdInfo(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdBuildRegularAndDump(t *testing.T) {
	if err := cmdBuild([]string{"-workload", "Sieve", "-dump", "SieveBench.sieve(1)"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-workload", "Sieve", "-dump", "No.such(0)"}); err == nil {
		t.Fatal("unknown dump signature accepted")
	}
	if err := cmdBuild([]string{"-workload", "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := cmdBuild([]string{"-workload", "Sieve", "-kind", "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCmdBuildOptimized(t *testing.T) {
	if err := cmdBuild([]string{"-workload", "Sieve", "-kind", "optimized", "-strategy", "cu"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRun(t *testing.T) {
	if err := cmdRun([]string{"-workload", "Sieve", "-iters", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-workload", "Sieve", "-strategy", "heap path", "-iters", "1", "-device", "nfs"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdServe(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "serve.json")
	if err := cmdServe([]string{"-workload", "serve-api", "-bursts", "2", "-burst", "6", "-pressure", "40", "-report", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Entries []struct {
			Serve []any `json:"serve"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Schema != "nimage.report/v6" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Entries) == 0 || len(rep.Entries[0].Serve) == 0 {
		t.Fatalf("report carries no serve outcomes: %+v", rep)
	}
	if err := cmdServe([]string{"-workload", "serve-cache", "-bursts", "2", "-burst", "4", "-budget", "64", "-policy", "clock"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-workload", "serve-api", "-policy", "bogus"}); err == nil {
		t.Fatal("unknown eviction policy accepted")
	}
	if err := cmdServe([]string{"-workload", "Sieve"}); err == nil {
		t.Fatal("non-serve workload accepted")
	}
}

func TestCmdServeRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"pressure-over-100": {"-workload", "serve-api", "-pressure", "140"},
		"pressure-negative": {"-workload", "serve-api", "-pressure", "-5"},
		"hot-pct-over-100":  {"-workload", "serve-api", "-hot-pct", "101"},
		"bursts-zero":       {"-workload", "serve-api", "-bursts", "0"},
		"bursts-negative":   {"-workload", "serve-api", "-bursts", "-2"},
		"burst-zero":        {"-workload", "serve-api", "-burst", "0"},
		"budget-negative":   {"-workload", "serve-api", "-budget", "-1"},
		"streams-zero":      {"-workload", "serve-api", "-streams", "0"},
		"streams-negative":  {"-workload", "serve-api", "-streams", "-3"},
	}
	for name, args := range cases {
		err := cmdServe(args)
		if err == nil {
			t.Errorf("%s: accepted %v", name, args)
			continue
		}
		if !strings.Contains(err.Error(), "must be") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

func TestCmdSlo(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "slo.json")
	trace := filepath.Join(dir, "trace.json")
	if err := cmdSlo([]string{"-workload", "serve-api", "-strategies", "cu",
		"-streams", "2", "-bursts", "2", "-burst", "6", "-pressures", "0,50",
		"-o", out, "-trace", trace}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema    string `json:"schema"`
		Streams   int    `json:"streams"`
		Pressures []int  `json:"pressures"`
		Entries   []any  `json:"entries"`
		Overhead  []any  `json:"overhead"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("SLO JSON: %v", err)
	}
	if rep.Schema != "nimage.slo/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Streams != 2 || len(rep.Pressures) != 2 {
		t.Fatalf("streams=%d pressures=%v", rep.Streams, rep.Pressures)
	}
	// 1 workload × 2 layouts (baseline + cu) × 2 pressures.
	if len(rep.Entries) != 4 || len(rep.Overhead) != 1 {
		t.Fatalf("entries=%d overhead=%d", len(rep.Entries), len(rep.Overhead))
	}
	st, err := os.Stat(trace)
	if err != nil || st.Size() == 0 {
		t.Errorf("Chrome trace missing or empty: %v", err)
	}
	if err := cmdSlo([]string{"-workload", "Sieve", "-bursts", "2", "-burst", "4"}); err == nil {
		t.Fatal("non-serve workload accepted")
	}
	if err := cmdSlo([]string{"-workload", "serve-api", "-policy", "bogus"}); err == nil {
		t.Fatal("unknown eviction policy accepted")
	}
}

func TestCmdSloRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"streams-zero":       {"-workload", "serve-api", "-streams", "0"},
		"streams-negative":   {"-workload", "serve-api", "-streams", "-2"},
		"pressures-over-100": {"-workload", "serve-api", "-pressures", "0,140"},
		"pressures-garbage":  {"-workload", "serve-api", "-pressures", "0,abc"},
		"pressures-negative": {"-workload", "serve-api", "-pressures", "-10"},
		"bursts-zero":        {"-workload", "serve-api", "-bursts", "0"},
		"burst-negative":     {"-workload", "serve-api", "-burst", "-4"},
		"budget-negative":    {"-workload", "serve-api", "-budget", "-1"},
		"hot-pct-over-100":   {"-workload", "serve-api", "-hot-pct", "120"},
		"slo-bad-quantile":   {"-workload", "serve-api", "-slo", "p0=1ms"},
		"slo-bad-duration":   {"-workload", "serve-api", "-slo", "p99=fast"},
	}
	for name, args := range cases {
		err := cmdSlo(args)
		if err == nil {
			t.Errorf("%s: accepted %v", name, args)
			continue
		}
		if !strings.Contains(err.Error(), "must") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

func TestCmdFleet(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fleet.json")
	trace := filepath.Join(dir, "trace.json")
	report := filepath.Join(dir, "report.json")
	if err := cmdFleet([]string{"-tenants", "2", "-budget", "96", "-quota", "40",
		"-bursts", "2", "-burst", "6", "-o", out, "-trace", trace, "-report", report}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema    string      `json:"schema"`
		Tenants   []any       `json:"tenants"`
		EvictedBy [][]float64 `json:"evicted_by"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("fleet JSON: %v", err)
	}
	if rep.Schema != "nimage.fleet/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Tenants) != 2 || len(rep.EvictedBy) != 3 {
		t.Fatalf("tenants=%d matrix rows=%d", len(rep.Tenants), len(rep.EvictedBy))
	}
	st, err := os.Stat(trace)
	if err != nil || st.Size() == 0 {
		t.Errorf("Chrome trace missing or empty: %v", err)
	}
	rdata, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Fleet  *struct {
			Schema string `json:"schema"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(rdata, &doc); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if doc.Schema != "nimage.report/v6" || doc.Fleet == nil || doc.Fleet.Schema != "nimage.fleet/v1" {
		t.Fatalf("report document: %+v", doc)
	}
	if err := cmdFleet([]string{"-tenants", "2", "-workloads", "Sieve,serve-api",
		"-bursts", "2", "-burst", "4"}); err == nil {
		t.Fatal("non-serve workload accepted")
	}
	if err := cmdFleet([]string{"-tenants", "2", "-policy", "bogus"}); err == nil {
		t.Fatal("unknown eviction policy accepted")
	}
	if err := cmdFleet([]string{"-tenants", "99"}); err == nil {
		t.Fatal("tenant count beyond the distinct pair space accepted")
	}
}

func TestCmdFleetRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"tenants-one":       {"-tenants", "1"},
		"tenants-zero":      {"-tenants", "0"},
		"tenants-negative":  {"-tenants", "-2"},
		"quota-negative":    {"-tenants", "2", "-quota", "-1"},
		"quota-over-100":    {"-tenants", "2", "-quota", "101"},
		"budget-zero":       {"-tenants", "2", "-budget", "0"},
		"budget-negative":   {"-tenants", "2", "-budget", "-64"},
		"bursts-zero":       {"-tenants", "2", "-bursts", "0"},
		"bursts-negative":   {"-tenants", "2", "-bursts", "-3"},
		"burst-zero":        {"-tenants", "2", "-burst", "0"},
		"pressure-over-100": {"-tenants", "2", "-pressure", "140"},
		"hot-pct-negative":  {"-tenants", "2", "-hot-pct", "-5"},
	}
	for name, args := range cases {
		err := cmdFleet(args)
		if err == nil {
			t.Errorf("%s: accepted %v", name, args)
			continue
		}
		if !strings.Contains(err.Error(), "must") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

func TestCmdTune(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "search.json")
	if err := cmdTune([]string{"-workload", "serve-api", "-budget-iters", "1",
		"-top-k", "1", "-pressures", "30", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema     string `json:"schema"`
		Workload   string `json:"workload"`
		Iterations []any  `json:"iterations"`
		Final      struct {
			Candidate string `json:"candidate"`
			Symbols   int    `json:"symbols"`
		} `json:"final"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("search JSON: %v", err)
	}
	if rep.Schema != "nimage.search/v1" || rep.Workload != "serve-api" {
		t.Fatalf("schema=%q workload=%q", rep.Schema, rep.Workload)
	}
	// The seed round plus one budgeted iteration.
	if len(rep.Iterations) != 2 {
		t.Fatalf("iterations=%d, want 2", len(rep.Iterations))
	}
	if rep.Final.Candidate == "" || rep.Final.Symbols == 0 {
		t.Fatalf("empty final block: %+v", rep.Final)
	}
	if err := cmdTune([]string{"-workload", "Sieve"}); err == nil {
		t.Fatal("non-serve workload accepted")
	}
	if err := cmdTune([]string{"-workload", "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCmdTuneRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"budget-zero":        {"-workload", "serve-api", "-budget-iters", "0"},
		"budget-negative":    {"-workload", "serve-api", "-budget-iters", "-1"},
		"budget-huge":        {"-workload", "serve-api", "-budget-iters", "99999"},
		"top-k-zero":         {"-workload", "serve-api", "-top-k", "0"},
		"top-k-huge":         {"-workload", "serve-api", "-top-k", "99999"},
		"pressures-over-100": {"-workload", "serve-api", "-pressures", "30,140"},
		"pressures-garbage":  {"-workload", "serve-api", "-pressures", "30,abc"},
		"pressures-negative": {"-workload", "serve-api", "-pressures", "-30"},
		"slo-bad-quantile":   {"-workload", "serve-api", "-slo", "p0=1ms"},
		"slo-bad-duration":   {"-workload", "serve-api", "-slo", "p99=fast"},
	}
	for name, args := range cases {
		err := cmdTune(args)
		if err == nil {
			t.Errorf("%s: accepted %v", name, args)
			continue
		}
		if !strings.Contains(err.Error(), "must") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

// TestCmdsRejectBadFlags: every subcommand with numeric bounds rejects
// out-of-range values up front instead of clamping them.
func TestCmdsRejectBadFlags(t *testing.T) {
	cases := map[string]struct {
		cmd  func([]string) error
		args []string
	}{
		"run-iters-zero":          {cmdRun, []string{"-workload", "Sieve", "-iters", "0"}},
		"run-iters-negative":      {cmdRun, []string{"-workload", "Sieve", "-iters", "-1"}},
		"exec-iters-zero":         {cmdExec, []string{"-iters", "0"}},
		"report-builds-zero":      {cmdReport, []string{"-workloads", "Sieve", "-builds", "0"}},
		"report-iters-zero":       {cmdReport, []string{"-workloads", "Sieve", "-iters", "0"}},
		"report-workers-negative": {cmdReport, []string{"-workloads", "Sieve", "-workers", "-1"}},
		"affinity-budget-neg":     {cmdAffinity, []string{"-workload", "serve-api", "-budget", "-4"}},
	}
	for name, tc := range cases {
		err := tc.cmd(tc.args)
		if err == nil {
			t.Errorf("%s: accepted %v", name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), "must be") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

func TestCmdAffinity(t *testing.T) {
	dir := t.TempDir()
	graph := filepath.Join(dir, "graph.json")
	dot := filepath.Join(dir, "graph.dot")
	trace := filepath.Join(dir, "trace.json")
	if err := cmdAffinity([]string{"-workload", "serve-api", "-bursts", "2", "-burst", "6",
		"-o", graph, "-dot", dot, "-trace", trace}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(graph)
	if err != nil {
		t.Fatal(err)
	}
	var g struct {
		Schema string `json:"schema"`
		Nodes  []any  `json:"nodes"`
		Edges  []any  `json:"edges"`
	}
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("graph JSON: %v", err)
	}
	if g.Schema != "nimage.affinity/v1" || len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatalf("graph document: schema=%q nodes=%d edges=%d", g.Schema, len(g.Nodes), len(g.Edges))
	}
	for _, f := range []string{dot, trace} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", f, err)
		}
	}
	if err := cmdAffinity([]string{"-workload", "Sieve"}); err == nil {
		t.Fatal("non-serve workload accepted")
	}
	if err := cmdAffinity([]string{"-workload", "serve-api", "-pressure", "500"}); err == nil {
		t.Fatal("out-of-range pressure accepted")
	}
}

func TestCmdAffinityDiff(t *testing.T) {
	if err := cmdAffinity([]string{"-workload", "serve-api", "-bursts", "2", "-burst", "6",
		"-diff", "-strategies", "cu", "-top", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdProfileWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "prof.csv")
	trace := filepath.Join(dir, "trace.bin")
	if err := cmdProfile([]string{"-workload", "Sieve", "-strategy", "heap path", "-out", csv, "-trace", trace}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{csv, trace} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", f, err)
		}
	}
	if err := cmdProfile([]string{"-workload", "Sieve", "-strategy", "bogus"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestCmdVizSections(t *testing.T) {
	dir := t.TempDir()
	if err := cmdViz([]string{"-workload", "Sieve", "-ppm", filepath.Join(dir, "grid")}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "grid-regular.ppm")); err != nil {
		t.Error("regular PPM missing")
	}
	if err := cmdViz([]string{"-workload", "Sieve", "-section", "heap"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdViz([]string{"-workload", "Sieve", "-section", "bogus"}); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestCmdExportExecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "sieve.nimg")
	if err := cmdExport([]string{"-workload", "Sieve", "-strategy", "cu", "-o", img}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExec([]string{"-image", img, "-iters", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExec(nil); err == nil || !strings.Contains(err.Error(), "-image is required") {
		t.Fatalf("err = %v", err)
	}
	if err := cmdExec([]string{"-image", filepath.Join(dir, "missing.nimg")}); err == nil {
		t.Fatal("missing image accepted")
	}
}

func TestCmdVerify(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "verify.json")
	if err := cmdVerify([]string{"-workloads", "Sieve", "-strategies", "cu", "-q", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Pairs       int   `json:"pairs"`
		Checks      int   `json:"checks"`
		Divergences []any `json:"divergences"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Pairs != 1 || rep.Checks == 0 || len(rep.Divergences) != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if err := cmdVerify([]string{"-workloads", "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
