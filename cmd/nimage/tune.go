package main

// The SLO-driven layout search's CLI: run the budget-bounded rebake
// loop on one serve workload, print the full search trajectory (every
// candidate, its static prediction, its measured scorecard, the
// accept/reject verdict), and optionally dump the nimage.search/v1
// journal.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nimage"
)

// validateTuneFlags rejects out-of-range search knobs up front — same
// reject-don't-clamp discipline as the serve and SLO flags.
func validateTuneFlags(budgetIters, topK int, pressures string) ([]int, error) {
	if budgetIters < 1 || budgetIters > 4096 {
		return nil, fmt.Errorf("-budget-iters must be between 1 and 4096 (search iterations after the seed round), got %d", budgetIters)
	}
	if topK < 1 || topK > 1024 {
		return nil, fmt.Errorf("-top-k must be between 1 and 1024 (candidates promoted to full measurement per iteration), got %d", topK)
	}
	if strings.TrimSpace(pressures) == "" {
		return nimage.DefaultSearchConfig().Pressures, nil
	}
	var out []int
	for _, t := range strings.Split(pressures, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || p < 0 || p > 100 {
			return nil, fmt.Errorf("-pressures terms must be percentages between 0 and 100, got %q", t)
		}
		out = append(out, p)
	}
	return out, nil
}

// cmdTune runs the SLO-driven layout search on one serve workload.
func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	name := fs.String("workload", "serve-api", "serve workload to search")
	budgetIters := fs.Int("budget-iters", 2, "search iterations after the seed round")
	topK := fs.Int("top-k", 2, "candidates promoted to full serve measurement per iteration")
	seed := fs.Uint64("seed", 0, "perturbation seed (0 = default)")
	pressures := fs.String("pressures", "", "comma-separated sweep pressure levels in percent (empty = 30,70)")
	slo := fs.String("slo", "", "SLO targets as p<quantile>=<duration> terms, e.g. p50=100us,p99=2ms (empty = defaults)")
	out := fs.String("o", "", "write the nimage.search/v1 journal to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plist, err := validateTuneFlags(*budgetIters, *topK, *pressures)
	if err != nil {
		return err
	}
	var targets []nimage.SLOTarget
	if *slo != "" {
		targets, err = nimage.ParseSLOTargets(*slo)
		if err != nil {
			return err
		}
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	if w.Serve == nil {
		return fmt.Errorf("workload %q has no serve spec; -workload must name a serve workload (see 'nimage info')", *name)
	}

	cfg := nimage.DefaultEvalConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	scfg := nimage.DefaultSearchConfig()
	scfg.BudgetIters = *budgetIters
	scfg.TopK = *topK
	scfg.Seed = *seed
	scfg.Pressures = plist
	if targets != nil {
		scfg.Targets = targets
	}

	h := nimage.NewHarness(cfg)
	res, err := h.SearchLayout(w, scfg)
	if err != nil {
		return err
	}

	rep := res.Journal
	title := fmt.Sprintf("Layout search (%s, seed %#x, %d iterations, top-%d, pressures %v)",
		rep.Workload, rep.Seed, rep.BudgetIters, rep.TopK, rep.Pressures)
	fmt.Print(nimage.SearchTableText(title, nimage.SearchRows(rep)))
	fmt.Println()
	fmt.Printf("winner: %s (%d symbols, digest %s)\n",
		rep.Final.Candidate, rep.Final.Symbols, rep.Final.OrderDigest)
	fmt.Printf("  attained %d/%d SLO cells, refault-factor geomean %.3f, budget burn %.3f\n",
		rep.Final.Attained, rep.Final.Targets, rep.Final.RefaultGeomean, rep.Final.BudgetBurn)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nimage.WriteSearchReport(f, rep); err != nil {
			return err
		}
		fmt.Printf("wrote search journal to %s\n", *out)
	}
	return nil
}
