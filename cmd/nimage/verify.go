package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nimage"
)

// cmdVerify runs the end-to-end equivalence verifier: differential builds
// per workload × strategy plus the metamorphic layout invariants. It exits
// non-zero when any check diverges.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	names := fs.String("workloads", "", "comma-separated workload names (empty = Bounce,micronaut)")
	strategies := fs.String("strategies", "", "comma-separated strategies (empty = all)")
	seed := fs.Uint64("seed", 1, "build seed of the baseline/optimized builds (instrumented uses seed+100)")
	seeds := fs.Int("seeds", 0, "additionally verify N seeded random generated programs")
	out := fs.String("o", "", "also write the verification report JSON here")
	quiet := fs.Bool("q", false, "suppress per-build progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := nimage.VerifyOptions{BaseSeed: *seed, Seeds: *seeds}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			w, err := nimage.WorkloadByName(strings.TrimSpace(n))
			if err != nil {
				return err
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			opts.Strategies = append(opts.Strategies, strings.TrimSpace(s))
		}
	}

	rep, err := nimage.Verify(opts)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Println(rep.Summary())
	if !rep.OK() {
		for _, d := range rep.Divergences {
			fmt.Println(" ", d)
		}
		return fmt.Errorf("%d divergences", len(rep.Divergences))
	}
	return nil
}
