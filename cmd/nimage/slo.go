package main

// The serve SLO observatory's CLI: sweep pressure levels with N
// concurrent request streams, score every layout against the latency
// SLOs, and print the attainment scorecard with the telemetry-overhead
// control. Optionally dumps the nimage.slo/v1 document and a per-stream
// Chrome trace of the baseline run.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nimage"
)

// validateSLOFlags rejects out-of-range SLO knobs up front, in the same
// reject-don't-clamp discipline as the serve flags.
func validateSLOFlags(streams int, pressures string) ([]int, error) {
	if streams < 1 {
		return nil, fmt.Errorf("-streams must be >= 1 (concurrent request streams), got %d", streams)
	}
	if strings.TrimSpace(pressures) == "" {
		return nimage.DefaultSLOPressures(), nil
	}
	var out []int
	for _, t := range strings.Split(pressures, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || p < 0 || p > 100 {
			return nil, fmt.Errorf("-pressures terms must be percentages between 0 and 100, got %q", t)
		}
		out = append(out, p)
	}
	return out, nil
}

// cmdSlo runs the pressure-sweep SLO scorecard over the serve workloads.
func cmdSlo(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	name := fs.String("workload", "", "serve workload (empty = every serve workload)")
	strategies := fs.String("strategies", "", "comma-separated layouts (empty = every serve strategy)")
	streams := fs.Int("streams", 2, "concurrent closed-loop request streams")
	slo := fs.String("slo", "", "SLO targets as p<quantile>=<duration> terms, e.g. p50=100us,p99=2ms (empty = defaults)")
	pressures := fs.String("pressures", "", "comma-separated pressure levels in percent (empty = 0,30,70)")
	bursts := fs.Int("bursts", 5, "request bursts after startup (burst 0 is cold)")
	burst := fs.Int("burst", 24, "requests per burst per stream")
	budget := fs.Int("budget", 0, "resident-page budget in pages (0 = unlimited)")
	policy := fs.String("policy", "lru", "eviction policy: lru|clock")
	hotPct := fs.Int("hot-pct", 80, "percent of requests hitting the hot routes")
	seed := fs.Uint64("seed", 0, "request-stream seed (0 = default)")
	trace := fs.String("trace", "", "write the baseline run's per-stream Chrome trace JSON to this file")
	out := fs.String("o", "", "write the nimage.slo/v1 JSON document to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateServeFlags(0, *hotPct, *bursts, *burst, *budget); err != nil {
		return err
	}
	plist, err := validateSLOFlags(*streams, *pressures)
	if err != nil {
		return err
	}
	var targets []nimage.SLOTarget
	if *slo != "" {
		targets, err = nimage.ParseSLOTargets(*slo)
		if err != nil {
			return err
		}
	}
	var ws []nimage.Workload
	if *name != "" {
		w, err := nimage.WorkloadByName(*name)
		if err != nil {
			return err
		}
		ws = []nimage.Workload{w}
	}
	var strats []string
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			strats = append(strats, strings.TrimSpace(s))
		}
	}

	cfg := nimage.DefaultEvalConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	scfg := nimage.ServeConfig{
		Bursts:      *bursts,
		BurstSize:   *burst,
		CacheBudget: *budget,
		HotPct:      *hotPct,
		Seed:        *seed,
		Streams:     *streams,
	}
	switch *policy {
	case "lru":
		scfg.Policy = nimage.EvictLRU
	case "clock":
		scfg.Policy = nimage.EvictClock
	default:
		return fmt.Errorf("unknown eviction policy %q", *policy)
	}

	h := nimage.NewHarness(cfg)
	rep, err := h.SLOReport(ws, strats, scfg, targets, plist)
	if err != nil {
		return err
	}

	var labels []string
	for _, t := range rep.Targets {
		labels = append(labels, t.String())
	}
	title := fmt.Sprintf("SLO attainment (%d streams, targets %s)",
		rep.Streams, strings.Join(labels, " "))
	fmt.Print(nimage.SLOTableText(title, nimage.SLORows(rep)))
	fmt.Println()
	fmt.Print(nimage.SLOOverheadTableText(nimage.SLOOverheadRows(rep)))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nimage.WriteSLOReport(f, rep); err != nil {
			return err
		}
		fmt.Printf("wrote SLO report to %s\n", *out)
	}
	if *trace != "" {
		if err := writeSLOChromeTrace(*trace, ws, h, scfg, plist); err != nil {
			return err
		}
		fmt.Printf("wrote per-stream Chrome trace to %s\n", *trace)
	}
	return nil
}

// writeSLOChromeTrace exports the baseline request trace of the first
// workload at the sweep's middle pressure as Chrome trace-event JSON.
func writeSLOChromeTrace(path string, ws []nimage.Workload, h *nimage.Harness, scfg nimage.ServeConfig, pressures []int) error {
	if len(ws) == 0 {
		ws = nimage.ServeWorkloads()
	}
	scfg.RecordRequests = true
	scfg.PressurePct = pressures[len(pressures)/2]
	outs, err := h.MeasureServe(ws[0], nimage.LayoutBaseline, scfg)
	if err != nil {
		return err
	}
	if outs[0].Requests == nil {
		return fmt.Errorf("serve run recorded no request trace")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nimage.WriteRequestChromeTrace(f, outs[0].Requests)
}
