package main

import (
	"flag"
	"fmt"
	"os"

	"nimage"
	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/image"
	"nimage/internal/osim"
	"nimage/internal/postproc"
	"nimage/internal/profiler"
)

// cmdProfile performs the profiling half of the methodology explicitly:
// instrumented build → traced run → trace file → post-processing → CSV
// ordering profile, writing both artifacts to disk (Sec. 6).
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	name := workloadFlag(fs)
	strategy := fs.String("strategy", nimage.StrategyCU, "strategy whose profile to produce")
	out := fs.String("out", "", "ordering-profile CSV path (default <workload>-<kind>.csv)")
	tracePath := fs.String("trace", "", "also write the raw trace file here")
	seed := fs.Uint64("seed", 101, "build seed of the instrumented image")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := nimage.WorkloadByName(*name)
	if err != nil {
		return err
	}
	p := w.Build()

	var instr graal.Instrumentation
	switch *strategy {
	case core.StrategyCU, core.StrategyCombined:
		instr = graal.InstrCU
	case core.StrategyMethod:
		instr = graal.InstrMethod
	case core.StrategyIncremental, core.StrategyStructural, core.StrategyHeapPath:
		instr = graal.InstrHeap
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	mode := profiler.DumpOnFull
	if w.Service {
		mode = profiler.MemoryMapped
	}

	img, err := image.Build(p, image.Options{
		Kind:      image.KindInstrumented,
		Compiler:  graal.DefaultConfig(),
		Instr:     instr,
		Mode:      mode,
		BuildSeed: *seed,
	})
	if err != nil {
		return err
	}
	tr := profiler.NewTracer(instr, mode)
	tr.MethodIdx = img.Table.Index
	tr.Numberings = img.Numberings
	tr.ObjectHandle = img.ObjectHandle

	o := osim.NewOS(osim.SSD())
	proc, err := img.NewProcess(o, tr.Hooks())
	if err != nil {
		return err
	}
	defer proc.Close()
	tr.AddCycles = func(c int64) { proc.Machine.Cycles += c }
	proc.Machine.StopOnRespond = w.Service
	if err := proc.Run(w.Args...); err != nil {
		return err
	}
	traces := tr.Finish(w.Service)
	words := 0
	for _, t := range traces {
		words += len(t.Words)
	}
	fmt.Printf("%s: %s-instrumented run (%s buffers): %d threads, %d trace words, %v simulated\n",
		w.Name, instr, mode, len(traces), words, proc.Stats().Total)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := profiler.WriteTraces(f, instr, mode, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote raw trace to %s\n", *tracePath)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.csv", w.Name, instr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	switch instr {
	case graal.InstrCU:
		a := postproc.NewCUOrderAnalysis()
		if err := postproc.Dispatch(traces, img.Table, img.Numberings, a); err != nil {
			return err
		}
		if err := postproc.WriteCodeProfile(f, a.Profile()); err != nil {
			return err
		}
		fmt.Printf("wrote cu-ordering profile (%d entries) to %s\n", len(a.Profile()), path)
	case graal.InstrMethod:
		a := postproc.NewMethodOrderAnalysis()
		if err := postproc.Dispatch(traces, img.Table, img.Numberings, a); err != nil {
			return err
		}
		if err := postproc.WriteCodeProfile(f, a.Profile()); err != nil {
			return err
		}
		fmt.Printf("wrote method-ordering profile (%d entries) to %s\n", len(a.Profile()), path)
	default:
		a := postproc.NewHeapOrderAnalysis()
		if err := postproc.Dispatch(traces, img.Table, img.Numberings, a); err != nil {
			return err
		}
		prof := a.Profile(func(h uint64) (uint64, bool) {
			return img.StrategyIDOfHandle(*strategy, h)
		})
		if err := postproc.WriteHeapProfile(f, prof); err != nil {
			return err
		}
		fmt.Printf("wrote %s heap-ordering profile (%d IDs) to %s\n", *strategy, len(prof), path)
	}
	return nil
}

// cmdViz renders the Fig. 6 comparison: .text page states of the regular
// binary vs the cu-ordered binary.
func cmdViz(args []string) error {
	fs := flag.NewFlagSet("viz", flag.ExitOnError)
	name := workloadFlag(fs)
	width := fs.Int("width", 64, "grid width in cells")
	section := fs.String("section", "text", "section to visualize: text|heap")
	ppm := fs.String("ppm", "", "also write PPM images to <ppm>-regular.ppm / <ppm>-optimized.ppm")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h := nimage.NewHarness(nimage.DefaultEvalConfig())
	var regular, optimized []nimage.PageState
	var err error
	secName, stratName := ".text", "cu-ordered"
	switch *section {
	case "text":
		regular, optimized, err = h.Figure6(*name)
	case "heap":
		// The heap-snapshot visualization the paper lists as future work.
		secName, stratName = ".svm_heap", "heap-path-ordered"
		regular, optimized, err = h.Figure6Heap(*name)
	default:
		return fmt.Errorf("unknown section %q", *section)
	}
	if err != nil {
		return err
	}
	fmt.Print(nimage.RenderPageGridsSideBySide(
		fmt.Sprintf("%s %s — regular binary", *name, secName), regular,
		fmt.Sprintf("%s %s — %s binary", *name, secName, stratName), optimized,
		*width))
	if *ppm != "" {
		for _, part := range []struct {
			suffix string
			states []nimage.PageState
		}{{"-regular.ppm", regular}, {"-optimized.ppm", optimized}} {
			if err := os.WriteFile(*ppm+part.suffix, []byte(nimage.RenderPagePPM(part.states, *width, 4)), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *ppm+part.suffix)
		}
	}
	return nil
}
