package main

// The multi-tenant fleet observatory's CLI: serve N workload × strategy
// tenants concurrently from ONE shared page cache, then print each
// tenant's scorecard (latency, fault traffic, SLO attainment, isolation
// vs its solo run) and the cross-tenant interference matrix — who
// evicted whose pages. Optionally dumps the nimage.fleet/v1 document
// and a per-tenant Chrome trace.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nimage"
)

// validateFleetFlags rejects out-of-range fleet knobs up front. A fleet
// of one is a serve run (`nimage serve` covers it), a non-positive
// budget makes "shared-cache arbitration" vacuous, and quotas are
// percentages of that budget.
func validateFleetFlags(tenants, quota, budget, bursts int) error {
	if tenants < 2 {
		return fmt.Errorf("-tenants must be >= 2 (a fleet of one is 'nimage serve'), got %d", tenants)
	}
	if quota < 0 || quota > 100 {
		return fmt.Errorf("-quota must be between 0 and 100 (percent of the shared budget), got %d", quota)
	}
	if budget <= 0 {
		return fmt.Errorf("-budget must be positive (shared resident-page budget), got %d", budget)
	}
	if bursts <= 0 {
		return fmt.Errorf("-bursts must be positive, got %d", bursts)
	}
	return nil
}

// fleetTenantMix builds n distinct workload × strategy pairs by cycling
// the workload list fastest and the strategy list per full workload
// cycle, so a 2-workload × 4-strategy default supports up to 8 tenants.
func fleetTenantMix(n, quota int, workloads, strategies []string) ([]nimage.TenantSpec, error) {
	if len(workloads) == 0 || len(strategies) == 0 {
		return nil, fmt.Errorf("empty workload or strategy list")
	}
	if max := len(workloads) * len(strategies); n > max {
		return nil, fmt.Errorf("-tenants %d exceeds the %d distinct workload×strategy pairs available", n, max)
	}
	specs := make([]nimage.TenantSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, nimage.TenantSpec{
			Workload: workloads[i%len(workloads)],
			Strategy: strategies[(i/len(workloads))%len(strategies)],
			QuotaPct: quota,
		})
	}
	return specs, nil
}

// cmdFleet runs the multi-tenant fleet observatory.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	tenants := fs.Int("tenants", 2, "number of tenants sharing the page cache (>= 2)")
	workloads := fs.String("workloads", "", "comma-separated serve workloads to cycle (empty = every serve workload)")
	strategies := fs.String("strategies", "", "comma-separated layouts to cycle (empty = identity + every serve strategy)")
	budget := fs.Int("budget", 128, "shared resident-page budget in pages (must be positive)")
	quota := fs.Int("quota", 0, "per-tenant residency quota as percent of the budget (0 = none)")
	policy := fs.String("policy", "lru", "eviction policy: lru|clock")
	pressure := fs.Int("pressure", 40, "percent of resident pages reclaimed between bursts")
	bursts := fs.Int("bursts", 5, "request bursts after startup (burst 0 is cold)")
	burst := fs.Int("burst", 16, "requests per burst per tenant")
	hotPct := fs.Int("hot-pct", 80, "percent of requests hitting the hot routes")
	seed := fs.Uint64("seed", 0, "request-stream seed (0 = default)")
	trace := fs.String("trace", "", "write the fleet run's Chrome trace JSON to this file")
	out := fs.String("o", "", "write the nimage.fleet/v1 JSON document to this file")
	report := fs.String("report", "", "write a nimage.report/v6 JSON document (fleet section) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFleetFlags(*tenants, *quota, *budget, *bursts); err != nil {
		return err
	}
	if err := validateServeFlags(*pressure, *hotPct, *bursts, *burst, *budget); err != nil {
		return err
	}

	wlist := splitList(*workloads)
	if len(wlist) == 0 {
		for _, w := range nimage.ServeWorkloads() {
			wlist = append(wlist, w.Name)
		}
	}
	slist := splitList(*strategies)
	if len(slist) == 0 {
		slist = append([]string{nimage.LayoutBaseline}, nimage.ServeStrategies()...)
	}
	specs, err := fleetTenantMix(*tenants, *quota, wlist, slist)
	if err != nil {
		return err
	}

	fcfg := nimage.FleetConfig{
		Tenants:     specs,
		Bursts:      *bursts,
		BurstSize:   *burst,
		PressurePct: *pressure,
		CacheBudget: *budget,
		HotPct:      *hotPct,
		Seed:        *seed,
		// The Chrome trace needs the per-request spans.
		RecordRequests: *trace != "",
	}
	switch *policy {
	case "lru":
		fcfg.Policy = nimage.EvictLRU
	case "clock":
		fcfg.Policy = nimage.EvictClock
	default:
		return fmt.Errorf("unknown eviction policy %q", *policy)
	}

	cfg := nimage.DefaultEvalConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	// The report's Runs section needs the shared OS's obs snapshot.
	cfg.Observe = *report != ""
	h := nimage.NewHarness(cfg)
	fos, err := h.MeasureFleet(fcfg)
	if err != nil {
		return err
	}
	fo := fos[0]
	rep := fo.FleetReport()

	title := fmt.Sprintf("Fleet scorecard (%d tenants, budget %d pages, %s, %d%% pressure)",
		len(rep.Tenants), rep.CacheBudget, rep.Policy, rep.PressurePct)
	fmt.Print(nimage.FleetTableText(title, nimage.FleetRows(rep)))
	fmt.Println()
	fmt.Print(nimage.FleetMatrixText(rep.EvictedBy, rep.TotalEvictions))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nimage.WriteFleetReport(f, rep); err != nil {
			return err
		}
		fmt.Printf("wrote fleet report to %s\n", *out)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nimage.WriteFleetChromeTrace(f, rep, fo.Requests); err != nil {
			return err
		}
		fmt.Printf("wrote fleet Chrome trace to %s\n", *trace)
	}
	if *report != "" {
		doc, err := h.FleetServeReport(fcfg)
		if err != nil {
			return err
		}
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := doc.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote fleet report document to %s\n", *report)
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
