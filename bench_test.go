// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. 7), plus ablations of the design choices DESIGN.md calls out.
//
// Each figure benchmark executes the full measurement pipeline for its
// workloads/strategies once per b.N iteration and reports the resulting
// factors as custom metrics (the paper's factors are M_baseline/M_optimized,
// higher is better), so `go test -bench=.` reproduces the evaluation and
// prints the numbers EXPERIMENTS.md records. Wall-clock time per iteration
// is the cost of the whole pipeline (builds + profiling + measured runs),
// not of a single program start.
package nimage_test

import (
	"fmt"
	"testing"

	"nimage"
	"nimage/internal/core"
	"nimage/internal/eval"
	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/image"
	"nimage/internal/ir"
	"nimage/internal/murmur"
	"nimage/internal/osim"
	"nimage/internal/profiler"
	"nimage/internal/workloads"
)

// benchConfig is the reduced protocol used by the benchmarks (the paper
// uses 10 builds × 10 iterations; nimage-eval exposes both knobs).
func benchConfig() eval.Config {
	cfg := eval.DefaultConfig()
	cfg.Builds = 2
	cfg.Iterations = 2
	return cfg
}

// reportTable turns a figure table's geomean row into benchmark metrics.
func reportTable(b *testing.B, t *eval.Table) {
	b.Helper()
	for _, s := range t.Strategies {
		c := t.Get(eval.GeoMeanRow, s)
		if c == nil {
			b.Fatalf("no geomean cell for %s", s)
		}
		b.ReportMetric(c.Factor, "x-geomean/"+metricName(s))
	}
}

func metricName(s string) string {
	switch s {
	case core.StrategyIncremental:
		return "incremental"
	case core.StrategyStructural:
		return "structural"
	case core.StrategyHeapPath:
		return "heappath"
	case core.StrategyCombined:
		return "combined"
	default:
		return s
	}
}

// BenchmarkFigure2PageFaultsAWFY regenerates Fig. 2: page-fault reduction
// of every ordering strategy on the 14 AWFY benchmarks.
func BenchmarkFigure2PageFaultsAWFY(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := eval.NewHarness(benchConfig())
		t, err := h.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFigure3PageFaultsMicroservices regenerates Fig. 3: page-fault
// reduction on micronaut/quarkus/spring.
func BenchmarkFigure3PageFaultsMicroservices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := eval.NewHarness(benchConfig())
		t, err := h.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFigure4SpeedupMicroservices regenerates Fig. 4: time-to-first-
// response speedup on the microservices.
func BenchmarkFigure4SpeedupMicroservices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := eval.NewHarness(benchConfig())
		t, err := h.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFigure5SpeedupAWFY regenerates Fig. 5: end-to-end execution-time
// speedup on AWFY.
func BenchmarkFigure5SpeedupAWFY(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := eval.NewHarness(benchConfig())
		t, err := h.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkProfilingOverhead regenerates the Sec. 7.4 table: instrumented
// vs regular run time per instrumentation kind, on AWFY (dump-on-full) and
// the microservices (memory-mapped).
func BenchmarkProfilingOverhead(b *testing.B) {
	suites := []struct {
		name string
		ws   []workloads.Workload
	}{
		{"awfy", workloads.AWFY()},
		{"microservices", workloads.Microservices()},
	}
	for _, suite := range suites {
		b.Run(suite.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := eval.NewHarness(benchConfig())
				t, err := h.Overhead(suite.ws)
				if err != nil {
					b.Fatal(err)
				}
				for _, g := range eval.OverheadGroups {
					c := t.Get(eval.GeoMeanRow, g)
					b.ReportMetric(c.Factor, "x-overhead/"+g)
				}
			}
		})
	}
}

// BenchmarkAccessedObjectFraction regenerates the Sec. 7.2 statistic: the
// fraction of heap-snapshot objects an AWFY run accesses (paper: ~4%).
func BenchmarkAccessedObjectFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Builds, cfg.Iterations = 1, 1
		h := eval.NewHarness(cfg)
		fr, err := h.AccessedFraction(workloads.AWFY())
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, f := range fr {
			sum += f
		}
		b.ReportMetric(100*sum/float64(len(fr)), "%-accessed")
	}
}

// BenchmarkFigure6Visualization regenerates the Fig. 6 page-grid data for
// Bounce and reports the faulted-page counts of the two layouts.
func BenchmarkFigure6Visualization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		h := eval.NewHarness(cfg)
		regular, optimized, err := h.Figure6("Bounce")
		if err != nil {
			b.Fatal(err)
		}
		count := func(st []osim.PageState) (f float64) {
			for _, s := range st {
				if s == osim.PageFaulted {
					f++
				}
			}
			return
		}
		b.ReportMetric(count(regular), "pages-faulted/regular")
		b.ReportMetric(count(optimized), "pages-faulted/cu")
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------------

// ablationPipeline measures one workload/strategy pipeline under a custom
// compiler config and returns the relevant fault factor.
func ablationFactor(b *testing.B, cfg eval.Config, workload, strategy string) float64 {
	b.Helper()
	h := eval.NewHarness(cfg)
	w, err := workloads.ByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	base, err := h.MeasureBaseline(w)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := h.MeasureStrategy(w, strategy)
	if err != nil {
		b.Fatal(err)
	}
	var bm, om float64
	for _, m := range base {
		bm += m.TextFaults + m.HeapFaults
	}
	for _, m := range opt.Measures {
		om += m.TextFaults + m.HeapFaults
	}
	bm /= float64(len(base))
	om /= float64(len(opt.Measures))
	if om == 0 {
		return 0
	}
	return bm / om
}

// BenchmarkAblationMaxDepth ablates the structural hash's recursion bound
// (the paper fixes MAX_DEPTH = 2 as the sweet spot between hash collisions
// and cross-build matching, Sec. 7.1): it reports the cross-build ID
// agreement of the structural hash at depths 0–4 on Bounce.
func BenchmarkAblationMaxDepth(b *testing.B) {
	w, err := workloads.ByName("Bounce")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build()
	for depth := 1; depth <= 4; depth++ {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agree := structuralAgreement(b, p, depth)
				b.ReportMetric(agree, "%-id-agreement")
			}
		})
	}
}

// structuralAgreement builds two diverging images and measures how many
// structural-hash IDs of one build also occur in the other.
func structuralAgreement(b *testing.B, p *ir.Program, depth int) float64 {
	b.Helper()
	mk := func(seed uint64) map[uint64]bool {
		img, err := image.Build(p, image.Options{
			Kind: image.KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		ids := core.StructuralHash{MaxDepth: depth}.AssignIDs(img.Snapshot)
		set := make(map[uint64]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		return set
	}
	a, bs := mk(1), mk(2)
	common := 0
	for id := range a {
		if bs[id] {
			common++
		}
	}
	return 100 * float64(common) / float64(len(a))
}

// BenchmarkAblationFaultAround ablates the OS fault-around cluster size
// (1–16 pages): larger clusters absorb scattered faults and shrink the
// achievable reduction.
func BenchmarkAblationFaultAround(b *testing.B) {
	for _, fa := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cluster=%d", fa), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Builds, cfg.Iterations = 1, 1
				cfg.FaultAround = fa
				f := ablationFactor(b, cfg, "Bounce", core.StrategyCombined)
				b.ReportMetric(f, "x-combined")
			}
		})
	}
}

// BenchmarkAblationInlineBudget ablates the inliner's small-callee limit:
// instrumentation perturbs inlining more when methods sit near the limit,
// degrading profile→binary matching.
func BenchmarkAblationInlineBudget(b *testing.B) {
	for _, lim := range []int{48, 96, 192} {
		b.Run(fmt.Sprintf("inline=%d", lim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Builds, cfg.Iterations = 1, 1
				cfg.Compiler.InlineSmallSize = lim
				f := ablationFactor(b, cfg, "Richards", core.StrategyCombined)
				b.ReportMetric(f, "x-combined")
			}
		})
	}
}

// BenchmarkAblationSaturation ablates the virtual-call saturation
// threshold of the reachability analysis and reports the reachable-method
// count (conservatism) for Richards, the most polymorphic workload.
func BenchmarkAblationSaturation(b *testing.B) {
	w, err := workloads.ByName("Richards")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build()
	for _, thr := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := graal.DefaultConfig()
				cfg.SaturationThreshold = thr
				r := graal.Analyze(p, cfg)
				b.ReportMetric(float64(len(r.MethodOrder)), "reachable-methods")
				b.ReportMetric(float64(r.SaturatedSites), "saturated-sites")
			}
		})
	}
}

// BenchmarkAblationPerTypeCounters ablates the incremental-ID design
// choice of per-type counters vs a single global counter (Sec. 5.1 argues
// per-type counters confine inaccuracies): it compares cross-build ID
// agreement of both variants.
func BenchmarkAblationPerTypeCounters(b *testing.B) {
	w, err := workloads.ByName("Bounce")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build()
	snapshots := func() (*heap.Snapshot, *heap.Snapshot) {
		mk := func(seed uint64) *heap.Snapshot {
			img, err := image.Build(p, image.Options{
				Kind: image.KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			return img.Snapshot
		}
		return mk(1), mk(2)
	}
	agreement := func(ids1, ids2 map[*heap.Object]uint64, s1, s2 *heap.Snapshot, key func(*heap.Object) string) float64 {
		d1 := map[uint64]string{}
		for o, id := range ids1 {
			d1[id] = key(o)
		}
		agree, common := 0, 0
		for o, id := range ids2 {
			if k, ok := d1[id]; ok {
				common++
				if k == key(o) {
					agree++
				}
			}
		}
		if common == 0 {
			return 0
		}
		return 100 * float64(agree) / float64(common)
	}
	key := func(o *heap.Object) string {
		if o.IsString() {
			return "s:" + o.Str
		}
		if o.Root {
			return "r:" + o.Reason
		}
		return "t:" + o.TypeName()
	}
	b.Run("per-type", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s1, s2 := snapshots()
			a := agreement(core.IncrementalID{}.AssignIDs(s1), core.IncrementalID{}.AssignIDs(s2), s1, s2, key)
			b.ReportMetric(a, "%-id-agreement")
		}
	})
	b.Run("global", func(b *testing.B) {
		global := func(s *heap.Snapshot) map[*heap.Object]uint64 {
			ids := make(map[*heap.Object]uint64, len(s.Objects))
			for i, o := range s.Objects {
				ids[o] = uint64(i) + 1
			}
			return ids
		}
		for i := 0; i < b.N; i++ {
			s1, s2 := snapshots()
			a := agreement(global(s1), global(s2), s1, s2, key)
			b.ReportMetric(a, "%-id-agreement")
		}
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core machinery.
// ---------------------------------------------------------------------------

// BenchmarkImageBuild measures one regular image build of Bounce
// (compile + build-time initialization + snapshotting + layout).
func BenchmarkImageBuild(b *testing.B) {
	w, _ := workloads.ByName("Bounce")
	p := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := image.Build(p, image.Options{
			Kind: image.KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRun measures one cold start of a prebuilt Bounce image.
func BenchmarkColdRun(b *testing.B) {
	w, _ := workloads.ByName("Bounce")
	p := w.Build()
	img, err := image.Build(p, image.Options{
		Kind: image.KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	o := osim.NewOS(osim.SSD())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.DropCaches()
		proc, err := img.NewProcess(o, nimage.Hooks{})
		if err != nil {
			b.Fatal(err)
		}
		if err := proc.Run(w.Args...); err != nil {
			b.Fatal(err)
		}
		proc.Close()
	}
}

// BenchmarkPathNumbering measures Ball–Larus numbering over all compiled
// methods of Bounce.
func BenchmarkPathNumbering(b *testing.B) {
	w, _ := workloads.ByName("Bounce")
	p := w.Build()
	comp := graal.Compile(p, graal.DefaultConfig(), graal.InstrNone, false)
	methods := comp.Reach.CompiledMethods()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range methods {
			profiler.ComputeNumbering(m, 0)
		}
	}
}

// BenchmarkStructuralHashIDs measures structural-hash identity assignment
// over a full snapshot.
func BenchmarkStructuralHashIDs(b *testing.B) {
	w, _ := workloads.ByName("Bounce")
	p := w.Build()
	img, err := image.Build(p, image.Options{
		Kind: image.KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.StructuralHash{MaxDepth: core.DefaultMaxDepth}.AssignIDs(img.Snapshot)
	}
}

// BenchmarkHeapPathIDs measures heap-path identity assignment.
func BenchmarkHeapPathIDs(b *testing.B) {
	w, _ := workloads.ByName("Bounce")
	p := w.Build()
	img, err := image.Build(p, image.Options{
		Kind: image.KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.HeapPath{}.AssignIDs(img.Snapshot)
	}
}

// BenchmarkMurmurSnapshotEncoding measures the raw hash throughput used by
// the identity strategies.
func BenchmarkMurmurSnapshotEncoding(b *testing.B) {
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		murmur.Sum64(data)
	}
}

// BenchmarkBaselinePettisHansen compares the classic Pettis–Hansen
// call-graph ordering [44] against the paper's cu ordering for *cold
// start*. PH optimizes steady-state locality from edge frequencies; the
// paper argues (Sec. 8) that such orderings are not aimed at startup.
//
// Observed result: when the profiling run equals the measured run, both
// strategies compact the same executed-CU set to the front of .text, so
// their *total* cold-start fault counts coincide — the fault count of a
// completed run depends on the hot set, not on its internal order. The
// first-execution order the paper optimizes (Property 1, Sec. 4) matters
// for the *progression* of paging (interrupted startups, sequential
// readahead), which this simulator's fault accounting does not reward;
// the bench documents that equivalence explicitly.
func BenchmarkBaselinePettisHansen(b *testing.B) {
	for _, wname := range []string{"Bounce", "micronaut"} {
		b.Run(wname, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Builds, cfg.Iterations = 1, 1
				h := eval.NewHarness(cfg)
				w, err := workloads.ByName(wname)
				if err != nil {
					b.Fatal(err)
				}
				base, err := h.MeasureBaseline(w)
				if err != nil {
					b.Fatal(err)
				}
				factor := func(strategy string) float64 {
					opt, err := h.MeasureStrategy(w, strategy)
					if err != nil {
						b.Fatal(err)
					}
					var bm, om float64
					for _, m := range base {
						bm += m.TextFaults
					}
					for _, m := range opt.Measures {
						om += m.TextFaults
					}
					return bm / om * float64(len(opt.Measures)) / float64(len(base))
				}
				b.ReportMetric(factor(core.StrategyCU), "x-text/cu")
				b.ReportMetric(factor(core.StrategyPettisHansen), "x-text/pettis-hansen")
			}
		})
	}
}

// BenchmarkAblationAdaptiveReadahead re-runs the cu-vs-Pettis-Hansen
// comparison with Linux-style readahead escalation enabled. One might
// expect the sequential ramp-up to reward the paper's first-execution
// ordering (Property 1) over PH's frequency chains; the measured result is
// that they stay equal: startup interleaves .text and .svm_heap faults,
// and the per-file readahead state resets on every section switch, so the
// ramp never builds up — the benefit of first-execution ordering comes
// from compaction, not from intra-region sequentiality. The bench keeps
// this (negative) result observable.
func BenchmarkAblationAdaptiveReadahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Builds, cfg.Iterations = 1, 1
		cfg.AdaptiveReadahead = true
		cfg.FaultAround = 2 // fine-grained windows expose ordering effects
		h := eval.NewHarness(cfg)
		w, err := workloads.ByName("Bounce")
		if err != nil {
			b.Fatal(err)
		}
		base, err := h.MeasureBaseline(w)
		if err != nil {
			b.Fatal(err)
		}
		time := func(strategy string) float64 {
			opt, err := h.MeasureStrategy(w, strategy)
			if err != nil {
				b.Fatal(err)
			}
			var s float64
			for _, m := range opt.Measures {
				s += m.Time
			}
			return s / float64(len(opt.Measures))
		}
		var bt float64
		for _, m := range base {
			bt += m.Time
		}
		bt /= float64(len(base))
		b.ReportMetric(bt/time(core.StrategyCU), "x-speed/cu")
		b.ReportMetric(bt/time(core.StrategyPettisHansen), "x-speed/pettis-hansen")
	}
}
