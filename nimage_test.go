package nimage_test

import (
	"bytes"
	"strings"
	"testing"

	"nimage"
)

// TestFacadeQuickPipeline exercises the public API end to end: DSL-built
// program → regular build → profile-guided build → cold run comparison.
func TestFacadeQuickPipeline(t *testing.T) {
	w, err := nimage.WorkloadByName("Queens")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build()

	regular, err := nimage.BuildImage(p, nimage.BuildOptions{
		Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(), BuildSeed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nimage.ProfileAndOptimize(p, nimage.PipelineOptions{
		Compiler:         nimage.DefaultCompilerConfig(),
		Strategy:         nimage.StrategyCombined,
		InstrumentedSeed: 13,
		OptimizedSeed:    2,
		Args:             w.Args,
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(img *nimage.Image) nimage.RunStats {
		o := nimage.NewOS(nimage.SSD())
		proc, err := img.NewProcess(o, nimage.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		defer proc.Close()
		if err := proc.Run(w.Args...); err != nil {
			t.Fatal(err)
		}
		return proc.Stats()
	}
	base, opt := run(regular), run(res.Optimized)
	bf := base.TextFaults.Total() + base.HeapFaults.Total()
	of := opt.TextFaults.Total() + opt.HeapFaults.Total()
	if of >= bf {
		t.Errorf("combined strategy did not reduce faults: %d -> %d", bf, of)
	}
	if opt.Total >= base.Total {
		t.Errorf("no speedup: %v -> %v", base.Total, opt.Total)
	}
}

// TestFacadeDSL builds a tiny program through the exported DSL surface.
func TestFacadeDSL(t *testing.T) {
	b := nimage.NewProgramBuilder("tiny")
	b.Class("java.lang.Object")
	b.Class("java.lang.String")
	c := b.Class("T")
	c.Field("x", nimage.IntType())
	m := c.StaticMethod("main", 0, nimage.VoidType())
	e := m.Entry()
	o := e.New("T")
	k := e.ConstInt(41)
	one := e.ConstInt(1)
	e.PutField(o, "T", "x", e.Arith(nimage.OpAdd, k, one))
	e.RetVoid()
	b.SetEntry("T", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	img, err := nimage.BuildImage(p, nimage.BuildOptions{
		Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	oS := nimage.NewOS(nimage.NFS())
	proc, err := img.NewProcess(oS, nimage.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStrategiesAndWorkloads(t *testing.T) {
	// The paper's six strategies, the graph-based serve layouts, and the
	// searched layout.
	if len(nimage.Strategies()) != 9 {
		t.Errorf("strategies = %v", nimage.Strategies())
	}
	found := map[string]bool{}
	for _, s := range nimage.Strategies() {
		found[s] = true
	}
	if !found[nimage.StrategyC3] || !found[nimage.StrategyExtTSP] || !found[nimage.StrategySLOSearch] {
		t.Errorf("graph strategies missing from %v", nimage.Strategies())
	}
	if len(nimage.HeapStrategies()) != 3 {
		t.Error("heap strategies")
	}
	if len(nimage.AWFY()) != 14 || len(nimage.Microservices()) != 3 || len(nimage.AllWorkloads()) != 17 {
		t.Error("workload counts")
	}
	if _, err := nimage.WorkloadByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeVisualization(t *testing.T) {
	states := []nimage.PageState{0, 1, 2, 2}
	grid := nimage.RenderPageGrid(states, 2)
	if grid != ".o\n##\n" {
		t.Errorf("grid = %q", grid)
	}
	duo := nimage.RenderPageGridsSideBySide("a", states, "b", states, 2)
	if !strings.Contains(duo, "a — 4 pages") || !strings.Contains(duo, "b — 4 pages") {
		t.Errorf("side by side:\n%s", duo)
	}
	if !strings.HasPrefix(nimage.RenderPagePPM(states, 2, 1), "P3\n") {
		t.Error("ppm header")
	}
}

// TestFacadeRecipeRoundTrip exports an optimized image as a .nimg recipe
// and bakes it back, checking layout determinism through the public API.
func TestFacadeRecipeRoundTrip(t *testing.T) {
	w, err := nimage.WorkloadByName("Sieve")
	if err != nil {
		t.Fatal(err)
	}
	res, err := nimage.ProfileAndOptimize(w.Build(), nimage.PipelineOptions{
		Compiler:         nimage.DefaultCompilerConfig(),
		Strategy:         nimage.StrategyHeapPath,
		InstrumentedSeed: 3,
		OptimizedSeed:    4,
		Args:             w.Args,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nimage.WriteRecipe(&buf, nimage.RecipeOf(res.Optimized)); err != nil {
		t.Fatal(err)
	}
	r, err := nimage.ReadRecipe(&buf)
	if err != nil {
		t.Fatal(err)
	}
	baked, err := r.Bake()
	if err != nil {
		t.Fatal(err)
	}
	if baked.FileSize != res.Optimized.FileSize ||
		baked.HeapMatchStats.MatchedObjects != res.Optimized.HeapMatchStats.MatchedObjects {
		t.Error("baked image differs from original")
	}
}
