// Custom workload + custom heap-ordering strategy.
//
// This example shows the two extension points of the library:
//
//  1. a user-defined program written in the mini-IR builder DSL (a small
//     inventory service with a build-time-initialized catalog), and
//  2. a user-defined object-identity strategy ("type+shape") plugged into
//     the optimizing build in place of the paper's three strategies, using
//     the same profile→match machinery (Sec. 5).
//
// The custom strategy hashes only the object's type, rough shape, and root
// reason — cheaper than the structural hash, more robust than incremental
// IDs, and less precise than heap paths. The example measures where it
// lands.
package main

import (
	"fmt"
	"hash/fnv"
	"log"

	"nimage"
)

// typeShapeStrategy is the custom identity strategy: objects are
// identified by their type, payload size, and — for roots — inclusion
// reason, disambiguated by a per-key counter.
type typeShapeStrategy struct{}

func (typeShapeStrategy) Name() string { return "type+shape" }

func (typeShapeStrategy) AssignIDs(snap *nimage.HeapSnapshot) map[*nimage.HeapObject]uint64 {
	ids := make(map[*nimage.HeapObject]uint64, len(snap.Objects))
	counters := make(map[string]uint64)
	for _, o := range snap.Objects {
		key := fmt.Sprintf("%s/%d", o.TypeName(), o.Size)
		if o.IsString() {
			key += "/" + o.Str
		} else if o.Root {
			key += "/" + o.Reason
		}
		counters[key]++
		h := fnv.New64a()
		fmt.Fprintf(h, "%s#%d", key, counters[key])
		ids[o] = h.Sum64()
	}
	return ids
}

// buildInventory constructs the custom workload: a catalog of products is
// initialized at image build time; at runtime a few lookups execute.
func buildInventory() *nimage.Program {
	b := nimage.NewProgramBuilder("inventory")
	b.Class("java.lang.Object")
	b.Class("java.lang.String")

	prod := b.Class("shop.Product")
	prod.Field("name", nimage.StringType())
	prod.Field("price", nimage.IntType())
	prod.Field("stock", nimage.IntType())

	cat := b.Class("shop.Catalog")
	cat.Static("products", nimage.ArrayType(nimage.RefType("shop.Product")))
	cl := cat.Clinit()
	e := cl.Entry()
	n := e.ConstInt(300)
	arr := e.NewArray(nimage.RefType("shop.Product"), n)
	zero := e.ConstInt(0)
	pfx := e.Str("product-")
	exit := e.For(zero, n, 1, func(body *nimage.BlockBuilder, i nimage.Reg) *nimage.BlockBuilder {
		o := body.New("shop.Product")
		sfx := body.Intrinsic("itoa", i)
		nm := body.Intrinsic("concat", pfx, sfx)
		body.PutField(o, "shop.Product", "name", nm)
		k := body.ConstInt(17)
		body.PutField(o, "shop.Product", "price", body.Arith(nimage.OpMul, i, k))
		body.ASet(arr, i, o)
		return body
	})
	exit.PutStatic("shop.Catalog", "products", arr)
	exit.RetVoid()

	app := b.Class("shop.Main")
	mm := app.StaticMethod("main", 0, nimage.VoidType())
	me := mm.Entry()
	prods := me.GetStatic("shop.Catalog", "products")
	z := me.ConstInt(0)
	hi := me.ConstInt(300)
	total := me.ConstInt(0)
	done := me.For(z, hi, 17, func(body *nimage.BlockBuilder, i nimage.Reg) *nimage.BlockBuilder {
		o := body.AGet(prods, i)
		p := body.GetField(o, "shop.Product", "price")
		body.ArithTo(total, nimage.OpAdd, total, p)
		return body
	})
	s := done.Intrinsic("itoa", total)
	done.IntrinsicVoid("print", s)
	done.RetVoid()
	b.SetEntry("shop.Main", "main")

	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	prog := buildInventory()
	fmt.Printf("custom workload: %d classes, %d methods\n\n", len(prog.Classes), prog.NumMethods())

	// Profiling build (seed A): run it and record the first-access order
	// of the snapshot objects, then translate to custom-strategy IDs.
	instrumented, err := nimage.BuildImage(prog, nimage.BuildOptions{
		Kind: nimage.KindInstrumented, Compiler: nimage.DefaultCompilerConfig(), BuildSeed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	var accessOrder []*nimage.HeapObject
	seen := map[*nimage.HeapObject]bool{}
	o := nimage.NewOS(nimage.SSD())
	proc, err := instrumented.NewProcess(o, nimage.Hooks{
		OnAccess: func(tid int, obj *nimage.HeapObject, instr bool) {
			if instr && obj.InSnapshot && !seen[obj] {
				seen[obj] = true
				accessOrder = append(accessOrder, obj)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := proc.Run(); err != nil {
		log.Fatal(err)
	}
	proc.Close()

	strategy := typeShapeStrategy{}
	profIDs := strategy.AssignIDs(instrumented.Snapshot)
	profile := make([]uint64, 0, len(accessOrder))
	for _, obj := range accessOrder {
		profile = append(profile, profIDs[obj])
	}
	fmt.Printf("profiled %d accessed objects of %d in the snapshot\n",
		len(profile), len(instrumented.Snapshot.Objects))

	// Optimizing build (seed B — a genuinely different build) consuming
	// the custom-strategy profile.
	optimized, err := nimage.BuildImage(prog, nimage.BuildOptions{
		Kind:         nimage.KindOptimized,
		Compiler:     nimage.DefaultCompilerConfig(),
		BuildSeed:    8,
		HeapProfile:  profile,
		HeapStrategy: strategy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d objects across builds (%d profile entries)\n\n",
		optimized.HeapMatchStats.MatchedObjects, optimized.HeapMatchStats.ProfileLen)

	regular, err := nimage.BuildImage(prog, nimage.BuildOptions{
		Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(), BuildSeed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	run := func(img *nimage.Image) nimage.RunStats {
		osys := nimage.NewOS(nimage.SSD())
		pr, err := img.NewProcess(osys, nimage.Hooks{})
		if err != nil {
			log.Fatal(err)
		}
		defer pr.Close()
		if err := pr.Run(); err != nil {
			log.Fatal(err)
		}
		return pr.Stats()
	}
	base, opt := run(regular), run(optimized)
	fmt.Printf("%-22s %10s %12s\n", "cold start", "regular", "type+shape")
	fmt.Printf("%-22s %10d %12d\n", ".svm_heap page faults", base.HeapFaults.Total(), opt.HeapFaults.Total())
	fmt.Printf("%-22s %10v %12v\n", "end-to-end time", base.Total, opt.Total)
}
