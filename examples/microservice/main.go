// Microservice startup: measure the elapsed time until the first HTTP
// response for the three framework workloads of the paper (micronaut,
// quarkus, spring helloworld), comparing the regular binary against every
// ordering strategy (Sec. 7.1: the harness starts the service, waits for
// the first response, and kills it — so instrumented runs use the
// memory-mapped trace-buffer mode to survive the SIGKILL).
package main

import (
	"fmt"
	"log"
	"time"

	"nimage"
)

func coldResponse(img *nimage.Image, w nimage.Workload) (time.Duration, int64) {
	o := nimage.NewOS(nimage.SSD())
	proc, err := img.NewProcess(o, nimage.Hooks{})
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()
	proc.Machine.StopOnRespond = true // harness kills the service after the first response
	if err := proc.Run(w.Args...); err != nil {
		log.Fatal(err)
	}
	st := proc.Stats()
	return st.TimeToResponse, st.TextFaults.Total() + st.HeapFaults.Total()
}

func main() {
	for _, w := range nimage.Microservices() {
		prog := w.Build()
		fmt.Printf("%s helloworld: %d classes, %d methods\n", w.Name, len(prog.Classes), prog.NumMethods())

		regular, err := nimage.BuildImage(prog, nimage.BuildOptions{
			Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(), BuildSeed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		baseT, baseF := coldResponse(regular, w)
		fmt.Printf("  %-16s first response in %10v  (%3d section faults)\n", "regular", baseT, baseF)

		for _, strategy := range nimage.Strategies() {
			// Service workloads are killed right after the first response
			// (Sec. 7.1), so their profiling runs MUST use the
			// memory-mapped buffer mode — with DumpOnFull, the SIGKILL
			// would discard the unflushed buffers and the profiles would
			// come out empty (Sec. 6.1).
			res, err := nimage.ProfileAndOptimize(prog, nimage.PipelineOptions{
				Compiler:         nimage.DefaultCompilerConfig(),
				Strategy:         strategy,
				InstrumentedSeed: 23,
				OptimizedSeed:    5,
				Mode:             nimage.MemoryMapped,
				Args:             w.Args,
				Service:          true,
			})
			if err != nil {
				log.Fatal(err)
			}
			t, f := coldResponse(res.Optimized, w)
			fmt.Printf("  %-16s first response in %10v  (%3d section faults)  %.2fx\n",
				strategy, t, f, float64(baseT)/float64(t))
		}
		fmt.Println()
	}
}
