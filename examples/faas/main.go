// FaaS cold-start simulation — the scenario that motivates the paper's
// introduction: a Function-as-a-Service platform balances keeping idle
// function environments in memory against starting them from scratch. The
// platform would like to evict idle functions aggressively, but every
// eviction turns the next invocation into a cold start whose latency
// counts against the service-level agreement.
//
// This example replays a deterministic invocation stream against a
// simulated platform with an idle-eviction timeout. Evicting drops the
// function's pages from the OS page cache, so the next invocation pays
// cold-start I/O. It then compares the latency percentiles of the regular
// binary against the cu+heap-path-optimized binary, and shows how much
// shorter the keep-alive window can be at an unchanged latency SLA.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"nimage"
)

// invocationGaps is the deterministic stream of inter-arrival gaps
// (a bursty trace: clusters of quick requests separated by idle spells).
func invocationGaps(n int) []time.Duration {
	gaps := make([]time.Duration, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range gaps {
		state = state*6364136223846793005 + 1442695040888963407
		r := (state >> 33) % 1000
		switch {
		case r < 600: // burst: almost immediate follow-up
			gaps[i] = time.Duration(1+r%20) * time.Millisecond
		case r < 900: // short pause
			gaps[i] = time.Duration(50+r%400) * time.Millisecond
		default: // idle spell
			gaps[i] = time.Duration(2+r%10) * time.Second
		}
	}
	return gaps
}

// replay runs the invocation stream against one image with the given
// keep-alive window and returns the sorted latencies.
func replay(img *nimage.Image, args []int64, keepAlive time.Duration, gaps []time.Duration) []time.Duration {
	o := nimage.NewOS(nimage.SSD())
	var idle time.Duration
	latencies := make([]time.Duration, 0, len(gaps))
	for _, gap := range gaps {
		idle += gap
		if idle > keepAlive {
			// The platform evicted the idle environment; its pages left
			// the page cache and the next start is cold.
			o.DropCaches()
		}
		proc, err := img.NewProcess(o, nimage.Hooks{})
		if err != nil {
			log.Fatal(err)
		}
		if err := proc.Run(args...); err != nil {
			log.Fatal(err)
		}
		st := proc.Stats()
		latencies = append(latencies, st.Total)
		proc.Close()
		idle = 0
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies
}

func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	w, err := nimage.WorkloadByName("Json")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build()

	regular, err := nimage.BuildImage(prog, nimage.BuildOptions{
		Kind: nimage.KindRegular, Compiler: nimage.DefaultCompilerConfig(), BuildSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := nimage.ProfileAndOptimize(prog, nimage.PipelineOptions{
		Compiler:         nimage.DefaultCompilerConfig(),
		Strategy:         nimage.StrategyCombined,
		InstrumentedSeed: 11,
		OptimizedSeed:    3,
		Args:             w.Args,
	})
	if err != nil {
		log.Fatal(err)
	}

	gaps := invocationGaps(400)
	fmt.Printf("FaaS simulation: %d invocations of %s, bursty arrivals\n\n", len(gaps), w.Name)
	fmt.Printf("%-10s %-14s %10s %10s %10s %8s\n", "keep-alive", "binary", "p50", "p95", "p99", "colds")
	for _, keep := range []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second} {
		for _, c := range []struct {
			name string
			img  *nimage.Image
		}{{"regular", regular}, {"cu+heap path", res.Optimized}} {
			lat := replay(c.img, w.Args, keep, gaps)
			colds := 0
			warmest := lat[0]
			for _, l := range lat {
				if l > warmest*3/2 {
					colds++
				}
			}
			fmt.Printf("%-10v %-14s %10v %10v %10v %8d\n",
				keep, c.name, pct(lat, 0.50), pct(lat, 0.95), pct(lat, 0.99), colds)
		}
	}

	// How short can the keep-alive window be while still meeting an SLA
	// set between the two cold-start latencies? The regular binary can
	// only meet it by keeping environments warm long enough that cold
	// starts drop out of the p95; the optimized binary meets it even when
	// every burst begins cold.
	coldRegular := pct(replay(regular, w.Args, 0, gaps), 0.50)
	coldOptimized := pct(replay(res.Optimized, w.Args, 0, gaps), 0.50)
	target := (coldRegular + coldOptimized) / 2
	fmt.Printf("\ncold start: regular %v, cu+heap path %v\n", coldRegular, coldOptimized)
	fmt.Printf("SLA target: p95 <= %v\n", target)
	for _, c := range []struct {
		name string
		img  *nimage.Image
	}{{"regular", regular}, {"cu+heap path", res.Optimized}} {
		best := time.Duration(-1)
		for _, keep := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond,
			time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second} {
			if pct(replay(c.img, w.Args, keep, gaps), 0.95) <= target {
				best = keep
				break
			}
		}
		if best < 0 {
			fmt.Printf("  %-14s cannot meet the target\n", c.name)
		} else {
			fmt.Printf("  %-14s meets it with keep-alive %v\n", c.name, best)
		}
	}
	fmt.Println("\nA faster cold start lets the platform evict idle functions sooner")
	fmt.Println("without breaking the SLA — the motivation of Sec. 1 of the paper.")
}
