// Quickstart: build a benchmark twice — once as a regular Native-Image
// binary and once through the paper's full profile-guided pipeline with
// the combined "cu+heap path" strategy — and compare cold-start page
// faults, I/O time, and end-to-end time.
package main

import (
	"fmt"
	"log"

	"nimage"
)

func main() {
	// 1. Pick a workload from the built-in AWFY suite.
	w, err := nimage.WorkloadByName("Bounce")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build()
	fmt.Printf("workload %s: %d classes, %d methods\n", w.Name, len(prog.Classes), prog.NumMethods())

	// 2. Regular build: default alphabetical CU order, encounter-order heap.
	regular, err := nimage.BuildImage(prog, nimage.BuildOptions{
		Kind:      nimage.KindRegular,
		Compiler:  nimage.DefaultCompilerConfig(),
		BuildSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Profile-guided build: instrumented image → traced run →
	// post-processed ordering profiles → optimized image (Fig. 1 of the
	// paper). Note the two different build seeds: the instrumented and the
	// optimized builds genuinely diverge, so the heap-path strategy has to
	// match object identities across builds.
	res, err := nimage.ProfileAndOptimize(prog, nimage.PipelineOptions{
		Compiler:         nimage.DefaultCompilerConfig(),
		Strategy:         nimage.StrategyCombined,
		InstrumentedSeed: 41,
		OptimizedSeed:    7,
		Args:             w.Args,
	})
	if err != nil {
		log.Fatal(err)
	}
	optimized := res.Optimized
	fmt.Printf("profiling: %d run(s); code profile %d entries, heap profile %d IDs\n",
		len(res.Runs), len(res.CodeProfile), len(res.HeapProfile))
	fmt.Printf("matching:  %d/%d code entries, %d heap objects moved\n\n",
		optimized.CodeOrderStats.Matched, optimized.CodeOrderStats.ProfileLen,
		optimized.HeapMatchStats.MatchedObjects)

	// 4. Measure a cold start of each: fresh OS page cache, SSD latency.
	// AttributeFaults additionally resolves every fault to the CUs and
	// heap objects on the faulted page (see 'nimage faults').
	coldRun := func(img *nimage.Image, layout string) (nimage.RunStats, *nimage.AttribTable) {
		o := nimage.NewOS(nimage.SSD())
		o.AttributeFaults = true
		proc, err := img.NewProcess(o, nimage.Hooks{})
		if err != nil {
			log.Fatal(err)
		}
		defer proc.Close()
		if err := proc.Run(w.Args...); err != nil {
			log.Fatal(err)
		}
		tab := proc.AttributionTable()
		tab.Layout = layout
		return proc.Stats(), tab
	}
	base, baseTab := coldRun(regular, "identity")
	opt, optTab := coldRun(optimized, "cu+heap path")

	fmt.Printf("%-22s %12s %12s\n", "cold start", "regular", "cu+heap path")
	fmt.Printf("%-22s %12d %12d\n", ".text page faults", base.TextFaults.Total(), opt.TextFaults.Total())
	fmt.Printf("%-22s %12d %12d\n", ".svm_heap page faults", base.HeapFaults.Total(), opt.HeapFaults.Total())
	fmt.Printf("%-22s %12v %12v\n", "I/O time", base.IOTime, opt.IOTime)
	fmt.Printf("%-22s %12v %12v\n", "end-to-end time", base.Total, opt.Total)
	fmt.Printf("\npage-fault reduction: %.2fx, speedup: %.2fx\n",
		float64(base.TextFaults.Total()+base.HeapFaults.Total())/
			float64(opt.TextFaults.Total()+opt.HeapFaults.Total()),
		float64(base.Total)/float64(opt.Total))

	// 5. Attribute the difference: which symbols' cold faults the
	// reordering eliminated, which survived, and which are new
	// (the `nimage faults -diff` workflow).
	fmt.Println()
	fmt.Print(nimage.FaultDiffText(nimage.DiffAttribTables(baseTab, optTab), 3))
}
