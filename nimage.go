// Package nimage is a simulated GraalVM Native Image toolchain that
// reproduces the system of "Improving Native-Image Startup Performance"
// (Basso, Prokopec, Rosà, Binder — CGO 2025): profile-guided reordering of
// a binary's code (.text) and heap-snapshot (.svm_heap) sections to reduce
// the page faults of cold program starts.
//
// The package is a façade over the toolchain's subsystems:
//
//   - programs are written in a register-based object-oriented mini-IR
//     (NewProgramBuilder) or taken from the built-in benchmark suite
//     (AWFY, Microservices — the workloads of the paper's evaluation);
//   - BuildImage compiles a program into a binary image: a size-driven
//     inliner forms compilation units, class initializers execute at build
//     time, and the resulting heap is snapshotted into the image;
//   - ProfileAndOptimize runs the paper's full methodology (Fig. 1):
//     instrumented build → tracing profiling run (Ball–Larus path tracing
//     with path cutting) → post-processing into ordering profiles →
//     profile-guided optimized build, for any of the Strategies;
//   - images execute on a simulated OS (page cache, demand paging,
//     fault-around) so page faults per section and cold-start time are
//     measured deterministically;
//   - NewHarness reproduces the paper's evaluation: Figures 2–5, the
//     profiling-overhead table, the accessed-object fraction, and the
//     Fig. 6 page-grid visualization.
//
// See the runnable programs under examples/ for typical usage, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results.
package nimage

import (
	"nimage/internal/core"
	"nimage/internal/eval"
	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/image"
	"nimage/internal/ir"
	"nimage/internal/obs"
	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
	"nimage/internal/profiler"
	"nimage/internal/textviz"
	"nimage/internal/verify"
	"nimage/internal/vm"
	"nimage/internal/workloads"
)

// Program construction (the mini-IR).

// Program is a resolved program of the mini object language.
type Program = ir.Program

// ProgramBuilder constructs programs through the embedded DSL.
type ProgramBuilder = ir.Builder

// NewProgramBuilder starts building a program.
func NewProgramBuilder(name string) *ProgramBuilder { return ir.NewBuilder(name) }

// Method is one method of a program.
type Method = ir.Method

// Disassemble renders a method body in readable textual form.
func Disassemble(m *Method) string { return ir.Disassemble(m) }

// ClassBuilder, MethodBuilder, and BlockBuilder construct classes, methods,
// and basic blocks through the DSL.
type (
	ClassBuilder  = ir.ClassBuilder
	MethodBuilder = ir.MethodBuilder
	BlockBuilder  = ir.BlockBuilder
)

// Reg names a virtual register of a method under construction.
type Reg = ir.Reg

// TypeRef names an IR type.
type TypeRef = ir.TypeRef

// Type constructors of the mini-IR.
func IntType() TypeRef               { return ir.Int() }
func FloatType() TypeRef             { return ir.Float() }
func VoidType() TypeRef              { return ir.Void() }
func StringType() TypeRef            { return ir.String() }
func RefType(name string) TypeRef    { return ir.Ref(name) }
func ArrayType(elem TypeRef) TypeRef { return ir.Array(elem) }

// Arithmetic and comparison operators of the DSL.
const (
	OpAdd = ir.Add
	OpSub = ir.Sub
	OpMul = ir.Mul
	OpDiv = ir.Div
	OpRem = ir.Rem
	OpAnd = ir.And
	OpOr  = ir.Or
	OpXor = ir.Xor

	CmpEq = ir.Eq
	CmpNe = ir.Ne
	CmpLt = ir.Lt
	CmpLe = ir.Le
	CmpGt = ir.Gt
	CmpGe = ir.Ge
)

// Image building.

// Image is a built Native-Image binary plus its metadata.
type Image = image.Image

// BuildOptions configures a single image build.
type BuildOptions = image.Options

// Build kinds (BuildOptions.Kind).
const (
	KindRegular      = image.KindRegular
	KindInstrumented = image.KindInstrumented
	KindOptimized    = image.KindOptimized
)

// CompilerConfig holds the simulated compiler's tuning knobs.
type CompilerConfig = graal.Config

// DefaultCompilerConfig returns the evaluation defaults.
func DefaultCompilerConfig() CompilerConfig { return graal.DefaultConfig() }

// BuildImage builds one image of a program.
func BuildImage(p *Program, opts BuildOptions) (*Image, error) { return image.Build(p, opts) }

// The profile-guided pipeline (Fig. 1 of the paper).

// PipelineOptions configures ProfileAndOptimize.
type PipelineOptions = image.PipelineOptions

// PipelineResult is the outcome of the pipeline: the optimized image plus
// the profiling-run reports.
type PipelineResult = image.PipelineResult

// ProfileAndOptimize runs instrumented build → profiling run →
// post-processing → optimized build for one ordering strategy.
func ProfileAndOptimize(p *Program, opts PipelineOptions) (*PipelineResult, error) {
	return image.BuildOptimized(p, opts)
}

// DumpMode selects how per-thread trace buffers reach the trace file
// (Sec. 6.1): DumpOnFull flushes when full and at thread termination —
// events still buffered when the process is SIGKILLed are LOST — while
// MemoryMapped survives abnormal termination at a higher per-event cost.
// Microservice workloads (killed after their first response) must use
// MemoryMapped.
type DumpMode = profiler.DumpMode

// Trace-buffer dump modes.
const (
	DumpOnFull   = profiler.DumpOnFull
	MemoryMapped = profiler.MemoryMapped
)

// Ordering strategies: the paper's profile-guided layouts (Sec. 4 and 5)
// plus the graph-based serve layouts over the recorded affinity graph
// (c3 chain clustering, ext-TSP chain ordering).
const (
	StrategyCU          = core.StrategyCU
	StrategyMethod      = core.StrategyMethod
	StrategyIncremental = core.StrategyIncremental
	StrategyStructural  = core.StrategyStructural
	StrategyHeapPath    = core.StrategyHeapPath
	StrategyCombined    = core.StrategyCombined
	StrategyC3          = core.StrategyC3
	StrategyExtTSP      = core.StrategyExtTSP
	StrategySLOSearch   = core.StrategySLOSearch
)

// Strategies lists all evaluated strategies in figure order (the
// registry's eval set: the paper's six plus the graph-based two).
func Strategies() []string { return eval.Strategies() }

// HeapStrategy computes 64-bit object identities for heap-snapshot
// matching; implementations: incremental id, structural hash, heap path.
type HeapStrategy = core.HeapStrategy

// HeapStrategies returns the three identity strategies of the paper.
func HeapStrategies() []HeapStrategy { return core.HeapStrategies() }

// HeapObject is one object of the build-time heap / heap snapshot.
type HeapObject = heap.Object

// HeapSnapshot is the image heap embedded in a binary.
type HeapSnapshot = heap.Snapshot

// Entity wraps a heap value for the identity algorithms (Algorithms 1–3).
type Entity = heap.Entity

// ObjEntity wraps an object reference as an Entity.
func ObjEntity(o *HeapObject) Entity { return heap.ObjEntity(o) }

// OrderObjects applies a heap-ordering profile to a snapshot's objects
// (custom-strategy building block; see examples/customstrategy).
func OrderObjects(objs []*HeapObject, ids map[*HeapObject]uint64, profile []uint64) core.MatchResult {
	return core.OrderObjects(objs, ids, profile)
}

// MatchBreakdown is the serializable per-strategy summary of a match:
// matched / unmatched / collision-grouped objects and the match rate.
type MatchBreakdown = core.MatchBreakdown

// Observability.
//
// The toolchain is instrumented throughout with a lightweight metrics
// registry: image builds emit per-stage spans and size gauges, the OS
// simulator emits per-section fault timelines, the profiler its probe and
// buffer statistics, and the interpreter its instruction mix. Attach a
// registry through BuildOptions.Obs, PipelineOptions.Obs, or OS.Obs; a nil
// registry (the default) makes every instrumentation site a no-op.

// ObsRegistry collects counters, gauges, histograms, spans, and timelines.
type ObsRegistry = obs.Registry

// ObsSnapshot is a deterministic point-in-time copy of a registry.
type ObsSnapshot = obs.Snapshot

// ObsSink consumes snapshots (JSON, CSV, or in-memory).
type (
	ObsSink       = obs.Sink
	ObsJSONSink   = obs.JSONSink
	ObsCSVSink    = obs.CSVSink
	ObsMemorySink = obs.MemorySink
)

// NewObsRegistry creates an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// RunReport is the observability snapshot attached to each measured
// iteration when the harness runs with EvalConfig.Observe.
type RunReport = eval.RunReport

// Fault attribution.
//
// When a process runs with an obs registry (or OS.AttributeFaults), every
// simulated page fault is attributed to the symbols on the faulted page —
// the CUs of .text, the objects of .svm_heap, the native tail, and the
// header — yielding a per-symbol fault table with cold-start ordinals and
// fault-around waste. Tables diff by build-stable symbol names across
// layouts, and export as pprof profiles or Chrome trace-event JSON
// (`nimage faults`, `nimage report -artifacts`).

// AttribTable is the per-symbol fault attribution of one or more cold runs.
type AttribTable = attrib.Table

// AttribSymbol is one symbol's aggregated fault record.
type AttribSymbol = attrib.SymbolFaults

// AttribDiff is the eliminated/survived/new symbol comparison of two
// tables (baseline vs optimized layout).
type AttribDiff = attrib.Diff

// Attribution table operations: diff two tables, merge several, serialize,
// and export (pprof protobuf / Chrome trace-event JSON).
var (
	DiffAttribTables  = attrib.DiffTables
	MergeAttribTables = attrib.Merge
	WriteAttribTable  = attrib.WriteTable
	ReadAttribTable   = attrib.ReadTable
	WriteAttribPprof  = attrib.WritePprof
	WriteAttribTrace  = attrib.WriteChromeTrace
)

// FaultTableText renders the ranked cold-symbol table (limit <= 0: all).
func FaultTableText(t *AttribTable, limit int) string { return textviz.FaultTable(t, limit) }

// FaultDiffText renders a table diff (limit <= 0: all symbols per group).
func FaultDiffText(d *AttribDiff, limit int) string { return textviz.FaultDiff(d, limit) }

// Temporal co-access affinity.
//
// When a process runs with an obs registry (or OS.TrackAffinity), a
// streaming recorder folds the coarse page-access clock plus the fault and
// eviction streams into a weighted symbol×symbol affinity graph: which
// symbols are hot together within a co-residency window, and which follow
// each other. Graphs score candidate layouts statically (locality,
// working-set pages per window, predicted refaults under pressure) via
// layout scorecards — the cheap inner loop behind `nimage affinity` and
// the serve figures' scorecard column.

// AffinityGraph is the weighted co-access graph of one or more runs
// (schema nimage.affinity/v1).
type AffinityGraph = affinity.Graph

// AffinityConfig tunes the recorder (window size, edge budget, decay).
type AffinityConfig = affinity.Config

// AffinityScorecard is the static layout-quality prediction of one
// strategy against a recorded graph.
type AffinityScorecard = affinity.Scorecard

// AffinityPlacement resolves graph nodes into a candidate layout by
// symbol name.
type AffinityPlacement = affinity.Placement

// Affinity graph operations: merge several graphs, serialize, export
// (GraphViz DOT / Chrome trace-event JSON), and score layouts.
var (
	MergeAffinityGraphs    = affinity.Merge
	WriteAffinityGraph     = affinity.WriteGraph
	ReadAffinityGraph      = affinity.ReadGraph
	WriteAffinityDOT       = affinity.WriteDOT
	WriteAffinityTrace     = affinity.WriteChromeTrace
	NewAffinityPlacement   = affinity.NewPlacement
	ScoreAffinity          = affinity.Score
	AffinityRefaultFactors = affinity.RefaultFactors
)

// AffinityTableText renders the ranked top-edge table (limit <= 0: all).
func AffinityTableText(g *AffinityGraph, limit int) string { return textviz.AffinityTable(g, limit) }

// AffinityDiffText renders the edge-weight diff of two graphs ranked by
// |delta| (limit <= 0: all changed edges).
func AffinityDiffText(base, opt *AffinityGraph, limit int) string {
	return textviz.AffinityDiff(base, opt, limit)
}

// ScorecardTableText renders per-strategy layout scorecards ranked best
// first.
func ScorecardTableText(cards []*AffinityScorecard) string { return textviz.ScorecardTable(cards) }

// EvalReport is the consolidated observability document of an evaluation
// (see Harness.Report and `nimage-eval`'s output/report.json).
type EvalReport = eval.Report

// Image recipes (.nimg container).

// ImageRecipe is the portable form of a build: program + build options +
// ordering profiles. Builds are deterministic functions of the recipe, so
// serializing the recipe is serializing the image.
type ImageRecipe = image.Recipe

// RecipeOf captures the recipe of a built image.
func RecipeOf(img *Image) ImageRecipe { return image.RecipeOf(img) }

// WriteRecipe / ReadRecipe serialize recipes in the .nimg container format.
var (
	WriteRecipe = image.WriteRecipe
	ReadRecipe  = image.ReadRecipe
)

// Execution environment.

// OS is the simulated operating system (page cache, demand paging).
type OS = osim.OS

// Device describes a storage device.
type Device = osim.Device

// NewOS creates an OS over the given device.
func NewOS(dev Device) *OS { return osim.NewOS(dev) }

// SSD and NFS return the two devices of the evaluation (Sec. 7.1).
func SSD() Device { return osim.SSD() }

// NFS returns the network-file-system device.
func NFS() Device { return osim.NFS() }

// Page-cache pressure (serve mode).
//
// Beyond the all-or-nothing DropCaches of cold-start measurement, the OS
// models pages leaving the cache while a process runs: a resident-page
// budget (OS.CacheBudget) enforced under an eviction policy, and explicit
// Reclaim calls for inter-tenant pressure. Evictions unmap pages from live
// mappings, so re-accessed pages take major re-faults — the serve-mode
// churn the Harness's serve protocol measures.

// EvictionPolicy selects the page-replacement algorithm.
type EvictionPolicy = osim.EvictionPolicy

// Eviction policies.
const (
	EvictLRU   = osim.EvictLRU
	EvictClock = osim.EvictClock
)

// Process is one execution of an image over an OS.
type Process = image.Process

// RunStats summarizes one run: per-section page faults and simulated time.
type RunStats = image.Stats

// Hooks observe execution events (advanced use; zero value is fine).
type Hooks = vm.Hooks

// Workloads (the paper's benchmarks).

// Workload is one benchmark program.
type Workload = workloads.Workload

// AWFY returns the 14 "Are We Fast Yet?" benchmarks.
func AWFY() []Workload { return workloads.AWFY() }

// Microservices returns the micronaut/quarkus/spring helloworld workloads.
func Microservices() []Workload { return workloads.Microservices() }

// AllWorkloads returns every workload of the evaluation.
func AllWorkloads() []Workload { return workloads.All() }

// ServeWorkloads returns the serve-mode workloads (long-lived services
// driven with request bursts; not part of AllWorkloads so the cold-start
// figures keep their set).
func ServeWorkloads() []Workload { return workloads.Serve() }

// WorkloadByName looks a workload up by figure name.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Equivalence verification.
//
// The verifier checks that profile-guided reordering is semantics-
// preserving: for every workload × strategy it builds the baseline,
// instrumented, and optimized images, runs them all, and asserts identical
// observable behavior (output, instruction counts, journaled mutations of
// build-time state); it further asserts that the optimized image is a pure
// permutation of an unreordered build of the same compilation, and that
// feeding an image's own layout back as its profile reproduces the image
// (and its fault counts) exactly. See `nimage verify`.

// VerifyOptions configures a verification run.
type VerifyOptions = verify.Options

// VerifyReport is the outcome: the checks evaluated and any divergences.
type VerifyReport = verify.Report

// VerifyDivergence is one failed equivalence check.
type VerifyDivergence = verify.Divergence

// Verify runs the equivalence verifier.
func Verify(opts VerifyOptions) (*VerifyReport, error) { return verify.Run(opts) }

// VerifyStrategies lists the strategies the verifier covers by default.
func VerifyStrategies() []string { return verify.Strategies() }

// GeneratedWorkload returns the seeded random workload the verifier (and
// `nimage verify -seeds`) uses for generative testing.
func GeneratedWorkload(seed uint64) Workload { return workloads.Generated(seed) }

// Evaluation harness (Sec. 7).

// EvalConfig tunes the measurement protocol.
type EvalConfig = eval.Config

// DefaultEvalConfig returns the default protocol (smaller than the paper's
// 10 builds × 10 iterations, same structure).
func DefaultEvalConfig() EvalConfig { return eval.DefaultConfig() }

// Harness runs the measurement protocol and produces the figures.
type Harness = eval.Harness

// ResultTable is the data behind one figure.
type ResultTable = eval.Table

// NewHarness creates an evaluation harness.
func NewHarness(cfg EvalConfig) *Harness { return eval.NewHarness(cfg) }

// Serve-mode measurement (Harness.MeasureServe / Harness.ServeFigure):
// startup followed by request bursts with page-cache pressure between
// them, producing per-burst latency quantiles, fault and re-fault counts,
// and residency telemetry. See `nimage serve`.

// ServeConfig tunes one serve scenario (bursts, pressure, traffic skew).
type ServeConfig = eval.ServeConfig

// DefaultServeConfig returns the serve-mode defaults.
func DefaultServeConfig() ServeConfig { return eval.DefaultServeConfig() }

// ServeOutcome is one build's serve run: startup, bursts, warm aggregates.
type ServeOutcome = eval.ServeOutcome

// BurstMeasure is the telemetry of one request burst.
type BurstMeasure = eval.BurstMeasure

// ServeStrategies lists the layouts the serve figures compare.
func ServeStrategies() []string { return eval.ServeStrategies() }

// LayoutBaseline labels the unmodified (identity-layout) images in
// attribution tables, affinity graphs, and serve outcomes.
const LayoutBaseline = eval.LayoutBaseline

// BurstRowText is one row of the rendered burst table.
type BurstRowText = textviz.BurstRow

// BurstTableText renders per-burst serve telemetry as a text table.
func BurstTableText(title string, rows []BurstRowText) string {
	return textviz.BurstTable(title, rows)
}

// Serve SLO observatory (Harness.SLOReport / `nimage slo`): concurrent
// request streams multiplexed against one long-lived mapping, per-request
// traces, and pressure-sweep SLO scorecards with a telemetry-overhead
// control.

// SLOTarget is one latency objective (quantile + budget).
type SLOTarget = obs.SLOTarget

// SLOAttainment is one target's score over a measured latency sample.
type SLOAttainment = obs.SLOAttainment

// SLOEntry is one (workload, strategy, pressure) cell of the SLO sweep.
type SLOEntry = obs.SLOEntry

// SLOOverhead is one telemetry-on/off overhead control run.
type SLOOverhead = obs.SLOOverhead

// SLOReport is the pressure-sweep SLO document (nimage.slo/v1).
type SLOReport = obs.SLOReport

// RequestTrace is the bounded per-request recording of one serve run.
type RequestTrace = obs.RequestTrace

// RequestRecord is the telemetry of one served request.
type RequestRecord = obs.RequestRecord

// DefaultSLOTargets returns the default serve objectives
// (p50/p95/p99/p99.9 latency budgets).
func DefaultSLOTargets() []SLOTarget { return obs.DefaultSLOTargets() }

// ParseSLOTargets parses a -slo flag value like "p50=100us,p99=2ms".
func ParseSLOTargets(s string) ([]SLOTarget, error) { return obs.ParseSLOTargets(s) }

// DefaultSLOPressures returns the default sweep pressure levels (0/30/70%).
func DefaultSLOPressures() []int { return eval.DefaultSLOPressures() }

// SLOAttainmentOf scores a sorted latency sample against each target.
func SLOAttainmentOf(sorted []float64, targets []SLOTarget) []SLOAttainment {
	return obs.Attainment(sorted, targets)
}

var (
	// WriteSLOReport / ReadSLOReport are the nimage.slo/v1 codec.
	WriteSLOReport = obs.WriteSLOReport
	ReadSLOReport  = obs.ReadSLOReport
	// WriteRequestTrace / ReadRequestTrace are the nimage.reqtrace/v1 codec;
	// WriteRequestChromeTrace exports a trace as Chrome trace-event JSON
	// (one track per stream) for chrome://tracing and Perfetto.
	WriteRequestTrace       = obs.WriteRequestTrace
	ReadRequestTrace        = obs.ReadRequestTrace
	WriteRequestChromeTrace = obs.WriteRequestChromeTrace
)

// SLORowText is one attainment row of the rendered SLO table, and
// SLOOverheadRowText one overhead-control row.
type SLORowText = textviz.SLORow

type SLOOverheadRowText = textviz.SLOOverheadRow

// SLOTableText renders the SLO attainment scorecard as a text table.
func SLOTableText(title string, rows []SLORowText) string {
	return textviz.SLOTable(title, rows)
}

// SLOOverheadTableText renders the telemetry-overhead control table.
func SLOOverheadTableText(rows []SLOOverheadRowText) string {
	return textviz.SLOOverheadTable(rows)
}

// SLORows flattens an SLO report's entries into renderable table rows.
func SLORows(rep *SLOReport) []SLORowText {
	var rows []SLORowText
	for _, e := range rep.Entries {
		for _, a := range e.Attainments {
			rows = append(rows, SLORowText{
				Workload: e.Workload, Strategy: e.Strategy,
				PressurePct: e.PressurePct,
				Quantile:    a.Quantile, BudgetNanos: a.BudgetNanos,
				MeasuredNanos: a.MeasuredNanos,
				Violations:    a.Violations, Requests: a.Requests,
				BudgetBurn: a.BudgetBurn, Attained: a.Attained,
			})
		}
	}
	return rows
}

// SLOOverheadRows flattens an SLO report's overhead controls into
// renderable table rows.
func SLOOverheadRows(rep *SLOReport) []SLOOverheadRowText {
	var rows []SLOOverheadRowText
	for _, o := range rep.Overhead {
		rows = append(rows, SLOOverheadRowText{
			Workload: o.Workload, Strategy: o.Strategy,
			OnWallNanosPerReq:  o.OnWallNanosPerReq,
			OffWallNanosPerReq: o.OffWallNanosPerReq,
			OverheadFrac:       o.OverheadFrac,
			SimIdentical:       o.SimIdentical,
		})
	}
	return rows
}

// SLO-driven layout search (Harness.SearchLayout / `nimage tune`): a
// budget-bounded rebake loop that measures the c3 and ext-tsp seed
// layouts with the serve scorecard, generates parameter sweeps and
// seeded perturbations of the incumbent, promotes the statically
// best-predicted candidates to full measurement, and accepts only on a
// strict scorecard improvement. The slo-search strategy bakes the
// searched winner.

// SearchConfig tunes the search (budget, promotion width, seed,
// pressures, targets, serve scenario).
type SearchConfig = eval.SearchConfig

// DefaultSearchConfig returns the search defaults.
func DefaultSearchConfig() SearchConfig { return eval.DefaultSearchConfig() }

// SearchScore is one candidate's measured scorecard: SLO attainment,
// budget burn, and the refault-factor geomean over the swept pressures.
type SearchScore = eval.SearchScore

// SearchPressureScore is one pressure level's slice of a SearchScore.
type SearchPressureScore = eval.SearchPressureScore

// SearchResult is the outcome of one search: the winning order, its
// score, the full journal, and every measured candidate order.
type SearchResult = eval.SearchResult

// SearchReport is the per-iteration search journal (nimage.search/v1).
type SearchReport = obs.SearchReport

// WriteSearchReport / ReadSearchReport are the nimage.search/v1 codec.
var (
	WriteSearchReport = obs.WriteSearchReport
	ReadSearchReport  = obs.ReadSearchReport
)

// SearchRowText is one candidate row of the rendered search table.
type SearchRowText = textviz.SearchRow

// SearchTableText renders a search trajectory as a text table.
func SearchTableText(title string, rows []SearchRowText) string {
	return textviz.SearchTable(title, rows)
}

// SearchRows flattens a search journal into renderable table rows.
func SearchRows(rep *SearchReport) []SearchRowText {
	var rows []SearchRowText
	for _, it := range rep.Iterations {
		for _, c := range it.Candidates {
			rows = append(rows, SearchRowText{
				Iter: it.Iter, Candidate: c.ID, Op: c.Op,
				PredictedRefaults: c.PredictedRefaults,
				Promoted:          c.Promoted,
				Attained:          c.Attained, Targets: c.Targets,
				RefaultGeomean: c.RefaultGeomean,
				Accepted:       c.Accepted, Reason: c.Reason,
			})
		}
	}
	return rows
}

// Fleet observatory (Harness.MeasureFleet / `nimage fleet`): N tenants
// (serve workload × strategy pairs) served concurrently from one
// simulated OS under a shared page-cache budget, with per-tenant
// telemetry, SLO attainment, isolation factors against each tenant's
// solo run, and the cross-tenant eviction interference matrix.

// TenantSpec names one fleet tenant: a serve workload × strategy pair
// with an optional residency quota (percent of the shared budget).
type TenantSpec = eval.TenantSpec

// FleetConfig tunes one multi-tenant serve scenario.
type FleetConfig = eval.FleetConfig

// TenantOutcome is one tenant's view of a fleet run.
type TenantOutcome = eval.TenantOutcome

// FleetOutcome is one build's fleet run: tenants plus the interference
// matrix and the whole-OS totals the per-tenant counters partition.
type FleetOutcome = eval.FleetOutcome

// FleetTenant is one tenant's serialized scorecard, and FleetBurst one
// burst of its timeline.
type FleetTenant = obs.FleetTenant

type FleetBurst = obs.FleetBurst

// FleetReport is the fleet observatory document (nimage.fleet/v1).
type FleetReport = obs.FleetReport

var (
	// WriteFleetReport / ReadFleetReport are the nimage.fleet/v1 codec;
	// WriteFleetChromeTrace exports a fleet run as Chrome trace-event JSON
	// (one track per tenant plus an eviction-pressure counter track).
	WriteFleetReport      = obs.WriteFleetReport
	ReadFleetReport       = obs.ReadFleetReport
	WriteFleetChromeTrace = obs.WriteFleetChromeTrace
)

// FleetRowText is one tenant row of the rendered fleet table.
type FleetRowText = textviz.FleetRow

// FleetTableText renders the per-tenant fleet scorecard as a text table.
func FleetTableText(title string, rows []FleetRowText) string {
	return textviz.FleetTable(title, rows)
}

// FleetMatrixText renders the interference matrix as a text grid.
func FleetMatrixText(evictedBy [][]int64, total int64) string {
	return textviz.FleetMatrix(evictedBy, total)
}

// FleetRows flattens a fleet report's tenants into renderable table rows.
func FleetRows(rep *FleetReport) []FleetRowText {
	var rows []FleetRowText
	for _, tn := range rep.Tenants {
		r := FleetRowText{
			Tenant: tn.Tenant, Workload: tn.Workload, Strategy: tn.Strategy,
			QuotaPages:    tn.QuotaPages,
			StartupNanos:  tn.StartupNanos,
			WarmMeanNanos: tn.WarmMeanNanos,
			WarmP99Nanos:  tn.WarmP99Nanos,
			MajorFaults:   tn.MajorFaults, Refaults: tn.Refaults,
			EvictedPages: tn.EvictedPages, ResidentPages: tn.ResidentPages,
			SLOTargets:       len(tn.Attainment),
			IsolationLatency: tn.IsolationLatency,
			IsolationRefault: tn.IsolationRefault,
		}
		for _, a := range tn.Attainment {
			if a.Attained {
				r.SLOAttained++
			}
		}
		rows = append(rows, r)
	}
	return rows
}

// Visualization (Fig. 6).

// PageState classifies one page of a section after a run.
type PageState = osim.PageState

// RenderPageGrid renders page states as an ASCII grid ('#' faulted, 'o'
// mapped without fault, '.' untouched).
func RenderPageGrid(states []PageState, width int) string { return textviz.Grid(states, width) }

// RenderPageGridsSideBySide renders the Fig. 6 comparison of two layouts.
func RenderPageGridsSideBySide(titleA string, a []PageState, titleB string, b []PageState, width int) string {
	return textviz.SideBySide(titleA, a, titleB, b, width)
}

// RenderPagePPM renders page states as a plain PPM image string.
func RenderPagePPM(states []PageState, width, scale int) string {
	return textviz.PPM(states, width, scale)
}
