// Package textviz renders the Fig. 6-style page-grid visualization: each
// cell is one page of a binary section, classified as faulted (green cells
// in the paper), mapped-without-fault (red cells — paged in by the OS via
// fault-around), or untouched (black cells).
//
// Two renderers are provided: an ANSI/ASCII grid for terminals and a PPM
// image for files, plus a summary line. The visualization shows how the cu
// strategy compacts the executed code into the front of .text (Fig. 6b).
package textviz

import (
	"fmt"
	"strings"

	"nimage/internal/osim"
)

// Cell glyphs of the ASCII rendering.
const (
	cellUntouched = '.'
	cellMapped    = 'o'
	cellFaulted   = '#'
)

// Grid renders the page states as an ASCII grid with the given row width.
// Legend: '#' faulted, 'o' mapped without fault, '.' untouched.
func Grid(states []osim.PageState, width int) string {
	if width <= 0 {
		width = 64
	}
	var sb strings.Builder
	for i, st := range states {
		switch st {
		case osim.PageFaulted:
			sb.WriteByte(cellFaulted)
		case osim.PageMappedNoFault:
			sb.WriteByte(cellMapped)
		default:
			sb.WriteByte(cellUntouched)
		}
		if (i+1)%width == 0 {
			sb.WriteByte('\n')
		}
	}
	if len(states)%width != 0 {
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary returns the counts behind a grid.
func Summary(states []osim.PageState) (faulted, mapped, untouched int) {
	for _, st := range states {
		switch st {
		case osim.PageFaulted:
			faulted++
		case osim.PageMappedNoFault:
			mapped++
		default:
			untouched++
		}
	}
	return
}

// SideBySide renders two grids with titles and summaries, the layout of
// Fig. 6 (regular binary vs cu-optimized binary).
func SideBySide(titleA string, a []osim.PageState, titleB string, b []osim.PageState, width int) string {
	var sb strings.Builder
	render := func(title string, st []osim.PageState) {
		f, m, u := Summary(st)
		fmt.Fprintf(&sb, "%s — %d pages: %d faulted (#), %d mapped w/o fault (o), %d untouched (.)\n",
			title, len(st), f, m, u)
		sb.WriteString(Grid(st, width))
	}
	render(titleA, a)
	sb.WriteByte('\n')
	render(titleB, b)
	return sb.String()
}

// PPM renders the page states as a binary-free plain (P3) PPM image with
// the paper's color scheme: green = faulted, red = mapped without fault,
// black = untouched. scale is the pixel size of one cell.
func PPM(states []osim.PageState, width, scale int) string {
	if width <= 0 {
		width = 64
	}
	if scale <= 0 {
		scale = 4
	}
	rows := (len(states) + width - 1) / width
	var sb strings.Builder
	fmt.Fprintf(&sb, "P3\n%d %d\n255\n", width*scale, rows*scale)
	colorOf := func(x, y int) (int, int, int) {
		idx := y*width + x
		if idx >= len(states) {
			return 0, 0, 0
		}
		switch states[idx] {
		case osim.PageFaulted:
			return 40, 180, 60
		case osim.PageMappedNoFault:
			return 200, 50, 40
		default:
			return 10, 10, 10
		}
	}
	for py := 0; py < rows*scale; py++ {
		for px := 0; px < width*scale; px++ {
			r, g, b := colorOf(px/scale, py/scale)
			fmt.Fprintf(&sb, "%d %d %d ", r, g, b)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
