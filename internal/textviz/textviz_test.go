package textviz

import (
	"strings"
	"testing"

	"nimage/internal/osim"
)

func sample() []osim.PageState {
	return []osim.PageState{
		osim.PageFaulted, osim.PageMappedNoFault, osim.PageUntouched,
		osim.PageFaulted, osim.PageFaulted, osim.PageUntouched,
	}
}

func TestGrid(t *testing.T) {
	g := Grid(sample(), 3)
	want := "#o.\n##.\n"
	if g != want {
		t.Errorf("Grid = %q, want %q", g, want)
	}
	// Non-multiple length gets a trailing newline.
	g2 := Grid(sample()[:4], 3)
	if !strings.HasSuffix(g2, "\n") || strings.Count(g2, "\n") != 2 {
		t.Errorf("Grid partial row = %q", g2)
	}
	// Zero width falls back to the default.
	if Grid(sample(), 0) == "" {
		t.Error("default width broken")
	}
}

func TestSummary(t *testing.T) {
	f, m, u := Summary(sample())
	if f != 3 || m != 1 || u != 2 {
		t.Errorf("Summary = %d,%d,%d", f, m, u)
	}
}

func TestSideBySide(t *testing.T) {
	out := SideBySide("A", sample(), "B", sample()[:3], 3)
	for _, want := range []string{"A — 6 pages: 3 faulted", "B — 3 pages: 1 faulted", "#o.\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("SideBySide missing %q:\n%s", want, out)
		}
	}
}

func TestPPM(t *testing.T) {
	img := PPM(sample(), 3, 2)
	if !strings.HasPrefix(img, "P3\n6 4\n255\n") {
		t.Fatalf("PPM header: %q", img[:20])
	}
	// Faulted cell renders green (40 180 60), untouched near-black.
	if !strings.Contains(img, "40 180 60") {
		t.Error("no green pixel for faulted page")
	}
	if !strings.Contains(img, "200 50 40") {
		t.Error("no red pixel for mapped page")
	}
	// Pixel count: width*scale per row, rows*scale rows.
	lines := strings.Split(strings.TrimSpace(img), "\n")
	if len(lines) != 3+4 {
		t.Errorf("PPM rows = %d", len(lines)-3)
	}
}

func TestPPMDefaults(t *testing.T) {
	img := PPM(sample(), 0, 0)
	if !strings.HasPrefix(img, "P3\n256 4\n") {
		t.Errorf("default sizing header: %q", img[:12])
	}
}
