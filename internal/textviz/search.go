package textviz

// Terminal rendering of the SLO-driven layout-search trajectory
// (`nimage tune`, `nimage-eval -figure search`). SearchRow mirrors one
// obs.SearchCandidateRecord without importing the obs package — textviz
// stays a leaf rendering layer.

import (
	"fmt"
	"strings"
)

// SearchRow is one candidate evaluation inside one search iteration.
type SearchRow struct {
	Iter      int
	Candidate string
	// Op names how the candidate was generated: seed, c3-sweep,
	// ext-tsp-sweep, or perturb.
	Op string
	// Cheap static prediction used for the promotion cut.
	PredictedRefaults int64
	// Promoted candidates were fully measured; only they carry an
	// attainment scorecard.
	Promoted       bool
	Attained       int
	Targets        int
	RefaultGeomean float64
	Accepted       bool
	Reason         string
}

// SearchTable renders the search journal: one line per candidate per
// iteration, with the static prediction, the measured scorecard for
// promoted candidates, and the accept/reject reason.
func SearchTable(title string, rows []SearchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s %-22s %-13s %10s %9s %8s %8s %-8s %s\n",
		"iter", "candidate", "op", "refaults", "attained", "geomean", "verdict", "", "reason")
	for _, r := range rows {
		attained, geomean := "-", "-"
		if r.Promoted {
			attained = fmt.Sprintf("%d/%d", r.Attained, r.Targets)
			geomean = fmt.Sprintf("%.3f", r.RefaultGeomean)
		}
		verdict := "reject"
		if r.Accepted {
			verdict = "ACCEPT"
		} else if !r.Promoted {
			verdict = "cut"
		}
		fmt.Fprintf(&b, "%4d %-22s %-13s %10d %9s %8s %8s %-8s %s\n",
			r.Iter, r.Candidate, r.Op, r.PredictedRefaults,
			attained, geomean, verdict, "", r.Reason)
	}
	return b.String()
}
