package textviz

import (
	"strings"
	"testing"

	"nimage/internal/obs/affinity"
)

func affinityGraph(layout string, weight float64) *affinity.Graph {
	return &affinity.Graph{
		Schema:   affinity.GraphSchema,
		Workload: "w",
		Layout:   layout,
		Nodes: []affinity.Node{
			{Name: "A.run()", Kind: "cu", Section: ".text"},
			{Name: "hub:O1", Kind: "object", Section: ".svm_heap"},
			{Name: "B.run()", Kind: "cu", Section: ".text"},
		},
		Edges: []affinity.Edge{
			{A: 0, B: 1, Weight: weight, Co: 3, Trans: 5},
			{A: 0, B: 2, Weight: 1, Co: 1, Trans: 1},
		},
		AccessEvents: 12, Windows: 3, Transitions: 6, Cooccurrences: 4,
	}
}

func TestAffinityTable(t *testing.T) {
	s := AffinityTable(affinityGraph("identity", 4.5), 0)
	for _, want := range []string{
		"w (identity layout)", "12 access events", "3 windows",
		"A.run() -- hub:O1", "cu-object", "A.run() -- B.run()",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// The limit truncates and says how much was dropped.
	s = AffinityTable(affinityGraph("", 4.5), 1)
	if strings.Contains(s, "B.run()") || !strings.Contains(s, "1 more edges") {
		t.Errorf("limit=1 rendering:\n%s", s)
	}
}

func TestScorecardTableRanksByFactor(t *testing.T) {
	cards := []*affinity.Scorecard{
		{Workload: "w", Strategy: "identity", PressurePct: 50, MappedNodes: 2,
			TotalNodes: 3, LocalityScore: 0.4, PredictedRefaults: 20, PredictedRefaultFactor: 1},
		{Workload: "w", Strategy: "cu", PressurePct: 50, MappedNodes: 2,
			TotalNodes: 3, LocalityScore: 0.9, PredictedRefaults: 10, PredictedRefaultFactor: 1.91},
		nil,
	}
	s := ScorecardTable(cards)
	cu := strings.Index(s, "cu")
	id := strings.Index(s, "identity")
	if cu < 0 || id < 0 || cu > id {
		t.Fatalf("cu (factor 1.91x) should rank above identity:\n%s", s)
	}
	for _, want := range []string{"pressure 50%", "1.91x", "1.00x"} {
		if !strings.Contains(s, want) {
			t.Errorf("scorecard table missing %q:\n%s", want, s)
		}
	}
}

func TestAffinityDiff(t *testing.T) {
	base := affinityGraph("identity", 4.5)
	opt := affinityGraph("cu", 2.0)
	opt.Edges = opt.Edges[:1] // the cu recording lost the A--B edge
	s := AffinityDiff(base, opt, 0)
	for _, want := range []string{
		"identity -> cu", "-2.50", "A.run() -- hub:O1", "-1.00",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("diff missing %q:\n%s", want, s)
		}
	}
	// The strongest change ranks first.
	if strings.Index(s, "A.run() -- hub:O1") > strings.Index(s, "A.run() -- B.run()") {
		t.Errorf("diff not ranked by |delta|:\n%s", s)
	}
}
