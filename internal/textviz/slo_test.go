package textviz

import (
	"strings"
	"testing"
)

func TestSLOTable(t *testing.T) {
	out := SLOTable("SLO attainment (2 streams)", []SLORow{
		{Workload: "serve-api", Strategy: "identity", PressurePct: 30,
			Quantile: 0.99, BudgetNanos: 2e6, MeasuredNanos: 1.5e6,
			Violations: 0, Requests: 96, BudgetBurn: 0.4, Attained: true},
		{Workload: "serve-api", Strategy: "cu", PressurePct: 70,
			Quantile: 0.999, BudgetNanos: 10e6, MeasuredNanos: 14e6,
			Violations: 3, Requests: 96, BudgetBurn: 31.25, Attained: false},
	})
	for _, want := range []string{
		"SLO attainment (2 streams)",
		"p99", "p99.9", "2ms", "10ms", "30%", "70%",
		"0/96", "3/96", "ok", "MISS", "burn",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSLOTableEmpty(t *testing.T) {
	out := SLOTable("empty", nil)
	if !strings.Contains(out, "empty") || !strings.Contains(out, "workload") {
		t.Errorf("empty table lost title or header:\n%s", out)
	}
}

func TestSLOOverheadTable(t *testing.T) {
	out := SLOOverheadTable([]SLOOverheadRow{
		{Workload: "serve-api", Strategy: "identity",
			OnWallNanosPerReq: 1200, OffWallNanosPerReq: 1000,
			OverheadFrac: 0.2, SimIdentical: true},
		{Workload: "serve-cache", Strategy: "identity",
			OnWallNanosPerReq: 900, OffWallNanosPerReq: 1000,
			OverheadFrac: -0.1, SimIdentical: false},
	})
	for _, want := range []string{
		"Telemetry overhead", "20.0%", "-10.0%", "identical", "DIVERGED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("overhead table missing %q:\n%s", want, out)
		}
	}
}
