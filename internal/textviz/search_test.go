package textviz

import (
	"strings"
	"testing"
)

func TestSearchTable(t *testing.T) {
	out := SearchTable("Layout search (serve-api)", []SearchRow{
		{Iter: 0, Candidate: "c3", Op: "seed", PredictedRefaults: 120,
			Promoted: true, Attained: 7, Targets: 8, RefaultGeomean: 1.701,
			Accepted: true, Reason: "best seed scorecard"},
		{Iter: 1, Candidate: "perturb/i1/k0/swap", Op: "perturb",
			PredictedRefaults: 110, Promoted: true, Attained: 8, Targets: 8,
			RefaultGeomean: 1.8, Accepted: false,
			Reason: "no strict improvement over incumbent"},
		{Iter: 1, Candidate: "c3/limit=4096", Op: "c3-sweep",
			PredictedRefaults: 200, Reason: "below promotion cut"},
	})
	for _, want := range []string{
		"Layout search (serve-api)",
		"c3", "perturb/i1/k0/swap", "c3/limit=4096",
		"7/8", "8/8", "1.701", "1.800",
		"ACCEPT", "reject", "cut",
		"best seed scorecard", "below promotion cut",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Unpromoted candidates must not fake a scorecard.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "below promotion cut") && !strings.Contains(line, "-") {
			t.Errorf("cut candidate rendered a measured score:\n%s", line)
		}
	}
}

func TestSearchTableEmpty(t *testing.T) {
	out := SearchTable("empty", nil)
	if !strings.Contains(out, "empty") || !strings.Contains(out, "candidate") {
		t.Errorf("empty table lost title or header:\n%s", out)
	}
}
