package textviz

// Terminal rendering of the fleet observatory (`nimage fleet`). FleetRow
// mirrors one obs.FleetTenant without importing the obs package —
// textviz stays a leaf rendering layer — and the interference matrix is
// rendered as a who-evicted-whom grid with its partition totals.

import (
	"fmt"
	"strings"
	"time"
)

// FleetRow is one tenant line of the fleet scorecard.
type FleetRow struct {
	Tenant     int
	Workload   string
	Strategy   string
	QuotaPages int
	// Latency aggregates in simulated nanoseconds.
	StartupNanos  float64
	WarmMeanNanos float64
	WarmP99Nanos  float64
	// Fault traffic charged to the tenant and owner-side page churn.
	MajorFaults   int64
	Refaults      int64
	EvictedPages  int64
	ResidentPages int64
	// SLO attainment over the warm requests: cells attained of cells
	// scored.
	SLOAttained int
	SLOTargets  int
	// Isolation factors vs the tenant's solo run (>1: the fleet made it
	// worse); zero when no solo baseline was measured.
	IsolationLatency float64
	IsolationRefault float64
}

// FleetTable renders the per-tenant scorecard: identity, latency, fault
// and residency telemetry, SLO attainment and isolation factors.
func FleetTable(title string, rows []FleetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-3s %-12s %-14s %6s %10s %10s %10s %6s %8s %8s %9s %5s %9s %9s\n",
		"id", "workload", "strategy", "quota", "startup", "warm mean", "warm p99",
		"major", "refaults", "evicted", "resident", "slo", "iso(lat)", "iso(ref)")
	for _, r := range rows {
		quota := "-"
		if r.QuotaPages > 0 {
			quota = fmt.Sprintf("%dp", r.QuotaPages)
		}
		iso := func(v float64) string {
			if v <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", v)
		}
		fmt.Fprintf(&b, "%-3d %-12s %-14s %6s %10v %10v %10v %6d %8d %8d %9d %2d/%-2d %9s %9s\n",
			r.Tenant, r.Workload, r.Strategy, quota,
			time.Duration(r.StartupNanos), time.Duration(r.WarmMeanNanos),
			time.Duration(r.WarmP99Nanos),
			r.MajorFaults, r.Refaults, r.EvictedPages, r.ResidentPages,
			r.SLOAttained, r.SLOTargets,
			iso(r.IsolationLatency), iso(r.IsolationRefault))
	}
	return b.String()
}

// FleetMatrix renders the interference matrix: rows are evictors (the
// tenant whose fault forced the eviction, "ext" for external pressure),
// columns are page owners. Cells partition the total evictions exactly,
// so the grid's margin sums are the per-tenant eviction counts.
func FleetMatrix(evictedBy [][]int64, total int64) string {
	if len(evictedBy) == 0 {
		return ""
	}
	tenants := len(evictedBy) - 1
	var b strings.Builder
	fmt.Fprintf(&b, "Interference matrix (rows evict, columns own; %d evictions total)\n", total)
	fmt.Fprintf(&b, "%-10s", "evictor\\own")
	for j := 0; j < tenants; j++ {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("t%02d", j))
	}
	fmt.Fprintf(&b, " %8s\n", "row sum")
	rowLabel := func(i int) string {
		if i == 0 {
			return "ext"
		}
		return fmt.Sprintf("t%02d", i-1)
	}
	colSums := make([]int64, tenants)
	for i, row := range evictedBy {
		var rowSum int64
		fmt.Fprintf(&b, "%-10s", rowLabel(i))
		// Column 0 (untenanted files) is omitted: fleet runs own every
		// file, so it is structurally zero.
		for j := 1; j < len(row); j++ {
			fmt.Fprintf(&b, " %8d", row[j])
			rowSum += row[j]
			colSums[j-1] += row[j]
		}
		fmt.Fprintf(&b, " %8d\n", rowSum)
	}
	fmt.Fprintf(&b, "%-10s", "col sum")
	for _, s := range colSums {
		fmt.Fprintf(&b, " %8d", s)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}
