package textviz

import (
	"strings"
	"testing"
)

func TestBurstTable(t *testing.T) {
	rows := []BurstRow{
		{Burst: 0, Requests: 8, P50Nanos: 1500, P99Nanos: 90000, MajorFaults: 12, MinorFaults: 30, ResidentText: 40, ResidentHeap: 10},
		{Burst: 1, Requests: 8, P50Nanos: 1200, P99Nanos: 45000, MajorFaults: 3, MinorFaults: 2, Refaults: 3, EvictedPages: 25, ResidentText: 30, ResidentHeap: 8},
	}
	out := BurstTable("serve-api (identity layout)", rows)
	for _, want := range []string{
		"serve-api (identity layout)",
		"p50", "p99", "refaults", "evicted", "res.text", "res.heap",
		"0*", "cold burst",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("got %d lines, want 5:\n%s", lines, out)
	}
}

func TestBurstTableEmpty(t *testing.T) {
	out := BurstTable("t", nil)
	if strings.Contains(out, "cold burst") {
		t.Errorf("empty table renders footnote:\n%s", out)
	}
}
