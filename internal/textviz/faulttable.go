package textviz

// Terminal renderings of fault attribution tables (internal/obs/attrib):
// the ranked cold-symbol table behind `nimage faults`, and the
// eliminated/survived/new breakdown behind `nimage faults -diff`.

import (
	"fmt"
	"strings"
	"time"

	"nimage/internal/obs/attrib"
)

// FaultTable renders the top symbols of an attribution table as a ranked
// text table. limit <= 0 renders every symbol.
func FaultTable(t *attrib.Table, limit int) string {
	var b strings.Builder
	title := t.Workload
	if t.Layout != "" {
		title += " (" + t.Layout + " layout)"
	}
	fmt.Fprintf(&b, "%s: %d faults over %d runs", title, t.TotalFaults(), t.Runs)
	for _, s := range t.Sections {
		fmt.Fprintf(&b, ", %s %d+%d", s.Section, s.Major, s.Minor)
	}
	b.WriteString(" (major+minor)\n")
	fmt.Fprintf(&b, "%4s %7s %7s %10s %7s %9s %-7s %-10s %s\n",
		"#", "faults", "major", "io", "first", "waste", "kind", "section", "symbol")
	n := len(t.Symbols)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		s := t.Symbols[i]
		sec := s.Section
		if sec == "" {
			sec = "-"
		}
		fmt.Fprintf(&b, "%4d %7d %7d %10v %7d %8dB %-7s %-10s %s\n",
			i+1, s.Faults, s.Major, time.Duration(s.IONanos), s.FirstOrdinal,
			s.ResidentUnusedBytes, s.Kind, sec, s.Name)
	}
	if n < len(t.Symbols) {
		fmt.Fprintf(&b, "     ... %d more symbols\n", len(t.Symbols)-n)
	}
	return b.String()
}

// FaultDiff renders a table diff: the symbols a reordering stopped
// faulting, the residual cold set, and any regressions. limit <= 0 renders
// every symbol of each group.
func FaultDiff(d *attrib.Diff, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s: %d -> %d faults (%d eliminated, %d survived, %d new symbols)\n",
		orLabel(d.BaselineLayout, "baseline"), orLabel(d.OptimizedLayout, "optimized"),
		d.BaselineFaults, d.OptimizedFaults,
		len(d.Eliminated), len(d.Survived), len(d.New))
	diffGroup(&b, "eliminated (cold in baseline, never faults now)", d.Eliminated, limit)
	diffGroup(&b, "survived (still cold — next iteration's targets)", d.Survived, limit)
	diffGroup(&b, "new (regressions)", d.New, limit)
	return b.String()
}

func orLabel(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

func diffGroup(b *strings.Builder, title string, es []attrib.DiffEntry, limit int) {
	if len(es) == 0 {
		return
	}
	fmt.Fprintf(b, "\n%s:\n", title)
	fmt.Fprintf(b, "  %8s %9s %6s %10s %-7s %s\n",
		"baseline", "optimized", "delta", "io-delta", "kind", "symbol")
	n := len(es)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		e := es[i]
		fmt.Fprintf(b, "  %8d %9d %+6d %10v %-7s %s\n",
			e.Baseline, e.Optimized, e.Delta(), time.Duration(e.IODeltaNanos), e.Kind, e.Name)
	}
	if n < len(es) {
		fmt.Fprintf(b, "  ... %d more\n", len(es)-n)
	}
}
