package textviz

// Terminal renderings of temporal co-access affinity graphs
// (internal/obs/affinity): the ranked top-edge table behind
// `nimage affinity`, and the per-strategy layout scorecard behind
// `nimage affinity` / `nimage-eval -figure serve`.

import (
	"fmt"
	"sort"
	"strings"

	"nimage/internal/obs/affinity"
)

// AffinityTable renders the strongest edges of an affinity graph as a
// ranked text table. limit <= 0 renders every edge.
func AffinityTable(g *affinity.Graph, limit int) string {
	var b strings.Builder
	title := g.Workload
	if title == "" {
		title = "affinity"
	}
	if g.Layout != "" {
		title += " (" + g.Layout + " layout)"
	}
	fmt.Fprintf(&b, "%s: %d access events, %d windows, %d transitions, %d co-occurrences\n",
		title, g.AccessEvents, g.Windows, g.Transitions, g.Cooccurrences)
	fmt.Fprintf(&b, "%d nodes, %d edges (%.1f total weight", len(g.Nodes), len(g.Edges), g.TotalWeight())
	if g.PrunedEdges > 0 {
		fmt.Fprintf(&b, "; %d edges pruned under the budget", g.PrunedEdges)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "%4s %8s %6s %6s %-7s %s\n",
		"#", "weight", "co", "trans", "kind", "edge")
	n := len(g.Edges)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		e := g.Edges[i]
		a, z := g.Nodes[e.A], g.Nodes[e.B]
		fmt.Fprintf(&b, "%4d %8.2f %6d %6d %-7s %s -- %s\n",
			i+1, e.Weight, e.Co, e.Trans, edgeKindLabel(a.Kind, z.Kind), a.Name, z.Name)
	}
	if n < len(g.Edges) {
		fmt.Fprintf(&b, "     ... %d more edges\n", len(g.Edges)-n)
	}
	return b.String()
}

// edgeKindLabel compresses an edge's endpoint kinds ("cu-cu",
// "cu-object", ...); equal kinds collapse to the single kind.
func edgeKindLabel(a, b string) string {
	if a == b {
		return a
	}
	return a + "-" + b
}

// ScorecardTable renders per-strategy layout scorecards ranked best
// first (highest predicted refault factor, i.e. fewest predicted
// refaults relative to the baseline).
func ScorecardTable(cards []*affinity.Scorecard) string {
	ranked := make([]*affinity.Scorecard, 0, len(cards))
	for _, c := range cards {
		if c != nil {
			ranked = append(ranked, c)
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].PredictedRefaultFactor > ranked[j].PredictedRefaultFactor
	})
	var b strings.Builder
	if len(ranked) > 0 {
		title := ranked[0].Workload
		if title == "" {
			title = "layout scorecards"
		}
		fmt.Fprintf(&b, "%s: layout scorecards (pressure %d%%, %d/%d nodes mapped by best)\n",
			title, ranked[0].PressurePct, ranked[0].MappedNodes, ranked[0].TotalNodes)
	}
	fmt.Fprintf(&b, "%4s %-12s %8s %10s %10s %10s %10s %8s\n",
		"#", "strategy", "locality", "avg-win-pg", "peak-win-pg", "pred-refl", "cold-pg", "factor")
	for i, c := range ranked {
		factor := "-"
		if c.PredictedRefaultFactor > 0 {
			factor = fmt.Sprintf("%.2fx", c.PredictedRefaultFactor)
		}
		fmt.Fprintf(&b, "%4d %-12s %8.3f %10.1f %10d %10d %10d %8s\n",
			i+1, c.Strategy, c.LocalityScore, c.AvgWindowPages, c.PeakWindowPages,
			c.PredictedRefaults, c.PredictedColdPages, factor)
	}
	return b.String()
}

// AffinityDiff renders two graphs' ranked edges side by side by edge
// name: the edges that strengthened, weakened, appeared or vanished
// between two layouts' recordings. limit <= 0 renders every changed
// edge.
func AffinityDiff(base, opt *affinity.Graph, limit int) string {
	type change struct {
		name       string
		baseW, opW float64
	}
	baseEdges := edgeWeights(base)
	optEdges := edgeWeights(opt)
	var changes []change
	for name, w := range baseEdges {
		changes = append(changes, change{name, w, optEdges[name]})
	}
	for name, w := range optEdges {
		if _, ok := baseEdges[name]; !ok {
			changes = append(changes, change{name, 0, w})
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		di := changes[i].opW - changes[i].baseW
		dj := changes[j].opW - changes[j].baseW
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return changes[i].name < changes[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s: %d -> %d edges, %.1f -> %.1f total weight\n",
		orLabel(base.Layout, "baseline"), orLabel(opt.Layout, "optimized"),
		len(base.Edges), len(opt.Edges), base.TotalWeight(), opt.TotalWeight())
	fmt.Fprintf(&b, "%10s %10s %8s %s\n", "baseline", "optimized", "delta", "edge")
	n := len(changes)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		c := changes[i]
		fmt.Fprintf(&b, "%10.2f %10.2f %+8.2f %s\n", c.baseW, c.opW, c.opW-c.baseW, c.name)
	}
	if n < len(changes) {
		fmt.Fprintf(&b, "... %d more edges\n", len(changes)-n)
	}
	return b.String()
}

// edgeWeights keys a graph's edge weights by "a -- b" node names.
func edgeWeights(g *affinity.Graph) map[string]float64 {
	out := make(map[string]float64, len(g.Edges))
	for _, e := range g.Edges {
		out[g.Nodes[e.A].Name+" -- "+g.Nodes[e.B].Name] = e.Weight
	}
	return out
}
