package textviz

// Terminal rendering of the serve SLO scorecards (`nimage slo`,
// `nimage-eval -figure slo`). SLORow mirrors the fields of one
// obs.SLOEntry attainment without importing the obs package — textviz
// stays a leaf rendering layer.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLORow is one (workload, strategy, pressure, target) attainment cell.
type SLORow struct {
	Workload    string
	Strategy    string
	PressurePct int
	// Quantile in (0, 1); budget and measured latency in nanoseconds.
	Quantile      float64
	BudgetNanos   float64
	MeasuredNanos float64
	// Violations over Requests; BudgetBurn is the violation fraction over
	// the target's error budget (<= 1 attains).
	Violations int
	Requests   int
	BudgetBurn float64
	Attained   bool
}

// SLOOverheadRow is one telemetry-on/off control run for rendering.
type SLOOverheadRow struct {
	Workload string
	Strategy string
	// Wall nanoseconds per request with telemetry on and off, the relative
	// overhead, and whether the simulated outcomes were bit-identical.
	OnWallNanosPerReq  float64
	OffWallNanosPerReq float64
	OverheadFrac       float64
	SimIdentical       bool
}

// sloTargetLabel renders "p99" or "p99.9" from a (0,1) quantile.
func sloTargetLabel(q float64) string {
	return "p" + strconv.FormatFloat(q*100, 'f', -1, 64)
}

// SLOTable renders the attainment scorecard: one line per (workload,
// strategy, pressure, target) with the measured quantile against its
// budget and the error-budget burn.
func SLOTable(title string, rows []SLORow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %-14s %9s %7s %10s %10s %11s %7s %s\n",
		"workload", "strategy", "pressure", "target", "budget", "measured", "violations", "burn", "slo")
	for _, r := range rows {
		verdict := "MISS"
		if r.Attained {
			verdict = "ok"
		}
		fmt.Fprintf(&b, "%-12s %-14s %8d%% %7s %10v %10v %5d/%-5d %7.2f %s\n",
			r.Workload, r.Strategy, r.PressurePct, sloTargetLabel(r.Quantile),
			time.Duration(r.BudgetNanos), time.Duration(r.MeasuredNanos),
			r.Violations, r.Requests, r.BudgetBurn, verdict)
	}
	return b.String()
}

// SLOOverheadTable renders the observatory's own cost: the wall-clock
// per-request delta between the telemetry-on and telemetry-off control
// runs of the identical scenario.
func SLOOverheadTable(rows []SLOOverheadRow) string {
	var b strings.Builder
	b.WriteString("Telemetry overhead (identical scenario, recorder on vs off; wall clock)\n")
	fmt.Fprintf(&b, "%-12s %-14s %12s %12s %9s %s\n",
		"workload", "strategy", "on ns/req", "off ns/req", "overhead", "sim")
	for _, r := range rows {
		sim := "DIVERGED"
		if r.SimIdentical {
			sim = "identical"
		}
		fmt.Fprintf(&b, "%-12s %-14s %12.0f %12.0f %8.1f%% %s\n",
			r.Workload, r.Strategy, r.OnWallNanosPerReq, r.OffWallNanosPerReq,
			100*r.OverheadFrac, sim)
	}
	return b.String()
}
