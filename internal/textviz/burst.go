package textviz

// Terminal rendering of serve-mode burst telemetry (`nimage serve`).
// BurstRow mirrors the fields of eval.BurstMeasure without importing the
// eval package — textviz stays a leaf rendering layer.

import (
	"fmt"
	"strings"
	"time"
)

// BurstRow is one request burst's telemetry for rendering.
type BurstRow struct {
	Burst    int
	Requests int
	// Latency quantiles in simulated nanoseconds.
	P50Nanos float64
	P99Nanos float64
	// Fault traffic of the burst.
	MajorFaults int64
	MinorFaults int64
	Refaults    int64
	// EvictedPages counts evictions since the previous burst (inter-burst
	// pressure plus budget churn).
	EvictedPages int64
	// Resident page counts at the end of the burst.
	ResidentText int
	ResidentHeap int
}

// BurstTable renders the per-burst telemetry of one serve run.
func BurstTable(title string, rows []BurstRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%5s %5s %10s %10s %6s %6s %8s %8s %9s %9s\n",
		"burst", "reqs", "p50", "p99", "major", "minor", "refaults", "evicted", "res.text", "res.heap")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Burst)
		if r.Burst == 0 {
			label = "0*"
		}
		fmt.Fprintf(&b, "%5s %5d %10v %10v %6d %6d %8d %8d %9d %9d\n",
			label, r.Requests,
			time.Duration(r.P50Nanos), time.Duration(r.P99Nanos),
			r.MajorFaults, r.MinorFaults, r.Refaults, r.EvictedPages,
			r.ResidentText, r.ResidentHeap)
	}
	if len(rows) > 0 {
		b.WriteString("  (* cold burst — excluded from warm aggregates)\n")
	}
	return b.String()
}
