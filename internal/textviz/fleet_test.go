package textviz

import (
	"strings"
	"testing"
)

func TestFleetTable(t *testing.T) {
	out := FleetTable("Fleet scorecard (2 tenants, budget 96)", []FleetRow{
		{Tenant: 0, Workload: "serve-api", Strategy: "cu+heap path",
			StartupNanos: 4.2e6, WarmMeanNanos: 1.8e5, WarmP99Nanos: 9.1e5,
			MajorFaults: 120, Refaults: 30, EvictedPages: 5, ResidentPages: 44,
			SLOAttained: 3, SLOTargets: 4,
			IsolationLatency: 1.2, IsolationRefault: 2.82},
		{Tenant: 1, Workload: "serve-cache", Strategy: "c3", QuotaPages: 48,
			StartupNanos: 3.9e6, WarmMeanNanos: 1.2e5, WarmP99Nanos: 6.4e5,
			MajorFaults: 90, Refaults: 18, EvictedPages: 7, ResidentPages: 48,
			SLOAttained: 4, SLOTargets: 4},
	})
	for _, want := range []string{
		"Fleet scorecard (2 tenants, budget 96)",
		"serve-api", "serve-cache", "cu+heap path", "c3",
		"48p", "3/4", "4/4", "1.20x", "2.82x",
		"iso(lat)", "iso(ref)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// No quota and no solo baseline render as "-".
	if !strings.Contains(out, " - ") {
		t.Errorf("missing placeholder for absent quota/isolation:\n%s", out)
	}
}

func TestFleetTableEmpty(t *testing.T) {
	out := FleetTable("empty", nil)
	if !strings.Contains(out, "empty") || !strings.Contains(out, "workload") {
		t.Errorf("empty table lost title or header:\n%s", out)
	}
}

func TestFleetMatrix(t *testing.T) {
	out := FleetMatrix([][]int64{
		{0, 2, 3},
		{0, 1, 2},
		{0, 2, 2},
	}, 12)
	for _, want := range []string{
		"12 evictions total",
		"evictor\\own", "ext", "t00", "t01", "row sum", "col sum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
	// Margin sums: col sums 5 and 7, ext row sum 5.
	for _, want := range []string{"        5", "        7"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing margin %q:\n%s", want, out)
		}
	}
	if FleetMatrix(nil, 0) != "" {
		t.Error("nil matrix should render empty")
	}
}
