package graal

import (
	"testing"

	"nimage/internal/ir"
)

// buildWorld constructs a program exercising the analysis and the inliner:
//
//   - Main.main calls Main.small (inlinable) and Main.big (too large),
//     virtual-dispatches Shape.area over 6 implementors (saturating),
//     and references string constants.
//   - Dead.never is not reachable.
//   - Util has a clinit (reachable via a static field access).
func buildWorld(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("world")
	b.Class(ir.StringClass)

	shape := b.Class("Shape")
	sm := shape.Method("area", 0, ir.Int())
	se := sm.Entry()
	se.Ret(se.ConstInt(0))
	for _, n := range []string{"Circle", "Square", "Tri", "Hex", "Oct", "Rho"} {
		c := b.Class(n).Extends("Shape")
		m := c.Method("area", 0, ir.Int())
		e := m.Entry()
		e.Ret(e.ConstInt(int64(len(n))))
	}

	util := b.Class("Util")
	util.Static("table", ir.Array(ir.Int()))
	cl := util.Clinit()
	ce := cl.Entry()
	ln := ce.ConstInt(4)
	arr := ce.NewArray(ir.Int(), ln)
	ce.PutStatic("Util", "table", arr)
	ce.RetVoid()

	main := b.Class("Main")
	small := main.StaticMethod("small", 1, ir.Int())
	sme := small.Entry()
	one := sme.ConstInt(1)
	sme.Ret(sme.Arith(ir.Add, small.Param(0), one))

	big := main.StaticMethod("big", 1, ir.Int())
	be := big.Entry()
	acc := be.ConstInt(0)
	for i := 0; i < 40; i++ {
		k := be.ConstInt(int64(i))
		be.ArithTo(acc, ir.Add, acc, k)
	}
	be.Ret(acc)

	mm := main.StaticMethod("main", 0, ir.Void())
	me := mm.Entry()
	me.Str("hello-constant")
	me.Str("other-constant")
	x := me.ConstInt(5)
	me.Call("Main", "small", x)
	me.Call("Main", "big", x)
	sh := me.New("Circle")
	me.CallVirt("Shape", "area", sh)
	me.GetStatic("Util", "table")
	me.RetVoid()

	dead := b.Class("Dead")
	dm := dead.StaticMethod("never", 0, ir.Void())
	dm.Entry().RetVoid()

	b.SetEntry("Main", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestReachabilityConservative(t *testing.T) {
	p := buildWorld(t)
	r := Analyze(p, DefaultConfig())

	dead := p.Class("Dead").DeclaredMethod("never")
	if r.Methods[dead] {
		t.Error("dead method reachable")
	}
	// All six overriders of Shape.area are reachable even though only
	// Circle is instantiated — the analysis is conservative.
	for _, n := range []string{"Circle", "Square", "Tri", "Hex", "Oct", "Rho"} {
		m := p.Class(n).DeclaredMethod("area")
		if !r.Methods[m] {
			t.Errorf("%s.area not reachable", n)
		}
	}
	if r.SaturatedSites == 0 {
		t.Error("no saturated call sites recorded")
	}
	// Util is reachable via the static read, and its clinit is analyzed.
	if !r.Classes[p.Class("Util")] {
		t.Error("Util class not reachable")
	}
	if !r.Methods[p.Class("Util").Clinit()] {
		t.Error("Util clinit not reachable")
	}
}

func TestCompiledMethodsExcludeClinits(t *testing.T) {
	p := buildWorld(t)
	r := Analyze(p, DefaultConfig())
	for _, m := range r.CompiledMethods() {
		if m.Clinit {
			t.Errorf("clinit %s compiled into .text", m.Signature())
		}
	}
	// Alphabetical order.
	ms := r.CompiledMethods()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Signature() >= ms[i].Signature() {
			t.Fatalf("not sorted: %s before %s", ms[i-1].Signature(), ms[i].Signature())
		}
	}
}

func TestInlinerInlinesSmallNotBig(t *testing.T) {
	p := buildWorld(t)
	c := Compile(p, DefaultConfig(), InstrNone, false)
	mainCU := c.CUBySig["Main.main(0)"]
	if mainCU == nil {
		t.Fatal("no CU for main")
	}
	small := p.Class("Main").DeclaredMethod("small")
	big := p.Class("Main").DeclaredMethod("big")
	if !mainCU.Members[small] {
		t.Error("small not inlined into main")
	}
	if mainCU.Members[big] {
		t.Error("big inlined into main despite size")
	}
	// small is still compiled as its own CU root.
	if c.CUBySig["Main.small(1)"] == nil {
		t.Error("small lost its own CU")
	}
}

func TestPolymorphicCallNotInlined(t *testing.T) {
	p := buildWorld(t)
	c := Compile(p, DefaultConfig(), InstrNone, false)
	mainCU := c.CUBySig["Main.main(0)"]
	for _, n := range []string{"Circle", "Square"} {
		if mainCU.Members[p.Class(n).DeclaredMethod("area")] {
			t.Errorf("polymorphic target %s.area inlined", n)
		}
	}
}

func TestInstrumentationPerturbsInlining(t *testing.T) {
	p := buildWorld(t)
	cfg := DefaultConfig()
	// Tighten the limit so the method probe pushes `small` over it.
	cfg.InlineSmallSize = effectiveSize(p.Class("Main").DeclaredMethod("small"), cfg, InstrNone)
	reg := Compile(p, cfg, InstrNone, false)
	ins := Compile(p, cfg, InstrMethod, false)
	small := p.Class("Main").DeclaredMethod("small")
	if !reg.CUBySig["Main.main(0)"].Members[small] {
		t.Fatal("regular build should inline small")
	}
	if ins.CUBySig["Main.main(0)"].Members[small] {
		t.Error("method-instrumented build still inlines small — probes did not perturb")
	}
}

func TestInstrumentationSizeOrdering(t *testing.T) {
	// Method-entry probes inflate more than CU probes; heap probes inflate
	// access-heavy code most. This ordering underlies the overhead ranking
	// of Sec. 7.4 and the cu>method accuracy ranking of Sec. 7.2.
	p := buildWorld(t)
	cfg := DefaultConfig()
	none := Compile(p, cfg, InstrNone, false).TextSize()
	cu := Compile(p, cfg, InstrCU, false).TextSize()
	method := Compile(p, cfg, InstrMethod, false).TextSize()
	if !(none < cu && cu < method) {
		t.Errorf("text sizes none=%d cu=%d method=%d, want none<cu<method", none, cu, method)
	}
}

func TestPGOChangesInlining(t *testing.T) {
	p := buildWorld(t)
	cfg := DefaultConfig()
	small := p.Class("Main").DeclaredMethod("small")
	// Choose the limit just below small's size: only the PGO bonus makes
	// it inlinable.
	cfg.InlineSmallSize = effectiveSize(small, cfg, InstrNone) - 1
	reg := Compile(p, cfg, InstrNone, false)
	opt := Compile(p, cfg, InstrNone, true)
	if reg.CUBySig["Main.main(0)"].Members[small] {
		t.Fatal("regular build inlined small below limit")
	}
	if !opt.CUBySig["Main.main(0)"].Members[small] {
		t.Error("PGO build did not get the inline bonus")
	}
}

func TestConstantsCollectedAndFoldingDeterministic(t *testing.T) {
	p := buildWorld(t)
	cfg := DefaultConfig()
	c1 := Compile(p, cfg, InstrNone, false)
	c2 := Compile(p, cfg, InstrNone, false)
	cu1 := c1.CUBySig["Main.main(0)"]
	cu2 := c2.CUBySig["Main.main(0)"]
	if len(cu1.Constants) < 2 {
		t.Fatalf("constants = %v", cu1.Constants)
	}
	if len(cu1.Constants) != len(cu2.Constants) {
		t.Fatal("non-deterministic constant collection")
	}
	for i := range cu1.Constants {
		if cu1.Constants[i] != cu2.Constants[i] {
			t.Errorf("constant %d differs across identical compilations", i)
		}
	}
}

func TestCUsSortedAndIndexed(t *testing.T) {
	p := buildWorld(t)
	c := Compile(p, DefaultConfig(), InstrNone, false)
	if len(c.CUs) == 0 {
		t.Fatal("no CUs")
	}
	for i := 1; i < len(c.CUs); i++ {
		if c.CUs[i-1].Signature() >= c.CUs[i].Signature() {
			t.Fatalf("CUs not alphabetical at %d", i)
		}
	}
	for _, cu := range c.CUs {
		if c.CUBySig[cu.Signature()] != cu {
			t.Fatalf("index broken for %s", cu.Signature())
		}
		if cu.Size <= 0 {
			t.Fatalf("CU %s has size %d", cu.Signature(), cu.Size)
		}
	}
}

func TestPEACountsNonEscaping(t *testing.T) {
	b := ir.NewBuilder("pea")
	b.Class(ir.StringClass)
	c := b.Class("C").Field("x", ir.Int())
	b.Class("Box").Field("v", ir.Ref("C"))

	m := c.StaticMethod("f", 0, ir.Int())
	e := m.Entry()
	// o1 does not escape: only its own field is written/read.
	o1 := e.New("C")
	k := e.ConstInt(3)
	e.PutField(o1, "C", "x", k)
	r := e.GetField(o1, "C", "x")
	// o2 escapes into a box field.
	o2 := e.New("C")
	box := e.New("Box")
	e.PutField(box, "Box", "v", o2)
	e.Ret(r)
	b.SetEntry("C", "f")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := nonEscapingAllocs(p.Class("C").DeclaredMethod("f"))
	// o1 does not escape; o2 escapes; box itself does not escape.
	if got != 2 {
		t.Errorf("nonEscapingAllocs = %d, want 2 (o1 and box)", got)
	}
}

func TestSpawnTargetReachable(t *testing.T) {
	b := ir.NewBuilder("spawn")
	b.Class(ir.StringClass)
	w := b.Class("Worker")
	run := w.StaticMethod("run", 1, ir.Void())
	run.Entry().RetVoid()
	m := b.Class("Main")
	mm := m.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	one := e.ConstInt(1)
	e.Spawn("Worker.run", one)
	e.RetVoid()
	b.SetEntry("Main", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(p, DefaultConfig())
	if !r.Methods[p.Class("Worker").DeclaredMethod("run")] {
		t.Error("spawn target not reachable")
	}
}
