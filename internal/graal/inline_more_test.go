package graal

import (
	"fmt"
	"testing"

	"nimage/internal/ir"
)

// TestCUBudgetCapsTotalSize: a root with many inlinable callees stops
// inlining once the CU budget is reached.
func TestCUBudgetCapsTotalSize(t *testing.T) {
	b := ir.NewBuilder("budget")
	b.Class(ir.StringClass)
	c := b.Class("B")
	for i := 0; i < 64; i++ {
		m := c.StaticMethod(fmt.Sprintf("leaf%02d", i), 1, ir.Int())
		e := m.Entry()
		acc := e.Move(m.Param(0))
		for k := 0; k < 4; k++ {
			kc := e.ConstInt(int64(k))
			e.ArithTo(acc, ir.Add, acc, kc)
		}
		e.Ret(acc)
	}
	root := c.StaticMethod("root", 1, ir.Int())
	re := root.Entry()
	acc := re.Move(root.Param(0))
	for i := 0; i < 64; i++ {
		r := re.Call("B", fmt.Sprintf("leaf%02d", i), acc)
		re.MoveTo(acc, r)
	}
	re.Ret(acc)
	b.SetEntry("B", "root")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	// The budget caps inlining additions on top of the root's own size.
	rootSize := p.Class("B").DeclaredMethod("root").CodeSize()
	cfg.CUBudget = rootSize + 400
	comp := Compile(p, cfg, InstrNone, false)
	cu := comp.CUBySig["B.root(1)"]
	if cu.Size > cfg.CUBudget {
		t.Errorf("CU size %d exceeds budget %d", cu.Size, cfg.CUBudget)
	}
	if len(cu.Inlined) == 0 {
		t.Error("nothing inlined at all")
	}
	if len(cu.Inlined) == 64 {
		t.Error("budget did not stop inlining")
	}
}

// TestMaxInlineDepth: a chain a->b->c->... inlines only MaxInlineDepth
// levels deep.
func TestMaxInlineDepth(t *testing.T) {
	b := ir.NewBuilder("depth")
	b.Class(ir.StringClass)
	c := b.Class("D")
	const chain = 8
	for i := chain - 1; i >= 0; i-- {
		m := c.StaticMethod(fmt.Sprintf("f%d", i), 1, ir.Int())
		e := m.Entry()
		if i == chain-1 {
			e.Ret(m.Param(0))
		} else {
			r := e.Call("D", fmt.Sprintf("f%d", i+1), m.Param(0))
			e.Ret(r)
		}
	}
	b.SetEntry("D", "f0")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxInlineDepth = 3
	comp := Compile(p, cfg, InstrNone, false)
	cu := comp.CUBySig["D.f0(1)"]
	if got := len(cu.Inlined); got != 3 {
		t.Errorf("inlined %d levels, want 3", got)
	}
}

// TestRecursionNotInlined: direct and mutual recursion never inline into
// themselves.
func TestRecursionNotInlined(t *testing.T) {
	b := ir.NewBuilder("rec")
	b.Class(ir.StringClass)
	c := b.Class("R")
	even := c.StaticMethod("even", 1, ir.Int())
	odd := c.StaticMethod("odd", 1, ir.Int())
	ee := even.Entry()
	zero := ee.ConstInt(0)
	isZ := ee.Cmp(ir.Eq, even.Param(0), zero)
	yes := even.NewBlock()
	no := even.NewBlock()
	ee.If(isZ, yes, no)
	one0 := yes.ConstInt(1)
	yes.Ret(one0)
	one := no.ConstInt(1)
	n1 := no.Arith(ir.Sub, even.Param(0), one)
	no.Ret(no.Call("R", "odd", n1))

	oe := odd.Entry()
	zero2 := oe.ConstInt(0)
	isZ2 := oe.Cmp(ir.Eq, odd.Param(0), zero2)
	yes2 := odd.NewBlock()
	no2 := odd.NewBlock()
	oe.If(isZ2, yes2, no2)
	z := yes2.ConstInt(0)
	yes2.Ret(z)
	one2 := no2.ConstInt(1)
	n2 := no2.Arith(ir.Sub, odd.Param(0), one2)
	no2.Ret(no2.Call("R", "even", n2))

	b.SetEntry("R", "even")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	comp := Compile(p, DefaultConfig(), InstrNone, false)
	evenCU := comp.CUBySig["R.even(1)"]
	// even may inline odd, but the nested odd->even edge must not bring
	// even back into its own CU.
	for _, m := range evenCU.Inlined {
		if m == p.Class("R").DeclaredMethod("even") {
			t.Fatal("even inlined into itself")
		}
	}
}

// TestConstantFoldingDependsOnComposition: the folded-constant set of a CU
// changes when its member set changes (the heap-divergence mechanism).
func TestConstantFoldingDependsOnComposition(t *testing.T) {
	mk := func(extraCallee bool) map[string]bool {
		b := ir.NewBuilder("fold")
		b.Class(ir.StringClass)
		c := b.Class("F")
		callee := c.StaticMethod("small", 1, ir.Int())
		ce := callee.Entry()
		one := ce.ConstInt(1)
		ce.Ret(ce.Arith(ir.Add, callee.Param(0), one))
		root := c.StaticMethod("root", 1, ir.Int())
		re := root.Entry()
		// Many literals so FoldPercent has something to act on.
		for i := 0; i < 40; i++ {
			re.Str(fmt.Sprintf("lit-%02d", i))
		}
		acc := re.Move(root.Param(0))
		if extraCallee {
			r := re.Call("F", "small", acc)
			re.MoveTo(acc, r)
		}
		re.Ret(acc)
		b.SetEntry("F", "root")
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		comp := Compile(p, DefaultConfig(), InstrNone, false)
		folded := map[string]bool{}
		for _, cst := range comp.CUBySig["F.root(1)"].Constants {
			if cst.Folded {
				folded[cst.Literal] = true
			}
		}
		return folded
	}
	a, b2 := mk(false), mk(true)
	if len(a) == 0 && len(b2) == 0 {
		t.Skip("fold percent produced no folds on this literal set")
	}
	same := len(a) == len(b2)
	if same {
		for k := range a {
			if !b2[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("folded set identical despite different CU composition")
	}
}

// TestInstrumentationHeapInflatesAccessHeavyCode: heap probes grow methods
// proportionally to their access counts.
func TestInstrumentationHeapInflatesAccessHeavyCode(t *testing.T) {
	b := ir.NewBuilder("inflate")
	b.Class(ir.StringClass)
	c := b.Class("I").Field("x", ir.Int())
	hot := c.StaticMethod("accessy", 1, ir.Int())
	he := hot.Entry()
	o := he.New("I")
	acc := he.Move(hot.Param(0))
	for k := 0; k < 10; k++ {
		he.PutField(o, "I", "x", acc)
		v := he.GetField(o, "I", "x")
		he.MoveTo(acc, v)
	}
	he.Ret(acc)
	calm := c.StaticMethod("arithy", 1, ir.Int())
	cae := calm.Entry()
	acc2 := cae.Move(calm.Param(0))
	for k := 0; k < 20; k++ {
		kc := cae.ConstInt(int64(k))
		cae.ArithTo(acc2, ir.Add, acc2, kc)
	}
	cae.Ret(acc2)
	b.SetEntry("I", "accessy")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	am := p.Class("I").DeclaredMethod("accessy")
	cm := p.Class("I").DeclaredMethod("arithy")
	accessGrowth := effectiveSize(am, cfg, InstrHeap) - effectiveSize(am, cfg, InstrNone)
	calmGrowth := effectiveSize(cm, cfg, InstrHeap) - effectiveSize(cm, cfg, InstrNone)
	if accessGrowth <= calmGrowth {
		t.Errorf("access-heavy growth %d <= arithmetic growth %d", accessGrowth, calmGrowth)
	}
}

// TestSaturationThresholdCounting: lowering the threshold flags more sites.
func TestSaturationThresholdCounting(t *testing.T) {
	b := ir.NewBuilder("sat")
	b.Class(ir.StringClass)
	base := b.Class("Base")
	bm := base.Method("v", 0, ir.Int())
	be := bm.Entry()
	be.Ret(be.ConstInt(0))
	for i := 0; i < 3; i++ {
		c := b.Class(fmt.Sprintf("Impl%d", i)).Extends("Base")
		m := c.Method("v", 0, ir.Int())
		e := m.Entry()
		e.Ret(e.ConstInt(int64(i)))
	}
	main := b.Class("Main")
	mm := main.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	o := e.New("Impl0")
	e.CallVirt("Base", "v", o)
	e.RetVoid()
	b.SetEntry("Main", "main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	low := DefaultConfig()
	low.SaturationThreshold = 2
	high := DefaultConfig()
	high.SaturationThreshold = 10
	if got := Analyze(p, low).SaturatedSites; got != 1 {
		t.Errorf("low threshold saturated sites = %d", got)
	}
	if got := Analyze(p, high).SaturatedSites; got != 0 {
		t.Errorf("high threshold saturated sites = %d", got)
	}
}
