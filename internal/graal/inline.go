package graal

import (
	"sort"

	"nimage/internal/ir"
)

// CompilationUnit is a CU of the .text section: a root method plus every
// method transitively inlined into it (Sec. 2). The same method may be
// inlined into several CUs and still be compiled as its own CU root.
type CompilationUnit struct {
	// Root is the method the compilation started from; its signature names
	// the CU in ordering profiles.
	Root *ir.Method
	// Inlined lists the inlined methods (excluding the root) in inlining
	// decision order. A method can appear more than once if several call
	// sites inlined it.
	Inlined []*ir.Method
	// Members is the set of methods whose code is inside this CU.
	Members map[*ir.Method]bool
	// Size is the estimated compiled size in bytes, including probes.
	Size int
	// Constants lists the distinct string literals embedded in the CU's
	// compiled code together with the method whose code references them;
	// each surviving constant becomes a heap-snapshot root (Sec. 5.3).
	Constants []Constant
	// ScalarReplaced counts allocations removed by partial escape analysis
	// inside this CU.
	ScalarReplaced int
}

// Constant is a string literal embedded in compiled code.
type Constant struct {
	// Literal is the string value.
	Literal string
	// Source is the method whose bytecode contains the literal.
	Source *ir.Method
	// Folded marks constants that optimization removed from the code (and
	// hence from the heap snapshot) — e.g. constant-folded reads enabled by
	// inlining/PEA. Folding depends on the CU composition, so it differs
	// across builds with different inlining.
	Folded bool
}

// Signature returns the root-method signature that identifies the CU.
func (cu *CompilationUnit) Signature() string { return cu.Root.Signature() }

// inliner builds the CU for one root using a greedy, size-driven policy.
type inliner struct {
	cfg    Config
	instr  Instrumentation
	pgo    bool
	reach  *Reachability
	sizeOf func(*ir.Method) int
}

// effectiveSize returns the method's code size including the inflation its
// probes cause under the given instrumentation kind.
func effectiveSize(m *ir.Method, cfg Config, instr Instrumentation) int {
	s := m.CodeSize()
	switch instr {
	case InstrMethod:
		s += cfg.ProbeMethodEntry
	case InstrHeap:
		s += cfg.ProbePerBlock * len(m.Blocks)
		s += cfg.ProbePerAccess * countAccesses(m)
	}
	return s
}

// countAccesses counts the traced access events of a method — the events
// the heap-ordering instrumentation records (Sec. 6.1).
func countAccesses(m *ir.Method) int {
	n := 0
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			n += b.Instrs[i].AccessCount()
		}
	}
	return n
}

func (il *inliner) smallLimit() int {
	lim := il.cfg.InlineSmallSize
	if il.pgo {
		lim += il.cfg.PGOBonus
	}
	return lim
}

// build creates the CU rooted at root.
func (il *inliner) build(root *ir.Method) *CompilationUnit {
	cu := &CompilationUnit{
		Root:    root,
		Members: map[*ir.Method]bool{root: true},
		Size:    il.sizeOf(root),
	}
	if il.instr == InstrCU {
		cu.Size += il.cfg.ProbeCUEntry
	}
	il.inlineCalls(cu, root, map[*ir.Method]bool{root: true}, 1)
	return cu
}

// inlineCalls walks the call sites of m (already part of cu) and greedily
// inlines eligible callees.
func (il *inliner) inlineCalls(cu *CompilationUnit, m *ir.Method, stack map[*ir.Method]bool, depth int) {
	if depth > il.cfg.MaxInlineDepth {
		return
	}
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			var callee *ir.Method
			switch in.Op {
			case ir.OpCall:
				callee = in.Method
			case ir.OpCallVirt:
				// Only monomorphic virtual calls inline (devirtualization).
				targets := ir.Overriders(in.Method)
				if len(targets) == 1 {
					callee = targets[0]
				}
			}
			if callee == nil || callee.Clinit || stack[callee] {
				continue
			}
			cs := il.sizeOf(callee)
			if cs > il.smallLimit() || cu.Size+cs > il.cfg.CUBudget {
				continue
			}
			cu.Size += cs
			cu.Inlined = append(cu.Inlined, callee)
			cu.Members[callee] = true
			stack[callee] = true
			il.inlineCalls(cu, callee, stack, depth+1)
			delete(stack, callee)
		}
	}
}

// BuildCUs forms compilation units for every compiled method. CUs are
// returned in the default Native-Image order: alphabetical by root signature
// (Sec. 2).
func BuildCUs(reach *Reachability, cfg Config, instr Instrumentation, pgo bool) []*CompilationUnit {
	il := &inliner{
		cfg: cfg, instr: instr, pgo: pgo, reach: reach,
		sizeOf: func(m *ir.Method) int { return effectiveSize(m, cfg, instr) },
	}
	methods := reach.CompiledMethods()
	cus := make([]*CompilationUnit, 0, len(methods))
	for _, m := range methods {
		cus = append(cus, il.build(m))
	}
	sort.Slice(cus, func(i, j int) bool { return cus[i].Signature() < cus[j].Signature() })
	return cus
}
