package graal

import (
	"sort"

	"nimage/internal/ir"
)

// Reachability is the result of the points-to-style analysis: the sets of
// reachable methods and classes. The analysis is conservative — it always
// includes more code than what actually executes (Sec. 2) — and applies
// saturation to virtual calls with many possible targets.
type Reachability struct {
	// Methods is the set of reachable methods.
	Methods map[*ir.Method]bool
	// MethodOrder lists reachable methods in discovery order.
	MethodOrder []*ir.Method
	// Classes is the set of reachable classes.
	Classes map[*ir.Class]bool
	// ClassOrder lists reachable classes in discovery order; the image
	// builder runs their initializers and snapshots their static fields.
	ClassOrder []*ir.Class
	// SaturatedSites counts virtual call sites whose target set exceeded
	// the saturation threshold.
	SaturatedSites int
}

// Analyze runs the reachability analysis from the program entry point.
func Analyze(p *ir.Program, cfg Config) *Reachability {
	r := &Reachability{
		Methods: make(map[*ir.Method]bool),
		Classes: make(map[*ir.Class]bool),
	}
	var work []*ir.Method

	addMethod := func(m *ir.Method) {
		if m == nil || r.Methods[m] {
			return
		}
		r.Methods[m] = true
		r.MethodOrder = append(r.MethodOrder, m)
		work = append(work, m)
	}
	var addClass func(c *ir.Class)
	addClass = func(c *ir.Class) {
		if c == nil || r.Classes[c] {
			return
		}
		r.Classes[c] = true
		r.ClassOrder = append(r.ClassOrder, c)
		addClass(c.Super)
		// The class initializer of a reachable class runs at build time.
		addMethod(c.Clinit())
	}

	entry := p.Entry()
	if entry == nil {
		return r
	}
	addClass(entry.Class)
	addMethod(entry)

	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpNew:
					addClass(in.Class)
				case ir.OpConstStr:
					addClass(p.Class(ir.StringClass))
				case ir.OpGetStatic, ir.OpPutStatic:
					addClass(in.Field.Class)
				case ir.OpGetField, ir.OpPutField:
					addClass(in.Field.Class)
				case ir.OpCall:
					addClass(in.Method.Class)
					addMethod(in.Method)
				case ir.OpCallVirt:
					addClass(in.Method.Class)
					targets := ir.Overriders(in.Method)
					if len(targets) > cfg.SaturationThreshold {
						r.SaturatedSites++
					}
					// Conservative: all overriders are reachable. (With
					// saturation Native Image deliberately gives up
					// precision on polymorphic sites, Sec. 2.)
					for _, t := range targets {
						addClass(t.Class)
						addMethod(t)
					}
				case ir.OpIntrinsic:
					if in.Sym == ir.IntrinsicSpawn {
						if t := spawnTarget(p, in.CName); t != nil {
							addClass(t.Class)
							addMethod(t)
						}
					}
				}
			}
		}
	}
	return r
}

// spawnTarget resolves a "Class.method" spawn target string.
func spawnTarget(p *ir.Program, target string) *ir.Method {
	dot := -1
	for i := len(target) - 1; i >= 0; i-- {
		if target[i] == '.' {
			dot = i
			break
		}
	}
	if dot < 0 {
		return nil
	}
	c := p.Class(target[:dot])
	if c == nil {
		return nil
	}
	return c.DeclaredMethod(target[dot+1:])
}

// CompiledMethods returns the reachable methods that are compiled into the
// .text section: every reachable method except class initializers, which
// execute at build time only (Sec. 2), sorted by signature for a stable
// baseline.
func (r *Reachability) CompiledMethods() []*ir.Method {
	var out []*ir.Method
	for _, m := range r.MethodOrder {
		if !m.Clinit {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature() < out[j].Signature() })
	return out
}
