package graal

import (
	"sort"
	"strings"

	"nimage/internal/ir"
	"nimage/internal/murmur"
)

// Compilation is the output of compiling a program: the reachable world and
// its compilation units in default (alphabetical) order.
type Compilation struct {
	Program *ir.Program
	Config  Config
	Instr   Instrumentation
	// PGO marks profile-guided (optimized) builds, which inline more
	// aggressively than regular/instrumented builds.
	PGO   bool
	Reach *Reachability
	// CUs in default Native-Image order: alphabetical by root signature.
	CUs []*CompilationUnit
	// CUBySig indexes CUs by root signature.
	CUBySig map[string]*CompilationUnit
}

// Compile runs reachability analysis, forms compilation units, collects CU
// code constants (with optimization-dependent folding), and runs partial
// escape analysis.
func Compile(p *ir.Program, cfg Config, instr Instrumentation, pgo bool) *Compilation {
	return Assemble(p, cfg, instr, pgo, Analyze(p, cfg))
}

// Assemble turns a completed reachability analysis into a compilation:
// it forms compilation units (inlining), collects CU code constants, and
// runs partial escape analysis. Splitting it from Analyze lets callers
// time the two compiler halves independently.
func Assemble(p *ir.Program, cfg Config, instr Instrumentation, pgo bool, reach *Reachability) *Compilation {
	c := &Compilation{
		Program: p,
		Config:  cfg,
		Instr:   instr,
		PGO:     pgo,
		Reach:   reach,
	}
	c.CUs = BuildCUs(c.Reach, cfg, instr, pgo)
	c.CUBySig = make(map[string]*CompilationUnit, len(c.CUs))
	for _, cu := range c.CUs {
		c.CUBySig[cu.Signature()] = cu
		collectConstants(cu, cfg)
		cu.ScalarReplaced = peaCount(cu)
	}
	return c
}

// TextSize returns the summed CU sizes (the .text payload).
func (c *Compilation) TextSize() int {
	s := 0
	for _, cu := range c.CUs {
		s += cu.Size
	}
	return s
}

// collectConstants gathers the distinct string literals compiled into the
// CU (from the root and all inlinees, in code order) and decides which of
// them optimization folds away. The folding decision is a deterministic
// function of the CU *composition* and the literal, so two builds fold the
// same constant differently when their inlining differs — reproducing the
// heap-snapshot divergence of Sec. 2.
func collectConstants(cu *CompilationUnit, cfg Config) {
	comp := compositionHash(cu)
	seen := make(map[string]bool)
	members := append([]*ir.Method{cu.Root}, cu.Inlined...)
	for _, m := range members {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpConstStr || seen[in.Sym] {
					continue
				}
				seen[in.Sym] = true
				folded := false
				if cfg.FoldPercent > 0 {
					h := murmur.Sum64Seed([]byte(in.Sym), comp)
					folded = int(h%100) < cfg.FoldPercent
				}
				cu.Constants = append(cu.Constants, Constant{
					Literal: in.Sym,
					Source:  m,
					Folded:  folded,
				})
			}
		}
	}
}

// compositionHash hashes the member set of a CU.
func compositionHash(cu *CompilationUnit) uint64 {
	sigs := make([]string, 0, len(cu.Members))
	for m := range cu.Members {
		sigs = append(sigs, m.Signature())
	}
	sort.Strings(sigs)
	return murmur.Sum64([]byte(strings.Join(sigs, ";")))
}

// peaCount runs a method-local partial escape analysis over every member of
// the CU and counts allocations that do not escape (and would therefore be
// scalar-replaced by Graal's PEA [51]).
func peaCount(cu *CompilationUnit) int {
	n := 0
	counted := make(map[*ir.Method]bool)
	for _, m := range append([]*ir.Method{cu.Root}, cu.Inlined...) {
		if counted[m] {
			continue
		}
		counted[m] = true
		n += nonEscapingAllocs(m)
	}
	return n
}

// nonEscapingAllocs counts OpNew results that never escape the method:
// never stored into another object/array/static, never passed to a call,
// never returned, and never copied. Writes into the fresh object's own
// fields do not count as escapes.
func nonEscapingAllocs(m *ir.Method) int {
	escaped := make(map[int]bool) // register -> escapes
	allocs := make(map[int]bool)  // register -> fresh allocation
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpNew:
				// A later redefinition of a register invalidates tracking;
				// treat each New register as one allocation site.
				allocs[in.A] = true
			case ir.OpPutField:
				// obj.f = val: the value escapes into obj.
				escaped[in.B] = true
			case ir.OpArraySet:
				escaped[in.C] = true
			case ir.OpPutStatic:
				escaped[in.A] = true
			case ir.OpMove:
				escaped[in.B] = true
			case ir.OpCall, ir.OpCallVirt, ir.OpIntrinsic:
				for _, a := range in.Args {
					escaped[a] = true
				}
			}
		}
		if b.Term.Op == ir.TermReturn && b.Term.Ret >= 0 {
			escaped[b.Term.Ret] = true
		}
	}
	n := 0
	for r := range allocs {
		if !escaped[r] {
			n++
		}
	}
	return n
}
