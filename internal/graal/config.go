// Package graal is the simulated optimizing compiler of the toolchain.
//
// It mirrors the aspects of the Graal compiler that the paper's methodology
// depends on (Sec. 2): methods are grouped into compilation units (CUs) by a
// size-driven inliner, so a CU consists of a root method plus everything
// inlined into it; a conservative reachability analysis (with virtual-call
// saturation) decides which code enters the binary; and instrumentation code
// inflates method sizes, which makes the inliner behave differently between
// the instrumented and the optimized compilation of the same program — the
// source of CU and heap-snapshot divergence that the paper's object-matching
// strategies must overcome.
package graal

// Instrumentation selects the profiling probes compiled into an image
// (Sec. 6.1). Each kind inflates code size differently, perturbing inlining.
type Instrumentation uint8

const (
	// InstrNone builds a regular (or optimized) image without probes.
	InstrNone Instrumentation = iota
	// InstrCU traces compilation-unit entry events (cu ordering, Sec. 4.1).
	InstrCU
	// InstrMethod traces every method entry (method ordering, Sec. 4.2).
	InstrMethod
	// InstrHeap traces executed paths and the IDs of all accessed heap
	// objects (heap ordering, Sec. 5), via path profiling.
	InstrHeap
)

func (i Instrumentation) String() string {
	switch i {
	case InstrNone:
		return "none"
	case InstrCU:
		return "cu"
	case InstrMethod:
		return "method"
	case InstrHeap:
		return "heap"
	default:
		return "instr(?)"
	}
}

// Config holds the compiler tuning knobs.
type Config struct {
	// InlineSmallSize is the maximum effective callee size the inliner
	// considers for inlining.
	InlineSmallSize int
	// CUBudget caps the total estimated size of a compilation unit.
	CUBudget int
	// MaxInlineDepth caps the inlining recursion depth.
	MaxInlineDepth int
	// SaturationThreshold is the virtual-call target-set size beyond which
	// the analysis saturates the call site, treating it as reaching all
	// possible overriders (Sec. 2, [58]).
	SaturationThreshold int

	// PGOBonus is added to InlineSmallSize in profile-guided (optimized)
	// builds: PGO lets Graal inline hot callees more aggressively, which is
	// one reason optimized and instrumented builds diverge (Sec. 2).
	PGOBonus int

	// Probe size inflation in bytes (Sec. 6.1): instrumentation is emitted
	// at the IR level and enlarges compiled code, perturbing inlining.

	// ProbeCUEntry is added once per CU root in InstrCU builds.
	ProbeCUEntry int
	// ProbeMethodEntry is added to every method in InstrMethod builds.
	ProbeMethodEntry int
	// ProbePerBlock is added per basic block in InstrHeap builds (path
	// profiling edge code).
	ProbePerBlock int
	// ProbePerAccess is added per field/array access in InstrHeap builds
	// (object-ID recording).
	ProbePerAccess int

	// FoldPercent is the percentage of CU code constants that optimization
	// (inlining-enabled constant folding / partial escape analysis) removes
	// from the image heap. Which constants fold depends on the CU
	// composition, so the folded set differs between builds whose inlining
	// differs — one of the heap-snapshot divergence sources of Sec. 2.
	FoldPercent int
}

// DefaultConfig returns the tuning used by the evaluation.
func DefaultConfig() Config {
	return Config{
		InlineSmallSize:     96,
		CUBudget:            1600,
		MaxInlineDepth:      6,
		SaturationThreshold: 4,
		PGOBonus:            24,
		ProbeCUEntry:        24,
		ProbeMethodEntry:    22,
		ProbePerBlock:       10,
		ProbePerAccess:      16,
		FoldPercent:         10,
	}
}
