package workloads

import (
	"fmt"
	"strings"

	"nimage/internal/ir"
)

// buildRichards: operating-system task scheduler with polymorphic task
// kinds (abridged AWFY Richards).
func buildRichards() *ir.Program {
	b := newAWFY("Richards")

	// Task hierarchy: each kind advances its state differently.
	task := b.Class("Task")
	task.Field("state", ir.Int())
	task.Field("ticks", ir.Int())
	tm := task.Method("run", 0, ir.Int())
	te := tm.Entry()
	te.Ret(te.ConstInt(0))

	kinds := []struct {
		name string
		mul  int64
		add  int64
	}{
		{"IdleTask", 2, 1},
		{"WorkerTask", 3, 7},
		{"DeviceTask", 5, 3},
		{"HandlerTask", 7, 11},
	}
	for _, k := range kinds {
		c := b.Class(k.name).Extends("Task")
		m := c.Method("run", 0, ir.Int())
		e := m.Entry()
		st := e.GetField(m.This(), "Task", "state")
		mul := e.ConstInt(k.mul)
		add := e.ConstInt(k.add)
		mask := e.ConstInt(0xffff)
		ns := e.Arith(ir.And, e.Arith(ir.Add, e.Arith(ir.Mul, st, mul), add), mask)
		e.PutField(m.This(), "Task", "state", ns)
		tk := e.GetField(m.This(), "Task", "ticks")
		one := e.ConstInt(1)
		e.PutField(m.This(), "Task", "ticks", e.Arith(ir.Add, tk, one))
		two := e.ConstInt(2)
		e.Ret(e.Arith(ir.Rem, ns, two))
	}

	sched := b.Class("Scheduler")
	sched.Field("tasks", ir.Ref(ClsArrayList))
	sched.Field("queueCount", ir.Int())

	mk := sched.StaticMethod("make", 0, ir.Ref("Scheduler"))
	me := mk.Entry()
	s := me.New("Scheduler")
	cap16 := me.ConstInt(16)
	lst := me.Call(ClsArrayList, "make", cap16)
	me.PutField(s, "Scheduler", "tasks", lst)
	// Populate with a fixed task mix.
	for i, k := range []string{"IdleTask", "WorkerTask", "DeviceTask", "HandlerTask", "WorkerTask", "DeviceTask"} {
		o := me.New(k)
		st := me.ConstInt(int64(i*17 + 3))
		me.PutField(o, "Task", "state", st)
		me.CallVoid(ClsArrayList, "add", lst, o)
	}
	me.Ret(s)

	// schedule(rounds): repeatedly run every task, counting "holds".
	sc := sched.Method("schedule", 1, ir.Int())
	se := sc.Entry()
	lst2 := se.GetField(sc.This(), "Scheduler", "tasks")
	n := se.Call(ClsArrayList, "size", lst2)
	holds := se.ConstInt(0)
	zero := se.ConstInt(0)
	outer := se.For(zero, sc.Param(0), 1, func(ob *ir.BlockBuilder, r ir.Reg) *ir.BlockBuilder {
		inner := ob.For(zero, n, 1, func(ib *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
			t := ib.Call(ClsArrayList, "get", lst2, i)
			h := ib.CallVirt("Task", "run", t)
			ib.ArithTo(holds, ir.Add, holds, h)
			return ib
		})
		return inner
	})
	outer.Ret(holds)

	c := b.Class("RichardsBench")
	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	total := e.ConstInt(0)
	z := e.ConstInt(0)
	done := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		s2 := body.Call("Scheduler", "make")
		k60 := body.ConstInt(60)
		h := body.Call("Scheduler", "schedule", s2, k60)
		body.ArithTo(total, ir.Add, total, h)
		return body
	})
	done.Ret(total)
	finishMain(b, "RichardsBench")
	return b.MustBuild()
}

// buildDeltaBlue: one-way constraint solver over a chain of variables
// (abridged AWFY DeltaBlue: stay/edit/scale/equality constraints with
// strengths, planner extraction, value propagation).
func buildDeltaBlue() *ir.Program {
	b := newAWFY("DeltaBlue")

	v := b.Class("Variable")
	v.Field("value", ir.Int())
	v.Field("stay", ir.Int())

	cons := b.Class("Constraint")
	cons.Field("strength", ir.Int())
	cons.Field("input", ir.Ref("Variable"))
	cons.Field("output", ir.Ref("Variable"))
	cm := cons.Method("execute", 0, ir.Void())
	cm.Entry().RetVoid()
	sm := cons.Method("isSatisfied", 0, ir.Int())
	sme := sm.Entry()
	st := sme.GetField(sm.This(), "Constraint", "strength")
	k := sme.ConstInt(4)
	sme.Ret(sme.Cmp(ir.Lt, st, k))

	eq := b.Class("EqualityConstraint").Extends("Constraint")
	em := eq.Method("execute", 0, ir.Void())
	ee := em.Entry()
	in := ee.GetField(em.This(), "Constraint", "input")
	out := ee.GetField(em.This(), "Constraint", "output")
	val := ee.GetField(in, "Variable", "value")
	ee.PutField(out, "Variable", "value", val)
	ee.RetVoid()

	scale := b.Class("ScaleConstraint").Extends("Constraint")
	scale.Field("factor", ir.Int())
	scm := scale.Method("execute", 0, ir.Void())
	sce := scm.Entry()
	in2 := sce.GetField(scm.This(), "Constraint", "input")
	out2 := sce.GetField(scm.This(), "Constraint", "output")
	f := sce.GetField(scm.This(), "ScaleConstraint", "factor")
	val2 := sce.GetField(in2, "Variable", "value")
	sce.PutField(out2, "Variable", "value", sce.Arith(ir.Mul, val2, f))
	sce.RetVoid()

	stay := b.Class("StayConstraint").Extends("Constraint")
	stm := stay.Method("execute", 0, ir.Void())
	ste := stm.Entry()
	out3 := ste.GetField(stm.This(), "Constraint", "output")
	one := ste.ConstInt(1)
	ste.PutField(out3, "Variable", "stay", one)
	ste.RetVoid()

	c := b.Class("DeltaBlueBench")
	// chainTest(n): build a chain of equality constraints ending in a
	// scale, then propagate an edit down the chain repeatedly.
	ct := c.StaticMethod("chainTest", 1, ir.Int())
	cte := ct.Entry()
	n := ct.Param(0)
	vars := cte.NewArray(ir.Ref("Variable"), n)
	zero := cte.ConstInt(0)
	mkv := cte.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.New("Variable")
		body.PutField(o, "Variable", "value", i)
		body.ASet(vars, i, o)
		return body
	})
	one2 := mkv.ConstInt(1)
	nc := mkv.Arith(ir.Sub, n, one2)
	consArr := mkv.NewArray(ir.Ref("Constraint"), n)
	mkc := mkv.For(zero, nc, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		three := body.ConstInt(3)
		rem := body.Arith(ir.Rem, i, three)
		zeroI := body.ConstInt(0)
		isScale := body.Cmp(ir.Eq, rem, zeroI)
		co := body.IfElse(isScale,
			func(th *ir.BlockBuilder) *ir.BlockBuilder {
				o := th.New("ScaleConstraint")
				two := th.ConstInt(2)
				th.PutField(o, "ScaleConstraint", "factor", two)
				th.ASet(consArr, i, o)
				return th
			},
			func(el *ir.BlockBuilder) *ir.BlockBuilder {
				o := el.New("EqualityConstraint")
				el.ASet(consArr, i, o)
				return el
			})
		cobj := co.AGet(consArr, i)
		vi := co.AGet(vars, i)
		oneI := co.ConstInt(1)
		ip := co.Arith(ir.Add, i, oneI)
		vo := co.AGet(vars, ip)
		co.PutField(cobj, "Constraint", "input", vi)
		co.PutField(cobj, "Constraint", "output", vo)
		st2 := co.Arith(ir.Rem, i, co.ConstInt(7))
		co.PutField(cobj, "Constraint", "strength", st2)
		return co
	})
	// Propagate 10 edits through the chain.
	ten := mkc.ConstInt(10)
	prop := mkc.For(zero, ten, 1, func(pb *ir.BlockBuilder, e ir.Reg) *ir.BlockBuilder {
		v0 := pb.AGet(vars, zero)
		k17 := pb.ConstInt(17)
		nv := pb.Arith(ir.Mul, e, k17)
		pb.PutField(v0, "Variable", "value", nv)
		run := pb.For(zero, nc, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
			co := body.AGet(consArr, i)
			sat := body.CallVirt("Constraint", "isSatisfied", co)
			return body.IfThen(sat, func(th *ir.BlockBuilder) *ir.BlockBuilder {
				th.CallVirtVoid("Constraint", "execute", co)
				return th
			})
		})
		return run
	})
	last := prop.AGet(vars, nc)
	prop.Ret(prop.GetField(last, "Variable", "value"))

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	total := e.ConstInt(0)
	z := e.ConstInt(0)
	done := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		k40 := body.ConstInt(40)
		r := body.Call("DeltaBlueBench", "chainTest", k40)
		body.ArithTo(total, ir.Xor, total, r)
		return body
	})
	done.Ret(total)
	finishMain(b, "DeltaBlueBench")
	return b.MustBuild()
}

// buildHavlak: loop recognition on a synthetic control-flow graph
// (abridged AWFY Havlak: DFS numbering + back-edge detection).
func buildHavlak() *ir.Program {
	b := newAWFY("Havlak")

	node := b.Class("BasicBlock")
	node.Field("id", ir.Int())
	node.Field("edges", ir.Ref(ClsArrayList))
	node.Field("dfsNum", ir.Int())
	node.Field("visited", ir.Int())

	g := b.Class("CFGraph")
	g.Static("nodes", ir.Ref(ClsArrayList))
	g.Static("counter", ir.Int())
	g.Static("loops", ir.Int())

	// build(n): n nodes; edges i->i+1, diamond branches, and back edges
	// every 5th node.
	bg := g.StaticMethod("build", 1, ir.Void())
	be := bg.Entry()
	n := bg.Param(0)
	lst := be.Call(ClsArrayList, "make", n)
	be.PutStatic("CFGraph", "nodes", lst)
	zero := be.ConstInt(0)
	mk := be.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.New("BasicBlock")
		body.PutField(o, "BasicBlock", "id", i)
		four := body.ConstInt(4)
		el := body.Call(ClsArrayList, "make", four)
		body.PutField(o, "BasicBlock", "edges", el)
		body.CallVoid(ClsArrayList, "add", lst, o)
		return body
	})
	one := mk.ConstInt(1)
	nm1 := mk.Arith(ir.Sub, n, one)
	wire := mk.For(zero, nm1, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		cur := body.Call(ClsArrayList, "get", lst, i)
		oneI := body.ConstInt(1)
		ip := body.Arith(ir.Add, i, oneI)
		nxt := body.Call(ClsArrayList, "get", lst, ip)
		edges := body.GetField(cur, "BasicBlock", "edges")
		body.CallVoid(ClsArrayList, "add", edges, nxt)
		// Back edge every 5th node, to i-3.
		five := body.ConstInt(5)
		rem := body.Arith(ir.Rem, i, five)
		four := body.ConstInt(4)
		isBack := body.Cmp(ir.Eq, rem, four)
		three := body.ConstInt(3)
		big := body.Cmp(ir.Ge, i, three)
		both := body.Arith(ir.And, isBack, big)
		return body.IfThen(both, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			tgt := th.Arith(ir.Sub, i, three)
			bn := th.Call(ClsArrayList, "get", lst, tgt)
			th.CallVoid(ClsArrayList, "add", edges, bn)
			return th
		})
	})
	wire.RetVoid()

	// dfs(node): recursive numbering; counts back edges as loops.
	df := g.StaticMethod("dfs", 1, ir.Void())
	de := df.Entry()
	cur := df.Param(0)
	seen := de.GetField(cur, "BasicBlock", "visited")
	again := df.NewBlock()
	fresh := df.NewBlock()
	de.If(seen, again, fresh)
	// Already visited: a back/cross edge; count loops when the target has
	// a smaller DFS number (retreating edge).
	lp := again.GetStatic("CFGraph", "loops")
	one3 := again.ConstInt(1)
	again.PutStatic("CFGraph", "loops", again.Arith(ir.Add, lp, one3))
	again.RetVoid()
	one2 := fresh.ConstInt(1)
	fresh.PutField(cur, "BasicBlock", "visited", one2)
	ctr := fresh.GetStatic("CFGraph", "counter")
	fresh.PutField(cur, "BasicBlock", "dfsNum", ctr)
	fresh.PutStatic("CFGraph", "counter", fresh.Arith(ir.Add, ctr, one2))
	edges := fresh.GetField(cur, "BasicBlock", "edges")
	ne := fresh.Call(ClsArrayList, "size", edges)
	zero2 := fresh.ConstInt(0)
	loop := fresh.For(zero2, ne, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		tgt := body.Call(ClsArrayList, "get", edges, i)
		body.CallVoid("CFGraph", "dfs", tgt)
		return body
	})
	loop.RetVoid()

	c := b.Class("HavlakBench")
	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	z := e.ConstInt(0)
	total := e.ConstInt(0)
	done := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, it ir.Reg) *ir.BlockBuilder {
		k120 := body.ConstInt(120)
		body.CallVoid("CFGraph", "build", k120)
		body.PutStatic("CFGraph", "counter", z)
		body.PutStatic("CFGraph", "loops", z)
		nodes := body.GetStatic("CFGraph", "nodes")
		root := body.Call(ClsArrayList, "get", nodes, z)
		body.CallVoid("CFGraph", "dfs", root)
		lps := body.GetStatic("CFGraph", "loops")
		body.ArithTo(total, ir.Add, total, lps)
		return body
	})
	done.Ret(total)
	finishMain(b, "HavlakBench")
	return b.MustBuild()
}

// jsonDocument is the literal document the Json benchmark parses.
func jsonDocument() string {
	var sb strings.Builder
	sb.WriteString("{")
	for i := 0; i < 24; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		switch i % 3 {
		case 0:
			fmt.Fprintf(&sb, "\"key%02d\":%d", i, i*37)
		case 1:
			fmt.Fprintf(&sb, "\"key%02d\":\"value-%02d\"", i, i)
		default:
			fmt.Fprintf(&sb, "\"key%02d\":[%d,%d,%d,%d]", i, i, i+1, i+2, i+3)
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// buildJson: recursive-descent parser over a JSON document held in a
// string constant (abridged AWFY Json).
func buildJson() *ir.Program {
	b := newAWFY("Json")

	p := b.Class("JsonParser")
	p.Static("doc", ir.String())
	p.Static("pos", ir.Int())
	p.Static("nodes", ir.Int())

	// ch(): current byte, or 0 at end.
	chm := p.StaticMethod("ch", 0, ir.Int())
	che := chm.Entry()
	doc := che.GetStatic("JsonParser", "doc")
	pos := che.GetStatic("JsonParser", "pos")
	ln := che.Intrinsic(ir.IntrinsicStrLen, doc)
	inRange := che.Cmp(ir.Lt, pos, ln)
	ok := chm.NewBlock()
	end := chm.NewBlock()
	che.If(inRange, ok, end)
	ok.Ret(ok.Intrinsic(ir.IntrinsicStrChar, doc, pos))
	end.Ret(end.ConstInt(0))

	adv := p.StaticMethod("advance", 0, ir.Void())
	ade := adv.Entry()
	pos2 := ade.GetStatic("JsonParser", "pos")
	one := ade.ConstInt(1)
	ade.PutStatic("JsonParser", "pos", ade.Arith(ir.Add, pos2, one))
	ade.RetVoid()

	bump := p.StaticMethod("countNode", 0, ir.Void())
	bue := bump.Entry()
	nn := bue.GetStatic("JsonParser", "nodes")
	one2 := bue.ConstInt(1)
	bue.PutStatic("JsonParser", "nodes", bue.Arith(ir.Add, nn, one2))
	bue.RetVoid()

	// parseString: consume '"' ... '"'.
	ps := p.StaticMethod("parseString", 0, ir.Void())
	pse := ps.Entry()
	pse.CallVoid("JsonParser", "advance") // opening quote
	q := pse.ConstInt('"')
	loop := pse.While(
		func(h *ir.BlockBuilder) ir.Reg {
			c := h.Call("JsonParser", "ch")
			return h.Cmp(ir.Ne, c, q)
		},
		func(body *ir.BlockBuilder) *ir.BlockBuilder {
			body.CallVoid("JsonParser", "advance")
			return body
		})
	loop.CallVoid("JsonParser", "advance") // closing quote
	loop.CallVoid("JsonParser", "countNode")
	loop.RetVoid()

	// parseNumber: consume digits.
	pn := p.StaticMethod("parseNumber", 0, ir.Void())
	pne := pn.Entry()
	d0 := pne.ConstInt('0')
	d9 := pne.ConstInt('9')
	loop2 := pne.While(
		func(h *ir.BlockBuilder) ir.Reg {
			c := h.Call("JsonParser", "ch")
			ge := h.Cmp(ir.Ge, c, d0)
			le := h.Cmp(ir.Le, c, d9)
			return h.Arith(ir.And, ge, le)
		},
		func(body *ir.BlockBuilder) *ir.BlockBuilder {
			body.CallVoid("JsonParser", "advance")
			return body
		})
	loop2.CallVoid("JsonParser", "countNode")
	loop2.RetVoid()

	// parseValue: dispatch on the current character.
	pv := p.StaticMethod("parseValue", 0, ir.Void())
	pve := pv.Entry()
	c0 := pve.Call("JsonParser", "ch")
	q2 := pve.ConstInt('"')
	isStr := pve.Cmp(ir.Eq, c0, q2)
	strB := pv.NewBlock()
	rest := pv.NewBlock()
	pve.If(isStr, strB, rest)
	strB.CallVoid("JsonParser", "parseString")
	strB.RetVoid()
	lb := rest.ConstInt('[')
	isArr := rest.Cmp(ir.Eq, c0, lb)
	arrB := pv.NewBlock()
	rest2 := pv.NewBlock()
	rest.If(isArr, arrB, rest2)
	arrB.CallVoid("JsonParser", "parseArray")
	arrB.RetVoid()
	ob := rest2.ConstInt('{')
	isObj := rest2.Cmp(ir.Eq, c0, ob)
	objB := pv.NewBlock()
	numB := pv.NewBlock()
	rest2.If(isObj, objB, numB)
	objB.CallVoid("JsonParser", "parseObject")
	objB.RetVoid()
	numB.CallVoid("JsonParser", "parseNumber")
	numB.RetVoid()

	// parseArray: '[' value (',' value)* ']'.
	pa := p.StaticMethod("parseArray", 0, ir.Void())
	pae := pa.Entry()
	pae.CallVoid("JsonParser", "advance") // '['
	rbr := pae.ConstInt(']')
	comma := pae.ConstInt(',')
	loop3 := pae.While(
		func(h *ir.BlockBuilder) ir.Reg {
			c := h.Call("JsonParser", "ch")
			return h.Cmp(ir.Ne, c, rbr)
		},
		func(body *ir.BlockBuilder) *ir.BlockBuilder {
			c := body.Call("JsonParser", "ch")
			isComma := body.Cmp(ir.Eq, c, comma)
			return body.IfElse(isComma,
				func(th *ir.BlockBuilder) *ir.BlockBuilder {
					th.CallVoid("JsonParser", "advance")
					return th
				},
				func(el *ir.BlockBuilder) *ir.BlockBuilder {
					el.CallVoid("JsonParser", "parseValue")
					return el
				})
		})
	loop3.CallVoid("JsonParser", "advance") // ']'
	loop3.CallVoid("JsonParser", "countNode")
	loop3.RetVoid()

	// parseObject: '{' "key" ':' value (',' ...)* '}'.
	po := p.StaticMethod("parseObject", 0, ir.Void())
	poe := po.Entry()
	poe.CallVoid("JsonParser", "advance") // '{'
	rcb := poe.ConstInt('}')
	colon := poe.ConstInt(':')
	comma2 := poe.ConstInt(',')
	loop4 := poe.While(
		func(h *ir.BlockBuilder) ir.Reg {
			c := h.Call("JsonParser", "ch")
			return h.Cmp(ir.Ne, c, rcb)
		},
		func(body *ir.BlockBuilder) *ir.BlockBuilder {
			c := body.Call("JsonParser", "ch")
			isSep := body.Cmp(ir.Eq, c, colon)
			isComma := body.Cmp(ir.Eq, c, comma2)
			skip := body.Arith(ir.Or, isSep, isComma)
			return body.IfElse(skip,
				func(th *ir.BlockBuilder) *ir.BlockBuilder {
					th.CallVoid("JsonParser", "advance")
					return th
				},
				func(el *ir.BlockBuilder) *ir.BlockBuilder {
					el.CallVoid("JsonParser", "parseValue")
					return el
				})
		})
	loop4.CallVoid("JsonParser", "advance") // '}'
	loop4.CallVoid("JsonParser", "countNode")
	loop4.RetVoid()

	c := b.Class("JsonBench")
	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	z := e.ConstInt(0)
	total := e.ConstInt(0)
	doc2 := e.Str(jsonDocument())
	done := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		body.PutStatic("JsonParser", "doc", doc2)
		body.PutStatic("JsonParser", "pos", z)
		body.PutStatic("JsonParser", "nodes", z)
		body.CallVoid("JsonParser", "parseValue")
		nn := body.GetStatic("JsonParser", "nodes")
		body.ArithTo(total, ir.Add, total, nn)
		return body
	})
	done.Ret(total)
	finishMain(b, "JsonBench")
	return b.MustBuild()
}

// buildCD: collision detection over aircraft trajectories (abridged AWFY
// CD: per-frame motion update plus O(n²) proximity test).
func buildCD() *ir.Program {
	b := newAWFY("CD")

	ac := b.Class("Aircraft")
	for _, f := range []string{"x", "y", "vx", "vy"} {
		ac.Field(f, ir.Float())
	}

	c := b.Class("CDBench")
	c.Static("fleet", ir.Array(ir.Ref("Aircraft")))

	setup := c.StaticMethod("setup", 1, ir.Void())
	se := setup.Entry()
	n := setup.Param(0)
	arr := se.NewArray(ir.Ref("Aircraft"), n)
	zero := se.ConstInt(0)
	mk := se.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.New("Aircraft")
		fi := body.IntToFloat(i)
		k3 := body.ConstFloat(3.7)
		k11 := body.ConstFloat(11.3)
		body.PutField(o, "Aircraft", "x", body.FArith(ir.Mul, fi, k3))
		body.PutField(o, "Aircraft", "y", body.FArith(ir.Mul, fi, k11))
		s := body.Intrinsic(ir.IntrinsicSin, fi)
		cc := body.Intrinsic(ir.IntrinsicCos, fi)
		body.PutField(o, "Aircraft", "vx", s)
		body.PutField(o, "Aircraft", "vy", cc)
		body.ASet(arr, i, o)
		return body
	})
	mk.PutStatic("CDBench", "fleet", arr)
	mk.RetVoid()

	// frame(): advance everyone, then count close pairs.
	fr := c.StaticMethod("frame", 0, ir.Int())
	fe := fr.Entry()
	fleet := fe.GetStatic("CDBench", "fleet")
	n2 := fe.ALen(fleet)
	zero2 := fe.ConstInt(0)
	mv := fe.For(zero2, n2, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.AGet(fleet, i)
		for _, ax := range [][2]string{{"x", "vx"}, {"y", "vy"}} {
			pv := body.GetField(o, "Aircraft", ax[0])
			vv := body.GetField(o, "Aircraft", ax[1])
			body.PutField(o, "Aircraft", ax[0], body.FArith(ir.Add, pv, vv))
		}
		return body
	})
	coll := mv.ConstInt(0)
	thresh := mv.ConstFloat(16.0)
	one := mv.ConstInt(1)
	outer := mv.For(zero2, n2, 1, func(ob *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		a := ob.AGet(fleet, i)
		j0 := ob.Arith(ir.Add, i, one)
		inner := ob.For(j0, n2, 1, func(ib *ir.BlockBuilder, j ir.Reg) *ir.BlockBuilder {
			bb := ib.AGet(fleet, j)
			dx := ib.FArith(ir.Sub, ib.GetField(a, "Aircraft", "x"), ib.GetField(bb, "Aircraft", "x"))
			dy := ib.FArith(ir.Sub, ib.GetField(a, "Aircraft", "y"), ib.GetField(bb, "Aircraft", "y"))
			d2 := ib.FArith(ir.Add, ib.FArith(ir.Mul, dx, dx), ib.FArith(ir.Mul, dy, dy))
			close := ib.Cmp(ir.Lt, d2, thresh)
			return ib.IfThen(close, func(th *ir.BlockBuilder) *ir.BlockBuilder {
				oneI := th.ConstInt(1)
				th.ArithTo(coll, ir.Add, coll, oneI)
				return th
			})
		})
		return inner
	})
	outer.Ret(coll)

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	k40 := e.ConstInt(40)
	e.CallVoid("CDBench", "setup", k40)
	z := e.ConstInt(0)
	total := e.ConstInt(0)
	done := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		cc := body.Call("CDBench", "frame")
		body.ArithTo(total, ir.Add, total, cc)
		return body
	})
	done.Ret(total)
	finishMain(b, "CDBench")
	return b.MustBuild()
}
