package workloads

import (
	"fmt"

	"nimage/internal/ir"
)

// serviceSpec sizes one synthetic microservice framework. The three specs
// below model the startup profiles of micronaut, quarkus, and spring
// helloworld applications: a dependency-injection container instantiates
// beans on several startup threads, a router registers HTTP routes, and the
// first request is answered (the respond intrinsic); everything else on the
// classpath is cold.
type serviceSpec struct {
	name    string
	fw      string // framework package prefix
	beans   int    // beans instantiated during startup
	beanOps int    // arithmetic work per bean initializer
	routes  int    // routes registered before responding
	workers int    // startup threads
	// beanData objects are created per bean *clinit* at image build time
	// (bean definitions, annotation metadata).
	beanData int
	pkgs     []pkgSpec
	res      int
	resBytes int
}

func micronautSpec() serviceSpec {
	return serviceSpec{
		name: "micronaut", fw: "io.micronaut",
		beans: 130, beanOps: 26, routes: 12, workers: 4, beanData: 5,
		pkgs: []pkgSpec{
			{name: "io.micronaut.aop", classes: 24, methods: 7, body: 24, data: 12, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "io.micronaut.http", classes: 26, methods: 7, body: 26, data: 14, hotPeriod: 7, reads: 2, saltShare: 85},
			{name: "io.micronaut.inject", classes: 24, methods: 6, body: 22, data: 16, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "io.micronaut.json", classes: 20, methods: 7, body: 24, data: 10, saltShare: 85},
			{name: "io.netty.channel", classes: 26, methods: 6, body: 28, data: 10, hotPeriod: 9, reads: 2, saltShare: 85},
			{name: "java.io", classes: 22, methods: 7, body: 22, data: 18, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "java.util.concurrent", classes: 22, methods: 6, body: 20, data: 10, saltShare: 85},
		},
		res: 6, resBytes: 8 * 1024,
	}
}

func quarkusSpec() serviceSpec {
	return serviceSpec{
		name: "quarkus", fw: "io.quarkus",
		// Quarkus moves more initialization to build time: fewer runtime
		// beans, more build-time bean data in the snapshot.
		beans: 80, beanOps: 22, routes: 10, workers: 3, beanData: 14,
		pkgs: []pkgSpec{
			{name: "io.quarkus.arc", classes: 24, methods: 7, body: 24, data: 18, hotPeriod: 9, reads: 2, saltShare: 85},
			{name: "io.quarkus.vertx", classes: 26, methods: 6, body: 26, data: 14, hotPeriod: 10, reads: 2, saltShare: 85},
			{name: "io.vertx.core", classes: 26, methods: 7, body: 26, data: 12, hotPeriod: 9, reads: 2, saltShare: 85},
			{name: "io.quarkus.config", classes: 20, methods: 6, body: 22, data: 20, hotPeriod: 8, reads: 3, saltShare: 85},
			{name: "java.io", classes: 22, methods: 7, body: 22, data: 18, saltShare: 85},
			{name: "java.util.concurrent", classes: 22, methods: 6, body: 20, data: 10, saltShare: 85},
		},
		res: 8, resBytes: 10 * 1024,
	}
}

func springSpec() serviceSpec {
	return serviceSpec{
		name: "spring", fw: "org.springframework",
		// Spring: most classes, most runtime initialization.
		beans: 200, beanOps: 30, routes: 16, workers: 4, beanData: 6,
		pkgs: []pkgSpec{
			{name: "org.springframework.beans", classes: 28, methods: 7, body: 26, data: 14, hotPeriod: 7, reads: 2, saltShare: 85},
			{name: "org.springframework.context", classes: 28, methods: 7, body: 24, data: 14, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "org.springframework.web", classes: 26, methods: 7, body: 26, data: 12, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "org.springframework.core", classes: 24, methods: 6, body: 22, data: 16, hotPeriod: 7, reads: 2, saltShare: 85},
			{name: "org.apache.tomcat", classes: 26, methods: 6, body: 28, data: 10, hotPeriod: 9, reads: 2, saltShare: 85},
			{name: "java.io", classes: 22, methods: 7, body: 22, data: 18, saltShare: 85},
			{name: "java.util.concurrent", classes: 22, methods: 6, body: 20, data: 10, saltShare: 85},
			{name: "jakarta.servlet", classes: 20, methods: 6, body: 22, data: 12, saltShare: 85},
		},
		res: 10, resBytes: 12 * 1024,
	}
}

// buildService constructs the helloworld program for one framework spec.
func buildService(sp serviceSpec) *ir.Program {
	b := ir.NewBuilder(sp.name)
	addCoreLibrary(b)
	addStartup(b, startupScale{
		packages:      sp.pkgs,
		resources:     sp.res,
		resourceBytes: sp.resBytes,
	})

	fw := sp.fw

	// The framework's configuration cache holds a build-dependent *number*
	// of entries (conditional config expansion, generated adapters): the
	// total object count of the image heap differs across builds, which is
	// the kind of divergence that defeats encounter-order identities on
	// the microservices (Sec. 7.2: incremental id reaches only ~1.14x, and
	// 0.99x on quarkus).
	cfgCls := fw + ".ConfigCache"
	cc0 := b.Class(cfgCls)
	cc0.Static("entries", ir.Ref(ClsArrayList))
	cccl := cc0.Clinit()
	cce := cccl.Entry()
	cap48 := cce.ConstInt(48)
	lst0 := cce.Call(ClsArrayList, "make", cap48)
	saltN := cce.Intrinsic(ir.IntrinsicBuildSalt)
	twelve := cce.ConstInt(12)
	extra := cce.Arith(ir.Rem, cce.Arith(ir.And, saltN, cce.ConstInt(0xff)), twelve)
	forty := cce.ConstInt(40)
	total := cce.Arith(ir.Add, forty, extra)
	zeroC := cce.ConstInt(0)
	pfx := cce.Str(fw + ".config.entry#")
	ccDone := cce.For(zeroC, total, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		sfx := body.Intrinsic(ir.IntrinsicItoa, i)
		v := body.Intrinsic(ir.IntrinsicConcat, pfx, sfx)
		body.CallVoid(ClsArrayList, "add", lst0, v)
		return body
	})
	ccDone.PutStatic(cfgCls, "entries", lst0)
	ccDone.RetVoid()
	// Beans live scattered across the framework packages (as real beans
	// do), so the executed startup code spreads over the alphabetical
	// .text layout — the scattering the cu strategy compacts (Fig. 6).
	clsBean := func(i int) string {
		pkg := sp.pkgs[i%len(sp.pkgs)].name
		return fmt.Sprintf("%s.RuntimeBean%03d", pkg, i)
	}
	clsContainer := fw + ".Container"
	clsRouter := fw + ".Router"
	clsServer := fw + ".Server"

	// Bean classes: a clinit creating bean-definition metadata (image
	// heap), and a setup method doing initialization work at startup.
	for i := 0; i < sp.beans; i++ {
		c := b.Class(clsBean(i))
		c.Field("state", ir.Int())
		c.Static("definition", ir.Array(refObj()))
		c.Static("definitionAlt", ir.Array(refObj()))

		cl := c.Clinit()
		e := cl.Entry()
		n := e.ConstInt(int64(sp.beanData))
		arr := e.NewArray(refObj(), n)
		zero := e.ConstInt(0)
		name := e.Str(clsBean(i) + "$Definition")
		// Frameworks capture build-dependent values in their bean metadata
		// (generated-class hashes, config timestamps): every definition
		// string embeds a build-salted suffix, which is what defeats
		// content-based object identities on the microservices (Sec. 7.2:
		// structural hash achieves only 1.03x there).
		salt := e.Intrinsic(ir.IntrinsicBuildSalt)
		mask := e.ConstInt(0xffff)
		salted := e.Arith(ir.And, salt, mask)
		suffix := e.Intrinsic(ir.IntrinsicItoa, salted)
		exit := e.For(zero, n, 1, func(body *ir.BlockBuilder, k ir.Reg) *ir.BlockBuilder {
			s := body.Intrinsic(ir.IntrinsicItoa, k)
			v := body.Intrinsic(ir.IntrinsicConcat, name, s)
			v2 := body.Intrinsic(ir.IntrinsicConcat, v, suffix)
			body.ASet(arr, k, v2)
			return body
		})
		salt2 := exit.Intrinsic(ir.IntrinsicBuildSalt)
		k3 := exit.ConstInt(3)
		altC := exit.Cmp(ir.Eq, exit.Arith(ir.And, salt2, k3), exit.ConstInt(0))
		cn := clsBean(i)
		fin := exit.IfElse(altC,
			func(th *ir.BlockBuilder) *ir.BlockBuilder {
				th.PutStatic(cn, "definitionAlt", arr)
				return th
			},
			func(el *ir.BlockBuilder) *ir.BlockBuilder {
				el.PutStatic(cn, "definition", arr)
				return el
			})
		fin.RetVoid()

		// Small accessor methods: the inliner absorbs them into setup, so
		// their own CUs never execute — but method-entry traces still list
		// them, and the method strategy wastes hot-region space on their
		// CUs (the Sec. 4 ambiguity; one reason method ordering trails cu
		// ordering on the microservices, Fig. 3).
		for g := 0; g < 3; g++ {
			gm := c.StaticMethod(fmt.Sprintf("attr%d", g), 1, ir.Int())
			ge := gm.Entry()
			gacc := ge.Move(gm.Param(0))
			for k := 0; k < 5; k++ {
				kc := ge.ConstInt(int64(i*7 + g*3 + k))
				ge.ArithTo(gacc, ir.Add, gacc, kc)
			}
			ge.Ret(gacc)
		}

		m := c.StaticMethod("setup", 1, ir.Int())
		me := m.Entry()
		acc := me.Move(m.Param(0))
		for g := 0; g < 3; g++ {
			r := me.Call(clsBean(i), fmt.Sprintf("attr%d", g), acc)
			me.MoveTo(acc, r)
		}
		for k := 0; k < sp.beanOps; k++ {
			kc := me.ConstInt(int64(i*13 + k))
			op := ir.Add
			if k%4 == 1 {
				op = ir.Xor
			} else if k%4 == 3 {
				op = ir.Mul
			}
			me.ArithTo(acc, op, acc, kc)
		}
		// Read this bean's definition (startup heap accesses that touch
		// the definition array and its first string).
		defA := me.GetStatic(clsBean(i), "definition")
		defB := me.GetStatic(clsBean(i), "definitionAlt")
		nl := me.Null()
		useAlt := me.Cmp(ir.Eq, defA, nl)
		def := me.NewReg()
		me2 := me.IfElse(useAlt,
			func(th *ir.BlockBuilder) *ir.BlockBuilder {
				th.MoveTo(def, defB)
				return th
			},
			func(el *ir.BlockBuilder) *ir.BlockBuilder {
				el.MoveTo(def, defA)
				return el
			})
		z := me2.ConstInt(0)
		s0 := me2.AGet(def, z)
		ln := me2.Intrinsic(ir.IntrinsicStrLen, s0)
		me2.ArithTo(acc, ir.Add, acc, ln)
		me2.Ret(acc)
	}

	// Worker groups: each startup thread initializes one partition of the
	// beans in a generated straight-line initializer.
	per := (sp.beans + sp.workers - 1) / sp.workers
	for w := 0; w < sp.workers; w++ {
		c := b.Class(fmt.Sprintf("%s.BeanGroup%d", fw, w))
		m := c.StaticMethod("initAll", 1, ir.Int())
		e := m.Entry()
		acc := e.Move(m.Param(0))
		for i := w * per; i < (w+1)*per && i < sp.beans; i++ {
			r := e.Call(clsBean(i), "setup", acc)
			e.MoveTo(acc, r)
		}
		e.Ret(acc)
	}

	// Container: registry plus the worker entry point.
	cont := b.Class(clsContainer)
	cont.Static("registry", ir.Ref(ClsHashMap))
	cont.Static("done", ir.Array(ir.Int()))

	ccl := cont.Clinit()
	ce := ccl.Entry()
	cap64 := ce.ConstInt(64)
	reg := ce.Call(ClsHashMap, "make", cap64)
	ce.PutStatic(clsContainer, "registry", reg)
	nw := ce.ConstInt(int64(sp.workers))
	flags := ce.NewArray(ir.Int(), nw)
	ce.PutStatic(clsContainer, "done", flags)
	ce.RetVoid()

	wk := cont.StaticMethod("worker", 1, ir.Void())
	we := wk.Entry()
	slot := wk.Param(0)
	// Dispatch to this worker's bean group.
	cur := we
	for w := 0; w < sp.workers; w++ {
		wc := cur.ConstInt(int64(w))
		is := cur.Cmp(ir.Eq, slot, wc)
		cur = cur.IfThen(is, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			one := th.ConstInt(1)
			th.Call(fmt.Sprintf("%s.BeanGroup%d", fw, w), "initAll", one)
			return th
		})
	}
	fl := cur.GetStatic(clsContainer, "done")
	one := cur.ConstInt(1)
	cur.ASet(fl, slot, one)
	cur.RetVoid()

	// awaitWorkers(): deterministic busy-wait with yields.
	aw := cont.StaticMethod("awaitWorkers", 0, ir.Void())
	ae := aw.Entry()
	fl2 := ae.GetStatic(clsContainer, "done")
	nw2 := ae.ALen(fl2)
	zero := ae.ConstInt(0)
	loop := aw.NewBlock()
	check := aw.NewBlock()
	doneB := aw.NewBlock()
	ae.Goto(loop)
	cnt := loop.ConstInt(0)
	sum := loop.For(zero, nw2, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		v := body.AGet(fl2, i)
		body.ArithTo(cnt, ir.Add, cnt, v)
		return body
	})
	all := sum.Cmp(ir.Ge, cnt, nw2)
	sum.If(all, doneB, check)
	check.IntrinsicVoid(ir.IntrinsicYield)
	check.Goto(loop)
	doneB.RetVoid()

	// Router: registers route table at startup.
	rt := b.Class(clsRouter)
	rt.Static("routes", ir.Ref(ClsHashMap))
	rm := rt.StaticMethod("register", 0, ir.Void())
	re := rm.Entry()
	cap32 := re.ConstInt(32)
	table := re.Call(ClsHashMap, "make", cap32)
	hello := re.Str("helloworld")
	for i := 0; i < sp.routes; i++ {
		path := re.Str(fmt.Sprintf("/api/v1/route-%02d", i))
		pi := re.Intrinsic(ir.IntrinsicIntern, path)
		re.CallVoid(ClsHashMap, "put", table, pi, hello)
	}
	re.PutStatic(clsRouter, "routes", table)
	re.RetVoid()

	// handle(path): the request handler that produces the first response.
	hm := rt.StaticMethod("handle", 1, ir.Void())
	he := hm.Entry()
	table2 := he.GetStatic(clsRouter, "routes")
	body := he.Call(ClsHashMap, "get", table2, hm.Param(0))
	he.IntrinsicVoid(ir.IntrinsicPrint, body)
	he.IntrinsicVoid(ir.IntrinsicRespond)
	he.RetVoid()

	// Server.main: runtime init, spawn workers, await, register routes,
	// serve the first request.
	srv := b.Class(clsServer)
	mm := srv.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	emitRuntimeInit(e)
	cfgLst := e.GetStatic(cfgCls, "entries")
	zc := e.ConstInt(0)
	e.Call(ClsArrayList, "get", cfgLst, zc)
	for _, prop := range []string{"user.timezone", "file.encoding"} {
		pr := e.Str(prop)
		e.Call(ClsSystem, "getProperty", pr)
	}
	for w := 0; w < sp.workers; w++ {
		wc := e.ConstInt(int64(w))
		e.Spawn(clsContainer+".worker", wc)
	}
	e.CallVoid(clsContainer, "awaitWorkers")
	e.CallVoid(clsRouter, "register")
	first := e.Str("/api/v1/route-00")
	fi := e.Intrinsic(ir.IntrinsicIntern, first)
	e.CallVoid(clsRouter, "handle", fi)
	e.RetVoid()
	b.SetEntry(clsServer, "main")

	return b.MustBuild()
}
