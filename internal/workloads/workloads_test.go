package workloads

import (
	"testing"

	"nimage/internal/vm"
)

// TestAllWorkloadsBuildAndRun builds every workload program and executes
// it bare (no image) to completion or first response, checking for traps.
func TestAllWorkloadsBuildAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build()
			if p.Entry() == nil {
				t.Fatal("no entry")
			}
			m := vm.New(p)
			m.StopOnRespond = w.Service
			// Class initializers run first (bare-metal approximation of
			// the build-time init), triggered on demand.
			m.AutoClinit = true
			for _, c := range p.Classes {
				if err := m.RunClassInit(c); err != nil {
					t.Fatalf("clinit of %s: %v", c.Name, err)
				}
			}
			m.AutoClinit = false
			initSteps := m.Steps
			if err := m.RunProgram(w.Args...); err != nil {
				t.Fatalf("run: %v", err)
			}
			runSteps := m.Steps - initSteps
			t.Logf("%s: classes=%d methods=%d clinitSteps=%d runSteps=%d",
				w.Name, len(p.Classes), p.NumMethods(), initSteps, runSteps)
			if runSteps < 3_000 {
				t.Errorf("workload too small: %d steps", runSteps)
			}
			if runSteps > 3_000_000 {
				t.Errorf("workload too large: %d steps", runSteps)
			}
			if w.Service && !m.Responded {
				t.Error("service did not respond")
			}
		})
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Bounce")
	if err != nil || w.Name != "Bounce" {
		t.Fatalf("ByName: %v %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadCounts(t *testing.T) {
	if len(AWFY()) != 14 {
		t.Errorf("AWFY = %d, want 14", len(AWFY()))
	}
	if len(Microservices()) != 3 {
		t.Errorf("microservices = %d, want 3", len(Microservices()))
	}
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
}

// TestDeterministicConstruction: building the same workload twice yields
// programs with identical class/method structure.
func TestDeterministicConstruction(t *testing.T) {
	a := buildBounce()
	b := buildBounce()
	if len(a.Classes) != len(b.Classes) {
		t.Fatalf("class counts differ: %d vs %d", len(a.Classes), len(b.Classes))
	}
	for i := range a.Classes {
		if a.Classes[i].Name != b.Classes[i].Name {
			t.Fatalf("class %d: %s vs %s", i, a.Classes[i].Name, b.Classes[i].Name)
		}
		if len(a.Classes[i].Methods) != len(b.Classes[i].Methods) {
			t.Fatalf("method counts differ in %s", a.Classes[i].Name)
		}
	}
}
