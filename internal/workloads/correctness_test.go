package workloads

import (
	"testing"

	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/vm"
)

func TestBenchmarkAlgorithmsCorrect(t *testing.T) {
	cases := []struct {
		workload string
		class    string
		n        int64
		want     int64
		check    func(int64) bool
	}{
		// Towers of Hanoi: 2^10 - 1 moves per iteration.
		{workload: "Towers", class: "TowersBench", n: 3, want: 3 * 1023},
		// 8-queens always finds a solution: one per iteration.
		{workload: "Queens", class: "QueensBench", n: 5, want: 5},
		// π(3000) = 430 primes per sieve of size 3000.
		{workload: "Sieve", class: "SieveBench", n: 2, want: 2 * 430},
		// Permute over 6 elements: 1957 recursive invocations per run
		// (count(n) = 1 + n*count(n-1), count(0)=1).
		{workload: "Permute", class: "PermuteBench", n: 1, want: 1957},
		// Richards/DeltaBlue/Json/Havlak/Bounce/Storage/List/CD: exact
		// values are implementation-defined but must be deterministic and
		// positive; pinned below after first computation.
		{workload: "Json", class: "JsonBench", n: 2, check: func(v int64) bool { return v > 0 && v%2 == 0 }},
		{workload: "Storage", class: "StorageBench", n: 1, check: func(v int64) bool { return v > 100 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload, func(t *testing.T) {
			w, err := ByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			p := w.Build()
			m := vm.New(p)
			m.AutoClinit = true
			for _, c := range p.Classes {
				if err := m.RunClassInit(c); err != nil {
					t.Fatalf("clinit %s: %v", c.Name, err)
				}
			}
			v, err := m.RunMethod(p.Class(tc.class).DeclaredMethod("benchmark"), heap.IntVal(tc.n))
			if err != nil {
				t.Fatal(err)
			}
			got := v.Int()
			if tc.check != nil {
				if !tc.check(got) {
					t.Errorf("benchmark(%d) = %d fails invariant", tc.n, got)
				}
				return
			}
			if got != tc.want {
				t.Errorf("benchmark(%d) = %d, want %d", tc.n, got, tc.want)
			}
		})
	}
}

// TestBenchmarkDeterminism: the same benchmark invocation returns the same
// value on every (re)build and run.
func TestBenchmarkDeterminism(t *testing.T) {
	run := func() int64 {
		w, _ := ByName("Richards")
		p := w.Build()
		m := vm.New(p)
		m.AutoClinit = true
		for _, c := range p.Classes {
			if err := m.RunClassInit(c); err != nil {
				t.Fatal(err)
			}
		}
		v, err := m.RunMethod(p.Class("RichardsBench").DeclaredMethod("benchmark"), heap.IntVal(3))
		if err != nil {
			t.Fatal(err)
		}
		return v.Int()
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Errorf("Richards nondeterministic: %d vs %d", a, b)
	}
}

// TestServiceRouteTable: the router registers the configured number of
// routes and the first response resolves the helloworld body.
func TestServiceRouteTable(t *testing.T) {
	p := buildService(micronautSpec())
	m := vm.New(p)
	m.AutoClinit = true
	for _, c := range p.Classes {
		if err := m.RunClassInit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RunProgram(); err != nil {
		t.Fatal(err)
	}
	if !m.Responded {
		t.Fatal("service did not respond")
	}
	routes := m.Statics.Get(p.Class("io.micronaut.Router").LookupStatic("routes")).Ref
	if routes == nil {
		t.Fatal("route table not published")
	}
	cnt := routes.GetField(p.Class(ClsHashMap).LookupField("count"))
	if cnt.Int() != int64(micronautSpec().routes) {
		t.Errorf("routes = %d, want %d", cnt.Int(), micronautSpec().routes)
	}
}

// TestStdlibHashMap: put/get/replace semantics of the IR HashMap.
func TestStdlibHashMap(t *testing.T) {
	b := newAWFY("maptest")
	c := b.Class("MT")
	mb := c.StaticMethod("benchmark", 1, ir.Int())
	e := mb.Entry()
	eight := e.ConstInt(8)
	m0 := e.Call(ClsHashMap, "make", eight)
	k1 := e.Str("alpha")
	k2 := e.Str("beta")
	v1 := e.Str("one")
	v2 := e.Str("two")
	v3 := e.Str("three")
	e.CallVoid(ClsHashMap, "put", m0, k1, v1)
	e.CallVoid(ClsHashMap, "put", m0, k2, v2)
	e.CallVoid(ClsHashMap, "put", m0, k1, v3) // replace
	got := e.Call(ClsHashMap, "get", m0, k1)
	ln := e.Intrinsic("strlen", got) // "three" -> 5
	sz := e.Call(ClsHashMap, "size", m0)
	ten := e.ConstInt(10)
	score := e.Arith(ir.Mul, sz, ten)
	// A missing key returns null.
	miss := e.Call(ClsHashMap, "get", m0, e.Str("gamma"))
	nl := e.Null()
	isNull := e.Cmp(ir.Eq, miss, nl)
	hundred := e.ConstInt(100)
	score2 := e.Arith(ir.Add, score, e.Arith(ir.Mul, isNull, hundred))
	e.Ret(e.Arith(ir.Add, score2, ln))
	finishMain(b, "MT")
	p := b.MustBuild()

	m := vm.New(p)
	m.AutoClinit = true
	for _, cl := range p.Classes {
		if err := m.RunClassInit(cl); err != nil {
			t.Fatal(err)
		}
	}
	v, err := m.RunMethod(p.Class("MT").DeclaredMethod("benchmark"), heap.IntVal(0))
	if err != nil {
		t.Fatal(err)
	}
	// size 2 -> 20, missing-key null -> 100, strlen("three") = 5.
	if v.Int() != 125 {
		t.Errorf("hashmap result = %d, want 125", v.Int())
	}
}
