package workloads

import (
	"fmt"

	"nimage/internal/ir"
)

// ServeSpec describes the serve-mode surface of a workload: after startup
// (main runs to its first response), the harness keeps the process alive
// and drives request bursts through the dispatch entry point.
type ServeSpec struct {
	// DispatchClass and DispatchMethod name the static request entry:
	// dispatch(route) runs one request and ends with a respond intrinsic.
	DispatchClass  string
	DispatchMethod string
	// Routes is the number of distinct routes dispatch accepts (0..Routes-1).
	Routes int
}

// serveSpec sizes one synthetic serve-mode service. Unlike the helloworld
// microservices (which exist to measure time-to-first-response and then
// die), these keep serving: every route has its own handler CU and its
// own heap slab, scattered across the framework packages, so the working
// set of a burst is determined by which routes it hits — and by how much
// of the previous burst's working set survived the inter-burst pressure.
type serveSpec struct {
	name     string
	prefix   string // framework package prefix, e.g. "srv.api"
	routes   int    // handler count (= ServeSpec.Routes)
	ops      int    // arithmetic work per request
	reads    int    // per-request reads of the route's heap slab
	slab     int    // objects in each route's static table (heap weight)
	pkgs     []pkgSpec
	res      int
	resBytes int
}

// serveAPISpec is a wide API service: many small handlers scattered over
// the package namespace, small per-route heap slabs. Its serve-mode cost
// is .text churn — cold handler CUs re-faulting after pressure.
func serveAPISpec() serveSpec {
	return serveSpec{
		name: "serve-api", prefix: "srv.api",
		routes: 24, ops: 20, reads: 6, slab: 32,
		pkgs: []pkgSpec{
			{name: "srv.api.auth", classes: 18, methods: 6, body: 24, data: 10, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "srv.api.codec", classes: 18, methods: 7, body: 24, data: 12, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "srv.api.http", classes: 20, methods: 6, body: 26, data: 10, hotPeriod: 7, reads: 2, saltShare: 85},
			{name: "srv.api.metrics", classes: 16, methods: 6, body: 22, data: 10, saltShare: 85},
			{name: "java.io", classes: 18, methods: 7, body: 22, data: 14, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "java.util.concurrent", classes: 16, methods: 6, body: 20, data: 10, saltShare: 85},
		},
		res: 5, resBytes: 6 * 1024,
	}
}

// serveCacheSpec is a cache-heavy service: fewer routes but each owns a
// large heap slab, so serve-mode churn lands in .svm_heap — the snapshot
// pages pressure evicts between bursts.
func serveCacheSpec() serveSpec {
	return serveSpec{
		name: "serve-cache", prefix: "srv.cache",
		routes: 12, ops: 12, reads: 12, slab: 160,
		pkgs: []pkgSpec{
			{name: "srv.cache.store", classes: 18, methods: 6, body: 24, data: 16, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "srv.cache.proto", classes: 18, methods: 6, body: 24, data: 12, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "srv.cache.net", classes: 18, methods: 6, body: 24, data: 10, hotPeriod: 9, reads: 2, saltShare: 85},
			{name: "java.io", classes: 18, methods: 7, body: 22, data: 14, hotPeriod: 8, reads: 2, saltShare: 85},
			{name: "java.util.concurrent", classes: 16, methods: 6, body: 20, data: 10, saltShare: 85},
		},
		res: 6, resBytes: 8 * 1024,
	}
}

// Serve returns the serve-mode workloads. They are deliberately not part
// of All(): the cold-start figures keep their workload set, and the serve
// figures/harness address these by name or through this list.
func Serve() []Workload {
	mk := func(sp serveSpec) Workload {
		return Workload{
			Name:    sp.name,
			Service: true,
			Build:   func() *ir.Program { return buildServe(sp) },
			Serve: &ServeSpec{
				DispatchClass:  sp.prefix + ".Dispatcher",
				DispatchMethod: "dispatch",
				Routes:         sp.routes,
			},
		}
	}
	return []Workload{mk(serveAPISpec()), mk(serveCacheSpec())}
}

// buildServe constructs the program for one serve spec: the startup
// runtime, one handler class (code + heap slab) per route scattered
// across the framework packages, a dispatcher that routes a request id to
// its handler and responds, and a main that initializes the runtime and
// serves the first request (route 0) — so the profiled startup path
// covers route 0's handler only, leaving the other routes cold the way
// real first-request profiles do.
func buildServe(sp serveSpec) *ir.Program {
	b := ir.NewBuilder(sp.name)
	addCoreLibrary(b)
	addStartup(b, startupScale{
		packages:      sp.pkgs,
		resources:     sp.res,
		resourceBytes: sp.resBytes,
	})

	clsHandler := func(i int) string {
		pkg := sp.pkgs[i%len(sp.pkgs)].name
		return fmt.Sprintf("%s.Handler%02d", pkg, i)
	}

	for i := 0; i < sp.routes; i++ {
		cn := clsHandler(i)
		c := b.Class(cn)
		c.Static("table", ir.Array(refObj()))

		// The route's heap slab: a table of strings baked into the image
		// snapshot, sized by the spec (the serve-cache routes carry large
		// slabs, the serve-api routes small ones).
		cl := c.Clinit()
		e := cl.Entry()
		n := e.ConstInt(int64(sp.slab))
		arr := e.NewArray(refObj(), n)
		zero := e.ConstInt(0)
		name := e.Str(cn + "$Row")
		exit := e.For(zero, n, 1, func(body *ir.BlockBuilder, k ir.Reg) *ir.BlockBuilder {
			s := body.Intrinsic(ir.IntrinsicItoa, k)
			v := body.Intrinsic(ir.IntrinsicConcat, name, s)
			body.ASet(arr, k, v)
			return body
		})
		exit.PutStatic(cn, "table", arr)
		exit.RetVoid()

		// handle(r): per-request arithmetic plus strided reads over the
		// route's slab — the request's working set.
		m := c.StaticMethod("handle", 1, ir.Int())
		me := m.Entry()
		acc := me.Move(m.Param(0))
		for k := 0; k < sp.ops; k++ {
			kc := me.ConstInt(int64(i*17 + k + 1))
			op := ir.Add
			if k%3 == 1 {
				op = ir.Xor
			}
			me.ArithTo(acc, op, acc, kc)
		}
		tb := me.GetStatic(cn, "table")
		ln := me.ALen(tb)
		reads := me.ConstInt(int64(sp.reads))
		seven := me.ConstInt(7)
		z := me.ConstInt(0)
		done := me.For(z, reads, 1, func(body *ir.BlockBuilder, k ir.Reg) *ir.BlockBuilder {
			idx := body.Arith(ir.Rem, body.Arith(ir.Mul, k, seven), ln)
			s := body.AGet(tb, idx)
			l := body.Intrinsic(ir.IntrinsicStrLen, s)
			body.ArithTo(acc, ir.Add, acc, l)
			return body
		})
		done.Ret(acc)
	}

	// Dispatcher.dispatch(r): route the request id to its handler, print
	// the result, respond. With StopOnRespond the machine stops here, so
	// one RunMethod call is exactly one request.
	clsDisp := sp.prefix + ".Dispatcher"
	dp := b.Class(clsDisp)
	dm := dp.StaticMethod("dispatch", 1, ir.Void())
	de := dm.Entry()
	r := dm.Param(0)
	acc := de.ConstInt(0)
	cur := de
	for i := 0; i < sp.routes; i++ {
		rc := cur.ConstInt(int64(i))
		is := cur.Cmp(ir.Eq, r, rc)
		hn := clsHandler(i)
		cur = cur.IfThen(is, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			v := th.Call(hn, "handle", r)
			th.MoveTo(acc, v)
			return th
		})
	}
	s := cur.Intrinsic(ir.IntrinsicItoa, acc)
	cur.IntrinsicVoid(ir.IntrinsicPrint, s)
	cur.IntrinsicVoid(ir.IntrinsicRespond)
	cur.RetVoid()

	// Server.main: runtime init, then serve the first request.
	clsServer := sp.prefix + ".Server"
	srv := b.Class(clsServer)
	mm := srv.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	emitRuntimeInit(e)
	for _, prop := range []string{"user.timezone", "file.encoding"} {
		pr := e.Str(prop)
		e.Call(ClsSystem, "getProperty", pr)
	}
	zero := e.ConstInt(0)
	e.CallVoid(clsDisp, "dispatch", zero)
	e.RetVoid()
	b.SetEntry(clsServer, "main")

	return b.MustBuild()
}
