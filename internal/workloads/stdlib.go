// Package workloads defines the benchmark programs of the evaluation
// (Sec. 7.1): the 14 "Are We Fast Yet?" benchmarks and three synthetic
// microservice frameworks (micronaut/quarkus/spring helloworld), all
// written in the mini-IR and linked against a shared synthetic core
// library.
//
// The core library plays the role of the JDK and the Native-Image runtime
// internals: collections implemented in IR, class initializers that build
// realistic heap-snapshot contents (string tables, caches, property maps,
// salted seeds), and large reachable-but-rarely-executed subsystems, so
// that binaries contain far more code and objects than a run touches —
// matching the paper's observation that AWFY accesses only ~4% of the
// snapshot (Sec. 7.2).
package workloads

import "nimage/internal/ir"

// Common class names.
const (
	ClsObject        = "java.lang.Object"
	ClsString        = ir.StringClass
	ClsStringBuilder = "java.lang.StringBuilder"
	ClsInteger       = "java.lang.Integer"
	ClsArrayList     = "java.util.ArrayList"
	ClsHashMap       = "java.util.HashMap"
	ClsEntry         = "java.util.HashMap$Node"
	ClsRandom        = "java.util.Random"
	ClsSystem        = "java.lang.System"
)

// refObj is the declared type of generic container slots.
func refObj() ir.TypeRef { return ir.Ref(ClsObject) }

// addCoreLibrary declares the shared mini-JDK classes.
func addCoreLibrary(b *ir.Builder) {
	b.Class(ClsObject)
	b.Class(ClsString)
	addInteger(b)
	addStringBuilder(b)
	addArrayList(b)
	addHashMap(b)
	addRandom(b)
	addSystem(b)
}

// addInteger declares java.lang.Integer with the boxed-value cache its
// clinit populates (256 small objects in the image heap, like the JDK's
// IntegerCache).
func addInteger(b *ir.Builder) {
	c := b.Class(ClsInteger)
	c.Field("value", ir.Int())
	c.Static("cache", ir.Array(ir.Ref(ClsInteger)))

	cl := c.Clinit()
	e := cl.Entry()
	n := e.ConstInt(256)
	arr := e.NewArray(ir.Ref(ClsInteger), n)
	zero := e.ConstInt(0)
	low := e.ConstInt(-128)
	exit := e.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.New(ClsInteger)
		v := body.Arith(ir.Add, i, low)
		body.PutField(o, ClsInteger, "value", v)
		body.ASet(arr, i, o)
		return body
	})
	exit.PutStatic(ClsInteger, "cache", arr)
	exit.RetVoid()

	// valueOf(v): cached instance for [-128,128), fresh box otherwise.
	vo := c.StaticMethod("valueOf", 1, ir.Ref(ClsInteger))
	ve := vo.Entry()
	v := vo.Param(0)
	lo := ve.ConstInt(-128)
	hi := ve.ConstInt(128)
	inLo := ve.Cmp(ir.Ge, v, lo)
	inHi := ve.Cmp(ir.Lt, v, hi)
	both := ve.Arith(ir.And, inLo, inHi)
	cached := vo.NewBlock()
	fresh := vo.NewBlock()
	ve.If(both, cached, fresh)
	arr2 := cached.GetStatic(ClsInteger, "cache")
	idx := cached.Arith(ir.Sub, v, lo)
	// Re-derive -128 in this block: registers are method-scoped, reuse lo.
	cached.Ret(cached.AGet(arr2, idx))
	o := fresh.New(ClsInteger)
	fresh.PutField(o, ClsInteger, "value", v)
	fresh.Ret(o)

	iv := c.Method("intValue", 0, ir.Int())
	ie := iv.Entry()
	ie.Ret(ie.GetField(iv.This(), ClsInteger, "value"))

	// box(v): always-fresh boxed integer (the non-caching allocation path,
	// used by build-time table construction).
	bx := c.StaticMethod("box", 1, ir.Ref(ClsInteger))
	be := bx.Entry()
	ob := be.New(ClsInteger)
	be.PutField(ob, ClsInteger, "value", bx.Param(0))
	be.Ret(ob)
}

// addStringBuilder declares a minimal StringBuilder over the concat
// intrinsic.
func addStringBuilder(b *ir.Builder) {
	c := b.Class(ClsStringBuilder)
	c.Field("buf", ir.String())

	mk := c.StaticMethod("make", 0, ir.Ref(ClsStringBuilder))
	me := mk.Entry()
	o := me.New(ClsStringBuilder)
	empty := me.Str("")
	me.PutField(o, ClsStringBuilder, "buf", empty)
	me.Ret(o)

	ap := c.Method("append", 1, ir.Ref(ClsStringBuilder))
	ae := ap.Entry()
	cur := ae.GetField(ap.This(), ClsStringBuilder, "buf")
	nw := ae.Intrinsic(ir.IntrinsicConcat, cur, ap.Param(0))
	ae.PutField(ap.This(), ClsStringBuilder, "buf", nw)
	ae.Ret(ap.This())

	ai := c.Method("appendInt", 1, ir.Ref(ClsStringBuilder))
	aie := ai.Entry()
	s := aie.Intrinsic(ir.IntrinsicItoa, ai.Param(0))
	cur2 := aie.GetField(ai.This(), ClsStringBuilder, "buf")
	nw2 := aie.Intrinsic(ir.IntrinsicConcat, cur2, s)
	aie.PutField(ai.This(), ClsStringBuilder, "buf", nw2)
	aie.Ret(ai.This())

	ts := c.Method("build", 0, ir.String())
	te := ts.Entry()
	te.Ret(te.GetField(ts.This(), ClsStringBuilder, "buf"))
}

// addArrayList declares a growable list of object references.
func addArrayList(b *ir.Builder) {
	c := b.Class(ClsArrayList)
	c.Field("data", ir.Array(refObj()))
	c.Field("count", ir.Int())

	mk := c.StaticMethod("make", 1, ir.Ref(ClsArrayList))
	me := mk.Entry()
	o := me.New(ClsArrayList)
	one := me.ConstInt(1)
	cap0 := me.Move(mk.Param(0))
	small := me.Cmp(ir.Lt, cap0, one)
	fix := me.IfThen(small, func(th *ir.BlockBuilder) *ir.BlockBuilder {
		th.MoveTo(cap0, one)
		return th
	})
	arr := fix.NewArray(refObj(), cap0)
	fix.PutField(o, ClsArrayList, "data", arr)
	zero := fix.ConstInt(0)
	fix.PutField(o, ClsArrayList, "count", zero)
	fix.Ret(o)

	// add(o): grow by doubling when full.
	ad := c.Method("add", 1, ir.Void())
	ae := ad.Entry()
	data := ae.GetField(ad.This(), ClsArrayList, "data")
	cnt := ae.GetField(ad.This(), ClsArrayList, "count")
	capN := ae.ALen(data)
	full := ae.Cmp(ir.Ge, cnt, capN)
	grown := ae.IfThen(full, func(th *ir.BlockBuilder) *ir.BlockBuilder {
		two := th.ConstInt(2)
		ncap := th.Arith(ir.Mul, capN, two)
		narr := th.NewArray(refObj(), ncap)
		zero2 := th.ConstInt(0)
		cp := th.For(zero2, cnt, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
			v := body.AGet(data, i)
			body.ASet(narr, i, v)
			return body
		})
		cp.PutField(ad.This(), ClsArrayList, "data", narr)
		cp.MoveTo(data, narr)
		return cp
	})
	grown.ASet(data, cnt, ad.Param(0))
	one2 := grown.ConstInt(1)
	ncnt := grown.Arith(ir.Add, cnt, one2)
	grown.PutField(ad.This(), ClsArrayList, "count", ncnt)
	grown.RetVoid()

	gt := c.Method("get", 1, refObj())
	ge := gt.Entry()
	d2 := ge.GetField(gt.This(), ClsArrayList, "data")
	ge.Ret(ge.AGet(d2, gt.Param(0)))

	st := c.Method("set", 2, ir.Void())
	se := st.Entry()
	d3 := se.GetField(st.This(), ClsArrayList, "data")
	se.ASet(d3, st.Param(0), st.Param(1))
	se.RetVoid()

	sz := c.Method("size", 0, ir.Int())
	ze := sz.Entry()
	ze.Ret(ze.GetField(sz.This(), ClsArrayList, "count"))
}

// addHashMap declares a chained hash map with string keys (power-of-two
// bucket count).
func addHashMap(b *ir.Builder) {
	n := b.Class(ClsEntry)
	n.Field("key", ir.String())
	n.Field("val", refObj())
	n.Field("next", ir.Ref(ClsEntry))

	c := b.Class(ClsHashMap)
	c.Field("buckets", ir.Array(ir.Ref(ClsEntry)))
	c.Field("count", ir.Int())

	mk := c.StaticMethod("make", 1, ir.Ref(ClsHashMap))
	me := mk.Entry()
	o := me.New(ClsHashMap)
	arr := me.NewArray(ir.Ref(ClsEntry), mk.Param(0))
	me.PutField(o, ClsHashMap, "buckets", arr)
	zero := me.ConstInt(0)
	me.PutField(o, ClsHashMap, "count", zero)
	me.Ret(o)

	// put(key, val): replace in chain or prepend.
	put := c.Method("put", 2, ir.Void())
	pe := put.Entry()
	key := put.Param(0)
	val := put.Param(1)
	bks := pe.GetField(put.This(), ClsHashMap, "buckets")
	h := pe.Intrinsic(ir.IntrinsicStrHash, key)
	nb := pe.ALen(bks)
	one := pe.ConstInt(1)
	mask := pe.Arith(ir.Sub, nb, one)
	idx := pe.Arith(ir.And, h, mask)
	e := pe.Move(pe.AGet(bks, idx))

	loopHead := put.NewBlock()
	loopBody := put.NewBlock()
	replace := put.NewBlock()
	advance := put.NewBlock()
	insert := put.NewBlock()
	pe.Goto(loopHead)
	nl := loopHead.Null()
	nonNull := loopHead.Cmp(ir.Ne, e, nl)
	loopHead.If(nonNull, loopBody, insert)
	ek := loopBody.GetField(e, ClsEntry, "key")
	same := loopBody.Intrinsic(ir.IntrinsicStrEq, ek, key)
	loopBody.If(same, replace, advance)
	replace.PutField(e, ClsEntry, "val", val)
	replace.RetVoid()
	nxt := advance.GetField(e, ClsEntry, "next")
	advance.MoveTo(e, nxt)
	advance.Goto(loopHead)
	ne := insert.New(ClsEntry)
	insert.PutField(ne, ClsEntry, "key", key)
	insert.PutField(ne, ClsEntry, "val", val)
	head := insert.AGet(bks, idx)
	insert.PutField(ne, ClsEntry, "next", head)
	insert.ASet(bks, idx, ne)
	cnt := insert.GetField(put.This(), ClsHashMap, "count")
	one2 := insert.ConstInt(1)
	ncnt := insert.Arith(ir.Add, cnt, one2)
	insert.PutField(put.This(), ClsHashMap, "count", ncnt)
	insert.RetVoid()

	// get(key): chain lookup, null when absent.
	get := c.Method("get", 1, refObj())
	ge := get.Entry()
	gkey := get.Param(0)
	gbks := ge.GetField(get.This(), ClsHashMap, "buckets")
	gh := ge.Intrinsic(ir.IntrinsicStrHash, gkey)
	gn := ge.ALen(gbks)
	gone := ge.ConstInt(1)
	gmask := ge.Arith(ir.Sub, gn, gone)
	gidx := ge.Arith(ir.And, gh, gmask)
	gcur := ge.Move(ge.AGet(gbks, gidx))

	gHead := get.NewBlock()
	gBody := get.NewBlock()
	gFound := get.NewBlock()
	gNext := get.NewBlock()
	gMiss := get.NewBlock()
	ge.Goto(gHead)
	gnl := gHead.Null()
	gnn := gHead.Cmp(ir.Ne, gcur, gnl)
	gHead.If(gnn, gBody, gMiss)
	gk := gBody.GetField(gcur, ClsEntry, "key")
	geq := gBody.Intrinsic(ir.IntrinsicStrEq, gk, gkey)
	gBody.If(geq, gFound, gNext)
	gFound.Ret(gFound.GetField(gcur, ClsEntry, "val"))
	gnx := gNext.GetField(gcur, ClsEntry, "next")
	gNext.MoveTo(gcur, gnx)
	gNext.Goto(gHead)
	gMiss.Ret(gMiss.Null())

	sz := c.Method("size", 0, ir.Int())
	se := sz.Entry()
	se.Ret(se.GetField(sz.This(), ClsHashMap, "count"))
}

// addRandom declares the deterministic LCG used by AWFY's Storage and CD.
func addRandom(b *ir.Builder) {
	c := b.Class(ClsRandom)
	c.Field("seed", ir.Int())

	mk := c.StaticMethod("make", 1, ir.Ref(ClsRandom))
	me := mk.Entry()
	o := me.New(ClsRandom)
	me.PutField(o, ClsRandom, "seed", mk.Param(0))
	me.Ret(o)

	// next(): seed = (seed*1309+13849) & 0xffff (the AWFY generator).
	nx := c.Method("next", 0, ir.Int())
	ne := nx.Entry()
	s := ne.GetField(nx.This(), ClsRandom, "seed")
	a := ne.ConstInt(1309)
	cc := ne.ConstInt(13849)
	m := ne.ConstInt(0xffff)
	t1 := ne.Arith(ir.Mul, s, a)
	t2 := ne.Arith(ir.Add, t1, cc)
	t3 := ne.Arith(ir.And, t2, m)
	ne.PutField(nx.This(), ClsRandom, "seed", t3)
	ne.Ret(t3)
}

// addSystem declares java.lang.System with a property table built at image
// build time. A few properties are build-salted (timestamps, seeds), one
// of the heap-divergence sources of Sec. 2.
func addSystem(b *ir.Builder) {
	c := b.Class(ClsSystem)
	c.Static("props", ir.Ref(ClsHashMap))
	c.Static("lineSep", ir.String())
	c.Static("bootTime", ir.Int())

	cl := c.Clinit()
	e := cl.Entry()
	cap0 := e.ConstInt(64)
	m := e.Call(ClsHashMap, "make", cap0)
	props := [][2]string{
		{"java.version", "21"}, {"os.name", "Linux"}, {"os.arch", "amd64"},
		{"file.encoding", "UTF-8"}, {"user.dir", "/srv/app"},
		{"java.vm.name", "SubstrateVM"}, {"path.separator", ":"},
		{"user.language", "en"}, {"user.timezone", "UTC"},
		{"java.io.tmpdir", "/tmp"}, {"sun.arch.data.model", "64"},
		{"native.image.kind", "executable"},
	}
	for _, kv := range props {
		k, v := kv[0], kv[1]
		kr := e.Str(k)
		ki := e.Intrinsic(ir.IntrinsicIntern, kr)
		vr := e.Str(v)
		e.CallVoid(ClsHashMap, "put", m, ki, vr)
	}
	e.PutStatic(ClsSystem, "props", m)
	sep := e.Str("\n")
	e.PutStatic(ClsSystem, "lineSep", sep)
	salt := e.Intrinsic(ir.IntrinsicBuildSalt)
	e.PutStatic(ClsSystem, "bootTime", salt)
	e.RetVoid()

	gp := c.StaticMethod("getProperty", 1, ir.String())
	ge := gp.Entry()
	pm := ge.GetStatic(ClsSystem, "props")
	ge.Ret(ge.Call(ClsHashMap, "get", pm, gp.Param(0)))
}
