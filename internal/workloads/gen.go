package workloads

import (
	"encoding/binary"
	"fmt"

	"nimage/internal/ir"
	"nimage/internal/murmur"
)

// pkgSpec sizes one generated library package. Every class carries a
// clinit-built data table (image-heap contents) and `methods` methods.
// Every hotPeriod-th class participates in startup: its even-indexed
// methods are *hot* (executed by the package boot) and read parts of the
// class table. Everything else is reachable only behind never-taken
// branches.
//
// Hot classes interleave with cold classes and hot methods with cold
// methods, so under the default alphabetical CU order the executed startup
// code is scattered across the whole .text section (the situation of
// Fig. 6a), the startup-accessed heap objects are scattered across
// .svm_heap, and — like the paper's workloads (Sec. 7.2) — a run accesses
// only a small fraction of the snapshot.
type pkgSpec struct {
	name    string
	classes int
	methods int
	// body is the arithmetic op count per method (drives code size).
	body int
	// data is the number of objects in each class's clinit-built table.
	data int
	// hotPeriod selects the hot-class density: every hotPeriod-th class
	// executes at startup (0 = fully cold package).
	hotPeriod int
	// reads is the number of table elements each hot method touches.
	reads int
	// saltShare is the percentage of classes whose table captures a
	// build-dependent value (0 = the 40% default). Framework packages use
	// a high share: generated bean metadata embeds build hashes.
	saltShare int
}

func (sp pkgSpec) salted(ci int) bool {
	share := sp.saltShare
	if share == 0 {
		share = 18
	}
	// Decorrelate the salting pattern from the hot-class grid: among hot
	// classes, hash the hot index; among cold ones, the class index. A
	// proper hash keeps the share uniform for any period.
	var buf [8]byte
	if sp.hotPeriod > 0 && ci%sp.hotPeriod == 0 {
		binary.LittleEndian.PutUint64(buf[:], uint64(ci/sp.hotPeriod)+1)
		return int(murmur.Sum64Seed(buf[:], uint64(len(sp.name)))%100) < share
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(ci)+1000)
	return int(murmur.Sum64Seed(buf[:], uint64(len(sp.name)))%100) < share
}

func (sp pkgSpec) isHot(ci, mi int) bool {
	return sp.hotPeriod > 0 && ci%sp.hotPeriod == 0 && mi%2 == 0
}

// sharedLabels is the pool of interned strings shared by many class
// tables, like the deduplicated common strings of a real image heap
// ("true", "UTF-8", locale names, ...). A shared object's first path in
// the object graph depends on which table the (perturbed) traversal
// reaches first, so its heap-path identity flips between builds — the
// multiple-paths weakness the paper notes for the heap-path strategy
// (Sec. 5.3).
var sharedLabels = []string{
	"true", "false", "UTF-8", "ISO-8859-1", "en_US", "root", "default",
	"GMT", "UTC", "http", "https", "GET", "POST", "application/json",
	"text/plain", "localhost",
}

// addPackages generates the packages and returns the per-package boot
// targets ("pkg.Boot.boot") that Startup.initialize must call. Each boot
// executes the package's hot methods and references the cold ones behind a
// never-taken branch, keeping them reachable (Sec. 2).
func addPackages(b *ir.Builder, specs []pkgSpec) []string {
	var boots []string
	for _, sp := range specs {
		if sp.data%2 == 1 {
			sp.data++ // keep the string/box alternation aligned
		}
		for ci := 0; ci < sp.classes; ci++ {
			cls := fmt.Sprintf("%s.C%02d", sp.name, ci)
			c := b.Class(cls)
			c.Field("state", ir.Int())
			// Two candidate roots for the class table: which one the
			// initializer populates depends on a build-dependent value
			// (initialization races, conditional caching), so the *first
			// path* to the table and its contents differs across ~25% of
			// builds — the heap-path instability the paper acknowledges
			// (Sec. 5.3: only the single inclusion path is considered,
			// "which may be different across compilations").
			c.Static("table", ir.Array(refObj()))
			c.Static("tableAlt", ir.Array(refObj()))

			// clinit: the class's share of the image heap — alternating
			// strings and boxed integers, like charset/locale/metadata
			// tables.
			cl := c.Clinit()
			e := cl.Entry()
			n := e.ConstInt(int64(sp.data))
			arr := e.NewArray(refObj(), n)
			zero := e.ConstInt(0)
			two := e.ConstInt(2)
			lbl := e.Str(cls + "$entry-")
			exit := e.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
				rem := body.Arith(ir.Rem, i, two)
				cond := body.Cmp(ir.Eq, rem, zero)
				return body.IfElse(cond,
					func(th *ir.BlockBuilder) *ir.BlockBuilder {
						s := th.Intrinsic(ir.IntrinsicItoa, i)
						v := th.Intrinsic(ir.IntrinsicConcat, lbl, s)
						th.ASet(arr, i, v)
						return th
					},
					func(el *ir.BlockBuilder) *ir.BlockBuilder {
						o := el.Call(ClsInteger, "box", i)
						el.ASet(arr, i, o)
						return el
					})
			})
			if sp.salted(ci) {
				// A configurable share of the classes captures a
				// build-dependent value
				// in their table (identity-hash seeds, cached timestamps):
				// content-based identities see different tables in every
				// build (Sec. 2).
				salt := exit.Intrinsic(ir.IntrinsicBuildSalt)
				k127 := exit.ConstInt(127)
				saltBox := exit.Call(ClsInteger, "valueOf", exit.Arith(ir.And, salt, k127))
				last := exit.ConstInt(int64(sp.data - 1))
				exit.ASet(arr, last, saltBox)
			}
			salt2 := exit.Intrinsic(ir.IntrinsicBuildSalt)
			k3 := exit.ConstInt(3)
			alt := exit.Cmp(ir.Eq, exit.Arith(ir.And, salt2, k3), exit.ConstInt(0))
			fin := exit.IfElse(alt,
				func(th *ir.BlockBuilder) *ir.BlockBuilder {
					th.PutStatic(cls, "tableAlt", arr)
					return th
				},
				func(el *ir.BlockBuilder) *ir.BlockBuilder {
					el.PutStatic(cls, "table", arr)
					return el
				})
			fin.RetVoid()

			for mi := 0; mi < sp.methods; mi++ {
				m := c.StaticMethod(fmt.Sprintf("m%02d", mi), 1, ir.Int())
				me := m.Entry()
				acc := me.Move(m.Param(0))
				for k := 0; k < sp.body; k++ {
					kc := me.ConstInt(int64(ci*31 + mi*7 + k))
					op := ir.Add
					switch k % 3 {
					case 1:
						op = ir.Xor
					case 2:
						op = ir.Mul
					}
					me.ArithTo(acc, op, acc, kc)
				}
				if sp.isHot(ci, mi) {
					// Hot methods read table entries at startup: the
					// array, a string (length read), and a boxed integer
					// (field read) — the heap accesses the ordering
					// strategies reorder.
					tblA := me.GetStatic(cls, "table")
					tblB := me.GetStatic(cls, "tableAlt")
					nl := me.Null()
					useAlt := me.Cmp(ir.Eq, tblA, nl)
					tbl := me.NewReg()
					me = me.IfElse(useAlt,
						func(th *ir.BlockBuilder) *ir.BlockBuilder {
							th.MoveTo(tbl, tblB)
							return th
						},
						func(el *ir.BlockBuilder) *ir.BlockBuilder {
							el.MoveTo(tbl, tblA)
							return el
						})
					for r := 0; r < sp.reads; r++ {
						sIdx := me.ConstInt(int64((mi*sp.reads + r) * 2 % sp.data))
						elem := me.AGet(tbl, sIdx)
						ln := me.Intrinsic(ir.IntrinsicStrLen, elem)
						me.ArithTo(acc, ir.Add, acc, ln)
						one := me.ConstInt(1)
						bIdx := me.Arith(ir.Add, sIdx, one)
						box := me.AGet(tbl, bIdx)
						v := me.Call(ClsInteger, "intValue", box)
						me.ArithTo(acc, ir.Add, acc, v)
					}
				}
				me.Ret(acc)
			}
		}

		// Package boot: hot calls on the executed path, cold calls behind
		// a never-taken branch. The package also interns a few common
		// labels, deduplicated across the whole image.
		boot := b.Class(sp.name + ".Boot")
		bc := boot.Clinit()
		bce := bc.Entry()
		for k := 0; k < 3; k++ {
			lit := bce.Str(sharedLabels[(len(sp.name)*3+k)%len(sharedLabels)])
			bce.Intrinsic(ir.IntrinsicIntern, lit)
		}
		bce.RetVoid()
		bm := boot.StaticMethod("boot", 1, ir.Int())
		be := bm.Entry()
		acc := be.Move(bm.Param(0))
		for ci := 0; ci < sp.classes; ci++ {
			for mi := 0; mi < sp.methods; mi++ {
				if sp.isHot(ci, mi) {
					r := be.Call(fmt.Sprintf("%s.C%02d", sp.name, ci), fmt.Sprintf("m%02d", mi), acc)
					be.MoveTo(acc, r)
				}
			}
		}
		zero := be.ConstInt(0)
		never := be.Arith(ir.And, acc, zero) // always 0
		end := be.IfThen(never, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			a2 := th.Move(acc)
			for ci := 0; ci < sp.classes; ci++ {
				for mi := 0; mi < sp.methods; mi++ {
					if !sp.isHot(ci, mi) {
						r := th.Call(fmt.Sprintf("%s.C%02d", sp.name, ci), fmt.Sprintf("m%02d", mi), a2)
						th.MoveTo(a2, r)
					}
				}
			}
			return th
		})
		end.Ret(acc)
		boots = append(boots, sp.name+".Boot.boot")
	}
	return boots
}
