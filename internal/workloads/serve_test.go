package workloads

import "testing"

func TestServeWorkloadsBuild(t *testing.T) {
	for _, w := range Serve() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if !w.Service {
				t.Fatal("serve workloads must be services")
			}
			if w.Serve == nil || w.Serve.Routes < 2 {
				t.Fatalf("bad serve spec %+v", w.Serve)
			}
			p := w.Build()
			c := p.Class(w.Serve.DispatchClass)
			if c == nil {
				t.Fatalf("dispatch class %s missing", w.Serve.DispatchClass)
			}
			m := c.LookupMethod(w.Serve.DispatchMethod)
			if m == nil {
				t.Fatalf("dispatch method %s missing", w.Serve.DispatchMethod)
			}
			if !m.Static || m.NParams != 1 {
				t.Fatalf("dispatch must be static with one parameter, got static=%v params=%d", m.Static, m.NParams)
			}
			// Every serve workload resolves through ByName (the CLI path).
			got, err := ByName(w.Name)
			if err != nil {
				t.Fatal(err)
			}
			if got.Serve == nil || got.Serve.Routes != w.Serve.Routes {
				t.Fatalf("ByName lost the serve spec: %+v", got.Serve)
			}
		})
	}
}

func TestServeNotInAll(t *testing.T) {
	// The cold-start figures iterate All(); the serve workloads must not
	// change that set.
	for _, w := range All() {
		if w.Serve != nil {
			t.Fatalf("serve workload %s leaked into All()", w.Name)
		}
	}
}
