package workloads

import (
	"fmt"
	"math/rand"

	"nimage/internal/ir"
)

// Generated returns a seeded random workload: a full program (core library,
// startup runtime, generated library packages, and a generated benchmark)
// whose shape — package sizes, hot-code density, class hierarchy, method
// bodies — is drawn deterministically from the seed. The equivalence
// verifier runs these to exercise build/run paths no hand-written workload
// covers; the same seed always yields the same program.
func Generated(seed uint64) Workload {
	return Workload{
		Name: fmt.Sprintf("Gen%04d", seed),
		Args: []int64{6 + int64(seed%7)},
		Build: func() *ir.Program {
			return buildGenerated(seed)
		},
	}
}

// buildGenerated constructs the program for one seed. The benchmark result
// must be a pure function of the program and its arguments — never of the
// build salt — so the generated code keeps salt out of every value that can
// reach the printed result (the library packages confine salt to clinit
// heap contents and discarded accumulators, as the real workloads do).
func buildGenerated(seed uint64) *ir.Program {
	rng := rand.New(rand.NewSource(int64(seed)))
	name := fmt.Sprintf("Gen%04d", seed)
	b := ir.NewBuilder(name)
	addCoreLibrary(b)

	npkg := 2 + rng.Intn(2)
	specs := make([]pkgSpec, 0, npkg)
	for i := 0; i < npkg; i++ {
		sp := pkgSpec{
			name:    fmt.Sprintf("gen.p%d", i),
			classes: 4 + rng.Intn(6),
			methods: 3 + rng.Intn(4),
			body:    10 + rng.Intn(18),
			data:    6 + 2*rng.Intn(5),
			reads:   1 + rng.Intn(2),
		}
		if rng.Intn(4) > 0 {
			sp.hotPeriod = 2 + rng.Intn(4)
		}
		specs = append(specs, sp)
	}
	addStartup(b, startupScale{
		packages:      specs,
		resources:     rng.Intn(3),
		resourceBytes: 512 + 256*rng.Intn(5),
	})

	genBenchmark(b, rng)
	finishMain(b, "GenBench")
	return b.MustBuild()
}

// genBenchmark emits a random class hierarchy (a base "shape" with 2–4
// subclasses overriding a virtual step method) and GenBench.benchmark(n):
// n iterations of virtual dispatch over a mixed array of shapes, folding
// each step result — plus an array checksum and a string length — into the
// returned accumulator.
func genBenchmark(b *ir.Builder, rng *rand.Rand) {
	base := b.Class("GenShape")
	base.Field("acc", ir.Int())
	sm := base.Method("step", 1, ir.Int())
	se := sm.Entry()
	se.Ret(sm.Param(0))

	nsub := 2 + rng.Intn(3)
	for s := 0; s < nsub; s++ {
		sub := b.Class(fmt.Sprintf("GenShape%d", s)).Extends("GenShape")
		m := sub.Method("step", 1, ir.Int())
		e := m.Entry()
		v := e.Move(m.Param(0))
		prev := e.GetField(m.This(), "GenShape", "acc")
		ops := 2 + rng.Intn(5)
		for k := 0; k < ops; k++ {
			c := e.ConstInt(int64(1 + rng.Intn(97)))
			switch rng.Intn(4) {
			case 0:
				e.ArithTo(v, ir.Add, v, c)
			case 1:
				e.ArithTo(v, ir.Xor, v, c)
			case 2:
				e.ArithTo(v, ir.Mul, v, c)
			default:
				// Keep the divisor a nonzero constant: generated code must
				// never fault.
				e.ArithTo(v, ir.Rem, v, c)
			}
		}
		e.ArithTo(v, ir.Add, v, prev)
		e.PutField(m.This(), "GenShape", "acc", v)
		e.Ret(v)
	}

	bench := b.Class("GenBench")
	bm := bench.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	count := e.ConstInt(int64(8 + rng.Intn(9)))
	shapes := e.NewArray(ir.Ref("GenShape"), count)
	zero := e.ConstInt(0)
	// Fill the array round-robin across the subclasses, so the virtual
	// call below stays polymorphic.
	fill := e
	nsubReg := e.ConstInt(int64(nsub))
	fill = fill.For(zero, count, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		which := body.Arith(ir.Rem, i, nsubReg)
		cur := body
		for s := 0; s < nsub; s++ {
			sc := cur.ConstInt(int64(s))
			hit := cur.Cmp(ir.Eq, which, sc)
			cls := fmt.Sprintf("GenShape%d", s)
			cur = cur.IfThen(hit, func(th *ir.BlockBuilder) *ir.BlockBuilder {
				o := th.New(cls)
				th.PutField(o, "GenShape", "acc", i)
				th.ASet(shapes, i, o)
				return th
			})
		}
		return cur
	})

	acc := fill.ConstInt(int64(rng.Intn(1000)))
	iters := fill.Move(bm.Param(0))
	loop := fill.For(zero, iters, 1, func(fb *ir.BlockBuilder, it ir.Reg) *ir.BlockBuilder {
		inner := fb.For(zero, count, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
			o := body.AGet(shapes, i)
			arg := body.Arith(ir.Add, acc, i)
			r := body.CallVirt("GenShape", "step", o, arg)
			body.ArithTo(acc, ir.Add, acc, r)
			return body
		})
		return inner
	})

	// Checksum pass: array reads plus a string round-trip, the access
	// shapes the paging simulation cares about.
	s := loop.Intrinsic(ir.IntrinsicItoa, acc)
	ln := loop.Intrinsic(ir.IntrinsicStrLen, s)
	loop.ArithTo(acc, ir.Add, acc, ln)
	sum := loop.ConstInt(0)
	fin := loop.For(zero, count, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.AGet(shapes, i)
		v := body.GetField(o, "GenShape", "acc")
		body.ArithTo(sum, ir.Add, sum, v)
		return body
	})
	fin.ArithTo(acc, ir.Add, acc, sum)
	k := fin.ConstInt(0x7fffffff)
	fin.Ret(fin.Arith(ir.And, acc, k))
}
