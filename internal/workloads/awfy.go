package workloads

import (
	"fmt"

	"nimage/internal/ir"
)

// Workload is a benchmark program of the evaluation.
type Workload struct {
	// Name as reported on the figures' x axes.
	Name string
	// Service marks microservice workloads (time-to-first-response
	// measurement, SIGKILL after response, memory-mapped trace buffers).
	Service bool
	// Args are the runtime program arguments (arg 0 is the problem size).
	Args []int64
	// Build constructs the program (expensive; call once and reuse).
	Build func() *ir.Program
	// Serve, when non-nil, marks a serve-mode workload: after startup the
	// harness drives request bursts through the described dispatch entry.
	Serve *ServeSpec
}

// AWFY returns the 14 "Are We Fast Yet?" benchmarks [33].
func AWFY() []Workload {
	return []Workload{
		{Name: "Bounce", Args: []int64{25}, Build: buildBounce},
		{Name: "CD", Args: []int64{8}, Build: buildCD},
		{Name: "DeltaBlue", Args: []int64{40}, Build: buildDeltaBlue},
		{Name: "Havlak", Args: []int64{6}, Build: buildHavlak},
		{Name: "Json", Args: []int64{12}, Build: buildJson},
		{Name: "List", Args: []int64{3}, Build: buildList},
		{Name: "Mandelbrot", Args: []int64{60}, Build: buildMandelbrot},
		{Name: "NBody", Args: []int64{2200}, Build: buildNBody},
		{Name: "Permute", Args: []int64{12}, Build: buildPermute},
		{Name: "Queens", Args: []int64{14}, Build: buildQueens},
		{Name: "Richards", Args: []int64{14}, Build: buildRichards},
		{Name: "Sieve", Args: []int64{18}, Build: buildSieve},
		{Name: "Storage", Args: []int64{10}, Build: buildStorage},
		{Name: "Towers", Args: []int64{10}, Build: buildTowers},
	}
}

// Microservices returns the three helloworld microservice workloads.
func Microservices() []Workload {
	return []Workload{
		{Name: "micronaut", Service: true, Build: func() *ir.Program { return buildService(micronautSpec()) }},
		{Name: "quarkus", Service: true, Build: func() *ir.Program { return buildService(quarkusSpec()) }},
		{Name: "spring", Service: true, Build: func() *ir.Program { return buildService(springSpec()) }},
	}
}

// All returns every workload.
func All() []Workload {
	return append(AWFY(), Microservices()...)
}

// ByName returns the workload with the given name, searching the standard
// set and the serve-mode workloads.
func ByName(name string) (Workload, error) {
	for _, w := range append(All(), Serve()...) {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// newAWFY starts an AWFY program: core library + startup runtime.
func newAWFY(name string) *ir.Builder {
	b := ir.NewBuilder(name)
	addCoreLibrary(b)
	addStartup(b, awfyScale())
	return b
}

// finishMain emits the standard main: runtime init, read the problem size
// from arg 0, invoke Class.benchmark(n), print the result.
func finishMain(b *ir.Builder, class string) {
	m := b.Class(class + "Harness")
	mm := m.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	emitRuntimeInit(e)
	zero := e.ConstInt(0)
	n := e.Intrinsic(ir.IntrinsicArg, zero)
	r := e.Call(class, "benchmark", n)
	s := e.Intrinsic(ir.IntrinsicItoa, r)
	e.IntrinsicVoid(ir.IntrinsicPrint, s)
	e.RetVoid()
	b.SetEntry(class+"Harness", "main")
}

// buildBounce: balls bouncing inside a box (AWFY Bounce).
func buildBounce() *ir.Program {
	b := newAWFY("Bounce")
	ball := b.Class("Ball")
	for _, f := range []string{"x", "y", "xVel", "yVel"} {
		ball.Field(f, ir.Int())
	}

	// init(random): randomized position and velocity.
	init := ball.Method("init", 1, ir.Void())
	ie := init.Entry()
	r := init.Param(0)
	k500 := ie.ConstInt(500)
	k300 := ie.ConstInt(300)
	k25 := ie.ConstInt(25)
	k10 := ie.ConstInt(10)
	v := ie.Call(ClsRandom, "next", r)
	ie.PutField(init.This(), "Ball", "x", ie.Arith(ir.Rem, v, k500))
	v2 := ie.Call(ClsRandom, "next", r)
	ie.PutField(init.This(), "Ball", "y", ie.Arith(ir.Rem, v2, k300))
	v3 := ie.Call(ClsRandom, "next", r)
	t := ie.Arith(ir.Rem, v3, k25)
	ie.PutField(init.This(), "Ball", "xVel", ie.Arith(ir.Sub, t, k10))
	v4 := ie.Call(ClsRandom, "next", r)
	t2 := ie.Arith(ir.Rem, v4, k25)
	ie.PutField(init.This(), "Ball", "yVel", ie.Arith(ir.Sub, t2, k10))
	ie.RetVoid()

	// bounce(): move and reflect at the walls; returns 1 when bounced.
	bo := ball.Method("bounce", 0, ir.Int())
	be := bo.Entry()
	this := bo.This()
	xLim := be.ConstInt(500)
	yLim := be.ConstInt(300)
	zero := be.ConstInt(0)
	bounced := be.ConstInt(0)
	x := be.GetField(this, "Ball", "x")
	y := be.GetField(this, "Ball", "y")
	xv := be.GetField(this, "Ball", "xVel")
	yv := be.GetField(this, "Ball", "yVel")
	nx := be.Arith(ir.Add, x, xv)
	ny := be.Arith(ir.Add, y, yv)
	be.PutField(this, "Ball", "x", nx)
	be.PutField(this, "Ball", "y", ny)
	one := be.ConstInt(1)
	cur := be
	reflect := func(field string, pos, vel, lim ir.Reg) {
		hi := cur.Cmp(ir.Gt, pos, lim)
		cur = cur.IfThen(hi, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			nv := th.Arith(ir.Sub, zero, vel)
			th.PutField(this, "Ball", field, nv)
			th.MoveTo(bounced, one)
			return th
		})
		lo := cur.Cmp(ir.Lt, pos, zero)
		cur = cur.IfThen(lo, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			nv2 := th.Arith(ir.Sub, zero, vel)
			th.PutField(this, "Ball", field, nv2)
			th.MoveTo(bounced, one)
			return th
		})
	}
	reflect("xVel", nx, xv, xLim)
	reflect("yVel", ny, yv, yLim)
	cur.Ret(bounced)

	// benchmark(n): 100 balls, n frames.
	bench := b.Class("BounceBench")
	bm := bench.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	seed := e.ConstInt(74755)
	rnd := e.Call(ClsRandom, "make", seed)
	cnt := e.ConstInt(100)
	balls := e.NewArray(ir.Ref("Ball"), cnt)
	z := e.ConstInt(0)
	mk := e.For(z, cnt, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.New("Ball")
		body.CallVoid("Ball", "init", o, rnd)
		body.ASet(balls, i, o)
		return body
	})
	bounces := mk.ConstInt(0)
	frames := mk.Move(bm.Param(0))
	done := mk.For(z, frames, 1, func(fb *ir.BlockBuilder, f ir.Reg) *ir.BlockBuilder {
		inner := fb.For(z, cnt, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
			o := body.AGet(balls, i)
			hit := body.Call("Ball", "bounce", o)
			body.ArithTo(bounces, ir.Add, bounces, hit)
			return body
		})
		return inner
	})
	done.Ret(bounces)
	finishMain(b, "BounceBench")
	return b.MustBuild()
}

// buildSieve: sieve of Eratosthenes (AWFY Sieve).
func buildSieve() *ir.Program {
	b := newAWFY("Sieve")
	c := b.Class("SieveBench")
	sv := c.StaticMethod("sieve", 1, ir.Int())
	se := sv.Entry()
	size := sv.Param(0)
	flags := se.NewArray(ir.Int(), size)
	primes := se.ConstInt(0)
	two := se.ConstInt(2)
	exit := se.For(two, size, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		f := body.AGet(flags, i)
		zero := body.ConstInt(0)
		isPrime := body.Cmp(ir.Eq, f, zero)
		return body.IfThen(isPrime, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			one := th.ConstInt(1)
			th.ArithTo(primes, ir.Add, primes, one)
			k := th.Move(i)
			mark := th.While(
				func(h *ir.BlockBuilder) ir.Reg { return h.Cmp(ir.Lt, k, size) },
				func(body2 *ir.BlockBuilder) *ir.BlockBuilder {
					body2.ASet(flags, k, one)
					body2.ArithTo(k, ir.Add, k, i)
					return body2
				})
			return mark
		})
	})
	exit.Ret(primes)

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	total := e.ConstInt(0)
	zero := e.ConstInt(0)
	sz := e.ConstInt(3000)
	done := e.For(zero, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		p := body.Call("SieveBench", "sieve", sz)
		body.ArithTo(total, ir.Add, total, p)
		return body
	})
	done.Ret(total)
	finishMain(b, "SieveBench")
	return b.MustBuild()
}

// buildMandelbrot: escape-time fractal over an n×n grid (AWFY Mandelbrot).
func buildMandelbrot() *ir.Program {
	b := newAWFY("Mandelbrot")
	c := b.Class("MandelbrotBench")
	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	size := bm.Param(0)
	sum := e.ConstInt(0)
	zero := e.ConstInt(0)
	fTwo := e.ConstFloat(2.0)
	fFour := e.ConstFloat(4.0)
	fSize := e.IntToFloat(size)
	limit := e.ConstInt(50)
	rows := e.For(zero, size, 1, func(rb *ir.BlockBuilder, y ir.Reg) *ir.BlockBuilder {
		ci := rb.FArith(ir.Sub, rb.FArith(ir.Div, rb.FArith(ir.Mul, fTwo, rb.IntToFloat(y)), fSize), rb.ConstFloat(1.0))
		cols := rb.For(zero, size, 1, func(cb *ir.BlockBuilder, x ir.Reg) *ir.BlockBuilder {
			cr := cb.FArith(ir.Sub, cb.FArith(ir.Div, cb.FArith(ir.Mul, fTwo, cb.IntToFloat(x)), fSize), cb.ConstFloat(1.5))
			zr := cb.ConstFloat(0)
			zi := cb.ConstFloat(0)
			it := cb.ConstInt(0)
			loop := cb.While(
				func(h *ir.BlockBuilder) ir.Reg {
					zr2 := h.FArith(ir.Mul, zr, zr)
					zi2 := h.FArith(ir.Mul, zi, zi)
					mag := h.FArith(ir.Add, zr2, zi2)
					inSet := h.Cmp(ir.Le, mag, fFour)
					under := h.Cmp(ir.Lt, it, limit)
					return h.Arith(ir.And, inSet, under)
				},
				func(body *ir.BlockBuilder) *ir.BlockBuilder {
					zr2 := body.FArith(ir.Mul, zr, zr)
					zi2 := body.FArith(ir.Mul, zi, zi)
					nzr := body.FArith(ir.Add, body.FArith(ir.Sub, zr2, zi2), cr)
					nzi := body.FArith(ir.Add, body.FArith(ir.Mul, fTwo, body.FArith(ir.Mul, zr, zi)), ci)
					body.MoveTo(zr, nzr)
					body.MoveTo(zi, nzi)
					one := body.ConstInt(1)
					body.ArithTo(it, ir.Add, it, one)
					return body
				})
			loop.ArithTo(sum, ir.Xor, sum, it)
			return loop
		})
		return cols
	})
	rows.Ret(sum)
	finishMain(b, "MandelbrotBench")
	return b.MustBuild()
}

// buildNBody: Jovian-planet N-body simulation (AWFY NBody).
func buildNBody() *ir.Program {
	b := newAWFY("NBody")
	body := b.Class("Body")
	for _, f := range []string{"x", "y", "z", "vx", "vy", "vz", "mass"} {
		body.Field(f, ir.Float())
	}

	sys := b.Class("NBodySystem")
	sys.Static("bodies", ir.Array(ir.Ref("Body")))

	cl := sys.Clinit()
	ce := cl.Entry()
	five := ce.ConstInt(5)
	arr := ce.NewArray(ir.Ref("Body"), five)
	// Sun + 4 planets (abridged constants).
	planets := [][7]float64{
		{0, 0, 0, 0, 0, 0, 39.47},
		{4.84, -1.16, -0.103, 0.606, 2.81, -0.0252, 0.0377},
		{8.34, 4.12, -0.403, -1.01, 1.82, 0.00841, 0.0113},
		{12.89, -15.11, -0.223, 1.08, 0.868, -0.0108, 0.0017},
		{15.38, -25.91, 0.179, 0.979, 0.594, -0.0347, 0.0020},
	}
	fields := []string{"x", "y", "z", "vx", "vy", "vz", "mass"}
	for i, pl := range planets {
		o := ce.New("Body")
		for k, f := range fields {
			v := ce.ConstFloat(pl[k])
			ce.PutField(o, "Body", f, v)
		}
		idx := ce.ConstInt(int64(i))
		ce.ASet(arr, idx, o)
	}
	ce.PutStatic("NBodySystem", "bodies", arr)
	ce.RetVoid()

	// advance(dt): pairwise gravity + integration.
	adv := sys.StaticMethod("advance", 0, ir.Void())
	ae := adv.Entry()
	bodies := ae.GetStatic("NBodySystem", "bodies")
	n := ae.ALen(bodies)
	zero := ae.ConstInt(0)
	one := ae.ConstInt(1)
	dt := ae.ConstFloat(0.01)
	outer := ae.For(zero, n, 1, func(ob *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		bi := ob.AGet(bodies, i)
		j0 := ob.Arith(ir.Add, i, one)
		inner := ob.For(j0, n, 1, func(ib *ir.BlockBuilder, j ir.Reg) *ir.BlockBuilder {
			bj := ib.AGet(bodies, j)
			dx := ib.FArith(ir.Sub, ib.GetField(bi, "Body", "x"), ib.GetField(bj, "Body", "x"))
			dy := ib.FArith(ir.Sub, ib.GetField(bi, "Body", "y"), ib.GetField(bj, "Body", "y"))
			dz := ib.FArith(ir.Sub, ib.GetField(bi, "Body", "z"), ib.GetField(bj, "Body", "z"))
			d2 := ib.FArith(ir.Add, ib.FArith(ir.Mul, dx, dx),
				ib.FArith(ir.Add, ib.FArith(ir.Mul, dy, dy), ib.FArith(ir.Mul, dz, dz)))
			dist := ib.Intrinsic(ir.IntrinsicSqrt, d2)
			mag := ib.FArith(ir.Div, dt, ib.FArith(ir.Mul, d2, dist))
			mi := ib.GetField(bi, "Body", "mass")
			mj := ib.GetField(bj, "Body", "mass")
			upd := func(vf string, d ir.Reg) {
				vi := ib.GetField(bi, "Body", vf)
				nvi := ib.FArith(ir.Sub, vi, ib.FArith(ir.Mul, d, ib.FArith(ir.Mul, mj, mag)))
				ib.PutField(bi, "Body", vf, nvi)
				vj := ib.GetField(bj, "Body", vf)
				nvj := ib.FArith(ir.Add, vj, ib.FArith(ir.Mul, d, ib.FArith(ir.Mul, mi, mag)))
				ib.PutField(bj, "Body", vf, nvj)
			}
			upd("vx", dx)
			upd("vy", dy)
			upd("vz", dz)
			return ib
		})
		return inner
	})
	move := outer.For(zero, n, 1, func(mb *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		bi := mb.AGet(bodies, i)
		for _, ax := range [][2]string{{"x", "vx"}, {"y", "vy"}, {"z", "vz"}} {
			p := mb.GetField(bi, "Body", ax[0])
			v := mb.GetField(bi, "Body", ax[1])
			np := mb.FArith(ir.Add, p, mb.FArith(ir.Mul, dt, v))
			mb.PutField(bi, "Body", ax[0], np)
		}
		return mb
	})
	move.RetVoid()

	bench := b.Class("NBodyBench")
	bm := bench.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	zero2 := e.ConstInt(0)
	done := e.For(zero2, bm.Param(0), 1, func(body2 *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		body2.CallVoid("NBodySystem", "advance")
		return body2
	})
	bodies2 := done.GetStatic("NBodySystem", "bodies")
	z3 := done.ConstInt(0)
	b0 := done.AGet(bodies2, z3)
	x := done.GetField(b0, "Body", "x")
	done.Ret(done.FloatToInt(done.FArith(ir.Mul, x, done.ConstFloat(1e6))))
	finishMain(b, "NBodyBench")
	return b.MustBuild()
}

// buildPermute: count permutations of a small array (AWFY Permute).
func buildPermute() *ir.Program {
	b := newAWFY("Permute")
	c := b.Class("PermuteBench")
	c.Static("count", ir.Int())
	c.Static("v", ir.Array(ir.Int()))

	sw := c.StaticMethod("swap", 2, ir.Void())
	se := sw.Entry()
	arr := se.GetStatic("PermuteBench", "v")
	a := se.AGet(arr, sw.Param(0))
	b2 := se.AGet(arr, sw.Param(1))
	se.ASet(arr, sw.Param(0), b2)
	se.ASet(arr, sw.Param(1), a)
	se.RetVoid()

	pm := c.StaticMethod("permute", 1, ir.Void())
	pe := pm.Entry()
	nn := pm.Param(0)
	cnt := pe.GetStatic("PermuteBench", "count")
	one := pe.ConstInt(1)
	nc := pe.Arith(ir.Add, cnt, one)
	pe.PutStatic("PermuteBench", "count", nc)
	zero := pe.ConstInt(0)
	notZero := pe.Cmp(ir.Ne, nn, zero)
	rec := pm.NewBlock()
	ret := pm.NewBlock()
	pe.If(notZero, rec, ret)
	ret.RetVoid()
	n1 := rec.Arith(ir.Sub, nn, one)
	rec.CallVoid("PermuteBench", "permute", n1)
	loop := rec.For(zero, n1, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		body.CallVoid("PermuteBench", "swap", n1, i)
		body.CallVoid("PermuteBench", "permute", n1)
		body.CallVoid("PermuteBench", "swap", n1, i)
		return body
	})
	loop.RetVoid()

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	zero2 := e.ConstInt(0)
	done := e.For(zero2, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		body.PutStatic("PermuteBench", "count", zero2)
		six := body.ConstInt(6)
		arr2 := body.NewArray(ir.Int(), six)
		body.PutStatic("PermuteBench", "v", arr2)
		body.CallVoid("PermuteBench", "permute", six)
		return body
	})
	done.Ret(done.GetStatic("PermuteBench", "count"))
	finishMain(b, "PermuteBench")
	return b.MustBuild()
}

// buildQueens: 8-queens backtracking (AWFY Queens).
func buildQueens() *ir.Program {
	b := newAWFY("Queens")
	c := b.Class("QueensBench")
	c.Static("freeRows", ir.Array(ir.Int()))
	c.Static("freeMaxs", ir.Array(ir.Int()))
	c.Static("freeMins", ir.Array(ir.Int()))
	c.Static("queenRows", ir.Array(ir.Int()))

	// place(c): try all rows in column c; returns 1 on success.
	pl := c.StaticMethod("place", 1, ir.Int())
	pe := pl.Entry()
	col := pl.Param(0)
	eight := pe.ConstInt(8)
	done := pe.Cmp(ir.Ge, col, eight)
	found := pl.NewBlock()
	try := pl.NewBlock()
	pe.If(done, found, try)
	one := found.ConstInt(1)
	found.Ret(one)

	zero := try.ConstInt(0)
	seven := try.ConstInt(7)
	rows := try.GetStatic("QueensBench", "freeRows")
	maxs := try.GetStatic("QueensBench", "freeMaxs")
	mins := try.GetStatic("QueensBench", "freeMins")
	qr := try.GetStatic("QueensBench", "queenRows")
	loop := try.For(zero, eight, 1, func(body *ir.BlockBuilder, r ir.Reg) *ir.BlockBuilder {
		d1 := body.Arith(ir.Add, r, col)
		d2t := body.Arith(ir.Sub, r, col)
		d2 := body.Arith(ir.Add, d2t, seven)
		fr := body.AGet(rows, r)
		fm := body.AGet(maxs, d1)
		fn := body.AGet(mins, d2)
		free := body.Arith(ir.And, fr, body.Arith(ir.And, fm, fn))
		return body.IfThen(free, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			zeroI := th.ConstInt(0)
			oneI := th.ConstInt(1)
			th.ASet(qr, col, r)
			th.ASet(rows, r, zeroI)
			th.ASet(maxs, d1, zeroI)
			th.ASet(mins, d2, zeroI)
			nc := th.Arith(ir.Add, col, oneI)
			ok := th.Call("QueensBench", "place", nc)
			th.ASet(rows, r, oneI)
			th.ASet(maxs, d1, oneI)
			th.ASet(mins, d2, oneI)
			ret := th.IfThen(ok, func(t2 *ir.BlockBuilder) *ir.BlockBuilder {
				t2.Ret(oneI)
				return t2.Dead()
			})
			return ret
		})
	})
	loop.Ret(zero)

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	z := e.ConstInt(0)
	total := e.ConstInt(0)
	outer := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		eightI := body.ConstInt(8)
		sixteen := body.ConstInt(16)
		rows2 := body.NewArray(ir.Int(), eightI)
		maxs2 := body.NewArray(ir.Int(), sixteen)
		mins2 := body.NewArray(ir.Int(), sixteen)
		qr2 := body.NewArray(ir.Int(), eightI)
		oneI := body.ConstInt(1)
		zeroI := body.ConstInt(0)
		f1 := body.For(zeroI, eightI, 1, func(fb *ir.BlockBuilder, k ir.Reg) *ir.BlockBuilder {
			fb.ASet(rows2, k, oneI)
			return fb
		})
		f2 := f1.For(zeroI, sixteen, 1, func(fb *ir.BlockBuilder, k ir.Reg) *ir.BlockBuilder {
			fb.ASet(maxs2, k, oneI)
			fb.ASet(mins2, k, oneI)
			return fb
		})
		f2.PutStatic("QueensBench", "freeRows", rows2)
		f2.PutStatic("QueensBench", "freeMaxs", maxs2)
		f2.PutStatic("QueensBench", "freeMins", mins2)
		f2.PutStatic("QueensBench", "queenRows", qr2)
		ok := f2.Call("QueensBench", "place", zeroI)
		f2.ArithTo(total, ir.Add, total, ok)
		return f2
	})
	outer.Ret(total)
	finishMain(b, "QueensBench")
	return b.MustBuild()
}

// buildTowers: towers of Hanoi with disk objects (AWFY Towers).
func buildTowers() *ir.Program {
	b := newAWFY("Towers")
	d := b.Class("TowersDisk")
	d.Field("size", ir.Int())
	d.Field("next", ir.Ref("TowersDisk"))

	c := b.Class("TowersBench")
	c.Static("piles", ir.Array(ir.Ref("TowersDisk")))
	c.Static("moves", ir.Int())

	push := c.StaticMethod("push", 2, ir.Void()) // (pile, disk)
	pe := push.Entry()
	piles := pe.GetStatic("TowersBench", "piles")
	top := pe.AGet(piles, push.Param(0))
	diskArg := pe.Move(push.Param(1))
	pe.PutField(diskArg, "TowersDisk", "next", top)
	pe.ASet(piles, push.Param(0), diskArg)
	pe.RetVoid()

	pop := c.StaticMethod("pop", 1, ir.Ref("TowersDisk"))
	oe := pop.Entry()
	piles2 := oe.GetStatic("TowersBench", "piles")
	top2 := oe.AGet(piles2, pop.Param(0))
	nxt := oe.GetField(top2, "TowersDisk", "next")
	oe.ASet(piles2, pop.Param(0), nxt)
	nl := oe.Null()
	oe.PutField(top2, "TowersDisk", "next", nl)
	oe.Ret(top2)

	mv := c.StaticMethod("moveTopDisk", 2, ir.Void())
	me := mv.Entry()
	dd := me.Call("TowersBench", "pop", mv.Param(0))
	me.CallVoid("TowersBench", "push", mv.Param(1), dd)
	mm := me.GetStatic("TowersBench", "moves")
	one := me.ConstInt(1)
	me.PutStatic("TowersBench", "moves", me.Arith(ir.Add, mm, one))
	me.RetVoid()

	mp := c.StaticMethod("movePile", 3, ir.Void()) // (n, from, to)
	me2 := mp.Entry()
	n := mp.Param(0)
	from := mp.Param(1)
	to := mp.Param(2)
	one2 := me2.ConstInt(1)
	isOne := me2.Cmp(ir.Le, n, one2)
	single := mp.NewBlock()
	multi := mp.NewBlock()
	me2.If(isOne, single, multi)
	single.CallVoid("TowersBench", "moveTopDisk", from, to)
	single.RetVoid()
	three := multi.ConstInt(3)
	other := multi.Arith(ir.Sub, multi.Arith(ir.Sub, three, from), to)
	n1 := multi.Arith(ir.Sub, n, one2)
	multi.CallVoid("TowersBench", "movePile", n1, from, other)
	multi.CallVoid("TowersBench", "moveTopDisk", from, to)
	multi.CallVoid("TowersBench", "movePile", n1, other, to)
	multi.RetVoid()

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	z := e.ConstInt(0)
	total := e.ConstInt(0)
	outer := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, it ir.Reg) *ir.BlockBuilder {
		three := body.ConstInt(3)
		arr := body.NewArray(ir.Ref("TowersDisk"), three)
		body.PutStatic("TowersBench", "piles", arr)
		zeroI := body.ConstInt(0)
		body.PutStatic("TowersBench", "moves", zeroI)
		// Build pile 0 with 10 disks, largest first.
		ten := body.ConstInt(10)
		fill := body.For(zeroI, ten, 1, func(fb *ir.BlockBuilder, k ir.Reg) *ir.BlockBuilder {
			disk := fb.New("TowersDisk")
			sz := fb.Arith(ir.Sub, ten, k)
			fb.PutField(disk, "TowersDisk", "size", sz)
			fb.CallVoid("TowersBench", "push", zeroI, disk)
			return fb
		})
		oneI := fill.ConstInt(1)
		fill.CallVoid("TowersBench", "movePile", ten, zeroI, oneI)
		mvs := fill.GetStatic("TowersBench", "moves")
		fill.ArithTo(total, ir.Add, total, mvs)
		return fill
	})
	outer.Ret(total)
	finishMain(b, "TowersBench")
	return b.MustBuild()
}

// buildList: linked-list tail recursion (AWFY List).
func buildList() *ir.Program {
	b := newAWFY("List")
	el := b.Class("ListElement")
	el.Field("val", ir.Int())
	el.Field("next", ir.Ref("ListElement"))

	c := b.Class("ListBench")
	mk := c.StaticMethod("makeList", 1, ir.Ref("ListElement"))
	me := mk.Entry()
	n := mk.Param(0)
	zero := me.ConstInt(0)
	empty := me.Cmp(ir.Le, n, zero)
	base := mk.NewBlock()
	cons := mk.NewBlock()
	me.If(empty, base, cons)
	base.Ret(base.Null())
	one := cons.ConstInt(1)
	n1 := cons.Arith(ir.Sub, n, one)
	rest := cons.Call("ListBench", "makeList", n1)
	o := cons.New("ListElement")
	cons.PutField(o, "ListElement", "val", n)
	cons.PutField(o, "ListElement", "next", rest)
	cons.Ret(o)

	ln := c.StaticMethod("length", 1, ir.Int())
	le := ln.Entry()
	nl := le.Null()
	isNil := le.Cmp(ir.Eq, ln.Param(0), nl)
	zb := ln.NewBlock()
	rb := ln.NewBlock()
	le.If(isNil, zb, rb)
	zb.Ret(zb.ConstInt(0))
	nxt := rb.GetField(ln.Param(0), "ListElement", "next")
	rest2 := rb.Call("ListBench", "length", nxt)
	one2 := rb.ConstInt(1)
	rb.Ret(rb.Arith(ir.Add, rest2, one2))

	// isShorterThan(x, y).
	sh := c.StaticMethod("isShorterThan", 2, ir.Int())
	she := sh.Entry()
	x := she.Move(sh.Param(0))
	y := she.Move(sh.Param(1))
	nl2 := she.Null()
	loop := she.While(
		func(h *ir.BlockBuilder) ir.Reg { return h.Cmp(ir.Ne, y, nl2) },
		func(body *ir.BlockBuilder) *ir.BlockBuilder {
			xNil := body.Cmp(ir.Eq, x, nl2)
			cont := body.IfThen(xNil, func(th *ir.BlockBuilder) *ir.BlockBuilder {
				one3 := th.ConstInt(1)
				th.Ret(one3)
				return th.Dead()
			})
			nx := cont.GetField(x, "ListElement", "next")
			ny := cont.GetField(y, "ListElement", "next")
			cont.MoveTo(x, nx)
			cont.MoveTo(y, ny)
			return cont
		})
	loop.Ret(loop.ConstInt(0))

	// tail(x, y, z) — the classic Takeuchi-style list recursion.
	tl := c.StaticMethod("tail", 3, ir.Ref("ListElement"))
	te := tl.Entry()
	short := te.Call("ListBench", "isShorterThan", tl.Param(1), tl.Param(0))
	recB := tl.NewBlock()
	baseB := tl.NewBlock()
	te.If(short, recB, baseB)
	baseB.Ret(tl.Param(2))
	nxX := recB.GetField(tl.Param(0), "ListElement", "next")
	nxY := recB.GetField(tl.Param(1), "ListElement", "next")
	nxZ := recB.GetField(tl.Param(2), "ListElement", "next")
	r1 := recB.Call("ListBench", "tail", nxX, tl.Param(1), tl.Param(2))
	r2 := recB.Call("ListBench", "tail", nxY, tl.Param(2), tl.Param(0))
	r3 := recB.Call("ListBench", "tail", nxZ, tl.Param(0), tl.Param(1))
	recB.Ret(recB.Call("ListBench", "tail", r1, r2, r3))

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	z := e.ConstInt(0)
	total := e.ConstInt(0)
	outer := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		k15 := body.ConstInt(15)
		k10 := body.ConstInt(10)
		k6 := body.ConstInt(6)
		lx := body.Call("ListBench", "makeList", k15)
		ly := body.Call("ListBench", "makeList", k10)
		lz := body.Call("ListBench", "makeList", k6)
		r := body.Call("ListBench", "tail", lx, ly, lz)
		ln2 := body.Call("ListBench", "length", r)
		body.ArithTo(total, ir.Add, total, ln2)
		return body
	})
	outer.Ret(total)
	finishMain(b, "ListBench")
	return b.MustBuild()
}

// buildStorage: random tree of arrays (AWFY Storage).
func buildStorage() *ir.Program {
	b := newAWFY("Storage")
	c := b.Class("StorageBench")
	c.Static("count", ir.Int())

	// buildTree(depth, random) -> Object array tree.
	bt := c.StaticMethod("buildTree", 2, ir.Array(refObj()))
	be := bt.Entry()
	depth := bt.Param(0)
	rnd := bt.Param(1)
	cnt := be.GetStatic("StorageBench", "count")
	one := be.ConstInt(1)
	be.PutStatic("StorageBench", "count", be.Arith(ir.Add, cnt, one))
	zero := be.ConstInt(0)
	leaf := be.Cmp(ir.Le, depth, zero)
	leafB := bt.NewBlock()
	nodeB := bt.NewBlock()
	be.If(leaf, leafB, nodeB)
	four0 := leafB.ConstInt(4)
	leafB.Ret(leafB.NewArray(refObj(), four0))
	rv := nodeB.Call(ClsRandom, "next", rnd)
	four := nodeB.ConstInt(4)
	two := nodeB.ConstInt(2)
	width := nodeB.Arith(ir.Add, two, nodeB.Arith(ir.Rem, rv, four))
	arr := nodeB.NewArray(refObj(), width)
	d1 := nodeB.Arith(ir.Sub, depth, one)
	loop := nodeB.For(zero, width, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		child := body.Call("StorageBench", "buildTree", d1, rnd)
		body.ASet(arr, i, child)
		return body
	})
	loop.Ret(arr)

	bm := c.StaticMethod("benchmark", 1, ir.Int())
	e := bm.Entry()
	z := e.ConstInt(0)
	total := e.ConstInt(0)
	outer := e.For(z, bm.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		body.PutStatic("StorageBench", "count", z)
		seed := body.ConstInt(74755)
		rnd := body.Call(ClsRandom, "make", seed)
		seven := body.ConstInt(7)
		body.Call("StorageBench", "buildTree", seven, rnd)
		cnt2 := body.GetStatic("StorageBench", "count")
		body.ArithTo(total, ir.Add, total, cnt2)
		return body
	})
	outer.Ret(total)
	finishMain(b, "StorageBench")
	return b.MustBuild()
}
