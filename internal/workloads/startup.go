package workloads

import (
	"fmt"

	"nimage/internal/ir"
)

// ClsStartup is the runtime-initialization entry every workload calls
// first; it stands in for the Native-Image/SubstrateVM startup internals,
// which the paper's profiler observes even "during the initialization of
// the execution environment" (Sec. 6.1).
const ClsStartup = "svm.Startup"

// startupScale sizes the synthetic runtime around a workload.
type startupScale struct {
	// packages are the generated library subsystems (hot startup code
	// interleaved with reachable-but-cold code).
	packages []pkgSpec
	// resources count/size embedded resource blobs.
	resources     int
	resourceBytes int
}

// awfyScale is the runtime surrounding AWFY benchmarks: a JDK-ish set of
// cold subsystems.
func awfyScale() startupScale {
	return startupScale{
		packages: []pkgSpec{
			{name: "java.io", classes: 16, methods: 8, body: 26, data: 14, hotPeriod: 4, reads: 2},
			{name: "java.nio", classes: 14, methods: 8, body: 28, data: 12, hotPeriod: 5, reads: 2},
			{name: "java.util.regex", classes: 12, methods: 8, body: 30, data: 10},
			{name: "java.util.concurrent", classes: 14, methods: 7, body: 24, data: 10, hotPeriod: 6, reads: 2},
			{name: "java.text", classes: 12, methods: 7, body: 26, data: 18, hotPeriod: 4, reads: 3},
			{name: "java.time", classes: 12, methods: 7, body: 24, data: 14, hotPeriod: 5, reads: 2},
			{name: "sun.security", classes: 14, methods: 8, body: 28, data: 12, hotPeriod: 6, reads: 2},
			{name: "svm.gc", classes: 8, methods: 7, body: 30, data: 8, hotPeriod: 3, reads: 2},
			{name: "svm.jni", classes: 8, methods: 6, body: 26, data: 8, hotPeriod: 4, reads: 2},
			{name: "svm.reflect", classes: 10, methods: 7, body: 26, data: 12},
		},
		resources:     4,
		resourceBytes: 6 * 1024,
	}
}

// addStartup declares svm.Startup. The executed path initializes the
// runtime (reads properties, builds the args list, touches encoder
// tables); the cold packages are referenced behind never-taken branches so
// the conservative analysis includes them (Sec. 2).
func addStartup(b *ir.Builder, scale startupScale) {
	boots := addPackages(b, scale.packages)
	for i := 0; i < scale.resources; i++ {
		b.Resource(fmt.Sprintf("META-INF/resource-%d.bin", i), scale.resourceBytes)
	}

	c := b.Class(ClsStartup)
	c.Static("initialized", ir.Int())
	c.Static("argsList", ir.Ref(ClsArrayList))
	c.Static("encoder", ir.Array(ir.Int()))
	c.Static("banner", ir.String())

	// The clinit prepares startup data consumed by the executed path.
	cl := c.Clinit()
	e := cl.Entry()
	n := e.ConstInt(512)
	enc := e.NewArray(ir.Int(), n)
	zero := e.ConstInt(0)
	k13 := e.ConstInt(13)
	k251 := e.ConstInt(251)
	exit := e.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		v := body.Arith(ir.Mul, i, k13)
		v2 := body.Arith(ir.Rem, v, k251)
		body.ASet(enc, i, v2)
		return body
	})
	exit.PutStatic(ClsStartup, "encoder", enc)
	ban := exit.Str("SubstrateVM native image")
	bi := exit.Intrinsic(ir.IntrinsicIntern, ban)
	exit.PutStatic(ClsStartup, "banner", bi)
	exit.RetVoid()

	// initialize(flags): the hot runtime-startup path.
	init := c.StaticMethod("initialize", 1, ir.Void())
	ie := init.Entry()
	// Idempotence guard.
	done := ie.GetStatic(ClsStartup, "initialized")
	ret := init.NewBlock()
	ret.RetVoid()
	work := init.NewBlock()
	ie.If(done, ret, work)

	one := work.ConstInt(1)
	work.PutStatic(ClsStartup, "initialized", one)
	// Read a handful of properties, as the VM startup does.
	for _, prop := range []string{"java.vm.name", "file.encoding", "user.dir", "user.timezone"} {
		pr := work.Str(prop)
		work.Call(ClsSystem, "getProperty", pr)
	}
	// Build the argument list.
	four := work.ConstInt(4)
	lst := work.Call(ClsArrayList, "make", four)
	a0 := work.Str("app")
	work.CallVoid(ClsArrayList, "add", lst, a0)
	work.PutStatic(ClsStartup, "argsList", lst)
	// Boot every library subsystem: the hot startup methods execute
	// (scattered across the namespace), the cold remainder stays behind
	// never-taken branches inside the boots.
	seedAcc := work.ConstInt(1)
	for _, boot := range boots {
		cls, meth := splitTarget(boot)
		r := work.Call(cls, meth, seedAcc)
		work.MoveTo(seedAcc, r)
	}
	// Touch part of the encoder table.
	enc2 := work.GetStatic(ClsStartup, "encoder")
	sixteen := work.ConstInt(16)
	zero2 := work.ConstInt(0)
	sum := work.ConstInt(0)
	after := work.For(zero2, sixteen, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		v := body.AGet(enc2, i)
		body.ArithTo(sum, ir.Add, sum, v)
		return body
	})
	after.RetVoid()
}

// splitTarget splits "pkg.Class.method" at the final dot.
func splitTarget(t string) (string, string) {
	for i := len(t) - 1; i >= 0; i-- {
		if t[i] == '.' {
			return t[:i], t[i+1:]
		}
	}
	return t, ""
}

// emitRuntimeInit emits the standard prologue of a workload main: call
// Startup.initialize(0).
func emitRuntimeInit(e *ir.BlockBuilder) {
	zero := e.ConstInt(0)
	e.CallVoid(ClsStartup, "initialize", zero)
}
