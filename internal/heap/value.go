// Package heap models the build-time Java heap of the simulated
// Native-Image toolchain: objects, arrays, strings, static-field storage,
// the interned-string table, and the heap snapshot embedded in the binary.
//
// The snapshot is obtained by traversing the object graph in a well-defined
// order from the static fields of reachable classes and from constants in
// the code section (Sec. 2). Each snapshotted object records the first path
// that led to its inclusion and, for roots, the heap-inclusion reason — the
// inputs of the heap-path identity strategy (Sec. 5.3).
package heap

import (
	"fmt"
	"math"
)

// ValueKind discriminates runtime value kinds.
type ValueKind uint8

const (
	// VInt is a 64-bit integer value.
	VInt ValueKind = iota
	// VFloat is a 64-bit float value.
	VFloat
	// VRef is an object/array reference; a nil Ref is the null reference.
	VRef
)

// Value is a build-time or runtime value of the mini language.
type Value struct {
	Kind ValueKind
	// Bits holds the integer value or the IEEE bits of the float.
	Bits int64
	// Ref is the referee for VRef values (nil = null).
	Ref *Object
}

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Kind: VInt, Bits: v} }

// FloatVal makes a float value.
func FloatVal(v float64) Value { return Value{Kind: VFloat, Bits: int64(math.Float64bits(v))} }

// RefVal makes a reference value.
func RefVal(o *Object) Value { return Value{Kind: VRef, Ref: o} }

// Null is the null reference value.
func Null() Value { return Value{Kind: VRef} }

// Int returns the integer payload.
func (v Value) Int() int64 { return v.Bits }

// Float returns the float payload.
func (v Value) Float() float64 { return math.Float64frombits(uint64(v.Bits)) }

// IsNull reports whether the value is the null reference.
func (v Value) IsNull() bool { return v.Kind == VRef && v.Ref == nil }

// Truthy reports whether the value is "true" for conditional branches:
// nonzero number or non-null reference.
func (v Value) Truthy() bool {
	if v.Kind == VRef {
		return v.Ref != nil
	}
	return v.Bits != 0
}

func (v Value) String() string {
	switch v.Kind {
	case VInt:
		return fmt.Sprintf("%d", v.Bits)
	case VFloat:
		return fmt.Sprintf("%g", v.Float())
	case VRef:
		if v.Ref == nil {
			return "null"
		}
		return v.Ref.TypeName() + "@" + fmt.Sprintf("%p", v.Ref)
	default:
		return "<invalid>"
	}
}
