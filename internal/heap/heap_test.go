package heap

import (
	"strings"
	"testing"
	"testing/quick"

	"nimage/internal/ir"
)

// testClasses builds a tiny resolved program with a few classes for heap
// tests: String, Node{next Node, val long}, Pair{a String, b Node}.
func testClasses(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("heaptest")
	b.Class(ir.StringClass)
	b.Class("Node").Field("next", ir.Ref("Node")).Field("val", ir.Int())
	b.Class("Pair").Field("a", ir.String()).Field("b", ir.Ref("Node"))
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestNewObjectZeroed(t *testing.T) {
	p := testClasses(t)
	o := NewObject(p.Class("Node"))
	if !o.Fields[0].IsNull() {
		t.Errorf("ref field not null: %v", o.Fields[0])
	}
	if o.Fields[1].Kind != VInt || o.Fields[1].Int() != 0 {
		t.Errorf("int field not zero: %v", o.Fields[1])
	}
}

func TestFieldAndElemAccess(t *testing.T) {
	p := testClasses(t)
	n := NewObject(p.Class("Node"))
	valF := p.Class("Node").LookupField("val")
	n.SetField(valF, IntVal(7))
	if got := n.GetField(valF).Int(); got != 7 {
		t.Errorf("val = %d", got)
	}
	a := NewArray(ir.Int(), 3)
	a.SetElem(1, IntVal(5))
	if got := a.GetElem(1).Int(); got != 5 {
		t.Errorf("elem = %d", got)
	}
	if a.Len() != 3 {
		t.Errorf("len = %d", a.Len())
	}
}

func TestPackedByteArray(t *testing.T) {
	a := NewByteArray(1000)
	if a.Len() != 1000 {
		t.Fatalf("len = %d", a.Len())
	}
	if got := a.SnapshotSize(); got != 16+1000 {
		t.Errorf("size = %d", got)
	}
	v1, v2 := a.GetElem(5), a.GetElem(5)
	if v1 != v2 {
		t.Error("packed reads not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Error("write to packed array did not panic")
		}
	}()
	a.SetElem(0, IntVal(1))
}

func TestSnapshotSizes(t *testing.T) {
	p := testClasses(t)
	n := NewObject(p.Class("Node"))
	if got := n.SnapshotSize(); got != 16+2*8 {
		t.Errorf("node size = %d", got)
	}
	s := NewString(p.Class(ir.StringClass), "hello")
	if got := s.SnapshotSize(); got != 16+8+8 {
		t.Errorf("string size = %d", got)
	}
	a := NewArray(ir.Float(), 4)
	if got := a.SnapshotSize(); got != 16+32 {
		t.Errorf("array size = %d", got)
	}
}

func TestInterns(t *testing.T) {
	p := testClasses(t)
	in := NewInterns(p.Class(ir.StringClass))
	a := in.Intern("x")
	b := in.Intern("x")
	c := in.Intern("y")
	if a != b {
		t.Error("same literal interned twice")
	}
	if a == c {
		t.Error("distinct literals share object")
	}
	if len(in.All()) != 2 {
		t.Errorf("interned count = %d", len(in.All()))
	}
}

func TestStaticsDefaults(t *testing.T) {
	p := testClasses(t)
	st := NewStatics()
	f := &ir.Field{Name: "tmp", Type: ir.Ref("Node"), Static: true}
	f.Class = p.Class("Node")
	if !st.Get(f).IsNull() {
		t.Error("unset ref static not null")
	}
	st.Set(f, IntVal(3))
	if st.Get(f).Int() != 3 {
		t.Error("set/get static")
	}
}

func TestBuildSnapshotOrderAndParents(t *testing.T) {
	p := testClasses(t)
	node := p.Class("Node")
	nextF := node.LookupField("next")

	// chain: a -> b -> c; root is a.
	a, b2, c := NewObject(node), NewObject(node), NewObject(node)
	a.SetField(nextF, RefVal(b2))
	b2.SetField(nextF, RefVal(c))

	s := BuildSnapshot([]RootRef{{Obj: a, Reason: "Main.head"}})
	if len(s.Objects) != 3 {
		t.Fatalf("objects = %d", len(s.Objects))
	}
	if s.Objects[0] != a || s.Objects[1] != b2 || s.Objects[2] != c {
		t.Fatal("encounter order wrong")
	}
	if !a.Root || a.Reason != "Main.head" || a.Parent != nil {
		t.Errorf("root metadata: %+v", a)
	}
	if b2.Parent != a || b2.ParentField != nextF {
		t.Errorf("b parent: %v %v", b2.Parent, b2.ParentField)
	}
	for i, o := range s.Objects {
		if o.SeqID != i {
			t.Errorf("SeqID[%d] = %d", i, o.SeqID)
		}
		if !o.InSnapshot || o.Size <= 0 {
			t.Errorf("object %d metadata: snap=%v size=%d", i, o.InSnapshot, o.Size)
		}
	}
}

func TestBuildSnapshotSharedAndCyclic(t *testing.T) {
	p := testClasses(t)
	node := p.Class("Node")
	nextF := node.LookupField("next")

	// cycle: x -> y -> x, plus second root z -> y (y already included).
	x, y, z := NewObject(node), NewObject(node), NewObject(node)
	x.SetField(nextF, RefVal(y))
	y.SetField(nextF, RefVal(x))
	z.SetField(nextF, RefVal(y))

	s := BuildSnapshot([]RootRef{
		{Obj: x, Reason: "A.f"},
		{Obj: z, Reason: "B.g"},
	})
	if len(s.Objects) != 3 {
		t.Fatalf("objects = %d (cycle mishandled?)", len(s.Objects))
	}
	// y's first path must be via x, not z.
	if y.Parent != x {
		t.Errorf("y.Parent = %v", y.Parent)
	}
	if z.Parent != nil || !z.Root {
		t.Errorf("z should be root")
	}
}

func TestBuildSnapshotArrayParents(t *testing.T) {
	p := testClasses(t)
	node := p.Class("Node")
	arr := NewArray(ir.Ref("Node"), 3)
	n := NewObject(node)
	arr.SetElem(2, RefVal(n))
	s := BuildSnapshot([]RootRef{{Obj: arr, Reason: ReasonDataSection}})
	if len(s.Objects) != 2 {
		t.Fatalf("objects = %d", len(s.Objects))
	}
	if n.Parent != arr || n.ParentIndex != 2 || n.ParentField != nil {
		t.Errorf("array parent: %v idx=%d", n.Parent, n.ParentIndex)
	}
}

func TestBuildSnapshotDuplicateRootKeepsFirstReason(t *testing.T) {
	p := testClasses(t)
	o := NewObject(p.Class("Node"))
	s := BuildSnapshot([]RootRef{
		{Obj: o, Reason: "first"},
		{Obj: o, Reason: "second"},
	})
	if len(s.Objects) != 1 || o.Reason != "first" {
		t.Fatalf("objects=%d reason=%q", len(s.Objects), o.Reason)
	}
	if len(s.Roots) != 1 {
		t.Fatalf("roots = %d", len(s.Roots))
	}
}

func TestLayoutAlignedAndNonOverlapping(t *testing.T) {
	p := testClasses(t)
	var objs []*Object
	objs = append(objs, NewString(p.Class(ir.StringClass), "abc"))
	objs = append(objs, NewObject(p.Class("Node")))
	objs = append(objs, NewByteArray(13))
	for _, o := range objs {
		o.Size = o.SnapshotSize()
	}
	total := Layout(objs)
	var prevEnd int64
	for i, o := range objs {
		if o.Offset%8 != 0 {
			t.Errorf("object %d offset %d not aligned", i, o.Offset)
		}
		if o.Offset < prevEnd {
			t.Errorf("object %d overlaps previous", i)
		}
		prevEnd = o.Offset + o.Size
	}
	if total < prevEnd {
		t.Errorf("total %d < end %d", total, prevEnd)
	}
}

func TestValueTruthiness(t *testing.T) {
	f := func(v int64) bool {
		return IntVal(v).Truthy() == (v != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Null().Truthy() {
		t.Error("null is truthy")
	}
	p := testClasses(t)
	if !RefVal(NewObject(p.Class("Node"))).Truthy() {
		t.Error("object is falsy")
	}
	if FloatVal(0).Truthy() || !FloatVal(1.5).Truthy() {
		t.Error("float truthiness")
	}
}

func TestEntityInspection(t *testing.T) {
	p := testClasses(t)
	pair := NewObject(p.Class("Pair"))
	str := NewString(p.Class(ir.StringClass), "s")
	n := NewObject(p.Class("Node"))
	pair.SetField(p.Class("Pair").LookupField("a"), RefVal(str))
	pair.SetField(p.Class("Pair").LookupField("b"), RefVal(n))

	e := ObjEntity(pair)
	if !e.IsObjectInstance() || e.IsArray() || e.IsNull() || e.IsPrimitive() {
		t.Error("pair classification")
	}
	if e.NumFields() != 2 {
		t.Fatalf("NumFields = %d", e.NumFields())
	}
	fa := e.GetFieldWrapper(0)
	if !fa.IsString() {
		t.Error("field a should be string")
	}
	fb := e.GetFieldWrapper(1)
	if fb.Type().FullyQualifiedName() != "Node" {
		t.Errorf("field b type = %s", fb.Type())
	}

	arr := NewArray(ir.Int(), 2)
	arr.SetElem(0, IntVal(9))
	ae := ObjEntity(arr)
	if !ae.IsArray() || ae.Length() != 2 {
		t.Error("array classification")
	}
	if ae.GetElementWrapper(0).Value().Int() != 9 {
		t.Error("element wrapper value")
	}
	if !ae.GetElementWrapper(0).IsPrimitive() {
		t.Error("int element should be primitive")
	}

	ne := ObjEntity(nil)
	if !ne.IsNull() {
		t.Error("nil entity should be null")
	}
}

func TestEntityRootMetadata(t *testing.T) {
	p := testClasses(t)
	node := p.Class("Node")
	nextF := node.LookupField("next")
	a, b2 := NewObject(node), NewObject(node)
	a.SetField(nextF, RefVal(b2))
	BuildSnapshot([]RootRef{{Obj: a, Reason: ReasonInternedString}})

	ea := ObjEntity(a)
	if !ea.IsRoot() || ea.InclusionReason() != ReasonInternedString {
		t.Error("root metadata via entity")
	}
	eb := ObjEntity(b2)
	if eb.IsRoot() || eb.FirstParent() != a {
		t.Error("child metadata via entity")
	}
}

func TestValueString(t *testing.T) {
	p := testClasses(t)
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(42), "42"},
		{FloatVal(1.5), "1.5"},
		{Null(), "null"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	o := NewObject(p.Class("Node"))
	if s := RefVal(o).String(); !strings.HasPrefix(s, "Node@") {
		t.Errorf("object string = %q", s)
	}
}

func TestNewStringRequiresStringClass(t *testing.T) {
	p := testClasses(t)
	defer func() {
		if recover() == nil {
			t.Fatal("NewString accepted a non-string class")
		}
	}()
	NewString(p.Class("Node"), "boom")
}

func TestEntityTypeFallbacks(t *testing.T) {
	p := testClasses(t)
	_ = p
	// A primitive float value types as double regardless of slot type.
	fe := ValEntity(FloatVal(2.0), ir.Ref("whatever"))
	if fe.Type().FullyQualifiedName() != "double" {
		t.Errorf("float entity type = %s", fe.Type())
	}
	// A null reference types as the declared slot type.
	ne := ValEntity(Null(), ir.Ref("Node"))
	if ne.Type().FullyQualifiedName() != "Node" {
		t.Errorf("null entity type = %s", ne.Type())
	}
	// An integer read from an int slot types as long.
	ie := ValEntity(IntVal(3), ir.Int())
	if ie.Type().FullyQualifiedName() != "long" {
		t.Errorf("int entity type = %s", ie.Type())
	}
	if ie.NumFields() != 0 {
		t.Error("primitive entity has fields")
	}
}

func TestInternsRemoveEmpty(t *testing.T) {
	p := testClasses(t)
	in := NewInterns(p.Class(ir.StringClass))
	in.Intern("keep")
	in.Remove(nil) // no-op
	if len(in.All()) != 1 {
		t.Error("Remove(nil) changed the table")
	}
	in.Remove([]string{"keep", "absent"})
	if len(in.All()) != 0 {
		t.Error("Remove missed an entry")
	}
	// Re-interning after removal creates a fresh object.
	if in.Intern("keep") == nil {
		t.Error("re-intern failed")
	}
}
