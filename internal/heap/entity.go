package heap

import "nimage/internal/ir"

// Entity is the wrapper around a value that the identity algorithms of the
// paper take as input (Algorithms 1–3). It stores and inspects metadata of
// the wrapped value: its type, fields, array elements, and — for snapshot
// objects — root status, inclusion reason, and first-path parents.
type Entity struct {
	val Value
	// staticType is the declared type of the slot the value was read from;
	// used when the value is null or primitive.
	staticType ir.TypeRef
}

// ObjEntity wraps an object reference.
func ObjEntity(o *Object) Entity {
	if o == nil {
		return Entity{val: Null(), staticType: ir.Ref("java.lang.Object")}
	}
	return Entity{val: RefVal(o), staticType: o.Type()}
}

// ValEntity wraps an arbitrary value read from a slot of the given static
// type.
func ValEntity(v Value, static ir.TypeRef) Entity { return Entity{val: v, staticType: static} }

// IsNull reports whether the wrapped value is the null reference.
func (e Entity) IsNull() bool { return e.val.IsNull() }

// IsPrimitive reports whether the wrapped value is a primitive.
func (e Entity) IsPrimitive() bool { return e.val.Kind != VRef }

// IsString reports whether the wrapped value is a string object.
func (e Entity) IsString() bool {
	return e.val.Kind == VRef && e.val.Ref != nil && e.val.Ref.IsString()
}

// IsObjectInstance reports whether the wrapped value is a non-array object.
func (e Entity) IsObjectInstance() bool {
	return e.val.Kind == VRef && e.val.Ref != nil && !e.val.Ref.IsArray
}

// IsArray reports whether the wrapped value is an array.
func (e Entity) IsArray() bool { return e.val.Kind == VRef && e.val.Ref != nil && e.val.Ref.IsArray }

// Object returns the wrapped object, or nil.
func (e Entity) Object() *Object { return e.val.Ref }

// Value returns the wrapped value.
func (e Entity) Value() Value { return e.val }

// Type returns the dynamic type of the wrapped value (the static slot type
// for null/primitive values).
func (e Entity) Type() ir.TypeRef {
	if e.val.Kind == VRef && e.val.Ref != nil {
		return e.val.Ref.Type()
	}
	if e.val.Kind == VInt && e.staticType.Kind != ir.KInt {
		return e.staticType
	}
	if e.val.Kind == VFloat {
		return ir.Float()
	}
	return e.staticType
}

// NumFields returns the instance-field count of an object instance.
func (e Entity) NumFields() int {
	if !e.IsObjectInstance() {
		return 0
	}
	return len(e.val.Ref.Fields)
}

// FieldDecl returns the declaration of the k-th field (source order).
func (e Entity) FieldDecl(k int) *ir.Field { return e.val.Ref.Class.AllFields[k] }

// GetFieldWrapper wraps the value of the k-th field.
func (e Entity) GetFieldWrapper(k int) Entity {
	f := e.val.Ref.Class.AllFields[k]
	return ValEntity(e.val.Ref.Fields[k], f.Type)
}

// Length returns the array length.
func (e Entity) Length() int { return e.val.Ref.Len() }

// ElementType returns the array element type.
func (e Entity) ElementType() ir.TypeRef { return e.val.Ref.Elem }

// GetElementWrapper wraps the k-th array element.
func (e Entity) GetElementWrapper(k int) Entity {
	return ValEntity(e.val.Ref.GetElem(k), e.val.Ref.Elem)
}

// IsRoot reports whether the wrapped object is a snapshot root.
func (e Entity) IsRoot() bool { return e.val.Ref != nil && e.val.Ref.Root }

// InclusionReason returns the heap-inclusion reason of a root.
func (e Entity) InclusionReason() string { return e.val.Ref.Reason }

// FirstParent returns the first-path parent of the wrapped snapshot object
// (Algorithm 3 uses getParents().first()).
func (e Entity) FirstParent() *Object { return e.val.Ref.Parent }
