package heap

// RootRef is a heap-snapshot root: an object together with the reason
// Native Image deemed it reachable (Sec. 5.3).
type RootRef struct {
	Obj    *Object
	Reason string
}

// Snapshot is the image heap: the set of objects written to the .svm_heap
// section, in default layout order (object-graph encounter order, with roots
// visited in the order supplied — which the image builder derives from the
// .text CU order, Sec. 2).
type Snapshot struct {
	// Objects in encounter order; SeqID equals the index.
	Objects []*Object
	// Roots in visit order.
	Roots []RootRef
	// TotalSize is the summed snapshot size of all objects in bytes.
	TotalSize int64
}

// BuildSnapshot traverses the object graph from roots in a well-defined
// (depth-first, field order, element order) order, marking every reached
// object, recording first-path parents and inclusion reasons, assigning
// encounter-order SeqIDs, and computing object sizes.
//
// Duplicate roots are allowed: the first occurrence wins, matching Native
// Image where an object already in the heap keeps its original inclusion
// reason.
func BuildSnapshot(roots []RootRef) *Snapshot {
	s := &Snapshot{}
	var visit func(o *Object)
	visit = func(o *Object) {
		// Children in deterministic order: fields by slot, elements by
		// index. Recursion is depth-first to mirror Native Image's
		// traversal of the first path to each object.
		if o.IsArray {
			for i := range o.Elems {
				v := o.Elems[i]
				if v.Kind == VRef && v.Ref != nil && !v.Ref.InSnapshot {
					c := v.Ref
					c.InSnapshot = true
					c.Parent = o
					c.ParentField = nil
					c.ParentIndex = i
					c.SeqID = len(s.Objects)
					c.Size = c.SnapshotSize()
					s.Objects = append(s.Objects, c)
					visit(c)
				}
			}
			return
		}
		if o.Class == nil {
			return
		}
		for slot, v := range o.Fields {
			if v.Kind == VRef && v.Ref != nil && !v.Ref.InSnapshot {
				c := v.Ref
				c.InSnapshot = true
				c.Parent = o
				c.ParentField = o.Class.AllFields[slot]
				c.ParentIndex = -1
				c.SeqID = len(s.Objects)
				c.Size = c.SnapshotSize()
				s.Objects = append(s.Objects, c)
				visit(c)
			}
		}
	}
	for _, r := range roots {
		if r.Obj == nil {
			continue
		}
		if r.Obj.InSnapshot {
			continue
		}
		r.Obj.InSnapshot = true
		r.Obj.Root = true
		r.Obj.Reason = r.Reason
		r.Obj.Parent = nil
		r.Obj.SeqID = len(s.Objects)
		r.Obj.Size = r.Obj.SnapshotSize()
		s.Objects = append(s.Objects, r.Obj)
		s.Roots = append(s.Roots, r)
		visit(r.Obj)
	}
	for _, o := range s.Objects {
		s.TotalSize += o.Size
	}
	return s
}

// Layout assigns contiguous offsets (8-byte aligned) to objects in the
// given order, which must be a permutation of the snapshot's objects.
// It returns the total laid-out size.
func Layout(order []*Object) int64 {
	var off int64
	for _, o := range order {
		o.Offset = off
		off += (o.Size + 7) / 8 * 8
	}
	return off
}
