package heap

import (
	"fmt"

	"nimage/internal/ir"
)

// Heap-inclusion reasons of snapshot roots (Sec. 5.3). Reasons that name a
// static field or a method use the field/method signature directly.
const (
	ReasonInternedString = "InternedString"
	ReasonDataSection    = "DataSection"
	ReasonResource       = "Resource"
)

// Object is a heap object or array. Strings are objects of the built-in
// string class with the Go string as payload.
type Object struct {
	// Class is the class of an instance object; nil for arrays.
	Class *ir.Class
	// IsArray marks arrays.
	IsArray bool
	// Elem is the element type of an array.
	Elem ir.TypeRef
	// ElemBytes is the storage size of one element: 8 for ordinary arrays,
	// 1 for packed byte arrays (metadata and resource blobs, which dominate
	// heap-snapshot size in real images — Sec. 7.2).
	ElemBytes int
	// Fields holds instance-field values indexed by ir.Field.Slot.
	Fields []Value
	// Elems holds array elements.
	Elems []Value
	// Str is the payload of string objects.
	Str string

	// Snapshot metadata, populated by BuildSnapshot.

	// InSnapshot marks objects included in the image heap.
	InSnapshot bool
	// Root marks snapshot roots.
	Root bool
	// Reason is the heap-inclusion reason of a root.
	Reason string
	// Parent is the first-path parent: the object whose field/element
	// reference caused this object's inclusion; nil for roots.
	Parent *Object
	// ParentField is the field of Parent referencing this object.
	ParentField *ir.Field
	// ParentIndex is the element index in Parent referencing this object.
	ParentIndex int
	// SeqID is the encounter order during snapshotting (0-based).
	SeqID int
	// Offset and Size locate the object inside .svm_heap after layout.
	Offset int64
	Size   int64

	// packedLen is the byte length of packed byte arrays (Elems unset).
	packedLen int
}

const objectHeader = 16 // mark word + class pointer
const slotSize = 8

// NewObject allocates an instance of class with zeroed fields (integers 0,
// floats 0.0, references null).
func NewObject(class *ir.Class) *Object {
	o := &Object{Class: class, Fields: make([]Value, len(class.AllFields))}
	for i, f := range class.AllFields {
		switch f.Type.Kind {
		case ir.KFloat:
			o.Fields[i] = FloatVal(0)
		case ir.KRef, ir.KArray:
			o.Fields[i] = Null()
		default:
			o.Fields[i] = IntVal(0)
		}
	}
	return o
}

// NewArray allocates an array of n elements of the given type, zeroed.
func NewArray(elem ir.TypeRef, n int) *Object {
	o := &Object{IsArray: true, Elem: elem, ElemBytes: slotSize, Elems: make([]Value, n)}
	var zero Value
	switch elem.Kind {
	case ir.KFloat:
		zero = FloatVal(0)
	case ir.KRef, ir.KArray:
		zero = Null()
	default:
		zero = IntVal(0)
	}
	for i := range o.Elems {
		o.Elems[i] = zero
	}
	return o
}

// NewByteArray allocates a packed byte array of n bytes. Its elements are
// not materialized; it models the metadata blobs of real image heaps.
func NewByteArray(n int) *Object {
	return &Object{IsArray: true, Elem: ir.Int(), ElemBytes: 1, Elems: nil, packedLen: n}
}

// NewString allocates a string object.
func NewString(class *ir.Class, s string) *Object {
	if class == nil || class.Name != ir.StringClass {
		panic("heap: NewString requires the java.lang.String class")
	}
	o := NewObject(class)
	o.Str = s
	return o
}

// Len returns the array length.
func (o *Object) Len() int {
	if o.packedLen > 0 {
		return o.packedLen
	}
	return len(o.Elems)
}

// Packed reports whether the object is a packed byte array whose contents
// are a deterministic function of its length.
func (o *Object) Packed() bool { return o.packedLen > 0 }

// IsString reports whether the object is a string.
func (o *Object) IsString() bool { return o.Class != nil && o.Class.Name == ir.StringClass }

// Type returns the object's type.
func (o *Object) Type() ir.TypeRef {
	if o.IsArray {
		return ir.Array(o.Elem)
	}
	return ir.Ref(o.Class.Name)
}

// TypeName returns the fully qualified type name.
func (o *Object) TypeName() string { return o.Type().FullyQualifiedName() }

// SnapshotSize returns the byte size the object occupies in .svm_heap.
func (o *Object) SnapshotSize() int64 {
	if o.IsArray {
		return objectHeader + int64(o.Len()*o.ElemBytes)
	}
	if o.IsString() {
		// Header + length/hash slots + character data, 8-byte aligned.
		n := int64(len(o.Str))
		return objectHeader + 8 + (n+7)/8*8
	}
	return objectHeader + int64(len(o.Fields)*slotSize)
}

// GetField reads the field value by resolved field.
func (o *Object) GetField(f *ir.Field) Value {
	if o.IsArray || f.Slot >= len(o.Fields) {
		panic(fmt.Sprintf("heap: get field %s on %s", f.Descriptor(), o.TypeName()))
	}
	return o.Fields[f.Slot]
}

// SetField writes the field value by resolved field.
func (o *Object) SetField(f *ir.Field, v Value) {
	if o.IsArray || f.Slot >= len(o.Fields) {
		panic(fmt.Sprintf("heap: set field %s on %s", f.Descriptor(), o.TypeName()))
	}
	o.Fields[f.Slot] = v
}

// GetElem reads array element i.
func (o *Object) GetElem(i int) Value {
	if o.packedLen > 0 {
		if i < 0 || i >= o.packedLen {
			panic(fmt.Sprintf("heap: index %d out of bounds [0,%d)", i, o.packedLen))
		}
		// Packed byte arrays read as deterministic pseudo-content.
		return IntVal(int64(byte(i*131 + 17)))
	}
	if i < 0 || i >= len(o.Elems) {
		panic(fmt.Sprintf("heap: index %d out of bounds [0,%d)", i, len(o.Elems)))
	}
	return o.Elems[i]
}

// SetElem writes array element i.
func (o *Object) SetElem(i int, v Value) {
	if o.packedLen > 0 {
		panic("heap: write to packed byte array")
	}
	if i < 0 || i >= len(o.Elems) {
		panic(fmt.Sprintf("heap: index %d out of bounds [0,%d)", i, len(o.Elems)))
	}
	o.Elems[i] = v
}

// Statics is the build-time storage of static fields.
type Statics struct {
	vals map[*ir.Field]Value
}

// NewStatics creates empty static storage.
func NewStatics() *Statics { return &Statics{vals: make(map[*ir.Field]Value)} }

// Get reads a static field (zero value if never written).
func (s *Statics) Get(f *ir.Field) Value {
	if v, ok := s.vals[f]; ok {
		return v
	}
	switch f.Type.Kind {
	case ir.KFloat:
		return FloatVal(0)
	case ir.KRef, ir.KArray:
		return Null()
	default:
		return IntVal(0)
	}
}

// Set writes a static field.
func (s *Statics) Set(f *ir.Field, v Value) { s.vals[f] = v }

// Interns is the interned-string table.
type Interns struct {
	class *ir.Class
	byVal map[string]*Object
	order []*Object
}

// NewInterns creates an empty intern table backed by the program's string
// class.
func NewInterns(stringClass *ir.Class) *Interns {
	return &Interns{class: stringClass, byVal: make(map[string]*Object)}
}

// Intern returns the canonical string object for s, creating it on first
// use. Interned strings become heap roots with reason "InternedString".
func (t *Interns) Intern(s string) *Object {
	if o, ok := t.byVal[s]; ok {
		return o
	}
	o := NewString(t.class, s)
	t.byVal[s] = o
	t.order = append(t.order, o)
	return o
}

// All returns the interned strings in interning order.
func (t *Interns) All() []*Object { return t.order }

// Remove drops the given literals from the table (used to roll back
// interning performed during a benchmark run).
func (t *Interns) Remove(literals []string) {
	if len(literals) == 0 {
		return
	}
	drop := make(map[string]bool, len(literals))
	for _, s := range literals {
		drop[s] = true
	}
	kept := t.order[:0]
	for _, o := range t.order {
		if drop[o.Str] {
			delete(t.byVal, o.Str)
			continue
		}
		kept = append(kept, o)
	}
	t.order = kept
}
