package ir

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// putUvarints renders a byte sequence from varints (fuzz-input builder).
func putUvarints(prefix []byte, vs ...uint64) []byte {
	out := append([]byte{}, prefix...)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vs {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	return out
}

// TestDecodeProgramRejectsHostileInput covers the alloc-bomb and
// recursion paths hardened against fuzzer findings: declared counts far
// beyond the bytes present, and unbounded array-type nesting.
func TestDecodeProgramRejectsHostileInput(t *testing.T) {
	head := []byte(progMagic)
	head = putUvarints(head, progVersion)

	// Deeply nested array type: version, empty string table, name/entry
	// strings would come next — instead feed a huge KArray chain through a
	// program with one class and one field.
	deepType := putUvarints(nil)
	for i := 0; i < 2*maxTypeDepth; i++ {
		deepType = putUvarints(deepType, uint64(KArray))
	}

	cases := map[string]struct {
		data    []byte
		wantErr string
	}{
		"huge-string-table": {putUvarints(head, 1<<40), "implausible string-table count"},
		// Declares maxCount strings with no bytes behind them: must fail
		// from missing input, not allocate the declared table.
		"declared-strings-not-present": {putUvarints(head, maxCount), "EOF"},
		"huge-resource-size": {putUvarints(head,
			1, 1, 'x', // one 1-byte string "x"
			0, 0, 0, // name, entry class, entry method
			1,     // one resource
			0,     // resource name
			1<<40, // resource size
		), "implausible resource size"},
		"deep-array-type": {append(putUvarints(head,
			1, 1, 'x', // string table: "x"
			0, 0, 0, // name, entry
			0,    // no resources
			1,    // one class
			0, 0, // class name, super
			1, // one field
			0, // field name
		), deepType...), "type nesting exceeds"},
		"huge-param-count": {putUvarints(head,
			1, 1, 'x',
			0, 0, 0,
			0,    // no resources
			1,    // one class
			0, 0, // name, super
			0, 0, // no fields, no statics
			1,     // one method
			0,     // method name
			0,     // flags
			1<<40, // NParams
		), "implausible parameter count"},
	}
	for name, tc := range cases {
		_, err := DecodeProgram(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: hostile input accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

// FuzzIRCodec asserts the program decoder never panics, and that any
// program it accepts re-encodes canonically: encode(decode(data)) must be
// a fixed point of a further decode/encode round trip.
func FuzzIRCodec(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeProgram(&seed, buildCodecProgram(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:16])
	f.Add([]byte(progMagic))
	f.Add(putUvarints([]byte(progMagic), progVersion, 0, 0, 0, 0, 0, 0))
	corrupt := append([]byte{}, seed.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProgram(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := EncodeProgram(&b1, p); err != nil {
			t.Fatalf("re-encoding accepted program: %v", err)
		}
		p2, err := DecodeProgram(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		var b2 bytes.Buffer
		if err := EncodeProgram(&b2, p2); err != nil {
			t.Fatalf("re-encoding round-tripped program: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("encoding is not canonical under round trip")
		}
	})
}
