// Package ir defines the intermediate representation of the mini object
// language compiled by the simulated Native-Image toolchain.
//
// The IR plays the role of Java bytecode/Graal IR in the paper: programs are
// sets of classes with instance and static fields, virtual methods, and
// static initializers. Method bodies are control-flow graphs of basic blocks
// over a register machine. Workloads (internal/workloads) construct programs
// through the builder DSL in this package; the compiler (internal/graal)
// groups methods into compilation units; the interpreter (internal/vm)
// executes them.
package ir

import (
	"fmt"
	"strconv"
)

// TypeKind discriminates the kinds of IR types.
type TypeKind uint8

const (
	// KInt is a 64-bit integer (also used for booleans: 0/1).
	KInt TypeKind = iota
	// KFloat is a 64-bit IEEE float.
	KFloat
	// KRef is a reference to an instance of a named class.
	KRef
	// KArray is a reference to an array with a fixed element type.
	KArray
	// KVoid is usable only as a method return type.
	KVoid
)

// TypeRef names an IR type. TypeRefs are small values passed by copy.
type TypeRef struct {
	Kind TypeKind
	// Name is the fully qualified class name for KRef types.
	Name string
	// Elem is the element type for KArray types.
	Elem *TypeRef
}

// Int returns the 64-bit integer type.
func Int() TypeRef { return TypeRef{Kind: KInt} }

// Float returns the 64-bit float type.
func Float() TypeRef { return TypeRef{Kind: KFloat} }

// Void returns the void type.
func Void() TypeRef { return TypeRef{Kind: KVoid} }

// Ref returns the reference type for the class with the given fully
// qualified name.
func Ref(name string) TypeRef { return TypeRef{Kind: KRef, Name: name} }

// Array returns the array type with the given element type.
func Array(elem TypeRef) TypeRef {
	e := elem
	return TypeRef{Kind: KArray, Elem: &e}
}

// StringClass is the fully qualified name of the built-in string class.
// String values are heap objects of this class, mirroring java.lang.String;
// the identity strategies special-case it (Sec. 5.2, 5.3).
const StringClass = "java.lang.String"

// String returns the reference type of the built-in string class.
func String() TypeRef { return Ref(StringClass) }

// IsPrimitive reports whether the type is a primitive (int or float).
func (t TypeRef) IsPrimitive() bool { return t.Kind == KInt || t.Kind == KFloat }

// IsString reports whether the type is the built-in string class.
func (t TypeRef) IsString() bool { return t.Kind == KRef && t.Name == StringClass }

// FullyQualifiedName renders the type as the fully qualified name used by
// the identity algorithms (Algorithms 2 and 3 hash these names).
func (t TypeRef) FullyQualifiedName() string {
	switch t.Kind {
	case KInt:
		return "long"
	case KFloat:
		return "double"
	case KVoid:
		return "void"
	case KRef:
		return t.Name
	case KArray:
		return t.Elem.FullyQualifiedName() + "[]"
	default:
		return "<invalid kind " + strconv.Itoa(int(t.Kind)) + ">"
	}
}

// Equal reports structural type equality.
func (t TypeRef) Equal(o TypeRef) bool {
	if t.Kind != o.Kind || t.Name != o.Name {
		return false
	}
	if t.Kind == KArray {
		return t.Elem.Equal(*o.Elem)
	}
	return true
}

func (t TypeRef) String() string { return t.FullyQualifiedName() }

func (t TypeRef) validate() error {
	switch t.Kind {
	case KInt, KFloat, KVoid:
		return nil
	case KRef:
		if t.Name == "" {
			return fmt.Errorf("ir: reference type with empty class name")
		}
		return nil
	case KArray:
		if t.Elem == nil {
			return fmt.Errorf("ir: array type with nil element type")
		}
		if t.Elem.Kind == KVoid {
			return fmt.Errorf("ir: array of void")
		}
		return t.Elem.validate()
	default:
		return fmt.Errorf("ir: invalid type kind %d", t.Kind)
	}
}
