package ir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary program container: "NPRG" magic, version, a deduplicating string
// table, then the structural encoding of classes, fields, methods, blocks,
// and instructions. Decoding reconstructs the program and resolves it, so a
// decoded program is immediately buildable.
const (
	progMagic   = "NPRG"
	progVersion = 1
)

// encoder writes varint-based records with a string table.
type encoder struct {
	w       *bufio.Writer
	strings map[string]uint64
	order   []string
	err     error
}

func (e *encoder) u(v uint64) {
	if e.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, e.err = e.w.Write(buf[:n])
}

func (e *encoder) i(v int64) {
	// ZigZag signed encoding.
	e.u(uint64(v<<1) ^ uint64(v>>63))
}

func (e *encoder) s(s string) {
	idx, ok := e.strings[s]
	if !ok {
		idx = uint64(len(e.order))
		e.strings[s] = idx
		e.order = append(e.order, s)
	}
	e.u(idx)
}

// collectStrings walks the program once so the string table can be written
// before the structure (the table is needed first when decoding).
func (e *encoder) collect(s string) {
	if _, ok := e.strings[s]; !ok {
		e.strings[s] = uint64(len(e.order))
		e.order = append(e.order, s)
	}
}

func (e *encoder) typeRef(t TypeRef) {
	e.u(uint64(t.Kind))
	switch t.Kind {
	case KRef:
		e.s(t.Name)
	case KArray:
		e.typeRef(*t.Elem)
	}
}

func collectType(e *encoder, t TypeRef) {
	switch t.Kind {
	case KRef:
		e.collect(t.Name)
	case KArray:
		collectType(e, *t.Elem)
	}
}

// EncodeProgram serializes the program to w.
func EncodeProgram(w io.Writer, p *Program) error {
	e := &encoder{w: bufio.NewWriter(w), strings: make(map[string]uint64)}

	// Pass 1: populate the string table deterministically.
	e.collect(p.Name)
	e.collect(p.EntryClass)
	e.collect(p.EntryMethod)
	for _, r := range p.Resources {
		e.collect(r.Name)
	}
	for _, c := range p.Classes {
		e.collect(c.Name)
		e.collect(c.SuperName)
		for _, f := range append(append([]*Field{}, c.Fields...), c.Statics...) {
			e.collect(f.Name)
			collectType(e, f.Type)
		}
		for _, m := range c.Methods {
			e.collect(m.Name)
			collectType(e, m.Returns)
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					e.collect(in.Sym)
					e.collect(in.CName)
					collectType(e, in.Type)
				}
			}
		}
	}

	// Header + string table.
	if _, err := e.w.WriteString(progMagic); err != nil {
		return err
	}
	e.u(progVersion)
	e.u(uint64(len(e.order)))
	for _, s := range e.order {
		e.u(uint64(len(s)))
		if e.err == nil {
			_, e.err = e.w.WriteString(s)
		}
	}

	// Structure.
	e.s(p.Name)
	e.s(p.EntryClass)
	e.s(p.EntryMethod)
	e.u(uint64(len(p.Resources)))
	for _, r := range p.Resources {
		e.s(r.Name)
		e.u(uint64(r.Size))
	}
	e.u(uint64(len(p.Classes)))
	for _, c := range p.Classes {
		e.s(c.Name)
		e.s(c.SuperName)
		encodeFields := func(fs []*Field) {
			e.u(uint64(len(fs)))
			for _, f := range fs {
				e.s(f.Name)
				e.typeRef(f.Type)
			}
		}
		encodeFields(c.Fields)
		encodeFields(c.Statics)
		e.u(uint64(len(c.Methods)))
		for _, m := range c.Methods {
			e.s(m.Name)
			flags := uint64(0)
			if m.Static {
				flags |= 1
			}
			if m.Clinit {
				flags |= 2
			}
			e.u(flags)
			e.u(uint64(m.NParams))
			e.typeRef(m.Returns)
			e.u(uint64(m.NumRegs))
			e.u(uint64(len(m.Blocks)))
			for _, b := range m.Blocks {
				e.u(uint64(len(b.Instrs)))
				for i := range b.Instrs {
					in := &b.Instrs[i]
					e.u(uint64(in.Op))
					e.i(int64(in.A))
					e.i(int64(in.B))
					e.i(int64(in.C))
					e.i(in.Val)
					e.s(in.Sym)
					e.s(in.CName)
					e.typeRef(in.Type)
					e.u(uint64(len(in.Args)))
					for _, a := range in.Args {
						e.i(int64(a))
					}
				}
				e.u(uint64(b.Term.Op))
				e.i(int64(b.Term.Cond))
				e.i(int64(b.Term.Then))
				e.i(int64(b.Term.Else))
				e.i(int64(b.Term.Ret))
			}
		}
	}
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// decoder reads the format written by EncodeProgram.
type decoder struct {
	r     *bufio.Reader
	table []string
}

func (d *decoder) u() (uint64, error) { return binary.ReadUvarint(d.r) }

func (d *decoder) i() (int64, error) {
	v, err := d.u()
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

func (d *decoder) s() (string, error) {
	idx, err := d.u()
	if err != nil {
		return "", err
	}
	if idx >= uint64(len(d.table)) {
		return "", fmt.Errorf("ir: string index %d out of table range %d", idx, len(d.table))
	}
	return d.table[idx], nil
}

// maxTypeDepth bounds array-type nesting; deeper encodings are corrupt
// (the builder API cannot produce them) and would otherwise recurse
// without limit.
const maxTypeDepth = 64

func (d *decoder) typeRef() (TypeRef, error) { return d.typeRefDepth(0) }

func (d *decoder) typeRefDepth(depth int) (TypeRef, error) {
	if depth > maxTypeDepth {
		return TypeRef{}, fmt.Errorf("ir: type nesting exceeds %d", maxTypeDepth)
	}
	k, err := d.u()
	if err != nil {
		return TypeRef{}, err
	}
	t := TypeRef{Kind: TypeKind(k)}
	switch t.Kind {
	case KRef:
		if t.Name, err = d.s(); err != nil {
			return t, err
		}
	case KArray:
		elem, err := d.typeRefDepth(depth + 1)
		if err != nil {
			return t, err
		}
		t.Elem = &elem
	case KInt, KFloat, KVoid:
	default:
		return t, fmt.Errorf("ir: invalid encoded type kind %d", k)
	}
	return t, nil
}

// maxCount bounds decoded collection sizes against corrupted input.
const maxCount = 1 << 22

func (d *decoder) count(what string) (int, error) {
	v, err := d.u()
	if err != nil {
		return 0, err
	}
	if v > maxCount {
		return 0, fmt.Errorf("ir: implausible %s count %d", what, v)
	}
	return int(v), nil
}

// prealloc bounds a declared count to a sane preallocation size: declared
// counts are validated but never trusted for allocation, since a few bytes
// of input can declare maxCount elements. Slices grow with the elements
// actually decoded.
func prealloc(declared, limit int) int {
	if declared > limit {
		return limit
	}
	return declared
}

// DecodeProgram deserializes and resolves a program from r.
func DecodeProgram(r io.Reader) (*Program, error) {
	d := &decoder{r: bufio.NewReader(r)}
	head := make([]byte, len(progMagic))
	if _, err := io.ReadFull(d.r, head); err != nil {
		return nil, fmt.Errorf("ir: reading program header: %w", err)
	}
	if string(head) != progMagic {
		return nil, fmt.Errorf("ir: bad program magic %q", head)
	}
	ver, err := d.u()
	if err != nil {
		return nil, err
	}
	if ver != progVersion {
		return nil, fmt.Errorf("ir: unsupported program version %d", ver)
	}
	nstr, err := d.count("string-table")
	if err != nil {
		return nil, err
	}
	d.table = make([]string, 0, prealloc(nstr, 4096))
	for i := 0; i < nstr; i++ {
		n, err := d.count("string")
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return nil, err
		}
		d.table = append(d.table, string(buf))
	}

	p := &Program{}
	if p.Name, err = d.s(); err != nil {
		return nil, err
	}
	if p.EntryClass, err = d.s(); err != nil {
		return nil, err
	}
	if p.EntryMethod, err = d.s(); err != nil {
		return nil, err
	}
	nres, err := d.count("resource")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nres; i++ {
		var r Resource
		if r.Name, err = d.s(); err != nil {
			return nil, err
		}
		sz, err := d.u()
		if err != nil {
			return nil, err
		}
		if sz > 1<<30 {
			return nil, fmt.Errorf("ir: implausible resource size %d", sz)
		}
		r.Size = int(sz)
		p.Resources = append(p.Resources, r)
	}
	ncls, err := d.count("class")
	if err != nil {
		return nil, err
	}
	for ci := 0; ci < ncls; ci++ {
		c := &Class{}
		if c.Name, err = d.s(); err != nil {
			return nil, err
		}
		if c.SuperName, err = d.s(); err != nil {
			return nil, err
		}
		decodeFields := func(static bool) ([]*Field, error) {
			n, err := d.count("field")
			if err != nil {
				return nil, err
			}
			out := make([]*Field, 0, n)
			for i := 0; i < n; i++ {
				f := &Field{Static: static}
				if f.Name, err = d.s(); err != nil {
					return nil, err
				}
				if f.Type, err = d.typeRef(); err != nil {
					return nil, err
				}
				out = append(out, f)
			}
			return out, nil
		}
		if c.Fields, err = decodeFields(false); err != nil {
			return nil, err
		}
		if c.Statics, err = decodeFields(true); err != nil {
			return nil, err
		}
		nm, err := d.count("method")
		if err != nil {
			return nil, err
		}
		for mi := 0; mi < nm; mi++ {
			m := &Method{}
			if m.Name, err = d.s(); err != nil {
				return nil, err
			}
			flags, err := d.u()
			if err != nil {
				return nil, err
			}
			m.Static = flags&1 != 0
			m.Clinit = flags&2 != 0
			np, err := d.u()
			if err != nil {
				return nil, err
			}
			if np > math.MaxInt32 {
				return nil, fmt.Errorf("ir: implausible parameter count %d", np)
			}
			m.NParams = int(np)
			if m.Returns, err = d.typeRef(); err != nil {
				return nil, err
			}
			nr, err := d.u()
			if err != nil {
				return nil, err
			}
			if nr > math.MaxInt32 {
				return nil, fmt.Errorf("ir: implausible register count %d", nr)
			}
			m.NumRegs = int(nr)
			nb, err := d.count("block")
			if err != nil {
				return nil, err
			}
			for bi := 0; bi < nb; bi++ {
				b := &Block{Index: bi}
				ni, err := d.count("instr")
				if err != nil {
					return nil, err
				}
				b.Instrs = make([]Instr, 0, prealloc(ni, 1024))
				for ii := 0; ii < ni; ii++ {
					b.Instrs = append(b.Instrs, Instr{})
					in := &b.Instrs[ii]
					op, err := d.u()
					if err != nil {
						return nil, err
					}
					in.Op = Op(op)
					if av, err := d.i(); err == nil {
						in.A = int(av)
					} else {
						return nil, err
					}
					if bv, err := d.i(); err == nil {
						in.B = int(bv)
					} else {
						return nil, err
					}
					if cv, err := d.i(); err == nil {
						in.C = int(cv)
					} else {
						return nil, err
					}
					if in.Val, err = d.i(); err != nil {
						return nil, err
					}
					if in.Sym, err = d.s(); err != nil {
						return nil, err
					}
					if in.CName, err = d.s(); err != nil {
						return nil, err
					}
					if in.Type, err = d.typeRef(); err != nil {
						return nil, err
					}
					na, err := d.count("arg")
					if err != nil {
						return nil, err
					}
					if na > 0 {
						in.Args = make([]int, 0, prealloc(na, 256))
						for ai := 0; ai < na; ai++ {
							av, err := d.i()
							if err != nil {
								return nil, err
							}
							in.Args = append(in.Args, int(av))
						}
					}
				}
				top, err := d.u()
				if err != nil {
					return nil, err
				}
				b.Term.Op = TermOp(top)
				for _, dst := range []*int{&b.Term.Cond, &b.Term.Then, &b.Term.Else, &b.Term.Ret} {
					v, err := d.i()
					if err != nil {
						return nil, err
					}
					*dst = int(v)
				}
				m.Blocks = append(m.Blocks, b)
			}
			c.Methods = append(c.Methods, m)
		}
		p.Classes = append(p.Classes, c)
	}
	if err := p.Resolve(); err != nil {
		return nil, fmt.Errorf("ir: decoded program does not resolve: %w", err)
	}
	return p, nil
}
