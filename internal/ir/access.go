package ir

// AccessCount returns how many traced heap-object accesses the instruction
// performs when it executes. Field and array instructions access one
// object; string intrinsics access their string operands (string reads are
// field/array accesses of the underlying character data in a real runtime,
// so the instrumentation records them too). The counts are static, which
// lets the path profiler derive how many object identifiers follow a path
// ID in the trace (Sec. 6.1).
func (in *Instr) AccessCount() int {
	switch in.Op {
	case OpGetField, OpPutField, OpArrayGet, OpArraySet, OpArrayLen:
		return 1
	case OpIntrinsic:
		switch in.Sym {
		case IntrinsicStrLen, IntrinsicStrHash, IntrinsicStrChar, IntrinsicIntern:
			return 1
		case IntrinsicStrEq, IntrinsicConcat:
			return 2
		}
	}
	return 0
}
