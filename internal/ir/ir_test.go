package ir

import (
	"strings"
	"testing"
)

// buildArith constructs a small valid program:
//
//	class Math { static add(a,b) { return a+b } }
//	class Main { static main() { Math.add(1,2) } }
func buildArith(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("arith")
	math := b.Class("Math")
	add := math.StaticMethod("add", 2, Int())
	e := add.Entry()
	s := e.Arith(Add, add.Param(0), add.Param(1))
	e.Ret(s)

	main := b.Class("Main")
	mm := main.StaticMethod("main", 0, Void())
	me := mm.Entry()
	a := me.ConstInt(1)
	c := me.ConstInt(2)
	me.Call("Math", "add", a, c)
	me.RetVoid()
	b.SetEntry("Main", "main")

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildAndResolve(t *testing.T) {
	p := buildArith(t)
	if p.Entry() == nil || p.Entry().Signature() != "Main.main(0)" {
		t.Fatalf("entry = %v", p.Entry())
	}
	add := p.Class("Math").DeclaredMethod("add")
	if add == nil || add.NParams != 2 {
		t.Fatalf("add = %+v", add)
	}
	// The call in main must be resolved to add.
	mainM := p.Entry()
	var call *Instr
	for i := range mainM.Blocks[0].Instrs {
		if mainM.Blocks[0].Instrs[i].Op == OpCall {
			call = &mainM.Blocks[0].Instrs[i]
		}
	}
	if call == nil || call.Method != add {
		t.Fatalf("call not resolved: %+v", call)
	}
}

func TestStableTypeIDs(t *testing.T) {
	// Type IDs must depend only on the set of class names (sorted), not on
	// declaration order — Sec. 5.1 requires IDs stable across builds.
	mk := func(order []string) map[string]int {
		b := NewBuilder("ids")
		for _, n := range order {
			cb := b.Class(n)
			m := cb.StaticMethod("noop", 0, Void())
			m.Entry().RetVoid()
		}
		p, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		ids := make(map[string]int)
		for _, c := range p.Classes {
			ids[c.Name] = c.ID
		}
		return ids
	}
	a := mk([]string{"B", "A", "C"})
	bm := mk([]string{"C", "B", "A"})
	for n, id := range a {
		if bm[n] != id {
			t.Errorf("class %s: id %d vs %d across declaration orders", n, id, bm[n])
		}
	}
	if a["A"] != 1 || a["B"] != 2 || a["C"] != 3 {
		t.Errorf("ids not sorted-name order: %v", a)
	}
}

func TestInheritanceLayoutAndDispatch(t *testing.T) {
	b := NewBuilder("inherit")
	base := b.Class("Base")
	base.Field("x", Int())
	bm := base.Method("get", 0, Int())
	e := bm.Entry()
	e.Ret(e.GetField(bm.This(), "Base", "x"))

	sub := b.Class("Sub").Extends("Base")
	sub.Field("y", Int())
	sm := sub.Method("get", 0, Int())
	se := sm.Entry()
	v := se.GetField(sm.This(), "Sub", "y")
	two := se.ConstInt(2)
	se.Ret(se.Arith(Mul, v, two))

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sc := p.Class("Sub")
	if len(sc.AllFields) != 2 {
		t.Fatalf("Sub.AllFields = %v", sc.AllFields)
	}
	if sc.AllFields[0].Name != "x" || sc.AllFields[0].Slot != 0 {
		t.Errorf("inherited field first: %+v", sc.AllFields[0])
	}
	if sc.AllFields[1].Name != "y" || sc.AllFields[1].Slot != 1 {
		t.Errorf("own field second: %+v", sc.AllFields[1])
	}
	if got := sc.LookupMethod("get"); got == nil || got.Class != sc {
		t.Errorf("Sub.get dispatches to %v", got)
	}
	if got := p.Class("Base").LookupMethod("get"); got == nil || got.Class.Name != "Base" {
		t.Errorf("Base.get dispatches to %v", got)
	}
	ov := Overriders(p.Class("Base").DeclaredMethod("get"))
	if len(ov) != 2 {
		t.Errorf("Overriders = %v", ov)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		make func(b *Builder)
		want string
	}{
		{
			name: "unknown superclass",
			make: func(b *Builder) {
				c := b.Class("A").Extends("Nope")
				m := c.StaticMethod("f", 0, Void())
				m.Entry().RetVoid()
			},
			want: "unknown superclass",
		},
		{
			name: "unknown call target",
			make: func(b *Builder) {
				c := b.Class("A")
				m := c.StaticMethod("f", 0, Void())
				e := m.Entry()
				e.CallVoid("A", "missing")
				e.RetVoid()
			},
			want: "unknown method",
		},
		{
			name: "unknown field",
			make: func(b *Builder) {
				c := b.Class("A")
				m := c.StaticMethod("f", 0, Void())
				e := m.Entry()
				o := e.New("A")
				e.GetField(o, "A", "missing")
				e.RetVoid()
			},
			want: "unknown field",
		},
		{
			name: "arg count mismatch",
			make: func(b *Builder) {
				c := b.Class("A")
				g := c.StaticMethod("g", 1, Void())
				g.Entry().RetVoid()
				m := c.StaticMethod("f", 0, Void())
				e := m.Entry()
				e.CallVoid("A", "g")
				e.RetVoid()
			},
			want: "want 1",
		},
		{
			name: "inheritance cycle",
			make: func(b *Builder) {
				b.Class("A").Extends("B")
				b.Class("B").Extends("A")
			},
			want: "cycle",
		},
		{
			name: "duplicate class",
			make: func(b *Builder) {
				b.Class("A")
				b.Class("A")
			},
			want: "duplicate class",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("bad")
			tc.make(b)
			_, err := b.Build()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Build err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestUnterminatedBlockRejected(t *testing.T) {
	b := NewBuilder("unterm")
	c := b.Class("A")
	m := c.StaticMethod("f", 0, Void())
	m.Entry().ConstInt(1) // never terminated
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "not terminated") {
		t.Fatalf("Build err = %v", err)
	}
}

func TestDoubleTerminationRejected(t *testing.T) {
	b := NewBuilder("dterm")
	c := b.Class("A")
	m := c.StaticMethod("f", 0, Void())
	e := m.Entry()
	e.RetVoid()
	e.RetVoid()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "terminated twice") {
		t.Fatalf("Build err = %v", err)
	}
}

func TestForLoopShape(t *testing.T) {
	b := NewBuilder("loop")
	c := b.Class("A")
	m := c.StaticMethod("sum", 1, Int())
	e := m.Entry()
	acc := e.ConstInt(0)
	zero := e.ConstInt(0)
	exit := e.For(zero, m.Param(0), 1, func(body *BlockBuilder, i Reg) *BlockBuilder {
		body.ArithTo(acc, Add, acc, i)
		return body
	})
	exit.Ret(acc)
	b.SetEntry("A", "sum")

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sum := p.Class("A").DeclaredMethod("sum")
	// entry + head + body + exit
	if len(sum.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(sum.Blocks))
	}
	head := sum.Blocks[1]
	if head.Term.Op != TermIf {
		t.Fatalf("head terminator = %v", head.Term.Op)
	}
	body := sum.Blocks[head.Term.Then]
	if body.Term.Op != TermGoto || body.Term.Then != head.Index {
		t.Fatalf("body does not loop back: %+v", body.Term)
	}
}

func TestCodeSizePositiveAndCached(t *testing.T) {
	p := buildArith(t)
	m := p.Class("Math").DeclaredMethod("add")
	s1 := m.CodeSize()
	if s1 <= 0 {
		t.Fatalf("CodeSize = %d", s1)
	}
	if s2 := m.CodeSize(); s2 != s1 {
		t.Fatalf("CodeSize not stable: %d vs %d", s1, s2)
	}
	m.Blocks[0].Instrs = append(m.Blocks[0].Instrs, Instr{Op: OpConstInt, A: 0})
	m.InvalidateSizeCache()
	if s3 := m.CodeSize(); s3 <= s1 {
		t.Fatalf("CodeSize after growth = %d, want > %d", s3, s1)
	}
}

func TestTypeRefNames(t *testing.T) {
	cases := []struct {
		t    TypeRef
		want string
	}{
		{Int(), "long"},
		{Float(), "double"},
		{Void(), "void"},
		{Ref("a.B"), "a.B"},
		{Array(Int()), "long[]"},
		{Array(Array(Ref("X"))), "X[][]"},
		{String(), "java.lang.String"},
	}
	for _, c := range cases {
		if got := c.t.FullyQualifiedName(); got != c.want {
			t.Errorf("FullyQualifiedName(%v) = %q, want %q", c.t, got, c.want)
		}
	}
	if !String().IsString() || Ref("X").IsString() {
		t.Error("IsString misclassifies")
	}
	if !Int().IsPrimitive() || Ref("X").IsPrimitive() {
		t.Error("IsPrimitive misclassifies")
	}
}

func TestFieldDescriptorAndSignature(t *testing.T) {
	b := NewBuilder("fd")
	c := b.Class("pkg.C")
	c.Field("f", Array(Int()))
	c.Static("s", String())
	m := c.StaticMethod("noop", 0, Void())
	m.Entry().RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := p.Class("pkg.C").LookupField("f")
	if got := f.Descriptor(); got != "pkg.C.f:long[]" {
		t.Errorf("Descriptor = %q", got)
	}
	s := p.Class("pkg.C").LookupStatic("s")
	if got := s.Signature(); got != "pkg.C.s" {
		t.Errorf("Signature = %q", got)
	}
	if !s.Static {
		t.Error("static flag not set")
	}
}
