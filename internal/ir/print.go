package ir

import (
	"fmt"
	"math"
	"strings"
)

// Disassemble renders a method body in a readable textual form, one block
// per paragraph:
//
//	P.fib(1) [static, 7 regs, 118 B]
//	b0:
//	  r1 = const.i 2
//	  r2 = cmp lt r0, r1
//	  if r2 -> b1 else b2
//	...
func Disassemble(m *Method) string {
	var sb strings.Builder
	kind := ""
	switch {
	case m.Clinit:
		kind = "clinit, "
	case m.Static:
		kind = "static, "
	}
	fmt.Fprintf(&sb, "%s [%s%d regs, %d B]\n", m.Signature(), kind, m.NumRegs, m.CodeSize())
	for _, b := range m.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.Index)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", FormatInstr(&b.Instrs[i]))
		}
		fmt.Fprintf(&sb, "  %s\n", formatTerm(b.Term))
	}
	return sb.String()
}

// FormatInstr renders one instruction.
func FormatInstr(in *Instr) string {
	dst := ""
	if in.HasDest() {
		dst = fmt.Sprintf("r%d = ", in.A)
	}
	switch in.Op {
	case OpConstInt:
		return fmt.Sprintf("%sconst.i %d", dst, in.Val)
	case OpConstFloat:
		return fmt.Sprintf("%sconst.f %g", dst, math.Float64frombits(uint64(in.Val)))
	case OpConstStr:
		return fmt.Sprintf("%sconst.s %q", dst, in.Sym)
	case OpConstNull:
		return dst + "const.null"
	case OpMove:
		return fmt.Sprintf("%smove r%d", dst, in.B)
	case OpArith, OpFArith:
		return fmt.Sprintf("%s%s %s r%d, r%d", dst, in.Op, arithName(ArithOp(in.Val)), in.B, in.C)
	case OpCmp:
		return fmt.Sprintf("%scmp %s r%d, r%d", dst, cmpName(CmpOp(in.Val)), in.B, in.C)
	case OpConvIF:
		return fmt.Sprintf("%sconv.if r%d", dst, in.B)
	case OpConvFI:
		return fmt.Sprintf("%sconv.fi r%d", dst, in.B)
	case OpNew:
		return fmt.Sprintf("%snew %s", dst, in.Type.FullyQualifiedName())
	case OpNewArray:
		return fmt.Sprintf("%snewarray %s[r%d]", dst, in.Type.FullyQualifiedName(), in.B)
	case OpArrayGet:
		return fmt.Sprintf("%saget r%d[r%d]", dst, in.B, in.C)
	case OpArraySet:
		return fmt.Sprintf("aset r%d[r%d] = r%d", in.A, in.B, in.C)
	case OpArrayLen:
		return fmt.Sprintf("%salen r%d", dst, in.B)
	case OpGetField:
		return fmt.Sprintf("%sgetfield r%d.%s.%s", dst, in.B, in.CName, in.Sym)
	case OpPutField:
		return fmt.Sprintf("putfield r%d.%s.%s = r%d", in.A, in.CName, in.Sym, in.B)
	case OpGetStatic:
		return fmt.Sprintf("%sgetstatic %s.%s", dst, in.CName, in.Sym)
	case OpPutStatic:
		return fmt.Sprintf("putstatic %s.%s = r%d", in.CName, in.Sym, in.A)
	case OpCall, OpCallVirt:
		return fmt.Sprintf("%s%s %s.%s(%s)", dst, in.Op, in.CName, in.Sym, regList(in.Args))
	case OpIntrinsic:
		extra := ""
		if in.Sym == IntrinsicSpawn {
			extra = " " + in.CName
		}
		return fmt.Sprintf("%sintrinsic %s%s(%s)", dst, in.Sym, extra, regList(in.Args))
	default:
		return fmt.Sprintf("%s%s ?", dst, in.Op)
	}
}

func formatTerm(t Term) string {
	switch t.Op {
	case TermGoto:
		return fmt.Sprintf("goto b%d", t.Then)
	case TermIf:
		return fmt.Sprintf("if r%d -> b%d else b%d", t.Cond, t.Then, t.Else)
	case TermReturn:
		if t.Ret < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", t.Ret)
	default:
		return "term ?"
	}
}

func arithName(op ArithOp) string {
	names := [...]string{Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
		And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr"}
	if int(op) < len(names) && names[op] != "" {
		return names[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

func cmpName(op CmpOp) string {
	names := [...]string{Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge"}
	if int(op) < len(names) && names[op] != "" {
		return names[op]
	}
	return fmt.Sprintf("cmp(%d)", op)
}

func regList(rs []int) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}
