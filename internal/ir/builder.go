package ir

import (
	"fmt"
	"math"
)

// Reg names a virtual register of the method under construction.
type Reg int

// NoReg marks an absent destination register.
const NoReg Reg = -1

// Builder constructs a Program. Workloads use it as an embedded DSL; the
// synthetic-library generator drives it programmatically.
type Builder struct {
	p       *Program
	methods []*MethodBuilder
	errs    []error
}

// NewBuilder starts building a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Program{Name: name}}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Class declares a class and returns its builder.
func (b *Builder) Class(name string) *ClassBuilder {
	c := &Class{Name: name}
	b.p.Classes = append(b.p.Classes, c)
	return &ClassBuilder{b: b, c: c}
}

// SetEntry declares the program entry point (a static method).
func (b *Builder) SetEntry(class, method string) {
	b.p.EntryClass = class
	b.p.EntryMethod = method
}

// Resource registers an embedded resource of the given size in bytes.
func (b *Builder) Resource(name string, size int) {
	b.p.Resources = append(b.p.Resources, Resource{Name: name, Size: size})
}

// Build finalizes and resolves the program.
func (b *Builder) Build() (*Program, error) {
	for _, mb := range b.methods {
		for _, bb := range mb.blocks {
			if !bb.terminated {
				b.errorf("ir: %s: block %d not terminated", mb.m.Signature(), bb.blk.Index)
			}
		}
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("ir: %d build errors, first: %w", len(b.errs), b.errs[0])
	}
	if err := b.p.Resolve(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build that panics on error; intended for statically known
// workload definitions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ClassBuilder constructs one class.
type ClassBuilder struct {
	b *Builder
	c *Class
}

// Name returns the fully qualified name of the class under construction.
func (cb *ClassBuilder) Name() string { return cb.c.Name }

// Extends sets the superclass.
func (cb *ClassBuilder) Extends(super string) *ClassBuilder {
	cb.c.SuperName = super
	return cb
}

// Field declares an instance field.
func (cb *ClassBuilder) Field(name string, t TypeRef) *ClassBuilder {
	cb.c.Fields = append(cb.c.Fields, &Field{Name: name, Type: t})
	return cb
}

// Static declares a static field.
func (cb *ClassBuilder) Static(name string, t TypeRef) *ClassBuilder {
	cb.c.Statics = append(cb.c.Statics, &Field{Name: name, Type: t, Static: true})
	return cb
}

// Method declares an instance method with the given value-parameter count
// (the receiver is parameter register 0, so NParams = params+1).
func (cb *ClassBuilder) Method(name string, params int, returns TypeRef) *MethodBuilder {
	return cb.newMethod(name, params+1, returns, false, false)
}

// StaticMethod declares a static method.
func (cb *ClassBuilder) StaticMethod(name string, params int, returns TypeRef) *MethodBuilder {
	return cb.newMethod(name, params, returns, true, false)
}

// Clinit declares the class initializer, which the image builder executes at
// build time.
func (cb *ClassBuilder) Clinit() *MethodBuilder {
	return cb.newMethod("<clinit>", 0, Void(), true, true)
}

func (cb *ClassBuilder) newMethod(name string, nparams int, returns TypeRef, static, clinit bool) *MethodBuilder {
	m := &Method{
		Class:   cb.c,
		Name:    name,
		Static:  static,
		Clinit:  clinit,
		NParams: nparams,
		Returns: returns,
		NumRegs: nparams,
	}
	cb.c.Methods = append(cb.c.Methods, m)
	mb := &MethodBuilder{b: cb.b, m: m}
	mb.entry = mb.NewBlock()
	cb.b.methods = append(cb.b.methods, mb)
	return mb
}

// MethodBuilder constructs one method body.
type MethodBuilder struct {
	b      *Builder
	m      *Method
	entry  *BlockBuilder
	blocks []*BlockBuilder
}

// Method returns the method under construction.
func (mb *MethodBuilder) Method() *Method { return mb.m }

// Entry returns the entry block builder.
func (mb *MethodBuilder) Entry() *BlockBuilder { return mb.entry }

// This returns the receiver register of an instance method.
func (mb *MethodBuilder) This() Reg { return 0 }

// Param returns the i-th value parameter register (skipping the receiver for
// instance methods).
func (mb *MethodBuilder) Param(i int) Reg {
	if mb.m.Static {
		return Reg(i)
	}
	return Reg(i + 1)
}

// NewBlock appends a fresh basic block.
func (mb *MethodBuilder) NewBlock() *BlockBuilder {
	blk := &Block{Index: len(mb.m.Blocks)}
	mb.m.Blocks = append(mb.m.Blocks, blk)
	bb := &BlockBuilder{mb: mb, blk: blk}
	mb.blocks = append(mb.blocks, bb)
	return bb
}

// NewReg allocates a fresh register.
func (mb *MethodBuilder) NewReg() Reg {
	r := Reg(mb.m.NumRegs)
	mb.m.NumRegs++
	return r
}

// BlockBuilder appends instructions to one basic block and finally sets its
// terminator. Every block must be terminated exactly once.
type BlockBuilder struct {
	mb         *MethodBuilder
	blk        *Block
	terminated bool
}

// Index returns the block index.
func (bb *BlockBuilder) Index() int { return bb.blk.Index }

func (bb *BlockBuilder) emit(in Instr) {
	if bb.terminated {
		bb.mb.b.errorf("ir: %s: emit into terminated block %d", bb.mb.m.Signature(), bb.blk.Index)
		return
	}
	bb.blk.Instrs = append(bb.blk.Instrs, in)
}

func (bb *BlockBuilder) dest() Reg { return bb.mb.NewReg() }

// ConstInt loads an integer literal.
func (bb *BlockBuilder) ConstInt(v int64) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpConstInt, A: int(d), Val: v})
	return d
}

// ConstFloat loads a float literal.
func (bb *BlockBuilder) ConstFloat(v float64) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpConstFloat, A: int(d), Val: int64(math.Float64bits(v))})
	return d
}

// Str loads a string literal.
func (bb *BlockBuilder) Str(s string) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpConstStr, A: int(d), Sym: s})
	return d
}

// Null loads the null reference.
func (bb *BlockBuilder) Null() Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpConstNull, A: int(d)})
	return d
}

// Move copies src into a fresh register.
func (bb *BlockBuilder) Move(src Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpMove, A: int(d), B: int(src)})
	return d
}

// MoveTo copies src into dst (used for loop-carried variables).
func (bb *BlockBuilder) MoveTo(dst, src Reg) {
	bb.emit(Instr{Op: OpMove, A: int(dst), B: int(src)})
}

// Arith computes an integer a <op> b into a fresh register.
func (bb *BlockBuilder) Arith(op ArithOp, a, b Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpArith, A: int(d), B: int(a), C: int(b), Val: int64(op)})
	return d
}

// ArithTo computes an integer a <op> b into dst.
func (bb *BlockBuilder) ArithTo(dst Reg, op ArithOp, a, b Reg) {
	bb.emit(Instr{Op: OpArith, A: int(dst), B: int(a), C: int(b), Val: int64(op)})
}

// FArith computes a float a <op> b into a fresh register.
func (bb *BlockBuilder) FArith(op ArithOp, a, b Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpFArith, A: int(d), B: int(a), C: int(b), Val: int64(op)})
	return d
}

// FArithTo computes a float a <op> b into dst.
func (bb *BlockBuilder) FArithTo(dst Reg, op ArithOp, a, b Reg) {
	bb.emit(Instr{Op: OpFArith, A: int(dst), B: int(a), C: int(b), Val: int64(op)})
}

// Cmp compares a and b, producing 0/1.
func (bb *BlockBuilder) Cmp(op CmpOp, a, b Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpCmp, A: int(d), B: int(a), C: int(b), Val: int64(op)})
	return d
}

// IntToFloat converts an integer register to float.
func (bb *BlockBuilder) IntToFloat(a Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpConvIF, A: int(d), B: int(a)})
	return d
}

// FloatToInt truncates a float register to integer.
func (bb *BlockBuilder) FloatToInt(a Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpConvFI, A: int(d), B: int(a)})
	return d
}

// New allocates an instance of the named class.
func (bb *BlockBuilder) New(class string) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpNew, A: int(d), Type: Ref(class)})
	return d
}

// NewArray allocates an array with the given element type and length.
func (bb *BlockBuilder) NewArray(elem TypeRef, length Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpNewArray, A: int(d), B: int(length), Type: elem})
	return d
}

// AGet loads arr[idx].
func (bb *BlockBuilder) AGet(arr, idx Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpArrayGet, A: int(d), B: int(arr), C: int(idx)})
	return d
}

// ASet stores arr[idx] = val.
func (bb *BlockBuilder) ASet(arr, idx, val Reg) {
	bb.emit(Instr{Op: OpArraySet, A: int(arr), B: int(idx), C: int(val)})
}

// ALen loads the length of arr.
func (bb *BlockBuilder) ALen(arr Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpArrayLen, A: int(d), B: int(arr)})
	return d
}

// GetField loads obj.field (field declared on or inherited by class).
func (bb *BlockBuilder) GetField(obj Reg, class, field string) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpGetField, A: int(d), B: int(obj), CName: class, Sym: field})
	return d
}

// PutField stores obj.field = val.
func (bb *BlockBuilder) PutField(obj Reg, class, field string, val Reg) {
	bb.emit(Instr{Op: OpPutField, A: int(obj), B: int(val), CName: class, Sym: field})
}

// GetStatic loads a static field.
func (bb *BlockBuilder) GetStatic(class, field string) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpGetStatic, A: int(d), CName: class, Sym: field})
	return d
}

// PutStatic stores a static field.
func (bb *BlockBuilder) PutStatic(class, field string, val Reg) {
	bb.emit(Instr{Op: OpPutStatic, A: int(val), CName: class, Sym: field})
}

// Call invokes a statically bound method and returns the result register.
func (bb *BlockBuilder) Call(class, method string, args ...Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpCall, A: int(d), CName: class, Sym: method, Args: regInts(args)})
	return d
}

// CallVoid invokes a statically bound method, discarding any result.
func (bb *BlockBuilder) CallVoid(class, method string, args ...Reg) {
	bb.emit(Instr{Op: OpCall, A: int(NoReg), CName: class, Sym: method, Args: regInts(args)})
}

// CallVirt invokes a method with dynamic dispatch on args[0].
func (bb *BlockBuilder) CallVirt(class, method string, args ...Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpCallVirt, A: int(d), CName: class, Sym: method, Args: regInts(args)})
	return d
}

// CallVirtVoid invokes a method with dynamic dispatch, discarding any result.
func (bb *BlockBuilder) CallVirtVoid(class, method string, args ...Reg) {
	bb.emit(Instr{Op: OpCallVirt, A: int(NoReg), CName: class, Sym: method, Args: regInts(args)})
}

// Intrinsic invokes a value-producing intrinsic.
func (bb *BlockBuilder) Intrinsic(name string, args ...Reg) Reg {
	d := bb.dest()
	bb.emit(Instr{Op: OpIntrinsic, A: int(d), Sym: name, Args: regInts(args)})
	return d
}

// IntrinsicVoid invokes a side-effect-only intrinsic.
func (bb *BlockBuilder) IntrinsicVoid(name string, args ...Reg) {
	bb.emit(Instr{Op: OpIntrinsic, A: int(NoReg), Sym: name, Args: regInts(args)})
}

// Spawn starts a thread running the static method target ("Class.method")
// with the given arguments.
func (bb *BlockBuilder) Spawn(target string, args ...Reg) {
	bb.emit(Instr{Op: OpIntrinsic, A: int(NoReg), Sym: IntrinsicSpawn, CName: target, Args: regInts(args)})
}

// Goto terminates the block with an unconditional jump.
func (bb *BlockBuilder) Goto(t *BlockBuilder) {
	bb.terminate(Term{Op: TermGoto, Then: t.blk.Index})
}

// If terminates the block with a conditional branch.
func (bb *BlockBuilder) If(cond Reg, then, els *BlockBuilder) {
	bb.terminate(Term{Op: TermIf, Cond: int(cond), Then: then.blk.Index, Else: els.blk.Index})
}

// Ret terminates the block returning v.
func (bb *BlockBuilder) Ret(v Reg) {
	bb.terminate(Term{Op: TermReturn, Ret: int(v)})
}

// RetVoid terminates the block with a void return.
func (bb *BlockBuilder) RetVoid() {
	bb.terminate(Term{Op: TermReturn, Ret: int(NoReg)})
}

func (bb *BlockBuilder) terminate(t Term) {
	if bb.terminated {
		bb.mb.b.errorf("ir: %s: block %d terminated twice", bb.mb.m.Signature(), bb.blk.Index)
		return
	}
	bb.blk.Term = t
	bb.terminated = true
}

// For emits a counted loop `for i := from; i < to; i += step { body }`
// starting from the receiver block. The body callback receives the first
// body block and the loop register, and must return the (unterminated) block
// where the body ends; For wires it back to the header. For returns the exit
// block, where construction continues.
func (bb *BlockBuilder) For(from, to Reg, step int64, body func(b *BlockBuilder, i Reg) *BlockBuilder) *BlockBuilder {
	mb := bb.mb
	i := bb.Move(from)
	head := mb.NewBlock()
	bodyBlk := mb.NewBlock()
	exit := mb.NewBlock()
	bb.Goto(head)
	cond := head.Cmp(Lt, i, to)
	head.If(cond, bodyBlk, exit)
	end := body(bodyBlk, i)
	stepR := end.ConstInt(step)
	end.ArithTo(i, Add, i, stepR)
	end.Goto(head)
	return exit
}

// While emits a loop whose condition is recomputed in a header block by the
// cond callback; body as in For. Returns the exit block.
func (bb *BlockBuilder) While(cond func(h *BlockBuilder) Reg, body func(b *BlockBuilder) *BlockBuilder) *BlockBuilder {
	mb := bb.mb
	head := mb.NewBlock()
	bodyBlk := mb.NewBlock()
	exit := mb.NewBlock()
	bb.Goto(head)
	c := cond(head)
	head.If(c, bodyBlk, exit)
	end := body(bodyBlk)
	end.Goto(head)
	return exit
}

// IfThen emits a one-armed conditional; fill must return its final
// unterminated block. Returns the join block.
func (bb *BlockBuilder) IfThen(cond Reg, fill func(t *BlockBuilder) *BlockBuilder) *BlockBuilder {
	mb := bb.mb
	then := mb.NewBlock()
	join := mb.NewBlock()
	bb.If(cond, then, join)
	end := fill(then)
	end.Goto(join)
	return join
}

// IfElse emits a two-armed conditional; each arm callback returns its final
// unterminated block. Returns the join block.
func (bb *BlockBuilder) IfElse(cond Reg, fillT, fillE func(b *BlockBuilder) *BlockBuilder) *BlockBuilder {
	mb := bb.mb
	then := mb.NewBlock()
	els := mb.NewBlock()
	join := mb.NewBlock()
	bb.If(cond, then, els)
	fillT(then).Goto(join)
	fillE(els).Goto(join)
	return join
}

func regInts(rs []Reg) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = int(r)
	}
	return out
}

// Dead returns a fresh unreachable block of the same method. Structured
// helpers (IfThen/IfElse/For/While) require their callbacks to return an
// unterminated block; a callback that ends in an explicit Ret uses Dead to
// hand back a placeholder for the helper's join wiring.
func (bb *BlockBuilder) Dead() *BlockBuilder { return bb.mb.NewBlock() }

// NewReg allocates a fresh register via the block's method; useful for
// variables assigned on both arms of a conditional.
func (bb *BlockBuilder) NewReg() Reg { return bb.mb.NewReg() }
