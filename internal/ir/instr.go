package ir

import "fmt"

// Op enumerates instruction opcodes of the register machine.
type Op uint8

const (
	// OpConstInt writes the integer literal Val into register A.
	OpConstInt Op = iota
	// OpConstFloat writes the float literal (Val holds the IEEE bits) into A.
	OpConstFloat
	// OpConstStr writes a reference to the string literal Sym into A. At
	// image build time each distinct literal of a compiled method becomes a
	// heap-snapshot root whose inclusion reason is the embedding method
	// (Sec. 5.3: "constant pointer embedded in a method").
	OpConstStr
	// OpConstNull writes the null reference into A.
	OpConstNull
	// OpMove copies register B into register A.
	OpMove
	// OpArith computes A = B <ArithOp(Val)> C on integers.
	OpArith
	// OpFArith computes A = B <ArithOp(Val)> C on floats.
	OpFArith
	// OpCmp computes A = (B <CmpOp(Val)> C) as 0/1. Operands follow the
	// integer/float kind of the registers at runtime.
	OpCmp
	// OpConvIF converts the integer in B to a float in A.
	OpConvIF
	// OpConvFI truncates the float in B to an integer in A.
	OpConvFI
	// OpNew allocates an instance of class Sym into A.
	OpNew
	// OpNewArray allocates an array with element type Type and length taken
	// from register B into A.
	OpNewArray
	// OpArrayGet loads A = B[C].
	OpArrayGet
	// OpArraySet stores A[B] = C.
	OpArraySet
	// OpArrayLen loads the length of array B into A.
	OpArrayLen
	// OpGetField loads A = B.<field Sym of class CName>.
	OpGetField
	// OpPutField stores A.<field Sym of class CName> = B.
	OpPutField
	// OpGetStatic loads A = <static field Sym of class CName>.
	OpGetStatic
	// OpPutStatic stores <static field Sym of class CName> = A.
	OpPutStatic
	// OpCall invokes the statically bound method Sym of class CName with
	// Args and stores the result (if any) into A. For instance methods the
	// receiver is Args[0].
	OpCall
	// OpCallVirt invokes method Sym with dynamic dispatch on the class of
	// the receiver Args[0] and stores the result (if any) into A.
	OpCallVirt
	// OpIntrinsic invokes the built-in operation Sym with Args and stores
	// the result (if any) into A. See the Intrinsic* constants.
	OpIntrinsic
)

// NumOps is the number of opcodes; valid Op values are [0, NumOps).
const NumOps = int(OpIntrinsic) + 1

var opNames = [...]string{
	OpConstInt: "const.i", OpConstFloat: "const.f", OpConstStr: "const.s",
	OpConstNull: "const.null", OpMove: "move", OpArith: "arith",
	OpFArith: "farith", OpCmp: "cmp", OpConvIF: "conv.if", OpConvFI: "conv.fi",
	OpNew: "new", OpNewArray: "newarray", OpArrayGet: "aget",
	OpArraySet: "aset", OpArrayLen: "alen", OpGetField: "getfield",
	OpPutField: "putfield", OpGetStatic: "getstatic", OpPutStatic: "putstatic",
	OpCall: "call", OpCallVirt: "callvirt", OpIntrinsic: "intrinsic",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ArithOp enumerates arithmetic operators for OpArith/OpFArith (stored in
// Instr.Val).
type ArithOp int64

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
)

// CmpOp enumerates comparison operators for OpCmp (stored in Instr.Val).
type CmpOp int64

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// Intrinsic names understood by the interpreter (Instr.Sym of OpIntrinsic).
const (
	// IntrinsicPrint consumes one argument; models console output cost.
	IntrinsicPrint = "print"
	// IntrinsicArg returns the program argument with index Args[0].
	IntrinsicArg = "arg"
	// IntrinsicRespond marks the first external response of a microservice
	// workload; the harness measures elapsed time until it executes
	// (Sec. 7.1) and then delivers SIGKILL.
	IntrinsicRespond = "respond"
	// IntrinsicSpawn starts a new thread executing the static method named
	// by Instr.CName (in "Class.method" form). Args, if present, pass one
	// integer to the thread entry. Threads are scheduled deterministically
	// by the interpreter.
	IntrinsicSpawn = "spawn"
	// IntrinsicYield hints the deterministic scheduler to switch threads.
	IntrinsicYield = "yield"
	// IntrinsicBuildSalt returns a value that differs between image builds
	// (it models timestamps, identity hash codes, and random seeds captured
	// by class initializers, one of the heap-divergence sources of Sec. 2).
	IntrinsicBuildSalt = "buildsalt"
	// IntrinsicIntern interns the string in Args[0]; at build time the
	// result becomes an InternedString heap root (Sec. 5.3).
	IntrinsicIntern = "intern"
	// IntrinsicConcat returns the concatenation of two strings.
	IntrinsicConcat = "concat"
	// IntrinsicStrLen returns the length of the string in Args[0].
	IntrinsicStrLen = "strlen"
	// IntrinsicStrHash returns a deterministic content hash of a string.
	IntrinsicStrHash = "strhash"
	// IntrinsicItoa converts the integer in Args[0] to a string.
	IntrinsicItoa = "itoa"
	// IntrinsicStrChar returns the byte of string Args[0] at index Args[1].
	IntrinsicStrChar = "strchar"
	// IntrinsicStrEq returns 1 when the strings in Args[0] and Args[1] have
	// equal contents.
	IntrinsicStrEq = "streq"
	// IntrinsicAbsF returns the absolute value of the float in Args[0].
	IntrinsicAbsF = "absf"
	// IntrinsicSqrt returns the square root of the float in Args[0].
	IntrinsicSqrt = "sqrt"
	// IntrinsicCos / IntrinsicSin are trigonometric helpers for AWFY.
	IntrinsicCos = "cos"
	IntrinsicSin = "sin"
)

// Instr is a single three-address instruction. The meaning of the operand
// fields depends on Op; unused fields are zero.
type Instr struct {
	Op Op
	// A is the destination register for producing instructions, or the
	// object/array register for OpArraySet/OpPutField/OpPutStatic.
	A int
	// B and C are source registers.
	B, C int
	// Val is the integer literal, float bits, or operator code.
	Val int64
	// Sym is the string literal, field name, method name, or intrinsic name.
	Sym string
	// CName is the class name qualifying Sym for field/method instructions.
	CName string
	// Type is the allocated type for OpNew (KRef) / OpNewArray (element).
	Type TypeRef
	// Args are the argument registers of calls and intrinsics.
	Args []int

	// Resolved links, populated by Program.Resolve.

	// Field is the resolved field for field instructions.
	Field *Field
	// Method is the resolved statically bound target for OpCall, or the
	// resolution root for OpCallVirt.
	Method *Method
	// Class is the resolved class for OpNew.
	Class *Class
}

// HasDest reports whether the instruction writes register A.
func (in *Instr) HasDest() bool {
	switch in.Op {
	case OpArraySet, OpPutField, OpPutStatic:
		return false
	case OpIntrinsic:
		switch in.Sym {
		case IntrinsicPrint, IntrinsicRespond, IntrinsicSpawn, IntrinsicYield:
			return false
		}
		return true
	case OpCall, OpCallVirt:
		return in.A >= 0
	}
	return true
}

// CodeSize returns the estimated machine-code size in bytes that this
// instruction contributes to its method. The inliner (internal/graal) is
// size-driven, so these estimates — not the real x86 encoding — determine
// compilation-unit formation, exactly as Graal's node-cost estimates do.
func (in *Instr) CodeSize() int {
	switch in.Op {
	case OpConstInt, OpConstFloat:
		return 10
	case OpConstStr, OpConstNull:
		return 8
	case OpMove:
		return 3
	case OpArith, OpFArith, OpCmp:
		return 4
	case OpConvIF, OpConvFI:
		return 4
	case OpNew:
		return 24 // allocation fast path
	case OpNewArray:
		return 28
	case OpArrayGet, OpArraySet:
		return 9 // bounds check + access
	case OpArrayLen:
		return 4
	case OpGetField, OpPutField:
		return 7
	case OpGetStatic, OpPutStatic:
		return 8
	case OpCall:
		return 12 + 2*len(in.Args)
	case OpCallVirt:
		return 18 + 2*len(in.Args) // vtable load + indirect call
	case OpIntrinsic:
		return 14
	default:
		return 8
	}
}

// TermOp enumerates block terminators.
type TermOp uint8

const (
	// TermGoto jumps unconditionally to Then.
	TermGoto TermOp = iota
	// TermIf jumps to Then when register Cond is nonzero, else to Else.
	TermIf
	// TermReturn leaves the method, returning register Ret (or none if
	// Ret < 0).
	TermReturn
)

// Term is the terminator of a basic block.
type Term struct {
	Op   TermOp
	Cond int // register for TermIf
	Then int // target block index
	Else int // target block index for TermIf
	Ret  int // return value register for TermReturn; -1 for void
}

// CodeSize returns the estimated machine-code size of the terminator.
func (t Term) CodeSize() int {
	switch t.Op {
	case TermGoto:
		return 5
	case TermIf:
		return 8
	case TermReturn:
		return 6
	default:
		return 5
	}
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Blocks are identified by their index within the method.
type Block struct {
	Index  int
	Instrs []Instr
	Term   Term
}
