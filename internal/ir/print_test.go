package ir

import (
	"strings"
	"testing"
)

func TestDisassemble(t *testing.T) {
	b := NewBuilder("dis")
	b.Class(StringClass)
	c := b.Class("D").Field("x", Int())
	c.Static("s", Ref("D"))
	m := c.StaticMethod("f", 1, Int())
	e := m.Entry()
	o := e.New("D")
	k := e.ConstInt(7)
	e.PutField(o, "D", "x", k)
	v := e.GetField(o, "D", "x")
	fl := e.ConstFloat(1.5)
	e.FArith(Mul, fl, fl)
	st := e.Str("lit")
	e.Intrinsic(IntrinsicStrLen, st)
	e.PutStatic("D", "s", o)
	back := e.GetStatic("D", "s")
	_ = back
	n := e.ConstInt(2)
	arr := e.NewArray(Int(), n)
	e.ASet(arr, k, v)
	got := e.AGet(arr, k)
	e.ALen(arr)
	cond := e.Cmp(Lt, got, v)
	yes := m.NewBlock()
	no := m.NewBlock()
	e.If(cond, yes, no)
	yes.Ret(v)
	nl := no.Null()
	_ = nl
	no.CallVoid("D", "f", v)
	no.Spawn("D.f", v)
	no.RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p.Class("D").DeclaredMethod("f"))
	for _, want := range []string{
		"D.f(1) [static,",
		"b0:",
		"new D",
		"const.i 7",
		"putfield r1.D.x = r2",
		"getfield r1.D.x",
		"farith mul",
		`const.s "lit"`,
		"intrinsic strlen(r6)",
		"putstatic D.s = r1",
		"getstatic D.s",
		"newarray long[r9]",
		"aset r10[r2] = r3",
		"aget r10[r2]",
		"alen r10",
		"cmp lt",
		"if r13 -> b1 else b2",
		"ret r3",
		"const.null",
		"call D.f(r3)",
		"intrinsic spawn D.f(r3)",
		"ret\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleClinit(t *testing.T) {
	b := NewBuilder("dis2")
	c := b.Class("C")
	cl := c.Clinit()
	cl.Entry().RetVoid()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p.Class("C").Clinit())
	if !strings.Contains(out, "[clinit,") {
		t.Errorf("clinit marker missing:\n%s", out)
	}
}
