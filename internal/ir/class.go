package ir

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Field describes an instance or static field of a class.
type Field struct {
	// Class is the declaring class (resolved).
	Class *Class
	Name  string
	Type  TypeRef
	// Static reports whether this is a class (static) field.
	Static bool
	// Slot is the index of the field in the instance layout (AllFields) for
	// instance fields, or in Class.Statics for static fields. Populated by
	// Program.Resolve.
	Slot int
}

// Descriptor renders the field as "Class.name:Type" — the form hashed by
// the heap-path strategy (Algorithm 3, line 20).
func (f *Field) Descriptor() string {
	return f.Class.Name + "." + f.Name + ":" + f.Type.FullyQualifiedName()
}

// Signature renders the field as "Class.name" — the heap-inclusion reason
// of objects stored in reachable static fields (Sec. 5.3).
func (f *Field) Signature() string {
	return f.Class.Name + "." + f.Name
}

// Method is a method of a class. Bodies are CFGs over a register file:
// registers [0, NParams) hold the parameters (register 0 is the receiver of
// instance methods); NumRegs is the total register count.
type Method struct {
	// Class is the declaring class (resolved).
	Class *Class
	Name  string
	// Static reports whether the method has no receiver. Non-static methods
	// take the receiver as parameter register 0.
	Static bool
	// NParams counts parameter registers, including the receiver.
	NParams int
	// Returns is the return type (KVoid for none).
	Returns TypeRef
	// NumRegs is the size of the register file.
	NumRegs int
	// Blocks is the CFG; Blocks[0] is the entry.
	Blocks []*Block

	// Clinit marks the class initializer. Class initializers execute at
	// image build time and populate the initial heap (Sec. 2).
	Clinit bool

	// size caches the code-size estimate. Atomic because concurrent image
	// builds of the same program (the eval scheduler) race to fill it; all
	// writers compute the same value, so any winner is correct.
	size atomic.Int64
}

// Signature renders the globally unique method signature,
// "Class.name(n)" with n the parameter count. Signatures are stable across
// builds and are the keys of the code-ordering profiles (Sec. 4).
func (m *Method) Signature() string {
	return m.Class.Name + "." + m.Name + "(" + strconv.Itoa(m.NParams) + ")"
}

// CodeSize returns the estimated compiled size of the method body in bytes,
// excluding inlinees. The estimate drives the size-driven inliner.
func (m *Method) CodeSize() int {
	if s := m.size.Load(); s != 0 {
		return int(s)
	}
	const prologue = 16
	s := prologue
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			s += b.Instrs[i].CodeSize()
		}
		s += b.Term.CodeSize()
	}
	m.size.Store(int64(s))
	return s
}

// InvalidateSizeCache discards the cached code-size estimate; callers that
// mutate blocks after resolution (e.g. instrumentation) must invalidate.
func (m *Method) InvalidateSizeCache() { m.size.Store(0) }

// Class is a class definition. Single inheritance; subclasses may override
// methods by redefining the same name.
type Class struct {
	// Name is the fully qualified class name.
	Name string
	// SuperName is the fully qualified name of the superclass; empty for a
	// root class.
	SuperName string
	// Super is the resolved superclass.
	Super *Class
	// Fields are the instance fields declared by this class, in source
	// order (Algorithm 2 iterates fields in source-code definition order).
	Fields []*Field
	// Statics are the static fields declared by this class.
	Statics []*Field
	// Methods are the methods declared by this class, in source order.
	Methods []*Method

	// AllFields is the full instance layout: inherited fields first (in
	// hierarchy order), then own fields. Populated by Program.Resolve.
	AllFields []*Field

	// ID is the stable type identifier. Type IDs are assigned from the
	// sorted order of fully qualified names so that — as Sec. 5.1 requires —
	// the same type has the same ID in every build of the program.
	ID int

	methodsByName map[string]*Method
	subclasses    []*Class
}

// Clinit returns the class initializer method, or nil.
func (c *Class) Clinit() *Method {
	for _, m := range c.Methods {
		if m.Clinit {
			return m
		}
	}
	return nil
}

// DeclaredMethod returns the method declared directly on c with the given
// name, or nil.
func (c *Class) DeclaredMethod(name string) *Method {
	return c.methodsByName[name]
}

// LookupMethod resolves name against c and its superclasses, returning the
// most derived declaration (virtual dispatch).
func (c *Class) LookupMethod(name string) *Method {
	for k := c; k != nil; k = k.Super {
		if m := k.methodsByName[name]; m != nil {
			return m
		}
	}
	return nil
}

// LookupField resolves an instance field by name against c and its
// superclasses.
func (c *Class) LookupField(name string) *Field {
	for k := c; k != nil; k = k.Super {
		for _, f := range k.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// LookupStatic resolves a static field by name against c and its
// superclasses.
func (c *Class) LookupStatic(name string) *Field {
	for k := c; k != nil; k = k.Super {
		for _, f := range k.Statics {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// Subclasses returns the direct subclasses of c (populated by Resolve).
func (c *Class) Subclasses() []*Class { return c.subclasses }

// IsSubclassOf reports whether c equals or derives from k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

func (c *Class) String() string { return c.Name }

// Overriders returns every method that overrides root in the subtree below
// root's class, including root itself. This is the conservative virtual-call
// target set used by the reachability analysis.
func Overriders(root *Method) []*Method {
	var out []*Method
	var walk func(c *Class)
	walk = func(c *Class) {
		if m := c.methodsByName[root.Name]; m != nil {
			out = append(out, m)
		}
		for _, sub := range c.subclasses {
			walk(sub)
		}
	}
	walk(root.Class)
	if len(out) == 0 {
		out = append(out, root)
	}
	return out
}

func (c *Class) resolveInto(p *Program) error {
	if c.SuperName != "" {
		s := p.Class(c.SuperName)
		if s == nil {
			return fmt.Errorf("ir: class %s: unknown superclass %s", c.Name, c.SuperName)
		}
		c.Super = s
		s.subclasses = append(s.subclasses, c)
	}
	c.methodsByName = make(map[string]*Method, len(c.Methods))
	for _, m := range c.Methods {
		if _, dup := c.methodsByName[m.Name]; dup {
			return fmt.Errorf("ir: class %s: duplicate method %s", c.Name, m.Name)
		}
		c.methodsByName[m.Name] = m
		m.Class = c
	}
	seen := make(map[string]bool, len(c.Fields)+len(c.Statics))
	for _, f := range c.Fields {
		if seen[f.Name] {
			return fmt.Errorf("ir: class %s: duplicate field %s", c.Name, f.Name)
		}
		seen[f.Name] = true
		f.Class = c
	}
	for _, f := range c.Statics {
		if seen[f.Name] {
			return fmt.Errorf("ir: class %s: duplicate field %s", c.Name, f.Name)
		}
		seen[f.Name] = true
		f.Class = c
		f.Static = true
	}
	return nil
}

// layoutFields computes AllFields for c, resolving superclasses first.
func (c *Class) layoutFields() {
	if c.AllFields != nil {
		return
	}
	var layout []*Field
	if c.Super != nil {
		c.Super.layoutFields()
		layout = append(layout, c.Super.AllFields...)
	}
	layout = append(layout, c.Fields...)
	// Single inheritance means the layout of a subclass extends its
	// superclass layout, so an inherited field has the same slot in every
	// class that sees it.
	for i, f := range layout {
		f.Slot = i
	}
	c.AllFields = layout
}
