package ir

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// buildCodecProgram constructs a program exercising every encodable
// feature: inheritance, statics, resources, floats, arrays, virtual calls,
// intrinsics, all terminators.
func buildCodecProgram(t testing.TB) *Program {
	t.Helper()
	b := NewBuilder("codec")
	b.Class(StringClass)
	b.Resource("data/a.bin", 123)
	b.Resource("data/b.bin", 4567)

	base := b.Class("pkg.Base")
	base.Field("x", Int())
	base.Field("f", Float())
	base.Static("cache", Array(Ref("pkg.Base")))
	bm := base.Method("calc", 1, Int())
	be := bm.Entry()
	v := be.GetField(bm.This(), "pkg.Base", "x")
	s := be.Arith(Add, v, bm.Param(0))
	cond := be.Cmp(Gt, s, v)
	yes := bm.NewBlock()
	no := bm.NewBlock()
	be.If(cond, yes, no)
	yes.Ret(s)
	no.Ret(v)

	sub := b.Class("pkg.Sub").Extends("pkg.Base")
	sm := sub.Method("calc", 1, Int())
	se := sm.Entry()
	two := se.ConstInt(2)
	se.Ret(se.Arith(Mul, sm.Param(0), two))

	main := b.Class("Main")
	cl := main.Clinit()
	ce := cl.Entry()
	one := ce.ConstInt(1)
	arr := ce.NewArray(Ref("pkg.Base"), one)
	ce.PutStatic("pkg.Base", "cache", arr)
	ce.RetVoid()

	mm := main.StaticMethod("main", 0, Void())
	e := mm.Entry()
	o := e.New("pkg.Sub")
	k := e.ConstInt(3)
	e.CallVirt("pkg.Base", "calc", o, k)
	fv := e.ConstFloat(2.75)
	e.FArith(Div, fv, fv)
	str := e.Str("hello codec")
	e.Intrinsic(IntrinsicStrLen, str)
	e.Null()
	e.RetVoid()
	b.SetEntry("Main", "main")

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramCodecRoundTrip(t *testing.T) {
	p := buildCodecProgram(t)
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.EntryClass != p.EntryClass || q.EntryMethod != p.EntryMethod {
		t.Errorf("program identity: %s %s.%s", q.Name, q.EntryClass, q.EntryMethod)
	}
	if len(q.Resources) != 2 || q.Resources[1].Size != 4567 {
		t.Errorf("resources: %+v", q.Resources)
	}
	if len(q.Classes) != len(p.Classes) {
		t.Fatalf("classes: %d vs %d", len(q.Classes), len(p.Classes))
	}
	for i := range p.Classes {
		pc, qc := p.Classes[i], q.Classes[i]
		if pc.Name != qc.Name || pc.SuperName != qc.SuperName {
			t.Fatalf("class %d identity", i)
		}
		if len(pc.Methods) != len(qc.Methods) || len(pc.Fields) != len(qc.Fields) || len(pc.Statics) != len(qc.Statics) {
			t.Fatalf("class %s shape", pc.Name)
		}
		for mi := range pc.Methods {
			pm, qm := pc.Methods[mi], qc.Methods[mi]
			if pm.Signature() != qm.Signature() || pm.Static != qm.Static || pm.Clinit != qm.Clinit {
				t.Fatalf("method %s identity", pm.Signature())
			}
			if pm.NumRegs != qm.NumRegs || len(pm.Blocks) != len(qm.Blocks) {
				t.Fatalf("method %s shape", pm.Signature())
			}
			if pm.CodeSize() != qm.CodeSize() {
				t.Errorf("method %s code size %d vs %d", pm.Signature(), pm.CodeSize(), qm.CodeSize())
			}
			for bi := range pm.Blocks {
				pb, qb := pm.Blocks[bi], qm.Blocks[bi]
				if pb.Term != qb.Term {
					t.Fatalf("%s block %d terminator", pm.Signature(), bi)
				}
				if len(pb.Instrs) != len(qb.Instrs) {
					t.Fatalf("%s block %d instr count", pm.Signature(), bi)
				}
				for ii := range pb.Instrs {
					pi, qi := pb.Instrs[ii], qb.Instrs[ii]
					if pi.Op != qi.Op || pi.A != qi.A || pi.B != qi.B || pi.C != qi.C ||
						pi.Val != qi.Val || pi.Sym != qi.Sym || pi.CName != qi.CName ||
						!pi.Type.Equal(qi.Type) || len(pi.Args) != len(qi.Args) {
						t.Fatalf("%s block %d instr %d mismatch:\n%+v\n%+v", pm.Signature(), bi, ii, pi, qi)
					}
				}
			}
		}
	}
	// Decoded program must be resolved and re-encodable to identical bytes.
	if !q.Resolved() {
		t.Error("decoded program not resolved")
	}
	var buf2 bytes.Buffer
	if err := EncodeProgram(&buf2, q); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := EncodeProgram(&buf1, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding is not canonical")
	}
}

func TestProgramCodecRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("XXXX123456"),
		"truncated": func() []byte {
			p := buildCodecProgram(t)
			var buf bytes.Buffer
			if err := EncodeProgram(&buf, p); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()/2]
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeProgram(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestProgramCodecNegativeRegisterFields(t *testing.T) {
	// CallVoid uses A = -1 (NoReg); zigzag must preserve it.
	b := NewBuilder("neg")
	b.Class(StringClass)
	c := b.Class("A")
	g := c.StaticMethod("g", 0, Void())
	g.Entry().RetVoid()
	m := c.StaticMethod("f", 0, Void())
	e := m.Entry()
	e.CallVoid("A", "g")
	e.RetVoid()
	b.SetEntry("A", "f")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := q.Class("A").DeclaredMethod("f").Blocks[0].Instrs[0]
	if in.A != int(NoReg) {
		t.Errorf("A = %d, want %d", in.A, NoReg)
	}
}

func TestProgramCodecUnresolvableRejected(t *testing.T) {
	// Corrupt a valid encoding so it decodes structurally but fails to
	// resolve: encode a program whose call target is missing by building
	// the encoding manually is brittle; instead check the error path via a
	// program with an entry class that does not exist.
	p := &Program{Name: "bad", EntryClass: "Nope", EntryMethod: "main"}
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeProgram(&buf); err == nil || !strings.Contains(err.Error(), "resolve") {
		t.Errorf("err = %v", err)
	}
}

// TestProgramCodecCanonicalOnLargePrograms: every built-in style program
// shape survives the codec; canonical re-encoding is byte-identical.
func TestProgramCodecCanonicalOnLargePrograms(t *testing.T) {
	// Use the codec test program plus a generated many-class program.
	progs := []*Program{buildCodecProgram(t)}
	b := NewBuilder("many")
	b.Class(StringClass)
	for i := 0; i < 40; i++ {
		c := b.Class(fmt.Sprintf("pkg%d.C", i))
		c.Field("x", Int())
		m := c.StaticMethod("f", 1, Int())
		e := m.Entry()
		acc := e.Move(m.Param(0))
		for k := 0; k < 5; k++ {
			kc := e.ConstInt(int64(k * i))
			e.ArithTo(acc, Add, acc, kc)
		}
		e.Ret(acc)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	progs = append(progs, p)

	for _, p := range progs {
		var b1 bytes.Buffer
		if err := EncodeProgram(&b1, p); err != nil {
			t.Fatal(err)
		}
		q, err := DecodeProgram(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := EncodeProgram(&b2, q); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s: re-encoding differs (%d vs %d bytes)", p.Name, b1.Len(), b2.Len())
		}
	}
}
