package ir

import (
	"fmt"
	"sort"
)

// Resource models an embedded resource file; at image build time each
// resource becomes a byte-array heap object whose inclusion reason is
// "Resource" (Sec. 5.3).
type Resource struct {
	Name string
	Size int
}

// Program is a complete closed-world program: the application together with
// everything on its classpath. The image builder compiles all reachable
// methods from it (Sec. 2: the analysis is conservative and includes more
// code than is executed).
type Program struct {
	Name string
	// Classes in declaration (classpath) order.
	Classes []*Class
	// EntryClass/EntryMethod name the static main method.
	EntryClass  string
	EntryMethod string
	// Resources are embedded resource files.
	Resources []Resource

	byName   map[string]*Class
	resolved bool
}

// Class returns the class with the given fully qualified name, or nil.
func (p *Program) Class(name string) *Class { return p.byName[name] }

// Entry returns the resolved entry method.
func (p *Program) Entry() *Method {
	c := p.Class(p.EntryClass)
	if c == nil {
		return nil
	}
	return c.DeclaredMethod(p.EntryMethod)
}

// Resolved reports whether Resolve succeeded on this program.
func (p *Program) Resolved() bool { return p.resolved }

// Resolve links all symbolic references, computes field layouts and stable
// type IDs, and validates every method body. It must be called once after
// construction and before the program is compiled or executed.
func (p *Program) Resolve() error {
	if p.resolved {
		return nil
	}
	p.byName = make(map[string]*Class, len(p.Classes))
	for _, c := range p.Classes {
		if c.Name == "" {
			return fmt.Errorf("ir: program %s: class with empty name", p.Name)
		}
		if _, dup := p.byName[c.Name]; dup {
			return fmt.Errorf("ir: program %s: duplicate class %s", p.Name, c.Name)
		}
		p.byName[c.Name] = c
	}
	for _, c := range p.Classes {
		if err := c.resolveInto(p); err != nil {
			return err
		}
	}
	// Detect inheritance cycles before laying out fields.
	for _, c := range p.Classes {
		slow, fast := c, c
		for fast != nil && fast.Super != nil {
			slow, fast = slow.Super, fast.Super.Super
			if slow == fast {
				return fmt.Errorf("ir: inheritance cycle through %s", c.Name)
			}
		}
	}
	for _, c := range p.Classes {
		c.layoutFields()
	}
	// Stable type IDs: sorted fully qualified names (Sec. 5.1 — types are
	// identified by name across compilations). ID 0 is reserved for null.
	names := make([]string, 0, len(p.Classes))
	for _, c := range p.Classes {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	for i, n := range names {
		p.byName[n].ID = i + 1
	}
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if err := p.resolveMethod(m); err != nil {
				return err
			}
		}
	}
	if p.EntryClass != "" {
		e := p.Entry()
		if e == nil {
			return fmt.Errorf("ir: program %s: entry %s.%s not found", p.Name, p.EntryClass, p.EntryMethod)
		}
		if !e.Static {
			return fmt.Errorf("ir: program %s: entry %s is not static", p.Name, e.Signature())
		}
	}
	p.resolved = true
	return nil
}

func (p *Program) resolveMethod(m *Method) error {
	where := func() string { return "ir: method " + m.Signature() }
	if len(m.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", where())
	}
	if m.NParams > m.NumRegs {
		return fmt.Errorf("%s: NParams %d > NumRegs %d", where(), m.NParams, m.NumRegs)
	}
	checkReg := func(r int) error {
		if r < 0 || r >= m.NumRegs {
			return fmt.Errorf("%s: register %d out of range [0,%d)", where(), r, m.NumRegs)
		}
		return nil
	}
	checkBlock := func(b int) error {
		if b < 0 || b >= len(m.Blocks) {
			return fmt.Errorf("%s: block target %d out of range [0,%d)", where(), b, len(m.Blocks))
		}
		return nil
	}
	for bi, b := range m.Blocks {
		if b.Index != bi {
			return fmt.Errorf("%s: block %d has index %d", where(), bi, b.Index)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if err := p.resolveInstr(m, in, checkReg); err != nil {
				return fmt.Errorf("%s: block %d instr %d (%s): %w", where(), bi, ii, in.Op, err)
			}
		}
		switch b.Term.Op {
		case TermGoto:
			if err := checkBlock(b.Term.Then); err != nil {
				return err
			}
		case TermIf:
			if err := checkReg(b.Term.Cond); err != nil {
				return err
			}
			if err := checkBlock(b.Term.Then); err != nil {
				return err
			}
			if err := checkBlock(b.Term.Else); err != nil {
				return err
			}
		case TermReturn:
			if b.Term.Ret >= 0 {
				if err := checkReg(b.Term.Ret); err != nil {
					return err
				}
				if m.Returns.Kind == KVoid {
					return fmt.Errorf("%s: block %d returns a value from a void method", where(), bi)
				}
			}
		default:
			return fmt.Errorf("%s: block %d: invalid terminator %d", where(), bi, b.Term.Op)
		}
	}
	return nil
}

func (p *Program) resolveInstr(m *Method, in *Instr, checkReg func(int) error) error {
	regs := func(rs ...int) error {
		for _, r := range rs {
			if err := checkReg(r); err != nil {
				return err
			}
		}
		return nil
	}
	argRegs := func() error {
		for _, r := range in.Args {
			if err := checkReg(r); err != nil {
				return err
			}
		}
		return nil
	}
	switch in.Op {
	case OpConstInt, OpConstFloat, OpConstStr, OpConstNull:
		return regs(in.A)
	case OpMove, OpConvIF, OpConvFI, OpArrayLen:
		return regs(in.A, in.B)
	case OpArith, OpFArith, OpCmp, OpArrayGet, OpArraySet:
		return regs(in.A, in.B, in.C)
	case OpNew:
		if err := regs(in.A); err != nil {
			return err
		}
		c := p.Class(in.Type.Name)
		if in.Type.Kind != KRef || c == nil {
			return fmt.Errorf("unknown class %q", in.Type.Name)
		}
		in.Class = c
		return nil
	case OpNewArray:
		if err := regs(in.A, in.B); err != nil {
			return err
		}
		if err := in.Type.validate(); err != nil {
			return err
		}
		if in.Type.Kind == KRef && in.Type.Name != StringClass && p.Class(in.Type.Name) == nil {
			return fmt.Errorf("unknown element class %q", in.Type.Name)
		}
		return nil
	case OpGetField, OpPutField:
		if err := regs(in.A, in.B); err != nil {
			return err
		}
		c := p.Class(in.CName)
		if c == nil {
			return fmt.Errorf("unknown class %q", in.CName)
		}
		f := c.LookupField(in.Sym)
		if f == nil {
			return fmt.Errorf("unknown field %s.%s", in.CName, in.Sym)
		}
		in.Field = f
		return nil
	case OpGetStatic, OpPutStatic:
		if err := regs(in.A); err != nil {
			return err
		}
		c := p.Class(in.CName)
		if c == nil {
			return fmt.Errorf("unknown class %q", in.CName)
		}
		f := c.LookupStatic(in.Sym)
		if f == nil {
			return fmt.Errorf("unknown static field %s.%s", in.CName, in.Sym)
		}
		in.Field = f
		return nil
	case OpCall, OpCallVirt:
		if in.A >= 0 {
			if err := regs(in.A); err != nil {
				return err
			}
		}
		if err := argRegs(); err != nil {
			return err
		}
		c := p.Class(in.CName)
		if c == nil {
			return fmt.Errorf("unknown class %q", in.CName)
		}
		t := c.LookupMethod(in.Sym)
		if t == nil {
			return fmt.Errorf("unknown method %s.%s", in.CName, in.Sym)
		}
		if len(in.Args) != t.NParams {
			return fmt.Errorf("call to %s with %d args, want %d", t.Signature(), len(in.Args), t.NParams)
		}
		if in.Op == OpCallVirt && t.Static {
			return fmt.Errorf("virtual call to static method %s", t.Signature())
		}
		in.Method = t
		return nil
	case OpIntrinsic:
		if in.Sym == "" {
			return fmt.Errorf("intrinsic with empty name")
		}
		if in.HasDest() {
			if err := regs(in.A); err != nil {
				return err
			}
		}
		return argRegs()
	default:
		return fmt.Errorf("invalid opcode %d", in.Op)
	}
}

// Methods returns every method of every class, in declaration order.
func (p *Program) Methods() []*Method {
	var out []*Method
	for _, c := range p.Classes {
		out = append(out, c.Methods...)
	}
	return out
}

// NumMethods returns the total method count.
func (p *Program) NumMethods() int {
	n := 0
	for _, c := range p.Classes {
		n += len(c.Methods)
	}
	return n
}
