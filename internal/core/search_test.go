package core

// Tests for the search-candidate plumbing: perturbations are always
// permutations, generation and the standalone graph-scored search are
// deterministic, the sweep grids cover the default parameters, and the
// order digest distinguishes position.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"nimage/internal/obs/affinity"
)

// searchTestGraph is a graph rich enough that the orderers produce
// several chains and the perturbation neighbourhood is non-trivial.
func searchTestGraph() *affinity.Graph {
	nodes := []affinity.Node{
		cuNode("A", 256, 100),
		cuNode("B", 192, 90),
		cuNode("C", 320, 60),
		cuNode("D", 128, 55),
		cuNode("E", 512, 20),
		cuNode("F", 64, 15),
		cuNode("G", 4096, 5),
	}
	for i := range nodes {
		nodes[i].FirstClock = int64(i + 1)
	}
	return testGraph(nodes, []affinity.Edge{
		{A: 0, B: 1, Weight: 50},
		{A: 2, B: 3, Weight: 40},
		{A: 4, B: 5, Weight: 9},
		{A: 1, B: 2, Weight: 6},
	})
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

// TestSearchPerturbationsArePermutations: every generated perturbation
// holds exactly the incumbent's symbols (as a multiset), for a spread of
// order sizes, iterations and seeds — the property the metamorphic image
// tests lean on.
func TestSearchPerturbationsArePermutations(t *testing.T) {
	for _, size := range []int{2, 3, 5, 9, 17, 64} {
		incumbent := make([]string, size)
		for i := range incumbent {
			incumbent[i] = fmt.Sprintf("sym%03d", i)
		}
		want := sortedCopy(incumbent)
		for _, seed := range []uint64{1, 0x5ea2c4, ^uint64(0)} {
			for iter := 1; iter <= 3; iter++ {
				for _, c := range SearchPerturbations(incumbent, iter, seed, 9) {
					if got := sortedCopy(c.Order); !reflect.DeepEqual(got, want) {
						t.Fatalf("size %d seed %#x iter %d candidate %s: not a permutation\n got %v\nwant %v",
							size, seed, iter, c.ID, got, want)
					}
				}
			}
		}
	}
}

// TestSearchPerturbationsDeterministic: the same (incumbent, iter, seed)
// yields bit-identical candidates, and different iterations explore
// different neighbourhoods.
func TestSearchPerturbationsDeterministic(t *testing.T) {
	incumbent := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	a := SearchPerturbations(incumbent, 1, 42, 6)
	b := SearchPerturbations(incumbent, 1, 42, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs produced different candidates:\n%v\n%v", a, b)
	}
	if len(a) != 6 {
		t.Fatalf("got %d candidates, want 6", len(a))
	}
	// The incumbent must be left untouched by generation.
	if !reflect.DeepEqual(incumbent, []string{"a", "b", "c", "d", "e", "f", "g", "h"}) {
		t.Fatalf("incumbent mutated: %v", incumbent)
	}
}

// TestSearchPerturbationsEmptyNeighbourhood: orders too short to perturb
// and non-positive budgets yield nothing.
func TestSearchPerturbationsEmptyNeighbourhood(t *testing.T) {
	if got := SearchPerturbations([]string{"only"}, 1, 1, 4); got != nil {
		t.Errorf("singleton order produced %v", got)
	}
	if got := SearchPerturbations([]string{"a", "b"}, 1, 1, 0); got != nil {
		t.Errorf("zero budget produced %v", got)
	}
}

// TestSearchSeedsAndSweeps: the seed candidates are the plain c3/ext-tsp
// orders, and the sweep grids include the default parameters (whose
// candidates tie the seeds and dedupe away by digest).
func TestSearchSeedsAndSweeps(t *testing.T) {
	g := searchTestGraph()
	seeds := SearchSeeds(g)
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds, want 2", len(seeds))
	}
	if !reflect.DeepEqual(seeds[0].Order, C3Order(g)) || seeds[0].ID != StrategyC3 {
		t.Errorf("seed 0 = %+v, want plain c3", seeds[0])
	}
	if !reflect.DeepEqual(seeds[1].Order, ExtTSPOrder(g)) || seeds[1].ID != StrategyExtTSP {
		t.Errorf("seed 1 = %+v, want plain ext-tsp", seeds[1])
	}
	sweeps := SearchSweeps(g)
	foundC3Default, foundTSPDefault := false, false
	for _, c := range sweeps {
		switch c.ID {
		case fmt.Sprintf("c3/limit=%d", c3MergeLimit):
			foundC3Default = OrderDigest(c.Order) == OrderDigest(seeds[0].Order)
		case fmt.Sprintf("ext-tsp/horizon=%d", int64(extTSPHorizon)):
			foundTSPDefault = OrderDigest(c.Order) == OrderDigest(seeds[1].Order)
		}
	}
	if !foundC3Default || !foundTSPDefault {
		t.Errorf("sweep grids must include the default parameters and reproduce the seeds (c3 %v, ext-tsp %v)",
			foundC3Default, foundTSPDefault)
	}
}

// TestOrderDigestPositionSensitive: the digest separates permutations of
// the same multiset and is stable for equal orders.
func TestOrderDigestPositionSensitive(t *testing.T) {
	a := []string{"x", "y", "z"}
	b := []string{"y", "x", "z"}
	if OrderDigest(a) == OrderDigest(b) {
		t.Errorf("digest collides across permutations")
	}
	if OrderDigest(a) != OrderDigest([]string{"x", "y", "z"}) {
		t.Errorf("digest unstable for equal orders")
	}
}

// TestSLOSearchOrderDeterministicPermutation: the standalone search is a
// pure function of the graph, and its result is a permutation of the c3
// seed (same text symbols, possibly different order).
func TestSLOSearchOrderDeterministicPermutation(t *testing.T) {
	g := searchTestGraph()
	a := SLOSearchOrder(g)
	b := SLOSearchOrder(g)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("standalone search not deterministic:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("standalone search produced no order")
	}
	if got, want := sortedCopy(a), sortedCopy(C3Order(g)); !reflect.DeepEqual(got, want) {
		t.Errorf("standalone search order is not a permutation of the text symbols\n got %v\nwant %v", got, want)
	}
}

// TestSLOSearchOrderPredictedNoWorseThanSeeds: by construction the
// standalone winner's static score is at least as good as both seeds'
// under the ranking (refaults asc, locality desc, ID asc).
func TestSLOSearchOrderPredictedNoWorseThanSeeds(t *testing.T) {
	g := searchTestGraph()
	params := DefaultSearchParams()
	order, winner := SLOSearchOrderParams(g, params)
	if winner == "" {
		t.Fatal("no winner")
	}
	wRef, wLoc, err := PredictOrder(g, order, params.Pressures, params.CacheBudget)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range SearchSeeds(g) {
		ref, loc, err := PredictOrder(g, s.Order, params.Pressures, params.CacheBudget)
		if err != nil {
			t.Fatal(err)
		}
		if wRef > ref {
			t.Errorf("winner %q predicts %d refaults, worse than seed %q's %d", winner, wRef, s.ID, ref)
		}
		if wRef == ref && wLoc < loc {
			t.Errorf("winner %q ties seed %q on refaults but loses locality (%v < %v)", winner, s.ID, wLoc, loc)
		}
	}
}
