package core

import (
	"testing"
	"testing/quick"

	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/ir"
)

// buildSnapshotProgram creates classes and a snapshot used across tests:
//
//	roots: Config (static field), two interned strings, a Node chain, and
//	an array of Nodes (DataSection).
func buildSnapshotProgram(t *testing.T) (*ir.Program, *heap.Snapshot, map[string]*heap.Object) {
	t.Helper()
	b := ir.NewBuilder("snap")
	b.Class(ir.StringClass)
	b.Class("Config").Field("name", ir.String()).Field("limit", ir.Int())
	b.Class("Node").Field("next", ir.Ref("Node")).Field("val", ir.Int())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	str := p.Class(ir.StringClass)
	nodeC := p.Class("Node")
	nextF := nodeC.LookupField("next")
	valF := nodeC.LookupField("val")

	cfg := heap.NewObject(p.Class("Config"))
	cfgName := heap.NewString(str, "app.cfg")
	cfg.SetField(p.Class("Config").LookupField("name"), heap.RefVal(cfgName))
	cfg.SetField(p.Class("Config").LookupField("limit"), heap.IntVal(10))

	n1, n2 := heap.NewObject(nodeC), heap.NewObject(nodeC)
	n1.SetField(nextF, heap.RefVal(n2))
	n1.SetField(valF, heap.IntVal(1))
	n2.SetField(valF, heap.IntVal(2))

	s1 := heap.NewString(str, "interned-a")
	s2 := heap.NewString(str, "interned-b")

	arr := heap.NewArray(ir.Ref("Node"), 2)
	n3 := heap.NewObject(nodeC)
	n3.SetField(valF, heap.IntVal(3))
	arr.SetElem(0, heap.RefVal(n3))

	snap := heap.BuildSnapshot([]heap.RootRef{
		{Obj: cfg, Reason: "App.config"},
		{Obj: n1, Reason: "App.head"},
		{Obj: s1, Reason: heap.ReasonInternedString},
		{Obj: s2, Reason: heap.ReasonInternedString},
		{Obj: arr, Reason: heap.ReasonDataSection},
	})
	objs := map[string]*heap.Object{
		"cfg": cfg, "cfgName": cfgName, "n1": n1, "n2": n2, "n3": n3,
		"s1": s1, "s2": s2, "arr": arr,
	}
	return p, snap, objs
}

func TestIncrementalIDPerTypeCounters(t *testing.T) {
	_, snap, objs := buildSnapshotProgram(t)
	ids := IncrementalID{}.AssignIDs(snap)
	if len(ids) != len(snap.Objects) {
		t.Fatalf("ids = %d, objects = %d", len(ids), len(snap.Objects))
	}
	// Same type shares the upper 32 bits; counters increment in encounter
	// order.
	n1, n2, n3 := ids[objs["n1"]], ids[objs["n2"]], ids[objs["n3"]]
	if n1>>32 != n2>>32 || n2>>32 != n3>>32 {
		t.Error("Node instances differ in type ID")
	}
	if uint32(n1) != 1 || uint32(n2) != 2 || uint32(n3) != 3 {
		t.Errorf("counters = %d,%d,%d", uint32(n1), uint32(n2), uint32(n3))
	}
	// Different types get different type IDs.
	if ids[objs["cfg"]]>>32 == n1>>32 {
		t.Error("Config shares type ID with Node")
	}
	// Strings count separately from Nodes.
	if uint32(ids[objs["cfgName"]]) != 1 {
		t.Errorf("first string counter = %d", uint32(ids[objs["cfgName"]]))
	}
}

func TestIncrementalIDInsensitiveToOtherTypes(t *testing.T) {
	// A divergent build that encounters an extra object of a *different*
	// type first must not shift the counters of Node objects — the design
	// goal of per-type counters (Sec. 5.1). Counters of the same type do
	// shift.
	_, snapA, objsA := buildSnapshotProgram(t)
	idsA := IncrementalID{}.AssignIDs(snapA)

	// Divergent build: same graph, but one extra Config root visited first.
	p, _, objsB := buildSnapshotProgram(t)
	extra := heap.NewObject(p.Class("Config"))
	rootsB := []heap.RootRef{{Obj: extra, Reason: "Extra.cfg"}}
	// Reconstruct the same root list as buildSnapshotProgram; the objects
	// were already snapshotted once, so rebuild fresh metadata.
	for _, o := range []*heap.Object{objsB["cfg"], objsB["n1"], objsB["s1"], objsB["s2"], objsB["arr"]} {
		o2 := o
		rootsB = append(rootsB, heap.RootRef{Obj: o2, Reason: o2.Reason})
	}
	// The second snapshot in buildSnapshotProgram already marked objects;
	// assigning IDs walks snapshot objects in SeqID order regardless.
	idsB := IncrementalID{}.AssignIDs(heap.BuildSnapshot([]heap.RootRef{{Obj: extra, Reason: "Extra.cfg"}}))
	_ = idsB
	// Merge: recompute over a combined ordering that places extra first.
	combined := append([]*heap.Object{extra}, snapObjectsOf(objsB)...)
	idsC := IncrementalID{}.AssignIDs(&heap.Snapshot{Objects: combined})
	nodeCounter := func(ids map[*heap.Object]uint64, o *heap.Object) uint32 { return uint32(ids[o]) }
	if nodeCounter(idsA, objsA["n1"]) != nodeCounter(idsC, objsB["n1"]) {
		t.Errorf("Node counter shifted by foreign-type insertion: %d vs %d",
			nodeCounter(idsA, objsA["n1"]), nodeCounter(idsC, objsB["n1"]))
	}
	if nodeCounter(idsA, objsA["cfg"]) == nodeCounter(idsC, objsB["cfg"]) {
		t.Error("Config counter unaffected by same-type insertion")
	}
}

// snapObjectsOf returns the test objects in their snapshot SeqID order.
func snapObjectsOf(objs map[string]*heap.Object) []*heap.Object {
	out := []*heap.Object{objs["cfg"], objs["cfgName"], objs["n1"], objs["n2"], objs["s1"], objs["s2"], objs["arr"], objs["n3"]}
	// Sort by SeqID to match encounter order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].SeqID > out[j].SeqID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func TestStructuralHashStableAcrossRebuilds(t *testing.T) {
	_, _, objsA := buildSnapshotProgram(t)
	_, _, objsB := buildSnapshotProgram(t)
	sh := StructuralHash{MaxDepth: 2}
	for name := range objsA {
		ha := sh.Hash(heap.ObjEntity(objsA[name]))
		hb := sh.Hash(heap.ObjEntity(objsB[name]))
		if ha != hb {
			t.Errorf("%s: structural hash differs across identical builds", name)
		}
	}
}

func TestStructuralHashSensitiveToContent(t *testing.T) {
	p, _, objs := buildSnapshotProgram(t)
	sh := StructuralHash{MaxDepth: 2}
	before := sh.Hash(heap.ObjEntity(objs["cfg"]))
	objs["cfg"].SetField(p.Class("Config").LookupField("limit"), heap.IntVal(11))
	after := sh.Hash(heap.ObjEntity(objs["cfg"]))
	if before == after {
		t.Error("field change did not change structural hash")
	}
}

func TestStructuralHashDepthBounded(t *testing.T) {
	p, _, _ := buildSnapshotProgram(t)
	nodeC := p.Class("Node")
	nextF := nodeC.LookupField("next")
	valF := nodeC.LookupField("val")

	// Chain a -> b -> c -> d. With MaxDepth 1, a change at depth >= 2
	// (c.val) must not affect a's hash; a change at depth 1 (b.val) must.
	mk := func(cval, bval int64) uint64 {
		a, b, c, d := heap.NewObject(nodeC), heap.NewObject(nodeC), heap.NewObject(nodeC), heap.NewObject(nodeC)
		a.SetField(nextF, heap.RefVal(b))
		b.SetField(nextF, heap.RefVal(c))
		c.SetField(nextF, heap.RefVal(d))
		b.SetField(valF, heap.IntVal(bval))
		c.SetField(valF, heap.IntVal(cval))
		return StructuralHash{MaxDepth: 1}.Hash(heap.ObjEntity(a))
	}
	if mk(1, 1) != mk(2, 1) {
		t.Error("change beyond MaxDepth affected the hash")
	}
	if mk(1, 1) == mk(1, 2) {
		t.Error("change within MaxDepth did not affect the hash")
	}
}

func TestStructuralHashCyclesTerminate(t *testing.T) {
	p, _, _ := buildSnapshotProgram(t)
	nodeC := p.Class("Node")
	nextF := nodeC.LookupField("next")
	a, b := heap.NewObject(nodeC), heap.NewObject(nodeC)
	a.SetField(nextF, heap.RefVal(b))
	b.SetField(nextF, heap.RefVal(a)) // cycle
	// Must terminate thanks to MAX_DEPTH.
	_ = StructuralHash{MaxDepth: 3}.Hash(heap.ObjEntity(a))
}

func TestStructuralHashNullIsZeroByte(t *testing.T) {
	sh := StructuralHash{}
	if got := sh.Hash(heap.ObjEntity(nil)); got != sh.Hash(heap.ObjEntity(nil)) {
		t.Error("null hash not deterministic")
	}
}

func TestHeapPathHashDistinguishesPaths(t *testing.T) {
	_, _, objs := buildSnapshotProgram(t)
	hn1 := HeapPathHash(heap.ObjEntity(objs["n1"]))
	hn2 := HeapPathHash(heap.ObjEntity(objs["n2"]))
	hn3 := HeapPathHash(heap.ObjEntity(objs["n3"]))
	if hn1 == hn2 || hn1 == hn3 || hn2 == hn3 {
		t.Errorf("path hashes collide: %x %x %x", hn1, hn2, hn3)
	}
}

func TestHeapPathHashStableAcrossRebuilds(t *testing.T) {
	_, _, objsA := buildSnapshotProgram(t)
	_, _, objsB := buildSnapshotProgram(t)
	for name := range objsA {
		if HeapPathHash(heap.ObjEntity(objsA[name])) != HeapPathHash(heap.ObjEntity(objsB[name])) {
			t.Errorf("%s: heap-path hash differs across identical builds", name)
		}
	}
}

func TestHeapPathInternedStringsHashValue(t *testing.T) {
	_, _, objsA := buildSnapshotProgram(t)
	h1 := HeapPathHash(heap.ObjEntity(objsA["s1"]))
	h2 := HeapPathHash(heap.ObjEntity(objsA["s2"]))
	if h1 == h2 {
		t.Error("distinct interned strings share hash")
	}
	// The hash depends only on the value, not on interning order: build a
	// fresh snapshot with swapped intern order.
	_, _, objsB := buildSnapshotProgram(t)
	if HeapPathHash(heap.ObjEntity(objsB["s1"])) != h1 {
		t.Error("interned-string hash unstable")
	}
}

func TestHeapPathRobustToContentChanges(t *testing.T) {
	// Unlike structural hash, heap path ignores primitive field values —
	// the property that makes it robust to build-salted contents.
	p, _, objs := buildSnapshotProgram(t)
	before := HeapPathHash(heap.ObjEntity(objs["n2"]))
	p.Class("Node")
	objs["n2"].SetField(p.Class("Node").LookupField("val"), heap.IntVal(99))
	after := HeapPathHash(heap.ObjEntity(objs["n2"]))
	if before != after {
		t.Error("heap-path hash changed with field value")
	}
}

func TestHeapPathNull(t *testing.T) {
	if HeapPathHash(heap.ObjEntity(nil)) != 0 {
		t.Error("null heap-path hash must be 0")
	}
}

func TestAssignIDsCoverAllObjects(t *testing.T) {
	_, snap, _ := buildSnapshotProgram(t)
	for _, s := range HeapStrategies() {
		ids := s.AssignIDs(snap)
		if len(ids) != len(snap.Objects) {
			t.Errorf("%s: %d ids for %d objects", s.Name(), len(ids), len(snap.Objects))
		}
	}
}

func TestOrderObjectsMatchesProfile(t *testing.T) {
	_, snap, objs := buildSnapshotProgram(t)
	ids := HeapPath{}.AssignIDs(snap)
	// Profile: n3 accessed first, then cfgName, then an unknown ID.
	profile := []uint64{ids[objs["n3"]], ids[objs["cfgName"]], 0xdeadbeef}
	res := OrderObjects(snap.Objects, ids, profile)
	if res.Order[0] != objs["n3"] || res.Order[1] != objs["cfgName"] {
		t.Fatalf("matched objects not first: %v", res.Order[:2])
	}
	if res.MatchedEntries != 2 || res.MatchedObjects != 2 {
		t.Errorf("match stats: %+v", res)
	}
	if res.MatchRate() != 2.0/3.0 {
		t.Errorf("match rate = %v", res.MatchRate())
	}
	// Permutation invariant: same multiset of objects.
	if len(res.Order) != len(snap.Objects) {
		t.Fatalf("order length %d", len(res.Order))
	}
	seen := make(map[*heap.Object]bool)
	for _, o := range res.Order {
		if seen[o] {
			t.Fatal("duplicate object in order")
		}
		seen[o] = true
	}
	// Unmatched tail preserves default order.
	tail := res.Order[2:]
	var prev int
	for i, o := range tail {
		if i > 0 && o.SeqID < prev {
			t.Fatal("unmatched tail not in encounter order")
		}
		prev = o.SeqID
	}
}

func TestOrderObjectsDuplicateIDsPullGroup(t *testing.T) {
	_, snap, objs := buildSnapshotProgram(t)
	// Force a collision: give every Node the same ID.
	ids := make(map[*heap.Object]uint64)
	for _, o := range snap.Objects {
		ids[o] = 1
	}
	ids[objs["n1"]], ids[objs["n2"]], ids[objs["n3"]] = 7, 7, 7
	res := OrderObjects(snap.Objects, ids, []uint64{7})
	if res.MatchedObjects != 3 {
		t.Fatalf("matched objects = %d, want all 3 colliding nodes", res.MatchedObjects)
	}
	if res.Order[0] != objs["n1"] || res.Order[1] != objs["n2"] || res.Order[2] != objs["n3"] {
		t.Error("colliding group must keep default relative order")
	}
}

func TestOrderObjectsEmptyProfileKeepsDefault(t *testing.T) {
	_, snap, _ := buildSnapshotProgram(t)
	ids := IncrementalID{}.AssignIDs(snap)
	res := OrderObjects(snap.Objects, ids, nil)
	for i, o := range res.Order {
		if o != snap.Objects[i] {
			t.Fatalf("object %d moved with empty profile", i)
		}
	}
}

func TestOrderObjectsIsPermutation(t *testing.T) {
	// Property: for random profiles, OrderObjects returns a permutation.
	_, snap, _ := buildSnapshotProgram(t)
	ids := IncrementalID{}.AssignIDs(snap)
	f := func(profile []uint64) bool {
		res := OrderObjects(snap.Objects, ids, profile)
		if len(res.Order) != len(snap.Objects) {
			return false
		}
		seen := make(map[*heap.Object]bool)
		for _, o := range res.Order {
			if seen[o] {
				return false
			}
			seen[o] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mkCUs builds synthetic CUs with the given root signatures.
func mkCUs(t *testing.T, sigs ...string) []*graal.CompilationUnit {
	t.Helper()
	b := ir.NewBuilder("cus")
	cb := b.Class("X")
	for _, s := range sigs {
		m := cb.StaticMethod(s, 0, ir.Void())
		m.Entry().RetVoid()
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var cus []*graal.CompilationUnit
	for _, s := range sigs {
		m := p.Class("X").DeclaredMethod(s)
		cus = append(cus, &graal.CompilationUnit{Root: m, Members: map[*ir.Method]bool{m: true}, Size: m.CodeSize()})
	}
	return cus
}

func TestOrderCUsProfileFirstThenDefault(t *testing.T) {
	cus := mkCUs(t, "a", "b", "c", "d")
	res := OrderCUs(cus, []string{"X.c(0)", "X.a(0)", "X.zz(0)"})
	got := []string{}
	for _, cu := range res.Order {
		got = append(got, cu.Root.Name)
	}
	want := []string{"c", "a", "b", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if res.Matched != 2 || res.ProfileLen != 3 {
		t.Errorf("stats: %+v", res)
	}
}

func TestOrderCUsDuplicateProfileEntries(t *testing.T) {
	cus := mkCUs(t, "a", "b")
	res := OrderCUs(cus, []string{"X.b(0)", "X.b(0)", "X.a(0)"})
	if len(res.Order) != 2 || res.Order[0].Root.Name != "b" || res.Order[1].Root.Name != "a" {
		t.Fatalf("order broken with duplicates")
	}
}

func TestOrderCUsEmptyProfile(t *testing.T) {
	cus := mkCUs(t, "a", "b")
	res := OrderCUs(cus, nil)
	if res.Order[0] != cus[0] || res.Order[1] != cus[1] {
		t.Fatal("empty profile must keep default order")
	}
	if res.Matched != 0 {
		t.Fatal("matched nonzero on empty profile")
	}
}
