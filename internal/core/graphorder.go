package core

import (
	"math"
	"sort"

	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
)

// This file implements the two graph-based text layouts that consume the
// recorded affinity graph (internal/obs/affinity) instead of first-touch
// traces: a C3-style call-chain clustering (Hoag, Lee, Mestre, Pupyrev —
// "Optimizing Function Layout for Mobile Applications") and an
// ext-TSP-style ordering (Newell & Pupyrev — "Improved Basic Block
// Reordering"). Both generalize the Pettis–Hansen chain machinery in
// ph.go from greedy edge coalescing over *ir.Method call edges to
// gain-driven chain merging over symbol-affinity edges; both return CU
// root signatures usable directly as a code profile, so the bake path and
// the .nimg recipe are unchanged.

const (
	// StrategyC3 lays text out by bottom-up chain merging with a locality
	// gain over co-occurrence edge weights, capped at a page-sized chain
	// budget (the balanced-partition flavour of C3).
	StrategyC3 = "c3"
	// StrategyExtTSP lays text out by chain merging maximizing the
	// ext-TSP score over transition edges.
	StrategyExtTSP = "ext-tsp"
)

const (
	// c3MergeLimit caps a C3 chain's total size. Keeping chains around
	// page granularity means inter-burst reclaim evicts whole cold chains
	// instead of splitting hot ones across evicted pages.
	c3MergeLimit = 2 * 4096
	// extTSPHorizon is the byte distance at which a transition edge's
	// score contribution decays to zero; one page, since refaults are
	// counted per page.
	extTSPHorizon = 4096.0
)

// symNode is one text symbol eligible for graph-based ordering.
type symNode struct {
	name  string
	size  int64
	heat  int64 // coarse access events charged to the symbol
	clock int64 // first-access clock (maxInt64 if never accessed)
}

// symChain is a chain of symbols being coalesced, the graph-layout
// analogue of ph.go's phChain.
type symChain struct {
	id    int // creation order, for deterministic pair iteration
	nodes []int
	size  int64
	heat  int64
	clock int64 // earliest first-access clock of any member
}

// textNodes extracts the orderable symbols from the graph: CU symbols
// only — the header, native tail, and heap objects have fixed or
// heap-strategy-owned placement — with a dense index remap.
func textNodes(g *affinity.Graph) ([]symNode, map[int32]int) {
	var nodes []symNode
	remap := make(map[int32]int)
	for i, n := range g.Nodes {
		if n.Kind != attrib.KindCU {
			continue
		}
		clock := n.FirstClock
		if clock == 0 {
			// Never actually accessed (e.g. evicted untouched): no
			// first-touch position, so it sorts after every touched chain.
			clock = math.MaxInt64
		}
		remap[int32(i)] = len(nodes)
		nodes = append(nodes, symNode{name: n.Name, size: n.Len, heat: n.Accesses, clock: clock})
	}
	return nodes, remap
}

// symEdge is an undirected edge between dense node indices (a < b).
type symEdge struct {
	a, b int
	w    float64
}

// denseEdges folds the graph's edge list onto the dense text nodes,
// weighting each edge by weight(e), dropping zero-weight and non-text
// edges, and returning a deterministic (a, b)-sorted slice.
func denseEdges(g *affinity.Graph, remap map[int32]int, weight func(affinity.Edge) float64) []symEdge {
	acc := make(map[[2]int]float64)
	for _, e := range g.Edges {
		a, oka := remap[e.A]
		b, okb := remap[e.B]
		if !oka || !okb || a == b {
			continue
		}
		if w := weight(e); w > 0 {
			if a > b {
				a, b = b, a
			}
			acc[[2]int{a, b}] += w
		}
	}
	edges := make([]symEdge, 0, len(acc))
	for k, w := range acc {
		edges = append(edges, symEdge{a: k[0], b: k[1], w: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	return edges
}

// emitChains flattens chains into symbol names in first-touch order: the
// chain whose earliest member was accessed first comes first. Emitting by
// chain hotness (as ph.go does) optimizes burst residency but scatters
// the cold-start sequence — measured serve refaults count the whole run,
// and a layout that thrashes the page cache during startup gives back its
// burst win — so the clusters keep their temporal positions and only the
// intra-chain packing changes. Chains the recording never touched
// (first-clock-less) sort last, hottest first. Symbols the graph never
// saw keep their default order when OrderCUs appends unprofiled CUs.
func emitChains(chains []*symChain, nodes []symNode) []string {
	live := make([]*symChain, 0, len(chains))
	for _, c := range chains {
		if c != nil && len(c.nodes) > 0 {
			live = append(live, c)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].clock != live[j].clock {
			return live[i].clock < live[j].clock
		}
		if live[i].heat != live[j].heat {
			return live[i].heat > live[j].heat
		}
		return nodes[live[i].nodes[0]].name < nodes[live[j].nodes[0]].name
	})
	out := make([]string, 0, len(nodes))
	for _, c := range live {
		for _, v := range c.nodes {
			out = append(out, nodes[v].name)
		}
	}
	return out
}

// C3Order computes a text layout from the affinity graph à la call-chain
// clustering: walk symbols hottest-first, merging each symbol's chain
// after the chain of its strongest co-occurrence neighbour among
// already-placed (hotter) symbols — the locality gain of a merge is the
// co-occurrence weight it turns into intra-chain adjacency — unless the
// merged chain would overflow the chain budget. Chains are emitted in
// first-touch order (see emitChains).
func C3Order(g *affinity.Graph) []string {
	return C3OrderLimit(g, c3MergeLimit)
}

// C3OrderLimit is C3Order with an explicit chain-size budget: the
// parameter the layout search sweeps. A limit <= 0 removes the cap
// (every gainful merge happens).
func C3OrderLimit(g *affinity.Graph, mergeLimit int64) []string {
	nodes, remap := textNodes(g)
	if len(nodes) == 0 {
		return nil
	}
	edges := denseEdges(g, remap, func(e affinity.Edge) float64 { return e.Weight })
	w := make(map[[2]int]float64, len(edges))
	nbrs := make([][]int, len(nodes))
	for _, e := range edges {
		w[[2]int{e.a, e.b}] = e.w
		nbrs[e.a] = append(nbrs[e.a], e.b)
		nbrs[e.b] = append(nbrs[e.b], e.a)
	}
	weightOf := func(u, v int) float64 {
		if u > v {
			u, v = v, u
		}
		return w[[2]int{u, v}]
	}

	// Hottest-first walk order; rank breaks heat ties deterministically.
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := nodes[order[i]], nodes[order[j]]
		if a.heat != b.heat {
			return a.heat > b.heat
		}
		return a.name < b.name
	})
	rank := make([]int, len(nodes))
	for r, v := range order {
		rank[v] = r
	}

	chains := make([]*symChain, len(nodes))
	chainOf := make([]*symChain, len(nodes))
	for i, n := range nodes {
		chains[i] = &symChain{id: i, nodes: []int{i}, size: n.size, heat: n.heat, clock: n.clock}
		chainOf[i] = chains[i]
	}
	for _, v := range order {
		// The strongest already-placed neighbour is v's predecessor.
		best, bestW := -1, 0.0
		for _, u := range nbrs[v] {
			if rank[u] >= rank[v] {
				continue
			}
			wu := weightOf(u, v)
			if best < 0 || wu > bestW || (wu == bestW && nodes[u].name < nodes[best].name) {
				best, bestW = u, wu
			}
		}
		if best < 0 {
			continue
		}
		ca, cb := chainOf[best], chainOf[v]
		if ca == cb || (mergeLimit > 0 && ca.size+cb.size > mergeLimit) {
			continue
		}
		ca.nodes = append(ca.nodes, cb.nodes...)
		ca.size += cb.size
		ca.heat += cb.heat
		if cb.clock < ca.clock {
			ca.clock = cb.clock
		}
		for _, m := range cb.nodes {
			chainOf[m] = ca
		}
		chains[cb.id] = nil
	}
	return emitChains(chains, nodes)
}

// ExtTSPOrder computes a text layout maximizing the ext-TSP score over
// the graph's transition edges: every symbol starts as its own chain, and
// each round merges the chain pair and orientation with the largest score
// gain until no merge gains. An edge scores its full transition weight
// when its endpoints are byte-adjacent and decays linearly to zero as the
// gap between them approaches the one-page horizon. Chains are emitted in
// first-touch order (see emitChains).
func ExtTSPOrder(g *affinity.Graph) []string {
	return ExtTSPOrderHorizon(g, extTSPHorizon)
}

// ExtTSPOrderHorizon is ExtTSPOrder with an explicit decay horizon in
// bytes: the parameter the layout search sweeps. Horizons <= 0 are
// rejected by returning nil (no edge could ever score).
func ExtTSPOrderHorizon(g *affinity.Graph, horizon float64) []string {
	if horizon <= 0 {
		return nil
	}
	nodes, remap := textNodes(g)
	if len(nodes) == 0 {
		return nil
	}
	edges := denseEdges(g, remap, func(e affinity.Edge) float64 { return float64(e.Trans) })
	adj := make([][]symEdge, len(nodes))
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e)
		adj[e.b] = append(adj[e.b], e)
	}

	chains := make([]*symChain, len(nodes))
	chainOf := make([]*symChain, len(nodes))
	for i, n := range nodes {
		chains[i] = &symChain{id: i, nodes: []int{i}, size: n.size, heat: n.heat, clock: n.clock}
		chainOf[i] = chains[i]
	}

	// score sums each intra-sequence edge's weight scaled by its byte-gap
	// proximity. Offsets are recomputed per call; chains are small and
	// merging is O(chains²) rounds at most, which the bounded edge budget
	// keeps cheap.
	off := make([]int64, len(nodes))
	score := func(seq []int) float64 {
		var at int64
		for _, v := range seq {
			off[v] = at
			at += nodes[v].size
		}
		in := make(map[int]bool, len(seq))
		for _, v := range seq {
			in[v] = true
		}
		var s float64
		for _, v := range seq {
			for _, e := range adj[v] {
				u := e.a + e.b - v
				// Count each edge once, from its earlier-placed endpoint.
				if !in[u] || off[u] < off[v] || (off[u] == off[v] && u < v) {
					continue
				}
				gap := float64(off[u] - (off[v] + nodes[v].size))
				if gap < 0 {
					gap = 0
				}
				if gap < horizon {
					s += e.w * (1 - gap/horizon)
				}
			}
		}
		return s
	}
	concat := func(a, b []int, revA, revB bool) []int {
		out := make([]int, 0, len(a)+len(b))
		appendSeq := func(seq []int, rev bool) {
			if rev {
				for i := len(seq) - 1; i >= 0; i-- {
					out = append(out, seq[i])
				}
			} else {
				out = append(out, seq...)
			}
		}
		appendSeq(a, revA)
		appendSeq(b, revB)
		return out
	}

	// Cross-chain connectivity, by chain creation id (a < b).
	links := make(map[[2]int]bool)
	linkKey := func(ca, cb *symChain) [2]int {
		if ca.id > cb.id {
			ca, cb = cb, ca
		}
		return [2]int{ca.id, cb.id}
	}
	for _, e := range edges {
		if ca, cb := chainOf[e.a], chainOf[e.b]; ca != cb {
			links[linkKey(ca, cb)] = true
		}
	}

	for len(links) > 0 {
		pairs := make([][2]int, 0, len(links))
		for k := range links {
			pairs = append(pairs, k)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		var bestPair [2]int
		var bestSeq []int
		bestGain := 0.0
		for _, p := range pairs {
			ca, cb := chains[p[0]], chains[p[1]]
			base := score(ca.nodes) + score(cb.nodes)
			for orient := 0; orient < 4; orient++ {
				seq := concat(ca.nodes, cb.nodes, orient&1 != 0, orient&2 != 0)
				if gain := score(seq) - base; gain > bestGain {
					bestGain, bestPair, bestSeq = gain, p, seq
				}
			}
		}
		if bestSeq == nil {
			break
		}
		ca, cb := chains[bestPair[0]], chains[bestPair[1]]
		ca.nodes = bestSeq
		ca.size += cb.size
		ca.heat += cb.heat
		if cb.clock < ca.clock {
			ca.clock = cb.clock
		}
		for _, m := range cb.nodes {
			chainOf[m] = ca
		}
		chains[cb.id] = nil
		// Rewire cb's links onto ca and drop the merged pair's own link.
		for k := range links {
			if k[0] == cb.id || k[1] == cb.id {
				delete(links, k)
				other := chains[k[0]+k[1]-cb.id]
				if other != nil && other != ca {
					links[linkKey(ca, other)] = true
				}
			}
		}
	}
	return emitChains(chains, nodes)
}
