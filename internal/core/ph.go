package core

import (
	"sort"

	"nimage/internal/graal"
	"nimage/internal/ir"
	"nimage/internal/vm"
)

// This file implements the Pettis–Hansen function-ordering baseline [44]
// (discussed in the paper's related work, Sec. 8): functions are laid out
// by greedily coalescing the hottest edges of a weighted dynamic call
// graph. PH optimizes steady-state cache locality of long-running
// programs; the paper argues such orderings are not designed for startup —
// this implementation lets the evaluation quantify that claim (see
// BenchmarkBaselinePettisHansen).

// CallGraph is a weighted dynamic call graph: edge weights count the
// invocations between caller and callee CUs.
type CallGraph struct {
	// Weights maps (caller root, callee root) to invocation counts. The
	// graph is undirected in PH: edges are canonicalized by signature
	// order.
	Weights map[[2]*ir.Method]int64
	// Hotness counts entries per CU root (used to break ties).
	Hotness map[*ir.Method]int64
}

// NewCallGraph creates an empty call graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{
		Weights: make(map[[2]*ir.Method]int64),
		Hotness: make(map[*ir.Method]int64),
	}
}

// AddCall records one invocation from the CU rooted at caller to the CU
// rooted at callee.
func (g *CallGraph) AddCall(caller, callee *ir.Method) {
	g.Hotness[callee]++
	if caller == nil || caller == callee {
		return
	}
	a, b := caller, callee
	if a.Signature() > b.Signature() {
		a, b = b, a
	}
	g.Weights[[2]*ir.Method{a, b}]++
}

// Collector returns vm hooks that populate the graph during a profiling
// run: it maintains a shadow stack of CU contexts per thread, so every
// non-inlined call contributes one edge. The paper's own profiles are
// execution-*order* traces; PH needs execution-*frequency* edges instead,
// which is why it requires its own profiling pass.
func (g *CallGraph) Collector() vm.Hooks {
	stacks := make(map[int][]*ir.Method)
	return vm.Hooks{
		OnEnterCU: func(tid int, root *ir.Method) {
			st := stacks[tid]
			var caller *ir.Method
			if len(st) > 0 {
				caller = st[len(st)-1]
			}
			g.AddCall(caller, root)
			stacks[tid] = append(st, root)
		},
		OnMethodExit: func(tid int, m *ir.Method) {
			st := stacks[tid]
			// Pop only when the returning method is the CU on top (inlined
			// methods return without leaving the CU).
			if len(st) > 0 && st[len(st)-1] == m {
				stacks[tid] = st[:len(st)-1]
			}
		},
	}
}

// phChain is a chain of CUs being coalesced.
type phChain struct {
	methods []*ir.Method
}

// PettisHansenOrder computes a CU layout by greedy edge coalescing: sort
// edges by descending weight; for each edge, merge the chains containing
// its endpoints (joining at the nearer ends), like the original PH
// procedure-positioning algorithm. CUs never reached by the profile keep
// their default order at the end.
func PettisHansenOrder(cus []*graal.CompilationUnit, g *CallGraph) []*graal.CompilationUnit {
	chainOf := make(map[*ir.Method]*phChain)
	addNode := func(m *ir.Method) {
		if chainOf[m] == nil {
			chainOf[m] = &phChain{methods: []*ir.Method{m}}
		}
	}
	for root := range g.Hotness {
		addNode(root)
	}
	for k := range g.Weights {
		addNode(k[0])
		addNode(k[1])
	}

	type edge struct {
		a, b *ir.Method
		w    int64
	}
	edges := make([]edge, 0, len(g.Weights))
	for k, w := range g.Weights {
		edges = append(edges, edge{a: k[0], b: k[1], w: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		// Deterministic tie-break.
		if edges[i].a.Signature() != edges[j].a.Signature() {
			return edges[i].a.Signature() < edges[j].a.Signature()
		}
		return edges[i].b.Signature() < edges[j].b.Signature()
	})

	for _, e := range edges {
		ca, cb := chainOf[e.a], chainOf[e.b]
		if ca == nil || cb == nil || ca == cb {
			continue
		}
		// Join so that the edge endpoints end up adjacent where possible:
		// flip chains to bring a to ca's tail and b to cb's head.
		if ca.methods[len(ca.methods)-1] != e.a && ca.methods[0] == e.a {
			reverse(ca.methods)
		}
		if cb.methods[0] != e.b && cb.methods[len(cb.methods)-1] == e.b {
			reverse(cb.methods)
		}
		ca.methods = append(ca.methods, cb.methods...)
		for _, m := range cb.methods {
			chainOf[m] = ca
		}
	}

	// Emit chains by total hotness (hottest chain first), then the
	// remaining CUs in default order.
	seenChain := make(map[*phChain]bool)
	var chains []*phChain
	for _, c := range chainOf {
		if !seenChain[c] {
			seenChain[c] = true
			chains = append(chains, c)
		}
	}
	heat := func(c *phChain) int64 {
		var h int64
		for _, m := range c.methods {
			h += g.Hotness[m]
		}
		return h
	}
	sort.Slice(chains, func(i, j int) bool {
		hi, hj := heat(chains[i]), heat(chains[j])
		if hi != hj {
			return hi > hj
		}
		return chains[i].methods[0].Signature() < chains[j].methods[0].Signature()
	})

	bySig := make(map[*ir.Method]*graal.CompilationUnit, len(cus))
	for _, cu := range cus {
		bySig[cu.Root] = cu
	}
	placed := make(map[*graal.CompilationUnit]bool, len(cus))
	order := make([]*graal.CompilationUnit, 0, len(cus))
	for _, c := range chains {
		for _, m := range c.methods {
			if cu := bySig[m]; cu != nil && !placed[cu] {
				placed[cu] = true
				order = append(order, cu)
			}
		}
	}
	for _, cu := range cus {
		if !placed[cu] {
			order = append(order, cu)
		}
	}
	return order
}

func reverse(s []*ir.Method) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
