package core

import "nimage/internal/graal"

// The strategy registry: the single source of truth for every layout
// strategy the toolchain knows. The bake pipeline, the cold-start and
// serve figure sets, the differential verifier, and the CLIs all
// enumerate from here, so registering a strategy once wires it
// everywhere (previously each of those surfaces kept its own hard-coded
// name list, which drifted).

// StrategyInfo describes one registered layout strategy: its profiling
// needs, which sections it reorders, and which evaluation surfaces it
// appears on.
type StrategyInfo struct {
	// Name is the strategy's CLI-visible identifier.
	Name string
	// Instr lists the instrumented profiling builds the bake pipeline
	// needs, one per probe kind. Empty for graph strategies: they record
	// their affinity input on an uninstrumented run.
	Instr []graal.Instrumentation
	// Graph marks strategies that consume the recorded affinity graph
	// instead of first-touch traces.
	Graph bool
	// Text and Heap mark which image sections the strategy reorders;
	// figures charge a strategy the fault metric of the sections it
	// claims to improve.
	Text bool
	Heap bool
	// Eval marks membership in the cold-start figure set and Serve in
	// the serve-mode figure set. Strategies outside both (Pettis–Hansen)
	// remain bakeable baselines reached by name.
	Eval  bool
	Serve bool
}

// registry lists every strategy in figure order. The paper's six
// strategies first, then the steady-state baselines and the graph-based
// serve layouts.
var registry = []StrategyInfo{
	{Name: StrategyCU, Instr: []graal.Instrumentation{graal.InstrCU}, Text: true, Eval: true, Serve: true},
	{Name: StrategyMethod, Instr: []graal.Instrumentation{graal.InstrMethod}, Text: true, Eval: true},
	{Name: StrategyIncremental, Instr: []graal.Instrumentation{graal.InstrHeap}, Heap: true, Eval: true},
	{Name: StrategyStructural, Instr: []graal.Instrumentation{graal.InstrHeap}, Heap: true, Eval: true},
	{Name: StrategyHeapPath, Instr: []graal.Instrumentation{graal.InstrHeap}, Heap: true, Eval: true, Serve: true},
	{Name: StrategyCombined, Instr: []graal.Instrumentation{graal.InstrCU, graal.InstrHeap}, Text: true, Heap: true, Eval: true, Serve: true},
	{Name: StrategyPettisHansen, Instr: []graal.Instrumentation{graal.InstrCU}, Text: true},
	{Name: StrategyC3, Graph: true, Text: true, Eval: true, Serve: true},
	{Name: StrategyExtTSP, Graph: true, Text: true, Eval: true, Serve: true},
	{Name: StrategySLOSearch, Graph: true, Text: true, Eval: true, Serve: true},
}

// Registry returns every registered strategy, in figure order.
func Registry() []StrategyInfo {
	out := make([]StrategyInfo, len(registry))
	copy(out, registry)
	return out
}

// StrategyByName looks a strategy up by its CLI name.
func StrategyByName(name string) (StrategyInfo, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return StrategyInfo{}, false
}

// IsGraphStrategy reports whether the named strategy consumes the
// recorded affinity graph.
func IsGraphStrategy(name string) bool {
	s, ok := StrategyByName(name)
	return ok && s.Graph
}

// StrategyNames returns every registered strategy name, in figure order.
func StrategyNames() []string {
	return strategyNames(func(StrategyInfo) bool { return true })
}

// EvalStrategyNames returns the cold-start figure set.
func EvalStrategyNames() []string {
	return strategyNames(func(s StrategyInfo) bool { return s.Eval })
}

// ServeStrategyNames returns the serve figure set.
func ServeStrategyNames() []string {
	return strategyNames(func(s StrategyInfo) bool { return s.Serve })
}

func strategyNames(keep func(StrategyInfo) bool) []string {
	var out []string
	for _, s := range registry {
		if keep(s) {
			out = append(out, s.Name)
		}
	}
	return out
}
