package core

import (
	"encoding/binary"

	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/murmur"
)

// Heap-ordering strategy names (Sec. 5).
const (
	StrategyIncremental = "incremental id"
	StrategyStructural  = "structural hash"
	StrategyHeapPath    = "heap path"
	StrategyCombined    = "cu+heap path"
)

// HeapStrategy computes 64-bit object identities for every object of a heap
// snapshot. The same strategy runs in the profiling build (IDs recorded by
// the instrumentation) and in the optimizing build (IDs matched against the
// profile), so identities must be as stable across builds as possible.
type HeapStrategy interface {
	// Name returns the strategy name used in profiles and reports.
	Name() string
	// AssignIDs computes the ID of every snapshot object. Objects are
	// processed in encounter order (SeqID order).
	AssignIDs(snap *heap.Snapshot) map[*heap.Object]uint64
}

// HeapStrategies returns the three strategies of the paper with their
// default parameters.
func HeapStrategies() []HeapStrategy {
	return []HeapStrategy{
		IncrementalID{},
		StructuralHash{MaxDepth: DefaultMaxDepth},
		HeapPath{},
	}
}

// typeID32 derives the stable 32-bit type identifier stored in the upper
// half of incremental IDs. Types are uniquely identified by fully qualified
// name across compilations (Sec. 5.1), so a name hash is stable.
func typeID32(t ir.TypeRef) uint32 {
	return uint32(murmur.Sum64([]byte(t.FullyQualifiedName())))
}

// IncrementalID implements Algorithm 1: objects receive incremental IDs in
// object-encounter order during heap snapshotting, counted per type: the
// most-significant 32 bits identify the type, the least-significant 32 bits
// count instances of that type. Per-type counters confine the inaccuracy
// introduced by an extra/missing object to objects of the same type.
type IncrementalID struct{}

// Name implements HeapStrategy.
func (IncrementalID) Name() string { return StrategyIncremental }

// AssignIDs implements HeapStrategy.
func (IncrementalID) AssignIDs(snap *heap.Snapshot) map[*heap.Object]uint64 {
	ids := make(map[*heap.Object]uint64, len(snap.Objects))
	counters := make(map[uint32]uint32)
	for _, o := range snap.Objects {
		tid := typeID32(o.Type())
		counters[tid]++
		ids[o] = uint64(tid)<<32 | uint64(counters[tid])
	}
	return ids
}

// DefaultMaxDepth is the recursion bound of the structural hash; the paper
// determines 2 as a good trade-off between computation time, collision
// probability, and cross-build matching probability (Sec. 7.1).
const DefaultMaxDepth = 2

// StructuralHash implements Algorithm 2: the object (type name, fields,
// array elements, and neighbours up to MaxDepth) is encoded into a byte
// buffer and hashed with MurmurHash3. The paper's own hash is used instead
// of identity hash codes because those are not stable across compilations
// (Sec. 5.2).
type StructuralHash struct {
	// MaxDepth bounds recursion into the object graph; 0 means
	// DefaultMaxDepth.
	MaxDepth int
}

// Name implements HeapStrategy.
func (StructuralHash) Name() string { return StrategyStructural }

// AssignIDs implements HeapStrategy.
func (s StructuralHash) AssignIDs(snap *heap.Snapshot) map[*heap.Object]uint64 {
	ids := make(map[*heap.Object]uint64, len(snap.Objects))
	for _, o := range snap.Objects {
		ids[o] = s.Hash(heap.ObjEntity(o))
	}
	return ids
}

// Hash computes the structural hash of one entity (function structuralHash
// of Algorithm 2).
func (s StructuralHash) Hash(e heap.Entity) uint64 {
	maxDepth := s.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	var buf []byte
	buf = encodeToBytes(buf, e, 0, maxDepth)
	return murmur.Sum64(buf)
}

// encodeToBytes is function encodeToBytes of Algorithm 2. It appends the
// encoding of e at the given recursion depth to buf and returns it.
func encodeToBytes(buf []byte, e heap.Entity, depth, maxDepth int) []byte {
	if e.IsNull() {
		return append(buf, 0)
	}
	buf = append(buf, e.Type().FullyQualifiedName()...)
	shouldRecurse := depth < maxDepth
	switch {
	case e.IsPrimitive():
		buf = appendPrimitive(buf, e.Value())
	case e.IsString():
		buf = append(buf, e.Object().Str...)
	case e.IsObjectInstance():
		for k := 0; k < e.NumFields(); k++ {
			field := e.GetFieldWrapper(k)
			if shouldRecurse || field.IsPrimitive() || field.IsString() {
				// The static type of the field (its declared type), then
				// the recursive encoding of the field value.
				buf = append(buf, e.FieldDecl(k).Type.FullyQualifiedName()...)
				buf = encodeToBytes(buf, field, depth+1, maxDepth)
			}
		}
	case e.IsArray():
		elem := e.ElementType()
		buf = append(buf, elem.FullyQualifiedName()...)
		buf = appendInt(buf, int64(e.Length()))
		if o := e.Object(); o != nil && o.Packed() {
			// Packed byte arrays have deterministic pseudo-contents fully
			// determined by their length; encoding a marker is lossless
			// and avoids materializing megabytes of metadata.
			return append(buf, "packed"...)
		}
		if shouldRecurse || elem.IsPrimitive() || elem.IsString() {
			for k := 0; k < e.Length(); k++ {
				buf = appendInt(buf, int64(k))
				buf = encodeToBytes(buf, e.GetElementWrapper(k), depth+1, maxDepth)
			}
		}
	}
	return buf
}

func appendPrimitive(buf []byte, v heap.Value) []byte {
	return appendInt(buf, v.Bits)
}

func appendInt(buf []byte, v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return append(buf, b[:]...)
}

// HeapPath implements Algorithm 3: the object's ID is the MurmurHash3 of
// the first path from the object up to its heap root — type names joined
// with the field descriptors / array indices along the path — plus the
// root's heap-inclusion reason. Interned-string roots hash their string
// value instead of the (shared) path. Heap paths are less sensitive to
// cross-build divergence than encounter order, but only the single
// inclusion path is considered, which may differ across compilations
// (Sec. 5.3).
type HeapPath struct{}

// Name implements HeapStrategy.
func (HeapPath) Name() string { return StrategyHeapPath }

// AssignIDs implements HeapStrategy.
func (HeapPath) AssignIDs(snap *heap.Snapshot) map[*heap.Object]uint64 {
	ids := make(map[*heap.Object]uint64, len(snap.Objects))
	for _, o := range snap.Objects {
		ids[o] = HeapPathHash(heap.ObjEntity(o))
	}
	return ids
}

// HeapPathHash computes the 64-bit heap-path hash of one entity (function
// heapPathHash of Algorithm 3).
func HeapPathHash(e heap.Entity) uint64 {
	if e.IsNull() {
		return 0
	}
	var buf []byte
	if e.IsRoot() && e.InclusionReason() == heap.ReasonInternedString {
		buf = append(buf, e.Object().Str...)
		return murmur.Sum64(buf)
	}
	current := e.Object()
	for {
		buf = append(buf, typeNameOf(current)...)
		if current.Root {
			buf = append(buf, current.Reason...)
			break
		}
		parent := current.Parent
		if parent == nil {
			// Unrooted object outside a snapshot traversal; hash what we
			// have rather than loop forever.
			break
		}
		if parent.IsArray {
			buf = appendInt(buf, int64(current.ParentIndex))
		} else {
			buf = append(buf, current.ParentField.Descriptor()...)
		}
		current = parent
	}
	return murmur.Sum64(buf)
}

func typeNameOf(o *heap.Object) string { return o.Type().FullyQualifiedName() }
