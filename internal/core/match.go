package core

import "nimage/internal/heap"

// MatchResult is the outcome of applying a heap-ordering profile to the
// optimized build's snapshot.
type MatchResult struct {
	// Order is the new object layout: matched objects first in profile
	// order, then the unmatched remainder in default (encounter) order.
	Order []*heap.Object
	// MatchedEntries counts profile IDs that matched at least one object.
	MatchedEntries int
	// MatchedObjects counts objects moved to the front.
	MatchedObjects int
	// ProfileLen is the number of profile entries consumed.
	ProfileLen int
}

// MatchRate returns the fraction of profile entries that matched.
func (r MatchResult) MatchRate() float64 {
	if r.ProfileLen == 0 {
		return 0
	}
	return float64(r.MatchedEntries) / float64(r.ProfileLen)
}

// OrderObjects matches the object-access profile (deduplicated 64-bit IDs
// in first-access order, from the instrumented build) against the objects
// of this build, identified by ids (computed by the same strategy on this
// build's snapshot), and produces the optimized layout.
//
// Because object identities are not persistent across builds (Sec. 5), the
// match is best-effort: profile IDs with no counterpart here are skipped,
// and when several objects share an ID (hash collisions, or per-type
// counters that happen to coincide) all of them are pulled forward in their
// default relative order — they are indistinguishable to the strategy.
func OrderObjects(objs []*heap.Object, ids map[*heap.Object]uint64, profile []uint64) MatchResult {
	res := MatchResult{ProfileLen: len(profile)}
	byID := make(map[uint64][]*heap.Object, len(objs))
	for _, o := range objs {
		id := ids[o]
		byID[id] = append(byID[id], o)
	}
	placed := make(map[*heap.Object]bool, len(objs))
	order := make([]*heap.Object, 0, len(objs))
	for _, id := range profile {
		group := byID[id]
		if len(group) == 0 {
			continue
		}
		res.MatchedEntries++
		for _, o := range group {
			if placed[o] {
				continue
			}
			placed[o] = true
			order = append(order, o)
			res.MatchedObjects++
		}
		delete(byID, id)
	}
	for _, o := range objs {
		if !placed[o] {
			order = append(order, o)
		}
	}
	res.Order = order
	return res
}
