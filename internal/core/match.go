package core

import "nimage/internal/heap"

// MatchResult is the outcome of applying a heap-ordering profile to the
// optimized build's snapshot.
type MatchResult struct {
	// Order is the new object layout: matched objects first in profile
	// order, then the unmatched remainder in default (encounter) order.
	Order []*heap.Object
	// MatchedEntries counts profile IDs that matched at least one object.
	MatchedEntries int
	// MatchedObjects counts objects moved to the front.
	MatchedObjects int
	// UnmatchedObjects counts objects left behind in default order.
	UnmatchedObjects int
	// CollisionGroups counts profile IDs that matched more than one object
	// (hash collisions, or coinciding per-type counters); the whole group
	// is pulled forward because its members are indistinguishable.
	CollisionGroups int
	// CollisionObjects counts objects placed through such a colliding ID.
	CollisionObjects int
	// ProfileLen is the number of profile entries consumed.
	ProfileLen int
}

// MatchRate returns the fraction of profile entries that matched.
func (r MatchResult) MatchRate() float64 {
	if r.ProfileLen == 0 {
		return 0
	}
	return float64(r.MatchedEntries) / float64(r.ProfileLen)
}

// MatchBreakdown is the serializable per-strategy summary of a MatchResult,
// reported by `nimage order` and embedded in run reports.
type MatchBreakdown struct {
	Strategy         string  `json:"strategy"`
	ProfileLen       int     `json:"profile_len"`
	MatchedEntries   int     `json:"matched_entries"`
	MatchedObjects   int     `json:"matched_objects"`
	UnmatchedObjects int     `json:"unmatched_objects"`
	CollisionGroups  int     `json:"collision_groups"`
	CollisionObjects int     `json:"collision_objects"`
	MatchRate        float64 `json:"match_rate"`
}

// Breakdown summarizes the result for the named strategy.
func (r MatchResult) Breakdown(strategy string) MatchBreakdown {
	return MatchBreakdown{
		Strategy:         strategy,
		ProfileLen:       r.ProfileLen,
		MatchedEntries:   r.MatchedEntries,
		MatchedObjects:   r.MatchedObjects,
		UnmatchedObjects: r.UnmatchedObjects,
		CollisionGroups:  r.CollisionGroups,
		CollisionObjects: r.CollisionObjects,
		MatchRate:        r.MatchRate(),
	}
}

// OrderObjects matches the object-access profile (deduplicated 64-bit IDs
// in first-access order, from the instrumented build) against the objects
// of this build, identified by ids (computed by the same strategy on this
// build's snapshot), and produces the optimized layout.
//
// Because object identities are not persistent across builds (Sec. 5), the
// match is best-effort: profile IDs with no counterpart here are skipped,
// and when several objects share an ID (hash collisions, or per-type
// counters that happen to coincide) all of them are pulled forward in their
// default relative order — they are indistinguishable to the strategy.
func OrderObjects(objs []*heap.Object, ids map[*heap.Object]uint64, profile []uint64) MatchResult {
	res := MatchResult{ProfileLen: len(profile)}
	byID := make(map[uint64][]*heap.Object, len(objs))
	for _, o := range objs {
		id := ids[o]
		byID[id] = append(byID[id], o)
	}
	placed := make(map[*heap.Object]bool, len(objs))
	order := make([]*heap.Object, 0, len(objs))
	for _, id := range profile {
		group := byID[id]
		if len(group) == 0 {
			continue
		}
		res.MatchedEntries++
		placedHere := 0
		for _, o := range group {
			if placed[o] {
				continue
			}
			placed[o] = true
			order = append(order, o)
			res.MatchedObjects++
			placedHere++
		}
		if placedHere > 1 {
			res.CollisionGroups++
			res.CollisionObjects += placedHere
		}
		delete(byID, id)
	}
	for _, o := range objs {
		if !placed[o] {
			order = append(order, o)
			res.UnmatchedObjects++
		}
	}
	res.Order = order
	return res
}
