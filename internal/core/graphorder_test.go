package core

import (
	"reflect"
	"strings"
	"testing"

	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
)

// testGraph assembles a minimal affinity graph over named CU symbols plus
// one non-text node, so every ordering test also covers the text filter.
func testGraph(nodes []affinity.Node, edges []affinity.Edge) *affinity.Graph {
	withNoise := append([]affinity.Node{}, nodes...)
	withNoise = append(withNoise,
		affinity.Node{Name: "<header>", Kind: attrib.KindHeader, Len: 4096, Accesses: 999},
		affinity.Node{Name: "hub:X", Kind: attrib.KindObject, Len: 64, Accesses: 888},
	)
	return &affinity.Graph{Nodes: withNoise, Edges: edges}
}

func cuNode(name string, size, heat int64) affinity.Node {
	return affinity.Node{Name: name, Kind: attrib.KindCU, Section: ".text", Len: size, Accesses: heat}
}

func TestC3OrderClustersCoAccessedSymbols(t *testing.T) {
	g := testGraph(
		[]affinity.Node{
			cuNode("A", 128, 100),
			cuNode("B", 128, 90),
			cuNode("C", 128, 10),
			cuNode("D", 128, 5),
		},
		[]affinity.Edge{
			{A: 0, B: 1, Weight: 50},
			{A: 2, B: 3, Weight: 8},
			// Non-text edge must be ignored.
			{A: 0, B: 4, Weight: 1000},
		},
	)
	got := C3Order(g)
	if want := []string{"A", "B", "C", "D"}; !reflect.DeepEqual(got, want) {
		t.Errorf("C3Order = %v, want %v", got, want)
	}
}

func TestC3OrderRespectsMergeLimit(t *testing.T) {
	// Both symbols are over half the chain budget: merging would overflow
	// it, so they stay singleton chains even with a heavy edge.
	g := testGraph(
		[]affinity.Node{
			cuNode("A", c3MergeLimit/2+1, 100),
			cuNode("B", c3MergeLimit/2+1, 90),
		},
		[]affinity.Edge{{A: 0, B: 1, Weight: 50}},
	)
	got := C3Order(g)
	if len(got) != 2 {
		t.Fatalf("C3Order = %v", got)
	}
	// Still emitted, untouched-chain tie broken by heat: A (hotter) first.
	if got[0] != "A" || got[1] != "B" {
		t.Errorf("C3Order = %v, want [A B]", got)
	}
}

func TestC3OrderEmitsByFirstTouch(t *testing.T) {
	// Chains keep their temporal positions: the chain first touched during
	// startup precedes the burst-hot chain touched later, no matter the
	// heat — and a merge inherits the earliest member clock, so a cold
	// early symbol anchors its whole cluster.
	early := cuNode("early", 100, 2)
	early.FirstClock = 1
	late := cuNode("late", 100, 500)
	late.FirstClock = 900
	lateMate := cuNode("lateMate", 100, 400)
	lateMate.FirstClock = 950
	g := testGraph(
		[]affinity.Node{late, lateMate, early},
		[]affinity.Edge{{A: 0, B: 1, Weight: 80}},
	)
	got := C3Order(g)
	if want := []string{"early", "late", "lateMate"}; !reflect.DeepEqual(got, want) {
		t.Errorf("C3Order = %v, want %v", got, want)
	}
}

func TestExtTSPOrderKeepsTransitionsAdjacent(t *testing.T) {
	// A-B heavy, A-C lighter: the best layout places A between B and C so
	// both transitions are byte-adjacent (an orientation flip, since A-B
	// merges first into a chain that must reverse to expose A).
	g := testGraph(
		[]affinity.Node{
			cuNode("A", 64, 100),
			cuNode("B", 64, 90),
			cuNode("C", 64, 10),
		},
		[]affinity.Edge{
			{A: 0, B: 1, Weight: 10, Trans: 10},
			{A: 0, B: 2, Weight: 5, Trans: 5},
		},
	)
	got := ExtTSPOrder(g)
	if len(got) != 3 {
		t.Fatalf("ExtTSPOrder = %v", got)
	}
	pos := map[string]int{}
	for i, n := range got {
		pos[n] = i
	}
	if d := pos["A"] - pos["B"]; d != 1 && d != -1 {
		t.Errorf("A-B not adjacent: %v", got)
	}
	if d := pos["A"] - pos["C"]; d != 1 && d != -1 {
		t.Errorf("A-C not adjacent: %v", got)
	}
}

func TestExtTSPOrderColdSingletonsTail(t *testing.T) {
	g := testGraph(
		[]affinity.Node{
			cuNode("hot1", 64, 100),
			cuNode("hot2", 64, 80),
			cuNode("cold", 64, 1),
		},
		[]affinity.Edge{{A: 0, B: 1, Weight: 10, Trans: 10}},
	)
	got := ExtTSPOrder(g)
	if len(got) != 3 || got[2] != "cold" {
		t.Errorf("ExtTSPOrder = %v, want cold symbol last", got)
	}
}

func TestGraphOrdersDeterministic(t *testing.T) {
	mk := func() *affinity.Graph {
		return testGraph(
			[]affinity.Node{
				cuNode("A", 64, 10), cuNode("B", 64, 10),
				cuNode("C", 64, 10), cuNode("D", 64, 10),
			},
			[]affinity.Edge{
				{A: 0, B: 1, Weight: 5, Trans: 5},
				{A: 2, B: 3, Weight: 5, Trans: 5},
				{A: 1, B: 2, Weight: 5, Trans: 5},
			},
		)
	}
	if a, b := C3Order(mk()), C3Order(mk()); !reflect.DeepEqual(a, b) {
		t.Errorf("C3Order nondeterministic: %v vs %v", a, b)
	}
	if a, b := ExtTSPOrder(mk()), ExtTSPOrder(mk()); !reflect.DeepEqual(a, b) {
		t.Errorf("ExtTSPOrder nondeterministic: %v vs %v", a, b)
	}
}

func TestGraphOrdersEmptyGraph(t *testing.T) {
	if got := C3Order(&affinity.Graph{}); got != nil {
		t.Errorf("C3Order(empty) = %v", got)
	}
	if got := ExtTSPOrder(&affinity.Graph{}); got != nil {
		t.Errorf("ExtTSPOrder(empty) = %v", got)
	}
}

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Registry() {
		if s.Name == "" {
			t.Fatal("registered strategy with empty name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate strategy %q", s.Name)
		}
		seen[s.Name] = true
		if s.Graph && len(s.Instr) != 0 {
			t.Errorf("%s: graph strategies record uninstrumented, want no probe kinds", s.Name)
		}
		if !s.Graph && len(s.Instr) == 0 {
			t.Errorf("%s: trace strategy without probe kinds", s.Name)
		}
		if !s.Text && !s.Heap {
			t.Errorf("%s: reorders no section", s.Name)
		}
		got, ok := StrategyByName(s.Name)
		if !ok || !reflect.DeepEqual(got, s) {
			t.Errorf("StrategyByName(%q) = %+v, %v", s.Name, got, ok)
		}
	}
	if _, ok := StrategyByName("bogus"); ok {
		t.Error("unknown strategy resolved")
	}
	// The serve set is a subset of the registry and includes the graph
	// strategies; the eval set carries the paper's six plus the graph two.
	all := strings.Join(StrategyNames(), ",")
	for _, name := range ServeStrategyNames() {
		if !seen[name] {
			t.Errorf("serve strategy %q not registered (%s)", name, all)
		}
	}
	contains := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	for _, name := range []string{StrategyC3, StrategyExtTSP} {
		if !IsGraphStrategy(name) {
			t.Errorf("IsGraphStrategy(%q) = false", name)
		}
		if !contains(ServeStrategyNames(), name) {
			t.Errorf("%q missing from serve set", name)
		}
		if !contains(EvalStrategyNames(), name) {
			t.Errorf("%q missing from eval set", name)
		}
	}
	if IsGraphStrategy(StrategyCU) {
		t.Error("cu misclassified as graph strategy")
	}
}
