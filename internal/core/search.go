package core

// SLO-search candidate plumbing: the generation and cheap static scoring
// of candidate text orderings for the layout search (internal/eval/
// search.go drives the measured outer loop; SLOSearchOrder below is the
// standalone graph-scored inner search the bake pipeline runs when no
// measured winner is injected). Candidates come from two families — the
// c3/ext-tsp parameter sweeps and seeded local perturbations of an
// incumbent order — and every function here is a pure deterministic
// function of its arguments, so the search trajectory is bit-identical
// across worker counts, runs and platforms.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"nimage/internal/murmur"
	"nimage/internal/obs/affinity"
)

// StrategySLOSearch lays text out by an SLO-driven layout search: an
// iterative rebake loop over c3/ext-tsp parameter sweeps and seeded
// perturbations, scored by the serve attainment scorecard (measured
// path) or the affinity refault replay (standalone path).
const StrategySLOSearch = "slo-search"

// SearchCandidate is one candidate text ordering of the layout search.
type SearchCandidate struct {
	// ID names the candidate deterministically from its generation op and
	// parameters (e.g. "c3/limit=8192", "perturb/i2/k1/move").
	ID string
	// Op is the generation family: "seed", "c3-sweep", "ext-tsp-sweep",
	// or "perturb".
	Op string
	// Order is the proposed CU-signature ordering.
	Order []string
}

// searchC3Limits and searchTSPHorizons are the swept parameter grids.
// The defaults (c3MergeLimit, extTSPHorizon) are deliberately included:
// their candidates tie the seed layouts bit-for-bit and are deduplicated
// by digest, which the determinism tests rely on.
var (
	searchC3Limits    = []int64{4096, c3MergeLimit, 4 * 4096, 0}
	searchTSPHorizons = []float64{2048, extTSPHorizon, 2 * 4096, 4 * 4096}
)

// SearchSeeds returns the two seed candidates of the search: the plain
// c3 and ext-tsp orderings of the graph — the incumbents every accepted
// candidate must strictly beat.
func SearchSeeds(g *affinity.Graph) []SearchCandidate {
	return []SearchCandidate{
		{ID: StrategyC3, Op: "seed", Order: C3Order(g)},
		{ID: StrategyExtTSP, Op: "seed", Order: ExtTSPOrder(g)},
	}
}

// SearchSweeps returns the c3/ext-tsp parameter-sweep candidates: the
// chain-budget grid for c3 and the decay-horizon grid for ext-tsp.
func SearchSweeps(g *affinity.Graph) []SearchCandidate {
	var out []SearchCandidate
	for _, limit := range searchC3Limits {
		out = append(out, SearchCandidate{
			ID:    fmt.Sprintf("c3/limit=%d", limit),
			Op:    "c3-sweep",
			Order: C3OrderLimit(g, limit),
		})
	}
	for _, hz := range searchTSPHorizons {
		out = append(out, SearchCandidate{
			ID:    fmt.Sprintf("ext-tsp/horizon=%d", int64(hz)),
			Op:    "ext-tsp-sweep",
			Order: ExtTSPOrderHorizon(g, hz),
		})
	}
	return out
}

// searchRand derives a deterministic pseudo-random value from the search
// seed and a draw position.
func searchRand(seed uint64, vals ...uint64) uint64 {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return murmur.Sum64Seed(buf, seed)
}

// SearchPerturbations returns n seeded local perturbations of the
// incumbent order for one search iteration: block swaps, block moves and
// window reversals — the classic local-search neighbourhood over a chain
// order. Every result is a permutation of the incumbent (asserted by the
// metamorphic tests); orders shorter than two symbols have no
// neighbourhood and yield nothing.
func SearchPerturbations(incumbent []string, iter int, seed uint64, n int) []SearchCandidate {
	if len(incumbent) < 2 || n <= 0 {
		return nil
	}
	ops := []string{"swap", "move", "reverse"}
	out := make([]SearchCandidate, 0, n)
	for k := 0; k < n; k++ {
		op := ops[k%len(ops)]
		order := append([]string(nil), incumbent...)
		sz := uint64(len(order))
		// Block length between 1 and a quarter of the order (at least 1),
		// start positions anywhere; every draw folds (iter, k, draw#) into
		// the seed, so each iteration explores a fresh neighbourhood.
		maxBlock := sz / 4
		if maxBlock < 1 {
			maxBlock = 1
		}
		blk := 1 + searchRand(seed, uint64(iter), uint64(k), 0)%maxBlock
		a := searchRand(seed, uint64(iter), uint64(k), 1) % (sz - blk + 1)
		b := searchRand(seed, uint64(iter), uint64(k), 2) % (sz - blk + 1)
		switch op {
		case "swap":
			// Swap two equal-length non-overlapping blocks; colliding draws
			// degrade to a no-op that the digest dedupe discards.
			if a > b {
				a, b = b, a
			}
			if a+blk <= b {
				tmp := append([]string(nil), order[a:a+blk]...)
				copy(order[a:a+blk], order[b:b+blk])
				copy(order[b:b+blk], tmp)
			}
		case "move":
			// Move the block at a to position b (positions in the reduced
			// order after excision).
			blkSyms := append([]string(nil), order[a:a+blk]...)
			rest := append(append([]string(nil), order[:a]...), order[a+blk:]...)
			if b > uint64(len(rest)) {
				b = uint64(len(rest))
			}
			order = append(append(append([]string(nil), rest[:b]...), blkSyms...), rest[b:]...)
		case "reverse":
			for i, j := a, a+blk-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		out = append(out, SearchCandidate{
			ID:    fmt.Sprintf("perturb/i%d/k%d/%s", iter, k, op),
			Op:    "perturb",
			Order: order,
		})
	}
	return out
}

// OrderDigest hashes an ordering for deduplication and journaling: a
// murmur chain over the symbol names, position-sensitive.
func OrderDigest(order []string) uint64 {
	h := murmur.Sum64Seed([]byte("nimage.search"), 0)
	for _, s := range order {
		h = murmur.Sum64Seed([]byte(s), h)
	}
	return h
}

// PredictOrder statically scores a candidate ordering against the
// recorded graph: the summed predicted refaults of the affinity replay
// at each swept pressure (under the serve cache budget), plus the mean
// locality score as the tie-break signal. This is the search's cheap
// inner objective — every candidate is predicted, only the top-k are
// measured.
func PredictOrder(g *affinity.Graph, order []string, pressures []int, cacheBudget int) (refaults int64, locality float64, err error) {
	layout := affinity.OrderPlacement(g, order)
	for _, p := range pressures {
		sc, err := affinity.Score(g, layout, StrategySLOSearch, p, cacheBudget)
		if err != nil {
			return 0, 0, err
		}
		refaults += sc.PredictedRefaults
		locality += sc.LocalityScore
	}
	if len(pressures) > 0 {
		locality /= float64(len(pressures))
	}
	return refaults, locality, nil
}

// SearchParams tunes the standalone graph-scored search.
type SearchParams struct {
	// Iters is the number of perturbation rounds after the seed+sweep
	// round; PerturbPerIter the perturbations generated per round.
	Iters          int
	PerturbPerIter int
	// Seed drives the perturbation draws.
	Seed uint64
	// Pressures are the replay pressure levels of the static objective;
	// CacheBudget its resident-page cap (0 = unbounded).
	Pressures   []int
	CacheBudget int
}

// DefaultSearchParams returns the standalone search defaults: two
// perturbation rounds of six candidates over the serve figure's pressure
// bracket.
func DefaultSearchParams() SearchParams {
	return SearchParams{
		Iters:          2,
		PerturbPerIter: 6,
		Seed:           0x5ea2c4,
		Pressures:      []int{30, 70},
	}
}

// SLOSearchOrder is the standalone slo-search layout: a purely
// graph-scored candidate search (no serve measurement), used wherever
// the strategy bakes outside the eval harness — the differential
// verifier, `nimage build/run`, and the cold-start figures. Seeds and
// parameter sweeps are scored first; the predicted-best order is then
// locally perturbed for a few rounds. Candidates are ranked by predicted
// refaults ascending, locality descending, candidate ID ascending — a
// total order, so the result is deterministic.
func SLOSearchOrder(g *affinity.Graph) []string {
	order, _ := SLOSearchOrderParams(g, DefaultSearchParams())
	return order
}

// searchPrediction is one statically scored candidate.
type searchPrediction struct {
	cand     SearchCandidate
	refaults int64
	locality float64
}

// betterPrediction is the static ranking: fewer predicted refaults, then
// higher locality, then lexicographic candidate ID.
func betterPrediction(a, b searchPrediction) bool {
	if a.refaults != b.refaults {
		return a.refaults < b.refaults
	}
	if a.locality != b.locality {
		return a.locality > b.locality
	}
	return a.cand.ID < b.cand.ID
}

// SLOSearchOrderParams is SLOSearchOrder with explicit parameters,
// returning the winning candidate's ID alongside its order.
func SLOSearchOrderParams(g *affinity.Graph, params SearchParams) ([]string, string) {
	seen := make(map[uint64]bool)
	var best searchPrediction
	haveBest := false
	consider := func(cands []SearchCandidate) {
		for _, c := range cands {
			if len(c.Order) == 0 {
				continue
			}
			d := OrderDigest(c.Order)
			if seen[d] {
				continue
			}
			seen[d] = true
			ref, loc, err := PredictOrder(g, c.Order, params.Pressures, params.CacheBudget)
			if err != nil {
				continue // invalid params; candidates are never individually invalid
			}
			p := searchPrediction{cand: c, refaults: ref, locality: loc}
			if !haveBest || betterPrediction(p, best) {
				best, haveBest = p, true
			}
		}
	}
	consider(SearchSeeds(g))
	consider(SearchSweeps(g))
	for it := 1; it <= params.Iters && haveBest; it++ {
		consider(SearchPerturbations(best.cand.Order, it, params.Seed, params.PerturbPerIter))
	}
	if !haveBest {
		return nil, ""
	}
	return best.cand.Order, best.cand.ID
}

// SearchCandidateIDs renders the deterministic ID universe of one
// iteration's generation (sweeps plus perturbations), sorted — journal
// consumers use it to sanity-check coverage.
func SearchCandidateIDs(cands []SearchCandidate) []string {
	ids := make([]string, 0, len(cands))
	for _, c := range cands {
		ids = append(ids, c.ID)
	}
	sort.Strings(ids)
	return ids
}
