// Package core implements the paper's primary contribution: profile-guided
// reordering of the .text compilation units (Sec. 4) and of the .svm_heap
// objects (Sec. 5), including the three 64-bit object-identity strategies
// used to match heap-snapshot objects across builds — incremental ID
// (Algorithm 1), structural hash (Algorithm 2), and heap path (Algorithm 3)
// — and the matcher that applies an object-access profile to the optimized
// build's snapshot.
package core

import "nimage/internal/graal"

// Code-ordering strategy names (Sec. 4.1, 4.2), plus the Pettis–Hansen
// baseline of the related work (Sec. 8).
const (
	StrategyCU           = "cu"
	StrategyMethod       = "method"
	StrategyPettisHansen = "pettis-hansen"
)

// CodeOrderResult is the outcome of applying a code-ordering profile.
type CodeOrderResult struct {
	// Order is the new CU layout order.
	Order []*graal.CompilationUnit
	// Matched counts profile entries that named a CU root of this build.
	Matched int
	// ProfileLen is the number of profile entries consumed.
	ProfileLen int
}

// OrderCUs reorders compilation units so that CUs named by the profile come
// first, in profile order, followed by the remaining CUs in their default
// (alphabetical) order.
//
// The profile is a deduplicated first-execution-order list of method
// signatures: CU-entry traces for the cu strategy, full method-entry traces
// for the method strategy (Sec. 4.2: a CU's position is the first occurrence
// of its root method in the trace). Profile entries that do not name a CU
// root in this build — e.g. methods that this build inlined everywhere — are
// skipped, which is exactly how divergence between the instrumented and the
// optimized build degrades the ordering (Sec. 4).
func OrderCUs(cus []*graal.CompilationUnit, profile []string) CodeOrderResult {
	res := CodeOrderResult{ProfileLen: len(profile)}
	bySig := make(map[string]*graal.CompilationUnit, len(cus))
	for _, cu := range cus {
		bySig[cu.Signature()] = cu
	}
	placed := make(map[*graal.CompilationUnit]bool, len(cus))
	order := make([]*graal.CompilationUnit, 0, len(cus))
	for _, sig := range profile {
		cu := bySig[sig]
		if cu == nil || placed[cu] {
			continue
		}
		res.Matched++
		placed[cu] = true
		order = append(order, cu)
	}
	for _, cu := range cus {
		if !placed[cu] {
			order = append(order, cu)
		}
	}
	res.Order = order
	return res
}
