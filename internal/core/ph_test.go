package core

import (
	"testing"

	"nimage/internal/graal"
	"nimage/internal/ir"
)

// phWorld builds methods a..f for ordering tests.
func phWorld(t *testing.T) map[string]*ir.Method {
	t.Helper()
	ms := map[string]*ir.Method{}
	b := ir.NewBuilder("ph")
	cb := b.Class("P")
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		m := cb.StaticMethod(n, 0, ir.Void())
		m.Entry().RetVoid()
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		ms[n] = p.Class("P").DeclaredMethod(n)
	}
	return ms
}

// cusOf wraps the named methods as single-member compilation units.
func cusOf(t *testing.T, ms map[string]*ir.Method, names ...string) []*graal.CompilationUnit {
	t.Helper()
	out := make([]*graal.CompilationUnit, 0, len(names))
	for _, n := range names {
		m := ms[n]
		out = append(out, &graal.CompilationUnit{
			Root: m, Members: map[*ir.Method]bool{m: true}, Size: m.CodeSize(),
		})
	}
	return out
}

func TestCallGraphAccumulates(t *testing.T) {
	ms := phWorld(t)
	g := NewCallGraph()
	g.AddCall(ms["a"], ms["b"])
	g.AddCall(ms["b"], ms["a"]) // same undirected edge
	g.AddCall(ms["a"], ms["c"])
	g.AddCall(nil, ms["a"])     // entry call: hotness only
	g.AddCall(ms["a"], ms["a"]) // self edge ignored
	if len(g.Weights) != 2 {
		t.Fatalf("edges = %d", len(g.Weights))
	}
	key := [2]*ir.Method{ms["a"], ms["b"]}
	if ms["a"].Signature() > ms["b"].Signature() {
		key = [2]*ir.Method{ms["b"], ms["a"]}
	}
	if g.Weights[key] != 2 {
		t.Errorf("a-b weight = %d", g.Weights[key])
	}
	// a: callee of (b,a), (nil,a), and the recursive (a,a) = 3 entries.
	if g.Hotness[ms["a"]] != 3 || g.Hotness[ms["b"]] != 1 {
		t.Errorf("hotness: %v", g.Hotness)
	}
}

func TestPettisHansenHotEdgeAdjacency(t *testing.T) {
	ms := phWorld(t)
	g := NewCallGraph()
	// Hot pair (c, e): weight 100. Lukewarm (a, b): 10. Cold: d, f unseen.
	for i := 0; i < 100; i++ {
		g.AddCall(ms["c"], ms["e"])
	}
	for i := 0; i < 10; i++ {
		g.AddCall(ms["a"], ms["b"])
	}
	gcus := cusOf(t, ms, "a", "b", "c", "d", "e", "f")
	order := PettisHansenOrder(gcus, g)
	if len(order) != 6 {
		t.Fatalf("order length %d", len(order))
	}
	pos := map[string]int{}
	for i, cu := range order {
		pos[cu.Root.Name] = i
	}
	// The hottest edge's endpoints are adjacent and come first.
	if d := pos["c"] - pos["e"]; d != 1 && d != -1 {
		t.Errorf("hot pair not adjacent: %v", pos)
	}
	if pos["c"] > 2 || pos["e"] > 2 {
		t.Errorf("hot chain not first: %v", pos)
	}
	if ab := pos["a"] - pos["b"]; ab != 1 && ab != -1 {
		t.Errorf("warm pair not adjacent: %v", pos)
	}
	// Unprofiled CUs keep default order at the end.
	if pos["d"] > pos["f"] {
		t.Errorf("cold tail reordered: %v", pos)
	}
	if pos["d"] < 4 {
		t.Errorf("cold CU before hot chains: %v", pos)
	}
}

func TestPettisHansenChainMerging(t *testing.T) {
	ms := phWorld(t)
	g := NewCallGraph()
	// Chain a-b (50), b-c (40), c-d (30): should coalesce into one chain
	// a b c d (or its reverse).
	for i := 0; i < 50; i++ {
		g.AddCall(ms["a"], ms["b"])
	}
	for i := 0; i < 40; i++ {
		g.AddCall(ms["b"], ms["c"])
	}
	for i := 0; i < 30; i++ {
		g.AddCall(ms["c"], ms["d"])
	}
	order := PettisHansenOrder(cusOf(t, ms, "a", "b", "c", "d"), g)
	got := ""
	for _, cu := range order {
		got += cu.Root.Name
	}
	if got != "abcd" && got != "dcba" {
		t.Errorf("chain order = %q", got)
	}
}

// TestPettisHansenMidChainEndpointNoFlip pins the merge behavior when an
// edge endpoint sits in the middle of its chain: no flip can bring it to
// the join boundary, so the chains concatenate with the endpoints
// non-adjacent (b stays interior; d lands next to c).
func TestPettisHansenMidChainEndpointNoFlip(t *testing.T) {
	ms := phWorld(t)
	g := NewCallGraph()
	for i := 0; i < 50; i++ {
		g.AddCall(ms["a"], ms["b"])
	}
	for i := 0; i < 40; i++ {
		g.AddCall(ms["b"], ms["c"])
	}
	for i := 0; i < 30; i++ {
		g.AddCall(ms["b"], ms["d"])
	}
	got := ""
	for _, cu := range PettisHansenOrder(cusOf(t, ms, "a", "b", "c", "d"), g) {
		got += cu.Root.Name
	}
	// After a-b and b-c coalesce into [a b c], the b-d edge finds b
	// mid-chain: [a b c] keeps its orientation and [d] joins at the tail.
	if got != "abcd" {
		t.Errorf("order = %q, want abcd (mid-chain endpoint must not flip)", got)
	}
}

// TestPettisHansenEndpointFlips pins both flip branches: a head-of-chain
// left endpoint reverses its chain to reach the join, and a tail-of-chain
// right endpoint reverses its chain to lead with the endpoint.
func TestPettisHansenEndpointFlips(t *testing.T) {
	ms := phWorld(t)
	g := NewCallGraph()
	for i := 0; i < 50; i++ {
		g.AddCall(ms["a"], ms["b"]) // chain [a b]
	}
	for i := 0; i < 40; i++ {
		g.AddCall(ms["c"], ms["d"]) // chain [c d]
	}
	for i := 0; i < 30; i++ {
		g.AddCall(ms["a"], ms["d"]) // joins the two, a and d both need flips
	}
	got := ""
	for _, cu := range PettisHansenOrder(cusOf(t, ms, "a", "b", "c", "d"), g) {
		got += cu.Root.Name
	}
	// [a b] flips to [b a] (a was at the head, must reach the tail) and
	// [c d] flips to [d c] (d was at the tail, must reach the head), so the
	// a-d endpoints are adjacent: b a | d c.
	if got != "badc" {
		t.Errorf("order = %q, want badc (both chains must flip)", got)
	}
}

// TestPettisHansenTieBreakExactOrder pins the deterministic tie-breaks:
// equal-weight edges process in signature order and equal-heat chains emit
// in first-method signature order.
func TestPettisHansenTieBreakExactOrder(t *testing.T) {
	ms := phWorld(t)
	g := NewCallGraph()
	g.AddCall(ms["e"], ms["f"])
	g.AddCall(ms["c"], ms["d"])
	g.AddCall(ms["a"], ms["b"])
	got := ""
	for _, cu := range PettisHansenOrder(cusOf(t, ms, "a", "b", "c", "d", "e", "f"), g) {
		got += cu.Root.Name
	}
	if got != "abcdef" {
		t.Errorf("order = %q, want abcdef (signature tie-breaks)", got)
	}
}

func TestPettisHansenDeterministic(t *testing.T) {
	ms := phWorld(t)
	mk := func() string {
		g := NewCallGraph()
		// Equal-weight edges force tie-breaking.
		g.AddCall(ms["a"], ms["b"])
		g.AddCall(ms["c"], ms["d"])
		g.AddCall(ms["e"], ms["f"])
		out := ""
		for _, cu := range PettisHansenOrder(cusOf(t, ms, "a", "b", "c", "d", "e", "f"), g) {
			out += cu.Root.Name
		}
		return out
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("nondeterministic: %q vs %q", a, b)
	}
}
