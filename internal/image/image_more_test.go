package image

import (
	"testing"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/osim"
	"nimage/internal/vm"
)

// TestNativeRegionFaultsIdenticalAcrossLayouts: the trailing native-code
// region of .text faults the same page set under the regular and the
// cu-ordered layout (the strategies do not reorder native methods).
func TestNativeRegionFaultsIdenticalAcrossLayouts(t *testing.T) {
	p := buildApp(t)
	reg, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildOptimized(p, PipelineOptions{
		Compiler:         graal.DefaultConfig(),
		Strategy:         core.StrategyCU,
		InstrumentedSeed: 7,
		OptimizedSeed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	nativeFaults := func(img *Image) map[int64]bool {
		o := testOS()
		proc, err := img.NewProcess(o, vm.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		defer proc.Close()
		if err := proc.Run(); err != nil {
			t.Fatal(err)
		}
		states := proc.Mapping.PageStates(SectionText)
		out := map[int64]bool{}
		firstPage := img.TextSection.Off / osim.PageSize
		nativeFirst := img.NativeOff/osim.PageSize - firstPage
		for i, st := range states {
			if int64(i) >= nativeFirst && st == osim.PageFaulted {
				out[int64(i)-nativeFirst] = true
			}
		}
		return out
	}
	a := nativeFaults(reg)
	b := nativeFaults(res.Optimized)
	if len(a) == 0 {
		t.Fatal("native region never faulted")
	}
	if len(a) != len(b) {
		t.Fatalf("native fault counts differ: %d vs %d", len(a), len(b))
	}
	for page := range a {
		if !b[page] {
			t.Fatalf("native page %d faulted only under one layout", page)
		}
	}
	if reg.NativeLen != res.Optimized.NativeLen {
		t.Errorf("native region sizes differ: %d vs %d", reg.NativeLen, res.Optimized.NativeLen)
	}
}

// TestHubTouchedOnAllocation: allocating an instance touches the class's
// hub object page in .svm_heap.
func TestHubTouchedOnAllocation(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	hub := img.Hubs[p.Class("Data")]
	if hub == nil || !hub.InSnapshot {
		t.Fatal("Data has no snapshot hub")
	}
	o := testOS()
	proc, err := img.NewProcess(o, vm.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	// Data instances are allocated by the clinit at build time AND by no
	// runtime code in buildApp... main reads them but does not allocate.
	// Registry's clinit ran at build time, so the hub may be untouched;
	// instead check a class that IS allocated at runtime: none in buildApp.
	// So assert the mechanism directly: a fresh process touching OpNew.
	states := proc.Mapping.PageStates(SectionHeap)
	_ = states
	// Directly exercise the hook.
	m := proc.Machine
	_ = m
	before := proc.Mapping.Faults
	proc.hooks().OnNew(0, p.Class("Data"))
	if proc.Mapping.Faults == before {
		// The hub page may already be resident via fault-around; touch a
		// second, colder hub to be sure the mechanism wires through.
		proc.hooks().OnNew(0, p.Class("App"))
	}
	// The strongest check: the hub's page is mapped afterwards.
	page := (img.HeapSection.Off + hub.Offset) / osim.PageSize
	st := proc.Mapping.PageStates(SectionHeap)
	idx := page - img.HeapSection.Off/osim.PageSize
	if st[idx] == osim.PageUntouched {
		t.Error("hub page untouched after allocation hook")
	}
}

// TestCUOffsetsAligned: every CU offset is 16-byte aligned (code
// alignment), and the first CU starts right after the header page.
func TestCUOffsetsAligned(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	if img.CUOffset[img.CULayout[0]] != osim.PageSize {
		t.Errorf("first CU at %d", img.CUOffset[img.CULayout[0]])
	}
	for _, cu := range img.CULayout {
		if img.CUOffset[cu]%16 != 0 {
			t.Fatalf("CU %s at unaligned offset %d", cu.Signature(), img.CUOffset[cu])
		}
	}
}

// TestProcessReuseRejected: a closed process cannot run again.
func TestProcessReuseRejected(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := img.NewProcess(testOS(), vm.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	proc.Close()
	if err := proc.Run(); err == nil {
		t.Fatal("closed process ran again")
	}
	proc.Close() // double close is a no-op
}

// TestStrategyIDHandleBounds: out-of-range handles do not translate.
func TestStrategyIDHandleBounds(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, Options{
		Kind: KindInstrumented, Compiler: graal.DefaultConfig(),
		Instr: graal.InstrHeap, BuildSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(img.Snapshot.Objects))
	if _, ok := img.StrategyIDOfHandle(core.StrategyHeapPath, n+1); ok {
		t.Error("out-of-range handle translated")
	}
	if _, ok := img.StrategyIDOfHandle("no such strategy", 1); ok {
		t.Error("unknown strategy translated")
	}
	if id, ok := img.StrategyIDOfHandle(core.StrategyHeapPath, n); !ok || id == 0 {
		t.Error("last valid handle failed")
	}
}

// TestInstrumentedVsOptimizedCUsDiverge: the methodology's core premise —
// the two builds of the pipeline form different compilation units.
func TestInstrumentedVsOptimizedCUsDiverge(t *testing.T) {
	p := buildApp(t)
	ins, err := Build(p, Options{
		Kind: KindInstrumented, Compiler: graal.DefaultConfig(),
		Instr: graal.InstrHeap, BuildSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Build(p, Options{
		Kind: KindOptimized, Compiler: graal.DefaultConfig(), BuildSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	for sig, icu := range ins.Comp.CUBySig {
		ocu := opt.Comp.CUBySig[sig]
		if ocu == nil {
			continue
		}
		if len(icu.Members) != len(ocu.Members) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Error("instrumented and optimized builds have identical CU compositions")
	}
}
