package image

import (
	"testing"
)

// TestAffinityReconcilesWithMapping: with both attribution and affinity
// attached (the fan-out path), the affinity graph's totals reconcile
// exactly with the mapping's fault counters and the file's eviction
// counters — the graph is a refinement of osim's metrics, not a
// parallel bookkeeping that can drift.
func TestAffinityReconcilesWithMapping(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := testOS()
	o.AttributeFaults = true
	o.TrackAffinity = true
	proc, err := img.NewProcess(o, vmHooksNone())
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	g := proc.AffinityGraph()
	if g == nil {
		t.Fatal("TrackAffinity set but no affinity graph")
	}
	if g.Workload != "app" {
		t.Errorf("workload = %q", g.Workload)
	}
	if g.Faults != proc.Mapping.Faults {
		t.Errorf("graph faults %d != mapping faults %d", g.Faults, proc.Mapping.Faults)
	}
	if g.Major != proc.Mapping.MajorFaults {
		t.Errorf("graph major %d != mapping major %d", g.Major, proc.Mapping.MajorFaults)
	}
	if g.Refaults != proc.Mapping.Refaults {
		t.Errorf("graph refaults %d != mapping refaults %d", g.Refaults, proc.Mapping.Refaults)
	}
	var nodeFaults int64
	for _, n := range g.Nodes {
		nodeFaults += n.Faults
	}
	if nodeFaults != g.Faults {
		t.Errorf("node fault sum %d != graph faults %d", nodeFaults, g.Faults)
	}
	if g.AccessEvents == 0 || len(g.Edges) == 0 || g.Windows == 0 {
		t.Errorf("degenerate graph: %d accesses, %d edges, %d windows",
			g.AccessEvents, len(g.Edges), g.Windows)
	}

	// The fan-out did not starve attribution: the table still reconciles.
	tab := proc.AttributionTable()
	if tab == nil {
		t.Fatal("fan-out lost the attribution recorder")
	}
	if tab.TotalFaults() != proc.Mapping.Faults {
		t.Errorf("attribution total %d != mapping faults %d",
			tab.TotalFaults(), proc.Mapping.Faults)
	}
}

// TestAffinityDisabledByDefault: no registry and no flag means no
// recorder and no access-observer overhead.
func TestAffinityDisabledByDefault(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := img.NewProcess(testOS(), vmHooksNone())
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	if proc.Affinity != nil || proc.AffinityGraph() != nil {
		t.Error("affinity recorder attached without registry or flag")
	}
	if proc.Mapping.AccessObserver != nil {
		t.Error("access observer attached without registry or flag")
	}
}

// TestAffinityAloneWithoutAttribution: TrackAffinity without
// AttributeFaults wires the affinity recorder directly into the
// observer slots (no fan-out partner) and still reconciles.
func TestAffinityAloneWithoutAttribution(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := testOS()
	o.TrackAffinity = true
	proc, err := img.NewProcess(o, vmHooksNone())
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	if proc.Attrib != nil {
		t.Fatal("attribution attached without its flag")
	}
	g := proc.AffinityGraph()
	if g == nil {
		t.Fatal("no affinity graph")
	}
	if g.Faults != proc.Mapping.Faults {
		t.Errorf("graph faults %d != mapping faults %d", g.Faults, proc.Mapping.Faults)
	}
}
