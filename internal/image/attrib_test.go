package image

import (
	"testing"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/obs/attrib"
)

func runAttributed(t *testing.T, img *Image) (*Process, *attrib.Table) {
	t.Helper()
	o := testOS()
	o.AttributeFaults = true
	proc, err := img.NewProcess(o, vmHooksNone())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	tab := proc.AttributionTable()
	proc.Close()
	if tab == nil {
		t.Fatal("AttributeFaults set but no attribution table")
	}
	return proc, tab
}

// The acceptance criterion of the attribution stream: its per-section
// totals reconcile *exactly* with osim's SectionFaults counters — the
// per-symbol view is a refinement of the existing metrics, not a parallel
// bookkeeping that can drift.
func TestAttributionReconcilesWithSectionFaults(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	proc, tab := runAttributed(t, img)

	for _, name := range []string{SectionText, SectionHeap} {
		want := proc.Mapping.SectionFaults(name)
		got := tab.Section(name)
		if got.Major != want.Major || got.Minor != want.Minor {
			t.Errorf("%s: attribution %d/%d, osim counters %d/%d",
				name, got.Major, got.Minor, want.Major, want.Minor)
		}
	}
	if tab.TotalFaults() != proc.Mapping.Faults {
		t.Errorf("attribution total %d != mapping faults %d",
			tab.TotalFaults(), proc.Mapping.Faults)
	}
	if tab.Workload != "app" {
		t.Errorf("workload = %q", tab.Workload)
	}

	// Every faulted page resolves to at least one symbol: the layout's
	// symbols plus <header>/<native> cover every byte a run can touch.
	ix := img.AttributionIndex()
	for _, h := range tab.Heat {
		if len(ix.SymbolsOnPage(int(h.Page))) == 0 {
			t.Errorf("faulted page %d has no symbols", h.Page)
		}
	}

	// All symbol kinds that can fault are represented.
	kinds := map[string]bool{}
	for _, s := range tab.Symbols {
		kinds[s.Kind] = true
	}
	for _, k := range []string{attrib.KindHeader, attrib.KindCU, attrib.KindNative, attrib.KindObject} {
		if !kinds[k] {
			t.Errorf("no faulted symbol of kind %q", k)
		}
	}
}

func TestAttributionDisabledByDefault(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := img.NewProcess(testOS(), vmHooksNone())
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	if proc.Attrib != nil || proc.AttributionTable() != nil {
		t.Error("attribution recorder attached without registry or flag")
	}
}

// Diffing a regular build against a CU-ordered build by symbol name must
// show eliminated cold CUs: the reordering's entire point is that the
// pages of startup-hot CUs stop sharing pages with cold ones.
func TestAttributionDiffAcrossLayouts(t *testing.T) {
	p := buildApp(t)
	reg, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, base := runAttributed(t, reg)
	base.Layout = "identity"

	res, err := BuildOptimized(p, PipelineOptions{
		Compiler:         graal.DefaultConfig(),
		Strategy:         core.StrategyCU,
		InstrumentedSeed: 7,
		OptimizedSeed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, opt := runAttributed(t, res.Optimized)
	opt.Layout = "cu"

	d := attrib.DiffTables(base, opt)
	if len(d.Eliminated) == 0 {
		t.Fatalf("cu ordering eliminated no cold symbols: %d -> %d faults",
			d.BaselineFaults, d.OptimizedFaults)
	}
	if d.OptimizedFaults >= d.BaselineFaults {
		t.Errorf("faults %d -> %d (no reduction)", d.BaselineFaults, d.OptimizedFaults)
	}
	// CU symbol names line up across the two independent builds.
	cuNamed := false
	for _, e := range d.Eliminated {
		if e.Kind == attrib.KindCU {
			cuNamed = true
			break
		}
	}
	if !cuNamed {
		t.Errorf("no CU among eliminated symbols: %+v", d.Eliminated)
	}
	// The native tail faults under every layout (Fig. 6) and so must
	// survive the diff rather than appear eliminated or new.
	survivedNative := false
	for _, e := range d.Survived {
		if e.Name == SymbolNative {
			survivedNative = true
		}
	}
	if !survivedNative {
		t.Error("native region missing from survived symbols")
	}
}

// Two cold runs of the same image produce identical tables (rollback plus
// DropCaches restore pristine state), and a warm run drops the majors.
func TestAttributionDeterministicAndWarm(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := testOS()
	o.AttributeFaults = true
	run := func(drop bool) *attrib.Table {
		if drop {
			o.DropCaches()
		}
		proc, err := img.NewProcess(o, vmHooksNone())
		if err != nil {
			t.Fatal(err)
		}
		defer proc.Close()
		if err := proc.Run(); err != nil {
			t.Fatal(err)
		}
		return proc.AttributionTable()
	}
	t1 := run(true)
	t2 := run(true)
	warm := run(false)
	if t1.TotalFaults() != t2.TotalFaults() || len(t1.Symbols) != len(t2.Symbols) {
		t.Errorf("cold runs differ: %d/%d faults, %d/%d symbols",
			t1.TotalFaults(), t2.TotalFaults(), len(t1.Symbols), len(t2.Symbols))
	}
	for i := range t1.Symbols {
		if t1.Symbols[i] != t2.Symbols[i] {
			t.Errorf("symbol %d differs: %+v vs %+v", i, t1.Symbols[i], t2.Symbols[i])
			break
		}
	}
	var coldMajor, warmMajor int64
	for _, s := range t1.Sections {
		coldMajor += s.Major
	}
	for _, s := range warm.Sections {
		warmMajor += s.Major
	}
	if coldMajor == 0 || warmMajor >= coldMajor {
		t.Errorf("major faults cold %d, warm %d", coldMajor, warmMajor)
	}
}

// Object names must not depend on the layout order of the heap section —
// they follow snapshot encounter order, which is what makes cross-layout
// diffs line up.
func TestObjectNamesStableUnderReordering(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	names := img.objectNames()
	seen := map[string]bool{}
	for _, o := range img.Snapshot.Objects {
		n := names[o]
		if n == "" {
			t.Fatalf("object %d unnamed", o.SeqID)
		}
		if seen[n] {
			t.Fatalf("duplicate object name %q", n)
		}
		seen[n] = true
	}
	for c, hub := range img.Hubs {
		if names[hub] != "hub:"+c.Name {
			t.Errorf("hub of %s named %q", c.Name, names[hub])
		}
	}
}
