package image

import (
	"encoding/binary"
	"fmt"
	"time"

	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/murmur"
	"nimage/internal/obs"
	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
	"nimage/internal/vm"
)

// File returns (creating on first use) the on-disk representation of the
// image under the given OS's page cache.
func (img *Image) File(o *osim.OS) (*osim.File, error) {
	if f, ok := img.files[o]; ok {
		return f, nil
	}
	f, err := o.NewFile(img.Program.Name+".bin", img.FileSize, []osim.Section{
		img.TextSection, img.HeapSection,
	})
	if err != nil {
		return nil, err
	}
	img.files[o] = f
	return f, nil
}

// Process is one execution of the image: a fresh memory mapping over the
// (possibly warm) page cache, an interpreter wired to touch the mapped
// pages exactly where the layout put the code and objects, and a mutation
// journal so the image state is pristine again after Close.
type Process struct {
	Img     *Image
	Machine *vm.Machine
	Mapping *osim.Mapping

	// Attrib, when non-nil, is the per-fault attribution recorder observing
	// the mapping (attached when the OS has an obs registry or sets
	// AttributeFaults). Read results via AttributionTable.
	Attrib *attrib.Recorder

	// Affinity, when non-nil, is the temporal co-access recorder observing
	// the mapping's access, fault and eviction streams (attached when the
	// OS has an obs registry or sets TrackAffinity). Read results via
	// AffinityGraph.
	Affinity *affinity.Recorder

	// AccessedObjects counts distinct snapshot objects touched (Sec. 7.2
	// reports that AWFY accesses ~4% of them).
	AccessedObjects int

	accessed map[*heap.Object]bool
	obs      *obs.Registry
	closed   bool
}

// NewProcess starts a process over the image. extra hooks (e.g. a tracing
// profiler's) are composed with the image's own page-touching hooks.
func (img *Image) NewProcess(o *osim.OS, extra vm.Hooks) (*Process, error) {
	f, err := img.File(o)
	if err != nil {
		return nil, err
	}
	p := &Process{
		Img:      img,
		Mapping:  f.Map(),
		accessed: make(map[*heap.Object]bool),
		obs:      o.Obs,
	}
	m := vm.New(img.Program)
	// Share the build-time heap state: the snapshot objects ARE the
	// mapped .svm_heap contents.
	m.Statics = img.Statics
	m.Interns = img.Interns
	m.BuildSalt = img.Opts.BuildSeed
	m.Obs = o.Obs
	m.EnableJournal()
	m.Hooks = vm.ComposeHooks(p.hooks(), extra)
	p.Machine = m

	// Attach the fault-attribution recorder before the first touch below,
	// so the header and native startup faults are attributed too.
	if o.Obs.Enabled() || o.AttributeFaults {
		p.Attrib = attrib.NewRecorder(img.AttributionIndex())
		p.Mapping.Observer = p.Attrib
		p.Mapping.EvictObserver = p.Attrib
	}
	// Attach the temporal co-access recorder; both recorders observe the
	// same fault/eviction streams, so the single observer slots fan out
	// when attribution is active too.
	if o.Obs.Enabled() || o.TrackAffinity {
		p.Affinity = affinity.NewRecorder(img.AttributionIndex(), affinity.Config{})
		p.Mapping.AccessObserver = p.Affinity
		if p.Attrib != nil {
			p.Mapping.Observer = faultFan{p.Attrib, p.Affinity}
			p.Mapping.EvictObserver = evictFan{p.Attrib, p.Affinity}
		} else {
			p.Mapping.Observer = p.Affinity
			p.Mapping.EvictObserver = p.Affinity
		}
	}

	// Program startup maps the binary, reads the header page, and runs the
	// native startup code (libc init, ELF entry): a fixed pseudo-random
	// third of the native region's pages fault, independent of the CU and
	// heap layout — these are the unprofiled methods at the end of .text
	// in Fig. 6 that the strategies cannot reorder.
	p.Mapping.Touch(0)
	nativePages := img.NativeLen / osim.PageSize
	for i := int64(0); i < nativePages/2; i++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		page := int64(murmur.Sum64Seed(buf[:], uint64(len(img.Program.Name))) % uint64(nativePages))
		p.Mapping.Touch(img.NativeOff + page*osim.PageSize)
	}
	return p, nil
}

// faultFan / evictFan broadcast one mapping's observer slot to several
// recorders (attribution and affinity observe the same streams).
type faultFan []osim.FaultObserver

func (f faultFan) OnFault(ev osim.FaultEvent) {
	for _, o := range f {
		o.OnFault(ev)
	}
}

type evictFan []osim.EvictionObserver

func (f evictFan) OnEvict(ev osim.EvictionEvent) {
	for _, o := range f {
		o.OnEvict(ev)
	}
}

// hooks wires the interpreter's events to page touches.
func (p *Process) hooks() vm.Hooks {
	img := p.Img
	return vm.Hooks{
		InlineOf: func(ctx, callee *ir.Method) bool {
			cu := img.cuByRoot[ctx]
			return cu != nil && cu.Members[callee]
		},
		OnEnterCU: func(tid int, root *ir.Method) {
			cu := img.cuByRoot[root]
			if cu == nil {
				return
			}
			p.Mapping.TouchRange(img.CUOffset[cu], int64(cu.Size))
		},
		OnAccess: func(tid int, o *heap.Object, instr bool) {
			if !o.InSnapshot {
				return
			}
			if !p.accessed[o] {
				p.accessed[o] = true
				p.AccessedObjects++
			}
			p.Mapping.TouchRange(img.HeapSection.Off+o.Offset, o.Size)
		},
		OnNew: func(tid int, c *ir.Class) {
			hub := img.Hubs[c]
			if hub == nil {
				return
			}
			p.Mapping.TouchRange(img.HeapSection.Off+hub.Offset, hub.Size)
		},
	}
}

// Run executes the program to completion (or first response when the
// machine is configured with StopOnRespond).
func (p *Process) Run(args ...int64) error {
	if p.closed {
		return fmt.Errorf("image: process already closed")
	}
	return p.Machine.RunProgram(args...)
}

// Stats summarizes one finished run.
type Stats struct {
	// TextFaults / HeapFaults are page faults attributed to the sections.
	TextFaults osim.SectionFaults
	HeapFaults osim.SectionFaults
	// TotalFaults counts all page faults of the mapping.
	TotalFaults int64
	// CPUTime is the simulated compute time; IOTime the simulated device
	// time; Total their sum (end-to-end execution time, Sec. 7.3).
	CPUTime time.Duration
	IOTime  time.Duration
	Total   time.Duration
	// TimeToResponse is the elapsed time until the first response for
	// microservice workloads (0 when the workload never responded).
	TimeToResponse time.Duration
	// AccessedObjects / SnapshotObjects give the accessed fraction.
	AccessedObjects int
	SnapshotObjects int
}

// Stats returns the measurements of the run so far.
func (p *Process) Stats() Stats {
	cpu := time.Duration(p.Machine.SimTimeNanos())
	io := p.Mapping.IOTime
	st := Stats{
		TextFaults:      p.Mapping.SectionFaults(SectionText),
		HeapFaults:      p.Mapping.SectionFaults(SectionHeap),
		TotalFaults:     p.Mapping.Faults,
		CPUTime:         cpu,
		IOTime:          io,
		Total:           cpu + io,
		AccessedObjects: p.AccessedObjects,
		SnapshotObjects: len(p.Img.Snapshot.Objects),
	}
	if p.Machine.Responded {
		// I/O is interleaved with compute before the response; all faults
		// up to the response contribute. The respond point is measured in
		// CPU time; the mapping's I/O up to then is approximated by the
		// full I/O time of the (killed-at-response) run.
		st.TimeToResponse = time.Duration(p.Machine.RespondTimeNanos()) + io
	}
	return st
}

// Close rolls back every mutation the run applied to the image heap, so
// the image can be executed again from pristine state (the next benchmark
// iteration's fresh process).
func (p *Process) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.Attrib != nil {
		p.Attrib.Finish(p.Mapping.PageClasses())
	}
	if p.Affinity != nil {
		p.Affinity.Finish()
	}
	if r := p.obs; r.Enabled() {
		st := p.Stats()
		r.Gauge("run.cpu_nanos").Set(float64(st.CPUTime.Nanoseconds()))
		r.Gauge("run.io_nanos").Set(float64(st.IOTime.Nanoseconds()))
		r.Gauge("run.total_nanos").Set(float64(st.Total.Nanoseconds()))
		r.Gauge("run.time_to_response_nanos").Set(float64(st.TimeToResponse.Nanoseconds()))
		r.Gauge("run.total_faults").Set(float64(st.TotalFaults))
		r.Gauge("run.accessed_objects").Set(float64(st.AccessedObjects))
		r.Gauge("run.snapshot_objects").Set(float64(st.SnapshotObjects))
	}
	p.Machine.Rollback()
	// munmap: later cache evictions (or the next iteration's DropCaches)
	// must not walk this dead process's page table or observers.
	p.Mapping.Release()
}
