package image

import (
	"fmt"
	"testing"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/ir"
	"nimage/internal/osim"
	"nimage/internal/vm"
)

// buildApp constructs a program large enough to span several pages:
//
//   - 160 leaf methods m000..m159 (~300 B each, too big to inline);
//   - main calls a scattered subset in non-alphabetical order;
//   - a clinit builds 240 Data objects into a static array; main reads
//     every 12th element's field.
func buildApp(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("app")
	b.Class(ir.StringClass)

	data := b.Class("Data")
	data.Field("val", ir.Int())
	for i := 0; i < 5; i++ {
		data.Field(fmt.Sprintf("pad%d", i), ir.Int())
	}

	reg := b.Class("Registry")
	reg.Static("items", ir.Array(ir.Ref("Data")))
	cl := reg.Clinit()
	ce := cl.Entry()
	n := ce.ConstInt(240)
	arr := ce.NewArray(ir.Ref("Data"), n)
	zero := ce.ConstInt(0)
	eight := ce.ConstInt(8)
	zeroC := ce.ConstInt(0)
	exit := ce.For(zero, n, 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.New("Data")
		body.PutField(o, "Data", "val", i)
		// Only every 8th object captures a build-dependent value, so
		// content-based identities still match most objects.
		rem := body.Arith(ir.Rem, i, eight)
		isSalted := body.Cmp(ir.Eq, rem, zeroC)
		after := body.IfThen(isSalted, func(th *ir.BlockBuilder) *ir.BlockBuilder {
			salt := th.Intrinsic(ir.IntrinsicBuildSalt)
			th.PutField(o, "Data", "pad0", salt)
			return th
		})
		after.ASet(arr, i, o)
		return after
	})
	exit.PutStatic("Registry", "items", arr)
	exit.RetVoid()

	app := b.Class("App")
	for i := 0; i < 160; i++ {
		m := app.StaticMethod(fmt.Sprintf("m%03d", i), 1, ir.Int())
		e := m.Entry()
		acc := e.Move(m.Param(0))
		for k := 0; k < 24; k++ {
			c := e.ConstInt(int64(k + i))
			e.ArithTo(acc, ir.Add, acc, c)
		}
		e.Ret(acc)
	}

	// coldAll references every leaf method, making all of them reachable —
	// the conservative analysis includes far more code than what executes
	// (Sec. 2) — but main never actually calls it at runtime.
	cold := app.StaticMethod("coldAll", 1, ir.Void())
	ce2 := cold.Entry()
	for i := 0; i < 160; i++ {
		ce2.Call("App", fmt.Sprintf("m%03d", i), cold.Param(0))
	}
	ce2.RetVoid()

	// Borderline-sized helpers: small enough for the PGO-boosted inliner,
	// too big for the regular/instrumented one — the divergence source.
	for g := 0; g < 3; g++ {
		hm := app.StaticMethod(fmt.Sprintf("helper%d", g), 1, ir.Int())
		he := hm.Entry()
		hacc := he.Move(hm.Param(0))
		for k := 0; k < 6; k++ {
			kc := he.ConstInt(int64(g*7 + k))
			he.ArithTo(hacc, ir.Add, hacc, kc)
		}
		he.Ret(hacc)
	}

	mm := app.StaticMethod("main", 0, ir.Void())
	e := mm.Entry()
	e.Str("app-banner")
	x := e.ConstInt(1)
	for g := 0; g < 3; g++ {
		e.Call("App", fmt.Sprintf("helper%d", g), x)
	}
	never := e.ConstInt(0)
	e = e.IfThen(never, func(th *ir.BlockBuilder) *ir.BlockBuilder {
		th.CallVoid("App", "coldAll", x)
		return th
	})
	// Scattered, non-alphabetical call order.
	for _, i := range []int{143, 7, 88, 21, 120, 55, 3, 99, 150, 42, 66, 17, 131, 74, 108} {
		e.Call("App", fmt.Sprintf("m%03d", i), x)
	}
	items := e.GetStatic("Registry", "items")
	zero2 := e.ConstInt(0)
	hi := e.ConstInt(240)
	exit2 := e.For(zero2, hi, 12, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		o := body.AGet(items, i)
		body.GetField(o, "Data", "val")
		return body
	})
	exit2.RetVoid()
	b.SetEntry("App", "main")

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testOS() *osim.OS {
	o := osim.NewOS(osim.SSD())
	o.FaultAround = 1
	return o
}

func regularOpts() Options {
	return Options{Kind: KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: 1}
}

func TestBuildRegularLayout(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.CULayout) < 160 {
		t.Fatalf("CUs = %d", len(img.CULayout))
	}
	// Default order is alphabetical and offsets are increasing and within
	// the .text section.
	var prevOff int64 = -1
	for i, cu := range img.CULayout {
		off := img.CUOffset[cu]
		if off <= prevOff {
			t.Fatalf("CU %d offset %d not increasing", i, off)
		}
		prevOff = off
		if i > 0 && img.CULayout[i-1].Signature() >= cu.Signature() {
			t.Fatalf("default CU order not alphabetical at %d", i)
		}
		if off < img.TextSection.Off || off+int64(cu.Size) > img.TextSection.Off+img.TextSection.Len {
			t.Fatalf("CU %s outside .text", cu.Signature())
		}
	}
	// Snapshot contains the Data objects, the array, hubs, metadata,
	// interned banner.
	if len(img.Snapshot.Objects) < 250 {
		t.Fatalf("snapshot objects = %d", len(img.Snapshot.Objects))
	}
	if img.HeapSection.Off%osim.PageSize != 0 {
		t.Error(".svm_heap not page aligned")
	}
	if img.HeapSection.Off < img.TextSection.Off+img.TextSection.Len {
		t.Error("sections overlap")
	}
	// Objects have offsets within the heap section.
	for _, o := range img.ObjLayout {
		if o.Offset < 0 || o.Offset+o.Size > img.HeapSection.Len {
			t.Fatalf("object at %d size %d outside heap section of %d", o.Offset, o.Size, img.HeapSection.Len)
		}
	}
	if img.FileSize < img.HeapSection.Off+img.HeapSection.Len {
		t.Error("file too small")
	}
}

func TestBuildDeterministicPerSeed(t *testing.T) {
	p := buildApp(t)
	a, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Snapshot.Objects) != len(b.Snapshot.Objects) {
		t.Fatalf("object counts differ: %d vs %d", len(a.Snapshot.Objects), len(b.Snapshot.Objects))
	}
	for i := range a.ObjLayout {
		if a.ObjLayout[i].Offset != b.ObjLayout[i].Offset || a.ObjLayout[i].TypeName() != b.ObjLayout[i].TypeName() {
			t.Fatalf("layout differs at %d", i)
		}
	}
	if a.TextSection != b.TextSection || a.HeapSection != b.HeapSection {
		t.Error("sections differ across identical builds")
	}
}

func TestRunProcessAndRollback(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := testOS()

	run := func() Stats {
		o.DropCaches()
		proc, err := img.NewProcess(o, vmHooksNone())
		if err != nil {
			t.Fatal(err)
		}
		defer proc.Close()
		if err := proc.Run(); err != nil {
			t.Fatal(err)
		}
		return proc.Stats()
	}
	s1 := run()
	s2 := run()
	if s1.TextFaults.Total() == 0 || s1.HeapFaults.Total() == 0 {
		t.Fatalf("no faults attributed: %+v", s1)
	}
	if s1 != s2 {
		t.Fatalf("iterations differ (rollback broken?):\n%+v\n%+v", s1, s2)
	}
	if s1.AccessedObjects == 0 || s1.AccessedObjects >= s1.SnapshotObjects {
		t.Errorf("accessed %d of %d objects", s1.AccessedObjects, s1.SnapshotObjects)
	}
	if s1.Total <= s1.CPUTime || s1.IOTime == 0 {
		t.Errorf("time model: %+v", s1)
	}
}

func vmHooksNone() vm.Hooks { return vm.Hooks{} }

func TestWarmPageCacheReducesIOTime(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := testOS()
	cold, err := img.NewProcess(o, vmHooksNone())
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	coldStats := cold.Stats()
	cold.Close()

	warm, err := img.NewProcess(o, vmHooksNone()) // no cache drop
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	warmStats := warm.Stats()
	warm.Close()

	if warmStats.IOTime >= coldStats.IOTime {
		t.Errorf("warm IO %v >= cold IO %v", warmStats.IOTime, coldStats.IOTime)
	}
	if warmStats.TotalFaults > coldStats.TotalFaults {
		t.Errorf("warm faults %d > cold %d", warmStats.TotalFaults, coldStats.TotalFaults)
	}
}

// runFaults builds and runs an image, returning its stats.
func runFaults(t *testing.T, img *Image) Stats {
	t.Helper()
	o := testOS()
	proc, err := img.NewProcess(o, vmHooksNone())
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	if err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	return proc.Stats()
}

func TestPipelineCUOrderingReducesTextFaults(t *testing.T) {
	p := buildApp(t)
	reg, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	base := runFaults(t, reg)

	res, err := BuildOptimized(p, PipelineOptions{
		Compiler:         graal.DefaultConfig(),
		Strategy:         core.StrategyCU,
		InstrumentedSeed: 7,
		OptimizedSeed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized.CodeOrderStats.Matched == 0 {
		t.Fatal("code profile matched nothing")
	}
	opt := runFaults(t, res.Optimized)
	if opt.TextFaults.Total() >= base.TextFaults.Total() {
		t.Errorf("cu ordering: text faults %d -> %d (no reduction)",
			base.TextFaults.Total(), opt.TextFaults.Total())
	}
	if len(res.Runs) != 1 || res.Runs[0].Instr != graal.InstrCU {
		t.Errorf("runs = %+v", res.Runs)
	}
	if res.Runs[0].TraceWords == 0 {
		t.Error("no trace words recorded")
	}
}

func TestPipelineHeapOrderingReducesHeapFaults(t *testing.T) {
	p := buildApp(t)
	reg, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	base := runFaults(t, reg)

	for _, strategy := range []string{core.StrategyIncremental, core.StrategyStructural, core.StrategyHeapPath} {
		res, err := BuildOptimized(p, PipelineOptions{
			Compiler:         graal.DefaultConfig(),
			Strategy:         strategy,
			InstrumentedSeed: 7,
			OptimizedSeed:    9,
		})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if res.Optimized.HeapMatchStats.MatchedObjects == 0 {
			t.Errorf("%s: heap profile matched nothing", strategy)
			continue
		}
		opt := runFaults(t, res.Optimized)
		// The test app is tiny, so fault counts are small; allow one page
		// of noise (the paper itself records a 0.99x case, Sec. 7.2).
		if opt.HeapFaults.Total() > base.HeapFaults.Total()+1 {
			t.Errorf("%s: heap faults %d -> %d (increase)",
				strategy, base.HeapFaults.Total(), opt.HeapFaults.Total())
		}
	}
}

func TestPipelineCombinedStrategy(t *testing.T) {
	p := buildApp(t)
	reg, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	base := runFaults(t, reg)

	res, err := BuildOptimized(p, PipelineOptions{
		Compiler:         graal.DefaultConfig(),
		Strategy:         core.StrategyCombined,
		InstrumentedSeed: 7,
		OptimizedSeed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("combined strategy runs = %d, want 2", len(res.Runs))
	}
	opt := runFaults(t, res.Optimized)
	if opt.TextFaults.Total() >= base.TextFaults.Total() {
		t.Errorf("combined: text faults %d -> %d", base.TextFaults.Total(), opt.TextFaults.Total())
	}
	if opt.HeapFaults.Total() > base.HeapFaults.Total() {
		t.Errorf("combined: heap faults %d -> %d", base.HeapFaults.Total(), opt.HeapFaults.Total())
	}
	if opt.Total >= base.Total {
		t.Errorf("combined: time %v -> %v (no speedup)", base.Total, opt.Total)
	}
}

func TestInstrumentedBuildHasStrategyIDs(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, Options{
		Kind: KindInstrumented, Compiler: graal.DefaultConfig(),
		Instr: graal.InstrHeap, BuildSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if img.Numberings == nil {
		t.Fatal("heap-instrumented build lacks path numberings")
	}
	for _, s := range core.HeapStrategies() {
		ids := img.StrategyIDs[s.Name()]
		if len(ids) != len(img.Snapshot.Objects) {
			t.Errorf("%s: %d ids for %d objects", s.Name(), len(ids), len(img.Snapshot.Objects))
		}
	}
	// Handle round trip.
	o := img.Snapshot.Objects[5]
	id, ok := img.StrategyIDOfHandle(core.StrategyHeapPath, img.ObjectHandle(o))
	if !ok || id != img.StrategyIDs[core.StrategyHeapPath][5] {
		t.Error("handle translation broken")
	}
	if _, ok := img.StrategyIDOfHandle(core.StrategyHeapPath, 0); ok {
		t.Error("handle 0 translated")
	}
}

func TestBuildSeedChangesEncounterOrder(t *testing.T) {
	p := buildApp(t)
	a, err := Build(p, Options{Kind: KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p, Options{Kind: KindRegular, Compiler: graal.DefaultConfig(), BuildSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The object count may legitimately differ slightly (folding), and the
	// build salt guarantees some content differs. Check that the two
	// builds are not identical in their Data objects' salted fields.
	fieldOf := func(img *Image) int64 {
		for _, o := range img.Snapshot.Objects {
			if !o.IsArray && o.Class != nil && o.Class.Name == "Data" {
				return o.Fields[1].Int() // pad0 = buildsalt
			}
		}
		return 0
	}
	if fieldOf(a) == fieldOf(b) {
		t.Error("build salt identical across seeds")
	}
}

func TestProfilingRunTimeExceedsPlainRun(t *testing.T) {
	p := buildApp(t)
	reg, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	base := runFaults(t, reg)
	res, err := BuildOptimized(p, PipelineOptions{
		Compiler:         graal.DefaultConfig(),
		Strategy:         core.StrategyMethod,
		InstrumentedSeed: 5,
		OptimizedSeed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Time <= base.CPUTime {
		t.Errorf("instrumented run %v not slower than plain CPU time %v", res.Runs[0].Time, base.CPUTime)
	}
}
