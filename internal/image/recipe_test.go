package image

import (
	"bytes"
	"reflect"
	"testing"

	"nimage/internal/core"
	"nimage/internal/graal"
)

func TestRecipeRoundTripRegular(t *testing.T) {
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRecipe(&buf, RecipeOf(img)); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRecipe(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindRegular || r.BuildSeed != 1 || r.Compiler != graal.DefaultConfig() {
		t.Errorf("recipe fields: %+v", r)
	}
	baked, err := r.Bake()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: the baked image matches the original layout exactly.
	if baked.TextSection != img.TextSection || baked.HeapSection != img.HeapSection || baked.FileSize != img.FileSize {
		t.Errorf("sections differ:\n%+v %+v\n%+v %+v", baked.TextSection, baked.HeapSection, img.TextSection, img.HeapSection)
	}
	if len(baked.CULayout) != len(img.CULayout) {
		t.Fatalf("CU counts differ")
	}
	for i := range img.CULayout {
		if baked.CULayout[i].Signature() != img.CULayout[i].Signature() {
			t.Fatalf("CU %d: %s vs %s", i, baked.CULayout[i].Signature(), img.CULayout[i].Signature())
		}
	}
	if len(baked.ObjLayout) != len(img.ObjLayout) {
		t.Fatalf("object counts differ")
	}
	for i := range img.ObjLayout {
		if baked.ObjLayout[i].Offset != img.ObjLayout[i].Offset ||
			baked.ObjLayout[i].TypeName() != img.ObjLayout[i].TypeName() {
			t.Fatalf("object %d differs", i)
		}
	}
}

func TestRecipeRoundTripOptimized(t *testing.T) {
	p := buildApp(t)
	res, err := BuildOptimized(p, PipelineOptions{
		Compiler:         graal.DefaultConfig(),
		Strategy:         core.StrategyCombined,
		InstrumentedSeed: 7,
		OptimizedSeed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRecipe(&buf, RecipeOf(res.Optimized)); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRecipe(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.HeapStrategyName != core.StrategyHeapPath {
		t.Errorf("strategy name = %q", r.HeapStrategyName)
	}
	if !reflect.DeepEqual(r.CodeProfile, res.CodeProfile) {
		t.Error("code profile not preserved")
	}
	if !reflect.DeepEqual(r.HeapProfile, res.HeapProfile) {
		t.Error("heap profile not preserved")
	}
	baked, err := r.Bake()
	if err != nil {
		t.Fatal(err)
	}
	if baked.CodeOrderStats.Matched != res.Optimized.CodeOrderStats.Matched {
		t.Errorf("code matching differs: %d vs %d",
			baked.CodeOrderStats.Matched, res.Optimized.CodeOrderStats.Matched)
	}
	if baked.HeapMatchStats.MatchedObjects != res.Optimized.HeapMatchStats.MatchedObjects {
		t.Errorf("heap matching differs")
	}
	for i := range res.Optimized.CULayout {
		if baked.CULayout[i].Signature() != res.Optimized.CULayout[i].Signature() {
			t.Fatalf("optimized CU layout differs at %d", i)
		}
	}
}

// TestEveryRegisteredStrategyBakesAndRoundTrips is the registry's
// anti-drift guarantee: every strategy core.Registry lists — including
// the graph strategies, which record their own affinity input — bakes
// standalone through the full pipeline, and its .nimg recipe re-bakes to
// the identical layout.
func TestEveryRegisteredStrategyBakesAndRoundTrips(t *testing.T) {
	p := buildApp(t)
	for _, info := range core.Registry() {
		res, err := BuildOptimized(p, PipelineOptions{
			Compiler:         graal.DefaultConfig(),
			Strategy:         info.Name,
			InstrumentedSeed: 7,
			OptimizedSeed:    9,
		})
		if err != nil {
			t.Fatalf("%s: bake: %v", info.Name, err)
		}
		if info.Text && len(res.CodeProfile) == 0 {
			t.Errorf("%s: text strategy produced an empty code profile", info.Name)
		}
		if info.Graph && len(res.HeapProfile) != 0 {
			t.Errorf("%s: graph strategy produced a heap profile", info.Name)
		}
		var buf bytes.Buffer
		if err := WriteRecipe(&buf, RecipeOf(res.Optimized)); err != nil {
			t.Fatalf("%s: write recipe: %v", info.Name, err)
		}
		r, err := ReadRecipe(&buf)
		if err != nil {
			t.Fatalf("%s: read recipe: %v", info.Name, err)
		}
		baked, err := r.Bake()
		if err != nil {
			t.Fatalf("%s: re-bake: %v", info.Name, err)
		}
		if len(baked.CULayout) != len(res.Optimized.CULayout) {
			t.Fatalf("%s: CU counts differ", info.Name)
		}
		for i := range res.Optimized.CULayout {
			if baked.CULayout[i].Signature() != res.Optimized.CULayout[i].Signature() {
				t.Fatalf("%s: CU layout differs at %d", info.Name, i)
			}
		}
		for i := range res.Optimized.ObjLayout {
			if baked.ObjLayout[i].Offset != res.Optimized.ObjLayout[i].Offset {
				t.Fatalf("%s: object layout differs at %d", info.Name, i)
			}
		}
	}
}

func TestRecipeUnknownStrategyRejected(t *testing.T) {
	p := buildApp(t)
	r := Recipe{
		Program: p, Kind: KindOptimized, Compiler: graal.DefaultConfig(),
		HeapStrategyName: "nope", HeapProfile: []uint64{1},
	}
	if _, err := r.Bake(); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestReadRecipeRejectsGarbage(t *testing.T) {
	if _, err := ReadRecipe(bytes.NewReader([]byte("XXXXgarbage"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadRecipe(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated after the header fields.
	p := buildApp(t)
	img, err := Build(p, regularOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRecipe(&buf, RecipeOf(img)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecipe(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Error("truncated recipe accepted")
	}
}
