package image

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"nimage/internal/graal"
	"nimage/internal/ir"
	"nimage/internal/profiler"
)

// Recipe is the portable form of a build: the program plus everything
// needed to rebuild the image bit-identically — build kind, seed, compiler
// configuration, and (for optimized builds) the ordering profiles and the
// identity-strategy name. Because builds are deterministic functions of
// the recipe, serializing the recipe *is* serializing the image; Bake
// reconstructs it.
type Recipe struct {
	Program *ir.Program
	// Kind, Instr, Mode, BuildSeed, MaxPaths as in Options.
	Kind      BuildKind
	Instr     graal.Instrumentation
	Mode      profiler.DumpMode
	BuildSeed uint64
	MaxPaths  uint64
	Compiler  graal.Config
	// CodeProfile / HeapProfile / HeapStrategyName configure optimized
	// builds.
	CodeProfile      []string
	HeapProfile      []uint64
	HeapStrategyName string
}

// RecipeOf captures the recipe of a built image.
func RecipeOf(img *Image) Recipe {
	r := Recipe{
		Program:     img.Program,
		Kind:        img.Opts.Kind,
		Instr:       img.Opts.Instr,
		Mode:        img.Opts.Mode,
		BuildSeed:   img.Opts.BuildSeed,
		MaxPaths:    img.Opts.MaxPaths,
		Compiler:    img.Opts.Compiler,
		CodeProfile: img.Opts.CodeProfile,
		HeapProfile: img.Opts.HeapProfile,
	}
	if img.Opts.HeapStrategy != nil {
		r.HeapStrategyName = img.Opts.HeapStrategy.Name()
	}
	return r
}

// Bake rebuilds the image described by the recipe.
func (r Recipe) Bake() (*Image, error) {
	opts := Options{
		Kind:        r.Kind,
		Instr:       r.Instr,
		Mode:        r.Mode,
		BuildSeed:   r.BuildSeed,
		MaxPaths:    r.MaxPaths,
		Compiler:    r.Compiler,
		CodeProfile: r.CodeProfile,
		HeapProfile: r.HeapProfile,
	}
	if r.HeapStrategyName != "" {
		opts.HeapStrategy = heapStrategyByName(r.HeapStrategyName)
		if opts.HeapStrategy == nil {
			return nil, fmt.Errorf("image: recipe names unknown heap strategy %q", r.HeapStrategyName)
		}
	}
	return Build(r.Program, opts)
}

const (
	recipeMagic   = "NIMG"
	recipeVersion = 1
)

// WriteRecipe serializes the recipe to w (the .nimg container format).
func WriteRecipe(w io.Writer, r Recipe) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(recipeMagic); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	u := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	s := func(v string) error {
		if err := u(uint64(len(v))); err != nil {
			return err
		}
		_, err := bw.WriteString(v)
		return err
	}
	cfg := r.Compiler
	for _, v := range []uint64{
		recipeVersion, uint64(r.Kind), uint64(r.Instr), uint64(r.Mode),
		r.BuildSeed, r.MaxPaths,
		uint64(cfg.InlineSmallSize), uint64(cfg.CUBudget), uint64(cfg.MaxInlineDepth),
		uint64(cfg.SaturationThreshold), uint64(cfg.PGOBonus),
		uint64(cfg.ProbeCUEntry), uint64(cfg.ProbeMethodEntry),
		uint64(cfg.ProbePerBlock), uint64(cfg.ProbePerAccess), uint64(cfg.FoldPercent),
	} {
		if err := u(v); err != nil {
			return err
		}
	}
	if err := s(r.HeapStrategyName); err != nil {
		return err
	}
	if err := u(uint64(len(r.CodeProfile))); err != nil {
		return err
	}
	for _, sig := range r.CodeProfile {
		if err := s(sig); err != nil {
			return err
		}
	}
	if err := u(uint64(len(r.HeapProfile))); err != nil {
		return err
	}
	for _, id := range r.HeapProfile {
		if err := u(id); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return ir.EncodeProgram(w, r.Program)
}

// ReadRecipe deserializes a recipe from r.
func ReadRecipe(rd io.Reader) (Recipe, error) {
	br := bufio.NewReader(rd)
	var out Recipe
	head := make([]byte, len(recipeMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return out, fmt.Errorf("image: reading recipe header: %w", err)
	}
	if string(head) != recipeMagic {
		return out, fmt.Errorf("image: bad recipe magic %q", head)
	}
	u := func() (uint64, error) { return binary.ReadUvarint(br) }
	s := func() (string, error) {
		n, err := u()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("image: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	ver, err := u()
	if err != nil {
		return out, err
	}
	if ver != recipeVersion {
		return out, fmt.Errorf("image: unsupported recipe version %d", ver)
	}
	var fields [15]uint64
	for i := range fields {
		if fields[i], err = u(); err != nil {
			return out, err
		}
	}
	if fields[0] > uint64(KindOptimized) {
		return out, fmt.Errorf("image: recipe build kind %d out of range", fields[0])
	}
	if fields[1] > uint64(graal.InstrHeap) {
		return out, fmt.Errorf("image: recipe instrumentation %d out of range", fields[1])
	}
	if fields[2] > uint64(profiler.MemoryMapped) {
		return out, fmt.Errorf("image: recipe dump mode %d out of range", fields[2])
	}
	out.Kind = BuildKind(fields[0])
	out.Instr = graal.Instrumentation(fields[1])
	out.Mode = profiler.DumpMode(fields[2])
	out.BuildSeed = fields[3]
	out.MaxPaths = fields[4]
	out.Compiler = graal.Config{
		InlineSmallSize:     int(fields[5]),
		CUBudget:            int(fields[6]),
		MaxInlineDepth:      int(fields[7]),
		SaturationThreshold: int(fields[8]),
		PGOBonus:            int(fields[9]),
		ProbeCUEntry:        int(fields[10]),
		ProbeMethodEntry:    int(fields[11]),
		ProbePerBlock:       int(fields[12]),
		ProbePerAccess:      int(fields[13]),
		FoldPercent:         int(fields[14]),
	}
	if out.HeapStrategyName, err = s(); err != nil {
		return out, err
	}
	ncode, err := u()
	if err != nil {
		return out, err
	}
	if ncode > 1<<22 {
		return out, fmt.Errorf("image: implausible code-profile size %d", ncode)
	}
	for i := uint64(0); i < ncode; i++ {
		sig, err := s()
		if err != nil {
			return out, err
		}
		out.CodeProfile = append(out.CodeProfile, sig)
	}
	nheap, err := u()
	if err != nil {
		return out, err
	}
	if nheap > 1<<22 {
		return out, fmt.Errorf("image: implausible heap-profile size %d", nheap)
	}
	for i := uint64(0); i < nheap; i++ {
		id, err := u()
		if err != nil {
			return out, err
		}
		out.HeapProfile = append(out.HeapProfile, id)
	}
	// The program follows; its codec needs the remaining bytes, including
	// any the bufio reader already buffered.
	out.Program, err = ir.DecodeProgram(io.MultiReader(bytesLeft(br), rd))
	if err != nil {
		return out, err
	}
	return out, nil
}

// bytesLeft drains a bufio.Reader's buffered bytes as a reader.
func bytesLeft(br *bufio.Reader) io.Reader {
	buf := make([]byte, br.Buffered())
	io.ReadFull(br, buf) //nolint:errcheck // buffered bytes cannot fail
	return bytes.NewReader(buf)
}
