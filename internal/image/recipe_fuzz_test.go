package image

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"nimage/internal/core"
	"nimage/internal/graal"
)

// recipeUvarints renders a byte sequence from varints (fuzz-input builder,
// mirrors the ir codec's test helper).
func recipeUvarints(prefix []byte, vs ...uint64) []byte {
	out := append([]byte{}, prefix...)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vs {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	return out
}

// validRecipeBytes serializes the recipe of a freshly built image.
func validRecipeBytes(t testing.TB, optimized bool) []byte {
	p := buildApp(t)
	var img *Image
	if optimized {
		res, err := BuildOptimized(p, PipelineOptions{
			Compiler:         graal.DefaultConfig(),
			Strategy:         core.StrategyCombined,
			InstrumentedSeed: 7,
			OptimizedSeed:    9,
		})
		if err != nil {
			t.Fatal(err)
		}
		img = res.Optimized
	} else {
		var err error
		img, err = Build(p, regularOpts())
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteRecipe(&buf, RecipeOf(img)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadRecipeRejectsHostileInput covers the decoder's validation
// paths: corrupted headers, out-of-range enum fields, and alloc-bomb
// counts declared far beyond the bytes present.
func TestReadRecipeRejectsHostileInput(t *testing.T) {
	head := []byte(recipeMagic)
	cases := map[string]struct {
		data    []byte
		wantErr string
	}{
		"empty":       {nil, "reading recipe header"},
		"bad-magic":   {[]byte("XIMGgarbage"), "bad recipe magic"},
		"bad-version": {recipeUvarints(head, 99), "unsupported recipe version"},
		"kind-out-of-range": {recipeUvarints(head,
			recipeVersion, 7, 0, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0), "build kind 7 out of range"},
		"instr-out-of-range": {recipeUvarints(head,
			recipeVersion, 0, 200, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0), "instrumentation 200 out of range"},
		"mode-out-of-range": {recipeUvarints(head,
			recipeVersion, 0, 0, 9, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0), "dump mode 9 out of range"},
		// 15 header fields, then the heap-strategy string declares a
		// gigabyte: must fail on the bound, not allocate.
		"huge-strategy-string": {recipeUvarints(head,
			recipeVersion, 0, 0, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
			1<<30), "implausible string length"},
		"huge-code-profile": {recipeUvarints(head,
			recipeVersion, 0, 0, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
			0,     // empty strategy name
			1<<40, // code-profile count
		), "implausible code-profile size"},
		"huge-heap-profile": {recipeUvarints(head,
			recipeVersion, 0, 0, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
			0,     // empty strategy name
			0,     // no code profile
			1<<40, // heap-profile count
		), "implausible heap-profile size"},
		"truncated-fields": {recipeUvarints(head, recipeVersion, 0, 0), "EOF"},
	}
	for name, tc := range cases {
		_, err := ReadRecipe(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: hostile input accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

// FuzzRecipe asserts the .nimg container decoder never panics, and that
// any recipe it accepts re-encodes canonically: encode(decode(data)) must
// be a fixed point of a further decode/encode round trip.
func FuzzRecipe(f *testing.F) {
	valid := validRecipeBytes(f, false)
	f.Add(valid)
	f.Add(validRecipeBytes(f, true))
	f.Add(valid[:16])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(recipeMagic))
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadRecipe(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := WriteRecipe(&b1, r); err != nil {
			t.Fatalf("re-encoding accepted recipe: %v", err)
		}
		r2, err := ReadRecipe(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		var b2 bytes.Buffer
		if err := WriteRecipe(&b2, r2); err != nil {
			t.Fatalf("re-encoding round-tripped recipe: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("recipe encoding is not canonical under round trip")
		}
	})
}
