package image

import (
	"fmt"
	"time"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/ir"
	"nimage/internal/obs"
	"nimage/internal/obs/affinity"
	"nimage/internal/osim"
	"nimage/internal/postproc"
	"nimage/internal/profiler"
	"nimage/internal/vm"
)

// vmHooks/vmCompose keep the hook plumbing readable.
type vmHooks = vm.Hooks

var vmCompose = vm.ComposeHooks

// PipelineOptions configures the full profile-guided methodology of Fig. 1:
// instrumented build → profiling run → post-processing → optimized build.
type PipelineOptions struct {
	Compiler graal.Config
	// Strategy is one of the registered core.Strategy* names (see
	// core.Registry), e.g. "cu", "heap path", "cu+heap path", "c3".
	Strategy string
	// InstrumentedSeed / OptimizedSeed are the build seeds of the two
	// builds; they differ in practice, which is exactly what makes object
	// matching hard (Sec. 5).
	InstrumentedSeed uint64
	OptimizedSeed    uint64
	// Mode selects the trace-buffer dump mode of the profiling run.
	Mode profiler.DumpMode
	// Args are the program arguments of the profiling run.
	Args []int64
	// Service marks microservice workloads: the profiling run stops at the
	// first response and is then killed with SIGKILL (Sec. 7.1), so
	// DumpOnFull buffers are lost.
	Service bool
	// MaxPaths bounds per-method path counts.
	MaxPaths uint64
	// Obs, when non-nil, is threaded into both builds, the tracer, and the
	// profiling run, and additionally receives per-phase pipeline spans
	// ("pipeline.<strategy>.profiling_run" / ".postprocess") and trace-size
	// gauges.
	Obs *obs.Registry
	// AffinityGraph is the recorded co-access graph consumed by the graph
	// strategies ("c3", "ext-tsp"). When nil, the pipeline records one
	// itself: a regular build at InstrumentedSeed executed with affinity
	// tracking — an uninstrumented profiling run, so graph strategies pay
	// no probe inflation. Callers with a serve-phase recording (the eval
	// harness) pass it here so the layout optimizes burst residency
	// rather than startup.
	AffinityGraph *affinity.Graph
	// CodeOrder, when non-nil, overrides the "slo-search" strategy's text
	// ordering with a caller-resolved winner (the eval harness injects the
	// measured layout-search result here). Other strategies ignore it;
	// slo-search without it runs the standalone graph-scored search.
	CodeOrder []string
}

// ProfilingRun reports the instrumented execution (for the overhead
// evaluation of Sec. 7.4).
type ProfilingRun struct {
	Instr graal.Instrumentation
	Mode  profiler.DumpMode
	// Time is the simulated end-to-end (or to-first-response) time of the
	// instrumented run, including profiling overhead.
	Time time.Duration
	// CPUTime is the compute share of Time (the overhead table compares
	// compute times, Sec. 7.4).
	CPUTime time.Duration
	// TraceWords counts the 64-bit words that reached the trace files.
	TraceWords int
}

// PipelineResult is the outcome of BuildOptimized.
type PipelineResult struct {
	// Optimized is the profile-guided image.
	Optimized *Image
	// Runs lists the profiling executions performed (one, or two for the
	// combined strategy).
	Runs []ProfilingRun
	// CodeProfile / HeapProfile are the ordering profiles fed to the
	// optimized build.
	CodeProfile []string
	HeapProfile []uint64
}

// InstrumentationFor maps a strategy name to the instrumentation its
// profiling build needs (the mapping the pipeline applies internally);
// the verifier uses it to rebuild the pipeline's instrumented image.
// Strategies without exactly one probe kind — the combined strategy (two
// kinds) and the graph strategies (none) — are an error; enumerate their
// kinds via core.StrategyByName instead.
func InstrumentationFor(strategy string) (graal.Instrumentation, error) {
	return strategyInstr(strategy)
}

// strategyInstr maps a strategy name to the instrumentation it needs,
// resolved through the strategy registry.
func strategyInstr(strategy string) (graal.Instrumentation, error) {
	info, ok := core.StrategyByName(strategy)
	if !ok {
		return 0, fmt.Errorf("image: unknown strategy %q", strategy)
	}
	if len(info.Instr) != 1 {
		return 0, fmt.Errorf("image: strategy %q has no single probe kind", strategy)
	}
	return info.Instr[0], nil
}

// composePH merges the PH call-graph collector into the tracer hooks.
func composePH(h vmHooks, g *core.CallGraph) vmHooks {
	return vmCompose(h, g.Collector())
}

// heapStrategyByName returns the identity strategy with the given name.
func heapStrategyByName(name string) core.HeapStrategy {
	for _, s := range core.HeapStrategies() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// BuildOptimized runs the full pipeline for one strategy and returns the
// optimized image. The combined "cu+heap path" strategy performs two
// profiling runs — one CU-instrumented, one heap-instrumented — and feeds
// both profiles to the optimizing build (Sec. 7.1).
func BuildOptimized(p *ir.Program, opts PipelineOptions) (*PipelineResult, error) {
	res := &PipelineResult{}
	collect := func(strategy string) error {
		instr, err := strategyInstr(strategy)
		if err != nil {
			return err
		}
		run, code, heapProf, err := profileOnce(p, opts, instr, strategy)
		if err != nil {
			return err
		}
		res.Runs = append(res.Runs, run)
		if code != nil {
			res.CodeProfile = code
		}
		if heapProf != nil {
			res.HeapProfile = heapProf
		}
		return nil
	}

	optOpts := Options{
		Kind:      KindOptimized,
		Compiler:  opts.Compiler,
		BuildSeed: opts.OptimizedSeed,
		MaxPaths:  opts.MaxPaths,
		Obs:       opts.Obs,
	}
	switch {
	case opts.Strategy == core.StrategyCombined:
		if err := collect(core.StrategyCU); err != nil {
			return nil, err
		}
		if err := collect(core.StrategyHeapPath); err != nil {
			return nil, err
		}
		optOpts.HeapStrategy = heapStrategyByName(core.StrategyHeapPath)
	case core.IsGraphStrategy(opts.Strategy):
		run, code, err := profileGraph(p, opts)
		if err != nil {
			return nil, err
		}
		if run != nil {
			res.Runs = append(res.Runs, *run)
		}
		res.CodeProfile = code
	default:
		if err := collect(opts.Strategy); err != nil {
			return nil, err
		}
		optOpts.HeapStrategy = heapStrategyByName(opts.Strategy)
	}
	optOpts.CodeProfile = res.CodeProfile
	optOpts.HeapProfile = res.HeapProfile

	opt, err := Build(p, optOpts)
	if err != nil {
		return nil, err
	}
	res.Optimized = opt
	return res, nil
}

// profileGraph resolves a graph strategy's code profile: order the
// affinity graph's text symbols with the strategy's chain-merging
// algorithm. With no caller-provided graph it records one first — a
// *regular* build at InstrumentedSeed run to completion (or first
// response) with affinity tracking, the graph analogue of profileOnce
// but without probe inflation — so graph strategies bake standalone,
// exactly like the trace strategies. The resulting profile is plain CU
// signatures, so the optimized build and the .nimg recipe treat graph
// strategies identically to "cu".
func profileGraph(p *ir.Program, opts PipelineOptions) (*ProfilingRun, []string, error) {
	g := opts.AffinityGraph
	var run *ProfilingRun
	if g == nil {
		img, err := Build(p, Options{
			Kind:      KindRegular,
			Compiler:  opts.Compiler,
			BuildSeed: opts.InstrumentedSeed,
			MaxPaths:  opts.MaxPaths,
			Obs:       opts.Obs,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("image: recording build: %w", err)
		}
		sp := opts.Obs.StartSpan("pipeline." + opts.Strategy + ".profiling_run")
		scratch := osim.NewOS(osim.SSD())
		scratch.TrackAffinity = true
		proc, err := img.NewProcess(scratch, vmHooks{})
		if err != nil {
			return nil, nil, err
		}
		defer proc.Close()
		proc.Machine.StopOnRespond = opts.Service
		if err := proc.Run(opts.Args...); err != nil {
			return nil, nil, fmt.Errorf("image: recording run: %w", err)
		}
		st := proc.Stats()
		run = &ProfilingRun{Instr: graal.InstrNone, Mode: opts.Mode}
		if opts.Service && st.TimeToResponse > 0 {
			run.Time = st.TimeToResponse
		} else {
			run.Time = st.Total
		}
		if opts.Service {
			run.CPUTime = time.Duration(proc.Machine.RespondTimeNanos())
		} else {
			run.CPUTime = st.CPUTime
		}
		g = proc.AffinityGraph()
		sp.End()
		if g == nil {
			return nil, nil, fmt.Errorf("image: %s: recording run produced no affinity graph", opts.Strategy)
		}
	}
	sp := opts.Obs.StartSpan("pipeline." + opts.Strategy + ".postprocess")
	defer sp.End()
	var profile []string
	switch opts.Strategy {
	case core.StrategyC3:
		profile = core.C3Order(g)
	case core.StrategyExtTSP:
		profile = core.ExtTSPOrder(g)
	case core.StrategySLOSearch:
		if opts.CodeOrder != nil {
			profile = append([]string(nil), opts.CodeOrder...)
		} else {
			profile = core.SLOSearchOrder(g)
		}
	default:
		return nil, nil, fmt.Errorf("image: unknown graph strategy %q", opts.Strategy)
	}
	if r := opts.Obs; r.Enabled() {
		r.Gauge("pipeline." + opts.Strategy + ".profile_symbols").Set(float64(len(profile)))
	}
	return run, profile, nil
}

// profileOnce builds one instrumented image, executes it, and
// post-processes the traces into profiles. It returns the code profile
// (for InstrCU/InstrMethod) or the heap profile (for InstrHeap, translated
// by the named strategy).
func profileOnce(p *ir.Program, opts PipelineOptions, instr graal.Instrumentation, strategy string) (ProfilingRun, []string, []uint64, error) {
	run := ProfilingRun{Instr: instr, Mode: opts.Mode}
	img, err := Build(p, Options{
		Kind:      KindInstrumented,
		Compiler:  opts.Compiler,
		Instr:     instr,
		Mode:      opts.Mode,
		BuildSeed: opts.InstrumentedSeed,
		MaxPaths:  opts.MaxPaths,
		Obs:       opts.Obs,
	})
	if err != nil {
		return run, nil, nil, fmt.Errorf("image: instrumented build: %w", err)
	}

	tr := profiler.NewTracer(instr, opts.Mode)
	tr.MethodIdx = img.Table.Index
	tr.Numberings = img.Numberings
	tr.ObjectHandle = img.ObjectHandle
	tr.Obs = opts.Obs

	// The Pettis–Hansen baseline needs edge frequencies rather than a
	// first-execution trace, so it attaches its own call-graph collector.
	var callGraph *core.CallGraph
	hooks := tr.Hooks()
	if strategy == core.StrategyPettisHansen {
		callGraph = core.NewCallGraph()
		hooks = composePH(hooks, callGraph)
	}

	// The profiling run executes on a scratch OS; its page faults are
	// irrelevant, but its simulated time (with profiling overhead) is the
	// overhead measurement of Sec. 7.4.
	sp := opts.Obs.StartSpan("pipeline." + strategy + ".profiling_run")
	scratch := osim.NewOS(osim.SSD())
	proc, err := img.NewProcess(scratch, hooks)
	if err != nil {
		return run, nil, nil, err
	}
	defer proc.Close()
	tr.AddCycles = func(c int64) { proc.Machine.Cycles += c }
	proc.Machine.StopOnRespond = opts.Service
	if err := proc.Run(opts.Args...); err != nil {
		return run, nil, nil, fmt.Errorf("image: profiling run: %w", err)
	}
	st := proc.Stats()
	if opts.Service && st.TimeToResponse > 0 {
		run.Time = st.TimeToResponse
	} else {
		run.Time = st.Total
	}
	if opts.Service {
		run.CPUTime = time.Duration(proc.Machine.RespondTimeNanos())
	} else {
		run.CPUTime = st.CPUTime
	}

	traces := tr.Finish(opts.Service)
	for _, tt := range traces {
		run.TraceWords += len(tt.Words)
	}
	sp.End()
	if r := opts.Obs; r.Enabled() {
		r.Gauge("pipeline." + strategy + ".trace_words").Set(float64(run.TraceWords))
		r.Gauge("pipeline." + strategy + ".profiling_cpu_nanos").Set(float64(run.CPUTime.Nanoseconds()))
	}
	sp = opts.Obs.StartSpan("pipeline." + strategy + ".postprocess")
	defer sp.End()

	if callGraph != nil {
		order := core.PettisHansenOrder(img.Comp.CUs, callGraph)
		profile := make([]string, 0, len(order))
		for _, cu := range order {
			profile = append(profile, cu.Signature())
		}
		return run, profile, nil, nil
	}

	switch instr {
	case graal.InstrCU:
		a := postproc.NewCUOrderAnalysis()
		if err := postproc.Dispatch(traces, img.Table, img.Numberings, a); err != nil {
			return run, nil, nil, err
		}
		return run, a.Profile(), nil, nil
	case graal.InstrMethod:
		a := postproc.NewMethodOrderAnalysis()
		if err := postproc.Dispatch(traces, img.Table, img.Numberings, a); err != nil {
			return run, nil, nil, err
		}
		return run, a.Profile(), nil, nil
	default:
		a := postproc.NewHeapOrderAnalysis()
		if err := postproc.Dispatch(traces, img.Table, img.Numberings, a); err != nil {
			return run, nil, nil, err
		}
		prof := a.Profile(func(h uint64) (uint64, bool) {
			return img.StrategyIDOfHandle(strategy, h)
		})
		return run, nil, prof, nil
	}
}
