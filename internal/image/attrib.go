package image

import (
	"fmt"

	"nimage/internal/heap"
	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
)

// Attribution symbol names for the image regions that aren't CUs or
// snapshot objects.
const (
	SymbolHeader = "<header>"
	SymbolNative = "<native>"
)

// AttributionIndex returns (building and caching on first use) the
// page-fault attribution index of the image: one symbol per byte range a
// fault can be blamed on — the header page, every compiled CU, the native
// code tail, and every snapshot object.
//
// Symbol names are chosen to be stable across builds and layouts so that
// attribution tables from different images of the same program diff by
// name: CUs use their root method's signature, class metadata objects use
// "hub:Class" / "meta:Class", and every other object uses a per-type
// ordinal ("Type#3") counted in snapshot encounter order — the order the
// build's heap traversal discovered the objects, which the localized
// build-seed perturbation keeps mostly stable (Sec. 7.2).
func (img *Image) AttributionIndex() *attrib.Index {
	if img.attrIndex != nil {
		return img.attrIndex
	}
	syms := make([]attrib.Symbol, 0, len(img.CULayout)+len(img.ObjLayout)+2)
	syms = append(syms, attrib.Symbol{
		Name: SymbolHeader, Kind: attrib.KindHeader, Off: 0, Len: osim.PageSize,
	})
	for _, cu := range img.CULayout {
		syms = append(syms, attrib.Symbol{
			Name:    cu.Root.Signature(),
			Type:    cu.Root.Class.Name,
			Kind:    attrib.KindCU,
			Section: SectionText,
			Off:     img.CUOffset[cu],
			Len:     int64(cu.Size),
		})
	}
	if img.NativeLen > 0 {
		syms = append(syms, attrib.Symbol{
			Name: SymbolNative, Kind: attrib.KindNative, Section: SectionText,
			Off: img.NativeOff, Len: img.NativeLen,
		})
	}
	names := img.objectNames()
	for _, o := range img.ObjLayout {
		syms = append(syms, attrib.Symbol{
			Name:    names[o],
			Type:    o.TypeName(),
			Kind:    attrib.KindObject,
			Section: SectionHeap,
			Off:     img.HeapSection.Off + o.Offset,
			Len:     o.Size,
		})
	}
	img.attrIndex = attrib.NewIndex(img.FileSize,
		[]osim.Section{img.TextSection, img.HeapSection}, syms)
	return img.attrIndex
}

// ObjectNames returns the build-stable attribution name of every snapshot
// object ("hub:Class", "meta:Class", "Type#k"); the equivalence verifier
// names diverging objects with them.
func (img *Image) ObjectNames() map[*heap.Object]string { return img.objectNames() }

// objectNames assigns every snapshot object its build-stable attribution
// name. Ordinals are counted over img.Snapshot.Objects (encounter order),
// not the layout order, so reordering the section does not rename objects.
func (img *Image) objectNames() map[*heap.Object]string {
	names := make(map[*heap.Object]string, len(img.Snapshot.Objects))
	for c, hub := range img.Hubs {
		names[hub] = "hub:" + c.Name
	}
	for c, meta := range img.MetaBlobs {
		names[meta] = "meta:" + c.Name
	}
	ordinals := make(map[string]int)
	for _, o := range img.Snapshot.Objects {
		if _, ok := names[o]; ok {
			continue
		}
		tn := o.TypeName()
		names[o] = fmt.Sprintf("%s#%d", tn, ordinals[tn])
		ordinals[tn]++
	}
	return names
}

// AttributionTable returns the per-symbol fault attribution of the
// process's run, with fault-around waste folded in from the mapping's
// final page states. Nil when the process was started without attribution
// (no obs registry and OS.AttributeFaults unset).
func (p *Process) AttributionTable() *attrib.Table {
	if p.Attrib == nil {
		return nil
	}
	p.Attrib.Finish(p.Mapping.PageClasses())
	t := p.Attrib.Table()
	t.Workload = p.Img.Program.Name
	return t
}

// AffinityGraph returns the temporal co-access affinity graph of the
// process's run. Nil when the process was started without affinity
// tracking (no obs registry and OS.TrackAffinity unset). The caller
// fills Layout (the image does not know its strategy's name).
func (p *Process) AffinityGraph() *affinity.Graph {
	if p.Affinity == nil {
		return nil
	}
	g := p.Affinity.Graph()
	g.Workload = p.Img.Program.Name
	return g
}
