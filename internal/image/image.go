// Package image implements the simulated Native-Image builder: it compiles
// a program, executes the class initializers of reachable classes at build
// time, snapshots the resulting heap, and lays out the binary's .text and
// .svm_heap sections — by default alphabetically/in encounter order, or
// reordered by the profile-guided strategies of internal/core (Fig. 1).
//
// Three build kinds mirror the paper's pipeline: the regular build, the
// instrumented (profiling) build — whose probes both inflate code size
// (perturbing inlining) and attach 64-bit identities to every snapshot
// object — and the optimized build, which consumes ordering profiles.
package image

import (
	"fmt"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/murmur"
	"nimage/internal/obs"
	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
	"nimage/internal/profiler"
	"nimage/internal/vm"
)

// BuildKind discriminates the three builds of the methodology (Fig. 1).
type BuildKind uint8

const (
	// KindRegular is an unmodified Native-Image build.
	KindRegular BuildKind = iota
	// KindInstrumented is the profiling build: probes plus object IDs.
	KindInstrumented
	// KindOptimized is the profile-guided build consuming ordering
	// profiles (and PGO-boosted inlining).
	KindOptimized
)

func (k BuildKind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindInstrumented:
		return "instrumented"
	case KindOptimized:
		return "optimized"
	default:
		return "kind(?)"
	}
}

// Section names of the binary.
const (
	SectionText = ".text"
	SectionHeap = ".svm_heap"
)

// Options configures one image build.
type Options struct {
	Kind     BuildKind
	Compiler graal.Config
	// Instr selects the probes of an instrumented build.
	Instr graal.Instrumentation
	// Mode is the trace-buffer dump mode of an instrumented build.
	Mode profiler.DumpMode
	// BuildSeed drives build non-determinism: the pseudo-parallel class-
	// initializer execution order and the build-salt intrinsic (Sec. 2).
	BuildSeed uint64
	// CodeProfile is the CU ordering profile of an optimized build
	// (deduplicated method signatures in first-execution order).
	CodeProfile []string
	// HeapProfile is the object ordering profile of an optimized build
	// (deduplicated 64-bit IDs in first-access order).
	HeapProfile []uint64
	// HeapStrategy is the identity strategy that produced HeapProfile.
	HeapStrategy core.HeapStrategy
	// MaxPaths bounds per-method path counts (path cutting).
	MaxPaths uint64
	// Obs, when non-nil, receives per-stage build spans (reachability,
	// inlining, clinit, layout, snapshot, serialization), output-size
	// gauges, and profile match statistics, all prefixed
	// "image.<kind>.". Nil disables instrumentation entirely.
	Obs *obs.Registry
}

// Image is a built binary plus the metadata needed to run and reorder it.
type Image struct {
	Program *ir.Program
	Opts    Options
	Comp    *graal.Compilation
	Table   *profiler.MethodTable
	// Numberings is the path numbering of every compiled method
	// (instrumented heap builds).
	Numberings map[*ir.Method]*profiler.Numbering

	// Build-time heap state shared with runtime processes.
	Statics  *heap.Statics
	Interns  *heap.Interns
	Snapshot *heap.Snapshot

	// CULayout is the final .text layout; CUOffset the absolute file
	// offset of each CU.
	CULayout []*graal.CompilationUnit
	CUOffset map[*graal.CompilationUnit]int64
	cuByRoot map[*ir.Method]*graal.CompilationUnit

	// ObjLayout is the final .svm_heap layout; object Offsets are relative
	// to the section start.
	ObjLayout []*heap.Object

	// Hubs maps each reachable class to its metadata object in the heap.
	Hubs map[*ir.Class]*heap.Object

	// MetaBlobs maps each reachable class to its method-metadata blob —
	// kept so fault attribution can name these objects stably across
	// builds ("meta:Class") instead of by layout position.
	MetaBlobs map[*ir.Class]*heap.Object

	// StrategyIDs records, for instrumented builds, each identity
	// strategy's ID of every snapshot object, indexed by SeqID.
	StrategyIDs map[string][]uint64

	// CodeOrderStats / HeapMatchStats report profile-application quality
	// in optimized builds.
	CodeOrderStats core.CodeOrderResult
	HeapMatchStats core.MatchResult

	// NativeOff/NativeLen delimit the trailing region of .text holding the
	// natively compiled (statically linked) library code. Its methods are
	// not compiled by the simulated Graal, so the strategies neither
	// profile nor reorder them (the paper leaves them at the end of .text
	// too — see the Fig. 6 discussion); startup executes parts of this
	// region, faulting the same pages under every layout.
	NativeOff int64
	NativeLen int64

	TextSection osim.Section
	HeapSection osim.Section
	FileSize    int64

	files     map[*osim.OS]*osim.File
	attrIndex *attrib.Index
}

// Build constructs an image of the program.
func Build(p *ir.Program, opts Options) (*Image, error) {
	if !p.Resolved() {
		return nil, fmt.Errorf("image: program %s not resolved", p.Name)
	}
	if p.Entry() == nil {
		return nil, fmt.Errorf("image: program %s has no entry point", p.Name)
	}
	instr := graal.InstrNone
	if opts.Kind == KindInstrumented {
		instr = opts.Instr
	}
	r := opts.Obs
	prefix := ""
	if r.Enabled() {
		prefix = "image." + opts.Kind.String() + "."
	}

	sp := r.StartSpan(prefix + "reachability")
	reach := graal.Analyze(p, opts.Compiler)
	sp.End()
	sp = r.StartSpan(prefix + "inlining")
	img := &Image{
		Program: p,
		Opts:    opts,
		Comp:    graal.Assemble(p, opts.Compiler, instr, opts.Kind == KindOptimized, reach),
		files:   make(map[*osim.OS]*osim.File),
	}
	img.Table = profiler.NewMethodTable(img.Comp.Reach.CompiledMethods())
	if opts.Kind == KindInstrumented && opts.Instr == graal.InstrHeap {
		img.Numberings = img.Table.Numberings(opts.MaxPaths)
	}
	img.cuByRoot = make(map[*ir.Method]*graal.CompilationUnit, len(img.Comp.CUs))
	for _, cu := range img.Comp.CUs {
		img.cuByRoot[cu.Root] = cu
	}
	sp.End()

	sp = r.StartSpan(prefix + "clinit")
	err := img.runClassInitializers()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("image: build-time initialization of %s: %w", p.Name, err)
	}
	sp = r.StartSpan(prefix + "layout_text")
	img.layoutText()
	sp.End()
	sp = r.StartSpan(prefix + "snapshot_heap")
	err = img.snapshotHeap()
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = r.StartSpan(prefix + "layout_heap")
	img.layoutHeap()
	sp.End()
	sp = r.StartSpan(prefix + "serialize")
	img.finalizeFile()
	if opts.Kind == KindInstrumented {
		img.assignStrategyIDs()
	}
	sp.End()
	if r.Enabled() {
		img.recordBuildObs(r, prefix)
	}
	return img, nil
}

// recordBuildObs publishes output sizes and profile match statistics of a
// completed build under the "image.<kind>." prefix.
func (img *Image) recordBuildObs(r *obs.Registry, prefix string) {
	r.Gauge(prefix + "text_bytes").Set(float64(img.TextSection.Len))
	r.Gauge(prefix + "heap_bytes").Set(float64(img.HeapSection.Len))
	r.Gauge(prefix + "file_bytes").Set(float64(img.FileSize))
	r.Gauge(prefix + "cus").Set(float64(len(img.CULayout)))
	r.Gauge(prefix + "objects").Set(float64(len(img.ObjLayout)))
	if img.Opts.Kind != KindOptimized {
		return
	}
	if len(img.Opts.CodeProfile) > 0 {
		r.Gauge(prefix + "code_matched_cus").Set(float64(img.CodeOrderStats.Matched))
		r.Gauge(prefix + "code_profile_len").Set(float64(img.CodeOrderStats.ProfileLen))
	}
	if img.Opts.HeapStrategy != nil && len(img.Opts.HeapProfile) > 0 {
		hm := img.HeapMatchStats
		r.Gauge(prefix + "heap_matched_objects").Set(float64(hm.MatchedObjects))
		r.Gauge(prefix + "heap_unmatched_objects").Set(float64(hm.UnmatchedObjects))
		r.Gauge(prefix + "heap_collision_groups").Set(float64(hm.CollisionGroups))
		r.Gauge(prefix + "heap_collision_objects").Set(float64(hm.CollisionObjects))
		r.Gauge(prefix + "heap_match_rate").Set(hm.MatchRate())
	}
}

// buildMachine creates the build-time execution machine sharing the image
// heap state.
func (img *Image) buildMachine() *vm.Machine {
	m := vm.New(img.Program)
	m.BuildSalt = img.Opts.BuildSeed
	img.Statics = m.Statics
	img.Interns = m.Interns
	return m
}

// runClassInitializers executes the clinits of reachable classes at build
// time. Class initializers may run in parallel in Native Image (Sec. 2);
// the simulator models the resulting non-determinism as a build-seeded
// shuffle of the execution order.
func (img *Image) runClassInitializers() error {
	m := img.buildMachine()
	m.AutoClinit = true
	classes := make([]*ir.Class, len(img.Comp.Reach.ClassOrder))
	copy(classes, img.Comp.Reach.ClassOrder)
	perturb(classes, img.Opts.BuildSeed)
	for _, c := range classes {
		if err := m.RunClassInit(c); err != nil {
			return fmt.Errorf("initializing %s: %w", c.Name, err)
		}
	}
	return nil
}

// perturb applies a *localized* deterministic permutation: each element
// may swap with a neighbour up to `window` positions away. This models the
// non-determinism of pseudo-parallel class initialization (Sec. 2): racing
// initializers finish in slightly different orders across builds, but the
// overall order stays roughly stable — which is why per-type incremental
// IDs still match many (but not all) objects across builds (Sec. 7.2).
func perturb[T any](s []T, seed uint64) {
	const window = 3
	var buf [8]byte
	for i := len(s) - 1; i > 0; i-- {
		buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		buf[4], buf[5], buf[6], buf[7] = byte(seed), byte(seed>>8), byte(seed>>16), byte(seed>>24)
		h := murmur.Sum64Seed(buf[:], seed)
		if h%3 != 0 {
			continue // most classes keep their relative position
		}
		w := i
		if w > window {
			w = window
		}
		j := i - int((h>>8)%uint64(w+1))
		s[i], s[j] = s[j], s[i]
	}
}

// layoutText orders the CUs — default alphabetical, or by the code profile
// in optimized builds — and assigns absolute file offsets. The .text
// section starts after one header page.
func (img *Image) layoutText() {
	if img.Opts.Kind == KindOptimized && len(img.Opts.CodeProfile) > 0 {
		img.CodeOrderStats = core.OrderCUs(img.Comp.CUs, img.Opts.CodeProfile)
		img.CULayout = img.CodeOrderStats.Order
	} else {
		img.CULayout = img.Comp.CUs
	}
	img.CUOffset = make(map[*graal.CompilationUnit]int64, len(img.CULayout))
	off := int64(osim.PageSize) // header page
	img.TextSection = osim.Section{Name: SectionText, Off: off}
	for _, cu := range img.CULayout {
		img.CUOffset[cu] = off
		off += (int64(cu.Size) + 15) / 16 * 16
	}
	// Statically linked native code follows the compiled CUs, page-aligned
	// as the linker would place a separate input section.
	off = pageAlign(off)
	img.NativeOff = off
	img.NativeLen = nativeCodeSize(len(img.Program.Classes))
	off += img.NativeLen
	img.TextSection.Len = off - img.TextSection.Off
}

// nativeCodeSize sizes the native-library region from the program's class
// count (statically linked libc/zlib/... scale roughly with the runtime on
// the classpath). The size is a build-invariant property of the program,
// so the native region is identical across regular, instrumented, and
// optimized builds.
func nativeCodeSize(classes int) int64 {
	n := int64(64*1024) + int64(classes)*1280
	return (n + osim.PageSize - 1) / osim.PageSize * osim.PageSize
}

// snapshotHeap collects the heap roots in a well-defined order and
// traverses the object graph (Sec. 2):
//
//  1. per reachable class, in the seeded class order: the class's hub
//     object and method-metadata blob (DataSection) followed by its static
//     fields — hubs and metadata interleave with class data exactly as the
//     encounter-order traversal of a real image produces, so the objects a
//     run accesses are scattered across the whole section (Sec. 7.2 notes
//     that metadata dominates the snapshot);
//  2. code constants, in alphabetical CU order (the analysis order, which
//     is the same for every build of the program), skipping constants
//     folded away by optimization;
//  3. strings interned during class initialization (InternedString);
//  4. embedded resources (Resource).
func (img *Image) snapshotHeap() error {
	var roots []heap.RootRef
	// 1. Per-class metadata and statics.
	classes := make([]*ir.Class, len(img.Comp.Reach.ClassOrder))
	copy(classes, img.Comp.Reach.ClassOrder)
	perturb(classes, img.Opts.BuildSeed+1)
	img.Hubs = make(map[*ir.Class]*heap.Object, len(classes))
	img.MetaBlobs = make(map[*ir.Class]*heap.Object, len(classes))
	for _, c := range classes {
		hub := heap.NewByteArray(64 + 16*len(c.AllFields) + 8*len(c.Methods))
		img.Hubs[c] = hub
		roots = append(roots, heap.RootRef{Obj: hub, Reason: heap.ReasonDataSection})
		meta := heap.NewByteArray(metaBlobSize(c))
		img.MetaBlobs[c] = meta
		roots = append(roots, heap.RootRef{Obj: meta, Reason: heap.ReasonDataSection})
		for _, f := range c.Statics {
			v := img.Statics.Get(f)
			if v.Kind == heap.VRef && v.Ref != nil {
				roots = append(roots, heap.RootRef{Obj: v.Ref, Reason: f.Signature()})
			}
		}
	}
	// 2. Code constants (alphabetical CU order, stable across builds).
	for _, cu := range img.Comp.CUs {
		for _, c := range cu.Constants {
			if c.Folded {
				continue
			}
			roots = append(roots, heap.RootRef{
				Obj:    img.Interns.Intern(c.Literal),
				Reason: c.Source.Signature(),
			})
		}
	}
	// 3. Interned strings created during initialization.
	for _, s := range img.Interns.All() {
		roots = append(roots, heap.RootRef{Obj: s, Reason: heap.ReasonInternedString})
	}
	// 4. Resources.
	for _, r := range img.Program.Resources {
		roots = append(roots, heap.RootRef{Obj: heap.NewByteArray(r.Size), Reason: heap.ReasonResource})
	}
	img.Snapshot = heap.BuildSnapshot(roots)
	return nil
}

// metaBlobSize sizes a class's method-metadata blob from its code size.
func metaBlobSize(c *ir.Class) int {
	s := 48
	for _, m := range c.Methods {
		s += 24 + m.CodeSize()/2
	}
	return s
}

// layoutHeap orders the snapshot objects — default encounter order, or by
// the heap profile in optimized builds — and assigns section-relative
// offsets.
func (img *Image) layoutHeap() {
	if img.Opts.Kind == KindOptimized && len(img.Opts.HeapProfile) > 0 && img.Opts.HeapStrategy != nil {
		ids := img.Opts.HeapStrategy.AssignIDs(img.Snapshot)
		img.HeapMatchStats = core.OrderObjects(img.Snapshot.Objects, ids, img.Opts.HeapProfile)
		img.ObjLayout = img.HeapMatchStats.Order
	} else {
		img.ObjLayout = img.Snapshot.Objects
	}
	heap.Layout(img.ObjLayout)
}

// finalizeFile computes the section table and total file size.
func (img *Image) finalizeFile() {
	heapOff := pageAlign(img.TextSection.Off + img.TextSection.Len)
	var heapLen int64
	for _, o := range img.ObjLayout {
		if end := o.Offset + o.Size; end > heapLen {
			heapLen = end
		}
	}
	img.HeapSection = osim.Section{Name: SectionHeap, Off: heapOff, Len: heapLen}
	img.FileSize = pageAlign(heapOff + heapLen)
	if img.FileSize == heapOff {
		img.FileSize += osim.PageSize
	}
}

// assignStrategyIDs computes, for every identity strategy, the ID of each
// snapshot object — the identifiers the instrumented binary stores so that
// the optimizing build can match trace entries against its own objects.
func (img *Image) assignStrategyIDs() {
	img.StrategyIDs = make(map[string][]uint64)
	for _, s := range core.HeapStrategies() {
		ids := s.AssignIDs(img.Snapshot)
		bySeq := make([]uint64, len(img.Snapshot.Objects))
		for _, o := range img.Snapshot.Objects {
			bySeq[o.SeqID] = ids[o]
		}
		img.StrategyIDs[s.Name()] = bySeq
	}
}

// ObjectHandle returns the per-build handle the instrumentation records for
// an object: SeqID+1 for snapshot objects, 0 otherwise.
func (img *Image) ObjectHandle(o *heap.Object) uint64 {
	if o == nil || !o.InSnapshot {
		return 0
	}
	return uint64(o.SeqID) + 1
}

// StrategyIDOfHandle translates a recorded handle to the given strategy's
// 64-bit object ID (postproc profile translation).
func (img *Image) StrategyIDOfHandle(strategy string, handle uint64) (uint64, bool) {
	ids := img.StrategyIDs[strategy]
	if handle == 0 || handle > uint64(len(ids)) {
		return 0, false
	}
	return ids[handle-1], true
}

// CUOf returns the compilation unit rooted at m, or nil.
func (img *Image) CUOf(m *ir.Method) *graal.CompilationUnit { return img.cuByRoot[m] }

// TextSize returns the .text payload size in bytes.
func (img *Image) TextSize() int64 { return img.TextSection.Len }

// HeapSize returns the .svm_heap payload size in bytes.
func (img *Image) HeapSize() int64 { return img.HeapSection.Len }

func pageAlign(v int64) int64 {
	return (v + osim.PageSize - 1) / osim.PageSize * osim.PageSize
}
