package profiler

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nimage/internal/graal"
)

// Trace-file container format: magic, version, kind, mode, then one block
// per thread (tid, word count, varint-encoded words). The cmd tools write
// one file per profiling run; trace files from multiple threads of one run
// share the container, mirroring the per-thread trace files of Sec. 6.1.
const (
	traceMagic   = "NTRC"
	traceVersion = 1
)

// WriteTraces serializes thread traces to w.
func WriteTraces(w io.Writer, kind graal.Instrumentation, mode DumpMode, traces []ThreadTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [4]byte
	hdr[0] = traceVersion
	hdr[1] = byte(kind)
	hdr[2] = byte(mode)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := putUvarint(uint64(len(traces))); err != nil {
		return err
	}
	for _, tr := range traces {
		if err := putUvarint(uint64(tr.TID)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(tr.Words))); err != nil {
			return err
		}
		for _, word := range tr.Words {
			if err := putUvarint(word); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTraces deserializes thread traces from r.
func ReadTraces(r io.Reader) (graal.Instrumentation, DumpMode, []ThreadTrace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(traceMagic)+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, 0, nil, fmt.Errorf("profiler: reading trace header: %w", err)
	}
	if string(head[:4]) != traceMagic {
		return 0, 0, nil, fmt.Errorf("profiler: bad trace magic %q", head[:4])
	}
	if head[4] != traceVersion {
		return 0, 0, nil, fmt.Errorf("profiler: unsupported trace version %d", head[4])
	}
	kind := graal.Instrumentation(head[5])
	if kind > graal.InstrHeap {
		return 0, 0, nil, fmt.Errorf("profiler: unknown instrumentation kind %d", head[5])
	}
	mode := DumpMode(head[6])
	if mode > MemoryMapped {
		return 0, 0, nil, fmt.Errorf("profiler: unknown dump mode %d", head[6])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("profiler: reading trace count: %w", err)
	}
	if n > maxThreads {
		return 0, 0, nil, fmt.Errorf("profiler: implausible thread count %d", n)
	}
	// Declared counts are validated but never trusted for allocation: a
	// 10-byte input can declare gigabytes. Preallocation is capped and the
	// slices grow with the bytes actually present.
	traces := make([]ThreadTrace, 0, capPrealloc(n, 1024))
	for i := uint64(0); i < n; i++ {
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("profiler: reading tid: %w", err)
		}
		if tid > maxThreads {
			return 0, 0, nil, fmt.Errorf("profiler: implausible tid %d", tid)
		}
		words, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("profiler: reading word count: %w", err)
		}
		if words > maxTraceWords {
			return 0, 0, nil, fmt.Errorf("profiler: implausible trace size %d", words)
		}
		tr := ThreadTrace{TID: int(tid)}
		if words > 0 {
			tr.Words = make([]uint64, 0, capPrealloc(words, 4096))
		}
		for j := uint64(0); j < words; j++ {
			word, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, 0, nil, fmt.Errorf("profiler: reading word %d of thread %d: %w", j, tid, err)
			}
			tr.Words = append(tr.Words, word)
		}
		traces = append(traces, tr)
	}
	return kind, mode, traces, nil
}

// Plausibility bounds on declared counts. Anything larger is rejected as
// corrupt rather than allocated.
const (
	maxThreads    = 1 << 20
	maxTraceWords = 1 << 32
)

// capPrealloc bounds a declared count to a sane preallocation size.
func capPrealloc(declared, limit uint64) uint64 {
	if declared > limit {
		return limit
	}
	return declared
}
