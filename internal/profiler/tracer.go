package profiler

import (
	"sort"

	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/obs"
	"nimage/internal/vm"
)

// DumpMode selects how per-thread buffers reach the trace file (Sec. 6.1).
type DumpMode uint8

const (
	// DumpOnFull flushes a thread's buffer when it fills up and at thread
	// termination. Events still buffered when the process is killed
	// abnormally are LOST — which is why microservice workloads use
	// MemoryMapped.
	DumpOnFull DumpMode = iota
	// MemoryMapped maps the buffers onto the trace file; the kernel
	// persists every written word even across SIGKILL, at a higher
	// per-event cost.
	MemoryMapped
)

func (d DumpMode) String() string {
	if d == MemoryMapped {
		return "memory-mapped"
	}
	return "dump-on-full"
}

// Record tags inside trace words (low 3 bits; payload in the high bits).
const (
	tagCUEntry     = 1
	tagMethodEntry = 2
	tagPathHeader  = 3
)

// DefaultBufferWords is the per-thread trace buffer capacity in 64-bit
// words.
const DefaultBufferWords = 4096

// Profiling cost model in machine cycles, charged through AddCycles. The
// memory-mapped mode pays more per word (store + dirty-page bookkeeping)
// but never loses events; remaps are charged when a buffer fills.
const (
	costEventDumpOnFull = 30
	costEventMmap       = 110
	costPathEmit        = 6
	costPathEmitMmap    = 48
	costAccessWord      = 1
	costFlushPerWord    = 1
	costRemap           = 900
)

// ThreadTrace is the trace file of one thread: a flat word stream.
type ThreadTrace struct {
	TID   int
	Words []uint64
}

// Tracer turns vm events into per-thread traces for one instrumentation
// kind. It implements the runtime part of the instrumentation the compiler
// injected (whose code-size effect graal models); wire it into a machine
// with Hooks().
type Tracer struct {
	// Kind selects which events are traced.
	Kind graal.Instrumentation
	// Mode selects the buffer dump mode.
	Mode DumpMode
	// BufferWords is the per-thread buffer capacity (DefaultBufferWords
	// when 0).
	BufferWords int
	// MethodIdx maps compiled methods to stable indices (see MethodTable).
	MethodIdx map[*ir.Method]int
	// Numberings holds the path numbering of every compiled method
	// (required for InstrHeap).
	Numberings map[*ir.Method]*Numbering
	// ObjectHandle returns the identifier stored in an object's header by
	// the instrumented build: 0 for objects not in the heap snapshot.
	ObjectHandle func(o *heap.Object) uint64
	// AddCycles charges profiling overhead to the executing machine.
	AddCycles func(int64)
	// Obs, when non-nil, receives probe counts, buffer-flush statistics,
	// and dump-mode byte totals. Handles are resolved lazily because Obs
	// is typically assigned after NewTracer.
	Obs *obs.Registry

	threads map[int]*threadState
	order   []int // thread creation order

	obsReady   bool
	cEvents    *obs.Counter   // probes fired (CU entries, method entries, access words)
	cPaths     *obs.Counter   // completed Ball-Larus path records
	cFlushes   *obs.Counter   // dump-on-full buffer flushes
	cRemaps    *obs.Counter   // memory-mapped buffer remaps
	cWords     *obs.Counter   // words made durable in the trace file
	cLost      *obs.Counter   // words lost to SIGKILL in dump-on-full mode
	hFlush     *obs.Histogram // flush sizes in words
	bytesGauge *obs.Gauge     // total trace bytes written
}

// obsOn reports whether a registry is attached, resolving the metric
// handles on first use so the event path does no registry lookups.
func (t *Tracer) obsOn() bool {
	if t.Obs == nil {
		return false
	}
	if !t.obsReady {
		t.obsReady = true
		r := t.Obs
		t.cEvents = r.Counter("profiler.events." + t.Kind.String())
		t.cPaths = r.Counter("profiler.paths")
		t.cFlushes = r.Counter("profiler.flushes")
		t.cRemaps = r.Counter("profiler.remaps")
		t.cWords = r.Counter("profiler.words_flushed")
		t.cLost = r.Counter("profiler.words_lost")
		t.hFlush = r.Histogram("profiler.flush_words", []float64{64, 256, 1024, 4096, 16384})
		t.bytesGauge = r.Gauge("profiler.bytes_written")
	}
	return true
}

type pathState struct {
	m        *ir.Method
	nb       *Numbering
	start    int
	prev     int
	r        uint64
	accesses []uint64
}

type threadState struct {
	tid    int
	buf    []uint64
	flushd []uint64 // words already safely in the trace file
	stack  []*pathState
}

// NewTracer creates a tracer for the given instrumentation kind.
func NewTracer(kind graal.Instrumentation, mode DumpMode) *Tracer {
	return &Tracer{
		Kind:    kind,
		Mode:    mode,
		threads: make(map[int]*threadState),
	}
}

func (t *Tracer) charge(c int64) {
	if t.AddCycles != nil {
		t.AddCycles(c)
	}
}

func (t *Tracer) state(tid int) *threadState {
	ts := t.threads[tid]
	if ts == nil {
		ts = &threadState{tid: tid}
		t.threads[tid] = ts
		t.order = append(t.order, tid)
	}
	return ts
}

func (t *Tracer) bufCap() int {
	if t.BufferWords > 0 {
		return t.BufferWords
	}
	return DefaultBufferWords
}

// appendWords writes words to the thread's buffer, flushing or remapping
// when full.
func (t *Tracer) appendWords(ts *threadState, words ...uint64) {
	switch t.Mode {
	case MemoryMapped:
		// Words reach the memory-mapped file immediately; a full "buffer"
		// costs a remap to a higher file offset.
		for _, w := range words {
			if len(ts.buf) >= t.bufCap() {
				t.charge(costRemap)
				if t.obsOn() {
					t.cRemaps.Inc()
					t.cWords.Add(int64(len(ts.buf)))
				}
				ts.flushd = append(ts.flushd, ts.buf...)
				ts.buf = ts.buf[:0]
			}
			ts.buf = append(ts.buf, w)
		}
	default:
		// Dump-on-full: flush before a record that would not fit.
		if len(ts.buf)+len(words) > t.bufCap() {
			t.flush(ts)
		}
		if len(words) > t.bufCap() {
			// Oversized record: the real fixed-size buffer could never hold
			// it, so it must not grow the buffer past its stated capacity.
			// Emit it straight to the trace file as its own flush (the
			// runtime equivalent of a writev bypassing the buffer); the
			// record stays durable-on-flush like any other dumped words.
			n := int64(len(words))
			t.charge(n * costFlushPerWord)
			if t.obsOn() {
				t.cFlushes.Inc()
				t.cWords.Add(n)
				t.hFlush.Observe(float64(n))
			}
			ts.flushd = append(ts.flushd, words...)
			return
		}
		ts.buf = append(ts.buf, words...)
	}
}

func (t *Tracer) flush(ts *threadState) {
	if len(ts.buf) == 0 {
		return
	}
	n := int64(len(ts.buf))
	t.charge(n * costFlushPerWord)
	if t.obsOn() {
		t.cFlushes.Inc()
		t.cWords.Add(n)
		t.hFlush.Observe(float64(n))
	}
	ts.flushd = append(ts.flushd, ts.buf...)
	ts.buf = ts.buf[:0]
}

// Hooks returns the vm hooks implementing the instrumentation.
func (t *Tracer) Hooks() vm.Hooks {
	var h vm.Hooks
	switch t.Kind {
	case graal.InstrCU:
		h.OnEnterCU = func(tid int, root *ir.Method) {
			t.charge(costEvent(t.Mode))
			if t.obsOn() {
				t.cEvents.Inc()
			}
			ts := t.state(tid)
			t.appendWords(ts, uint64(t.MethodIdx[root])<<3|tagCUEntry)
		}
	case graal.InstrMethod:
		h.OnMethodEnter = func(tid int, m *ir.Method) {
			t.charge(costEvent(t.Mode))
			if t.obsOn() {
				t.cEvents.Inc()
			}
			ts := t.state(tid)
			t.appendWords(ts, uint64(t.MethodIdx[m])<<3|tagMethodEntry)
		}
	case graal.InstrHeap:
		h.OnMethodEnter = func(tid int, m *ir.Method) {
			ts := t.state(tid)
			ts.stack = append(ts.stack, &pathState{m: m, nb: t.Numberings[m], prev: -1})
		}
		h.OnMethodExit = func(tid int, m *ir.Method) {
			ts := t.state(tid)
			if len(ts.stack) == 0 {
				return
			}
			ps := ts.stack[len(ts.stack)-1]
			ts.stack = ts.stack[:len(ts.stack)-1]
			t.emitPath(ts, ps)
			if len(ts.stack) == 0 {
				// Thread-termination handler: flush the buffer.
				t.flush(ts)
			}
		}
		h.OnBlock = func(tid int, m *ir.Method, blk int) {
			// The path-register update is 1-2 ALU instructions per edge,
			// hidden by the pipeline; its cost is folded into emitPath.
			ts := t.state(tid)
			if len(ts.stack) == 0 {
				return
			}
			ps := ts.stack[len(ts.stack)-1]
			if ps.m != m || ps.nb == nil {
				return
			}
			if ps.prev < 0 {
				ps.start = blk
				ps.prev = blk
				ps.r = 0
				return
			}
			if ps.nb.IsCut(ps.prev, blk) {
				t.emitPath(ts, ps)
				ps.start = blk
				ps.r = 0
			} else {
				ps.r += ps.nb.Increment(ps.prev, blk)
			}
			ps.prev = blk
		}
		h.OnAccess = func(tid int, o *heap.Object, instr bool) {
			if !instr {
				return
			}
			t.charge(costAccessWord)
			if t.obsOn() {
				t.cEvents.Inc()
			}
			ts := t.state(tid)
			if len(ts.stack) == 0 {
				return
			}
			ps := ts.stack[len(ts.stack)-1]
			var handle uint64
			if t.ObjectHandle != nil {
				handle = t.ObjectHandle(o)
			}
			ps.accesses = append(ps.accesses, handle)
		}
	}
	return h
}

func costEvent(m DumpMode) int64 {
	if m == MemoryMapped {
		return costEventMmap
	}
	return costEventDumpOnFull
}

// emitPath writes a completed path record: header, path ID, access count,
// access handles.
func (t *Tracer) emitPath(ts *threadState, ps *pathState) {
	if ps.nb == nil || ps.prev < 0 {
		return
	}
	// Emitting a completed path is cheap: the path register was maintained
	// by two-instruction edge increments, and the record is a buffered
	// store (Sec. 6.1 — path profiling keeps heap instrumentation cheaper
	// than per-method-entry tracing).
	emit := int64(costPathEmit)
	if t.Mode == MemoryMapped {
		emit = costPathEmitMmap
	}
	t.charge(emit + int64(len(ps.accesses))/2)
	if t.obsOn() {
		t.cPaths.Inc()
	}
	words := make([]uint64, 0, 3+len(ps.accesses))
	words = append(words,
		uint64(t.MethodIdx[ps.m])<<3|tagPathHeader,
		ps.nb.PathID(ps.start, ps.r),
		uint64(len(ps.accesses)),
	)
	words = append(words, ps.accesses...)
	t.appendWords(ts, words...)
	ps.accesses = ps.accesses[:0]
}

// Finish ends the profiling run and returns the trace files in thread
// creation order. killed indicates abnormal termination (SIGKILL): in
// DumpOnFull mode the unflushed buffer contents of every thread are lost,
// while MemoryMapped preserves them (Sec. 6.1).
func (t *Tracer) Finish(killed bool) []ThreadTrace {
	var out []ThreadTrace
	var durable, lost int64
	sort.Ints(t.order)
	for _, tid := range t.order {
		ts := t.threads[tid]
		if t.Mode == MemoryMapped || !killed {
			// Normal termination runs the thread-termination handlers;
			// memory-mapped buffers are always durable.
			t.flush(ts)
		} else {
			lost += int64(len(ts.buf))
		}
		durable += int64(len(ts.flushd))
		out = append(out, ThreadTrace{TID: tid, Words: ts.flushd})
	}
	if t.obsOn() {
		t.cLost.Add(lost)
		t.bytesGauge.Set(float64(durable * 8))
	}
	return out
}
