package profiler

import (
	"reflect"
	"testing"

	"nimage/internal/graal"
	"nimage/internal/obs"
)

// TestAppendWordsOversizedRecord covers the dump-on-full overflow: a record
// larger than the buffer capacity must never grow the buffer past its
// stated size (the real runtime buffer is fixed) — it is emitted as its own
// flush, preserving word order and durability accounting.
func TestAppendWordsOversizedRecord(t *testing.T) {
	tr := NewTracer(graal.InstrHeap, DumpOnFull)
	tr.BufferWords = 4
	tr.Obs = obs.NewRegistry()
	var cycles int64
	tr.AddCycles = func(c int64) { cycles += c }
	ts := tr.state(1)

	// Partially fill the buffer, then append a record that cannot fit even
	// in an empty buffer (7 > 4 words).
	tr.appendWords(ts, 1, 2)
	oversized := []uint64{10, 11, 12, 13, 14, 15, 16}
	tr.appendWords(ts, oversized...)
	if len(ts.buf) > tr.bufCap() {
		t.Fatalf("buffer grew to %d words past capacity %d", len(ts.buf), tr.bufCap())
	}
	// Both the pending words and the oversized record are already durable.
	want := []uint64{1, 2, 10, 11, 12, 13, 14, 15, 16}
	if !reflect.DeepEqual(ts.flushd, want) {
		t.Fatalf("flushed words = %v, want %v", ts.flushd, want)
	}

	// A later normal record still buffers and survives Finish in order.
	tr.appendWords(ts, 20, 21)
	traces := tr.Finish(false)
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	want = append(want, 20, 21)
	if !reflect.DeepEqual(traces[0].Words, want) {
		t.Fatalf("final trace = %v, want %v", traces[0].Words, want)
	}

	snap := tr.Obs.Snapshot()
	// Two flushes: the pre-flush of the pending words and the oversized
	// emit; the final Finish flush is the third.
	if got := snap.Counter("profiler.flushes"); got != 3 {
		t.Errorf("flushes = %d, want 3", got)
	}
	if got := snap.Counter("profiler.words_flushed"); got != int64(len(want)) {
		t.Errorf("words_flushed = %d, want %d", got, len(want))
	}
	if cycles <= 0 {
		t.Error("flush cost not charged")
	}
}

// TestAppendWordsOversizedKilled: words of an oversized record are durable
// even when the process is killed before any regular flush.
func TestAppendWordsOversizedKilled(t *testing.T) {
	tr := NewTracer(graal.InstrHeap, DumpOnFull)
	tr.BufferWords = 2
	ts := tr.state(7)
	tr.appendWords(ts, 1, 2, 3) // oversized for cap 2
	tr.appendWords(ts, 9)       // buffered, will be lost
	traces := tr.Finish(true)
	if want := []uint64{1, 2, 3}; !reflect.DeepEqual(traces[0].Words, want) {
		t.Fatalf("killed trace = %v, want durable oversized record %v", traces[0].Words, want)
	}
}
