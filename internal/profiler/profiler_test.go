package profiler

import (
	"bytes"
	"reflect"
	"testing"

	"nimage/internal/graal"
	"nimage/internal/heap"
	"nimage/internal/ir"
	"nimage/internal/vm"
)

// buildBranchy builds a method with a loop containing a diamond:
//
//	static f(n): s=0; for i in [0,n): if i%2==0 { s+=i } else { s-=i }; return s
func buildBranchy(t *testing.T) (*ir.Program, *ir.Method) {
	t.Helper()
	b := ir.NewBuilder("branchy")
	b.Class(ir.StringClass)
	c := b.Class("B")
	mb := c.StaticMethod("f", 1, ir.Int())
	e := mb.Entry()
	s := e.ConstInt(0)
	zero := e.ConstInt(0)
	two := e.ConstInt(2)
	exit := e.For(zero, mb.Param(0), 1, func(body *ir.BlockBuilder, i ir.Reg) *ir.BlockBuilder {
		rem := body.Arith(ir.Rem, i, two)
		z := body.ConstInt(0)
		cond := body.Cmp(ir.Eq, rem, z)
		return body.IfElse(cond,
			func(th *ir.BlockBuilder) *ir.BlockBuilder {
				th.ArithTo(s, ir.Add, s, i)
				return th
			},
			func(el *ir.BlockBuilder) *ir.BlockBuilder {
				el.ArithTo(s, ir.Sub, s, i)
				return el
			})
	})
	exit.Ret(s)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Class("B").DeclaredMethod("f")
}

func TestNumberingPathsAreUnique(t *testing.T) {
	_, m := buildBranchy(t)
	nb := ComputeNumbering(m, 0)
	if nb.TotalPaths == 0 {
		t.Fatal("no paths")
	}
	seen := make(map[string]uint64)
	for id := uint64(0); id < nb.TotalPaths; id++ {
		seq, err := nb.Decode(id)
		if err != nil {
			t.Fatalf("Decode(%d): %v", id, err)
		}
		key := ""
		for _, b := range seq {
			key += string(rune('A' + b))
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("ids %d and %d decode to the same path %v", prev, id, seq)
		}
		seen[key] = id
	}
}

func TestNumberingBackEdgesCut(t *testing.T) {
	_, m := buildBranchy(t)
	nb := ComputeNumbering(m, 0)
	cuts := 0
	for _, b := range m.Blocks {
		for _, w := range []int{b.Term.Then, b.Term.Else} {
			if b.Term.Op != ir.TermReturn && nb.IsCut(b.Index, w) {
				cuts++
			}
		}
	}
	if cuts == 0 {
		t.Fatal("loop produced no cut edge")
	}
}

func TestCapacityCutting(t *testing.T) {
	// A straight-line chain of k diamonds has 2^k paths; with maxPaths 4
	// capacity cuts must bound every start block's path count.
	b := ir.NewBuilder("diamonds")
	b.Class(ir.StringClass)
	c := b.Class("D")
	mb := c.StaticMethod("f", 1, ir.Int())
	blk := mb.Entry()
	acc := blk.ConstInt(0)
	for k := 0; k < 8; k++ {
		kk := blk.ConstInt(int64(k))
		cond := blk.Cmp(ir.Gt, mb.Param(0), kk)
		blk = blk.IfElse(cond,
			func(th *ir.BlockBuilder) *ir.BlockBuilder {
				th.ArithTo(acc, ir.Add, acc, kk)
				return th
			},
			func(el *ir.BlockBuilder) *ir.BlockBuilder {
				el.ArithTo(acc, ir.Sub, acc, kk)
				return el
			})
	}
	blk.Ret(acc)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := p.Class("D").DeclaredMethod("f")

	unlimited := ComputeNumbering(m, 1<<40)
	if unlimited.TotalPaths < 256 {
		t.Fatalf("unbounded paths = %d, want >= 256", unlimited.TotalPaths)
	}
	bounded := ComputeNumbering(m, 4)
	for _, s := range bounded.starts {
		if bounded.numPaths[s] > 4 {
			t.Errorf("start %d has %d paths > maxPaths 4", s, bounded.numPaths[s])
		}
	}
	// Every id must still decode.
	for id := uint64(0); id < bounded.TotalPaths; id++ {
		if _, err := bounded.Decode(id); err != nil {
			t.Fatalf("Decode(%d): %v", id, err)
		}
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	_, m := buildBranchy(t)
	nb := ComputeNumbering(m, 0)
	if _, err := nb.Decode(nb.TotalPaths); err == nil {
		t.Fatal("out-of-range id decoded")
	}
}

// runTraced executes method f(arg) under a tracer of the given kind and
// also records ground truth via independent hooks.
func runTraced(t *testing.T, p *ir.Program, m *ir.Method, kind graal.Instrumentation, mode DumpMode, arg int64) (*Tracer, []ThreadTrace, [][]int) {
	t.Helper()
	table := NewMethodTable(p.Methods())
	tr := NewTracer(kind, mode)
	tr.MethodIdx = table.Index
	tr.Numberings = table.Numberings(0)

	// Ground truth: block sequences per method invocation (stack-shaped).
	var truth [][]int
	var stack []int // indices into truth
	truthHooks := vm.Hooks{
		OnMethodEnter: func(tid int, mm *ir.Method) {
			truth = append(truth, nil)
			stack = append(stack, len(truth)-1)
		},
		OnMethodExit: func(tid int, mm *ir.Method) {
			stack = stack[:len(stack)-1]
		},
		OnBlock: func(tid int, mm *ir.Method, b int) {
			i := stack[len(stack)-1]
			truth[i] = append(truth[i], b)
		},
	}
	mach := vm.New(p)
	mach.Hooks = vm.ComposeHooks(tr.Hooks(), truthHooks)
	if _, err := mach.RunMethod(m, heap.IntVal(arg)); err != nil {
		t.Fatal(err)
	}
	traces := tr.Finish(false)
	return tr, traces, truth
}

func TestHeapTraceDecodesToExecutedBlocks(t *testing.T) {
	p, m := buildBranchy(t)
	tr, traces, truth := runTraced(t, p, m, graal.InstrHeap, DumpOnFull, 7)
	if len(traces) != 1 {
		t.Fatalf("threads = %d", len(traces))
	}
	// Decode the trace: concatenated paths of the single invocation must
	// equal the executed block sequence.
	words := traces[0].Words
	var decoded []int
	for i := 0; i < len(words); {
		tag := words[i] & 7
		if tag != tagPathHeader {
			t.Fatalf("unexpected tag %d", tag)
		}
		midx := int(words[i] >> 3)
		pathID := words[i+1]
		nAcc := int(words[i+2])
		i += 3 + nAcc
		mm := tr.Numberings[methodAt(tr, midx)]
		seq, err := mm.Decode(pathID)
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, seq...)
	}
	if len(truth) != 1 {
		t.Fatalf("invocations = %d", len(truth))
	}
	if !reflect.DeepEqual(decoded, truth[0]) {
		t.Fatalf("decoded blocks %v != executed %v", decoded, truth[0])
	}
}

// methodAt finds the method with the given index in the tracer's table.
func methodAt(tr *Tracer, idx int) *ir.Method {
	for m, i := range tr.MethodIdx {
		if i == idx {
			return m
		}
	}
	return nil
}

// buildAccessor builds a method performing field accesses on a snapshot
// object and on a fresh object.
func buildAccessor(t *testing.T) (*ir.Program, *ir.Method) {
	t.Helper()
	b := ir.NewBuilder("acc")
	b.Class(ir.StringClass)
	c := b.Class("A").Field("x", ir.Int())
	c.Static("snap", ir.Ref("A"))
	mb := c.StaticMethod("f", 0, ir.Int())
	e := mb.Entry()
	o := e.GetStatic("A", "snap")
	v1 := e.GetField(o, "A", "x")
	fresh := e.New("A")
	k := e.ConstInt(5)
	e.PutField(fresh, "A", "x", k)
	v2 := e.GetField(fresh, "A", "x")
	e.Ret(e.Arith(ir.Add, v1, v2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Class("A").DeclaredMethod("f")
}

func TestHeapTraceRecordsObjectHandles(t *testing.T) {
	p, m := buildAccessor(t)
	table := NewMethodTable(p.Methods())
	tr := NewTracer(graal.InstrHeap, DumpOnFull)
	tr.MethodIdx = table.Index
	tr.Numberings = table.Numberings(0)

	// One snapshot object with handle 42.
	snapObj := heap.NewObject(p.Class("A"))
	snapObj.InSnapshot = true
	tr.ObjectHandle = func(o *heap.Object) uint64 {
		if o == snapObj {
			return 42
		}
		return 0
	}
	mach := vm.New(p)
	mach.Statics.Set(p.Class("A").LookupStatic("snap"), heap.RefVal(snapObj))
	mach.Hooks = tr.Hooks()
	if _, err := mach.RunMethod(m); err != nil {
		t.Fatal(err)
	}
	traces := tr.Finish(false)
	words := traces[0].Words
	if len(words) < 3 {
		t.Fatalf("trace too short: %v", words)
	}
	nAcc := int(words[2])
	// Accesses: snapObj.x read (42), fresh put (0), fresh get (0).
	if nAcc != 3 {
		t.Fatalf("access count = %d, want 3 (words %v)", nAcc, words)
	}
	handles := words[3 : 3+nAcc]
	want := []uint64{42, 0, 0}
	if !reflect.DeepEqual([]uint64(handles), want) {
		t.Fatalf("handles = %v, want %v", handles, want)
	}
	// The path's static access count must agree with the recorded count.
	nb := tr.Numberings[m]
	seq, err := nb.Decode(words[1])
	if err != nil {
		t.Fatal(err)
	}
	if nb.PathAccessCount(seq) != nAcc {
		t.Fatalf("static access count %d != recorded %d", nb.PathAccessCount(seq), nAcc)
	}
}

func TestCUAndMethodTraces(t *testing.T) {
	p, m := buildBranchy(t)
	_, cuTraces, _ := runTraced(t, p, m, graal.InstrCU, DumpOnFull, 3)
	_, mTraces, _ := runTraced(t, p, m, graal.InstrMethod, DumpOnFull, 3)
	// Single non-inlined method: one CU entry and one method entry.
	if len(cuTraces[0].Words) != 1 || cuTraces[0].Words[0]&7 != tagCUEntry {
		t.Errorf("cu trace = %v", cuTraces[0].Words)
	}
	if len(mTraces[0].Words) != 1 || mTraces[0].Words[0]&7 != tagMethodEntry {
		t.Errorf("method trace = %v", mTraces[0].Words)
	}
}

func TestDumpOnFullLosesUnflushedOnKill(t *testing.T) {
	p, m := buildBranchy(t)
	table := NewMethodTable(p.Methods())

	run := func(mode DumpMode, killed bool) int {
		tr := NewTracer(graal.InstrCU, mode)
		tr.MethodIdx = table.Index
		tr.BufferWords = 8
		mach := vm.New(p)
		mach.Hooks = tr.Hooks()
		if _, err := mach.RunMethod(m, heap.IntVal(2)); err != nil {
			t.Fatal(err)
		}
		traces := tr.Finish(killed)
		n := 0
		for _, tt := range traces {
			n += len(tt.Words)
		}
		return n
	}
	if got := run(DumpOnFull, true); got != 0 {
		t.Errorf("killed dump-on-full kept %d words, want 0 (single small buffer)", got)
	}
	if got := run(DumpOnFull, false); got == 0 {
		t.Error("normal termination lost events")
	}
	if got := run(MemoryMapped, true); got == 0 {
		t.Error("memory-mapped mode lost events on kill")
	}
}

func TestProfilingChargesOverhead(t *testing.T) {
	p, m := buildBranchy(t)
	table := NewMethodTable(p.Methods())

	base := vm.New(p)
	if _, err := base.RunMethod(m, heap.IntVal(50)); err != nil {
		t.Fatal(err)
	}

	for _, kind := range []graal.Instrumentation{graal.InstrCU, graal.InstrMethod, graal.InstrHeap} {
		tr := NewTracer(kind, DumpOnFull)
		tr.MethodIdx = table.Index
		tr.Numberings = table.Numberings(0)
		mach := vm.New(p)
		tr.AddCycles = func(c int64) { mach.Cycles += c }
		mach.Hooks = tr.Hooks()
		if _, err := mach.RunMethod(m, heap.IntVal(50)); err != nil {
			t.Fatal(err)
		}
		if mach.Cycles <= base.Cycles {
			t.Errorf("%v instrumentation added no overhead: %d vs %d", kind, mach.Cycles, base.Cycles)
		}
	}
}

func TestMethodTableStable(t *testing.T) {
	p, _ := buildBranchy(t)
	a := NewMethodTable(p.Methods())
	// Reversed input order must give the same indices.
	ms := p.Methods()
	for i, j := 0, len(ms)-1; i < j; i, j = i+1, j-1 {
		ms[i], ms[j] = ms[j], ms[i]
	}
	b := NewMethodTable(ms)
	for m, i := range a.Index {
		if b.Index[m] != i {
			t.Fatalf("index of %s differs: %d vs %d", m.Signature(), i, b.Index[m])
		}
	}
	if a.Signature(0) == "" || a.Method(len(a.Methods)) != nil {
		t.Error("accessor edge cases")
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	in := []ThreadTrace{
		{TID: 0, Words: []uint64{1, 2, 3, 1 << 40}},
		{TID: 3, Words: nil},
		{TID: 7, Words: []uint64{0}},
	}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, graal.InstrHeap, MemoryMapped, in); err != nil {
		t.Fatal(err)
	}
	kind, mode, out, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != graal.InstrHeap || mode != MemoryMapped {
		t.Errorf("kind/mode = %v/%v", kind, mode)
	}
	if len(out) != len(in) {
		t.Fatalf("threads = %d", len(out))
	}
	for i := range in {
		if out[i].TID != in[i].TID || !reflect.DeepEqual(out[i].Words, in[i].Words) {
			t.Errorf("thread %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestTraceIORejectsGarbage(t *testing.T) {
	if _, _, _, err := ReadTraces(bytes.NewReader([]byte("XXXX0000"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, _, err := ReadTraces(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
