// Package profiler implements the paper's tracing profiler (Sec. 6.1).
//
// The profiler instruments at the compiler-IR level using an accurate
// path-profiling technique with the path-cutting optimization [7]: each
// method's CFG is numbered Ball–Larus-style after cutting loop back edges
// (and, when the path count would explode, additional capacity-cut edges),
// so every executed acyclic sub-path maps to a compact integer ID. Instead
// of counting path executions, the tracer *records* the executed path IDs —
// together with the identifiers of the heap objects accessed on the path —
// into per-thread buffers, with two dump modes: dump-on-full for normally
// terminating workloads and memory-mapped files for workloads killed with
// SIGKILL (Sec. 6.1).
package profiler

import (
	"fmt"
	"sort"

	"nimage/internal/ir"
)

// DefaultMaxPaths bounds the number of paths per start block before
// capacity cuts are inserted (the path-cutting optimization of [7]).
const DefaultMaxPaths = 1 << 16

// edge is a CFG edge (from-block, to-block).
type edge struct{ from, to int }

// Numbering is the Ball–Larus path numbering of one method.
type Numbering struct {
	Method *ir.Method
	// cut marks path-terminating edges: loop back edges plus capacity cuts.
	cut map[edge]bool
	// inc is the increment assigned to each non-cut edge.
	inc map[edge]uint64
	// numPaths[v] is the number of distinct paths starting at block v (and
	// ending at a return or a cut edge source).
	numPaths []uint64
	// endsHere[v] is 1 when a path may terminate at v (return block or a
	// block with a cut out-edge).
	endsHere []uint64
	// startBase[s] is the offset of start block s in the method's path-ID
	// space; only entry blocks of paths (block 0 and cut-edge targets) have
	// entries.
	startBase map[int]uint64
	// starts lists the start blocks in ascending order.
	starts []int
	// TotalPaths is the size of the method's path-ID space.
	TotalPaths uint64
	// AccessCounts[v] is the number of traced access instructions
	// (field/array accesses) in block v.
	AccessCounts []int
}

// successors returns the CFG successors of a block.
func successors(b *ir.Block) []int {
	switch b.Term.Op {
	case ir.TermGoto:
		return []int{b.Term.Then}
	case ir.TermIf:
		if b.Term.Then == b.Term.Else {
			return []int{b.Term.Then}
		}
		return []int{b.Term.Then, b.Term.Else}
	default:
		return nil
	}
}

// countBlockAccesses counts the traced access events of a block.
func countBlockAccesses(b *ir.Block) int {
	n := 0
	for i := range b.Instrs {
		n += b.Instrs[i].AccessCount()
	}
	return n
}

// ComputeNumbering builds the path numbering of a method. maxPaths <= 0
// selects DefaultMaxPaths.
func ComputeNumbering(m *ir.Method, maxPaths uint64) *Numbering {
	if maxPaths == 0 {
		maxPaths = DefaultMaxPaths
	}
	n := len(m.Blocks)
	nb := &Numbering{
		Method:       m,
		cut:          make(map[edge]bool),
		inc:          make(map[edge]uint64),
		numPaths:     make([]uint64, n),
		endsHere:     make([]uint64, n),
		startBase:    make(map[int]uint64),
		AccessCounts: make([]int, n),
	}
	for i, b := range m.Blocks {
		nb.AccessCounts[i] = countBlockAccesses(b)
	}

	// 1. Find back edges with an iterative DFS (white/gray/black).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	type dfsFrame struct {
		v    int
		succ []int
		i    int
	}
	stack := []dfsFrame{{v: 0, succ: successors(m.Blocks[0])}}
	color[0] = gray
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.i < len(top.succ) {
			w := top.succ[top.i]
			top.i++
			switch color[w] {
			case gray:
				nb.cut[edge{top.v, w}] = true // back edge
			case white:
				color[w] = gray
				stack = append(stack, dfsFrame{v: w, succ: successors(m.Blocks[w])})
			}
			continue
		}
		color[top.v] = black
		stack = stack[:len(stack)-1]
	}

	// 2. Topological order of the DAG (cut edges removed). Unreachable
	// blocks are appended so every block gets a numbering.
	topo := topoOrder(m, nb.cut)

	// 3. Path counts in reverse topological order, inserting capacity cuts
	// where the count would exceed maxPaths.
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		nb.recount(m, v)
		if nb.numPaths[v] > maxPaths {
			// Cut successor edges (largest contribution first) until the
			// count fits. At least one path must remain: ending at v.
			succ := nb.liveSuccessors(m, v)
			sort.Slice(succ, func(a, b int) bool {
				return nb.numPaths[succ[a]] > nb.numPaths[succ[b]]
			})
			for _, w := range succ {
				nb.cut[edge{v, w}] = true
				nb.recount(m, v)
				if nb.numPaths[v] <= maxPaths {
					break
				}
			}
		}
	}

	// 4. Edge increments: the end-here variant occupies [0, endsHere);
	// successor edge i covers [base_i, base_i+numPaths(w_i)).
	for _, v := range topo {
		base := nb.endsHere[v]
		for _, w := range successors(m.Blocks[v]) {
			e := edge{v, w}
			if nb.cut[e] {
				continue
			}
			nb.inc[e] = base
			base += nb.numPaths[w]
		}
	}

	// 5. Start blocks: the entry plus every cut-edge target; assign bases.
	startSet := map[int]bool{0: true}
	for e := range nb.cut {
		startSet[e.to] = true
	}
	for s := range startSet {
		nb.starts = append(nb.starts, s)
	}
	sort.Ints(nb.starts)
	var total uint64
	for _, s := range nb.starts {
		nb.startBase[s] = total
		total += nb.numPaths[s]
	}
	nb.TotalPaths = total
	return nb
}

// recount recomputes numPaths and endsHere for v from current cuts.
func (nb *Numbering) recount(m *ir.Method, v int) {
	blk := m.Blocks[v]
	ends := uint64(0)
	if blk.Term.Op == ir.TermReturn {
		ends = 1
	}
	var sum uint64
	for _, w := range successors(blk) {
		if nb.cut[edge{v, w}] {
			ends = 1
			continue
		}
		sum += nb.numPaths[w]
	}
	nb.endsHere[v] = ends
	nb.numPaths[v] = ends + sum
}

// liveSuccessors returns v's successors over non-cut edges.
func (nb *Numbering) liveSuccessors(m *ir.Method, v int) []int {
	var out []int
	for _, w := range successors(m.Blocks[v]) {
		if !nb.cut[edge{v, w}] {
			out = append(out, w)
		}
	}
	return out
}

// topoOrder orders blocks so that every non-cut edge goes forward.
func topoOrder(m *ir.Method, cut map[edge]bool) []int {
	n := len(m.Blocks)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range successors(m.Blocks[v]) {
			if !cut[edge{v, w}] {
				indeg[w]++
			}
		}
	}
	var order []int
	var queue []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range successors(m.Blocks[v]) {
			if cut[edge{v, w}] {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) < n {
		seen := make([]bool, n)
		for _, v := range order {
			seen[v] = true
		}
		for v := 0; v < n; v++ {
			if !seen[v] {
				order = append(order, v)
			}
		}
	}
	return order
}

// IsCut reports whether the edge (from, to) terminates paths.
func (nb *Numbering) IsCut(from, to int) bool { return nb.cut[edge{from, to}] }

// Increment returns the Ball–Larus increment of the edge (from, to).
func (nb *Numbering) Increment(from, to int) uint64 { return nb.inc[edge{from, to}] }

// PathID returns the method-wide path ID of the path that started at block
// start and accumulated increment r.
func (nb *Numbering) PathID(start int, r uint64) uint64 { return nb.startBase[start] + r }

// Decode expands a path ID into its block sequence. It inverts PathID: the
// start block is the one whose base range contains id, and the walk follows
// the successor whose increment range contains the remainder.
func (nb *Numbering) Decode(id uint64) ([]int, error) {
	if id >= nb.TotalPaths {
		return nil, fmt.Errorf("profiler: path id %d out of range [0,%d) in %s", id, nb.TotalPaths, nb.Method.Signature())
	}
	// Find the start block.
	start := -1
	for _, s := range nb.starts {
		if id >= nb.startBase[s] && id < nb.startBase[s]+nb.numPaths[s] {
			start = s
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("profiler: no start block for path id %d in %s", id, nb.Method.Signature())
	}
	r := id - nb.startBase[start]
	seq := []int{start}
	v := start
	for {
		if r < nb.endsHere[v] {
			return seq, nil
		}
		base := nb.endsHere[v]
		next := -1
		for _, w := range successors(nb.Method.Blocks[v]) {
			e := edge{v, w}
			if nb.cut[e] {
				continue
			}
			if r >= base && r < base+nb.numPaths[w] {
				next = w
				r -= base
				break
			}
			base += nb.numPaths[w]
		}
		if next < 0 {
			return nil, fmt.Errorf("profiler: undecodable remainder %d at block %d of %s", r, v, nb.Method.Signature())
		}
		seq = append(seq, next)
		v = next
	}
}

// PathAccessCount returns the number of traced accesses on the decoded path.
func (nb *Numbering) PathAccessCount(blocks []int) int {
	n := 0
	for _, b := range blocks {
		n += nb.AccessCounts[b]
	}
	return n
}
