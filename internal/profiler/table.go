package profiler

import (
	"sort"

	"nimage/internal/ir"
)

// MethodTable assigns stable indices to compiled methods. Indices are
// alphabetical by signature, so the table is identical for any two builds
// with the same reachable-method set, and trace files reference methods
// compactly.
type MethodTable struct {
	// Methods in index order.
	Methods []*ir.Method
	// Index maps a method to its table index.
	Index map[*ir.Method]int
}

// NewMethodTable builds a table over the given methods.
func NewMethodTable(methods []*ir.Method) *MethodTable {
	sorted := make([]*ir.Method, len(methods))
	copy(sorted, methods)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Signature() < sorted[j].Signature() })
	t := &MethodTable{Methods: sorted, Index: make(map[*ir.Method]int, len(sorted))}
	for i, m := range sorted {
		t.Index[m] = i
	}
	return t
}

// Signature returns the signature of the method with the given index, or
// "" if out of range.
func (t *MethodTable) Signature(idx int) string {
	if idx < 0 || idx >= len(t.Methods) {
		return ""
	}
	return t.Methods[idx].Signature()
}

// Method returns the method with the given index, or nil.
func (t *MethodTable) Method(idx int) *ir.Method {
	if idx < 0 || idx >= len(t.Methods) {
		return nil
	}
	return t.Methods[idx]
}

// Numberings computes the path numbering of every table method (used by
// heap-instrumented builds).
func (t *MethodTable) Numberings(maxPaths uint64) map[*ir.Method]*Numbering {
	out := make(map[*ir.Method]*Numbering, len(t.Methods))
	for _, m := range t.Methods {
		out[m] = ComputeNumbering(m, maxPaths)
	}
	return out
}
