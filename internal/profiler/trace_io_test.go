package profiler

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"nimage/internal/graal"
)

// encodeTraces is the test-side encoder shorthand.
func encodeTraces(t testing.TB, kind graal.Instrumentation, mode DumpMode, traces []ThreadTrace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTraces(&buf, kind, mode, traces); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceRoundTrip(t *testing.T) {
	in := []ThreadTrace{
		{TID: 0, Words: []uint64{1, 2, 3, 1 << 40}},
		{TID: 7, Words: nil},
		{TID: 3, Words: []uint64{42}},
	}
	data := encodeTraces(t, graal.InstrHeap, MemoryMapped, in)
	kind, mode, out, err := ReadTraces(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if kind != graal.InstrHeap || mode != MemoryMapped {
		t.Fatalf("kind/mode = %v/%v", kind, mode)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d traces, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].TID != in[i].TID || !reflect.DeepEqual(append([]uint64{}, out[i].Words...), append([]uint64{}, in[i].Words...)) {
			t.Fatalf("trace %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

// corruptTraceInputs enumerates hostile inputs with the error each must
// produce; they double as the fuzz seed corpus.
func corruptTraceInputs(t testing.TB) map[string]struct {
	data    []byte
	wantErr string
} {
	valid := encodeTraces(t, graal.InstrCU, DumpOnFull, []ThreadTrace{{TID: 1, Words: []uint64{9, 8, 7}}})

	// header bytes: magic[4] version kind mode
	mutate := func(idx int, b byte) []byte {
		c := append([]byte{}, valid...)
		c[idx] = b
		return c
	}
	uvarint := func(v uint64) []byte {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		return tmp[:n]
	}
	// magic[4] version kind mode pad
	header := []byte{'N', 'T', 'R', 'C', traceVersion, byte(graal.InstrCU), byte(DumpOnFull), 0}

	return map[string]struct {
		data    []byte
		wantErr string
	}{
		"empty":           {nil, "reading trace header"},
		"truncated-magic": {[]byte("NT"), "reading trace header"},
		"bad-magic":       {mutate(0, 'X'), "bad trace magic"},
		"bad-version":     {mutate(4, 99), "unsupported trace version"},
		"bad-kind":        {mutate(5, 200), "unknown instrumentation kind"},
		"bad-mode":        {mutate(6, 9), "unknown dump mode"},
		"no-count":        {header, "reading trace count"},
		"absurd-threads":  {append(append([]byte{}, header...), uvarint(1<<40)...), "implausible thread count"},
		"absurd-tid": {append(append(append([]byte{}, header...),
			uvarint(1)...), uvarint(1<<30)...), "implausible tid"},
		"absurd-words": {append(append(append(append([]byte{}, header...),
			uvarint(1)...), uvarint(3)...), uvarint(1<<40)...), "implausible trace size"},
		// Declares 1M words but supplies none: must error out without
		// allocating the declared size.
		"declared-not-present": {append(append(append(append([]byte{}, header...),
			uvarint(1)...), uvarint(3)...), uvarint(1<<20)...), "reading word"},
		"truncated-words": {valid[:len(valid)-2], "reading word"},
	}
}

func TestReadTracesRejectsCorruptInput(t *testing.T) {
	for name, tc := range corruptTraceInputs(t) {
		_, _, _, err := ReadTraces(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: corrupt input accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.wantErr)
		}
	}
}

// FuzzReadTraces asserts the decoder never panics and that everything it
// accepts survives an encode/decode round trip unchanged.
func FuzzReadTraces(f *testing.F) {
	f.Add(encodeTraces(f, graal.InstrCU, DumpOnFull, []ThreadTrace{{TID: 1, Words: []uint64{9, 8, 7}}}))
	f.Add(encodeTraces(f, graal.InstrHeap, MemoryMapped, []ThreadTrace{
		{TID: 0, Words: []uint64{1 << 60}}, {TID: 2},
	}))
	f.Add(encodeTraces(f, graal.InstrMethod, DumpOnFull, nil))
	for _, tc := range corruptTraceInputs(f) {
		f.Add(tc.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, mode, traces, err := ReadTraces(bytes.NewReader(data))
		if err != nil {
			return
		}
		re := encodeTraces(t, kind, mode, traces)
		kind2, mode2, traces2, err := ReadTraces(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if kind2 != kind || mode2 != mode || len(traces2) != len(traces) {
			t.Fatalf("round trip changed shape: %v/%v/%d vs %v/%v/%d",
				kind, mode, len(traces), kind2, mode2, len(traces2))
		}
		for i := range traces {
			if traces2[i].TID != traces[i].TID || len(traces2[i].Words) != len(traces[i].Words) {
				t.Fatalf("round trip changed trace %d", i)
			}
			for j := range traces[i].Words {
				if traces2[i].Words[j] != traces[i].Words[j] {
					t.Fatalf("round trip changed word %d of trace %d", j, i)
				}
			}
		}
	})
}
