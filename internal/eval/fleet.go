package eval

// Fleet measurement: N tenants — serve workload × layout strategy pairs —
// served concurrently from ONE simulated OS under a shared page-cache
// budget. Where the serve protocol (serve.go) measures one long-lived
// service under synthetic inter-burst pressure, the fleet protocol makes
// the pressure endogenous: every tenant's faults compete for the same
// budget, so one tenant's working set evicts another's pages, and the
// osim interference matrix says exactly who evicted whom. The interleave
// runs on the simulated clock with the same seeded discipline as the
// serve streams, so fleet outcomes are bit-deterministic across -workers
// and repeats — and a single-tenant fleet without quota reproduces
// MeasureServe exactly (the back-compat contract fleet_test.go enforces).

import (
	"fmt"
	"sort"
	"strings"

	"nimage/internal/heap"
	"nimage/internal/image"
	"nimage/internal/ir"
	"nimage/internal/obs"
	"nimage/internal/osim"
	"nimage/internal/vm"
	"nimage/internal/workloads"
)

// TenantSpec names one fleet tenant: a serve workload × layout strategy
// pair with an optional residency quota.
type TenantSpec struct {
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// QuotaPct caps the tenant's resident pages at this percentage of the
	// shared CacheBudget (0: no quota). Quotas need a budget: with an
	// unlimited cache a percentage of it is meaningless, so the quota is
	// only applied when CacheBudget > 0.
	QuotaPct int `json:"quota_pct,omitempty"`
}

// FleetConfig tunes one multi-tenant serve scenario. The scenario knobs
// (bursts, pressure, budget, policy, traffic skew, seed) are shared by
// every tenant; the tenant list is what varies.
type FleetConfig struct {
	// Tenants are the fleet members. Pairs must be distinct: images are
	// memoized per (workload, strategy, build), so duplicate pairs would
	// share one page-cache file and their ownership could not be told
	// apart in the interference matrix.
	Tenants []TenantSpec `json:"tenants"`
	// Bursts, BurstSize, PressurePct, CacheBudget, Policy, HotPct,
	// HotRoutes, Seed mean exactly what they mean in ServeConfig; the
	// fleet run drives every tenant's request stream from the one Seed.
	Bursts      int                 `json:"bursts"`
	BurstSize   int                 `json:"burst_size"`
	PressurePct int                 `json:"pressure_pct"`
	CacheBudget int                 `json:"cache_budget,omitempty"`
	Policy      osim.EvictionPolicy `json:"policy,omitempty"`
	HotPct      int                 `json:"hot_pct"`
	HotRoutes   int                 `json:"hot_routes"`
	Seed        uint64              `json:"seed"`
	// RecordRequests attaches the bounded per-request trace recorder;
	// streams are tenant indices, feeding the fleet Chrome-trace export.
	RecordRequests bool `json:"record_requests,omitempty"`
}

// withDefaults fills unset knobs from the serve defaults and
// canonicalizes the tenant order, so the memoization key — and therefore
// the measured interleave — is independent of how the caller happened to
// order the tenant slice.
func (c FleetConfig) withDefaults() FleetConfig {
	d := DefaultServeConfig()
	if c.Bursts <= 0 {
		c.Bursts = d.Bursts
	}
	if c.BurstSize <= 0 {
		c.BurstSize = d.BurstSize
	}
	if c.HotRoutes <= 0 {
		c.HotRoutes = d.HotRoutes
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	ts := make([]TenantSpec, len(c.Tenants))
	copy(ts, c.Tenants)
	for i := range ts {
		if ts[i].Strategy == "" {
			ts[i].Strategy = LayoutBaseline
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Workload != ts[j].Workload {
			return ts[i].Workload < ts[j].Workload
		}
		if ts[i].Strategy != ts[j].Strategy {
			return ts[i].Strategy < ts[j].Strategy
		}
		return ts[i].QuotaPct < ts[j].QuotaPct
	})
	c.Tenants = ts
	return c
}

// validate rejects configs the fleet protocol cannot measure faithfully.
func (c FleetConfig) validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("eval: fleet needs at least one tenant")
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t.QuotaPct < 0 || t.QuotaPct > 100 {
			return fmt.Errorf("eval: fleet tenant %s/%s quota %d%% outside [0, 100]",
				t.Workload, t.Strategy, t.QuotaPct)
		}
		k := t.Workload + "\x00" + t.Strategy
		if seen[k] {
			return fmt.Errorf("eval: duplicate fleet tenant %s/%s (pairs must be distinct)",
				t.Workload, t.Strategy)
		}
		seen[k] = true
	}
	return nil
}

// key canonicalizes the config for memoization (tenants already sorted by
// withDefaults).
func (c FleetConfig) key() string {
	var b strings.Builder
	for _, t := range c.Tenants {
		fmt.Fprintf(&b, "%s|%s|%d\x02", t.Workload, t.Strategy, t.QuotaPct)
	}
	fmt.Fprintf(&b, "\x01%d/%d/%d/%d/%d/%d/%d/%d/%t",
		c.Bursts, c.BurstSize, c.PressurePct, c.CacheBudget, c.Policy,
		c.HotPct, c.HotRoutes, c.Seed, c.RecordRequests)
	return b.String()
}

// serveConfig projects the shared scenario knobs onto a single-stream
// ServeConfig — the config of the solo baseline runs the isolation
// factors compare against.
func (c FleetConfig) serveConfig() ServeConfig {
	return ServeConfig{
		Bursts: c.Bursts, BurstSize: c.BurstSize, PressurePct: c.PressurePct,
		CacheBudget: c.CacheBudget, Policy: c.Policy,
		HotPct: c.HotPct, HotRoutes: c.HotRoutes, Seed: c.Seed,
	}
}

// quotaPages resolves tenant i's residency quota in pages (0: none).
func (c FleetConfig) quotaPages(i int) int {
	if c.CacheBudget <= 0 {
		return 0
	}
	return c.CacheBudget * c.Tenants[i].QuotaPct / 100
}

// TenantOutcome is one tenant's view of a fleet run: the same telemetry a
// solo ServeOutcome carries, plus the tenant-partitioned counters and the
// isolation factors against the tenant's solo run.
type TenantOutcome struct {
	Spec   TenantSpec `json:"spec"`
	Tenant int        `json:"tenant"`
	// QuotaPages is the resolved residency quota (0: none).
	QuotaPages int `json:"quota_pages,omitempty"`
	// StartupNanos is the tenant's own time to first response.
	StartupNanos float64 `json:"startup_nanos"`
	// Bursts is the tenant's per-burst telemetry, same shape as a solo
	// serve run; Resident is the tenant's resident pages at each burst end
	// (the owner-side residency timeline).
	Bursts   []BurstMeasure `json:"bursts"`
	Resident []int64        `json:"resident"`
	// Warm aggregates over the warm bursts (1..).
	WarmMeanNanos float64 `json:"warm_mean_nanos"`
	WarmP99Nanos  float64 `json:"warm_p99_nanos"`
	// Owner-side churn: pages of this tenant's file evicted (any evictor)
	// and re-faulted over the run, and resident at run end.
	EvictedPages  int64 `json:"evicted_pages"`
	RefaultPages  int64 `json:"refault_pages"`
	ResidentPages int64 `json:"resident_pages"`
	// Counters is the charge-side partition: faults this tenant's own
	// accesses took (osim.TenantFaults), summing across tenants to the OS
	// totals — the reconciliation contract fleet_test.go enforces.
	Counters osim.TenantFaults `json:"counters"`
	// Attainment scores the tenant's warm latencies against the default
	// SLO targets.
	Attainment []obs.SLOAttainment `json:"attainment,omitempty"`
	// Solo-run comparison (same workload, strategy, budget and pressure,
	// alone on the OS): IsolationLatency is in-fleet / solo warm mean;
	// IsolationRefault the add-one-smoothed re-fault ratio.
	SoloWarmMeanNanos float64 `json:"solo_warm_mean_nanos,omitempty"`
	SoloRefaults      int64   `json:"solo_refaults,omitempty"`
	IsolationLatency  float64 `json:"isolation_latency,omitempty"`
	IsolationRefault  float64 `json:"isolation_refault,omitempty"`
}

// FleetOutcome is one build's fleet run.
type FleetOutcome struct {
	Config  FleetConfig      `json:"config"`
	Tenants []*TenantOutcome `json:"tenants"`
	// EvictedBy is the interference matrix, normalized to exactly
	// (len(Tenants)+1)²: [i][j] counts pages owned by tenant j-1 that
	// tenant i-1's faults evicted (row 0: external reclaim pressure,
	// column 0: untenanted files — always zero here, every file is owned).
	EvictedBy      [][]int64 `json:"evicted_by"`
	TotalEvictions int64     `json:"total_evictions"`
	// Whole-OS totals, the right-hand side of the partition contracts:
	// per-tenant counters must sum to these exactly.
	TotalFaults      int64 `json:"total_faults"`
	TotalMajorFaults int64 `json:"total_major_faults"`
	TotalRefaults    int64 `json:"total_refaults"`
	TotalIONanos     int64 `json:"total_io_nanos"`
	ResidentPages    int   `json:"resident_pages"`
	// Requests is the bounded per-request trace (streams are tenants);
	// nil unless FleetConfig.RecordRequests. Report is the obs snapshot
	// (per-tenant latency histograms and burst timelines); nil unless the
	// harness observes.
	Requests *obs.RequestTrace `json:"requests,omitempty"`
	Report   *obs.Snapshot     `json:"report,omitempty"`
}

// FleetReport converts the outcome into the serializable fleet document
// (obs.FleetReport), deep-copying the matrix so the document and the
// outcome never alias.
func (fo *FleetOutcome) FleetReport() *obs.FleetReport {
	rep := &obs.FleetReport{
		Schema:         obs.FleetSchema,
		Bursts:         fo.Config.Bursts,
		BurstSize:      fo.Config.BurstSize,
		CacheBudget:    fo.Config.CacheBudget,
		PressurePct:    fo.Config.PressurePct,
		Policy:         fo.Config.Policy.String(),
		Targets:        obs.DefaultSLOTargets(),
		EvictedBy:      make([][]int64, len(fo.EvictedBy)),
		TotalEvictions: fo.TotalEvictions,
	}
	for i, row := range fo.EvictedBy {
		rep.EvictedBy[i] = append([]int64(nil), row...)
	}
	for i, tn := range fo.Tenants {
		ft := obs.FleetTenant{
			Tenant: i, Workload: tn.Spec.Workload, Strategy: tn.Spec.Strategy,
			QuotaPages:        tn.QuotaPages,
			StartupNanos:      tn.StartupNanos,
			WarmMeanNanos:     tn.WarmMeanNanos,
			WarmP99Nanos:      tn.WarmP99Nanos,
			Faults:            tn.Counters.Faults,
			MajorFaults:       tn.Counters.MajorFaults,
			Refaults:          tn.Counters.Refaults,
			IONanos:           tn.Counters.IONanos,
			EvictedPages:      tn.EvictedPages,
			ResidentPages:     tn.ResidentPages,
			Attainment:        tn.Attainment,
			SoloWarmMeanNanos: tn.SoloWarmMeanNanos,
			SoloRefaults:      tn.SoloRefaults,
			IsolationLatency:  tn.IsolationLatency,
			IsolationRefault:  tn.IsolationRefault,
		}
		for b, bm := range tn.Bursts {
			fb := obs.FleetBurst{
				Burst: b, Requests: bm.Requests,
				MeanNanos: bm.MeanNanos, P99Nanos: bm.P99Nanos,
				MajorFaults: bm.MajorFaults, Refaults: bm.Refaults,
				EvictedPages: bm.EvictedPages,
			}
			if b < len(tn.Resident) {
				fb.ResidentPages = tn.Resident[b]
			}
			ft.Timeline = append(ft.Timeline, fb)
		}
		rep.Tenants = append(rep.Tenants, ft)
	}
	return rep
}

// MeasureFleet runs the fleet scenario over every build seed and returns
// one outcome per build. Results are memoized per canonical config; the
// tenants' images and solo baselines are shared with MeasureServe, so a
// fleet sweep rebuilds nothing a serve sweep already built.
func (h *Harness) MeasureFleet(fcfg FleetConfig) ([]*FleetOutcome, error) {
	fcfg = fcfg.withDefaults()
	if err := fcfg.validate(); err != nil {
		return nil, err
	}
	key := fcfg.key()
	if o := h.cachedFleet(key); o != nil {
		return o, nil
	}
	err := h.once("fleet\x00"+key, func() error {
		if h.cachedFleet(key) != nil {
			return nil
		}
		out, err := h.measureFleet(fcfg)
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.fleetCache[key] = out
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h.cachedFleet(key), nil
}

func (h *Harness) cachedFleet(key string) []*FleetOutcome {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fleetCache[key]
}

// measureFleet resolves the tenants, measures every tenant's solo
// baseline first (memoized — this also warms the serve-image cache the
// fleet runs map from), then fans the fleet builds out across the worker
// pool. The outcome slice is indexed by build: bit-identical results for
// every worker count.
func (h *Harness) measureFleet(fcfg FleetConfig) ([]*FleetOutcome, error) {
	ws := make([]workloads.Workload, len(fcfg.Tenants))
	for i, t := range fcfg.Tenants {
		w, err := workloads.ByName(t.Workload)
		if err != nil {
			return nil, fmt.Errorf("eval: fleet tenant %d: %w", i, err)
		}
		if w.Serve == nil {
			return nil, fmt.Errorf("eval: fleet tenant %s has no serve spec", t.Workload)
		}
		ws[i] = w
	}
	scfg := fcfg.serveConfig()
	solo := make([][]*ServeOutcome, len(fcfg.Tenants))
	for i, t := range fcfg.Tenants {
		so, err := h.MeasureServe(ws[i], t.Strategy, scfg)
		if err != nil {
			return nil, err
		}
		solo[i] = so
	}
	out := make([]*FleetOutcome, h.Cfg.Builds)
	err := h.forEach(h.Cfg.Builds, func(bld int) error {
		h.sched.buildTasks.Add(1)
		imgs := make([]*image.Image, len(fcfg.Tenants))
		for i, t := range fcfg.Tenants {
			img, err := h.serveImage(ws[i], t.Strategy, bld)
			if err != nil {
				return err
			}
			imgs[i] = img
		}
		o, err := h.fleetRun(imgs, ws, fcfg)
		if err != nil {
			return err
		}
		for i, tn := range o.Tenants {
			s := solo[i][bld]
			tn.SoloWarmMeanNanos = s.WarmMeanNanos
			tn.SoloRefaults = s.RefaultPages
			if s.WarmMeanNanos > 0 {
				tn.IsolationLatency = tn.WarmMeanNanos / s.WarmMeanNanos
			}
			tn.IsolationRefault = float64(1+tn.RefaultPages) / float64(1+s.RefaultPages)
		}
		out[bld] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fleetRun executes one fleet scenario: sequential cold startups (in
// tenant order — later startups already press on earlier tenants' pages),
// then the request bursts, every burst the union of all tenants'
// BurstSize requests drained by the single simulated CPU in the seeded
// pickStream interleave. The fleet clock is the sum of every tenant's CPU
// and fault-I/O time — for one tenant exactly the serve clock, so a
// single-tenant fleet is bit-identical to serveRun.
func (h *Harness) fleetRun(imgs []*image.Image, ws []workloads.Workload, fcfg FleetConfig) (*FleetOutcome, error) {
	n := len(imgs)
	o := h.newOS()
	o.CacheBudget = fcfg.CacheBudget
	o.Policy = fcfg.Policy
	if h.Cfg.Observe {
		o.Obs = obs.NewRegistry()
	}
	procs := make([]*image.Process, n)
	meths := make([]*ir.Method, n)
	files := make([]*osim.File, n)
	closeAll := func() {
		for _, p := range procs {
			if p != nil {
				p.Close()
			}
		}
	}
	startup := make([]float64, n)
	for i := 0; i < n; i++ {
		w := ws[i]
		cls := imgs[i].Program.Class(w.Serve.DispatchClass)
		if cls == nil {
			closeAll()
			return nil, fmt.Errorf("eval: fleet %s: dispatch class %s missing", w.Name, w.Serve.DispatchClass)
		}
		meth := cls.LookupMethod(w.Serve.DispatchMethod)
		if meth == nil || !meth.Static || meth.NParams != 1 {
			closeAll()
			return nil, fmt.Errorf("eval: fleet %s: dispatch method %s.%s must be static with one parameter",
				w.Name, w.Serve.DispatchClass, w.Serve.DispatchMethod)
		}
		meths[i] = meth
		// Ownership must be set at file-registration time (NewProcess
		// touches pages while constructing the mapping), so the tenant id
		// is installed as the OS default around process construction.
		o.DefaultTenant = i
		if q := fcfg.quotaPages(i); q > 0 {
			o.SetTenantQuota(i, q)
		}
		proc, err := imgs[i].NewProcess(o, vm.Hooks{})
		if err != nil {
			o.DefaultTenant = -1
			closeAll()
			return nil, err
		}
		f, err := imgs[i].File(o)
		o.DefaultTenant = -1
		if err != nil {
			proc.Close()
			closeAll()
			return nil, err
		}
		procs[i] = proc
		files[i] = f
		proc.Machine.StopOnRespond = true
		if err := proc.Run(w.Args...); err != nil {
			closeAll()
			return nil, fmt.Errorf("eval: fleet startup of %s: %w", w.Name, err)
		}
		st := proc.Stats()
		if st.TimeToResponse <= 0 {
			closeAll()
			return nil, fmt.Errorf("eval: fleet tenant %s never responded during startup", w.Name)
		}
		startup[i] = float64(st.TimeToResponse.Nanoseconds())
	}

	var latHists []*obs.Histogram
	var burstTls []*obs.Timeline
	if o.Obs.Enabled() {
		latHists = make([]*obs.Histogram, n)
		burstTls = make([]*obs.Timeline, n)
		for i := range latHists {
			latHists[i] = o.Obs.Histogram(
				fmt.Sprintf("fleet.tenant%02d.latency_nanos", i), obs.LatencyBuckets())
			burstTls[i] = o.Obs.Timeline(fmt.Sprintf("fleet.tenant%02d.burst", i),
				"requests", "p50_nanos", "p99_nanos", "major", "minor",
				"refaults", "evicted", "resident")
		}
	}
	var trace *obs.RequestTrace
	if fcfg.RecordRequests {
		trace = obs.NewRequestTrace(n, fcfg.Bursts*fcfg.BurstSize*n)
		names := make([]string, n)
		layouts := make([]string, n)
		for i, t := range fcfg.Tenants {
			names[i] = t.Workload
			layouts[i] = t.Strategy
		}
		trace.Workload = strings.Join(names, "+")
		trace.Layout = strings.Join(layouts, "+")
	}
	// The fleet clock: one simulated CPU serving all tenants back to back,
	// so elapsed server time is every machine's CPU nanos plus all the
	// fault I/O any of them waited on.
	clock := func() float64 {
		t := 0.0
		for _, p := range procs {
			t += p.Machine.SimTimeNanos() + float64(p.Mapping.IOTime.Nanoseconds())
		}
		return t
	}
	scfg := fcfg.serveConfig() // the route/interleave helpers' knob view

	warm := make([][]float64, n)
	all := make([][]float64, n)
	bursts := make([][]BurstMeasure, n)
	resident := make([][]int64, n)
	reqByTenant := make([]int, n)
	reqID := 0
	for b := 0; b < fcfg.Bursts; b++ {
		evict0 := make([]int64, n)
		faults0 := make([]int64, n)
		major0 := make([]int64, n)
		refault0 := make([]int64, n)
		io0 := make([]int64, n)
		for i, f := range files {
			evict0[i] = f.EvictedPages()
		}
		if b > 0 && fcfg.PressurePct > 0 {
			o.ReclaimFraction(fcfg.PressurePct)
			trace.Mark(obs.MarkReclaim, b, clock())
		}
		trace.Mark(obs.MarkBurst, b, clock())
		for i, p := range procs {
			faults0[i] = p.Mapping.Faults
			major0[i] = p.Mapping.MajorFaults
			refault0[i] = p.Mapping.Refaults
			io0[i] = p.Mapping.IOTime.Nanoseconds()
		}
		// Closed-loop clients, one per tenant: each submits its first
		// request at the burst start and the next the instant the previous
		// response returns; the single CPU drains the union in the seeded
		// interleave, and arrival-to-service gaps are queue wait.
		burstStart := clock()
		arrival := make([]float64, n)
		remaining := make([]int, n)
		for i := range remaining {
			arrival[i] = burstStart
			remaining[i] = fcfg.BurstSize
		}
		lats := make([][]float64, n)
		queueSum := make([]float64, n)
		queueMax := make([]float64, n)
		total := n * fcfg.BurstSize
		for t := 0; t < total; t++ {
			i := pickStream(scfg, b, t, remaining)
			remaining[i]--
			k := reqByTenant[i]
			reqByTenant[i]++
			route := routeForStream(i, k, scfg, ws[i].Serve.Routes)
			proc := procs[i]
			serviceStart := clock()
			rFaults0 := proc.Mapping.Faults
			rMajor0 := proc.Mapping.MajorFaults
			rRefault0 := proc.Mapping.Refaults
			rIO0 := proc.Mapping.IOTime
			steps0 := proc.Machine.Steps
			if _, err := proc.Machine.RunMethod(meths[i], heap.IntVal(int64(route))); err != nil {
				closeAll()
				return nil, fmt.Errorf("eval: fleet %s burst %d request %d: %w", ws[i].Name, b, t, err)
			}
			end := clock()
			service := end - serviceStart
			queue := serviceStart - arrival[i]
			lat := queue + service
			arrival[i] = end
			queueSum[i] += queue
			if queue > queueMax[i] {
				queueMax[i] = queue
			}
			lats[i] = append(lats[i], lat)
			if latHists != nil {
				latHists[i].Observe(lat)
			}
			trace.Record(obs.RequestRecord{
				ID: reqID, Stream: i, Burst: b, Route: route,
				StartNanos: serviceStart - queue, QueueNanos: queue,
				ServiceNanos: service, LatencyNanos: lat,
				Steps:       proc.Machine.Steps - steps0,
				Faults:      proc.Mapping.Faults - rFaults0,
				MajorFaults: proc.Mapping.MajorFaults - rMajor0,
				Refaults:    proc.Mapping.Refaults - rRefault0,
				IONanos:     (proc.Mapping.IOTime - rIO0).Nanoseconds(),
			})
			reqID++
		}
		for i, p := range procs {
			sort.Float64s(lats[i])
			major := p.Mapping.MajorFaults - major0[i]
			bm := BurstMeasure{
				Burst:         b,
				Requests:      len(lats[i]),
				P50Nanos:      obs.QuantileExact(lats[i], 0.50),
				P90Nanos:      obs.QuantileExact(lats[i], 0.90),
				P99Nanos:      obs.QuantileExact(lats[i], 0.99),
				MeanNanos:     Mean(lats[i]),
				MajorFaults:   major,
				MinorFaults:   (p.Mapping.Faults - faults0[i]) - major,
				Refaults:      p.Mapping.Refaults - refault0[i],
				IONanos:       p.Mapping.IOTime.Nanoseconds() - io0[i],
				EvictedPages:  files[i].EvictedPages() - evict0[i],
				ResidentText:  files[i].ResidentInSection(image.SectionText),
				ResidentHeap:  files[i].ResidentInSection(image.SectionHeap),
				MaxQueueNanos: queueMax[i],
			}
			if len(lats[i]) > 0 {
				bm.MeanQueueNanos = queueSum[i] / float64(len(lats[i]))
			}
			bursts[i] = append(bursts[i], bm)
			resident[i] = append(resident[i], int64(o.TenantResidentPages(i)))
			if burstTls != nil {
				burstTls[i].Record(fmt.Sprintf("burst-%d", b),
					int64(bm.Requests), int64(bm.P50Nanos), int64(bm.P99Nanos),
					bm.MajorFaults, bm.MinorFaults, bm.Refaults, bm.EvictedPages,
					int64(o.TenantResidentPages(i)))
			}
			all[i] = append(all[i], lats[i]...)
			if b >= 1 {
				warm[i] = append(warm[i], lats[i]...)
			}
		}
	}

	fo := &FleetOutcome{Config: fcfg}
	counters := o.TenantCounters()
	for i := range procs {
		w := warm[i]
		if len(w) == 0 {
			// Single-burst configs: the cold burst is all there is.
			w = all[i]
		}
		sort.Float64s(w)
		tn := &TenantOutcome{
			Spec:          fcfg.Tenants[i],
			Tenant:        i,
			QuotaPages:    fcfg.quotaPages(i),
			StartupNanos:  startup[i],
			Bursts:        bursts[i],
			Resident:      resident[i],
			WarmMeanNanos: Mean(w),
			WarmP99Nanos:  obs.QuantileExact(w, 0.99),
			EvictedPages:  o.TenantEvictions(i),
			RefaultPages:  o.TenantRefaults(i),
			ResidentPages: int64(o.TenantResidentPages(i)),
			Attainment:    obs.Attainment(w, obs.DefaultSLOTargets()),
		}
		if i < len(counters) {
			tn.Counters = counters[i]
		}
		fo.Tenants = append(fo.Tenants, tn)
	}
	fo.EvictedBy = normalizeMatrix(o.InterferenceMatrix(), n)
	for _, row := range fo.EvictedBy {
		for _, v := range row {
			fo.TotalEvictions += v
		}
	}
	for _, p := range procs {
		fo.TotalFaults += p.Mapping.Faults
		fo.TotalMajorFaults += p.Mapping.MajorFaults
		fo.TotalRefaults += p.Mapping.Refaults
		fo.TotalIONanos += p.Mapping.IOTime.Nanoseconds()
	}
	fo.ResidentPages = o.ResidentPages()
	fo.Requests = trace
	closeAll()
	if o.Obs != nil {
		fo.Report = o.Obs.Snapshot()
	}
	return fo, nil
}

// normalizeMatrix pads the lazily-grown osim interference matrix to
// exactly (tenants+1)² — the shape the fleet codec validates.
func normalizeMatrix(mat [][]int64, tenants int) [][]int64 {
	out := make([][]int64, tenants+1)
	for i := range out {
		out[i] = make([]int64, tenants+1)
		if i < len(mat) {
			copy(out[i], mat[i])
		}
	}
	return out
}
