package eval

// Cross-strategy layout scorecards: the affinity graph is recorded once on
// the baseline serve run, then scored against every candidate strategy's
// layout by symbol name — the static counterpart of MeasureServe whose
// predicted refault ordering the acceptance test holds against the
// measured one.

import (
	"fmt"

	"nimage/internal/obs/affinity"
	"nimage/internal/workloads"
)

// AffinityScorecards records (or reuses, via the serve memoization) the
// baseline serve run of the workload, merges the per-build affinity
// graphs, and scores the baseline and every strategy layout against the
// merged graph under the config's pressure. The returned cards are in
// order: baseline first, then the strategies; RefaultFactors is filled
// relative to the baseline card. Nil strategies mean ServeStrategies().
//
// The harness must run with Config.Observe or Config.TrackAffinity —
// otherwise the serve outcomes carry no graphs to score.
func (h *Harness) AffinityScorecards(w workloads.Workload, scfg ServeConfig, strategies []string) (*affinity.Graph, []*affinity.Scorecard, error) {
	scfg = scfg.withDefaults()
	if strategies == nil {
		strategies = ServeStrategies()
	}
	outs, err := h.MeasureServe(w, LayoutBaseline, scfg)
	if err != nil {
		return nil, nil, err
	}
	var graphs []*affinity.Graph
	for _, o := range outs {
		if o.Affinity != nil {
			graphs = append(graphs, o.Affinity)
		}
	}
	if len(graphs) == 0 {
		return nil, nil, fmt.Errorf("eval: %s: no affinity graphs recorded (configure the harness with Observe or TrackAffinity)", w.Name)
	}
	g := affinity.Merge(graphs...)

	cards := make([]*affinity.Scorecard, 0, len(strategies)+1)
	for _, s := range append([]string{LayoutBaseline}, strategies...) {
		// Build 0's layout stands in for the strategy: the build-seed
		// perturbation moves little, and every card uses the same build.
		img, err := h.serveImage(w, s, 0)
		if err != nil {
			return nil, nil, err
		}
		card, err := affinity.Score(g,
			affinity.NewPlacement(img.AttributionIndex().Symbols()),
			s, scfg.PressurePct, scfg.CacheBudget)
		if err != nil {
			return nil, nil, err
		}
		cards = append(cards, card)
	}
	affinity.RefaultFactors(cards[0], cards)
	return g, cards, nil
}
