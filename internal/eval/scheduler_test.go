package eval

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"nimage/internal/core"
	"nimage/internal/workloads"
)

func TestWorkersDefault(t *testing.T) {
	h := NewHarness(DefaultConfig())
	if got := h.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	cfg := DefaultConfig()
	cfg.Workers = 3
	if got := NewHarness(cfg).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}

// TestParallelDeterminism is the scheduler's core contract: the full figure
// pipeline produces byte-identical CSV output regardless of worker count.
func TestParallelDeterminism(t *testing.T) {
	var ws []workloads.Workload
	for _, n := range []string{"Sieve", "Towers"} {
		w, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	run := func(workers int) *Table {
		cfg := DefaultConfig()
		cfg.Builds = 2
		cfg.Iterations = 1
		cfg.Workers = workers
		h := NewHarness(cfg)
		tbl, err := h.pageFaultTable("determinism", ws)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	serial := run(1)
	parallel := run(8)
	if s, p := serial.CSV(), parallel.CSV(); s != p {
		t.Errorf("CSV differs between -workers 1 and -workers 8:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
	for _, s := range Strategies() {
		a, b := serial.Get(GeoMeanRow, s), parallel.Get(GeoMeanRow, s)
		if a == nil || b == nil {
			t.Fatalf("missing geomean for %s", s)
		}
		if a.Factor != b.Factor {
			t.Errorf("geomean %s: %v (serial) != %v (parallel)", s, a.Factor, b.Factor)
		}
	}
}

// TestConcurrentHarnessStress hammers one harness from many goroutines
// (meaningful under -race): all callers must get the identical memoized
// outcome, and singleflight must have run each measurement exactly once.
func TestConcurrentHarnessStress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Workers = 4
	h := NewHarness(cfg)
	w, err := workloads.ByName("Sieve")
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	bases := make([]*BaselineOutcome, callers)
	strats := make([]*StrategyOutcome, callers)
	errs := make([]error, 2*callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bases[i], errs[2*i] = h.MeasureBaselineOutcome(w)
			strats[i], errs[2*i+1] = h.MeasureStrategy(w, core.StrategyCU)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < callers; i++ {
		if bases[i] != bases[0] {
			t.Fatal("concurrent callers got distinct baseline outcomes")
		}
		if strats[i] != strats[0] {
			t.Fatal("concurrent callers got distinct strategy outcomes")
		}
	}
	// One baseline build + one strategy build — duplicates would mean the
	// memoization raced.
	if got := h.sched.buildTasks.Load(); got != 2 {
		t.Errorf("executed %d build tasks, want 2", got)
	}
	if h.WorkDuration() <= 0 {
		t.Error("WorkDuration not accounted")
	}
}

// TestSingleflightCollapsesCalls exercises once() directly: overlapping
// callers of one key share a single execution and its error.
func TestSingleflightCollapsesCalls(t *testing.T) {
	h := NewHarness(DefaultConfig())
	var calls int
	release := make(chan struct{})
	entered := make(chan struct{})
	failure := errors.New("boom")

	go func() {
		h.once("k", func() error {
			calls++
			close(entered)
			<-release
			return failure
		})
	}()
	<-entered

	const waiters = 8
	errs := make([]error, waiters)
	var wg, ready sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			ready.Done()
			errs[i] = h.once("k", func() error {
				t.Error("duplicate execution while key in flight")
				return nil
			})
		}(i)
	}
	// The key stays in flight until release; give the waiters time to block
	// on it before letting the first caller finish.
	ready.Wait()
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != failure {
			t.Errorf("waiter %d got %v, want shared error", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	// After completion the key is retryable (failures are not cached).
	if err := h.once("k", func() error { return nil }); err != nil {
		t.Errorf("retry after failure: %v", err)
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	h := NewHarness(cfg)
	for trial := 0; trial < 10; trial++ {
		err := h.forEach(8, func(i int) error {
			if i == 3 || i == 6 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("trial %d: err = %v, want deterministic lowest-index error", trial, err)
		}
	}
}

// TestAccessedFractionGuard covers the NaN regression: an image with an
// empty snapshot must yield 0, not 0/0, so the measures stay marshalable.
func TestAccessedFractionGuard(t *testing.T) {
	if got := accessedFraction(0, 0); got != 0 {
		t.Errorf("accessedFraction(0,0) = %v", got)
	}
	if got := accessedFraction(5, 0); got != 0 {
		t.Errorf("accessedFraction(5,0) = %v", got)
	}
	if got := accessedFraction(1, 4); got != 0.25 {
		t.Errorf("accessedFraction(1,4) = %v", got)
	}
	m := RunMeasure{AccessedFrac: accessedFraction(3, 0)}
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("measure with guarded fraction must marshal: %v", err)
	}
}
