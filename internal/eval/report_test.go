package eval

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nimage/internal/core"
	"nimage/internal/workloads"
)

// reportConfig keeps the observed-report test cheap: one build, one
// iteration.
func reportConfig() Config {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = true
	return cfg
}

// TestReportObserved runs an observed harness over one AWFY workload and
// one microservice and checks that the consolidated report carries the
// acceptance-relevant records: pipeline stage spans, per-section fault
// timelines, heap match breakdowns, and profiler dump statistics.
func TestReportObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	h := NewHarness(reportConfig())
	var ws []workloads.Workload
	for _, name := range []string{"Bounce", "micronaut"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	rep, err := h.Report(ws, []string{core.StrategyCU, core.StrategyHeapPath})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	// 2 workloads x (baseline + 2 strategies).
	if len(rep.Entries) != 6 {
		t.Fatalf("entries = %d, want 6", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if len(e.Pipeline) != 1 || len(e.Runs) != 1 || len(e.Measures) != 1 {
			t.Fatalf("%s/%s: pipeline=%d runs=%d measures=%d, want 1 each",
				e.Workload, e.Strategy, len(e.Pipeline), len(e.Runs), len(e.Measures))
		}
		// Every build must have timed pipeline stages.
		spans := 0
		for _, sp := range e.Pipeline[0].Spans {
			if strings.Contains(sp.Name, "reachability") || strings.Contains(sp.Name, "snapshot_heap") {
				spans++
			}
		}
		if spans == 0 {
			t.Errorf("%s/%s: no build stage spans in pipeline snapshot", e.Workload, e.Strategy)
		}
		// Every cold run must have a per-section fault timeline.
		tl := e.Runs[0].Timeline("osim.faults")
		if tl == nil || len(tl.Events) == 0 {
			t.Errorf("%s/%s: missing osim.faults timeline", e.Workload, e.Strategy)
			continue
		}
		seen := map[string]bool{}
		for _, ev := range tl.Events {
			seen[ev.Label] = true
		}
		if !seen[".text"] || !seen[".svm_heap"] {
			t.Errorf("%s/%s: fault timeline lacks sections: %v", e.Workload, e.Strategy, seen)
		}
		if e.Measures[0].Report != nil {
			t.Errorf("%s/%s: scalar measures still embed the snapshot", e.Workload, e.Strategy)
		}
		if e.Measures[0].Attrib != nil {
			t.Errorf("%s/%s: scalar measures still embed the attribution table", e.Workload, e.Strategy)
		}
		// v2: every entry carries the merged fault attribution, labeled with
		// its layout, and its section totals reconcile with the timeline.
		if e.Attribution == nil {
			t.Fatalf("%s/%s: missing attribution table", e.Workload, e.Strategy)
		}
		if len(e.Attribution.Symbols) == 0 || e.Attribution.TotalFaults() == 0 {
			t.Errorf("%s/%s: empty attribution table", e.Workload, e.Strategy)
		}
		wantLayout := e.Strategy
		if wantLayout == "" {
			wantLayout = LayoutBaseline
		}
		if e.Attribution.Layout != wantLayout {
			t.Errorf("%s/%s: attribution layout = %q, want %q",
				e.Workload, e.Strategy, e.Attribution.Layout, wantLayout)
		}
		if int64(len(tl.Events)) != e.Attribution.TotalFaults() {
			t.Errorf("%s/%s: %d timeline events vs %d attributed faults",
				e.Workload, e.Strategy, len(tl.Events), e.Attribution.TotalFaults())
		}
		switch e.Strategy {
		case "":
			if e.HeapMatch != nil {
				t.Errorf("%s baseline has a heap match breakdown", e.Workload)
			}
		case core.StrategyCU:
			// Pure code strategy: profiler stats but no heap profile.
			if e.Pipeline[0].Counter("profiler.events."+"cu") == 0 {
				t.Errorf("%s/cu: no CU probe events recorded", e.Workload)
			}
		case core.StrategyHeapPath:
			if e.HeapMatch == nil {
				t.Fatalf("%s/heap path: missing match breakdown", e.Workload)
			}
			hm := e.HeapMatch
			if hm.MatchedObjects+hm.UnmatchedObjects == 0 {
				t.Errorf("%s/heap path: empty breakdown %+v", e.Workload, hm)
			}
			if hm.Strategy != core.StrategyHeapPath {
				t.Errorf("%s: breakdown strategy = %q", e.Workload, hm.Strategy)
			}
			if e.Pipeline[0].Counter("profiler.paths") == 0 {
				t.Errorf("%s/heap path: no path records counted", e.Workload)
			}
		}
	}
	// The microservice profiling run uses memory-mapped buffers, whose
	// durable bytes must be reported.
	var sawMmapBytes bool
	for _, e := range rep.Entries {
		if e.Service && e.Strategy != "" && len(e.Pipeline) > 0 {
			if e.Pipeline[0].Gauge("profiler.bytes_written") > 0 {
				sawMmapBytes = true
			}
		}
	}
	if !sawMmapBytes {
		t.Error("no profiler.bytes_written recorded for microservice pipelines")
	}

	// The document must be valid, round-trippable JSON.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if len(back.Entries) != len(rep.Entries) {
		t.Errorf("round trip lost entries: %d != %d", len(back.Entries), len(rep.Entries))
	}
}

// TestHarnessDetachedHasNoReports pins the default: without Observe, no
// snapshots are allocated or attached anywhere.
func TestHarnessDetachedHasNoReports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w, err := workloads.ByName("Bounce")
	if err != nil {
		t.Fatal(err)
	}
	base, err := h.MeasureBaselineOutcome(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Pipeline) != 0 {
		t.Error("detached harness produced pipeline snapshots")
	}
	for _, m := range base.Measures {
		if m.Report != nil {
			t.Error("detached harness attached a run report")
		}
		if m.Attrib != nil {
			t.Error("detached harness attached an attribution table")
		}
	}
}
