package eval

import (
	"math"
	"strings"
	"testing"

	"nimage/internal/core"
	"nimage/internal/osim"
	"nimage/internal/workloads"
)

func TestStatsFunctions(t *testing.T) {
	xs := []float64{2, 4, 8}
	if got := Mean(xs); got != 14.0/3 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean(xs); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %v", got)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 || StdDev([]float64{1}) != 0 || CI95([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with nonpositive input")
	}
	sd := StdDev([]float64{1, 3})
	if math.Abs(sd-math.Sqrt2) > 1e-9 {
		t.Errorf("StdDev = %v", sd)
	}
	// A zero numerator with spread must still report the denominator-scaled
	// uncertainty, not collapse to "no interval at all".
	if got := RatioCI(0, 1, 1, 1); got != 1 {
		t.Errorf("RatioCI zero numerator = %v, want 1", got)
	}
	ci := RatioCI(10, 1, 5, 0.5)
	if ci <= 0 {
		t.Errorf("RatioCI = %v", ci)
	}
}

func TestStatsDegenerateInputs(t *testing.T) {
	// Empty and singleton inputs.
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if Mean([]float64{7}) != 7 {
		t.Error("Mean singleton")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil)")
	}
	if math.Abs(GeoMean([]float64{3})-3) > 1e-9 {
		t.Error("GeoMean singleton")
	}
	if GeoMean([]float64{0, 2}) != 0 {
		t.Error("GeoMean with zero element")
	}
	if CI95(nil) != 0 || CI95([]float64{5}) != 0 {
		t.Error("CI95 needs n >= 2")
	}
	if ci := CI95([]float64{1, 1, 1}); ci != 0 {
		t.Errorf("CI95 of constant samples = %v", ci)
	}
	// Zero-valued sides of a ratio.
	if !math.IsNaN(RatioCI(1, 1, 0, 1)) {
		t.Error("RatioCI zero denominator must be NaN")
	}
	if !math.IsNaN(RatioCI(0, 0, 0, 0)) {
		t.Error("RatioCI all-zero must be NaN")
	}
	if RatioCI(0, 0, 4, 0) != 0 {
		t.Error("RatioCI exact zeros with nonzero denominator")
	}
}

func TestFactorCellDegenerate(t *testing.T) {
	// An optimized mean of zero cannot yield a finite improvement factor:
	// the cell must be explicitly degenerate, never Factor == 0 ("infinitely
	// worse") as before.
	c := FactorCell("w", "s", []float64{4, 4}, []float64{0, 0})
	if !c.Degenerate {
		t.Fatal("zero optimized mean must mark the cell degenerate")
	}
	if !math.IsNaN(c.Factor) || !math.IsNaN(c.CI) {
		t.Errorf("degenerate cell carries Factor=%v CI=%v, want NaN", c.Factor, c.CI)
	}
	// A healthy cell stays untouched.
	c = FactorCell("w", "s", []float64{4, 4}, []float64{2, 2})
	if c.Degenerate || c.Factor != 2 {
		t.Errorf("healthy cell: %+v", c)
	}

	// Degenerate cells are excluded from geomeans; an all-degenerate column
	// yields a degenerate geomean instead of a panic or a zero.
	tbl := &Table{Strategies: []string{"a", "b"}, Cells: []Cell{
		{Workload: "w1", Strategy: "a", Factor: 2},
		{Workload: "w1", Strategy: "b", Factor: math.NaN(), Degenerate: true},
		{Workload: "w2", Strategy: "a", Factor: 8},
		{Workload: "w2", Strategy: "b", Factor: math.NaN(), Degenerate: true},
	}}
	tbl.AddGeoMean()
	if g := tbl.Get(GeoMeanRow, "a"); g == nil || math.Abs(g.Factor-4) > 1e-9 || g.Degenerate {
		t.Errorf("geomean a = %+v", g)
	}
	if g := tbl.Get(GeoMeanRow, "b"); g == nil || !g.Degenerate || !math.IsNaN(g.Factor) {
		t.Errorf("geomean b = %+v", g)
	}
	// Degenerate cells render as an explicit marker, not a bar of NaN width.
	if r := tbl.Render(); !strings.Contains(r, "n/a (zero mean)") {
		t.Errorf("render lacks degenerate marker:\n%s", r)
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := &Table{
		Title:      "t",
		Metric:     "m",
		Strategies: []string{"a", "b"},
		Cells: []Cell{
			{Workload: "w2", Strategy: "b", Factor: 2},
			{Workload: "w1", Strategy: "a", Factor: 4},
			{Workload: "w1", Strategy: "b", Factor: 1},
			{Workload: "w2", Strategy: "a", Factor: 1},
		},
	}
	tbl.AddGeoMean()
	tbl.SortCells()
	if got := tbl.Get(GeoMeanRow, "a").Factor; math.Abs(got-2) > 1e-9 {
		t.Errorf("geomean a = %v", got)
	}
	ws := tbl.Workloads()
	if len(ws) != 2 || ws[0] != "w1" || ws[1] != "w2" {
		t.Errorf("Workloads = %v", ws)
	}
	// Sorted: w1 rows first, geomean last.
	if tbl.Cells[0].Workload != "w1" || tbl.Cells[len(tbl.Cells)-1].Workload != GeoMeanRow {
		t.Error("SortCells order")
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "workload,strategy,factor") || !strings.Contains(csv, "w1,a,4.0000") {
		t.Errorf("CSV:\n%s", csv)
	}
	render := tbl.Render()
	for _, want := range []string{"t (m", "w1", "geomean", "#"} {
		if !strings.Contains(render, want) {
			t.Errorf("Render missing %q:\n%s", want, render)
		}
	}
	if tbl.Get("nope", "a") != nil {
		t.Error("Get of missing cell")
	}
}

// smallConfig keeps harness tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 2
	return cfg
}

func TestHarnessBaselineDeterministicIterations(t *testing.T) {
	h := NewHarness(smallConfig())
	w, err := workloads.ByName("Sieve")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := h.MeasureBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measures = %d", len(ms))
	}
	if ms[0] != ms[1] {
		t.Errorf("iterations of the same build differ: %+v vs %+v", ms[0], ms[1])
	}
	if ms[0].TextFaults == 0 || ms[0].HeapFaults == 0 || ms[0].Time <= 0 {
		t.Errorf("implausible measurement: %+v", ms[0])
	}
	if ms[0].AccessedFrac <= 0 || ms[0].AccessedFrac > 0.5 {
		t.Errorf("accessed fraction = %v", ms[0].AccessedFrac)
	}
}

func TestHarnessMemoization(t *testing.T) {
	h := NewHarness(smallConfig())
	w, err := workloads.ByName("Sieve")
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.MeasureBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.MeasureBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("baseline not memoized")
	}
	s1, err := h.MeasureStrategy(w, core.StrategyCU)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := h.MeasureStrategy(w, core.StrategyCU)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("strategy outcome not memoized")
	}
}

func TestHarnessStrategyImprovesSieve(t *testing.T) {
	h := NewHarness(smallConfig())
	w, err := workloads.ByName("Sieve")
	if err != nil {
		t.Fatal(err)
	}
	base, err := h.MeasureBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := h.MeasureStrategy(w, core.StrategyCombined)
	if err != nil {
		t.Fatal(err)
	}
	var bs, os []float64
	for _, m := range base {
		bs = append(bs, metricOf(core.StrategyCombined, m))
	}
	for _, m := range opt.Measures {
		os = append(os, metricOf(core.StrategyCombined, m))
	}
	c := FactorCell(w.Name, core.StrategyCombined, bs, os)
	if c.Factor <= 1.1 {
		t.Errorf("combined factor = %v, want > 1.1", c.Factor)
	}
	if opt.CodeMatched == 0 || opt.HeapMatched == 0 {
		t.Errorf("matching stats: code=%d heap=%d", opt.CodeMatched, opt.HeapMatched)
	}
	if len(opt.Profiling) == 0 || opt.Profiling[0].Time <= 0 {
		t.Errorf("profiling runs missing: %+v", opt.Profiling)
	}
}

func TestHarnessServiceWorkload(t *testing.T) {
	h := NewHarness(smallConfig())
	w, err := workloads.ByName("quarkus")
	if err != nil {
		t.Fatal(err)
	}
	base, err := h.MeasureBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	if base[0].Time <= 0 {
		t.Error("no time-to-first-response")
	}
	opt, err := h.MeasureStrategy(w, core.StrategyCU)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Measures) == 0 {
		t.Fatal("no optimized measures")
	}
	// Services profile with memory-mapped buffers; traces must survive.
	if opt.Profiling[0].TraceWords == 0 {
		t.Error("service trace lost despite memory-mapped mode")
	}
}

func TestMetricOfSelection(t *testing.T) {
	m := RunMeasure{TextFaults: 10, HeapFaults: 4}
	if metricOf(core.StrategyCU, m) != 10 || metricOf(core.StrategyMethod, m) != 10 {
		t.Error("code strategies must use text faults")
	}
	if metricOf(core.StrategyHeapPath, m) != 4 || metricOf(core.StrategyIncremental, m) != 4 {
		t.Error("heap strategies must use heap faults")
	}
	if metricOf(core.StrategyCombined, m) != 14 {
		t.Error("combined must use the sum")
	}
}

func TestFigure6States(t *testing.T) {
	h := NewHarness(smallConfig())
	regular, optimized, err := h.Figure6("Bounce")
	if err != nil {
		t.Fatal(err)
	}
	if len(regular) == 0 || len(regular) != len(optimized) {
		t.Fatalf("grids: %d vs %d", len(regular), len(optimized))
	}
	faults := func(states []osim.PageState) int {
		n := 0
		for _, s := range states {
			if s == osim.PageFaulted {
				n++
			}
		}
		return n
	}
	// The optimized layout must fault strictly fewer .text pages.
	if fo, fr := faults(optimized), faults(regular); fo >= fr {
		t.Errorf("cu layout faults %d >= regular %d", fo, fr)
	}
}

func TestCompilerInfo(t *testing.T) {
	h := NewHarness(smallConfig())
	w, _ := workloads.ByName("Sieve")
	info, err := h.CompilerInfo([]workloads.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "Sieve") || !strings.Contains(info, "workload") {
		t.Errorf("info:\n%s", info)
	}
}

func TestAccessedFraction(t *testing.T) {
	h := NewHarness(smallConfig())
	w, _ := workloads.ByName("Towers")
	fr, err := h.AccessedFraction([]workloads.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if f := fr["Towers"]; f <= 0.01 || f > 0.5 {
		t.Errorf("accessed fraction = %v", f)
	}
}
