package eval

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"nimage/internal/core"
	"nimage/internal/workloads"
)

func serveTestConfig() ServeConfig {
	return ServeConfig{
		Bursts: 3, BurstSize: 8, PressurePct: 60,
		HotPct: 80, HotRoutes: 3, Seed: 7,
	}
}

func serveWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMeasureServeBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	scfg := serveTestConfig()
	outs, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1 per build", len(outs))
	}
	o := outs[0]
	if o.Strategy != LayoutBaseline {
		t.Errorf("strategy = %q, want %q", o.Strategy, LayoutBaseline)
	}
	if o.StartupNanos <= 0 {
		t.Errorf("startup nanos = %v", o.StartupNanos)
	}
	if len(o.Bursts) != scfg.Bursts {
		t.Fatalf("got %d bursts, want %d", len(o.Bursts), scfg.Bursts)
	}
	for i, b := range o.Bursts {
		if b.Burst != i || b.Requests != scfg.BurstSize {
			t.Errorf("burst %d: index %d requests %d", i, b.Burst, b.Requests)
		}
		if b.P50Nanos <= 0 || b.P99Nanos < b.P50Nanos || b.P90Nanos < b.P50Nanos {
			t.Errorf("burst %d: quantiles p50=%v p90=%v p99=%v", i, b.P50Nanos, b.P90Nanos, b.P99Nanos)
		}
		if b.MinorFaults < 0 || b.MajorFaults < 0 {
			t.Errorf("burst %d: negative fault counts", i)
		}
		if b.ResidentText <= 0 {
			t.Errorf("burst %d: no resident .text pages", i)
		}
	}
	// The cold burst faults the handlers in.
	if o.Bursts[0].MajorFaults == 0 {
		t.Error("cold burst took no major faults")
	}
	// Inter-burst pressure must actually evict pages.
	if o.EvictedPages == 0 {
		t.Error("no pages evicted despite 60% inter-burst pressure")
	}
	var burstEvicted int64
	for _, b := range o.Bursts {
		burstEvicted += b.EvictedPages
	}
	// Without a cache budget nothing is evicted during startup, so the
	// per-burst deltas must account for every eviction of the run.
	if burstEvicted != o.EvictedPages {
		t.Errorf("per-burst evictions %d != run total %d", burstEvicted, o.EvictedPages)
	}
	if o.WarmMeanNanos <= 0 || o.WarmP99Nanos < o.WarmMeanNanos {
		t.Errorf("warm aggregates mean=%v p99=%v", o.WarmMeanNanos, o.WarmP99Nanos)
	}
}

// TestServeReconciliation is the acceptance contract of the serve
// telemetry: driving a full serve run with attribution attached, the
// eviction and re-fault totals reported by the attribution recorder, the
// osim file counters (surfaced in the outcome) and the per-burst deltas
// must reconcile exactly.
func TestServeReconciliation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = true
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-cache")
	// A tight resident budget forces eviction churn during the bursts:
	// every cold handler fault pushes some other route's pages out, so
	// revisited routes re-fault.
	scfg := ServeConfig{
		Bursts: 3, BurstSize: 8, CacheBudget: 48,
		HotPct: 0, HotRoutes: 1, Seed: 11,
	}
	outs, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if o.EvictedPages == 0 {
		t.Fatal("budget produced no evictions")
	}
	if o.RefaultPages == 0 {
		t.Fatal("budget churn produced no re-faults")
	}
	if o.Attrib == nil {
		t.Fatal("observed run carries no attribution table")
	}
	var attribEvicted, attribRefaults int64
	for _, s := range o.Attrib.Sections {
		attribEvicted += s.Evicted
		attribRefaults += s.Refaults
	}
	if attribEvicted != o.EvictedPages {
		t.Errorf("attribution evictions %d != file total %d", attribEvicted, o.EvictedPages)
	}
	if attribRefaults != o.RefaultPages {
		t.Errorf("attribution refaults %d != file total %d", attribRefaults, o.RefaultPages)
	}
	// Per-burst re-fault deltas never exceed the run total (startup churn
	// accounts for the rest).
	var burstRefaults int64
	for _, b := range o.Bursts {
		burstRefaults += b.Refaults
	}
	if burstRefaults > o.RefaultPages {
		t.Errorf("per-burst refaults %d exceed run total %d", burstRefaults, o.RefaultPages)
	}
	// The obs snapshot carries the burst timeline and latency histogram.
	if o.Report == nil {
		t.Fatal("observed run carries no snapshot")
	}
	foundTl, foundHist := false, false
	for _, tl := range o.Report.Timelines {
		if tl.Name == "serve.burst" {
			foundTl = true
			if len(tl.Events) != scfg.Bursts {
				t.Errorf("burst timeline has %d events, want %d", len(tl.Events), scfg.Bursts)
			}
		}
	}
	for _, hp := range o.Report.Histograms {
		if hp.Name == "serve.latency_nanos" {
			foundHist = true
			if hp.Count != int64(scfg.Bursts*scfg.BurstSize) {
				t.Errorf("latency histogram count %d, want %d", hp.Count, scfg.Bursts*scfg.BurstSize)
			}
			if p99 := hp.Quantile(0.99); p99 <= 0 {
				t.Errorf("latency p99 = %v", p99)
			}
		}
	}
	if !foundTl || !foundHist {
		t.Fatalf("snapshot missing serve telemetry: timeline=%v histogram=%v", foundTl, foundHist)
	}
}

func TestMeasureServeMemoized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	scfg := serveTestConfig()
	a, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := h.sched.buildTasks.Load()
	b, err := h.MeasureServe(w, LayoutBaseline, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("second measurement did not hit the cache")
	}
	if got := h.sched.buildTasks.Load(); got != tasks {
		t.Errorf("memoized measurement ran %d extra tasks", got-tasks)
	}
	// A different pressure level reuses the built image (no new pipeline),
	// but runs a fresh scenario.
	scfg2 := scfg
	scfg2.PressurePct = 0
	c, err := h.MeasureServe(w, "", scfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].EvictedPages != 0 {
		t.Errorf("pressure-free scenario evicted %d pages", c[0].EvictedPages)
	}
}

func TestServeDeterministicAcrossWorkers(t *testing.T) {
	w := serveWorkload(t, "serve-cache")
	scfg := serveTestConfig()
	var prev []*ServeOutcome
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Builds = 2
		cfg.Iterations = 1
		cfg.Workers = workers
		// Affinity graphs and scorecards are part of the determinism
		// contract: reflect.DeepEqual below covers their every edge
		// weight and window, for every worker count.
		cfg.TrackAffinity = true
		h := NewHarness(cfg)
		outs, err := h.MeasureServe(w, "", scfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(deref(prev), deref(outs)) {
			t.Fatalf("outcomes differ between worker counts 1 and %d", workers)
		}
		prev = outs
	}
}

func deref(outs []*ServeOutcome) []ServeOutcome {
	vals := make([]ServeOutcome, len(outs))
	for i, o := range outs {
		vals[i] = *o
	}
	return vals
}

func TestServeLatencyTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	scfg := serveTestConfig()
	tb, err := h.ServeLatencyTable(nil, scfg, []string{core.StrategyCU})
	if err != nil {
		t.Fatal(err)
	}
	nServe := len(workloads.Serve())
	// One cell per serve workload plus the geomean row.
	if len(tb.Cells) != nServe+1 {
		t.Fatalf("got %d cells, want %d", len(tb.Cells), nServe+1)
	}
	for _, c := range tb.Cells {
		if c.Strategy != core.StrategyCU {
			t.Errorf("unexpected strategy %q", c.Strategy)
		}
		if !c.Degenerate && c.Factor <= 0 {
			t.Errorf("cell %s/%s factor %v", c.Workload, c.Strategy, c.Factor)
		}
	}
	if !strings.Contains(tb.Title, "pressure 60%") {
		t.Errorf("title %q missing pressure level", tb.Title)
	}
}

func TestServeReportV6(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = true
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	rep, err := h.ServeReport(w, nil, serveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "nimage.report/v6" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.SLO != nil {
		t.Error("report carries an SLO section without request recording")
	}
	if rep.Fleet != nil {
		t.Error("report carries a fleet section outside a fleet run")
	}
	if len(rep.Entries) != 1 {
		t.Fatalf("got %d entries, want 1 (baseline only)", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.Strategy != "" || !e.Service {
		t.Errorf("baseline entry strategy=%q service=%v", e.Strategy, e.Service)
	}
	if len(e.Serve) != cfg.Builds {
		t.Fatalf("entry carries %d serve outcomes, want %d", len(e.Serve), cfg.Builds)
	}
	// Snapshots, attribution and affinity are hoisted out of the outcomes
	// into the entry, like the cold-start report does with measures.
	if len(e.Runs) != cfg.Builds || e.Attribution == nil || e.Affinity == nil {
		t.Fatalf("runs=%d attribution=%v affinity=%v",
			len(e.Runs), e.Attribution != nil, e.Affinity != nil)
	}
	for _, o := range e.Serve {
		if o.Report != nil || o.Attrib != nil || o.Affinity != nil {
			t.Error("serve outcome still embeds its snapshot/attribution/affinity")
		}
		if o.Scorecard == nil {
			t.Error("serve outcome lost its layout scorecard")
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"serve"`) {
		t.Error("JSON document missing serve entries")
	}
}

func TestRouteForSkew(t *testing.T) {
	cfg := ServeConfig{HotPct: 100, HotRoutes: 3, Seed: 1}
	for k := 0; k < 200; k++ {
		if r := routeFor(k, cfg, 24); r >= 3 {
			t.Fatalf("request %d routed to %d with 100%% hot traffic", k, r)
		}
	}
	cfg.HotPct = 0
	seen := map[int]bool{}
	for k := 0; k < 500; k++ {
		r := routeFor(k, cfg, 24)
		if r < 0 || r >= 24 {
			t.Fatalf("route %d out of range", r)
		}
		seen[r] = true
	}
	if len(seen) < 12 {
		t.Errorf("uniform traffic hit only %d/24 routes", len(seen))
	}
	// Deterministic in the seed.
	if routeFor(42, cfg, 24) != routeFor(42, cfg, 24) {
		t.Error("routeFor not deterministic")
	}
}

// TestServeStreamsDeterministic is the acceptance contract of the
// multiplexed serve harness: with Streams >= 2 the outcomes — request
// traces included — are bit-identical for every worker count and across
// repeated runs.
func TestServeStreamsDeterministic(t *testing.T) {
	w := serveWorkload(t, "serve-cache")
	scfg := serveTestConfig()
	scfg.Streams = 3
	scfg.RecordRequests = true
	var prev []*ServeOutcome
	for _, workers := range []int{1, 4, 4} {
		cfg := DefaultConfig()
		cfg.Builds = 2
		cfg.Iterations = 1
		cfg.Workers = workers
		h := NewHarness(cfg)
		outs, err := h.MeasureServe(w, "", scfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(deref(prev), deref(outs)) {
			t.Fatalf("streamed outcomes differ at %d workers", workers)
		}
		prev = outs
	}
}

// TestServeSingleStreamBackCompat pins the Streams=1 protocol to the
// legacy single-client behavior: queue wait identically zero and the
// same route sequence, so pre-stream outcomes stay reproducible.
func TestServeSingleStreamBackCompat(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	scfg := serveTestConfig()
	scfg.Streams = 1
	scfg.RecordRequests = true
	outs, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if o.Requests == nil {
		t.Fatal("recording run carries no request trace")
	}
	want := scfg.Bursts * scfg.BurstSize
	if len(o.Requests.Records) != want || o.Requests.Dropped != 0 {
		t.Fatalf("trace has %d records (%d dropped), want %d",
			len(o.Requests.Records), o.Requests.Dropped, want)
	}
	for i, r := range o.Requests.Records {
		if r.QueueNanos != 0 {
			t.Fatalf("record %d: single stream queued %v nanos", i, r.QueueNanos)
		}
		if r.Stream != 0 {
			t.Fatalf("record %d: stream %d", i, r.Stream)
		}
		if r.Route != routeFor(i, scfg, w.Serve.Routes) {
			t.Fatalf("record %d: route %d diverges from the legacy sequence", i, r.Route)
		}
	}
	for i, b := range o.Bursts {
		if b.MeanQueueNanos != 0 || b.MaxQueueNanos != 0 {
			t.Errorf("burst %d: nonzero queue aggregates for a single stream", i)
		}
	}
	// Against a plain run without recording the simulated numbers match.
	plain := scfg
	plain.RecordRequests = false
	pouts, err := h.MeasureServe(w, "", plain)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSimOutcome(outs[0], pouts[0]) {
		t.Error("request recording perturbed the simulated outcome")
	}
}

// TestServeStreamTraceReconciliation drives a multi-stream recorded run
// and reconciles the trace against the burst measures, the per-stream
// osim fault counters, and the per-stream latency histograms.
func TestServeStreamTraceReconciliation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = true
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-cache")
	scfg := ServeConfig{
		Bursts: 3, BurstSize: 6, Streams: 2, CacheBudget: 48,
		HotPct: 0, HotRoutes: 1, Seed: 11, RecordRequests: true,
	}
	outs, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if o.Requests == nil {
		t.Fatal("recording run carries no request trace")
	}
	total := scfg.Bursts * scfg.BurstSize * scfg.Streams
	if len(o.Requests.Records) != total {
		t.Fatalf("trace has %d records, want %d", len(o.Requests.Records), total)
	}
	if o.Requests.Streams != scfg.Streams {
		t.Fatalf("trace streams = %d", o.Requests.Streams)
	}
	// Every burst measure aggregates exactly its records.
	perBurst := make([]int, scfg.Bursts)
	queued := false
	byStream := map[int]int{}
	var traceFaults, traceMajor, traceRefaults int64
	for _, r := range o.Requests.Records {
		perBurst[r.Burst]++
		byStream[r.Stream]++
		traceFaults += r.Faults
		traceMajor += r.MajorFaults
		traceRefaults += r.Refaults
		if r.QueueNanos > 0 {
			queued = true
		}
		if r.LatencyNanos != r.QueueNanos+r.ServiceNanos {
			t.Fatalf("record %d: latency %v != queue %v + service %v",
				r.ID, r.LatencyNanos, r.QueueNanos, r.ServiceNanos)
		}
	}
	for b, n := range perBurst {
		if n != scfg.BurstSize*scfg.Streams {
			t.Errorf("burst %d: %d records, want %d", b, n, scfg.BurstSize*scfg.Streams)
		}
		if o.Bursts[b].Requests != n {
			t.Errorf("burst %d: measure requests %d != trace %d", b, o.Bursts[b].Requests, n)
		}
	}
	for s := 0; s < scfg.Streams; s++ {
		if byStream[s] != scfg.Bursts*scfg.BurstSize {
			t.Errorf("stream %d served %d requests, want %d", s, byStream[s], scfg.Bursts*scfg.BurstSize)
		}
	}
	if !queued {
		t.Error("two closed-loop streams on one server never queued")
	}
	// Burst-boundary and reclaim marks on the shared clock.
	var bursts, reclaims int
	for _, m := range o.Requests.Marks {
		switch m.Kind {
		case "burst":
			bursts++
		case "reclaim":
			reclaims++
		}
	}
	if bursts != scfg.Bursts {
		t.Errorf("trace has %d burst marks, want %d", bursts, scfg.Bursts)
	}
	if reclaims != 0 {
		t.Errorf("trace has %d reclaim marks with zero pressure", reclaims)
	}
	// The per-burst fault deltas cover exactly the trace's attribution.
	var burstFaults, burstMajor, burstRefaults int64
	for _, b := range o.Bursts {
		burstFaults += b.MinorFaults + b.MajorFaults
		burstMajor += b.MajorFaults
		burstRefaults += b.Refaults
	}
	if traceFaults != burstFaults || traceMajor != burstMajor || traceRefaults != burstRefaults {
		t.Errorf("trace faults (%d/%d/%d) != burst deltas (%d/%d/%d)",
			traceFaults, traceMajor, traceRefaults, burstFaults, burstMajor, burstRefaults)
	}
	// The obs snapshot carries one latency histogram per stream whose
	// counts partition the run's requests.
	if o.Report == nil {
		t.Fatal("observed run carries no snapshot")
	}
	perStream := 0
	for _, hp := range o.Report.Histograms {
		var s int
		if _, err := fmt.Sscanf(hp.Name, "serve.stream%02d.latency_nanos", &s); err == nil {
			perStream++
			if hp.Count != int64(scfg.Bursts*scfg.BurstSize) {
				t.Errorf("stream %d histogram count %d, want %d", s, hp.Count, scfg.Bursts*scfg.BurstSize)
			}
		}
	}
	if perStream != scfg.Streams {
		t.Fatalf("snapshot has %d per-stream latency histograms, want %d", perStream, scfg.Streams)
	}
}
