package eval

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nimage/internal/core"
	"nimage/internal/workloads"
)

func serveTestConfig() ServeConfig {
	return ServeConfig{
		Bursts: 3, BurstSize: 8, PressurePct: 60,
		HotPct: 80, HotRoutes: 3, Seed: 7,
	}
}

func serveWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMeasureServeBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	scfg := serveTestConfig()
	outs, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1 per build", len(outs))
	}
	o := outs[0]
	if o.Strategy != LayoutBaseline {
		t.Errorf("strategy = %q, want %q", o.Strategy, LayoutBaseline)
	}
	if o.StartupNanos <= 0 {
		t.Errorf("startup nanos = %v", o.StartupNanos)
	}
	if len(o.Bursts) != scfg.Bursts {
		t.Fatalf("got %d bursts, want %d", len(o.Bursts), scfg.Bursts)
	}
	for i, b := range o.Bursts {
		if b.Burst != i || b.Requests != scfg.BurstSize {
			t.Errorf("burst %d: index %d requests %d", i, b.Burst, b.Requests)
		}
		if b.P50Nanos <= 0 || b.P99Nanos < b.P50Nanos || b.P90Nanos < b.P50Nanos {
			t.Errorf("burst %d: quantiles p50=%v p90=%v p99=%v", i, b.P50Nanos, b.P90Nanos, b.P99Nanos)
		}
		if b.MinorFaults < 0 || b.MajorFaults < 0 {
			t.Errorf("burst %d: negative fault counts", i)
		}
		if b.ResidentText <= 0 {
			t.Errorf("burst %d: no resident .text pages", i)
		}
	}
	// The cold burst faults the handlers in.
	if o.Bursts[0].MajorFaults == 0 {
		t.Error("cold burst took no major faults")
	}
	// Inter-burst pressure must actually evict pages.
	if o.EvictedPages == 0 {
		t.Error("no pages evicted despite 60% inter-burst pressure")
	}
	var burstEvicted int64
	for _, b := range o.Bursts {
		burstEvicted += b.EvictedPages
	}
	// Without a cache budget nothing is evicted during startup, so the
	// per-burst deltas must account for every eviction of the run.
	if burstEvicted != o.EvictedPages {
		t.Errorf("per-burst evictions %d != run total %d", burstEvicted, o.EvictedPages)
	}
	if o.WarmMeanNanos <= 0 || o.WarmP99Nanos < o.WarmMeanNanos {
		t.Errorf("warm aggregates mean=%v p99=%v", o.WarmMeanNanos, o.WarmP99Nanos)
	}
}

// TestServeReconciliation is the acceptance contract of the serve
// telemetry: driving a full serve run with attribution attached, the
// eviction and re-fault totals reported by the attribution recorder, the
// osim file counters (surfaced in the outcome) and the per-burst deltas
// must reconcile exactly.
func TestServeReconciliation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = true
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-cache")
	// A tight resident budget forces eviction churn during the bursts:
	// every cold handler fault pushes some other route's pages out, so
	// revisited routes re-fault.
	scfg := ServeConfig{
		Bursts: 3, BurstSize: 8, CacheBudget: 48,
		HotPct: 0, HotRoutes: 1, Seed: 11,
	}
	outs, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	if o.EvictedPages == 0 {
		t.Fatal("budget produced no evictions")
	}
	if o.RefaultPages == 0 {
		t.Fatal("budget churn produced no re-faults")
	}
	if o.Attrib == nil {
		t.Fatal("observed run carries no attribution table")
	}
	var attribEvicted, attribRefaults int64
	for _, s := range o.Attrib.Sections {
		attribEvicted += s.Evicted
		attribRefaults += s.Refaults
	}
	if attribEvicted != o.EvictedPages {
		t.Errorf("attribution evictions %d != file total %d", attribEvicted, o.EvictedPages)
	}
	if attribRefaults != o.RefaultPages {
		t.Errorf("attribution refaults %d != file total %d", attribRefaults, o.RefaultPages)
	}
	// Per-burst re-fault deltas never exceed the run total (startup churn
	// accounts for the rest).
	var burstRefaults int64
	for _, b := range o.Bursts {
		burstRefaults += b.Refaults
	}
	if burstRefaults > o.RefaultPages {
		t.Errorf("per-burst refaults %d exceed run total %d", burstRefaults, o.RefaultPages)
	}
	// The obs snapshot carries the burst timeline and latency histogram.
	if o.Report == nil {
		t.Fatal("observed run carries no snapshot")
	}
	foundTl, foundHist := false, false
	for _, tl := range o.Report.Timelines {
		if tl.Name == "serve.burst" {
			foundTl = true
			if len(tl.Events) != scfg.Bursts {
				t.Errorf("burst timeline has %d events, want %d", len(tl.Events), scfg.Bursts)
			}
		}
	}
	for _, hp := range o.Report.Histograms {
		if hp.Name == "serve.latency_nanos" {
			foundHist = true
			if hp.Count != int64(scfg.Bursts*scfg.BurstSize) {
				t.Errorf("latency histogram count %d, want %d", hp.Count, scfg.Bursts*scfg.BurstSize)
			}
			if p99 := hp.Quantile(0.99); p99 <= 0 {
				t.Errorf("latency p99 = %v", p99)
			}
		}
	}
	if !foundTl || !foundHist {
		t.Fatalf("snapshot missing serve telemetry: timeline=%v histogram=%v", foundTl, foundHist)
	}
}

func TestMeasureServeMemoized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	scfg := serveTestConfig()
	a, err := h.MeasureServe(w, "", scfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := h.sched.buildTasks.Load()
	b, err := h.MeasureServe(w, LayoutBaseline, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("second measurement did not hit the cache")
	}
	if got := h.sched.buildTasks.Load(); got != tasks {
		t.Errorf("memoized measurement ran %d extra tasks", got-tasks)
	}
	// A different pressure level reuses the built image (no new pipeline),
	// but runs a fresh scenario.
	scfg2 := scfg
	scfg2.PressurePct = 0
	c, err := h.MeasureServe(w, "", scfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].EvictedPages != 0 {
		t.Errorf("pressure-free scenario evicted %d pages", c[0].EvictedPages)
	}
}

func TestServeDeterministicAcrossWorkers(t *testing.T) {
	w := serveWorkload(t, "serve-cache")
	scfg := serveTestConfig()
	var prev []*ServeOutcome
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Builds = 2
		cfg.Iterations = 1
		cfg.Workers = workers
		// Affinity graphs and scorecards are part of the determinism
		// contract: reflect.DeepEqual below covers their every edge
		// weight and window, for every worker count.
		cfg.TrackAffinity = true
		h := NewHarness(cfg)
		outs, err := h.MeasureServe(w, "", scfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(deref(prev), deref(outs)) {
			t.Fatalf("outcomes differ between worker counts 1 and %d", workers)
		}
		prev = outs
	}
}

func deref(outs []*ServeOutcome) []ServeOutcome {
	vals := make([]ServeOutcome, len(outs))
	for i, o := range outs {
		vals[i] = *o
	}
	return vals
}

func TestServeLatencyTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	scfg := serveTestConfig()
	tb, err := h.ServeLatencyTable(nil, scfg, []string{core.StrategyCU})
	if err != nil {
		t.Fatal(err)
	}
	nServe := len(workloads.Serve())
	// One cell per serve workload plus the geomean row.
	if len(tb.Cells) != nServe+1 {
		t.Fatalf("got %d cells, want %d", len(tb.Cells), nServe+1)
	}
	for _, c := range tb.Cells {
		if c.Strategy != core.StrategyCU {
			t.Errorf("unexpected strategy %q", c.Strategy)
		}
		if !c.Degenerate && c.Factor <= 0 {
			t.Errorf("cell %s/%s factor %v", c.Workload, c.Strategy, c.Factor)
		}
	}
	if !strings.Contains(tb.Title, "pressure 60%") {
		t.Errorf("title %q missing pressure level", tb.Title)
	}
}

func TestServeReportV4(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = true
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	rep, err := h.ServeReport(w, nil, serveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "nimage.report/v4" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Entries) != 1 {
		t.Fatalf("got %d entries, want 1 (baseline only)", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.Strategy != "" || !e.Service {
		t.Errorf("baseline entry strategy=%q service=%v", e.Strategy, e.Service)
	}
	if len(e.Serve) != cfg.Builds {
		t.Fatalf("entry carries %d serve outcomes, want %d", len(e.Serve), cfg.Builds)
	}
	// Snapshots, attribution and affinity are hoisted out of the outcomes
	// into the entry, like the cold-start report does with measures.
	if len(e.Runs) != cfg.Builds || e.Attribution == nil || e.Affinity == nil {
		t.Fatalf("runs=%d attribution=%v affinity=%v",
			len(e.Runs), e.Attribution != nil, e.Affinity != nil)
	}
	for _, o := range e.Serve {
		if o.Report != nil || o.Attrib != nil || o.Affinity != nil {
			t.Error("serve outcome still embeds its snapshot/attribution/affinity")
		}
		if o.Scorecard == nil {
			t.Error("serve outcome lost its layout scorecard")
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"serve"`) {
		t.Error("JSON document missing serve entries")
	}
}

func TestRouteForSkew(t *testing.T) {
	cfg := ServeConfig{HotPct: 100, HotRoutes: 3, Seed: 1}
	for k := 0; k < 200; k++ {
		if r := routeFor(k, cfg, 24); r >= 3 {
			t.Fatalf("request %d routed to %d with 100%% hot traffic", k, r)
		}
	}
	cfg.HotPct = 0
	seen := map[int]bool{}
	for k := 0; k < 500; k++ {
		r := routeFor(k, cfg, 24)
		if r < 0 || r >= 24 {
			t.Fatalf("route %d out of range", r)
		}
		seen[r] = true
	}
	if len(seen) < 12 {
		t.Errorf("uniform traffic hit only %d/24 routes", len(seen))
	}
	// Deterministic in the seed.
	if routeFor(42, cfg, 24) != routeFor(42, cfg, 24) {
		t.Error("routeFor not deterministic")
	}
}

func TestQuantileExact(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantileExact(s, 0.5); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := quantileExact(s, 0.99); got != 10 {
		t.Errorf("p99 = %v", got)
	}
	if got := quantileExact(s, 0.1); got != 1 {
		t.Errorf("p10 = %v", got)
	}
	if got := quantileExact(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := quantileExact([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton = %v", got)
	}
	// Boundary quantiles: q=0 is the minimum, q=1 the maximum, and a
	// single sample answers every quantile with itself.
	if got := quantileExact(s, 0); got != 1 {
		t.Errorf("q=0 = %v, want minimum 1", got)
	}
	if got := quantileExact(s, 1); got != 10 {
		t.Errorf("q=1 = %v, want maximum 10", got)
	}
	if got := quantileExact([]float64{7}, 0); got != 7 {
		t.Errorf("singleton q=0 = %v", got)
	}
	if got := quantileExact([]float64{7}, 1); got != 7 {
		t.Errorf("singleton q=1 = %v", got)
	}
}
