package eval

import (
	"fmt"
	"math"
	"strings"

	"nimage/internal/core"
	"nimage/internal/image"
	"nimage/internal/osim"
	"nimage/internal/profiler"
	"nimage/internal/vm"
	"nimage/internal/workloads"
)

// pageFaultTable measures the page-fault reduction of every strategy on a
// workload set (Figures 2 and 3). The full (workload, strategy, build)
// matrix is prefetched through the scheduler; assembly afterwards is pure
// cache reads in deterministic order.
func (h *Harness) pageFaultTable(title string, ws []workloads.Workload) (*Table, error) {
	if err := h.Prefetch(ws, Strategies()); err != nil {
		return nil, err
	}
	t := &Table{Title: title, Metric: "page-fault reduction", Strategies: Strategies()}
	for _, w := range ws {
		base, err := h.MeasureBaseline(w)
		if err != nil {
			return nil, err
		}
		for _, s := range Strategies() {
			opt, err := h.MeasureStrategy(w, s)
			if err != nil {
				return nil, err
			}
			var bs, os []float64
			for _, m := range base {
				bs = append(bs, metricOf(s, m))
			}
			for _, m := range opt.Measures {
				os = append(os, metricOf(s, m))
			}
			t.Cells = append(t.Cells, FactorCell(w.Name, s, bs, os))
		}
	}
	t.AddGeoMean()
	t.SortCells()
	return t, nil
}

// speedupTable measures the execution-time speedup of every strategy
// (Figures 4 and 5).
func (h *Harness) speedupTable(title string, ws []workloads.Workload) (*Table, error) {
	if err := h.Prefetch(ws, Strategies()); err != nil {
		return nil, err
	}
	t := &Table{Title: title, Metric: "execution-time speedup", Strategies: Strategies()}
	for _, w := range ws {
		base, err := h.MeasureBaseline(w)
		if err != nil {
			return nil, err
		}
		for _, s := range Strategies() {
			opt, err := h.MeasureStrategy(w, s)
			if err != nil {
				return nil, err
			}
			var bs, os []float64
			for _, m := range base {
				bs = append(bs, m.Time)
			}
			for _, m := range opt.Measures {
				os = append(os, m.Time)
			}
			t.Cells = append(t.Cells, FactorCell(w.Name, s, bs, os))
		}
	}
	t.AddGeoMean()
	t.SortCells()
	return t, nil
}

// PageFaultTable builds a page-fault reduction table over an arbitrary
// workload set (the shape of Figures 2 and 3).
func (h *Harness) PageFaultTable(title string, ws []workloads.Workload) (*Table, error) {
	return h.pageFaultTable(title, ws)
}

// SpeedupTable builds an execution-time speedup table over an arbitrary
// workload set (the shape of Figures 4 and 5).
func (h *Harness) SpeedupTable(title string, ws []workloads.Workload) (*Table, error) {
	return h.speedupTable(title, ws)
}

// Figure2 reproduces the AWFY page-fault reductions.
func (h *Harness) Figure2() (*Table, error) {
	return h.pageFaultTable("Figure 2: page-fault reduction on AWFY", workloads.AWFY())
}

// Figure3 reproduces the microservice page-fault reductions.
func (h *Harness) Figure3() (*Table, error) {
	return h.pageFaultTable("Figure 3: page-fault reduction on microservices", workloads.Microservices())
}

// Figure4 reproduces the microservice execution-time speedups.
func (h *Harness) Figure4() (*Table, error) {
	return h.speedupTable("Figure 4: execution-time speedup on microservices", workloads.Microservices())
}

// Figure5 reproduces the AWFY execution-time speedups.
func (h *Harness) Figure5() (*Table, error) {
	return h.speedupTable("Figure 5: execution-time speedup on AWFY", workloads.AWFY())
}

// OverheadGroup names the three instrumentation kinds of the overhead
// table (Sec. 7.4 reports one factor for all heap strategies because their
// emitted instrumentation is identical).
var OverheadGroups = []string{"cu", "method", "heap"}

// Overhead measures the profiling overhead (Sec. 7.4): instrumented run
// time divided by regular run time, per instrumentation kind.
func (h *Harness) Overhead(ws []workloads.Workload) (*Table, error) {
	t := &Table{Title: "Profiling overhead (Sec. 7.4)", Metric: "instrumented/regular compute time (lower is better)", Strategies: OverheadGroups}
	groupStrategy := map[string]string{
		"cu":     core.StrategyCU,
		"method": core.StrategyMethod,
		"heap":   core.StrategyHeapPath,
	}
	if err := h.Prefetch(ws, []string{core.StrategyCU, core.StrategyMethod, core.StrategyHeapPath}); err != nil {
		return nil, err
	}
	for _, w := range ws {
		base, err := h.MeasureBaseline(w)
		if err != nil {
			return nil, err
		}
		var bt []float64
		for _, m := range base {
			bt = append(bt, m.CPUSeconds)
		}
		for _, g := range OverheadGroups {
			opt, err := h.MeasureStrategy(w, groupStrategy[g])
			if err != nil {
				return nil, err
			}
			var pt []float64
			for _, r := range opt.Profiling {
				pt = append(pt, r.CPUTime.Seconds())
			}
			pm, bm := Mean(pt), Mean(bt)
			c := Cell{Workload: w.Name, Strategy: g, BaselineMean: bm, OptimizedMean: pm}
			if bm == 0 {
				// Unmeasurable overhead ratio: mark explicitly, as in
				// FactorCell.
				c.Degenerate = true
				c.Factor = math.NaN()
				c.CI = math.NaN()
			} else {
				c.Factor = pm / bm
				c.CI = RatioCI(pm, CI95(pt), bm, CI95(bt))
			}
			t.Cells = append(t.Cells, c)
		}
	}
	// Overhead averages are arithmetic in the paper's prose; keep geomean
	// for consistency of the summary row.
	t.AddGeoMean()
	t.SortCells()
	return t, nil
}

// AccessedFraction measures the fraction of snapshot objects a workload
// accesses (the paper reports ~4% on AWFY, Sec. 7.2).
func (h *Harness) AccessedFraction(ws []workloads.Workload) (map[string]float64, error) {
	if err := h.Prefetch(ws, nil); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(ws))
	for _, w := range ws {
		ms, err := h.MeasureBaseline(w)
		if err != nil {
			return nil, err
		}
		var fs []float64
		for _, m := range ms {
			fs = append(fs, m.AccessedFrac)
		}
		out[w.Name] = Mean(fs)
	}
	return out, nil
}

// Figure6 produces the page-state grids of the .text section for the
// given workload (default: Bounce) under the regular binary and the
// cu-ordered binary — the data behind the Fig. 6 visualization.
func (h *Harness) Figure6(workloadName string) (regular, optimized []osim.PageState, err error) {
	return h.pageStates(workloadName, image.SectionText, core.StrategyCU)
}

// Figure6Heap is the heap-snapshot analogue of Fig. 6 — the visualization
// the paper lists as future work (Appendix A): page states of .svm_heap
// under the regular binary and the heap-path-ordered binary.
func (h *Harness) Figure6Heap(workloadName string) (regular, optimized []osim.PageState, err error) {
	return h.pageStates(workloadName, image.SectionHeap, core.StrategyHeapPath)
}

// pageStates runs the workload over a regular and a strategy-optimized
// image and returns the page-state grids of one section.
func (h *Harness) pageStates(workloadName, section, strategy string) (regular, optimized []osim.PageState, err error) {
	w, err := workloads.ByName(workloadName)
	if err != nil {
		return nil, nil, err
	}
	p := h.Program(w)

	states := func(img *image.Image) ([]osim.PageState, error) {
		o := h.newOS()
		proc, err := img.NewProcess(o, vm.Hooks{})
		if err != nil {
			return nil, err
		}
		defer proc.Close()
		proc.Machine.StopOnRespond = w.Service
		if err := proc.Run(w.Args...); err != nil {
			return nil, err
		}
		return proc.Mapping.PageStates(section), nil
	}

	reg, err := image.Build(p, image.Options{
		Kind: image.KindRegular, Compiler: h.Cfg.Compiler, BuildSeed: baselineSeed(0),
	})
	if err != nil {
		return nil, nil, err
	}
	regular, err = states(reg)
	if err != nil {
		return nil, nil, err
	}

	mode := profiler.DumpOnFull
	if w.Service {
		mode = profiler.MemoryMapped
	}
	res, err := image.BuildOptimized(p, image.PipelineOptions{
		Compiler:         h.Cfg.Compiler,
		Strategy:         strategy,
		InstrumentedSeed: instrumentedSeed(0),
		OptimizedSeed:    optimizedSeed(0),
		Mode:             mode,
		Args:             w.Args,
		Service:          w.Service,
	})
	if err != nil {
		return nil, nil, err
	}
	optimized, err = states(res.Optimized)
	if err != nil {
		return nil, nil, err
	}
	return regular, optimized, nil
}

// CompilerInfo summarizes the compiled world of every workload (classes,
// methods, CUs, snapshot objects and bytes) — useful context for reports.
func (h *Harness) CompilerInfo(ws []workloads.Workload) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %8s %8s %10s %12s %12s\n",
		"workload", "classes", "methods", "CUs", "objects", "text(B)", "heap(B)")
	for _, w := range ws {
		p := h.Program(w)
		img, err := image.Build(p, image.Options{
			Kind: image.KindRegular, Compiler: h.Cfg.Compiler, BuildSeed: baselineSeed(0),
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-12s %8d %8d %8d %10d %12d %12d\n",
			w.Name, len(p.Classes), p.NumMethods(), len(img.CULayout),
			len(img.Snapshot.Objects), img.TextSize(), img.HeapSize())
	}
	return sb.String(), nil
}
