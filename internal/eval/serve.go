package eval

// Serve-mode measurement: startup followed by request bursts against a
// long-lived process, with page-cache pressure applied between bursts.
// Where the cold-start protocol (harness.go) asks "how many faults until
// the first response", the serve protocol asks "what does a layout cost
// per warm burst once the kernel has started evicting its pages" — the
// steady-state counterpart of Sec. 7's startup figures. Latency here is
// simulated request time (CPU cycles plus fault I/O), so results are
// bit-deterministic like everything else in the harness.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"nimage/internal/core"
	"nimage/internal/heap"
	"nimage/internal/image"
	"nimage/internal/murmur"
	"nimage/internal/obs"
	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
	"nimage/internal/profiler"
	"nimage/internal/vm"
	"nimage/internal/workloads"
)

// ServeConfig tunes one serve-mode scenario.
type ServeConfig struct {
	// Bursts is the number of request bursts after startup; burst 0 is the
	// cold burst, bursts 1.. are the warm bursts the figures aggregate.
	Bursts int `json:"bursts"`
	// BurstSize is the number of requests per burst.
	BurstSize int `json:"burst_size"`
	// PressurePct reclaims this percentage of the resident pages between
	// bursts (inter-burst memory pressure from other tenants). 0 disables.
	PressurePct int `json:"pressure_pct"`
	// CacheBudget bounds the resident pages of the whole OS (0: unlimited);
	// the budget is enforced on every fault under the eviction policy.
	CacheBudget int `json:"cache_budget,omitempty"`
	// Policy is the page-replacement policy (LRU by default).
	Policy osim.EvictionPolicy `json:"policy,omitempty"`
	// HotPct percent of requests go to the HotRoutes first routes; the rest
	// spread uniformly over all routes. Models working-set skew.
	HotPct    int `json:"hot_pct"`
	HotRoutes int `json:"hot_routes"`
	// Seed drives the deterministic request stream.
	Seed uint64 `json:"seed"`
	// Streams is the number of concurrent closed-loop request streams
	// multiplexed against the single long-lived mapping, all sharing one
	// osim page-cache budget. 1 (the default) reproduces the serial
	// protocol bit for bit. For N > 1, each burst is the union of every
	// stream's BurstSize requests served in a deterministic seeded
	// interleave: the server is a single simulated CPU, so a request
	// waits in queue while requests of other streams are served — the
	// queue-wait/service split the SLO scorecards consume. Concurrency
	// is modeled, not goroutine-parallel, so results stay bit-identical
	// across -workers and repeated runs (the scheduler's determinism
	// contract).
	Streams int `json:"streams,omitempty"`
	// RecordRequests attaches the bounded per-request trace recorder
	// (obs.RequestTrace) to the run; the trace rides on the outcome and
	// feeds the SLO attainment math and the Chrome-trace export.
	RecordRequests bool `json:"record_requests,omitempty"`
}

// DefaultServeConfig returns the serve-mode defaults: five bursts of 24
// requests, half the resident set reclaimed between bursts, 80% of the
// traffic on 4 hot routes.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Bursts:      5,
		BurstSize:   24,
		PressurePct: 50,
		HotPct:      80,
		HotRoutes:   4,
		Seed:        0x53127e,
	}
}

// withDefaults fills unset knobs so a zero-valued config is usable and the
// memoization key is canonical.
func (c ServeConfig) withDefaults() ServeConfig {
	d := DefaultServeConfig()
	if c.Bursts <= 0 {
		c.Bursts = d.Bursts
	}
	if c.BurstSize <= 0 {
		c.BurstSize = d.BurstSize
	}
	if c.HotRoutes <= 0 {
		c.HotRoutes = d.HotRoutes
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Streams <= 0 {
		c.Streams = 1
	}
	return c
}

// key canonicalizes the config for memoization.
func (c ServeConfig) key() string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%d/%d/%t",
		c.Bursts, c.BurstSize, c.PressurePct, c.CacheBudget, c.Policy,
		c.HotPct, c.HotRoutes, c.Seed, c.Streams, c.RecordRequests)
}

// BurstMeasure is the telemetry of one request burst. The eviction count
// includes the inter-burst pressure that preceded the burst — the cost a
// burst inherits — while faults, re-faults and I/O are strictly the
// burst's own.
type BurstMeasure struct {
	Burst    int `json:"burst"`
	Requests int `json:"requests"`
	// Request latency quantiles (simulated nanoseconds, exact nearest-rank
	// over the burst's samples).
	P50Nanos  float64 `json:"p50_nanos"`
	P90Nanos  float64 `json:"p90_nanos"`
	P99Nanos  float64 `json:"p99_nanos"`
	MeanNanos float64 `json:"mean_nanos"`
	// Fault traffic of the burst.
	MajorFaults int64 `json:"major_faults"`
	MinorFaults int64 `json:"minor_faults"`
	Refaults    int64 `json:"refaults"`
	IONanos     int64 `json:"io_nanos"`
	// EvictedPages counts evictions since the previous burst ended
	// (pressure before the burst plus budget evictions during it).
	EvictedPages int64 `json:"evicted_pages"`
	// Section residency at the end of the burst.
	ResidentText int `json:"resident_text"`
	ResidentHeap int `json:"resident_heap"`
	// Queue-wait aggregates over the burst's requests: time spent waiting
	// for the single simulated CPU while other streams were served. Zero
	// (and omitted) for single-stream runs, whose latency is pure service
	// time.
	MeanQueueNanos float64 `json:"mean_queue_nanos,omitempty"`
	MaxQueueNanos  float64 `json:"max_queue_nanos,omitempty"`
}

// ServeOutcome is one build's serve-mode run: startup, then the bursts.
type ServeOutcome struct {
	Workload string      `json:"workload"`
	Strategy string      `json:"strategy"`
	Config   ServeConfig `json:"config"`
	// StartupNanos is the time to the first response (startup phase).
	StartupNanos float64        `json:"startup_nanos"`
	Bursts       []BurstMeasure `json:"bursts"`
	// Warm aggregates over the warm bursts (1..): mean and exact p99 of all
	// warm request latencies.
	WarmMeanNanos float64 `json:"warm_mean_nanos"`
	WarmP99Nanos  float64 `json:"warm_p99_nanos"`
	// Run totals: pages evicted and re-faulted over the whole run.
	EvictedPages int64 `json:"evicted_pages"`
	RefaultPages int64 `json:"refault_pages"`
	// Attrib is the per-symbol fault/eviction attribution; Report the obs
	// snapshot (serve.latency_nanos histogram, serve.burst timeline). Both
	// nil unless the harness observes.
	Attrib *attrib.Table `json:"attrib,omitempty"`
	Report *obs.Snapshot `json:"report,omitempty"`
	// Affinity is the temporal co-access graph recorded over the whole
	// serve run (startup plus every burst), and Scorecard its static score
	// against the run's own layout under the config's pressure. Both nil
	// unless the harness observes or tracks affinity.
	Affinity  *affinity.Graph     `json:"affinity,omitempty"`
	Scorecard *affinity.Scorecard `json:"scorecard,omitempty"`
	// Requests is the bounded per-request trace (queue/service split,
	// fault traffic, burst and reclaim marks); nil unless
	// ServeConfig.RecordRequests asked for it.
	Requests *obs.RequestTrace `json:"requests,omitempty"`
}

// routeFor derives request k's route deterministically from the seed:
// HotPct percent of requests hit the HotRoutes first routes, the rest
// spread over all of them.
func routeFor(k int, cfg ServeConfig, routes int) int {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(k))
	h := murmur.Sum64Seed(buf[:], cfg.Seed)
	hot := cfg.HotRoutes
	if hot <= 0 || hot > routes {
		hot = routes
	}
	if int(h%100) < cfg.HotPct {
		return int((h / 100) % uint64(hot))
	}
	return int((h / 100) % uint64(routes))
}

// routeForStream derives request k of stream s. Stream 0 reuses the
// routeFor sequence exactly — a Streams=1 run is bit-identical to the
// pre-stream serial protocol — while higher streams fold their id into
// the seed so concurrent streams pull distinct (but equally skewed)
// request sequences.
func routeForStream(stream, k int, cfg ServeConfig, routes int) int {
	if stream > 0 {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(stream))
		cfg.Seed = murmur.Sum64Seed(buf[:], cfg.Seed)
	}
	return routeFor(k, cfg, routes)
}

// pickStream selects which stream's request the server takes next: a
// seeded deterministic interleave over the streams that still have
// requests left in the burst. With one stream this is the identity
// schedule; with several it shuffles service order reproducibly, so the
// contention pattern is stable across -workers, runs and platforms.
func pickStream(cfg ServeConfig, burst, step int, remaining []int) int {
	if len(remaining) == 1 {
		return 0
	}
	candidates := 0
	for _, r := range remaining {
		if r > 0 {
			candidates++
		}
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(burst))
	binary.LittleEndian.PutUint64(buf[8:], uint64(step))
	pick := int(murmur.Sum64Seed(buf[:], cfg.Seed) % uint64(candidates))
	for s, r := range remaining {
		if r > 0 {
			if pick == 0 {
				return s
			}
			pick--
		}
	}
	panic("eval: pickStream with no remaining requests")
}

// MeasureServe runs the serve scenario for one workload and strategy
// (LayoutBaseline or "" for unmodified images) over every build seed and
// returns one outcome per build. Results are memoized per (workload,
// strategy, config); images are additionally memoized per (workload,
// strategy, build) so pressure sweeps rebuild nothing.
func (h *Harness) MeasureServe(w workloads.Workload, strategy string, scfg ServeConfig) ([]*ServeOutcome, error) {
	if w.Serve == nil {
		return nil, fmt.Errorf("eval: workload %s has no serve spec", w.Name)
	}
	scfg = scfg.withDefaults()
	if strategy == "" {
		strategy = LayoutBaseline
	}
	key := w.Name + "\x00" + strategy + "\x00" + scfg.key()
	if o := h.cachedServe(key); o != nil {
		return o, nil
	}
	err := h.once("serve\x00"+key, func() error {
		if h.cachedServe(key) != nil {
			return nil
		}
		out, err := h.measureServe(w, strategy, scfg)
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.serveCache[key] = out
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h.cachedServe(key), nil
}

func (h *Harness) cachedServe(key string) []*ServeOutcome {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.serveCache[key]
}

// measureServe fans the builds out across the worker pool; the outcome
// slice is indexed by build, so results are bit-identical for every worker
// count (the determinism contract of scheduler.go).
func (h *Harness) measureServe(w workloads.Workload, strategy string, scfg ServeConfig) ([]*ServeOutcome, error) {
	out := make([]*ServeOutcome, h.Cfg.Builds)
	err := h.forEach(h.Cfg.Builds, func(bld int) error {
		h.sched.buildTasks.Add(1)
		img, err := h.serveImage(w, strategy, bld)
		if err != nil {
			return err
		}
		o, err := h.serveRun(img, w, strategy, scfg, false)
		if err != nil {
			return err
		}
		out[bld] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// serveImage builds (once per workload/strategy/build — shared by every
// pressure level) the image a serve run executes.
func (h *Harness) serveImage(w workloads.Workload, strategy string, bld int) (*image.Image, error) {
	key := fmt.Sprintf("simg\x00%s\x00%s\x00%d", w.Name, strategy, bld)
	if img := h.cachedServeImg(key); img != nil {
		return img, nil
	}
	err := h.once(key, func() error {
		if h.cachedServeImg(key) != nil {
			return nil
		}
		p := h.Program(w)
		var img *image.Image
		if strategy == LayoutBaseline {
			built, err := image.Build(p, image.Options{
				Kind: image.KindRegular, Compiler: h.Cfg.Compiler, BuildSeed: baselineSeed(bld),
			})
			if err != nil {
				return fmt.Errorf("eval: serve baseline build of %s: %w", w.Name, err)
			}
			img = built
		} else {
			popts := image.PipelineOptions{
				Compiler:         h.Cfg.Compiler,
				Strategy:         strategy,
				InstrumentedSeed: instrumentedSeed(bld),
				OptimizedSeed:    optimizedSeed(bld),
				// Serve workloads are services: durable buffers (Sec. 6.1).
				Mode:    profiler.MemoryMapped,
				Args:    w.Args,
				Service: true,
			}
			if core.IsGraphStrategy(strategy) {
				// Graph strategies optimize burst residency, so they bake
				// from the baseline *serve* recording rather than letting
				// the pipeline record a cold start.
				g, err := h.serveAffinityGraph(w, bld)
				if err != nil {
					return err
				}
				popts.AffinityGraph = g
				if strategy == core.StrategySLOSearch {
					// slo-search bakes the measured search winner: one
					// searched order per workload (memoized), rebuilt here
					// with this build's seed like any other strategy.
					sr, err := h.SearchLayout(w, DefaultSearchConfig())
					if err != nil {
						return err
					}
					popts.CodeOrder = sr.Order
				}
			}
			res, err := image.BuildOptimized(p, popts)
			if err != nil {
				return fmt.Errorf("eval: serve %s/%s: %w", w.Name, strategy, err)
			}
			img = res.Optimized
		}
		h.mu.Lock()
		h.serveImgs[key] = img
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h.cachedServeImg(key), nil
}

func (h *Harness) cachedServeImg(key string) *image.Image {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.serveImgs[key]
}

// serveAffinityGraph records — once per workload/build, shared by every
// pressure level and both graph strategies — the affinity graph the graph
// strategies bake from: the baseline image of the same build runs the
// *default* serve scenario with affinity tracking forced on. Recording at
// the default config keeps the graph independent of the measurement's
// pressure sweep, preserving the serve-image memoization contract
// (sweeping pressure rebuilds nothing).
func (h *Harness) serveAffinityGraph(w workloads.Workload, bld int) (*affinity.Graph, error) {
	key := fmt.Sprintf("sgraph\x00%s\x00%d", w.Name, bld)
	if g := h.cachedServeGraph(key); g != nil {
		return g, nil
	}
	err := h.once(key, func() error {
		if h.cachedServeGraph(key) != nil {
			return nil
		}
		img, err := h.serveImage(w, LayoutBaseline, bld)
		if err != nil {
			return err
		}
		o, err := h.serveRun(img, w, LayoutBaseline, DefaultServeConfig(), true)
		if err != nil {
			return fmt.Errorf("eval: serve affinity recording of %s: %w", w.Name, err)
		}
		if o.Affinity == nil {
			return fmt.Errorf("eval: serve affinity recording of %s produced no graph", w.Name)
		}
		h.mu.Lock()
		h.serveGraphs[key] = o.Affinity
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h.cachedServeGraph(key), nil
}

func (h *Harness) cachedServeGraph(key string) *affinity.Graph {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.serveGraphs[key]
}

// serveRun executes one serve scenario: cold startup to the first
// response, then the request bursts with inter-burst pressure. One request
// is one RunMethod call on the dispatch entry (StopOnRespond stops the
// machine at the request's respond intrinsic); its latency is the
// simulated CPU delta plus the fault I/O it incurred.
// trackAffinity forces the co-access recorder on regardless of the
// harness config — the serve affinity recording needs a graph even on
// detached harnesses.
func (h *Harness) serveRun(img *image.Image, w workloads.Workload, strategy string, scfg ServeConfig, trackAffinity bool) (*ServeOutcome, error) {
	scfg = scfg.withDefaults() // direct callers may pass a sparse config
	cls := img.Program.Class(w.Serve.DispatchClass)
	if cls == nil {
		return nil, fmt.Errorf("eval: serve %s: dispatch class %s missing", w.Name, w.Serve.DispatchClass)
	}
	meth := cls.LookupMethod(w.Serve.DispatchMethod)
	if meth == nil || !meth.Static || meth.NParams != 1 {
		return nil, fmt.Errorf("eval: serve %s: dispatch method %s.%s must be static with one parameter",
			w.Name, w.Serve.DispatchClass, w.Serve.DispatchMethod)
	}

	o := h.newOS()
	o.CacheBudget = scfg.CacheBudget
	o.Policy = scfg.Policy
	if trackAffinity {
		o.TrackAffinity = true
	}
	if h.Cfg.Observe {
		o.Obs = obs.NewRegistry()
	}
	proc, err := img.NewProcess(o, vm.Hooks{})
	if err != nil {
		return nil, err
	}
	proc.Machine.StopOnRespond = true
	if err := proc.Run(w.Args...); err != nil {
		proc.Close()
		return nil, fmt.Errorf("eval: serve startup of %s: %w", w.Name, err)
	}
	st := proc.Stats()
	if st.TimeToResponse <= 0 {
		proc.Close()
		return nil, fmt.Errorf("eval: serve %s never responded during startup", w.Name)
	}
	f, err := img.File(o)
	if err != nil {
		proc.Close()
		return nil, err
	}

	var latHist *obs.Histogram
	var streamHists []*obs.Histogram
	var burstTl *obs.Timeline
	if o.Obs.Enabled() {
		latHist = o.Obs.Histogram("serve.latency_nanos", obs.LatencyBuckets())
		burstTl = o.Obs.Timeline("serve.burst",
			"requests", "p50_nanos", "p99_nanos", "major", "minor",
			"refaults", "evicted", "resident_text", "resident_heap")
		if scfg.Streams > 1 {
			streamHists = make([]*obs.Histogram, scfg.Streams)
			for s := range streamHists {
				streamHists[s] = o.Obs.Histogram(
					fmt.Sprintf("serve.stream%02d.latency_nanos", s), obs.LatencyBuckets())
			}
		}
	}

	out := &ServeOutcome{
		Workload:     w.Name,
		Strategy:     strategy,
		Config:       scfg,
		StartupNanos: float64(st.TimeToResponse.Nanoseconds()),
	}
	var trace *obs.RequestTrace
	if scfg.RecordRequests {
		trace = obs.NewRequestTrace(scfg.Streams, scfg.Bursts*scfg.BurstSize*scfg.Streams)
		trace.Workload = w.Name
		trace.Layout = strategy
	}
	// The server clock: one simulated CPU executing requests back to back,
	// so elapsed server time is the machine's CPU nanos plus all fault I/O
	// it has waited on.
	clock := func() float64 {
		return proc.Machine.SimTimeNanos() + float64(proc.Mapping.IOTime.Nanoseconds())
	}
	var warm, all []float64
	reqByStream := make([]int, scfg.Streams) // per-stream request ordinal, for routes
	reqID := 0
	for b := 0; b < scfg.Bursts; b++ {
		evict0 := f.EvictedPages()
		if b > 0 && scfg.PressurePct > 0 {
			o.ReclaimFraction(scfg.PressurePct)
			trace.Mark(obs.MarkReclaim, b, clock())
		}
		trace.Mark(obs.MarkBurst, b, clock())
		faults0 := proc.Mapping.Faults
		major0 := proc.Mapping.MajorFaults
		refault0 := proc.Mapping.Refaults
		io0 := proc.Mapping.IOTime
		// Closed-loop clients: every stream submits its first request at
		// the burst start and its next one the instant the previous
		// response returns. The single-CPU server drains the burst in the
		// seeded interleave order; the gap between a request's arrival and
		// its service start is queue wait.
		burstStart := clock()
		arrival := make([]float64, scfg.Streams)
		remaining := make([]int, scfg.Streams)
		for s := range remaining {
			arrival[s] = burstStart
			remaining[s] = scfg.BurstSize
		}
		total := scfg.Streams * scfg.BurstSize
		lats := make([]float64, 0, total)
		var queueSum, queueMax float64
		for t := 0; t < total; t++ {
			s := pickStream(scfg, b, t, remaining)
			remaining[s]--
			k := reqByStream[s]
			reqByStream[s]++
			route := routeForStream(s, k, scfg, w.Serve.Routes)
			if scfg.Streams > 1 {
				proc.Mapping.SetStream(s)
			}
			serviceStart := clock()
			rFaults0 := proc.Mapping.Faults
			rMajor0 := proc.Mapping.MajorFaults
			rRefault0 := proc.Mapping.Refaults
			rIO0 := proc.Mapping.IOTime
			steps0 := proc.Machine.Steps
			if _, err := proc.Machine.RunMethod(meth, heap.IntVal(int64(route))); err != nil {
				proc.Close()
				return nil, fmt.Errorf("eval: serve %s burst %d request %d: %w", w.Name, b, t, err)
			}
			end := clock()
			service := end - serviceStart
			queue := serviceStart - arrival[s]
			lat := queue + service
			arrival[s] = end
			queueSum += queue
			if queue > queueMax {
				queueMax = queue
			}
			lats = append(lats, lat)
			latHist.Observe(lat)
			if streamHists != nil {
				streamHists[s].Observe(lat)
			}
			trace.Record(obs.RequestRecord{
				ID: reqID, Stream: s, Burst: b, Route: route,
				StartNanos: serviceStart - queue, QueueNanos: queue,
				ServiceNanos: service, LatencyNanos: lat,
				Steps:       proc.Machine.Steps - steps0,
				Faults:      proc.Mapping.Faults - rFaults0,
				MajorFaults: proc.Mapping.MajorFaults - rMajor0,
				Refaults:    proc.Mapping.Refaults - rRefault0,
				IONanos:     (proc.Mapping.IOTime - rIO0).Nanoseconds(),
			})
			reqID++
		}
		sort.Float64s(lats)
		major := proc.Mapping.MajorFaults - major0
		bm := BurstMeasure{
			Burst:         b,
			Requests:      len(lats),
			P50Nanos:      obs.QuantileExact(lats, 0.50),
			P90Nanos:      obs.QuantileExact(lats, 0.90),
			P99Nanos:      obs.QuantileExact(lats, 0.99),
			MeanNanos:     Mean(lats),
			MajorFaults:   major,
			MinorFaults:   (proc.Mapping.Faults - faults0) - major,
			Refaults:      proc.Mapping.Refaults - refault0,
			IONanos:       (proc.Mapping.IOTime - io0).Nanoseconds(),
			EvictedPages:  f.EvictedPages() - evict0,
			ResidentText:  f.ResidentInSection(image.SectionText),
			ResidentHeap:  f.ResidentInSection(image.SectionHeap),
			MaxQueueNanos: queueMax,
		}
		if len(lats) > 0 {
			bm.MeanQueueNanos = queueSum / float64(len(lats))
		}
		out.Bursts = append(out.Bursts, bm)
		if burstTl != nil {
			burstTl.Record(fmt.Sprintf("burst-%d", b),
				int64(bm.Requests), int64(bm.P50Nanos), int64(bm.P99Nanos),
				bm.MajorFaults, bm.MinorFaults, bm.Refaults, bm.EvictedPages,
				int64(bm.ResidentText), int64(bm.ResidentHeap))
		}
		all = append(all, lats...)
		if b >= 1 {
			warm = append(warm, lats...)
		}
	}
	if len(warm) == 0 {
		// Single-burst configs: the cold burst is all there is.
		warm = all
	}
	sort.Float64s(warm)
	out.WarmMeanNanos = Mean(warm)
	out.WarmP99Nanos = obs.QuantileExact(warm, 0.99)
	out.Requests = trace
	out.EvictedPages = f.EvictedPages()
	out.RefaultPages = f.RefaultedPages()
	if tab := proc.AttributionTable(); tab != nil {
		tab.Layout = strategy
		out.Attrib = tab
	}
	if g := proc.AffinityGraph(); g != nil {
		g.Layout = strategy
		out.Affinity = g
		sc, err := affinity.Score(g,
			affinity.NewPlacement(img.AttributionIndex().Symbols()),
			strategy, scfg.PressurePct, scfg.CacheBudget)
		if err != nil {
			proc.Close()
			return nil, err
		}
		out.Scorecard = sc
	}
	proc.Close()
	if o.Obs != nil {
		out.Report = o.Obs.Snapshot()
	}
	return out, nil
}

// ServeStrategies are the layouts the serve figures compare, from the
// strategy registry: the text-side orderer, the heap-side orderer, their
// combination, and the two graph-based serve layouts.
func ServeStrategies() []string {
	return core.ServeStrategyNames()
}

// ServeLatencyTable compares warm-burst mean latency (baseline / strategy,
// >1 means the layout is faster) per serve workload under one pressure
// level. A nil workload set means every serve workload; nil strategies
// mean ServeStrategies().
func (h *Harness) ServeLatencyTable(ws []workloads.Workload, scfg ServeConfig, strategies []string) (*Table, error) {
	return h.serveTable(
		fmt.Sprintf("Serve warm-burst latency (pressure %d%%)", scfg.withDefaults().PressurePct),
		"warm-burst latency speedup", ws, scfg, strategies,
		func(o *ServeOutcome) float64 { return o.WarmMeanNanos })
}

// ServeRefaultTable compares total re-faulted pages (baseline / strategy,
// >1 means the layout re-faults less) per serve workload under one
// pressure level.
func (h *Harness) ServeRefaultTable(ws []workloads.Workload, scfg ServeConfig, strategies []string) (*Table, error) {
	return h.serveTable(
		fmt.Sprintf("Serve re-fault volume (pressure %d%%)", scfg.withDefaults().PressurePct),
		"re-fault reduction", ws, scfg, strategies,
		func(o *ServeOutcome) float64 { return float64(o.RefaultPages) })
}

func (h *Harness) serveTable(title, metric string, ws []workloads.Workload, scfg ServeConfig, strategies []string, val func(*ServeOutcome) float64) (*Table, error) {
	if ws == nil {
		ws = workloads.Serve()
	}
	if strategies == nil {
		strategies = ServeStrategies()
	}
	t := &Table{Title: title, Metric: metric, Strategies: strategies}
	for _, w := range ws {
		base, err := h.MeasureServe(w, LayoutBaseline, scfg)
		if err != nil {
			return nil, err
		}
		var bs []float64
		for _, o := range base {
			bs = append(bs, val(o))
		}
		for _, s := range strategies {
			opt, err := h.MeasureServe(w, s, scfg)
			if err != nil {
				return nil, err
			}
			var os []float64
			for _, o := range opt {
				os = append(os, val(o))
			}
			t.Cells = append(t.Cells, FactorCell(w.Name, s, bs, os))
		}
	}
	t.AddGeoMean()
	t.SortCells()
	return t, nil
}

// ServeFigure produces the serve-mode comparison: per pressure level, a
// warm-burst latency table and a re-fault volume table. The default
// pressure levels (30% and 70%) bracket mild and severe inter-burst
// reclaim.
func (h *Harness) ServeFigure(pressures []int) ([]*Table, error) {
	if len(pressures) == 0 {
		pressures = []int{30, 70}
	}
	var out []*Table
	for _, p := range pressures {
		scfg := DefaultServeConfig()
		scfg.PressurePct = p
		lt, err := h.ServeLatencyTable(nil, scfg, nil)
		if err != nil {
			return nil, err
		}
		rt, err := h.ServeRefaultTable(nil, scfg, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, lt, rt)
	}
	return out, nil
}
