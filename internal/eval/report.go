package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"nimage/internal/core"
	"nimage/internal/obs"
	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
	"nimage/internal/workloads"
)

// ReportSchema versions the consolidated run-report document. v2 added the
// per-entry fault attribution table (merged over all builds × iterations)
// and the per-measure attribution tables inside Runs; v3 added the optional
// per-entry serve-mode outcomes (burst telemetry under cache pressure); v4
// added the per-entry temporal co-access affinity graph (merged over builds
// and iterations, schema nimage.affinity/v1) and the per-measure layout
// scorecards; v5 added the optional top-level SLO section (schema
// nimage.slo/v1: per-strategy attainment and error-budget burn over the
// serve request traces) and the per-outcome request traces behind it;
// v6 adds the optional top-level fleet section (schema nimage.fleet/v1:
// per-tenant scorecards and the cross-tenant interference matrix of a
// shared-cache fleet run).
const ReportSchema = "nimage.report/v6"

// Report is the consolidated observability document the evaluation emits:
// per workload and strategy, the build-pipeline snapshots (stage spans,
// profiler dump statistics, match gauges) and the per-iteration run
// snapshots (fault timelines, instruction mix, run totals).
type Report struct {
	Schema     string `json:"schema"`
	Device     string `json:"device"`
	Builds     int    `json:"builds"`
	Iterations int    `json:"iterations"`
	// Workers is the scheduler's worker-pool size while producing this
	// document.
	Workers int `json:"workers"`
	// ParallelSpeedup is the ratio of cumulative build+measure task time
	// to the wall-clock time the measurements took — the effective
	// parallelism the scheduler achieved (≈1 for a serial run, 0 when
	// everything was already memoized).
	ParallelSpeedup float64       `json:"parallel_speedup"`
	Entries         []ReportEntry `json:"entries"`
	// SLO is the serve SLO scorecard built from the entries' request
	// traces (schema nimage.slo/v1); nil unless the report was produced by
	// the serve protocol with request recording on.
	SLO *obs.SLOReport `json:"slo,omitempty"`
	// Fleet is the multi-tenant observatory scorecard (schema
	// nimage.fleet/v1); nil unless the report was produced by a fleet run.
	Fleet *obs.FleetReport `json:"fleet,omitempty"`
}

// ReportEntry is the report of one (workload, strategy) pair. Strategy is
// empty for the unmodified baseline images.
type ReportEntry struct {
	Workload string `json:"workload"`
	Service  bool   `json:"service"`
	Strategy string `json:"strategy,omitempty"`
	// Pipeline holds one snapshot per build: stage durations of every
	// image build plus, for strategies, the profiling run and
	// post-processing phases and the profiler's buffer statistics.
	Pipeline []*obs.Snapshot `json:"pipeline,omitempty"`
	// Runs holds one snapshot per cold-cache benchmark iteration.
	Runs []*obs.Snapshot `json:"runs,omitempty"`
	// Measures are the scalar per-iteration measurements (with Report and
	// Attrib stripped — the snapshots live in Runs, the attribution merged
	// in Attribution).
	Measures []RunMeasure `json:"measures"`
	// Attribution is the per-symbol fault attribution merged over every
	// build and iteration of the entry (schema nimage.attrib/v1); nil
	// unless the harness observes.
	Attribution *attrib.Table `json:"attribution,omitempty"`
	// Affinity is the temporal co-access graph merged over every build and
	// iteration of the entry (schema nimage.affinity/v1); nil unless the
	// harness observes or tracks affinity. The per-measure scorecards stay
	// inside Measures/Serve.
	Affinity *affinity.Graph `json:"affinity,omitempty"`
	// HeapMatch is the object match breakdown of the last optimized build;
	// nil for the baseline and for pure code strategies.
	HeapMatch *core.MatchBreakdown `json:"heap_match,omitempty"`
	// Serve holds the serve-mode outcomes (one per build) when the entry
	// was produced by the serve protocol; nil for cold-start entries.
	Serve []*ServeOutcome `json:"serve,omitempty"`
}

// Report measures every workload against every strategy (plus baseline)
// and assembles the consolidated document. The harness should be
// configured with Observe: true — otherwise the entries carry scalar
// measures only.
func (h *Harness) Report(ws []workloads.Workload, strategies []string) (*Report, error) {
	rep := &Report{
		Schema:     ReportSchema,
		Device:     h.Cfg.Device.Name,
		Builds:     h.Cfg.Builds,
		Iterations: h.Cfg.Iterations,
		Workers:    h.Workers(),
	}
	start := time.Now()
	workBefore := h.WorkDuration()
	if err := h.Prefetch(ws, strategies); err != nil {
		return nil, err
	}
	if wall := time.Since(start); wall > 0 {
		work := h.WorkDuration() - workBefore
		// Rounded so the document stays readable; the value is inherently
		// timing-dependent (unlike the measures, which are deterministic).
		rep.ParallelSpeedup = math.Round(100*work.Seconds()/wall.Seconds()) / 100
	}
	for _, w := range ws {
		base, err := h.MeasureBaselineOutcome(w)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, ReportEntry{
			Workload:    w.Name,
			Service:     w.Service,
			Pipeline:    base.Pipeline,
			Runs:        stripReports(base.Measures),
			Measures:    scalarMeasures(base.Measures),
			Attribution: mergedAttribution(base.Measures),
			Affinity:    mergedAffinity(base.Measures),
		})
		for _, s := range strategies {
			out, err := h.MeasureStrategy(w, s)
			if err != nil {
				return nil, err
			}
			e := ReportEntry{
				Workload:    w.Name,
				Service:     w.Service,
				Strategy:    s,
				Pipeline:    out.Pipeline,
				Runs:        stripReports(out.Measures),
				Measures:    scalarMeasures(out.Measures),
				Attribution: mergedAttribution(out.Measures),
				Affinity:    mergedAffinity(out.Measures),
			}
			if out.HeapMatch.Strategy != "" {
				hm := out.HeapMatch
				e.HeapMatch = &hm
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, nil
}

// ServeReport measures one serve workload under the baseline and the given
// strategies and assembles a consolidated document: one entry per layout,
// carrying the per-build serve outcomes (with their obs snapshots in Runs
// and the attribution merged across builds). When the config records
// requests, the per-layout request traces are additionally scored against
// DefaultSLOTargets into the report's SLO section (at the config's single
// pressure level — the full sweep lives in Harness.SLOReport).
func (h *Harness) ServeReport(w workloads.Workload, strategies []string, scfg ServeConfig) (*Report, error) {
	rep := &Report{
		Schema:     ReportSchema,
		Device:     h.Cfg.Device.Name,
		Builds:     h.Cfg.Builds,
		Iterations: 1,
		Workers:    h.Workers(),
	}
	dcfg := scfg.withDefaults()
	targets := obs.DefaultSLOTargets()
	for _, s := range append([]string{LayoutBaseline}, strategies...) {
		outs, err := h.MeasureServe(w, s, scfg)
		if err != nil {
			return nil, err
		}
		if scfg.RecordRequests {
			if rep.SLO == nil {
				rep.SLO = &obs.SLOReport{
					Schema:    obs.SLOSchema,
					Streams:   dcfg.Streams,
					Pressures: []int{dcfg.PressurePct},
					Targets:   targets,
				}
			}
			rep.SLO.Entries = append(rep.SLO.Entries, sloEntry(w.Name, s, dcfg, outs, targets))
		}
		e := ReportEntry{
			Workload: w.Name,
			Service:  true,
			Serve:    make([]*ServeOutcome, 0, len(outs)),
		}
		if s != LayoutBaseline {
			e.Strategy = s
		}
		var tabs []*attrib.Table
		var graphs []*affinity.Graph
		for _, o := range outs {
			oc := *o
			if oc.Report != nil {
				e.Runs = append(e.Runs, oc.Report)
				oc.Report = nil
			}
			if oc.Attrib != nil {
				tabs = append(tabs, oc.Attrib)
				oc.Attrib = nil
			}
			if oc.Affinity != nil {
				// The merged graph lives once on the entry; the per-build
				// scorecards stay on the outcomes.
				graphs = append(graphs, oc.Affinity)
				oc.Affinity = nil
			}
			e.Serve = append(e.Serve, &oc)
		}
		if len(tabs) > 0 {
			e.Attribution = attrib.Merge(tabs...)
		}
		if len(graphs) > 0 {
			e.Affinity = affinity.Merge(graphs...)
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

// FleetServeReport wraps one fleet run in the consolidated report
// document: one entry per tenant names the fleet's workload × strategy
// pairs (with the tenant's obs snapshot in Runs), and the Fleet section
// carries the nimage.fleet/v1 scorecard with the interference matrix.
func (h *Harness) FleetServeReport(fcfg FleetConfig) (*Report, error) {
	fos, err := h.MeasureFleet(fcfg)
	if err != nil {
		return nil, err
	}
	fo := fos[0]
	rep := &Report{
		Schema:     ReportSchema,
		Device:     h.Cfg.Device.Name,
		Builds:     h.Cfg.Builds,
		Iterations: 1,
		Workers:    h.Workers(),
		Fleet:      fo.FleetReport(),
	}
	// The fleet run shares one OS, hence one snapshot; attach it to the
	// first entry only so the document stays non-redundant.
	snap := fo.Report
	for _, t := range fo.Tenants {
		e := ReportEntry{Workload: t.Spec.Workload, Service: true}
		if t.Spec.Strategy != LayoutBaseline {
			e.Strategy = t.Spec.Strategy
		}
		if snap != nil {
			e.Runs = []*obs.Snapshot{snap}
			snap = nil
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

// stripReports extracts the run snapshots of the measures.
func stripReports(ms []RunMeasure) []*obs.Snapshot {
	var out []*obs.Snapshot
	for _, m := range ms {
		if m.Report != nil {
			out = append(out, m.Report)
		}
	}
	return out
}

// scalarMeasures copies the measures without their snapshots, attribution
// tables and affinity graphs (the entry carries those once, in Runs,
// Attribution and Affinity); the small per-measure scorecards survive.
func scalarMeasures(ms []RunMeasure) []RunMeasure {
	out := make([]RunMeasure, len(ms))
	copy(out, ms)
	for i := range out {
		out[i].Report = nil
		out[i].Attrib = nil
		out[i].Affinity = nil
	}
	return out
}

// mergedAttribution folds the per-iteration attribution tables of the
// measures into one table (nil when the harness ran detached).
func mergedAttribution(ms []RunMeasure) *attrib.Table {
	var tabs []*attrib.Table
	for _, m := range ms {
		if m.Attrib != nil {
			tabs = append(tabs, m.Attrib)
		}
	}
	if len(tabs) == 0 {
		return nil
	}
	return attrib.Merge(tabs...)
}

// mergedAffinity folds the per-iteration affinity graphs of the measures
// into one graph (nil when the harness ran without affinity tracking).
func mergedAffinity(ms []RunMeasure) *affinity.Graph {
	var graphs []*affinity.Graph
	for _, m := range ms {
		if m.Affinity != nil {
			graphs = append(graphs, m.Affinity)
		}
	}
	if len(graphs) == 0 {
		return nil
	}
	return affinity.Merge(graphs...)
}

// WriteJSON writes the report as an indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("eval: encoding report: %w", err)
	}
	return nil
}
