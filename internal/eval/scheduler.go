package eval

// The concurrent evaluation scheduler. The protocol's (workload, strategy,
// build) matrix is embarrassingly parallel — every image.Build is a pure
// function of (program, options, seed) and every benchmark iteration owns a
// private osim.OS — so the harness fans the per-build work of every
// measurement out across a bounded worker pool and collapses duplicate
// concurrent measurements with singleflight memoization.
//
// Determinism contract: results are bit-identical for every worker count
// and completion order. Build seeds stay derived from the build index,
// result slices are pre-sized and indexed by build (never appended in
// completion order), and errors are reported in matrix order, so
// Config.Workers only changes wall-clock time, never output bytes.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nimage/internal/workloads"
)

// flight is one in-progress memoized computation. Concurrent callers of the
// same key block on done instead of duplicating the (multi-second) work.
type flight struct {
	done chan struct{}
	err  error
}

// sched is the harness's worker pool and singleflight state.
type sched struct {
	mu       sync.Mutex
	inflight map[string]*flight

	semOnce sync.Once
	sem     chan struct{}

	// workNanos accumulates the wall-clock time spent inside scheduled
	// tasks; compared against real elapsed time it yields the achieved
	// parallel speedup.
	workNanos atomic.Int64
	// buildTasks counts executed build+measure tasks (tests assert that
	// singleflight never duplicates one).
	buildTasks atomic.Int64
}

// Workers returns the effective worker-pool size: Config.Workers when
// positive, otherwise runtime.GOMAXPROCS(0).
func (h *Harness) Workers() int {
	if h.Cfg.Workers > 0 {
		return h.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// WorkDuration returns the cumulative wall-clock time spent inside
// scheduled build+measure tasks so far.
func (h *Harness) WorkDuration() time.Duration {
	return time.Duration(h.sched.workNanos.Load())
}

// slots returns the worker-slot semaphore, sized on first use so callers
// may set Cfg.Workers any time before the first measurement.
func (h *Harness) slots() chan struct{} {
	h.sched.semOnce.Do(func() {
		n := h.Workers()
		if n < 1 {
			n = 1
		}
		h.sched.sem = make(chan struct{}, n)
	})
	return h.sched.sem
}

// once collapses concurrent computations of the same memoization key: the
// first caller runs fn, every concurrent caller blocks until it finishes
// and shares its error. The entry is removed afterwards — results live in
// the harness caches, so later callers hit those, and failed computations
// may be retried.
func (h *Harness) once(key string, fn func() error) error {
	h.sched.mu.Lock()
	if h.sched.inflight == nil {
		h.sched.inflight = make(map[string]*flight)
	}
	if f, ok := h.sched.inflight[key]; ok {
		h.sched.mu.Unlock()
		<-f.done
		return f.err
	}
	f := &flight{done: make(chan struct{})}
	h.sched.inflight[key] = f
	h.sched.mu.Unlock()

	f.err = fn()

	h.sched.mu.Lock()
	delete(h.sched.inflight, key)
	h.sched.mu.Unlock()
	close(f.done)
	return f.err
}

// task runs fn under a worker slot, accounting its wall time. Tasks must
// not schedule nested tasks (the slot would deadlock the pool at
// Workers=1); the harness only creates them at the build granularity.
func (h *Harness) task(fn func() error) error {
	sem := h.slots()
	sem <- struct{}{}
	defer func() { <-sem }()
	start := time.Now()
	defer func() { h.sched.workNanos.Add(time.Since(start).Nanoseconds()) }()
	return fn()
}

// forEach runs fn(0..n-1) as scheduler tasks and waits for all of them.
// Errors are collected per index and the lowest-index one is returned, so
// the reported error does not depend on completion order.
func (h *Harness) forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return h.task(func() error { return fn(0) })
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = h.task(func() error { return fn(i) })
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Prefetch warms the baseline and per-strategy caches of every workload
// concurrently. One lightweight coordinator goroutine per (workload,
// strategy) pair enters the singleflight-guarded measurement, whose
// per-build tasks are throttled by the worker pool — so the effective unit
// of parallelism is the full (workload, strategy, build) matrix. Table
// assembly afterwards is pure cache reads in deterministic order. The
// returned error is the matrix-order first error.
func (h *Harness) Prefetch(ws []workloads.Workload, strategies []string) error {
	stride := 1 + len(strategies)
	errs := make([]error, len(ws)*stride)
	var wg sync.WaitGroup
	for wi := range ws {
		w := ws[wi]
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			_, errs[slot] = h.MeasureBaselineOutcome(w)
		}(wi * stride)
		for si := range strategies {
			s := strategies[si]
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				_, errs[slot] = h.MeasureStrategy(w, s)
			}(wi*stride + 1 + si)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
