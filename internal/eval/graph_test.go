package eval

// Acceptance tests for the graph-based serve layouts (c3, ext-tsp): the
// registry routes them through the serve figure, at least one of them
// beats the combined cu+heap-path layout on the measured refault-factor
// geomean, and the static scorecard's predicted ordering agrees with the
// measured one.

import (
	"math"
	"testing"

	"nimage/internal/core"
	"nimage/internal/workloads"
)

// graphServeConfig mirrors TestPredictedRefaultOrderingMatchesMeasured:
// eight full-size bursts under a tight resident budget, so inter-burst
// reclaim actually evicts pages the next burst revisits and the refault
// columns carry signal instead of single-page noise.
func graphServeConfig(pressure int) ServeConfig {
	scfg := DefaultServeConfig()
	scfg.Bursts = 8
	scfg.CacheBudget = 48
	scfg.PressurePct = pressure
	return scfg
}

// TestGraphStrategyBeatsCombinedOnServeRefaults is the tentpole acceptance
// criterion: the graph-based layouts bake from a serve-phase affinity
// recording that sees the burst traffic, while cu+heap path profiles only
// the startup prefix — so on the serve refault-factor geomean (across both
// serve workloads), c3 or ext-tsp must win at 30% or 70% pressure.
func TestGraphStrategyBeatsCombinedOnServeRefaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 2
	cfg.Iterations = 1
	h := NewHarness(cfg)
	ws := workloads.Serve()
	strategies := []string{core.StrategyCombined, core.StrategyC3, core.StrategyExtTSP}

	geomeans := make(map[int]map[string]float64)
	for _, pressure := range []int{30, 70} {
		tab, err := h.ServeRefaultTable(ws, graphServeConfig(pressure), strategies)
		if err != nil {
			t.Fatal(err)
		}
		geomeans[pressure] = make(map[string]float64)
		for _, s := range strategies {
			c := tab.Get(GeoMeanRow, s)
			if c == nil {
				t.Fatalf("pressure %d%%: no geomean cell for %q", pressure, s)
			}
			if c.Degenerate || math.IsNaN(c.Factor) {
				t.Fatalf("pressure %d%%: degenerate refault geomean for %q (no measurable refaults)", pressure, s)
			}
			geomeans[pressure][s] = c.Factor
		}
	}

	won := false
	for pressure, g := range geomeans {
		best := math.Max(g[core.StrategyC3], g[core.StrategyExtTSP])
		t.Logf("pressure %d%%: refault-factor geomeans combined=%.3f c3=%.3f ext-tsp=%.3f",
			pressure, g[core.StrategyCombined], g[core.StrategyC3], g[core.StrategyExtTSP])
		if best > g[core.StrategyCombined] {
			won = true
		}
	}
	if !won {
		t.Fatalf("neither c3 nor ext-tsp beats %q on the refault-factor geomean at 30%% or 70%% pressure: %v",
			core.StrategyCombined, geomeans)
	}
}

// measuredGapDecisive reports whether two measured refault means differ
// by more than build-to-build noise (10% of the larger mean, over the
// harness's two seed-perturbed builds) — only then does the measurement
// carry an ordering the static scorecard proxy must reproduce.
func measuredGapDecisive(a, b float64) bool {
	gap := math.Abs(a - b)
	return gap > 0.1*math.Max(a, b)
}

// TestPredictedOrderingMatchesMeasuredGraphStrategies extends the
// scorecard acceptance criterion to the graph strategies: wherever the
// measured refault means of two strategies decisively differ, the
// scorecard's predicted refaults must rank them the same way.
func TestPredictedOrderingMatchesMeasuredGraphStrategies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 2
	cfg.Iterations = 1
	cfg.TrackAffinity = true
	h := NewHarness(cfg)
	strategies := []string{core.StrategyCombined, core.StrategyC3, core.StrategyExtTSP}
	for _, name := range []string{"serve-api", "serve-cache"} {
		w := serveWorkload(t, name)
		for _, pressure := range []int{30, 70} {
			scfg := graphServeConfig(pressure)
			_, cards, err := h.AffinityScorecards(w, scfg, strategies)
			if err != nil {
				t.Fatal(err)
			}
			predicted := make(map[string]int64)
			for _, c := range cards[1:] {
				predicted[c.Strategy] = c.PredictedRefaults
			}
			measured := make(map[string]float64)
			for _, s := range strategies {
				outs, err := h.MeasureServe(w, s, scfg)
				if err != nil {
					t.Fatal(err)
				}
				var refaults []float64
				for _, o := range outs {
					refaults = append(refaults, float64(o.RefaultPages))
				}
				measured[s] = Mean(refaults)
			}
			for i, a := range strategies {
				for _, b := range strategies[i+1:] {
					if !measuredGapDecisive(measured[a], measured[b]) {
						// A measured near-tie carries no ordering to agree with.
						continue
					}
					if (predicted[a] < predicted[b]) != (measured[a] < measured[b]) {
						t.Errorf("%s @ %d%%: predicted %s=%d %s=%d, measured %s=%v %s=%v — orderings disagree",
							name, pressure, a, predicted[a], b, predicted[b], a, measured[a], b, measured[b])
					}
				}
			}
		}
	}
}

// TestServeTablesCoverRegisteredServeStrategies: the serve figure's tables
// default their strategy set from the registry, so every Serve-flagged
// strategy — including the graph-based ones — gets a column with a cell
// per workload plus a geomean cell, with no hard-coded list to forget to
// update.
func TestServeTablesCoverRegisteredServeStrategies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	ws := workloads.Serve()
	tab, err := h.ServeRefaultTable(ws, serveTestConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := core.ServeStrategyNames()
	if len(tab.Strategies) != len(want) {
		t.Fatalf("table strategies %v, want registry serve set %v", tab.Strategies, want)
	}
	for i, s := range want {
		if tab.Strategies[i] != s {
			t.Fatalf("table strategies %v, want registry serve set %v", tab.Strategies, want)
		}
	}
	for _, mustHave := range []string{core.StrategyC3, core.StrategyExtTSP} {
		found := false
		for _, s := range tab.Strategies {
			if s == mustHave {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry serve set %v is missing %q", tab.Strategies, mustHave)
		}
	}
	for _, s := range want {
		for _, w := range ws {
			if tab.Get(w.Name, s) == nil {
				t.Errorf("no cell for workload %q strategy %q", w.Name, s)
			}
		}
		if tab.Get(GeoMeanRow, s) == nil {
			t.Errorf("no geomean cell for strategy %q", s)
		}
	}
}
