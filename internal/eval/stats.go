// Package eval reproduces the paper's evaluation (Sec. 7): for every
// workload and ordering strategy it builds several images, runs each a
// number of iterations with the page cache dropped in between, measures
// page faults by section and simulated execution time, and reports
// baseline/optimized factors with 95% confidence intervals — the data
// behind Figures 2–5, the profiling-overhead table (Sec. 7.4), the
// accessed-object fraction (Sec. 7.2), and the Fig. 6 page-grid
// visualization.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// GeoMean returns the geometric mean of xs (0 when any value is <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// RatioCI propagates the uncertainty of a ratio a/b from the CIs of its
// numerator and denominator (first-order delta method). Degenerate cases
// are explicit rather than silently 0: a zero denominator yields NaN (the
// ratio itself is not measurable), and a zero numerator whose measurements
// still have spread yields the first-order absolute uncertainty aCI/|b|.
func RatioCI(a, aCI, b, bCI float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	if a == 0 {
		return math.Abs(aCI / b)
	}
	r := a / b
	return math.Abs(r) * math.Sqrt((aCI/a)*(aCI/a)+(bCI/b)*(bCI/b))
}

// Cell is one bar of a figure: a factor with its confidence interval.
type Cell struct {
	Workload string
	Strategy string
	// Factor is M_baseline / M_optimized (higher is better, Sec. 7.1).
	Factor float64
	// CI is the 95% confidence half-width of the factor.
	CI float64
	// BaselineMean / OptimizedMean are the underlying means.
	BaselineMean  float64
	OptimizedMean float64
	// Degenerate marks cells whose factor is not measurable because the
	// denominator mean is zero. Factor and CI are NaN (which renders as an
	// explicit "NaN" column in CSV), and the cell is excluded from
	// geomeans.
	Degenerate bool
}

// Table is the data behind one figure.
type Table struct {
	Title      string
	Metric     string
	Strategies []string
	Cells      []Cell
}

// Get returns the cell for (workload, strategy), or nil.
func (t *Table) Get(workload, strategy string) *Cell {
	for i := range t.Cells {
		if t.Cells[i].Workload == workload && t.Cells[i].Strategy == strategy {
			return &t.Cells[i]
		}
	}
	return nil
}

// Workloads returns the distinct workloads in first-appearance order,
// excluding the geomean pseudo-row.
func (t *Table) Workloads() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range t.Cells {
		if c.Workload == GeoMeanRow || seen[c.Workload] {
			continue
		}
		seen[c.Workload] = true
		out = append(out, c.Workload)
	}
	return out
}

// GeoMeanRow is the pseudo-workload name of the geometric-mean bars.
const GeoMeanRow = "geomean"

// AddGeoMean appends per-strategy geometric-mean cells across workloads
// (the paper reports the geomean after the AWFY benchmarks, Sec. 7.1).
// Degenerate cells are excluded; a column with no measurable cells yields
// a degenerate geomean cell.
func (t *Table) AddGeoMean() {
	for _, s := range t.Strategies {
		var fs []float64
		for _, c := range t.Cells {
			if c.Strategy == s && c.Workload != GeoMeanRow && !c.Degenerate {
				fs = append(fs, c.Factor)
			}
		}
		cell := Cell{Workload: GeoMeanRow, Strategy: s}
		if len(fs) == 0 {
			cell.Degenerate = true
			cell.Factor = math.NaN()
			cell.CI = math.NaN()
		} else {
			cell.Factor = GeoMean(fs)
		}
		t.Cells = append(t.Cells, cell)
	}
}

// CSV renders the table as CSV (workload, strategy, factor, ci, baseline,
// optimized).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("workload,strategy,factor,ci95,baseline,optimized\n")
	for _, c := range t.Cells {
		fmt.Fprintf(&sb, "%s,%s,%.4f,%.4f,%.2f,%.2f\n",
			c.Workload, c.Strategy, c.Factor, c.CI, c.BaselineMean, c.OptimizedMean)
	}
	return sb.String()
}

// Render draws the table as an ASCII bar chart grouped by workload, the
// textual analogue of the paper's figures.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s; factor = baseline/optimized, higher is better)\n", t.Title, t.Metric)
	maxF := 1.0
	for _, c := range t.Cells {
		if c.Factor > maxF {
			maxF = c.Factor
		}
	}
	const width = 40
	names := append(t.Workloads(), GeoMeanRow)
	for _, w := range names {
		any := false
		for _, s := range t.Strategies {
			if t.Get(w, s) != nil {
				any = true
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(&sb, "%s\n", w)
		for _, s := range t.Strategies {
			c := t.Get(w, s)
			if c == nil {
				continue
			}
			if c.Degenerate {
				fmt.Fprintf(&sb, "  %-16s %-*s n/a (zero mean)\n", s, width, "")
				continue
			}
			n := int(c.Factor / maxF * width)
			if n < 0 {
				n = 0
			}
			bar := strings.Repeat("#", n)
			ci := ""
			if c.CI > 0 {
				ci = fmt.Sprintf(" ±%.2f", c.CI)
			}
			fmt.Fprintf(&sb, "  %-16s %-*s %.2fx%s\n", s, width, bar, c.Factor, ci)
		}
	}
	return sb.String()
}

// SortCells orders cells by workload (keeping the strategy order given).
func (t *Table) SortCells() {
	rank := map[string]int{}
	for i, s := range t.Strategies {
		rank[s] = i
	}
	sort.SliceStable(t.Cells, func(i, j int) bool {
		a, b := t.Cells[i], t.Cells[j]
		if a.Workload != b.Workload {
			// geomean last.
			if a.Workload == GeoMeanRow {
				return false
			}
			if b.Workload == GeoMeanRow {
				return true
			}
			return a.Workload < b.Workload
		}
		return rank[a.Strategy] < rank[b.Strategy]
	})
}
