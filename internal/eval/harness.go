package eval

import (
	"fmt"
	"sync"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/image"
	"nimage/internal/ir"
	"nimage/internal/obs"
	"nimage/internal/osim"
	"nimage/internal/profiler"
	"nimage/internal/vm"
	"nimage/internal/workloads"
)

// Config tunes the evaluation protocol (Sec. 7.1). The paper uses 10
// builds × 10 iterations; the defaults are smaller for tractable runtimes
// but follow the same protocol.
type Config struct {
	// Builds is the number of images per strategy (different build seeds).
	Builds int
	// Iterations is the number of runs per image; caches are dropped
	// between iterations.
	Iterations int
	// Device is the storage backing the binaries (SSD by default).
	Device osim.Device
	// FaultAround is the OS fault-around cluster size in pages.
	FaultAround int
	// AdaptiveReadahead enables Linux-style readahead escalation (rewards
	// layouts whose access order matches their layout order).
	AdaptiveReadahead bool
	// Compiler is the compiler configuration shared by all builds.
	Compiler graal.Config
	// Observe attaches a fresh obs registry to every build (pipeline spans,
	// match statistics) and every benchmark iteration (fault timelines,
	// instruction mix), populating RunMeasure.Report and the Pipeline
	// snapshots of the outcomes. Off by default: the measurement fast paths
	// then carry no instrumentation cost.
	Observe bool
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		Builds:      3,
		Iterations:  3,
		Device:      osim.SSD(),
		FaultAround: osim.DefaultFaultAround,
		Compiler:    graal.DefaultConfig(),
	}
}

// Strategies lists the evaluated strategies in figure order.
func Strategies() []string {
	return []string{
		core.StrategyCU,
		core.StrategyMethod,
		core.StrategyIncremental,
		core.StrategyStructural,
		core.StrategyHeapPath,
		core.StrategyCombined,
	}
}

// RunMeasure is one benchmark iteration's measurements.
type RunMeasure struct {
	TextFaults float64 `json:"text_faults"`
	HeapFaults float64 `json:"heap_faults"`
	// Time is the end-to-end execution time for AWFY workloads, or the
	// elapsed time until the first response for microservices (seconds).
	Time float64 `json:"time_seconds"`
	// CPUSeconds is the compute share of Time (no fault I/O); the
	// profiling-overhead table compares compute times, since cold-start
	// I/O would mask the tracing cost (Sec. 7.4 measures steady
	// instrumented executions).
	CPUSeconds float64 `json:"cpu_seconds"`
	// AccessedFrac is the fraction of snapshot objects accessed.
	AccessedFrac float64 `json:"accessed_frac"`
	// Report is the observability snapshot of this iteration (per-section
	// fault timelines, instruction mix, run totals); nil unless the harness
	// runs with Config.Observe.
	Report *obs.Snapshot `json:"report,omitempty"`
}

// RunReport is the structured observability record attached to a measured
// iteration.
type RunReport = obs.Snapshot

// Harness caches built programs and memoizes measurements, so figures
// sharing the same underlying runs (e.g. Figures 2 and 5 on AWFY) measure
// each workload/strategy pair once.
type Harness struct {
	Cfg Config

	mu         sync.Mutex
	progs      map[string]*ir.Program
	baseCache  map[string]*BaselineOutcome
	stratCache map[string]*StrategyOutcome
}

// NewHarness creates a harness.
func NewHarness(cfg Config) *Harness {
	return &Harness{
		Cfg:        cfg,
		progs:      make(map[string]*ir.Program),
		baseCache:  make(map[string]*BaselineOutcome),
		stratCache: make(map[string]*StrategyOutcome),
	}
}

// Program returns the (cached) program of a workload.
func (h *Harness) Program(w workloads.Workload) *ir.Program {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.progs[w.Name]
	if !ok {
		p = w.Build()
		h.progs[w.Name] = p
	}
	return p
}

func (h *Harness) newOS() *osim.OS {
	o := osim.NewOS(h.Cfg.Device)
	o.FaultAround = h.Cfg.FaultAround
	o.AdaptiveReadahead = h.Cfg.AdaptiveReadahead
	return o
}

// measureImage runs one image for the configured iterations (cold cache
// each time) and returns the per-iteration measurements.
func (h *Harness) measureImage(img *image.Image, w workloads.Workload) ([]RunMeasure, error) {
	o := h.newOS()
	out := make([]RunMeasure, 0, h.Cfg.Iterations)
	for it := 0; it < h.Cfg.Iterations; it++ {
		o.DropCaches()
		if h.Cfg.Observe {
			// One registry per iteration: each RunMeasure.Report is a
			// self-contained record of a single cold-cache run.
			o.Obs = obs.NewRegistry()
		}
		proc, err := img.NewProcess(o, vm.Hooks{})
		if err != nil {
			return nil, err
		}
		proc.Machine.StopOnRespond = w.Service
		if err := proc.Run(w.Args...); err != nil {
			proc.Close()
			return nil, fmt.Errorf("eval: running %s: %w", w.Name, err)
		}
		st := proc.Stats()
		m := RunMeasure{
			TextFaults:   float64(st.TextFaults.Total()),
			HeapFaults:   float64(st.HeapFaults.Total()),
			CPUSeconds:   st.CPUTime.Seconds(),
			AccessedFrac: float64(st.AccessedObjects) / float64(st.SnapshotObjects),
		}
		if w.Service {
			if st.TimeToResponse <= 0 {
				proc.Close()
				return nil, fmt.Errorf("eval: %s never responded", w.Name)
			}
			m.Time = st.TimeToResponse.Seconds()
		} else {
			m.Time = st.Total.Seconds()
		}
		proc.Close()
		if o.Obs != nil {
			m.Report = o.Obs.Snapshot()
		}
		out = append(out, m)
	}
	return out, nil
}

// baselineSeed and friends derive deterministic build seeds.
func baselineSeed(build int) uint64     { return 0x5eed0000 + uint64(build) }
func instrumentedSeed(build int) uint64 { return 0x1457a000 + uint64(build)*31 }
func optimizedSeed(build int) uint64    { return 0x0b715000 + uint64(build)*17 }

// BaselineOutcome is the measurement of the unmodified images of one
// workload.
type BaselineOutcome struct {
	Measures []RunMeasure
	// Pipeline holds one build-time observability snapshot per build
	// (stage spans, output sizes); nil unless Config.Observe.
	Pipeline []*obs.Snapshot
}

// MeasureBaseline builds and measures the unmodified images of a workload.
// Results are memoized per workload.
func (h *Harness) MeasureBaseline(w workloads.Workload) ([]RunMeasure, error) {
	out, err := h.MeasureBaselineOutcome(w)
	if err != nil {
		return nil, err
	}
	return out.Measures, nil
}

// MeasureBaselineOutcome is MeasureBaseline plus the per-build pipeline
// snapshots.
func (h *Harness) MeasureBaselineOutcome(w workloads.Workload) (*BaselineOutcome, error) {
	h.mu.Lock()
	if o, ok := h.baseCache[w.Name]; ok {
		h.mu.Unlock()
		return o, nil
	}
	h.mu.Unlock()
	p := h.Program(w)
	out := &BaselineOutcome{}
	for bld := 0; bld < h.Cfg.Builds; bld++ {
		var r *obs.Registry
		if h.Cfg.Observe {
			r = obs.NewRegistry()
		}
		img, err := image.Build(p, image.Options{
			Kind:      image.KindRegular,
			Compiler:  h.Cfg.Compiler,
			BuildSeed: baselineSeed(bld),
			Obs:       r,
		})
		if err != nil {
			return nil, fmt.Errorf("eval: baseline build of %s: %w", w.Name, err)
		}
		ms, err := h.measureImage(img, w)
		if err != nil {
			return nil, err
		}
		out.Measures = append(out.Measures, ms...)
		if r != nil {
			out.Pipeline = append(out.Pipeline, r.Snapshot())
		}
	}
	h.mu.Lock()
	h.baseCache[w.Name] = out
	h.mu.Unlock()
	return out, nil
}

// StrategyOutcome is the measurement of one strategy on one workload.
type StrategyOutcome struct {
	// Strategy is the measured strategy name.
	Strategy string
	Measures []RunMeasure
	// Profiling lists the instrumented runs (for the overhead table).
	Profiling []image.ProfilingRun
	// CodeMatched / HeapMatched report profile-application quality of the
	// last build.
	CodeMatched int
	HeapMatched int
	// HeapMatch is the full match breakdown of the last build (zero value
	// for pure code strategies, which apply no heap profile).
	HeapMatch core.MatchBreakdown
	// Pipeline holds one observability snapshot per build covering the
	// whole pipeline — instrumented build, profiling run, post-processing,
	// optimized build; nil unless Config.Observe.
	Pipeline []*obs.Snapshot
}

// MeasureStrategy runs the full pipeline for one strategy on one workload.
// Results are memoized per (workload, strategy).
func (h *Harness) MeasureStrategy(w workloads.Workload, strategy string) (*StrategyOutcome, error) {
	key := w.Name + "\x00" + strategy
	h.mu.Lock()
	if o, ok := h.stratCache[key]; ok {
		h.mu.Unlock()
		return o, nil
	}
	h.mu.Unlock()
	p := h.Program(w)
	mode := profiler.DumpOnFull
	if w.Service {
		// Killed workloads need durable buffers (Sec. 6.1).
		mode = profiler.MemoryMapped
	}
	out := &StrategyOutcome{Strategy: strategy}
	for bld := 0; bld < h.Cfg.Builds; bld++ {
		var r *obs.Registry
		if h.Cfg.Observe {
			r = obs.NewRegistry()
		}
		res, err := image.BuildOptimized(p, image.PipelineOptions{
			Compiler:         h.Cfg.Compiler,
			Strategy:         strategy,
			InstrumentedSeed: instrumentedSeed(bld),
			OptimizedSeed:    optimizedSeed(bld),
			Mode:             mode,
			Args:             w.Args,
			Service:          w.Service,
			Obs:              r,
		})
		if err != nil {
			return nil, fmt.Errorf("eval: %s/%s: %w", w.Name, strategy, err)
		}
		ms, err := h.measureImage(res.Optimized, w)
		if err != nil {
			return nil, err
		}
		out.Measures = append(out.Measures, ms...)
		out.Profiling = append(out.Profiling, res.Runs...)
		out.CodeMatched = res.Optimized.CodeOrderStats.Matched
		out.HeapMatched = res.Optimized.HeapMatchStats.MatchedObjects
		if res.Optimized.Opts.HeapStrategy != nil && len(res.Optimized.Opts.HeapProfile) > 0 {
			out.HeapMatch = res.Optimized.HeapMatchStats.Breakdown(res.Optimized.Opts.HeapStrategy.Name())
		}
		if r != nil {
			out.Pipeline = append(out.Pipeline, r.Snapshot())
		}
	}
	h.mu.Lock()
	h.stratCache[key] = out
	h.mu.Unlock()
	return out, nil
}

// metricOf selects the figure metric of a strategy: text faults for code
// strategies, heap faults for heap strategies, their sum for the combined
// strategy, per Sec. 7.1.
func metricOf(strategy string, m RunMeasure) float64 {
	switch strategy {
	case core.StrategyCU, core.StrategyMethod:
		return m.TextFaults
	case core.StrategyCombined:
		return m.TextFaults + m.HeapFaults
	default:
		return m.HeapFaults
	}
}

// FactorCell computes the baseline/optimized factor cell for one metric.
func FactorCell(workload, strategy string, baseline, optimized []float64) Cell {
	bm, om := Mean(baseline), Mean(optimized)
	c := Cell{
		Workload: workload, Strategy: strategy,
		BaselineMean: bm, OptimizedMean: om,
	}
	if om > 0 {
		c.Factor = bm / om
		c.CI = RatioCI(bm, CI95(baseline), om, CI95(optimized))
	}
	return c
}
