package eval

import (
	"fmt"
	"math"
	"sync"

	"nimage/internal/core"
	"nimage/internal/graal"
	"nimage/internal/image"
	"nimage/internal/ir"
	"nimage/internal/obs"
	"nimage/internal/obs/affinity"
	"nimage/internal/obs/attrib"
	"nimage/internal/osim"
	"nimage/internal/profiler"
	"nimage/internal/vm"
	"nimage/internal/workloads"
)

// Config tunes the evaluation protocol (Sec. 7.1). The paper uses 10
// builds × 10 iterations; the defaults are smaller for tractable runtimes
// but follow the same protocol.
type Config struct {
	// Builds is the number of images per strategy (different build seeds).
	Builds int
	// Iterations is the number of runs per image; caches are dropped
	// between iterations.
	Iterations int
	// Device is the storage backing the binaries (SSD by default).
	Device osim.Device
	// FaultAround is the OS fault-around cluster size in pages.
	FaultAround int
	// AdaptiveReadahead enables Linux-style readahead escalation (rewards
	// layouts whose access order matches their layout order).
	AdaptiveReadahead bool
	// Compiler is the compiler configuration shared by all builds.
	Compiler graal.Config
	// Observe attaches a fresh obs registry to every build (pipeline spans,
	// match statistics) and every benchmark iteration (fault timelines,
	// instruction mix), populating RunMeasure.Report and the Pipeline
	// snapshots of the outcomes. Off by default: the measurement fast paths
	// then carry no instrumentation cost.
	Observe bool
	// TrackAffinity attaches the temporal co-access recorder to every
	// measured process (populating RunMeasure.Affinity/Scorecard and
	// ServeOutcome.Affinity/Scorecard) without the full obs registry that
	// Observe implies. Observe also enables affinity tracking.
	TrackAffinity bool
	// Workers bounds the number of concurrently executing build+measure
	// tasks of the scheduler. 0 (the default) means runtime.GOMAXPROCS(0);
	// 1 recovers a fully serial run. Results are bit-identical for every
	// worker count — see the determinism contract in scheduler.go.
	Workers int
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		Builds:      3,
		Iterations:  3,
		Device:      osim.SSD(),
		FaultAround: osim.DefaultFaultAround,
		Compiler:    graal.DefaultConfig(),
	}
}

// Strategies lists the evaluated strategies in figure order, from the
// strategy registry: the paper's six plus the graph-based serve layouts.
func Strategies() []string {
	return core.EvalStrategyNames()
}

// LayoutBaseline is the attribution layout label of unmodified images.
const LayoutBaseline = "identity"

// RunMeasure is one benchmark iteration's measurements.
type RunMeasure struct {
	TextFaults float64 `json:"text_faults"`
	HeapFaults float64 `json:"heap_faults"`
	// Time is the end-to-end execution time for AWFY workloads, or the
	// elapsed time until the first response for microservices (seconds).
	Time float64 `json:"time_seconds"`
	// CPUSeconds is the compute share of Time (no fault I/O); the
	// profiling-overhead table compares compute times, since cold-start
	// I/O would mask the tracing cost (Sec. 7.4 measures steady
	// instrumented executions).
	CPUSeconds float64 `json:"cpu_seconds"`
	// AccessedFrac is the fraction of snapshot objects accessed.
	AccessedFrac float64 `json:"accessed_frac"`
	// Report is the observability snapshot of this iteration (per-section
	// fault timelines, instruction mix, run totals); nil unless the harness
	// runs with Config.Observe.
	Report *obs.Snapshot `json:"report,omitempty"`
	// Attrib is the per-symbol fault attribution of this iteration; nil
	// unless the harness runs with Config.Observe.
	Attrib *attrib.Table `json:"attrib,omitempty"`
	// Affinity is the temporal co-access graph of this iteration and
	// Scorecard its static layout score against the measured image's own
	// layout; nil unless the harness observes or tracks affinity.
	Affinity  *affinity.Graph     `json:"affinity,omitempty"`
	Scorecard *affinity.Scorecard `json:"scorecard,omitempty"`
}

// RunReport is the structured observability record attached to a measured
// iteration.
type RunReport = obs.Snapshot

// Harness caches built programs and memoizes measurements, so figures
// sharing the same underlying runs (e.g. Figures 2 and 5 on AWFY) measure
// each workload/strategy pair once. A Harness is safe for concurrent use:
// duplicate concurrent measurements of the same key collapse onto one
// in-flight computation (singleflight), and the per-build work of each
// measurement fans out across the scheduler's worker pool (scheduler.go).
type Harness struct {
	Cfg Config

	mu          sync.Mutex
	progs       map[string]*ir.Program
	baseCache   map[string]*BaselineOutcome
	stratCache  map[string]*StrategyOutcome
	serveCache  map[string][]*ServeOutcome
	serveImgs   map[string]*image.Image
	serveGraphs map[string]*affinity.Graph
	searchCache map[string]*SearchResult
	fleetCache  map[string][]*FleetOutcome

	sched sched
}

// NewHarness creates a harness.
func NewHarness(cfg Config) *Harness {
	return &Harness{
		Cfg:         cfg,
		progs:       make(map[string]*ir.Program),
		baseCache:   make(map[string]*BaselineOutcome),
		stratCache:  make(map[string]*StrategyOutcome),
		serveCache:  make(map[string][]*ServeOutcome),
		serveImgs:   make(map[string]*image.Image),
		serveGraphs: make(map[string]*affinity.Graph),
		searchCache: make(map[string]*SearchResult),
		fleetCache:  make(map[string][]*FleetOutcome),
	}
}

// Program returns the (cached) program of a workload. Concurrent callers
// for the same workload share one build.
func (h *Harness) Program(w workloads.Workload) *ir.Program {
	h.mu.Lock()
	p := h.progs[w.Name]
	h.mu.Unlock()
	if p != nil {
		return p
	}
	h.once("prog\x00"+w.Name, func() error {
		h.mu.Lock()
		cached := h.progs[w.Name] != nil
		h.mu.Unlock()
		if cached {
			return nil
		}
		built := w.Build()
		h.mu.Lock()
		h.progs[w.Name] = built
		h.mu.Unlock()
		return nil
	})
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.progs[w.Name]
}

func (h *Harness) newOS() *osim.OS {
	o := osim.NewOS(h.Cfg.Device)
	o.FaultAround = h.Cfg.FaultAround
	o.AdaptiveReadahead = h.Cfg.AdaptiveReadahead
	o.TrackAffinity = h.Cfg.TrackAffinity
	return o
}

// measureImage runs one image for the configured iterations (cold cache
// each time) and returns the per-iteration measurements. layout labels the
// attribution tables ("identity" for baselines, the strategy name
// otherwise).
func (h *Harness) measureImage(img *image.Image, w workloads.Workload, layout string) ([]RunMeasure, error) {
	o := h.newOS()
	out := make([]RunMeasure, 0, h.Cfg.Iterations)
	for it := 0; it < h.Cfg.Iterations; it++ {
		o.DropCaches()
		if h.Cfg.Observe {
			// One registry per iteration: each RunMeasure.Report is a
			// self-contained record of a single cold-cache run.
			o.Obs = obs.NewRegistry()
		}
		proc, err := img.NewProcess(o, vm.Hooks{})
		if err != nil {
			return nil, err
		}
		proc.Machine.StopOnRespond = w.Service
		if err := proc.Run(w.Args...); err != nil {
			proc.Close()
			return nil, fmt.Errorf("eval: running %s: %w", w.Name, err)
		}
		st := proc.Stats()
		m := RunMeasure{
			TextFaults:   float64(st.TextFaults.Total()),
			HeapFaults:   float64(st.HeapFaults.Total()),
			CPUSeconds:   st.CPUTime.Seconds(),
			AccessedFrac: accessedFraction(st.AccessedObjects, st.SnapshotObjects),
		}
		if w.Service {
			if st.TimeToResponse <= 0 {
				proc.Close()
				return nil, fmt.Errorf("eval: %s never responded", w.Name)
			}
			m.Time = st.TimeToResponse.Seconds()
		} else {
			m.Time = st.Total.Seconds()
		}
		if tab := proc.AttributionTable(); tab != nil {
			tab.Layout = layout
			m.Attrib = tab
		}
		if g := proc.AffinityGraph(); g != nil {
			g.Layout = layout
			m.Affinity = g
			// Cold starts apply no inter-window pressure or budget; the
			// card's value here is the locality and working-set view.
			sc, err := affinity.Score(g,
				affinity.NewPlacement(img.AttributionIndex().Symbols()), layout, 0, 0)
			if err != nil {
				proc.Close()
				return nil, err
			}
			m.Scorecard = sc
		}
		proc.Close()
		if o.Obs != nil {
			m.Report = o.Obs.Snapshot()
		}
		out = append(out, m)
	}
	return out, nil
}

// accessedFraction returns the fraction of snapshot objects accessed, 0
// for images with an empty snapshot — a plain division would yield NaN,
// which encoding/json refuses to marshal when the measures reach
// output/report.json.
func accessedFraction(accessed, snapshot int) float64 {
	if snapshot <= 0 {
		return 0
	}
	return float64(accessed) / float64(snapshot)
}

// baselineSeed and friends derive deterministic build seeds.
func baselineSeed(build int) uint64     { return 0x5eed0000 + uint64(build) }
func instrumentedSeed(build int) uint64 { return 0x1457a000 + uint64(build)*31 }
func optimizedSeed(build int) uint64    { return 0x0b715000 + uint64(build)*17 }

// BaselineOutcome is the measurement of the unmodified images of one
// workload.
type BaselineOutcome struct {
	Measures []RunMeasure
	// Pipeline holds one build-time observability snapshot per build
	// (stage spans, output sizes); nil unless Config.Observe.
	Pipeline []*obs.Snapshot
}

// MergedPipeline aggregates the per-build pipeline snapshots in build
// order (obs.MergeSnapshots); empty when the harness ran detached.
func (o *BaselineOutcome) MergedPipeline() *obs.Snapshot {
	return obs.MergeSnapshots(o.Pipeline...)
}

// MeasureBaseline builds and measures the unmodified images of a workload.
// Results are memoized per workload.
func (h *Harness) MeasureBaseline(w workloads.Workload) ([]RunMeasure, error) {
	out, err := h.MeasureBaselineOutcome(w)
	if err != nil {
		return nil, err
	}
	return out.Measures, nil
}

// MeasureBaselineOutcome is MeasureBaseline plus the per-build pipeline
// snapshots. Concurrent callers for the same workload block on one
// in-flight measurement instead of duplicating the builds.
func (h *Harness) MeasureBaselineOutcome(w workloads.Workload) (*BaselineOutcome, error) {
	if o := h.cachedBaseline(w.Name); o != nil {
		return o, nil
	}
	err := h.once("base\x00"+w.Name, func() error {
		if h.cachedBaseline(w.Name) != nil {
			return nil
		}
		out, err := h.measureBaseline(w)
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.baseCache[w.Name] = out
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h.cachedBaseline(w.Name), nil
}

func (h *Harness) cachedBaseline(name string) *BaselineOutcome {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.baseCache[name]
}

// measureBaseline builds and measures every baseline image of a workload,
// fanning the builds out across the worker pool. All result slices are
// pre-sized and indexed by build, so the outcome is identical for every
// worker count and completion order.
func (h *Harness) measureBaseline(w workloads.Workload) (*BaselineOutcome, error) {
	p := h.Program(w)
	iters := h.Cfg.Iterations
	measures := make([]RunMeasure, h.Cfg.Builds*iters)
	snaps := make([]*obs.Snapshot, h.Cfg.Builds)
	err := h.forEach(h.Cfg.Builds, func(bld int) error {
		h.sched.buildTasks.Add(1)
		var r *obs.Registry
		if h.Cfg.Observe {
			r = obs.NewRegistry()
		}
		img, err := image.Build(p, image.Options{
			Kind:      image.KindRegular,
			Compiler:  h.Cfg.Compiler,
			BuildSeed: baselineSeed(bld),
			Obs:       r,
		})
		if err != nil {
			return fmt.Errorf("eval: baseline build of %s: %w", w.Name, err)
		}
		ms, err := h.measureImage(img, w, LayoutBaseline)
		if err != nil {
			return err
		}
		copy(measures[bld*iters:(bld+1)*iters], ms)
		if r != nil {
			snaps[bld] = r.Snapshot()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &BaselineOutcome{Measures: measures, Pipeline: compactSnapshots(snaps)}, nil
}

// compactSnapshots drops nil entries while preserving build order: every
// entry is set when the harness observes, none otherwise.
func compactSnapshots(snaps []*obs.Snapshot) []*obs.Snapshot {
	var out []*obs.Snapshot
	for _, s := range snaps {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// StrategyOutcome is the measurement of one strategy on one workload.
type StrategyOutcome struct {
	// Strategy is the measured strategy name.
	Strategy string
	Measures []RunMeasure
	// Profiling lists the instrumented runs (for the overhead table).
	Profiling []image.ProfilingRun
	// CodeMatched / HeapMatched report profile-application quality of the
	// last build.
	CodeMatched int
	HeapMatched int
	// HeapMatch is the full match breakdown of the last build (zero value
	// for pure code strategies, which apply no heap profile).
	HeapMatch core.MatchBreakdown
	// Pipeline holds one observability snapshot per build covering the
	// whole pipeline — instrumented build, profiling run, post-processing,
	// optimized build; nil unless Config.Observe.
	Pipeline []*obs.Snapshot
}

// MergedPipeline aggregates the per-build pipeline snapshots in build
// order (obs.MergeSnapshots); empty when the harness ran detached.
func (o *StrategyOutcome) MergedPipeline() *obs.Snapshot {
	return obs.MergeSnapshots(o.Pipeline...)
}

// MeasureStrategy runs the full pipeline for one strategy on one workload.
// Results are memoized per (workload, strategy); concurrent callers for
// the same key block on one in-flight measurement instead of duplicating
// the pipelines.
func (h *Harness) MeasureStrategy(w workloads.Workload, strategy string) (*StrategyOutcome, error) {
	key := w.Name + "\x00" + strategy
	if o := h.cachedStrategy(key); o != nil {
		return o, nil
	}
	err := h.once("strat\x00"+key, func() error {
		if h.cachedStrategy(key) != nil {
			return nil
		}
		out, err := h.measureStrategy(w, strategy)
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.stratCache[key] = out
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h.cachedStrategy(key), nil
}

func (h *Harness) cachedStrategy(key string) *StrategyOutcome {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stratCache[key]
}

// measureStrategy runs the full pipeline of one strategy over every build
// seed, fanning the builds out across the worker pool. Like
// measureBaseline, every result slice is indexed by build, so the outcome
// is bit-identical for every worker count.
func (h *Harness) measureStrategy(w workloads.Workload, strategy string) (*StrategyOutcome, error) {
	p := h.Program(w)
	mode := profiler.DumpOnFull
	if w.Service {
		// Killed workloads need durable buffers (Sec. 6.1).
		mode = profiler.MemoryMapped
	}
	iters := h.Cfg.Iterations
	out := &StrategyOutcome{Strategy: strategy}
	measures := make([]RunMeasure, h.Cfg.Builds*iters)
	profiling := make([][]image.ProfilingRun, h.Cfg.Builds)
	snaps := make([]*obs.Snapshot, h.Cfg.Builds)
	err := h.forEach(h.Cfg.Builds, func(bld int) error {
		h.sched.buildTasks.Add(1)
		var r *obs.Registry
		if h.Cfg.Observe {
			r = obs.NewRegistry()
		}
		res, err := image.BuildOptimized(p, image.PipelineOptions{
			Compiler:         h.Cfg.Compiler,
			Strategy:         strategy,
			InstrumentedSeed: instrumentedSeed(bld),
			OptimizedSeed:    optimizedSeed(bld),
			Mode:             mode,
			Args:             w.Args,
			Service:          w.Service,
			Obs:              r,
		})
		if err != nil {
			return fmt.Errorf("eval: %s/%s: %w", w.Name, strategy, err)
		}
		ms, err := h.measureImage(res.Optimized, w, strategy)
		if err != nil {
			return err
		}
		copy(measures[bld*iters:(bld+1)*iters], ms)
		profiling[bld] = res.Runs
		if bld == h.Cfg.Builds-1 {
			// Match statistics report the last build (only this task
			// writes them).
			out.CodeMatched = res.Optimized.CodeOrderStats.Matched
			out.HeapMatched = res.Optimized.HeapMatchStats.MatchedObjects
			if res.Optimized.Opts.HeapStrategy != nil && len(res.Optimized.Opts.HeapProfile) > 0 {
				out.HeapMatch = res.Optimized.HeapMatchStats.Breakdown(res.Optimized.Opts.HeapStrategy.Name())
			}
		}
		if r != nil {
			snaps[bld] = r.Snapshot()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Measures = measures
	for _, runs := range profiling {
		out.Profiling = append(out.Profiling, runs...)
	}
	out.Pipeline = compactSnapshots(snaps)
	return out, nil
}

// metricOf selects the figure metric of a strategy from the registry's
// section claims: text faults for code strategies, heap faults for heap
// strategies, their sum when a strategy reorders both, per Sec. 7.1.
func metricOf(strategy string, m RunMeasure) float64 {
	info, ok := core.StrategyByName(strategy)
	switch {
	case ok && info.Text && info.Heap:
		return m.TextFaults + m.HeapFaults
	case ok && info.Text:
		return m.TextFaults
	default:
		return m.HeapFaults
	}
}

// FactorCell computes the baseline/optimized factor cell for one metric.
// A zero optimized mean makes the ratio unmeasurable; the cell is then
// explicitly marked degenerate (NaN factor) instead of carrying a silent
// Factor == 0, which would read as "0× = infinitely worse" in CSV/charts.
func FactorCell(workload, strategy string, baseline, optimized []float64) Cell {
	bm, om := Mean(baseline), Mean(optimized)
	c := Cell{
		Workload: workload, Strategy: strategy,
		BaselineMean: bm, OptimizedMean: om,
	}
	if om == 0 {
		c.Degenerate = true
		c.Factor = math.NaN()
		c.CI = math.NaN()
		return c
	}
	c.Factor = bm / om
	c.CI = RatioCI(bm, CI95(baseline), om, CI95(optimized))
	return c
}
