package eval

// SLO-driven layout search: a budget-bounded iterative rebake loop that
// treats text layout as an optimization problem scored by the serve
// attainment scorecard. The seed layouts (c3, ext-tsp) are measured
// first; each iteration then generates candidate orderings — parameter
// sweeps of the chain orderers plus seeded local perturbations of the
// incumbent — scores all of them cheaply with the static affinity
// replay, promotes only the top-k to full serve measurement, and accepts
// a candidate only when its measured scorecard strictly improves
// (attained targets first, refault-factor geomean second, budget burn
// third). The whole trajectory is journaled into a nimage.search/v1
// document.
//
// Determinism: the loop runs serially inside one singleflight slot —
// candidate generation, promotion ranking and acceptance are pure
// functions of the recorded graph and the config seed, and every serve
// measurement is the bit-deterministic simulated protocol — so the full
// trajectory (journal bytes included) is identical across -workers
// counts, repeats and platforms. Scheduler note: SearchLayout is reached
// from inside serveImage's singleflight (itself inside a measureServe
// worker task), so it must never fan work out through the pool — only
// direct serveRun/BuildOptimized calls and nested once() — or a
// Workers=1 pool would deadlock on the nested-task rule (scheduler.go).

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nimage/internal/core"
	"nimage/internal/image"
	"nimage/internal/obs"
	"nimage/internal/profiler"
	"nimage/internal/workloads"
)

// SearchConfig tunes one layout search.
type SearchConfig struct {
	// BudgetIters is the number of search iterations after the seed
	// round; TopK the number of candidates promoted to full serve
	// measurement per iteration; PerturbPerIter the seeded local
	// perturbations generated per iteration.
	BudgetIters    int
	TopK           int
	PerturbPerIter int
	// Seed drives the perturbation draws.
	Seed uint64
	// Pressures are the inter-burst reclaim levels the objective sweeps;
	// Targets the SLO targets the attainment count scores.
	Pressures []int
	Targets   []obs.SLOTarget
	// Serve is the per-pressure serve scenario (its PressurePct is
	// overridden per sweep level, its RecordRequests forced on).
	Serve ServeConfig
}

// DefaultSearchConfig returns the search defaults: two iterations of two
// promotions over the serve figure's pressure bracket, on a serve
// scenario with enough bursts and a tight enough cache budget that the
// refault signal separates layouts.
func DefaultSearchConfig() SearchConfig {
	s := DefaultServeConfig()
	s.Bursts = 8
	s.CacheBudget = 48
	return SearchConfig{
		BudgetIters:    2,
		TopK:           2,
		PerturbPerIter: 6,
		Seed:           0x5ea2c4,
		Pressures:      []int{30, 70},
		Targets:        obs.DefaultSLOTargets(),
		Serve:          s,
	}
}

// withDefaults fills unset knobs so a zero-valued config is usable and
// the memoization key is canonical.
func (c SearchConfig) withDefaults() SearchConfig {
	d := DefaultSearchConfig()
	if c.BudgetIters <= 0 {
		c.BudgetIters = d.BudgetIters
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.PerturbPerIter <= 0 {
		c.PerturbPerIter = d.PerturbPerIter
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.Pressures) == 0 {
		c.Pressures = append([]int(nil), d.Pressures...)
	}
	if len(c.Targets) == 0 {
		c.Targets = append([]obs.SLOTarget(nil), d.Targets...)
	}
	if c.Serve == (ServeConfig{}) {
		c.Serve = d.Serve
	}
	c.Serve = c.Serve.withDefaults()
	return c
}

// ServeAt is the measured serve scenario at one sweep pressure: the
// config's serve scenario with the pressure overridden and the
// per-request trace forced on (the attainment math consumes it).
func (c SearchConfig) ServeAt(pressure int) ServeConfig {
	s := c.Serve
	s.PressurePct = pressure
	s.RecordRequests = true
	return s
}

// key canonicalizes the config for memoization.
func (c SearchConfig) key() string {
	var targets []string
	for _, t := range c.Targets {
		targets = append(targets, t.String())
	}
	return fmt.Sprintf("%d/%d/%d/%d/%v/%s/%s",
		c.BudgetIters, c.TopK, c.PerturbPerIter, c.Seed, c.Pressures,
		strings.Join(targets, ","), c.Serve.key())
}

// SearchPressureScore is one pressure level's slice of a measured
// scorecard.
type SearchPressureScore struct {
	PressurePct int
	// Attained counts attained SLO targets out of Targets at this level.
	Attained int
	Targets  int
	// RefaultFactor is (baseline refaults + 1) / (candidate refaults + 1)
	// — > 1 means the layout refaults less than the identity baseline.
	RefaultFactor float64
}

// SearchScore is the measured scorecard the search optimizes: SLO
// attainment across the swept pressures, tie-broken on the
// refault-factor geomean and then on total error-budget burn.
type SearchScore struct {
	// Attained counts attained (pressure, target) cells out of Targets.
	Attained int
	Targets  int
	// BudgetBurn sums every cell's error-budget burn (lower is better).
	BudgetBurn float64
	// RefaultGeomean is the geomean of the per-pressure refault factors.
	RefaultGeomean float64
	// PerPressure breaks the card down by sweep level.
	PerPressure []SearchPressureScore
}

// betterSearchScore is the search's total order: more attained targets,
// then higher refault-factor geomean, then lower budget burn.
func betterSearchScore(a, b SearchScore) bool {
	if a.Attained != b.Attained {
		return a.Attained > b.Attained
	}
	if a.RefaultGeomean != b.RefaultGeomean {
		return a.RefaultGeomean > b.RefaultGeomean
	}
	return a.BudgetBurn < b.BudgetBurn
}

// strictlyBetterSearchScore accepts only strict improvement: equal
// scorecards keep the incumbent.
func strictlyBetterSearchScore(a, b SearchScore) bool {
	return betterSearchScore(a, b) &&
		(a.Attained != b.Attained || a.RefaultGeomean != b.RefaultGeomean || a.BudgetBurn != b.BudgetBurn)
}

// SearchResult is one workload's completed layout search.
type SearchResult struct {
	Workload string
	// Order is the winning text ordering (what the slo-search strategy
	// bakes); Score its measured scorecard.
	Order []string
	Score SearchScore
	// Journal is the full nimage.search/v1 trajectory record.
	Journal *obs.SearchReport
	// CandidateOrders maps every measured candidate's ID to the exact
	// ordering it baked — the metamorphic tests replay these against the
	// layout invariants.
	CandidateOrders map[string][]string
}

// SearchLayout runs (once per workload and config — memoized, and
// collapsed across concurrent callers) the SLO-driven layout search and
// returns the winning order with its journal. The serve affinity graph
// and all candidate measurements come from build 0: the search picks one
// order per workload, which every build of the slo-search strategy then
// bakes with its own seed, mirroring how a production tuner would ship
// one searched layout.
func (h *Harness) SearchLayout(w workloads.Workload, cfg SearchConfig) (*SearchResult, error) {
	if w.Serve == nil {
		return nil, fmt.Errorf("eval: workload %s has no serve spec", w.Name)
	}
	cfg = cfg.withDefaults()
	key := w.Name + "\x00" + cfg.key()
	if r := h.cachedSearch(key); r != nil {
		return r, nil
	}
	err := h.once("search\x00"+key, func() error {
		if h.cachedSearch(key) != nil {
			return nil
		}
		res, err := h.searchLayout(w, cfg)
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.searchCache[key] = res
		h.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h.cachedSearch(key), nil
}

func (h *Harness) cachedSearch(key string) *SearchResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.searchCache[key]
}

// searchLayout is the search loop proper. Everything here is serial and
// deterministic; see the package comment for why it must not touch the
// worker pool.
func (h *Harness) searchLayout(w workloads.Workload, cfg SearchConfig) (*SearchResult, error) {
	g, err := h.serveAffinityGraph(w, 0)
	if err != nil {
		return nil, err
	}
	baseImg, err := h.serveImage(w, LayoutBaseline, 0)
	if err != nil {
		return nil, err
	}
	// The baseline refault volume per pressure level anchors the
	// refault-factor side of every candidate's scorecard.
	baseRefaults := make(map[int]int64, len(cfg.Pressures))
	for _, p := range cfg.Pressures {
		o, err := h.serveRun(baseImg, w, LayoutBaseline, cfg.ServeAt(p), false)
		if err != nil {
			return nil, err
		}
		baseRefaults[p] = o.RefaultPages
	}
	prog := h.Program(w)

	// measure bakes a candidate order through the graph-driven pipeline
	// path (build 0 seeds, the same options the serve images use) and
	// scores it at every sweep pressure. Scores are memoized by order
	// digest: sweep candidates that tie a seed bit-for-bit cost nothing.
	scores := make(map[uint64]SearchScore)
	measure := func(c core.SearchCandidate) (SearchScore, error) {
		d := core.OrderDigest(c.Order)
		if sc, ok := scores[d]; ok {
			return sc, nil
		}
		res, err := image.BuildOptimized(prog, image.PipelineOptions{
			Compiler:         h.Cfg.Compiler,
			Strategy:         core.StrategySLOSearch,
			InstrumentedSeed: instrumentedSeed(0),
			OptimizedSeed:    optimizedSeed(0),
			Mode:             profiler.MemoryMapped,
			Args:             w.Args,
			Service:          true,
			AffinityGraph:    g,
			CodeOrder:        c.Order,
		})
		if err != nil {
			return SearchScore{}, fmt.Errorf("eval: search bake of %s candidate %s: %w", w.Name, c.ID, err)
		}
		var sc SearchScore
		var logGeo float64
		for _, p := range cfg.Pressures {
			pcfg := cfg.ServeAt(p)
			o, err := h.serveRun(res.Optimized, w, core.StrategySLOSearch, pcfg, false)
			if err != nil {
				return SearchScore{}, fmt.Errorf("eval: search measurement of %s candidate %s: %w", w.Name, c.ID, err)
			}
			ps := SearchPressureScore{
				PressurePct:   p,
				RefaultFactor: float64(baseRefaults[p]+1) / float64(o.RefaultPages+1),
			}
			entry := sloEntry(w.Name, core.StrategySLOSearch, pcfg, []*ServeOutcome{o}, cfg.Targets)
			for _, a := range entry.Attainments {
				ps.Targets++
				if a.Attained {
					ps.Attained++
				}
				sc.BudgetBurn += a.BudgetBurn
			}
			sc.Attained += ps.Attained
			sc.Targets += ps.Targets
			sc.PerPressure = append(sc.PerPressure, ps)
			logGeo += math.Log(ps.RefaultFactor)
		}
		sc.RefaultGeomean = math.Exp(logGeo / float64(len(cfg.Pressures)))
		scores[d] = sc
		return sc, nil
	}

	rep := &obs.SearchReport{
		Schema:      obs.SearchSchema,
		Workload:    w.Name,
		Strategy:    core.StrategySLOSearch,
		Seed:        cfg.Seed,
		BudgetIters: cfg.BudgetIters,
		TopK:        cfg.TopK,
		Pressures:   append([]int(nil), cfg.Pressures...),
		Targets:     append([]obs.SLOTarget(nil), cfg.Targets...),
	}
	candOrders := make(map[string][]string)
	record := func(c core.SearchCandidate, ref int64, loc float64) obs.SearchCandidateRecord {
		return obs.SearchCandidateRecord{
			ID:                c.ID,
			Op:                c.Op,
			OrderDigest:       fmt.Sprintf("%x", core.OrderDigest(c.Order)),
			PredictedRefaults: ref,
			PredictedLocality: loc,
		}
	}

	// Seed round: measure the plain c3/ext-tsp layouts; the best becomes
	// the incumbent every later candidate must strictly beat.
	seen := make(map[uint64]bool)
	var incumbent core.SearchCandidate
	var incScore SearchScore
	haveInc := false
	seedRound := obs.SearchIteration{Iter: 0}
	type measuredSeed struct {
		c   core.SearchCandidate
		ref int64
		loc float64
		sc  SearchScore
	}
	var seeds []measuredSeed
	for _, c := range core.SearchSeeds(g) {
		if len(c.Order) == 0 {
			continue
		}
		d := core.OrderDigest(c.Order)
		ref, loc, err := core.PredictOrder(g, c.Order, cfg.Pressures, cfg.Serve.CacheBudget)
		if err != nil {
			return nil, err
		}
		sc, err := measure(c)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, measuredSeed{c: c, ref: ref, loc: loc, sc: sc})
		seen[d] = true
		candOrders[c.ID] = append([]string(nil), c.Order...)
		if !haveInc || betterSearchScore(sc, incScore) {
			incumbent, incScore, haveInc = c, sc, true
		}
	}
	if !haveInc {
		return nil, fmt.Errorf("eval: search of %s: affinity graph yields no seed orderings", w.Name)
	}
	for _, s := range seeds {
		r := record(s.c, s.ref, s.loc)
		r.Promoted = true
		r.Attained, r.Targets = s.sc.Attained, s.sc.Targets
		r.BudgetBurn, r.RefaultGeomean = s.sc.BudgetBurn, s.sc.RefaultGeomean
		if s.c.ID == incumbent.ID {
			r.Accepted = true
			r.Reason = "best seed scorecard"
		} else {
			r.Reason = "weaker seed scorecard"
		}
		seedRound.Candidates = append(seedRound.Candidates, r)
	}
	seedRound.Incumbent = incumbent.ID
	rep.Iterations = append(rep.Iterations, seedRound)

	// Search iterations: generate, predict everything, promote top-k to
	// measurement, accept strict improvements greedily.
	for it := 1; it <= cfg.BudgetIters; it++ {
		cands := append(core.SearchSweeps(g),
			core.SearchPerturbations(incumbent.Order, it, cfg.Seed, cfg.PerturbPerIter)...)
		type predicted struct {
			c   core.SearchCandidate
			ref int64
			loc float64
		}
		var pool []predicted
		for _, c := range cands {
			if len(c.Order) == 0 {
				continue
			}
			d := core.OrderDigest(c.Order)
			if seen[d] {
				continue // already predicted or measured this ordering
			}
			seen[d] = true
			ref, loc, err := core.PredictOrder(g, c.Order, cfg.Pressures, cfg.Serve.CacheBudget)
			if err != nil {
				return nil, err
			}
			pool = append(pool, predicted{c: c, ref: ref, loc: loc})
		}
		sort.SliceStable(pool, func(i, j int) bool {
			if pool[i].ref != pool[j].ref {
				return pool[i].ref < pool[j].ref
			}
			if pool[i].loc != pool[j].loc {
				return pool[i].loc > pool[j].loc
			}
			return pool[i].c.ID < pool[j].c.ID
		})
		round := obs.SearchIteration{Iter: it}
		for rank, pc := range pool {
			r := record(pc.c, pc.ref, pc.loc)
			if rank >= cfg.TopK {
				r.Reason = "below promotion cut"
				round.Candidates = append(round.Candidates, r)
				continue
			}
			sc, err := measure(pc.c)
			if err != nil {
				return nil, err
			}
			candOrders[pc.c.ID] = append([]string(nil), pc.c.Order...)
			r.Promoted = true
			r.Attained, r.Targets = sc.Attained, sc.Targets
			r.BudgetBurn, r.RefaultGeomean = sc.BudgetBurn, sc.RefaultGeomean
			if strictlyBetterSearchScore(sc, incScore) {
				incumbent, incScore = pc.c, sc
				r.Accepted = true
				r.Reason = "strictly improves scorecard"
			} else {
				r.Reason = "no strict improvement over incumbent"
			}
			round.Candidates = append(round.Candidates, r)
		}
		round.Incumbent = incumbent.ID
		rep.Iterations = append(rep.Iterations, round)
	}

	rep.Final = obs.SearchFinal{
		Candidate:      incumbent.ID,
		Symbols:        len(incumbent.Order),
		OrderDigest:    fmt.Sprintf("%x", core.OrderDigest(incumbent.Order)),
		Attained:       incScore.Attained,
		Targets:        incScore.Targets,
		BudgetBurn:     incScore.BudgetBurn,
		RefaultGeomean: incScore.RefaultGeomean,
	}
	return &SearchResult{
		Workload:        w.Name,
		Order:           append([]string(nil), incumbent.Order...),
		Score:           incScore,
		Journal:         rep,
		CandidateOrders: candOrders,
	}, nil
}

// MeasuredSearchScore scores an already-registered strategy on the
// search's own objective from its memoized build-0 serve measurements —
// the apples-to-apples comparison surface of `nimage-eval -figure
// search` and the acceptance tests. For Builds=1 harnesses the
// slo-search row reproduces the search's in-loop measurement of its
// winner bit for bit (identical build options, identical serve
// protocol). Unlike SearchLayout this fans builds out through
// MeasureServe, so it must be called from the top level, not from inside
// a harness task.
func (h *Harness) MeasuredSearchScore(w workloads.Workload, strategy string, cfg SearchConfig) (*SearchScore, error) {
	cfg = cfg.withDefaults()
	var sc SearchScore
	var logGeo float64
	for _, p := range cfg.Pressures {
		pcfg := cfg.ServeAt(p)
		base, err := h.MeasureServe(w, LayoutBaseline, pcfg)
		if err != nil {
			return nil, err
		}
		outs, err := h.MeasureServe(w, strategy, pcfg)
		if err != nil {
			return nil, err
		}
		ps := SearchPressureScore{
			PressurePct:   p,
			RefaultFactor: float64(base[0].RefaultPages+1) / float64(outs[0].RefaultPages+1),
		}
		entry := sloEntry(w.Name, strategy, pcfg, outs[:1], cfg.Targets)
		for _, a := range entry.Attainments {
			ps.Targets++
			if a.Attained {
				ps.Attained++
			}
			sc.BudgetBurn += a.BudgetBurn
		}
		sc.Attained += ps.Attained
		sc.Targets += ps.Targets
		sc.PerPressure = append(sc.PerPressure, ps)
		logGeo += math.Log(ps.RefaultFactor)
	}
	if len(cfg.Pressures) > 0 {
		sc.RefaultGeomean = math.Exp(logGeo / float64(len(cfg.Pressures)))
	}
	return &sc, nil
}
