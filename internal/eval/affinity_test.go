package eval

import (
	"testing"

	"nimage/internal/core"
)

// TestAffinityScorecards: the baseline graph scores every strategy layout,
// the baseline card's factor is exactly 1, and the graphs reconcile with
// the serve outcomes they were merged from.
func TestAffinityScorecards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.TrackAffinity = true
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	scfg := serveTestConfig()
	g, cards, err := h.AffinityScorecards(w, scfg, []string{core.StrategyCU})
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || len(g.Edges) == 0 || g.Windows == 0 {
		t.Fatalf("degenerate merged graph: %+v", g)
	}
	if len(cards) != 2 {
		t.Fatalf("got %d cards, want baseline + cu", len(cards))
	}
	if cards[0].Strategy != LayoutBaseline || cards[1].Strategy != core.StrategyCU {
		t.Fatalf("card order: %q, %q", cards[0].Strategy, cards[1].Strategy)
	}
	if cards[0].PredictedRefaultFactor != 1 {
		t.Errorf("baseline factor = %v, want 1", cards[0].PredictedRefaultFactor)
	}
	for _, c := range cards {
		if c.MappedNodes == 0 || c.TotalNodes == 0 {
			t.Errorf("%s: card maps no nodes: %+v", c.Strategy, c)
		}
		if c.PressurePct != scfg.PressurePct {
			t.Errorf("%s: pressure %d, want %d", c.Strategy, c.PressurePct, scfg.PressurePct)
		}
		if c.LocalityScore < 0 || c.LocalityScore > 1 {
			t.Errorf("%s: locality %v out of [0,1]", c.Strategy, c.LocalityScore)
		}
	}

	// The merged graph's totals reconcile with the outcomes it came from.
	outs, err := h.MeasureServe(w, LayoutBaseline, scfg)
	if err != nil {
		t.Fatal(err)
	}
	var evicted int64
	for _, o := range outs {
		evicted += o.EvictedPages
	}
	if g.Evictions != evicted {
		t.Errorf("merged graph evictions %d != serve outcomes total %d", g.Evictions, evicted)
	}
}

// TestAffinityScorecardsRequireTracking: a detached harness records no
// graphs, and the scorecard method says so instead of returning junk.
func TestAffinityScorecardsRequireTracking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	if _, _, err := h.AffinityScorecards(w, serveTestConfig(), nil); err == nil {
		t.Fatal("scorecards produced without affinity tracking")
	}
}

// TestPredictedRefaultOrderingMatchesMeasured is the acceptance criterion
// of the scorecard: on both serve workloads, under mild (30%) and severe
// (70%) inter-burst pressure, the static prediction ranks cu vs heap-path
// the same way MeasureServe's ground-truth refault factors do.
func TestPredictedRefaultOrderingMatchesMeasured(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 2
	cfg.Iterations = 1
	cfg.TrackAffinity = true
	h := NewHarness(cfg)
	strategies := []string{core.StrategyCU, core.StrategyHeapPath}
	for _, name := range []string{"serve-api", "serve-cache"} {
		w := serveWorkload(t, name)
		for _, pressure := range []int{30, 70} {
			// Eight full-size bursts under a tight resident budget: without
			// the budget, the LRU pressure reclaims only cold pages the
			// bursts never revisit, and the measured cu-vs-heap margin
			// collapses to single-page noise with no ordering to predict.
			scfg := DefaultServeConfig()
			scfg.Bursts = 8
			scfg.CacheBudget = 48
			scfg.PressurePct = pressure
			_, cards, err := h.AffinityScorecards(w, scfg, strategies)
			if err != nil {
				t.Fatal(err)
			}
			predCU, predHeap := cards[1].PredictedRefaults, cards[2].PredictedRefaults

			measured := make(map[string]float64)
			for _, s := range strategies {
				outs, err := h.MeasureServe(w, s, scfg)
				if err != nil {
					t.Fatal(err)
				}
				var refaults []float64
				for _, o := range outs {
					refaults = append(refaults, float64(o.RefaultPages))
				}
				measured[s] = Mean(refaults)
			}
			measCU, measHeap := measured[core.StrategyCU], measured[core.StrategyHeapPath]
			if !measuredGapDecisive(measCU, measHeap) {
				// A measured near-tie (within build-to-build noise) carries
				// no ordering the static proxy must agree with.
				continue
			}
			if (predCU < predHeap) != (measCU < measHeap) {
				t.Errorf("%s @ %d%%: predicted cu=%d heap-path=%d, measured cu=%v heap-path=%v — orderings disagree",
					name, pressure, predCU, predHeap, measCU, measHeap)
			}
		}
	}
}
