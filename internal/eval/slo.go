package eval

// The serve SLO observatory's measurement side: pressure-sweep SLO
// scorecards over the serve harness (Harness.SLOReport) and the
// observability-overhead control (Harness.ServeTelemetryOverhead). The
// scorecards answer the ROADMAP's "SLO measured under contention"
// question — every strategy competes on attainment and error-budget
// burn over concurrent request streams at several pressure levels —
// and the overhead control keeps the observatory honest about its own
// cost, in the go-observability-bench idiom of running the identical
// scenario with telemetry on and off and reporting the delta.

import (
	"fmt"
	"sort"
	"time"

	"nimage/internal/obs"
	"nimage/internal/workloads"
)

// DefaultSLOPressures are the sweep's pressure levels: no reclaim, mild
// and severe inter-burst pressure.
func DefaultSLOPressures() []int { return []int{0, 30, 70} }

// SLOReport sweeps the pressure levels and scores the baseline plus
// every strategy on each serve workload against the SLO targets,
// returning the consolidated nimage.slo/v1 document. Nil arguments take
// defaults: every serve workload, ServeStrategies(), DefaultSLOTargets,
// DefaultSLOPressures. The config's RecordRequests is forced on (the
// attainment math consumes the per-request traces); its PressurePct is
// overridden per sweep level. One telemetry-on/off overhead control per
// workload rides along in Overhead.
func (h *Harness) SLOReport(ws []workloads.Workload, strategies []string, scfg ServeConfig, targets []obs.SLOTarget, pressures []int) (*obs.SLOReport, error) {
	if ws == nil {
		ws = workloads.Serve()
	}
	if strategies == nil {
		strategies = ServeStrategies()
	}
	if len(pressures) == 0 {
		pressures = DefaultSLOPressures()
	}
	if len(targets) == 0 {
		targets = obs.DefaultSLOTargets()
	}
	scfg = scfg.withDefaults()
	scfg.RecordRequests = true
	rep := &obs.SLOReport{
		Schema:    obs.SLOSchema,
		Streams:   scfg.Streams,
		Pressures: append([]int(nil), pressures...),
		Targets:   append([]obs.SLOTarget(nil), targets...),
	}
	layouts := append([]string{LayoutBaseline}, strategies...)
	for _, p := range pressures {
		pcfg := scfg
		pcfg.PressurePct = p
		for _, w := range ws {
			for _, s := range layouts {
				outs, err := h.MeasureServe(w, s, pcfg)
				if err != nil {
					return nil, err
				}
				rep.Entries = append(rep.Entries, sloEntry(w.Name, s, pcfg, outs, targets))
			}
		}
	}
	// The overhead control runs at the sweep's middle pressure — the
	// telemetry cost is a property of the recorder, not of the pressure
	// level, so one control per workload suffices.
	ocfg := scfg
	ocfg.PressurePct = pressures[len(pressures)/2]
	for _, w := range ws {
		oh, err := h.ServeTelemetryOverhead(w, LayoutBaseline, ocfg, 2)
		if err != nil {
			return nil, err
		}
		rep.Overhead = append(rep.Overhead, *oh)
	}
	return rep, nil
}

// sloEntry folds the warm request latencies of every build's trace into
// one attainment row. Cold burst 0 is excluded unless it is the only
// burst, matching the warm aggregates of the serve figures.
func sloEntry(workload, strategy string, scfg ServeConfig, outs []*ServeOutcome, targets []obs.SLOTarget) obs.SLOEntry {
	var warm []float64
	for _, o := range outs {
		if o.Requests == nil {
			continue
		}
		for _, r := range o.Requests.Records {
			if r.Burst >= 1 || scfg.Bursts == 1 {
				warm = append(warm, r.LatencyNanos)
			}
		}
	}
	sort.Float64s(warm)
	return obs.SLOEntry{
		Workload:    workload,
		Strategy:    strategy,
		PressurePct: scfg.PressurePct,
		Streams:     scfg.Streams,
		Requests:    len(warm),
		Attainments: obs.Attainment(warm, targets),
	}
}

// ServeTelemetryOverhead runs the identical serve scenario twice — once
// with telemetry fully on (obs registry, fault attribution, per-request
// trace) and once fully detached — and reports the wall-clock
// per-request delta. The simulated outcomes must be bit-identical
// (telemetry never perturbs the simulation; SimIdentical reports the
// check), so the delta isolates the observatory's own host-side cost.
// The two runs execute serially on fresh single-build shadow harnesses;
// image builds are excluded from the timing. Wall time is inherently
// non-deterministic — the result is a tracked number, like the report's
// ParallelSpeedup, and stays out of every bit-determinism surface.
func (h *Harness) ServeTelemetryOverhead(w workloads.Workload, strategy string, scfg ServeConfig, repeats int) (*obs.SLOOverhead, error) {
	if w.Serve == nil {
		return nil, fmt.Errorf("eval: workload %s has no serve spec", w.Name)
	}
	if strategy == "" {
		strategy = LayoutBaseline
	}
	if repeats < 1 {
		repeats = 1
	}
	scfg = scfg.withDefaults()
	onCfg := h.Cfg
	onCfg.Builds = 1
	onCfg.Workers = 1
	onCfg.Observe = true
	offCfg := onCfg
	offCfg.Observe = false
	offCfg.TrackAffinity = false
	onScfg := scfg
	onScfg.RecordRequests = true
	offScfg := scfg
	offScfg.RecordRequests = false

	run := func(cfg Config, rcfg ServeConfig) (*ServeOutcome, float64, error) {
		hh := NewHarness(cfg)
		img, err := hh.serveImage(w, strategy, 0)
		if err != nil {
			return nil, 0, err
		}
		var last *ServeOutcome
		start := time.Now()
		for i := 0; i < repeats; i++ {
			o, err := hh.serveRun(img, w, strategy, rcfg, false)
			if err != nil {
				return nil, 0, err
			}
			last = o
		}
		wall := float64(time.Since(start).Nanoseconds())
		reqs := float64(rcfg.Bursts * rcfg.BurstSize * rcfg.Streams * repeats)
		return last, wall / reqs, nil
	}
	onOut, onPer, err := run(onCfg, onScfg)
	if err != nil {
		return nil, fmt.Errorf("eval: telemetry-on overhead run of %s: %w", w.Name, err)
	}
	offOut, offPer, err := run(offCfg, offScfg)
	if err != nil {
		return nil, fmt.Errorf("eval: telemetry-off overhead run of %s: %w", w.Name, err)
	}
	oh := &obs.SLOOverhead{
		Workload:           w.Name,
		Strategy:           strategy,
		Requests:           scfg.Bursts * scfg.BurstSize * scfg.Streams,
		OnWallNanosPerReq:  onPer,
		OffWallNanosPerReq: offPer,
		SimIdentical:       sameSimOutcome(onOut, offOut),
	}
	if offPer > 0 {
		oh.OverheadFrac = onPer/offPer - 1
	}
	return oh, nil
}

// sameSimOutcome compares the simulated (deterministic) surface of two
// serve outcomes: startup, every burst measure, warm aggregates and the
// run's eviction totals. Telemetry fields (Report, Attrib, Affinity,
// Requests) are deliberately outside the comparison — they are what
// differs between the control runs.
func sameSimOutcome(a, b *ServeOutcome) bool {
	if a == nil || b == nil {
		return false
	}
	if a.StartupNanos != b.StartupNanos ||
		a.WarmMeanNanos != b.WarmMeanNanos ||
		a.WarmP99Nanos != b.WarmP99Nanos ||
		a.EvictedPages != b.EvictedPages ||
		a.RefaultPages != b.RefaultPages ||
		len(a.Bursts) != len(b.Bursts) {
		return false
	}
	for i := range a.Bursts {
		if a.Bursts[i] != b.Bursts[i] {
			return false
		}
	}
	return true
}
