package eval

// The search-grade test battery for the SLO-driven layout search:
// bit-determinism of the full trajectory across worker counts and
// repeats, the "no worse than the best seed" acceptance floor on both
// serve workloads, and the metamorphic guarantee that every candidate
// the search ever bakes is a pure permutation of the reference image.
// The differential-verifier enrollment of the slo-search strategy is
// covered alongside (TestSLOSearchPassesDifferentialVerifier).

import (
	"bytes"
	"encoding/json"
	"testing"

	"nimage/internal/core"
	"nimage/internal/image"
	"nimage/internal/obs"
	"nimage/internal/verify"
	"nimage/internal/workloads"
)

// searchTestConfig is a small-budget search: one iteration, one
// promotion, two perturbations — enough to traverse every loop phase
// (seed round, sweep generation, perturbation, promotion cut, accept or
// reject) while keeping each test run to a handful of bakes.
func searchTestConfig() SearchConfig {
	cfg := DefaultSearchConfig()
	cfg.BudgetIters = 1
	cfg.TopK = 1
	cfg.PerturbPerIter = 2
	return cfg
}

// TestSearchDeterminism mirrors TestParallelDeterminism for the layout
// search: the full trajectory — winning order, measured scorecard, and
// the exact nimage.search/v1 journal bytes — must be bit-identical
// across -workers counts and repeated fresh harnesses. The search is
// driven through MeasureServe (the production entry: serveImage bakes
// the searched winner for every build), so the worker pool is actually
// exercised around it.
func TestSearchDeterminism(t *testing.T) {
	w := serveWorkload(t, "serve-api")
	scfg := searchTestConfig()
	run := func(workers int) (string, []string) {
		cfg := DefaultConfig()
		cfg.Builds = 2
		cfg.Iterations = 1
		cfg.Workers = workers
		h := NewHarness(cfg)
		if _, err := h.MeasureServe(w, core.StrategySLOSearch, scfg.ServeAt(30)); err != nil {
			t.Fatal(err)
		}
		res, err := h.SearchLayout(w, DefaultSearchConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Journal); err != nil {
			t.Fatal(err)
		}
		return buf.String(), res.Order
	}
	refJournal, refOrder := run(1)
	for _, workers := range []int{1, 8} {
		journal, order := run(workers)
		if journal != refJournal {
			t.Errorf("-workers %d: search journal differs from the serial run:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, refJournal, workers, journal)
		}
		if len(order) != len(refOrder) {
			t.Fatalf("-workers %d: winning order has %d symbols, serial run had %d", workers, len(order), len(refOrder))
		}
		for i := range order {
			if order[i] != refOrder[i] {
				t.Fatalf("-workers %d: winning order diverges at position %d: %q vs %q",
					workers, i, order[i], refOrder[i])
			}
		}
	}
}

// TestSearchJournalRoundTrips: the journal the search emits survives the
// fuzz-hardened nimage.search/v1 codec bit-for-bit — what the search
// writes, `nimage tune -o` readers get back.
func TestSearchJournalRoundTrips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	res, err := h.SearchLayout(w, searchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteSearchReport(&buf, res.Journal); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadSearchReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal the search emitted fails its own codec: %v", err)
	}
	var again bytes.Buffer
	if err := obs.WriteSearchReport(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("journal is not an encode/decode fixed point:\n--- first ---\n%s--- second ---\n%s",
			buf.String(), again.String())
	}
	if res.Journal.Final.Candidate == "" || res.Journal.Final.Symbols != len(res.Order) {
		t.Errorf("journal final block inconsistent with result: %+v vs %d symbols",
			res.Journal.Final, len(res.Order))
	}
}

// TestSearchAttainmentFloor is the acceptance criterion: on both serve
// workloads, at the swept 30%/70% pressures, the searched slo-search
// layout's SLO attainment is >= both seeds' (c3, ext-tsp), and wherever
// attainment ties the best seed, the refault-factor geomean is >= the
// best seed's too — the floor the accept-only-on-strict-improvement
// loop guarantees by construction, so any regression here is a real
// search bug, not measurement noise.
func TestSearchAttainmentFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	scfg := searchTestConfig()
	for _, name := range []string{"serve-api", "serve-cache"} {
		w := serveWorkload(t, name)
		scores := make(map[string]*SearchScore)
		for _, s := range []string{core.StrategyC3, core.StrategyExtTSP, core.StrategySLOSearch} {
			// slo-search must bake the searched winner through MeasureServe:
			// the production path the figures use. Note the serve config of
			// MeasuredSearchScore must match the search's own (serveImage
			// runs the search at DefaultSearchConfig), so the test config
			// only shrinks the budget, never the serve scenario.
			sc, err := h.MeasuredSearchScore(w, s, scfg)
			if err != nil {
				t.Fatal(err)
			}
			scores[s] = sc
			t.Logf("%s/%s: attained %d/%d, refault geomean %.3f, burn %.3f",
				name, s, sc.Attained, sc.Targets, sc.RefaultGeomean, sc.BudgetBurn)
		}
		slo := scores[core.StrategySLOSearch]
		best := scores[core.StrategyC3]
		if betterSearchScore(*scores[core.StrategyExtTSP], *best) {
			best = scores[core.StrategyExtTSP]
		}
		for _, s := range []string{core.StrategyC3, core.StrategyExtTSP} {
			if slo.Attained < scores[s].Attained {
				t.Errorf("%s: slo-search attains %d/%d targets, below %s's %d/%d",
					name, slo.Attained, slo.Targets, s, scores[s].Attained, scores[s].Targets)
			}
		}
		if slo.Attained == best.Attained && slo.RefaultGeomean < best.RefaultGeomean {
			t.Errorf("%s: slo-search refault geomean %.4f regresses below the best seed's %.4f at equal attainment",
				name, slo.RefaultGeomean, best.RefaultGeomean)
		}
	}
}

// TestSearchCandidatesArePermutations is the metamorphic invariant: every
// candidate ordering the search ever measured, baked through the same
// pipeline path the search used, is a pure permutation of the reference
// image — same CU bodies, same objects, same section extents, valid
// offsets. A search that "wins" by dropping or duplicating code would
// fail here, not in a figure.
func TestSearchCandidatesArePermutations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	res, err := h.SearchLayout(w, searchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CandidateOrders) < 2 {
		t.Fatalf("search measured only %d candidates; expected at least the two seeds", len(res.CandidateOrders))
	}
	g, err := h.serveAffinityGraph(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := h.Program(w)
	ref, err := image.Build(p, image.Options{
		Kind:      image.KindOptimized,
		Compiler:  h.Cfg.Compiler,
		BuildSeed: optimizedSeed(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, order := range res.CandidateOrders {
		bakeRes, err := image.BuildOptimized(p, image.PipelineOptions{
			Compiler:         h.Cfg.Compiler,
			Strategy:         core.StrategySLOSearch,
			InstrumentedSeed: instrumentedSeed(0),
			OptimizedSeed:    optimizedSeed(0),
			Args:             w.Args,
			Service:          true,
			AffinityGraph:    g,
			CodeOrder:        order,
		})
		if err != nil {
			t.Fatalf("candidate %s failed to bake: %v", id, err)
		}
		for _, fail := range verify.PermutationFailures(ref, bakeRes.Optimized) {
			t.Errorf("candidate %s violates a layout invariant: %s", id, fail)
		}
	}
}

// TestSLOSearchPassesDifferentialVerifier: the registered slo-search
// strategy — baking standalone through its graph-scored inner search,
// no measured winner injected — passes the full differential verifier,
// including over generated workload seeds.
func TestSLOSearchPassesDifferentialVerifier(t *testing.T) {
	rep, err := verify.Run(verify.Options{
		Workloads:  []workloads.Workload{serveWorkload(t, "serve-api")},
		Strategies: []string{core.StrategySLOSearch},
		Seeds:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, d := range rep.Divergences {
			t.Errorf("divergence: %+v", d)
		}
	}
}
