package eval

import (
	"bytes"
	"testing"

	"nimage/internal/obs"
	"nimage/internal/workloads"
)

func TestSLOReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	w := serveWorkload(t, "serve-api")
	scfg := ServeConfig{
		Bursts: 2, BurstSize: 4, Streams: 2,
		HotPct: 80, HotRoutes: 3, Seed: 7,
	}
	strategies := []string{"cu"}
	pressures := []int{0, 70}
	rep, err := h.SLOReport([]workloads.Workload{w}, strategies, scfg, nil, pressures)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != obs.SLOSchema || rep.Streams != 2 {
		t.Fatalf("schema=%q streams=%d", rep.Schema, rep.Streams)
	}
	// One entry per pressure x workload x (baseline + strategies).
	want := len(pressures) * 1 * (1 + len(strategies))
	if len(rep.Entries) != want {
		t.Fatalf("got %d entries, want %d", len(rep.Entries), want)
	}
	warmPerBuild := (scfg.Bursts - 1) * scfg.BurstSize * scfg.Streams
	for _, e := range rep.Entries {
		if e.Workload != w.Name || e.Streams != 2 {
			t.Errorf("entry %+v", e)
		}
		if e.Requests != warmPerBuild*cfg.Builds {
			t.Errorf("entry %s@%d%% scored %d requests, want %d",
				e.Strategy, e.PressurePct, e.Requests, warmPerBuild*cfg.Builds)
		}
		if len(e.Attainments) != len(obs.DefaultSLOTargets()) {
			t.Errorf("entry %s@%d%%: %d attainments", e.Strategy, e.PressurePct, len(e.Attainments))
		}
		for _, a := range e.Attainments {
			if a.Requests != e.Requests {
				t.Errorf("attainment scored %d requests, entry has %d", a.Requests, e.Requests)
			}
		}
	}
	// The overhead control rides along, one per workload, sim-identical.
	if len(rep.Overhead) != 1 {
		t.Fatalf("got %d overhead rows, want 1", len(rep.Overhead))
	}
	oh := rep.Overhead[0]
	if !oh.SimIdentical {
		t.Error("telemetry on/off control produced divergent simulated outcomes")
	}
	if oh.OnWallNanosPerReq <= 0 || oh.OffWallNanosPerReq <= 0 {
		t.Errorf("overhead wall nanos on=%v off=%v", oh.OnWallNanosPerReq, oh.OffWallNanosPerReq)
	}
	// The document round-trips through its own codec.
	var buf bytes.Buffer
	if err := obs.WriteSLOReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ReadSLOReport(&buf); err != nil {
		t.Fatalf("SLOReport emitted an invalid document: %v", err)
	}
}

func TestServeTelemetryOverheadRejectsNonServe(t *testing.T) {
	h := NewHarness(DefaultConfig())
	w, err := workloads.ByName("Json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ServeTelemetryOverhead(w, "", ServeConfig{}, 1); err == nil {
		t.Fatal("accepted a workload without a serve spec")
	}
}
