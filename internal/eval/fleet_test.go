package eval

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nimage/internal/core"
	"nimage/internal/obs"
)

func fleetTestConfig() FleetConfig {
	return FleetConfig{
		Tenants: []TenantSpec{
			{Workload: "serve-api"},
			{Workload: "serve-cache"},
		},
		Bursts: 3, BurstSize: 8, PressurePct: 40, CacheBudget: 96,
		HotPct: 80, HotRoutes: 3, Seed: 7,
	}
}

// TestMeasureFleetPartition is the fleet observability contract: the
// per-tenant counters partition the OS totals exactly, and the
// interference matrix partitions the evictions exactly — at the eval
// layer, on a real two-tenant run under a shared budget.
func TestMeasureFleetPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	outs, err := h.MeasureFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1 per build", len(outs))
	}
	fo := outs[0]
	if len(fo.Tenants) != 2 {
		t.Fatalf("got %d tenants, want 2", len(fo.Tenants))
	}
	var faults, major, refaults, ioNanos, resident int64
	for i, tn := range fo.Tenants {
		if tn.Tenant != i || tn.Counters.Tenant != i {
			t.Errorf("tenant %d carries ids %d/%d", i, tn.Tenant, tn.Counters.Tenant)
		}
		if tn.StartupNanos <= 0 {
			t.Errorf("tenant %d: startup nanos %v", i, tn.StartupNanos)
		}
		if len(tn.Bursts) != 3 || len(tn.Resident) != 3 {
			t.Fatalf("tenant %d: %d bursts, %d residency samples", i, len(tn.Bursts), len(tn.Resident))
		}
		for b, bm := range tn.Bursts {
			if bm.Burst != b || bm.Requests != 8 {
				t.Errorf("tenant %d burst %d: index %d requests %d", i, b, bm.Burst, bm.Requests)
			}
		}
		if tn.WarmMeanNanos <= 0 || tn.WarmP99Nanos < tn.WarmMeanNanos {
			t.Errorf("tenant %d: warm aggregates mean=%v p99=%v", i, tn.WarmMeanNanos, tn.WarmP99Nanos)
		}
		if len(tn.Attainment) == 0 {
			t.Errorf("tenant %d: no SLO attainment", i)
		}
		if tn.SoloWarmMeanNanos <= 0 || tn.IsolationLatency <= 0 || tn.IsolationRefault <= 0 {
			t.Errorf("tenant %d: isolation factors solo=%v lat=%v refault=%v",
				i, tn.SoloWarmMeanNanos, tn.IsolationLatency, tn.IsolationRefault)
		}
		faults += tn.Counters.Faults
		major += tn.Counters.MajorFaults
		refaults += tn.Counters.Refaults
		ioNanos += tn.Counters.IONanos
		resident += tn.ResidentPages
	}
	// Tenants sorted canonically regardless of caller order.
	if fo.Tenants[0].Spec.Workload != "serve-api" || fo.Tenants[1].Spec.Workload != "serve-cache" {
		t.Errorf("tenant order not canonical: %s, %s",
			fo.Tenants[0].Spec.Workload, fo.Tenants[1].Spec.Workload)
	}
	// Charge-side partition: per-tenant counters sum to the OS totals.
	if faults != fo.TotalFaults || major != fo.TotalMajorFaults ||
		refaults != fo.TotalRefaults || ioNanos != fo.TotalIONanos {
		t.Errorf("tenant counter sums %d/%d/%d/%d != fleet totals %d/%d/%d/%d",
			faults, major, refaults, ioNanos,
			fo.TotalFaults, fo.TotalMajorFaults, fo.TotalRefaults, fo.TotalIONanos)
	}
	if refaults == 0 {
		t.Error("shared budget produced no re-faults; the partition check is vacuous")
	}
	// Owner-side partition: tenant residency sums to the OS residency.
	if resident != int64(fo.ResidentPages) {
		t.Errorf("tenant residency sums to %d, OS holds %d", resident, fo.ResidentPages)
	}
	// Interference matrix: exact partition of the eviction totals.
	if len(fo.EvictedBy) != 3 {
		t.Fatalf("matrix has %d rows, want 3", len(fo.EvictedBy))
	}
	var total int64
	colSums := make([]int64, 3)
	for i, row := range fo.EvictedBy {
		if len(row) != 3 {
			t.Fatalf("matrix row %d has %d columns", i, len(row))
		}
		for j, v := range row {
			if v < 0 {
				t.Fatalf("negative matrix cell [%d][%d]", i, j)
			}
			total += v
			colSums[j] += v
		}
	}
	if total != fo.TotalEvictions || total == 0 {
		t.Errorf("matrix sums to %d evictions, total %d", total, fo.TotalEvictions)
	}
	if colSums[0] != 0 {
		t.Errorf("untenanted column holds %d evictions", colSums[0])
	}
	for j, tn := range fo.Tenants {
		if colSums[j+1] != tn.EvictedPages {
			t.Errorf("tenant %d column sums to %d, tenant evicted %d", j, colSums[j+1], tn.EvictedPages)
		}
	}
	// Under a shared budget the tenants must actually interfere.
	if fo.EvictedBy[1][2] == 0 && fo.EvictedBy[2][1] == 0 {
		t.Error("no cross-tenant evictions under a shared budget")
	}
	// The outcome converts to a valid fleet document: the codec validator
	// re-checks every partition invariant on the real numbers.
	var buf bytes.Buffer
	if err := obs.WriteFleetReport(&buf, fo.FleetReport()); err != nil {
		t.Fatalf("outcome does not serialize: %v", err)
	}
	if _, err := obs.ReadFleetReport(&buf); err != nil {
		t.Fatalf("outcome does not validate: %v", err)
	}
}

// TestFleetSingleTenantMatchesServe is the back-compat contract: a
// one-tenant fleet without quota reproduces MeasureServe bit for bit —
// fleet concurrency, tenancy tagging and the fleet clock are all exactly
// the serve protocol when there is nobody to share with.
func TestFleetSingleTenantMatchesServe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	fcfg := FleetConfig{
		Tenants: []TenantSpec{{Workload: "serve-api"}},
		Bursts:  3, BurstSize: 8, PressurePct: 60,
		HotPct: 80, HotRoutes: 3, Seed: 7,
	}
	fouts, err := h.MeasureFleet(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	souts, err := h.MeasureServe(serveWorkload(t, "serve-api"), "", fcfg.serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	tn := fouts[0].Tenants[0]
	so := souts[0]
	serveView := &ServeOutcome{
		StartupNanos:  tn.StartupNanos,
		Bursts:        tn.Bursts,
		WarmMeanNanos: tn.WarmMeanNanos,
		WarmP99Nanos:  tn.WarmP99Nanos,
		EvictedPages:  tn.EvictedPages,
		RefaultPages:  tn.RefaultPages,
	}
	probe := &ServeOutcome{
		StartupNanos:  so.StartupNanos,
		Bursts:        so.Bursts,
		WarmMeanNanos: so.WarmMeanNanos,
		WarmP99Nanos:  so.WarmP99Nanos,
		EvictedPages:  so.EvictedPages,
		RefaultPages:  so.RefaultPages,
	}
	if !sameSimOutcome(serveView, probe) {
		a, _ := json.Marshal(serveView)
		b, _ := json.Marshal(probe)
		t.Fatalf("one-tenant fleet diverges from MeasureServe:\nfleet: %s\nserve: %s", a, b)
	}
	// The solo baseline of a one-tenant fleet is the run itself.
	if tn.IsolationLatency != 1 || tn.IsolationRefault != 1 {
		t.Errorf("one-tenant isolation factors %v/%v, want 1/1",
			tn.IsolationLatency, tn.IsolationRefault)
	}
}

// TestFleetDeterministic: fleet outcomes and their journal bytes are
// identical across worker counts, tenant-slice orderings and repeats —
// the fleet extension of the scheduler's determinism contract.
func TestFleetDeterministic(t *testing.T) {
	base := fleetTestConfig()
	base.RecordRequests = true
	reversed := base
	reversed.Tenants = []TenantSpec{base.Tenants[1], base.Tenants[0]}
	var prev []byte
	for i, tc := range []struct {
		workers int
		fcfg    FleetConfig
	}{
		{1, base},
		{4, base},
		{4, reversed},
		{4, reversed}, // repeat: fresh harness, same bytes
	} {
		cfg := DefaultConfig()
		cfg.Builds = 2
		cfg.Iterations = 1
		cfg.Workers = tc.workers
		h := NewHarness(cfg)
		outs, err := h.MeasureFleet(tc.fcfg)
		if err != nil {
			t.Fatal(err)
		}
		journal, err := json.Marshal(outs)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, journal) {
			t.Fatalf("run %d: fleet journal bytes diverged", i)
		}
		prev = journal
	}
}

// TestFleetQuotaCapsTenant: a residency quota caps the quota'd tenant at
// its share of the budget and the overflow evictions stay on the
// tenant's own diagonal cell.
func TestFleetQuotaCapsTenant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	fcfg := fleetTestConfig()
	fcfg.Tenants[0].QuotaPct = 25
	outs, err := h.MeasureFleet(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	fo := outs[0]
	quota := fcfg.CacheBudget * 25 / 100
	var quotad *TenantOutcome
	for _, tn := range fo.Tenants {
		if tn.Spec.QuotaPct == 25 {
			quotad = tn
		}
	}
	if quotad == nil {
		t.Fatal("quota'd tenant missing from outcome")
	}
	if quotad.QuotaPages != quota {
		t.Errorf("resolved quota %d pages, want %d", quotad.QuotaPages, quota)
	}
	if quotad.ResidentPages > int64(quota) {
		t.Errorf("quota'd tenant holds %d resident pages over quota %d",
			quotad.ResidentPages, quota)
	}
	for _, r := range quotad.Resident {
		if r > int64(quota) {
			t.Errorf("quota'd tenant held %d resident pages mid-run over quota %d", r, quota)
		}
	}
	// Quota overflow self-evicts: the diagonal cell is populated.
	i := quotad.Tenant
	if fo.EvictedBy[i+1][i+1] == 0 {
		t.Error("quota enforcement recorded no self-evictions")
	}
}

// TestMeasureFleetRejects: reject-don't-clamp at the eval layer.
func TestMeasureFleetRejects(t *testing.T) {
	h := NewHarness(DefaultConfig())
	for name, fcfg := range map[string]FleetConfig{
		"no tenants": {},
		"negative quota": {Tenants: []TenantSpec{
			{Workload: "serve-api", QuotaPct: -1}}},
		"quota over 100": {Tenants: []TenantSpec{
			{Workload: "serve-api", QuotaPct: 101}}},
		"duplicate pair": {Tenants: []TenantSpec{
			{Workload: "serve-api", Strategy: "c3"},
			{Workload: "serve-api", Strategy: "c3"}}},
		"unknown workload": {Tenants: []TenantSpec{
			{Workload: "no-such-service"}}},
		"non-serve workload": {Tenants: []TenantSpec{
			{Workload: "richards"}}},
	} {
		if _, err := h.MeasureFleet(fcfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// "identity" and "" are the same tenant: duplicates after
	// normalization are rejected too.
	if _, err := h.MeasureFleet(FleetConfig{Tenants: []TenantSpec{
		{Workload: "serve-api"},
		{Workload: "serve-api", Strategy: LayoutBaseline},
	}}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("normalized duplicate accepted: %v", err)
	}
}

// TestFleetMemoized: same canonical config (even differently ordered)
// returns the identical cached slice.
func TestFleetMemoized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	fcfg := fleetTestConfig()
	a, err := h.MeasureFleet(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	reordered := fcfg
	reordered.Tenants = []TenantSpec{fcfg.Tenants[1], fcfg.Tenants[0]}
	b, err := h.MeasureFleet(reordered)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("reordered tenants missed the memoization cache")
	}
}

// TestFleetGraphTenantsAttain is the acceptance contract of the fleet
// figure: under one shared budget, tenants running the graph-derived
// serve layouts attain at least as many SLO cells as the cu+heap path
// tenant — residency-aware layouts survive contention better.
func TestFleetGraphTenantsAttain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	h := NewHarness(cfg)
	fcfg := FleetConfig{
		Tenants: []TenantSpec{
			{Workload: "serve-api", Strategy: core.StrategyCombined},
			{Workload: "serve-api", Strategy: core.StrategyC3},
			{Workload: "serve-cache", Strategy: core.StrategyExtTSP},
		},
		Bursts: 3, BurstSize: 8, PressurePct: 40, CacheBudget: 128,
		HotPct: 80, HotRoutes: 3, Seed: 7,
	}
	outs, err := h.MeasureFleet(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	attained := func(tn *TenantOutcome) int {
		n := 0
		for _, a := range tn.Attainment {
			if a.Attained {
				n++
			}
		}
		return n
	}
	var combined int
	found := false
	for _, tn := range outs[0].Tenants {
		if tn.Spec.Strategy == core.StrategyCombined {
			combined = attained(tn)
			found = true
		}
	}
	if !found {
		t.Fatal("cu+heap path tenant missing")
	}
	for _, tn := range outs[0].Tenants {
		if tn.Spec.Strategy == core.StrategyCombined {
			continue
		}
		if got := attained(tn); got < combined {
			t.Errorf("tenant %s/%s attains %d SLO cells, cu+heap path attains %d",
				tn.Spec.Workload, tn.Spec.Strategy, got, combined)
		}
	}
}

// TestFleetServeReport: the consolidated document wraps a fleet run as
// schema v6 — one entry per tenant, the shared OS's snapshot on the
// first entry only, and the nimage.fleet/v1 scorecard in Fleet.
func TestFleetServeReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Builds = 1
	cfg.Iterations = 1
	cfg.Observe = true
	h := NewHarness(cfg)
	rep, err := h.FleetServeReport(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Fleet == nil || rep.Fleet.Schema != obs.FleetSchema {
		t.Fatalf("fleet section missing or mis-schemed: %+v", rep.Fleet)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("got %d entries, want one per tenant", len(rep.Entries))
	}
	for i, e := range rep.Entries {
		if !e.Service || e.Strategy != "" {
			t.Errorf("entry %d: service=%v strategy=%q", i, e.Service, e.Strategy)
		}
		if want := i == 0; (len(e.Runs) == 1) != want {
			t.Errorf("entry %d carries %d snapshots; the shared snapshot belongs to entry 0 only", i, len(e.Runs))
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The embedded fleet section must survive the codec's validator.
	var doc struct {
		Fleet json.RawMessage `json:"fleet"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ReadFleetReport(bytes.NewReader(doc.Fleet)); err != nil {
		t.Errorf("embedded fleet section rejected: %v", err)
	}
}
