// Package osim simulates the operating-system behaviour the paper measures:
// demand paging of a memory-mapped binary over a storage device.
//
// Native-Image binaries are mapped when the program starts; each page of the
// .text and .svm_heap sections is lazily read on first access (Sec. 2). The
// evaluation counts page faults attributed to each section by filtering fault
// offsets (Sec. 7.1), runs on an SSD with 4 KiB pages, and drops the page
// cache between iterations. Fig. 6 additionally distinguishes pages that
// faulted from pages that were paged in by the OS without faulting — the
// fault-around/readahead behaviour modelled here.
package osim

import (
	"fmt"
	"time"

	"nimage/internal/obs"
)

// PageSize is the page size in bytes (the paper uses 4 KiB pages).
const PageSize = 4096

// Device describes a storage device backing the binary file.
type Device struct {
	Name string
	// SeekLatency is the fixed cost of one read request (device latency,
	// and for NFS a network round trip).
	SeekLatency time.Duration
	// PerPage is the additional transfer cost per 4 KiB page read.
	PerPage time.Duration
}

// SSD models the local solid-state drive of the evaluation (Sec. 7.1).
func SSD() Device {
	return Device{Name: "ssd", SeekLatency: 90 * time.Microsecond, PerPage: 6 * time.Microsecond}
}

// NFS models the network file system alternative the paper reports as
// yielding similar results (Sec. 7.1).
func NFS() Device {
	return Device{Name: "nfs", SeekLatency: 450 * time.Microsecond, PerPage: 18 * time.Microsecond}
}

// OS owns the page cache shared by all processes until caches are dropped.
type OS struct {
	Device Device
	// FaultAround is the number of pages (aligned cluster) brought in and
	// mapped around a faulting page, modelling Linux fault-around plus
	// readahead. Must be a power of two.
	FaultAround int
	// AdaptiveReadahead enables Linux-style readahead escalation: when a
	// mapping faults on the cluster immediately following its previous
	// fault, the read window doubles (up to MaxReadahead pages). This
	// rewards layouts whose access *order* matches the layout order — the
	// Property-1 ordering of Sec. 4 — beyond mere compaction.
	AdaptiveReadahead bool
	// MaxReadahead caps the escalated window (pages).
	MaxReadahead int

	// Obs, when non-nil, receives per-fault timeline events and fault
	// counters from every mapping created after it is set. A nil registry
	// keeps the fault path free of instrumentation cost.
	Obs *obs.Registry

	// AttributeFaults asks higher layers (the image runtime) to attach a
	// per-fault attribution recorder to every mapping even when no obs
	// registry is present. The osim layer itself only carries the flag.
	AttributeFaults bool

	// TrackAffinity asks higher layers to attach an affinity recorder
	// (internal/obs/affinity) to every mapping even when no obs registry
	// is present. Like AttributeFaults, the osim layer only carries the
	// flag; the image runtime wires the recorder.
	TrackAffinity bool

	// CacheBudget caps the resident pages across all files of the OS;
	// 0 means unlimited (the cold-start model, where only DropCaches
	// empties the cache). When a fault's read overflows the budget, the
	// Policy picks victims to evict.
	CacheBudget int
	// Policy selects the page-replacement policy used by the budget and
	// by Reclaim (EvictLRU by default).
	Policy EvictionPolicy

	// DefaultTenant, when non-negative, tags every file and mapping
	// created afterwards with that tenant id, as if SetTenant were called
	// at Map() time. The fleet harness sets it around each tenant's
	// process construction, because NewProcess touches pages before the
	// caller could tag the mapping itself. NewOS initializes it to -1
	// (untenanted).
	DefaultTenant int

	files []*File

	// Tenant accounting state (tenant.go): per-tenant fault counters, the
	// eviction interference matrix, and per-tenant residency quotas. All
	// nil until tenancy is first enabled, so untenanted runs pay nothing.
	perTenant   []TenantFaults
	evictedBy   [][]int64
	tenantQuota map[int]int

	// Replacement-policy state: a logical access clock for LRU stamps,
	// the resident total the budget is enforced against, and the clock
	// policy's sweep hand over the concatenated page space.
	clock         int64
	residentTotal int
	hand          int
}

// FaultEvent describes one page fault as it is taken, for FaultObserver
// implementations (e.g. the attribution recorder of internal/obs/attrib).
type FaultEvent struct {
	// Off is the faulting byte offset; Page the faulting page index.
	Off  int64
	Page int
	// Section indexes File.Sections for the section containing Off, or
	// len(Sections) when the offset lies outside every section.
	Section int
	// Major reports whether the fault required device I/O; IONanos is the
	// simulated device time charged to it (0 for minor faults).
	Major   bool
	IONanos int64
	// ReadPages counts the pages the fault's read window brought into the
	// page cache (0 for minor faults).
	ReadPages int
	// MappedStart/MappedEnd delimit the page range [MappedStart, MappedEnd)
	// the fault-around window mapped into the process around the fault.
	MappedStart, MappedEnd int
}

// FaultObserver receives every page fault of a mapping as it happens.
// Observers must not touch the mapping they observe.
type FaultObserver interface {
	OnFault(FaultEvent)
}

// DefaultFaultAround is the default fault-around cluster size in pages.
const DefaultFaultAround = 8

// NewOS creates an OS with an empty page cache.
func NewOS(dev Device) *OS {
	return &OS{Device: dev, FaultAround: DefaultFaultAround, MaxReadahead: 32, DefaultTenant: -1}
}

// Section is a named contiguous byte range of a file (e.g. ".text").
type Section struct {
	Name string
	Off  int64
	Len  int64
}

// Contains reports whether the file offset lies inside the section.
func (s Section) Contains(off int64) bool { return off >= s.Off && off < s.Off+s.Len }

// File is an on-"disk" file with a page-cache residency bitmap.
type File struct {
	os       *OS
	Name     string
	Size     int64
	Sections []Section
	resident []bool

	// Replacement-policy state: per-page last-use stamps (LRU), reference
	// bits (clock), and whether the page was evicted under pressure or
	// budget since the last DropCaches (re-fault tracking).
	lastUse     []int64
	ref         []bool
	everEvicted []bool

	// mappings are the live mappings of the file; evicting a page unmaps
	// it from each of them (the kernel's rmap walk).
	mappings []*Mapping

	// tenant owns the file's pages in the interference matrix (-1 when
	// untenanted), fixed at NewFile time from OS.DefaultTenant.
	tenant int

	// Cumulative cache-churn counters. Invariant (enforced by test):
	// ResidentPages() == readIn - evicted at every point in time.
	readIn     int64
	evicted    int64
	refaults   int64
	evictBySec []int64 // per Sections index, + catch-all at the end
}

// NewFile registers a file with the OS. Sections must not overlap.
func (o *OS) NewFile(name string, size int64, sections []Section) (*File, error) {
	for i, s := range sections {
		if s.Off < 0 || s.Len < 0 || s.Off+s.Len > size {
			return nil, fmt.Errorf("osim: section %s out of file bounds", s.Name)
		}
		for _, t := range sections[:i] {
			if s.Off < t.Off+t.Len && t.Off < s.Off+s.Len {
				return nil, fmt.Errorf("osim: sections %s and %s overlap", s.Name, t.Name)
			}
		}
	}
	n := pagesFor(size)
	f := &File{
		os:          o,
		Name:        name,
		Size:        size,
		Sections:    sections,
		resident:    make([]bool, n),
		lastUse:     make([]int64, n),
		ref:         make([]bool, n),
		everEvicted: make([]bool, n),
		evictBySec:  make([]int64, len(sections)+1),
		tenant:      o.DefaultTenant,
	}
	if f.tenant >= 0 {
		o.enableTenants(f.tenant)
	}
	o.files = append(o.files, f)
	return f, nil
}

// DropCaches evicts every clean page, like writing to
// /proc/sys/vm/drop_caches between benchmark iterations (Sec. 7.1). It
// goes through the regular eviction path (unmapping pages from live
// mappings and notifying EvictionObservers with EvictDrop), and resets
// re-fault tracking: a deliberate cold-start reset is not memory
// pressure, so faults after it are first faults, not re-faults.
func (o *OS) DropCaches() {
	for _, f := range o.files {
		for p, res := range f.resident {
			if res {
				o.evictPage(f, p, EvictDrop, -1)
			}
		}
		for p := range f.everEvicted {
			f.everEvicted[p] = false
		}
	}
}

// PageState classifies a page of a mapping for the Fig. 6 visualization.
type PageState uint8

const (
	// PageUntouched: not mapped into the process (black cells of Fig. 6).
	PageUntouched PageState = iota
	// PageMappedNoFault: mapped by the OS via fault-around but never
	// faulted by the process (red cells).
	PageMappedNoFault
	// PageFaulted: caused a page fault (green cells).
	PageFaulted
)

// SectionFaults aggregates fault counts attributed to one section.
type SectionFaults struct {
	Section string
	Major   int64 // faults that triggered device I/O
	Minor   int64 // faults satisfied from the page cache
}

// Total returns major+minor faults — what `perf` reports as page-faults.
func (s SectionFaults) Total() int64 { return s.Major + s.Minor }

// StreamFaults is the fault traffic one request stream incurred through a
// mapping — the shared-budget contention accounting of serve mode, where
// several concurrent streams multiplex over one mapping and compete for
// one page-cache budget. The per-stream counters partition the mapping
// totals exactly (enforced by test): every fault is charged to the stream
// tagged at the time it was taken.
type StreamFaults struct {
	Stream      int   `json:"stream"`
	Faults      int64 `json:"faults"`
	MajorFaults int64 `json:"major_faults"`
	Refaults    int64 `json:"refaults"`
	IONanos     int64 `json:"io_nanos"`
}

// Mapping is one process's memory map of a file. It tracks which pages are
// mapped, which faulted, per-section fault counts, and accumulated I/O time.
type Mapping struct {
	file    *File
	mapped  []bool
	faulted []bool

	// stream is the request stream subsequent faults are charged to;
	// perStream holds the per-stream counters, nil until SetStream is
	// first called so untagged mappings pay nothing for the accounting.
	stream    int
	perStream []StreamFaults

	// tenant is the tenant subsequent faults are charged to (-1 when
	// untenanted): set by SetTenant, inherited from OS.DefaultTenant at
	// Map() time (tenant.go).
	tenant int

	// Faults counts all page faults taken through this mapping.
	Faults int64
	// MajorFaults counts faults that required device I/O.
	MajorFaults int64
	// Refaults counts major faults that re-read a page evicted under
	// pressure or budget since the last DropCaches — the page-cache churn
	// cost of serve-mode workloads.
	Refaults int64
	// IOTime is the accumulated simulated device time.
	IOTime time.Duration

	bySection []SectionFaults
	other     SectionFaults

	// Observer, when non-nil, receives every fault of the mapping. Set it
	// before the first Touch; the startup faults of a process are part of
	// the attribution stream too.
	Observer FaultObserver

	// EvictObserver, when non-nil, receives every eviction of a page of
	// the mapped file (whether or not this mapping had it mapped).
	EvictObserver EvictionObserver

	// AccessObserver, when non-nil, receives the coarse page-access
	// stream of the mapping (see AccessEvent): one event per page
	// transition, faults included. Set it before the first Touch.
	AccessObserver AccessObserver

	// lastAccessPage is the page of the mapping's previous Touch, for the
	// page-transition coarsening of the access stream (-1 before the
	// first touch).
	lastAccessPage int

	// Readahead escalation state (AdaptiveReadahead): lastEnd is the page
	// index just past the previous read window; window the current size.
	lastEnd int
	window  int

	// Observability handles, resolved once at Map() time so the fault path
	// does no registry lookups. All are nil when the OS has no registry.
	tl       *obs.Timeline
	majorCtr []*obs.Counter // parallel to bySection, + catch-all at the end
	minorCtr []*obs.Counter
	readHist *obs.Histogram
}

// Map establishes a new mapping of the file (fresh virtual address space;
// nothing mapped yet).
func (f *File) Map() *Mapping {
	m := &Mapping{
		file:      f,
		mapped:    make([]bool, len(f.resident)),
		faulted:   make([]bool, len(f.resident)),
		bySection: make([]SectionFaults, len(f.Sections)),
	}
	for i, s := range f.Sections {
		m.bySection[i].Section = s.Name
	}
	m.other.Section = "<other>"
	m.lastEnd = -1
	m.lastAccessPage = -1
	m.tenant = f.os.DefaultTenant
	if m.tenant >= 0 {
		f.os.enableTenants(m.tenant)
	}
	if r := f.os.Obs; r.Enabled() {
		// The trailing "section" column carries the section *index* (stable
		// across builds of the same program, unlike event order), so merged
		// snapshots from parallel builds remain attributable even after
		// MergeSnapshots rebases the event sequence numbers.
		m.tl = r.Timeline("osim.faults", "offset", "page", "major", "io_nanos", "section")
		m.majorCtr = make([]*obs.Counter, len(f.Sections)+1)
		m.minorCtr = make([]*obs.Counter, len(f.Sections)+1)
		for i := range m.bySection {
			m.majorCtr[i] = r.Counter("osim.fault.major." + m.bySection[i].Section)
			m.minorCtr[i] = r.Counter("osim.fault.minor." + m.bySection[i].Section)
		}
		m.majorCtr[len(f.Sections)] = r.Counter("osim.fault.major.<other>")
		m.minorCtr[len(f.Sections)] = r.Counter("osim.fault.minor.<other>")
		m.readHist = r.Histogram("osim.read_pages", []float64{1, 2, 4, 8, 16, 32})
	}
	f.mappings = append(f.mappings, m)
	return m
}

// Release unregisters the mapping from its file, like munmap at process
// exit: later evictions no longer unmap its pages or notify its
// EvictObserver. The mapping's counters stay readable.
func (m *Mapping) Release() {
	f := m.file
	for i, mm := range f.mappings {
		if mm == m {
			f.mappings = append(f.mappings[:i], f.mappings[i+1:]...)
			return
		}
	}
}

// SetStream tags the mapping with the request stream that owns the
// accesses until the next SetStream: faults taken while the tag is s are
// charged to stream s's StreamFaults. The first call enables per-stream
// accounting; ids must be non-negative and are expected to stay small
// (the serve harness uses 0..Streams-1).
func (m *Mapping) SetStream(s int) {
	if s < 0 {
		panic(fmt.Sprintf("osim: negative stream id %d", s))
	}
	m.stream = s
	m.growStreams(s)
}

// growStreams ensures perStream covers stream id s.
func (m *Mapping) growStreams(s int) {
	for len(m.perStream) <= s {
		m.perStream = append(m.perStream, StreamFaults{Stream: len(m.perStream)})
	}
}

// StreamCounters returns a copy of the per-stream fault counters, one
// entry per stream id seen by SetStream (nil when accounting was never
// enabled).
func (m *Mapping) StreamCounters() []StreamFaults {
	if m.perStream == nil {
		return nil
	}
	return append([]StreamFaults(nil), m.perStream...)
}

// chargeStream attributes one fault to the currently tagged stream.
func (m *Mapping) chargeStream(major, refault bool, faultIO time.Duration) {
	if m.perStream == nil {
		return
	}
	sf := &m.perStream[m.stream]
	sf.Faults++
	if major {
		sf.MajorFaults++
		sf.IONanos += faultIO.Nanoseconds()
	}
	if refault {
		sf.Refaults++
	}
}

// Touch accesses one byte offset, faulting the page in if necessary.
func (m *Mapping) Touch(off int64) {
	if off < 0 || off >= m.file.Size {
		panic(fmt.Sprintf("osim: touch offset %d outside file %q of size %d", off, m.file.Name, m.file.Size))
	}
	p := int(off / PageSize)
	if m.mapped[p] {
		// Plain memory access: no fault, but the page's recency still
		// advances for the replacement policies.
		m.file.noteUse(p)
		m.noteAccess(off, p, false)
		return
	}
	// Page fault. Attribute it to the section containing the offset, the
	// way the evaluation filters perf fault traces by section offsets.
	m.Faults++
	sf := &m.other
	secIdx := len(m.bySection)
	for i := range m.file.Sections {
		if m.file.Sections[i].Contains(off) {
			sf = &m.bySection[i]
			secIdx = i
			break
		}
	}
	m.faulted[p] = true
	fa := m.file.os.FaultAround
	if fa < 1 {
		fa = 1
	}
	var faultIO time.Duration
	read := 0
	refault := false
	major := !m.file.resident[p]
	if !major {
		sf.Minor++
	} else {
		sf.Major++
		m.MajorFaults++
		if m.file.everEvicted[p] {
			// This page had been in the cache and was reclaimed: the fault
			// is a re-fault, the churn cost serve-mode layouts compete on.
			m.file.refaults++
			m.Refaults++
			refault = true
		}
		// Read window: the aligned fault-around cluster, escalated when
		// the fault continues right after the previous read window
		// (AdaptiveReadahead — Linux readahead ramp-up).
		window := fa
		if m.file.os.AdaptiveReadahead {
			if m.window < fa {
				m.window = fa
			}
			if m.lastEnd >= 0 && p >= m.lastEnd && p < m.lastEnd+fa {
				m.window *= 2
				maxRA := m.file.os.MaxReadahead
				if maxRA < fa {
					maxRA = fa
				}
				if m.window > maxRA {
					m.window = maxRA
				}
			} else {
				m.window = fa
			}
			window = m.window
		}
		start := p / fa * fa
		end := start + window
		if end > len(m.file.resident) {
			end = len(m.file.resident)
		}
		for i := start; i < end; i++ {
			if !m.file.resident[i] {
				m.file.resident[i] = true
				m.file.readIn++
				m.file.os.residentTotal++
				m.file.noteUse(i)
				read++
			}
		}
		m.lastEnd = end
		dev := m.file.os.Device
		faultIO = dev.SeekLatency + time.Duration(read)*dev.PerPage
		m.IOTime += faultIO
		if m.readHist != nil {
			m.readHist.Observe(float64(read))
		}
		// The read may have overflowed the resident budget: reclaim down
		// to it, never evicting the page this fault needs. Evictions are
		// charged to this mapping's tenant in the interference matrix.
		m.file.os.enforceBudget(m.file, p, m.tenant)
		m.file.os.enforceQuota(m.tenant, m.file, p)
	}
	m.chargeStream(major, refault, faultIO)
	m.chargeTenant(major, refault, faultIO)
	m.file.noteUse(p)
	if m.tl != nil {
		var mj int64
		if major {
			mj = 1
			m.majorCtr[secIdx].Inc()
		} else {
			m.minorCtr[secIdx].Inc()
		}
		m.tl.Record(sf.Section, off, int64(p), mj, faultIO.Nanoseconds(), int64(secIdx))
	}
	// Fault-around: map the resident pages of the surrounding window
	// without further faults (the red cells of Fig. 6).
	around := fa
	if m.file.os.AdaptiveReadahead && m.window > around {
		around = m.window
	}
	start := p / fa * fa
	end := start + around
	if end > len(m.mapped) {
		end = len(m.mapped)
	}
	for i := start; i < end; i++ {
		if m.file.resident[i] {
			m.mapped[i] = true
		}
	}
	m.mapped[p] = true
	if m.Observer != nil {
		m.Observer.OnFault(FaultEvent{
			Off: off, Page: p, Section: secIdx,
			Major: major, IONanos: faultIO.Nanoseconds(), ReadPages: read,
			MappedStart: start, MappedEnd: end,
		})
	}
	m.noteAccess(off, p, true)
}

// TouchRange accesses [off, off+n), faulting each covered page. Each
// page is touched at the first byte of the range on it (the range start
// for the first page, the page start for the rest), so observers see
// offsets inside the accessed symbol rather than page-aligned ones —
// the affinity recorder resolves them to the symbol being executed, not
// to whichever symbol happens to open the page.
func (m *Mapping) TouchRange(off, n int64) {
	if n <= 0 {
		return
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for p := first; p <= last; p++ {
		at := p * PageSize
		if at < off {
			at = off
		}
		m.Touch(at)
	}
}

// SectionFaults returns fault counts for the named section.
func (m *Mapping) SectionFaults(name string) SectionFaults {
	for _, sf := range m.bySection {
		if sf.Section == name {
			return sf
		}
	}
	return SectionFaults{Section: name}
}

// AllSectionFaults returns the per-section fault counts in section order,
// plus the catch-all bucket for offsets outside any section.
func (m *Mapping) AllSectionFaults() []SectionFaults {
	out := make([]SectionFaults, 0, len(m.bySection)+1)
	out = append(out, m.bySection...)
	return append(out, m.other)
}

// PageStates returns the per-page classification of the named section for
// the Fig. 6 visualization, or nil if the section does not exist.
func (m *Mapping) PageStates(section string) []PageState {
	var sec *Section
	for i := range m.file.Sections {
		if m.file.Sections[i].Name == section {
			sec = &m.file.Sections[i]
			break
		}
	}
	if sec == nil {
		return nil
	}
	first := sec.Off / PageSize
	last := (sec.Off + sec.Len - 1) / PageSize
	out := make([]PageState, 0, last-first+1)
	for p := first; p <= last; p++ {
		switch {
		case m.faulted[p]:
			out = append(out, PageFaulted)
		case m.mapped[p]:
			out = append(out, PageMappedNoFault)
		default:
			out = append(out, PageUntouched)
		}
	}
	return out
}

// PageClasses returns the per-page classification of the whole file — the
// per-section view of PageStates extended to every page, used by the fault
// attribution recorder to compute resident-but-unused (fault-around waste)
// bytes per symbol after a run.
func (m *Mapping) PageClasses() []PageState {
	out := make([]PageState, len(m.mapped))
	for p := range m.mapped {
		switch {
		case m.faulted[p]:
			out[p] = PageFaulted
		case m.mapped[p]:
			out[p] = PageMappedNoFault
		}
	}
	return out
}

// ResidentPages returns how many pages of the file are in the page cache.
func (f *File) ResidentPages() int {
	n := 0
	for _, r := range f.resident {
		if r {
			n++
		}
	}
	return n
}

func pagesFor(size int64) int {
	if size <= 0 {
		return 0
	}
	return int((size + PageSize - 1) / PageSize)
}
