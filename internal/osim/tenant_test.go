package osim

import "testing"

// tenantFile registers one file owned by the given tenant (via the
// DefaultTenant inheritance the fleet harness uses) and maps it once.
func tenantFile(t *testing.T, o *OS, tenant, pages int) (*File, *Mapping) {
	t.Helper()
	o.DefaultTenant = tenant
	defer func() { o.DefaultTenant = -1 }()
	size := int64(pages) * PageSize
	f, err := o.NewFile("bin", size, []Section{
		{Name: ".text", Off: 0, Len: size / 2},
		{Name: ".svm_heap", Off: size / 2, Len: size / 2},
	})
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	return f, f.Map()
}

func TestTenantCountersDisabledByDefault(t *testing.T) {
	o := NewOS(SSD())
	f := newTestFile(t, o, 16)
	m := f.Map()
	m.Touch(0)
	m.Touch(PageSize * 4)
	if got := o.TenantCounters(); got != nil {
		t.Fatalf("untenanted OS tracks tenants: %+v", got)
	}
	if got := o.InterferenceMatrix(); got != nil {
		t.Fatalf("untenanted OS tracks evictions: %+v", got)
	}
	if m.Tenant() != -1 || f.Tenant() != -1 {
		t.Fatalf("untenanted mapping/file carry tenant %d/%d", m.Tenant(), f.Tenant())
	}
}

func TestTenantCountersPartitionTotals(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	o.CacheBudget = 3 // tight budget so tenants evict each other and re-fault
	_, m0 := tenantFile(t, o, 0, 8)
	_, m1 := tenantFile(t, o, 1, 8)
	maps := []*Mapping{m0, m1}
	// Interleave the two tenants over their own files; the shared budget
	// forces cross-tenant evictions and re-faults on the second pass.
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < 8; p++ {
			maps[p%2].Touch(int64(p) * PageSize)
			maps[(p+1)%2].Touch(int64(p) * PageSize)
		}
	}
	cs := o.TenantCounters()
	if len(cs) != 2 {
		t.Fatalf("got %d tenant counters, want 2", len(cs))
	}
	var faults, major, refaults, ioNanos int64
	for i, c := range cs {
		if c.Tenant != i {
			t.Errorf("counter %d carries tenant id %d", i, c.Tenant)
		}
		if c.Faults == 0 || c.MajorFaults == 0 {
			t.Errorf("tenant %d took no faults: %+v", i, c)
		}
		faults += c.Faults
		major += c.MajorFaults
		refaults += c.Refaults
		ioNanos += c.IONanos
	}
	// Per-tenant counters partition the mapping totals exactly.
	wantFaults := m0.Faults + m1.Faults
	wantMajor := m0.MajorFaults + m1.MajorFaults
	wantRefaults := m0.Refaults + m1.Refaults
	wantIO := (m0.IOTime + m1.IOTime).Nanoseconds()
	if faults != wantFaults || major != wantMajor || refaults != wantRefaults {
		t.Errorf("tenant sums faults/major/refaults = %d/%d/%d, mapping totals %d/%d/%d",
			faults, major, refaults, wantFaults, wantMajor, wantRefaults)
	}
	if ioNanos != wantIO {
		t.Errorf("tenant I/O sum %dns != mapping total %dns", ioNanos, wantIO)
	}
	if refaults == 0 {
		t.Error("tight budget produced no re-faults; the partition check is vacuous")
	}
	// The copy is detached from live counters.
	cs[0].Faults = -99
	if o.TenantCounters()[0].Faults == -99 {
		t.Error("TenantCounters returned a live reference")
	}
}

// TestInterferenceMatrixPartitionsEvictions is the fleet observability
// contract: every eviction lands in exactly one (evictor, owner) cell, so
// the matrix sums to the total evictions and each owner column sums to
// that tenant's evicted pages.
func TestInterferenceMatrixPartitionsEvictions(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRU, EvictClock} {
		t.Run(policy.String(), func(t *testing.T) {
			o := NewOS(SSD())
			o.FaultAround = 1
			o.CacheBudget = 4
			o.Policy = policy
			f0, m0 := tenantFile(t, o, 0, 8)
			f1, m1 := tenantFile(t, o, 1, 8)
			maps := []*Mapping{m0, m1}
			// Alternate streaming phases: the active tenant's faults evict
			// the idle tenant's cold pages, filling the cross-tenant cells.
			for pass := 0; pass < 4; pass++ {
				active := maps[pass%2]
				for p := 0; p < 8; p++ {
					active.Touch(int64(p) * PageSize)
				}
				// External pressure and a cold-start reset both land in the
				// matrix's external row.
				o.Reclaim(1)
			}
			o.DropCaches()
			mat := o.InterferenceMatrix()
			if len(mat) != 3 {
				t.Fatalf("matrix has %d rows, want 3 (external + 2 tenants)", len(mat))
			}
			var total int64
			colSums := make([]int64, len(mat[0]))
			anyExternal := false
			for i, row := range mat {
				if len(row) != len(mat[0]) {
					t.Fatalf("ragged matrix: row %d has %d cols, row 0 has %d", i, len(row), len(mat[0]))
				}
				for j, n := range row {
					if n < 0 {
						t.Fatalf("negative matrix cell [%d][%d] = %d", i, j, n)
					}
					total += n
					colSums[j] += n
					if i == 0 && n > 0 {
						anyExternal = true
					}
				}
			}
			wantTotal := f0.EvictedPages() + f1.EvictedPages()
			if total != wantTotal {
				t.Errorf("matrix sums to %d evictions, files evicted %d", total, wantTotal)
			}
			if total == 0 {
				t.Error("no evictions; the partition check is vacuous")
			}
			if colSums[0] != 0 {
				t.Errorf("untenanted owner column holds %d evictions, every file is owned", colSums[0])
			}
			for tn := 0; tn < 2; tn++ {
				if colSums[tn+1] != o.TenantEvictions(tn) {
					t.Errorf("tenant %d column sums to %d, TenantEvictions reports %d",
						tn, colSums[tn+1], o.TenantEvictions(tn))
				}
			}
			if !anyExternal {
				t.Error("Reclaim/DropCaches recorded no external-row evictions")
			}
			// Cross-tenant cells must be exercised: under a shared budget a
			// tenant's fault evicts the other tenant's coldest pages.
			if mat[1][2] == 0 && mat[2][1] == 0 {
				t.Error("no cross-tenant evictions recorded under a shared budget")
			}
			// The copy is detached from the live matrix.
			mat[0][0] = -99
			if o.InterferenceMatrix()[0][0] == -99 {
				t.Error("InterferenceMatrix returned a live reference")
			}
		})
	}
}

// TestTenantResidencyReconciles checks the owner-side residency view
// against the OS total: tenant resident pages partition ResidentPages().
func TestTenantResidencyReconciles(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 2
	o.CacheBudget = 6
	_, m0 := tenantFile(t, o, 0, 8)
	_, m1 := tenantFile(t, o, 1, 8)
	for p := 0; p < 8; p++ {
		m0.Touch(int64(p) * PageSize)
		m1.Touch(int64(p) * PageSize)
	}
	got := o.TenantResidentPages(0) + o.TenantResidentPages(1)
	if got != o.ResidentPages() {
		t.Fatalf("tenant residency sums to %d, OS holds %d resident pages", got, o.ResidentPages())
	}
	if o.ResidentPages() != 6 {
		t.Fatalf("budget not enforced: %d resident pages", o.ResidentPages())
	}
}

func TestTenantQuotaSelfEvicts(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	_, m0 := tenantFile(t, o, 0, 16)
	_, m1 := tenantFile(t, o, 1, 16)
	o.SetTenantQuota(0, 4)
	for p := 0; p < 16; p++ {
		m0.Touch(int64(p) * PageSize)
		m1.Touch(int64(p) * PageSize)
	}
	if got := o.TenantResidentPages(0); got != 4 {
		t.Fatalf("tenant 0 holds %d resident pages over a quota of 4", got)
	}
	// No shared budget: the unquota'd tenant keeps its whole working set.
	if got := o.TenantResidentPages(1); got != 16 {
		t.Fatalf("tenant 1 holds %d resident pages, want 16", got)
	}
	// Quota overflow is self-inflicted: every eviction sits in tenant 0's
	// own (evictor, owner) diagonal cell.
	mat := o.InterferenceMatrix()
	if mat[1][1] != o.TenantEvictions(0) || mat[1][1] == 0 {
		t.Fatalf("quota evictions [1][1] = %d, tenant 0 evicted %d", mat[1][1], o.TenantEvictions(0))
	}
	if mat[2][2] != 0 || mat[1][2] != 0 || mat[2][1] != 0 {
		t.Fatalf("quota enforcement leaked cross-tenant evictions: %v", mat)
	}
	if m1.Refaults != 0 {
		t.Fatalf("tenant 1 re-faulted %d pages without pressure", m1.Refaults)
	}
	_ = m0
}

func TestTenantQuotaRemovable(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	_, m := tenantFile(t, o, 0, 8)
	o.SetTenantQuota(0, 2)
	if got := o.TenantQuota(0); got != 2 {
		t.Fatalf("quota = %d, want 2", got)
	}
	o.SetTenantQuota(0, 0)
	for p := 0; p < 8; p++ {
		m.Touch(int64(p) * PageSize)
	}
	if got := o.TenantResidentPages(0); got != 8 {
		t.Fatalf("removed quota still enforced: %d resident pages", got)
	}
}

func TestSetTenantRejectsNegative(t *testing.T) {
	o := NewOS(SSD())
	f := newTestFile(t, o, 4)
	m := f.Map()
	defer func() {
		if recover() == nil {
			t.Fatal("SetTenant accepted a negative id")
		}
	}()
	m.SetTenant(-1)
}

// TestTenantTaggingPreservesEviction is the fleet back-compat contract:
// tenancy is accounting only — tagging tenants (without quotas) must not
// change which pages fault, evict or re-fault.
func TestTenantTaggingPreservesEviction(t *testing.T) {
	run := func(tag bool) (int64, int64, int64, int) {
		o := NewOS(SSD())
		o.FaultAround = 1
		o.CacheBudget = 3
		f := newTestFile(t, o, 8)
		m := f.Map()
		if tag {
			m.SetTenant(0)
		}
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < 8; p++ {
				m.Touch(int64(p) * PageSize)
			}
			o.ReclaimFraction(50)
		}
		return m.Faults, f.EvictedPages(), f.RefaultedPages(), o.ResidentPages()
	}
	f0, e0, r0, res0 := run(false)
	f1, e1, r1, res1 := run(true)
	if f0 != f1 || e0 != e1 || r0 != r1 || res0 != res1 {
		t.Fatalf("tenancy changed the simulation: untagged %d/%d/%d/%d, tagged %d/%d/%d/%d",
			f0, e0, r0, res0, f1, e1, r1, res1)
	}
}
