package osim

import (
	"testing"
	"testing/quick"
	"time"
)

func newTestFile(t *testing.T, o *OS, pages int) *File {
	t.Helper()
	size := int64(pages) * PageSize
	f, err := o.NewFile("bin", size, []Section{
		{Name: ".text", Off: 0, Len: size / 2},
		{Name: ".svm_heap", Off: size / 2, Len: size / 2},
	})
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	return f
}

func TestColdTouchIsMajorFault(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f := newTestFile(t, o, 16)
	m := f.Map()
	m.Touch(0)
	if m.Faults != 1 || m.MajorFaults != 1 {
		t.Fatalf("faults = %d major = %d", m.Faults, m.MajorFaults)
	}
	if m.IOTime != SSD().SeekLatency+SSD().PerPage {
		t.Fatalf("IOTime = %v", m.IOTime)
	}
	// Second touch of the same page: no fault.
	m.Touch(100)
	if m.Faults != 1 {
		t.Fatalf("second touch faulted: %d", m.Faults)
	}
}

func TestMinorFaultAfterPageCacheHit(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f := newTestFile(t, o, 16)
	m1 := f.Map()
	m1.Touch(0)
	// New mapping (new process), page still resident.
	m2 := f.Map()
	m2.Touch(0)
	if m2.MajorFaults != 0 || m2.Faults != 1 {
		t.Fatalf("faults = %d major = %d, want minor fault", m2.Faults, m2.MajorFaults)
	}
	if m2.IOTime != 0 {
		t.Fatalf("minor fault cost I/O: %v", m2.IOTime)
	}
	sf := m2.SectionFaults(".text")
	if sf.Minor != 1 || sf.Major != 0 {
		t.Fatalf("section faults = %+v", sf)
	}
}

func TestDropCachesForcesMajorFaults(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f := newTestFile(t, o, 16)
	f.Map().Touch(0)
	o.DropCaches()
	m := f.Map()
	m.Touch(0)
	if m.MajorFaults != 1 {
		t.Fatalf("major faults after drop = %d", m.MajorFaults)
	}
}

func TestFaultAroundMapsCluster(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 4
	f := newTestFile(t, o, 16)
	m := f.Map()
	m.Touch(PageSize) // page 1: cluster [0,4)
	if m.Faults != 1 {
		t.Fatalf("faults = %d", m.Faults)
	}
	// Pages 0,2,3 are mapped without faults.
	m.Touch(0)
	m.Touch(2 * PageSize)
	m.Touch(3 * PageSize)
	if m.Faults != 1 {
		t.Fatalf("fault-around pages faulted: %d", m.Faults)
	}
	// Page 4 is outside the cluster.
	m.Touch(4 * PageSize)
	if m.Faults != 2 {
		t.Fatalf("page outside cluster did not fault: %d", m.Faults)
	}
}

func TestSequentialBeatsScattered(t *testing.T) {
	// The core premise of the paper: compact layouts fault less than
	// scattered ones for the same number of touched items.
	const pages = 256
	const touches = 32

	run := func(stride int) int64 {
		o := NewOS(SSD())
		f := newTestFile(t, o, pages)
		m := f.Map()
		for i := 0; i < touches; i++ {
			m.Touch(int64(i*stride) * PageSize)
		}
		return m.Faults
	}
	seq := run(1)
	scat := run(8)
	if seq >= scat {
		t.Fatalf("sequential faults %d >= scattered %d", seq, scat)
	}
}

func TestSectionAttribution(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f := newTestFile(t, o, 16)
	m := f.Map()
	m.Touch(0)            // .text
	m.Touch(8 * PageSize) // .svm_heap (file is 16 pages; heap at half)
	m.Touch(9 * PageSize) // .svm_heap
	if got := m.SectionFaults(".text").Total(); got != 1 {
		t.Errorf(".text faults = %d", got)
	}
	if got := m.SectionFaults(".svm_heap").Total(); got != 2 {
		t.Errorf(".svm_heap faults = %d", got)
	}
}

func TestTouchRangeSpansPages(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f := newTestFile(t, o, 16)
	m := f.Map()
	// An object straddling a page boundary touches two pages.
	m.TouchRange(PageSize-8, 16)
	if m.Faults != 2 {
		t.Fatalf("faults = %d, want 2", m.Faults)
	}
	m2 := f.Map()
	m2.TouchRange(0, 0)
	if m2.Faults != 0 {
		t.Fatalf("zero-length range faulted")
	}
}

func TestPageStates(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 4
	f := newTestFile(t, o, 16)
	m := f.Map()
	m.Touch(0) // cluster [0,4) mapped, page 0 faulted
	st := m.PageStates(".text")
	if len(st) != 8 {
		t.Fatalf("len = %d", len(st))
	}
	if st[0] != PageFaulted {
		t.Errorf("page 0 = %v, want faulted", st[0])
	}
	for i := 1; i < 4; i++ {
		if st[i] != PageMappedNoFault {
			t.Errorf("page %d = %v, want mapped-no-fault", i, st[i])
		}
	}
	for i := 4; i < 8; i++ {
		if st[i] != PageUntouched {
			t.Errorf("page %d = %v, want untouched", i, st[i])
		}
	}
	if m.PageStates("nope") != nil {
		t.Error("unknown section should return nil")
	}
}

func TestOverlappingSectionsRejected(t *testing.T) {
	o := NewOS(SSD())
	_, err := o.NewFile("x", 4*PageSize, []Section{
		{Name: "a", Off: 0, Len: 2 * PageSize},
		{Name: "b", Off: PageSize, Len: 2 * PageSize},
	})
	if err == nil {
		t.Fatal("overlap accepted")
	}
	_, err = o.NewFile("x", 4*PageSize, []Section{{Name: "a", Off: 0, Len: 5 * PageSize}})
	if err == nil {
		t.Fatal("out-of-bounds section accepted")
	}
}

func TestFaultCountInvariants(t *testing.T) {
	// Property: for any touch sequence, faults <= distinct pages touched,
	// major faults <= faults, and every touched page is mapped afterwards.
	f := func(offs []uint16) bool {
		o := NewOS(SSD())
		file, err := o.NewFile("f", 64*PageSize, nil)
		if err != nil {
			return false
		}
		m := file.Map()
		distinct := map[int64]bool{}
		for _, raw := range offs {
			off := int64(raw) % (64 * PageSize)
			m.Touch(off)
			distinct[off/PageSize] = true
		}
		if m.Faults > int64(len(distinct)) || m.MajorFaults > m.Faults {
			return false
		}
		for p := range distinct {
			if !m.mapped[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIOTimeMonotoneInFaults(t *testing.T) {
	o := NewOS(NFS())
	f := newTestFile(t, o, 64)
	m := f.Map()
	var prev time.Duration
	for i := 0; i < 8; i++ {
		m.Touch(int64(i*8) * PageSize)
		if m.IOTime <= prev {
			t.Fatalf("IOTime not increasing at touch %d", i)
		}
		prev = m.IOTime
	}
}

func TestTouchOutOfRangePanics(t *testing.T) {
	o := NewOS(SSD())
	f := newTestFile(t, o, 4)
	m := f.Map()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range touch")
		}
	}()
	m.Touch(f.Size)
}

// faultLog collects observed fault events for the tests below.
type faultLog struct{ events []FaultEvent }

func (l *faultLog) OnFault(ev FaultEvent) { l.events = append(l.events, ev) }

// TestFaultAroundTailClamped is the regression test for window clamping at
// the end of the file: a fault inside the last, partial fault-around
// cluster must never attribute counts past the section table or read/map
// pages past the file size.
func TestFaultAroundTailClamped(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 8
	// 13 pages: the last cluster [8, 16) extends 3 pages past the file.
	const pages = 13
	size := int64(pages) * PageSize
	f, err := o.NewFile("bin", size, []Section{
		{Name: ".text", Off: 0, Len: 10 * PageSize},
		{Name: ".svm_heap", Off: 10 * PageSize, Len: size - 10*PageSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := f.Map()
	log := &faultLog{}
	m.Observer = log
	m.Touch(size - 1) // last byte: page 12, cluster [8, 16) clamped to [8, 13)
	if m.Faults != 1 || m.MajorFaults != 1 {
		t.Fatalf("faults = %d major = %d", m.Faults, m.MajorFaults)
	}
	if got := f.ResidentPages(); got != 5 {
		t.Errorf("resident pages = %d, want clamped cluster of 5", got)
	}
	// The fault is attributed inside the section table, never past it.
	all := m.AllSectionFaults()
	if len(all) != len(f.Sections)+1 {
		t.Fatalf("AllSectionFaults length = %d", len(all))
	}
	if all[1].Major != 1 || all[0].Total() != 0 || all[2].Total() != 0 {
		t.Errorf("tail fault misattributed: %+v", all)
	}
	// The observed event's window is clamped to the file's page count.
	if len(log.events) != 1 {
		t.Fatalf("observed %d events", len(log.events))
	}
	ev := log.events[0]
	if ev.Section != 1 {
		t.Errorf("event section = %d, want 1 (.svm_heap)", ev.Section)
	}
	if ev.MappedEnd > pages || ev.ReadPages > pages {
		t.Errorf("window past file end: %+v", ev)
	}
	if ev.MappedStart != 8 || ev.MappedEnd != pages {
		t.Errorf("window = [%d,%d), want [8,%d)", ev.MappedStart, ev.MappedEnd, pages)
	}
	// Same at the tail under adaptive readahead with an escalated window.
	o2 := NewOS(SSD())
	o2.FaultAround = 4
	o2.AdaptiveReadahead = true
	o2.MaxReadahead = 32
	f2, err := o2.NewFile("bin2", size, []Section{{Name: ".text", Off: 0, Len: size}})
	if err != nil {
		t.Fatal(err)
	}
	m2 := f2.Map()
	log2 := &faultLog{}
	m2.Observer = log2
	for p := 0; p < pages; p++ {
		m2.Touch(int64(p) * PageSize)
	}
	for _, ev := range log2.events {
		if ev.MappedEnd > pages {
			t.Errorf("adaptive window past file end: %+v", ev)
		}
		if ev.Section != 0 {
			t.Errorf("event outside section table: %+v", ev)
		}
	}
}

// TestFaultObserverSeesEveryFault pins the observer contract: one event per
// fault, in order, with major/minor and section indices matching the
// mapping's own accounting.
func TestFaultObserverSeesEveryFault(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 2
	f := newTestFile(t, o, 16)
	m1 := f.Map()
	m1.Touch(0) // warm pages 0-1
	m2 := f.Map()
	log := &faultLog{}
	m2.Observer = log
	m2.Touch(0)            // minor (.text)
	m2.Touch(4 * PageSize) // major (.text)
	m2.Touch(8 * PageSize) // major (.svm_heap)
	if int64(len(log.events)) != m2.Faults {
		t.Fatalf("observed %d events, mapping counted %d faults", len(log.events), m2.Faults)
	}
	want := []struct {
		major   bool
		section int
	}{{false, 0}, {true, 0}, {true, 1}}
	for i, w := range want {
		ev := log.events[i]
		if ev.Major != w.major || ev.Section != w.section {
			t.Errorf("event %d = %+v, want major=%v section=%d", i, ev, w.major, w.section)
		}
		if ev.Page != int(ev.Off/PageSize) {
			t.Errorf("event %d page/offset mismatch: %+v", i, ev)
		}
		if ev.Major && ev.IONanos <= 0 {
			t.Errorf("major fault without I/O time: %+v", ev)
		}
		if !ev.Major && (ev.IONanos != 0 || ev.ReadPages != 0) {
			t.Errorf("minor fault with I/O: %+v", ev)
		}
	}
}

func TestAdaptiveReadaheadEscalates(t *testing.T) {
	// Sequential cluster-by-cluster faults escalate the window, so a long
	// sequential scan takes far fewer major faults than with the fixed
	// window; a strided scan gets no benefit.
	const pages = 256
	run := func(adaptive bool, stride int) int64 {
		o := NewOS(SSD())
		o.FaultAround = 2
		o.AdaptiveReadahead = adaptive
		o.MaxReadahead = 32
		f, err := o.NewFile("bin", pages*PageSize, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := f.Map()
		for p := 0; p < pages; p += stride {
			m.Touch(int64(p) * PageSize)
		}
		return m.MajorFaults
	}
	seqFixed := run(false, 1)
	seqAdaptive := run(true, 1)
	if seqAdaptive*2 >= seqFixed {
		t.Errorf("adaptive sequential faults %d not well below fixed %d", seqAdaptive, seqFixed)
	}
	stridedFixed := run(false, 8)
	stridedAdaptive := run(true, 8)
	if stridedAdaptive != stridedFixed {
		t.Errorf("adaptive changed strided faults: %d vs %d", stridedAdaptive, stridedFixed)
	}
}

func TestAdaptiveReadaheadWindowCapped(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 2
	o.AdaptiveReadahead = true
	o.MaxReadahead = 8
	f, err := o.NewFile("bin", 512*PageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Map()
	for p := 0; p < 512; p++ {
		m.Touch(int64(p) * PageSize)
	}
	// With a cap of 8 pages, steady state is one major fault per 8 pages.
	if m.MajorFaults < 512/8 {
		t.Errorf("major faults %d below the capped-window floor", m.MajorFaults)
	}
	if m.MajorFaults > 512/8+16 {
		t.Errorf("major faults %d: cap not respected", m.MajorFaults)
	}
}

func TestStreamCountersDisabledByDefault(t *testing.T) {
	o := NewOS(SSD())
	f := newTestFile(t, o, 16)
	m := f.Map()
	m.Touch(0)
	m.Touch(PageSize * 4)
	if got := m.StreamCounters(); got != nil {
		t.Fatalf("untagged mapping tracks streams: %+v", got)
	}
}

func TestStreamCountersPartitionTotals(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	o.CacheBudget = 2 // tight budget so later faults evict and re-fault
	f := newTestFile(t, o, 8)
	m := f.Map()
	// Interleave two streams over pages that alternate between them; with
	// a 2-page budget the second pass re-faults what the first evicted.
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < 8; p++ {
			m.SetStream(p % 2)
			m.Touch(int64(p) * PageSize)
		}
	}
	cs := m.StreamCounters()
	if len(cs) != 2 {
		t.Fatalf("got %d stream counters, want 2", len(cs))
	}
	var faults, major, refaults, ioNanos int64
	for i, c := range cs {
		if c.Stream != i {
			t.Errorf("counter %d carries stream id %d", i, c.Stream)
		}
		if c.Faults == 0 || c.MajorFaults == 0 {
			t.Errorf("stream %d took no faults: %+v", i, c)
		}
		faults += c.Faults
		major += c.MajorFaults
		refaults += c.Refaults
		ioNanos += c.IONanos
	}
	// Per-stream counters partition the mapping totals exactly.
	if faults != m.Faults || major != m.MajorFaults || refaults != m.Refaults {
		t.Errorf("stream sums faults/major/refaults = %d/%d/%d, mapping totals %d/%d/%d",
			faults, major, refaults, m.Faults, m.MajorFaults, m.Refaults)
	}
	if ioNanos != m.IOTime.Nanoseconds() {
		t.Errorf("stream I/O sum %dns != mapping IOTime %v", ioNanos, m.IOTime)
	}
	if m.Refaults == 0 {
		t.Error("tight budget produced no re-faults; the partition check is vacuous")
	}
	// The copy is detached from live counters.
	cs[0].Faults = -99
	if m.StreamCounters()[0].Faults == -99 {
		t.Error("StreamCounters returned a live reference")
	}
}

func TestSetStreamRejectsNegative(t *testing.T) {
	o := NewOS(SSD())
	f := newTestFile(t, o, 4)
	m := f.Map()
	defer func() {
		if recover() == nil {
			t.Fatal("SetStream accepted a negative id")
		}
	}()
	m.SetStream(-1)
}
