package osim

import "testing"

type accessLog struct{ events []AccessEvent }

func (l *accessLog) OnAccess(e AccessEvent) { l.events = append(l.events, e) }

// TestAccessStreamCoarse checks the page-transition coarsening: repeated
// touches of the same page emit one event, every page change emits one,
// faults are flagged, and the clock is strictly increasing.
func TestAccessStreamCoarse(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f, err := o.NewFile("bin", 8*PageSize, []Section{{Name: ".text", Off: 0, Len: 4 * PageSize}})
	if err != nil {
		t.Fatal(err)
	}
	m := f.Map()
	log := &accessLog{}
	m.AccessObserver = log

	m.Touch(0)            // page 0, fault
	m.Touch(100)          // page 0 again: no event
	m.Touch(PageSize)     // page 1, fault
	m.Touch(PageSize + 8) // page 1 again: no event
	m.Touch(0)            // back to page 0, mapped: non-fault event
	m.Touch(5 * PageSize) // page 5, outside .text, fault

	want := []struct {
		page    int
		section int
		faulted bool
	}{
		{0, 0, true},
		{1, 0, true},
		{0, 0, false},
		{5, 1, true},
	}
	if len(log.events) != len(want) {
		t.Fatalf("got %d access events, want %d: %+v", len(log.events), len(want), log.events)
	}
	var last int64
	for i, e := range log.events {
		w := want[i]
		if e.Page != w.page || e.Section != w.section || e.Faulted != w.faulted {
			t.Errorf("event %d = %+v, want page %d section %d faulted %v", i, e, w.page, w.section, w.faulted)
		}
		if e.Clock <= last {
			t.Errorf("event %d clock %d not increasing (prev %d)", i, e.Clock, last)
		}
		last = e.Clock
	}
	if got := o.Clock(); got < last {
		t.Errorf("OS.Clock() = %d, below last event clock %d", got, last)
	}
}
