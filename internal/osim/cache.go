package osim

// Page-cache behaviour under memory pressure. The cold-start evaluation
// only ever needs the all-or-nothing DropCaches between iterations; serve-
// mode scenarios (long-lived services with request bursts) additionally
// need pages to *leave* the cache while a process is running — because the
// kernel reclaims them under a resident budget, or because other tenants
// push them out between bursts. This file models both: a resident-page
// budget enforced with an LRU or clock replacement policy, an explicit
// Reclaim API for inter-burst pressure, and an EvictionObserver hook
// symmetric to FaultObserver so attribution can name which symbols' pages
// fell out of cache and came back (re-faults).
//
// Evicting a resident page also unmaps it from every live mapping of the
// file (the kernel's rmap walk): the next access takes a major re-fault,
// not a free hit on a stale PTE.

import "sort"

// EvictionPolicy selects the page-replacement algorithm the OS uses when
// the resident budget overflows or Reclaim is called.
type EvictionPolicy int

const (
	// EvictLRU evicts the exactly least-recently-used resident page.
	EvictLRU EvictionPolicy = iota
	// EvictClock runs the second-chance clock: a sweeping hand clears
	// per-page reference bits and evicts the first unreferenced page.
	EvictClock
)

// String names the policy.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case EvictClock:
		return "clock"
	}
	return "unknown"
}

// EvictCause says why a page left the page cache.
type EvictCause uint8

const (
	// EvictBudget: the resident-page budget overflowed on a fault's read.
	EvictBudget EvictCause = iota
	// EvictPressure: an explicit Reclaim call (inter-burst memory pressure).
	EvictPressure
	// EvictDrop: DropCaches (the cold-start reset between iterations).
	EvictDrop
)

// String names the cause.
func (c EvictCause) String() string {
	switch c {
	case EvictBudget:
		return "budget"
	case EvictPressure:
		return "pressure"
	case EvictDrop:
		return "drop"
	}
	return "unknown"
}

// EvictionEvent describes one page evicted from the page cache, for
// EvictionObserver implementations — the mirror image of FaultEvent.
type EvictionEvent struct {
	// Off is the page's byte offset; Page its index.
	Off  int64
	Page int
	// Section indexes File.Sections for the section containing the page
	// start, or len(Sections) when the page lies outside every section
	// (same convention as FaultEvent.Section).
	Section int
	// Cause says why the page was evicted.
	Cause EvictCause
	// Mapped reports whether the observing mapping had the page mapped
	// (and therefore lost a live translation, not just cache warmth).
	Mapped bool
}

// EvictionObserver receives every eviction affecting a mapping's file as
// it happens, symmetric to FaultObserver. Observers must not touch the
// mapping they observe.
type EvictionObserver interface {
	OnEvict(EvictionEvent)
}

// SectionPages pairs a section name with a page count — the unit of the
// residency and eviction telemetry.
type SectionPages struct {
	Section string
	Pages   int64
}

// ResidentPages returns the number of pages currently in the page cache
// across all files of the OS.
func (o *OS) ResidentPages() int { return o.residentTotal }

// Reclaim evicts up to n resident pages under the configured policy,
// modelling inter-burst memory pressure (another tenant's working set
// pushing this binary's pages out), and returns how many were evicted.
func (o *OS) Reclaim(n int) int {
	evicted := 0
	for evicted < n && o.residentTotal > 0 {
		if !o.evictVictim(nil, -1, EvictPressure, -1) {
			break
		}
		evicted++
	}
	return evicted
}

// ReclaimFraction evicts pct percent of the currently resident pages
// (rounded down) and returns how many were evicted.
func (o *OS) ReclaimFraction(pct int) int {
	if pct <= 0 {
		return 0
	}
	return o.Reclaim(o.residentTotal * pct / 100)
}

// enforceBudget evicts pages until the resident total fits the budget,
// never evicting the pinned (currently faulting) page. evictor is the
// tenant whose fault forced the evictions (-1 for none), for the
// interference matrix.
func (o *OS) enforceBudget(pin *File, pinPage int, evictor int) {
	if o.CacheBudget <= 0 {
		return
	}
	for o.residentTotal > o.CacheBudget {
		if !o.evictVictim(pin, pinPage, EvictBudget, evictor) {
			return
		}
	}
}

// evictVictim selects one victim page under the policy and evicts it.
// Returns false when no evictable page exists.
func (o *OS) evictVictim(pin *File, pinPage int, cause EvictCause, evictor int) bool {
	switch o.Policy {
	case EvictClock:
		return o.clockEvict(pin, pinPage, cause, evictor)
	default:
		return o.lruEvict(pin, pinPage, cause, evictor)
	}
}

// lruEvict evicts the resident page with the smallest last-use stamp
// (ties broken by file registration order, then page index, so victim
// selection is deterministic).
func (o *OS) lruEvict(pin *File, pinPage int, cause EvictCause, evictor int) bool {
	var victim *File
	vp := -1
	var vUse int64
	for _, f := range o.files {
		for p, res := range f.resident {
			if !res || (f == pin && p == pinPage) {
				continue
			}
			if victim == nil || f.lastUse[p] < vUse {
				victim, vp, vUse = f, p, f.lastUse[p]
			}
		}
	}
	if victim == nil {
		return false
	}
	o.evictPage(victim, vp, cause, evictor)
	return true
}

// clockEvict advances the global clock hand over the concatenated page
// space of all files: referenced resident pages get a second chance (bit
// cleared), the first unreferenced resident page is evicted.
func (o *OS) clockEvict(pin *File, pinPage int, cause EvictCause, evictor int) bool {
	total := 0
	for _, f := range o.files {
		total += len(f.resident)
	}
	if total == 0 {
		return false
	}
	// Two full sweeps suffice: the first clears every reference bit in the
	// worst case, the second must then find a victim if one exists.
	for i := 0; i < 2*total; i++ {
		pos := o.hand % total
		o.hand++
		f, p := o.pageAt(pos)
		if !f.resident[p] || (f == pin && p == pinPage) {
			continue
		}
		if f.ref[p] {
			f.ref[p] = false
			continue
		}
		o.evictPage(f, p, cause, evictor)
		return true
	}
	return false
}

// pageAt resolves a position in the concatenated page space to its file
// and page index.
func (o *OS) pageAt(pos int) (*File, int) {
	for _, f := range o.files {
		if pos < len(f.resident) {
			return f, pos
		}
		pos -= len(f.resident)
	}
	panic("osim: clock hand out of range")
}

// evictPage removes one resident page from the cache: accounting, rmap
// unmap from every live mapping, and observer notification. evictor is
// the tenant whose fault forced the eviction (-1 for external pressure
// or DropCaches), charged against the file's owning tenant in the
// interference matrix.
func (o *OS) evictPage(f *File, p int, cause EvictCause, evictor int) {
	f.resident[p] = false
	o.residentTotal--
	f.evicted++
	sec := f.pageSection(p)
	f.evictBySec[sec]++
	o.noteEviction(evictor, f.tenant)
	if cause == EvictDrop {
		// DropCaches is the deliberate cold-start reset between benchmark
		// iterations, not memory pressure: re-fault tracking restarts.
		f.everEvicted[p] = false
	} else {
		f.everEvicted[p] = true
	}
	off := int64(p) * PageSize
	for _, m := range f.mappings {
		wasMapped := m.mapped[p]
		if wasMapped {
			m.mapped[p] = false
		}
		if m.EvictObserver != nil {
			m.EvictObserver.OnEvict(EvictionEvent{
				Off: off, Page: p, Section: sec, Cause: cause, Mapped: wasMapped,
			})
		}
	}
}

// pageSection classifies a page by its start offset, the same way faults
// are classified by their fault offset: the index into Sections, or
// len(Sections) for pages outside every section.
func (f *File) pageSection(p int) int {
	off := int64(p) * PageSize
	for i := range f.Sections {
		if f.Sections[i].Contains(off) {
			return i
		}
	}
	return len(f.Sections)
}

// noteUse stamps a page's access recency for the replacement policies.
func (f *File) noteUse(p int) {
	f.os.clock++
	f.lastUse[p] = f.os.clock
	f.ref[p] = true
}

// ReadInPages returns the cumulative number of pages read into the cache
// for this file. Together with EvictedPages it reconciles exactly with
// residency: ResidentPages() == ReadInPages() - EvictedPages().
func (f *File) ReadInPages() int64 { return f.readIn }

// EvictedPages returns the cumulative number of pages evicted from the
// cache (any cause, including DropCaches).
func (f *File) EvictedPages() int64 { return f.evicted }

// RefaultedPages returns how many major faults re-read a page that had
// been evicted under pressure or budget since the last DropCaches — the
// serve-mode churn cost a layout either amortizes or pays repeatedly.
func (f *File) RefaultedPages() int64 { return f.refaults }

// EvictionsBySection returns the per-section eviction counts in section
// order, plus the catch-all bucket for pages outside every section.
func (f *File) EvictionsBySection() []SectionPages {
	out := make([]SectionPages, 0, len(f.Sections)+1)
	for i, s := range f.Sections {
		out = append(out, SectionPages{Section: s.Name, Pages: f.evictBySec[i]})
	}
	return append(out, SectionPages{Section: "<other>", Pages: f.evictBySec[len(f.Sections)]})
}

// ResidencyBySection returns the current resident page counts per section
// (plus the catch-all bucket) — the residency timeline's sample unit.
func (f *File) ResidencyBySection() []SectionPages {
	counts := make([]int64, len(f.Sections)+1)
	for p, res := range f.resident {
		if res {
			counts[f.pageSection(p)]++
		}
	}
	out := make([]SectionPages, 0, len(counts))
	for i, s := range f.Sections {
		out = append(out, SectionPages{Section: s.Name, Pages: counts[i]})
	}
	return append(out, SectionPages{Section: "<other>", Pages: counts[len(f.Sections)]})
}

// ResidentInSection returns how many pages of the named section are
// currently resident.
func (f *File) ResidentInSection(name string) int {
	n := 0
	for _, sp := range f.ResidencyBySection() {
		if sp.Section == name {
			n = int(sp.Pages)
		}
	}
	return n
}

// coldestResident returns the file's resident pages sorted coldest-first
// (for tests and diagnostics).
func (f *File) coldestResident() []int {
	var pages []int
	for p, res := range f.resident {
		if res {
			pages = append(pages, p)
		}
	}
	sort.Slice(pages, func(i, j int) bool {
		if f.lastUse[pages[i]] != f.lastUse[pages[j]] {
			return f.lastUse[pages[i]] < f.lastUse[pages[j]]
		}
		return pages[i] < pages[j]
	})
	return pages
}
