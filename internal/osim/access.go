package osim

// Coarse vm access clock. The replacement policies already stamp every
// page use with the OS's logical clock (File.noteUse); this file surfaces
// that clock to observers at page-transition granularity: a mapping
// reports an AccessEvent only when the touched page differs from the
// previously touched page of that mapping. That coarseness keeps the
// instrumented fast path to one integer compare per Touch while still
// exposing the temporal structure the affinity recorder needs — which
// pages were active in the same window, and in what order.

// AccessEvent describes one coarse page access of a mapping: the first
// touch of a page after the mapping touched some other page. Faults are
// access events too (Faulted reports which), so the access stream is a
// superset of the fault stream at page granularity.
type AccessEvent struct {
	// Off is the touched byte offset; Page the touched page index.
	Off  int64
	Page int
	// Section indexes File.Sections for the section containing Off, or
	// len(Sections) when the offset lies outside every section (same
	// convention as FaultEvent.Section).
	Section int
	// Clock is the OS logical access clock at this access. It advances on
	// every page use of any file of the OS, so it is a global temporal
	// coordinate across mappings.
	Clock int64
	// Faulted reports whether this access took a page fault (the matching
	// FaultEvent was delivered to the mapping's FaultObserver just before
	// this event).
	Faulted bool
}

// AccessObserver receives the coarse page-access stream of a mapping.
// Observers must not touch the mapping they observe.
type AccessObserver interface {
	OnAccess(AccessEvent)
}

// Clock returns the OS's logical access clock: a counter advanced on
// every page use of any file. It is the temporal coordinate carried by
// AccessEvent.Clock.
func (o *OS) Clock() int64 { return o.clock }

// noteAccess delivers the coarse access event for a touch of page p when
// the mapping has an AccessObserver and the touch crossed a page
// boundary (p differs from the mapping's previously touched page). The
// section is classified only on delivery, keeping the common same-page
// path to one compare.
func (m *Mapping) noteAccess(off int64, p int, faulted bool) {
	if m.AccessObserver == nil || p == m.lastAccessPage {
		m.lastAccessPage = p
		return
	}
	m.lastAccessPage = p
	secIdx := len(m.file.Sections)
	for i := range m.file.Sections {
		if m.file.Sections[i].Contains(off) {
			secIdx = i
			break
		}
	}
	m.AccessObserver.OnAccess(AccessEvent{
		Off: off, Page: p, Section: secIdx,
		Clock: m.file.os.clock, Faulted: faulted,
	})
}
