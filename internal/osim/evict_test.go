package osim

import (
	"testing"
	"testing/quick"
)

// evictLog records eviction events for observer-contract tests.
type evictLog struct {
	events []EvictionEvent
}

func (l *evictLog) OnEvict(ev EvictionEvent) { l.events = append(l.events, ev) }

func newBudgetOS(t *testing.T, pages int64, budget int, policy EvictionPolicy) (*OS, *File, *Mapping) {
	t.Helper()
	o := NewOS(SSD())
	o.FaultAround = 1 // one page per fault: precise control over residency
	o.CacheBudget = budget
	o.Policy = policy
	f, err := o.NewFile("bin", pages*PageSize, []Section{{Name: ".text", Off: 0, Len: pages * PageSize}})
	if err != nil {
		t.Fatal(err)
	}
	return o, f, f.Map()
}

func TestBudgetEvictsColdestPage(t *testing.T) {
	_, f, m := newBudgetOS(t, 8, 3, EvictLRU)
	m.Touch(0 * PageSize)
	m.Touch(1 * PageSize)
	m.Touch(2 * PageSize)
	if got := f.ResidentPages(); got != 3 {
		t.Fatalf("resident = %d, want 3", got)
	}
	// Page 0 is the coldest; faulting page 3 must evict it.
	m.Touch(3 * PageSize)
	if got := f.ResidentPages(); got != 3 {
		t.Fatalf("resident after overflow = %d, want 3 (budget)", got)
	}
	if f.resident[0] {
		t.Fatal("LRU kept the coldest page 0 resident")
	}
	for _, p := range []int{1, 2, 3} {
		if !f.resident[p] {
			t.Fatalf("page %d should be resident", p)
		}
	}
}

func TestLRURecencyRefreshOnAccess(t *testing.T) {
	_, f, m := newBudgetOS(t, 8, 3, EvictLRU)
	m.Touch(0 * PageSize)
	m.Touch(1 * PageSize)
	m.Touch(2 * PageSize)
	// Re-touch page 0 (mapped hit): it becomes the hottest, so page 1 is
	// now the LRU victim.
	m.Touch(0 * PageSize)
	m.Touch(3 * PageSize)
	if f.resident[1] {
		t.Fatal("page 1 should have been evicted (coldest after refresh)")
	}
	if !f.resident[0] {
		t.Fatal("page 0 was refreshed and must stay resident")
	}
}

func TestEvictionUnmapsFromLiveMapping(t *testing.T) {
	_, f, m := newBudgetOS(t, 8, 2, EvictLRU)
	m.Touch(0 * PageSize)
	m.Touch(1 * PageSize)
	m.Touch(2 * PageSize) // evicts page 0 and unmaps it
	major := m.MajorFaults
	m.Touch(0 * PageSize) // must major-re-fault, not hit a stale PTE
	if m.MajorFaults != major+1 {
		t.Fatalf("touch of evicted page: major faults %d, want %d", m.MajorFaults, major+1)
	}
	if m.Refaults != 1 {
		t.Fatalf("Refaults = %d, want 1", m.Refaults)
	}
	if f.RefaultedPages() != 1 {
		t.Fatalf("file RefaultedPages = %d, want 1", f.RefaultedPages())
	}
}

func TestClockSecondChance(t *testing.T) {
	_, f, m := newBudgetOS(t, 8, 3, EvictClock)
	m.Touch(0 * PageSize)
	m.Touch(1 * PageSize)
	m.Touch(2 * PageSize)
	// All ref bits are set; the hand must sweep once clearing them, then
	// evict the first unreferenced page (page 0).
	m.Touch(3 * PageSize)
	if got := f.ResidentPages(); got != 3 {
		t.Fatalf("resident = %d, want 3", got)
	}
	if f.resident[0] {
		t.Fatal("clock should have evicted page 0 after clearing ref bits")
	}
}

func TestReclaimEvictsRequestedCount(t *testing.T) {
	o, f, m := newBudgetOS(t, 16, 0, EvictLRU)
	for p := int64(0); p < 10; p++ {
		m.Touch(p * PageSize)
	}
	if got := o.Reclaim(4); got != 4 {
		t.Fatalf("Reclaim(4) = %d", got)
	}
	if got := f.ResidentPages(); got != 6 {
		t.Fatalf("resident after reclaim = %d, want 6", got)
	}
	// LRU evicts the four coldest: pages 0..3.
	for p := 0; p < 4; p++ {
		if f.resident[p] {
			t.Fatalf("page %d should have been reclaimed", p)
		}
	}
	// Reclaiming more than resident stops at empty.
	if got := o.Reclaim(100); got != 6 {
		t.Fatalf("Reclaim(100) = %d, want 6", got)
	}
	if o.ResidentPages() != 0 {
		t.Fatalf("resident after full reclaim = %d", o.ResidentPages())
	}
}

func TestReclaimFraction(t *testing.T) {
	o, _, m := newBudgetOS(t, 16, 0, EvictLRU)
	for p := int64(0); p < 10; p++ {
		m.Touch(p * PageSize)
	}
	if got := o.ReclaimFraction(50); got != 5 {
		t.Fatalf("ReclaimFraction(50) = %d, want 5", got)
	}
	if got := o.ReclaimFraction(0); got != 0 {
		t.Fatalf("ReclaimFraction(0) = %d, want 0", got)
	}
}

// TestResidencyReconciliation is the acceptance-criteria invariant: at
// every point in time, for every file, resident == readIn - evicted, and
// the per-section eviction counts sum to the eviction total.
func TestResidencyReconciliation(t *testing.T) {
	check := func(t *testing.T, o *OS, f *File) {
		t.Helper()
		if got, want := int64(f.ResidentPages()), f.ReadInPages()-f.EvictedPages(); got != want {
			t.Fatalf("resident=%d, readIn-evicted=%d-%d=%d", got, f.ReadInPages(), f.EvictedPages(), want)
		}
		var sum int64
		for _, sp := range f.EvictionsBySection() {
			sum += sp.Pages
		}
		if sum != f.EvictedPages() {
			t.Fatalf("per-section evictions sum %d != total %d", sum, f.EvictedPages())
		}
		var resBySec int64
		for _, sp := range f.ResidencyBySection() {
			resBySec += sp.Pages
		}
		if resBySec != int64(f.ResidentPages()) {
			t.Fatalf("per-section residency sum %d != resident %d", resBySec, f.ResidentPages())
		}
	}
	for _, policy := range []EvictionPolicy{EvictLRU, EvictClock} {
		t.Run(policy.String(), func(t *testing.T) {
			o := NewOS(SSD())
			o.CacheBudget = 6
			o.Policy = policy
			f, err := o.NewFile("bin", 32*PageSize, []Section{
				{Name: ".text", Off: 0, Len: 16 * PageSize},
				{Name: ".svm_heap", Off: 16 * PageSize, Len: 12 * PageSize},
			})
			if err != nil {
				t.Fatal(err)
			}
			m := f.Map()
			seq := []int64{0, 5, 9, 17, 22, 3, 17, 29, 1, 12, 26, 0, 8, 31, 17}
			for _, p := range seq {
				m.Touch(p * PageSize)
				check(t, o, f)
			}
			o.Reclaim(3)
			check(t, o, f)
			for _, p := range seq {
				m.Touch(p*PageSize + 7)
				check(t, o, f)
			}
			o.DropCaches()
			check(t, o, f)
			if f.ResidentPages() != 0 {
				t.Fatalf("resident after DropCaches = %d", f.ResidentPages())
			}
		})
	}
}

// TestReconciliationQuick drives random touch/reclaim sequences through
// both policies and checks the residency identity holds throughout.
func TestReconciliationQuick(t *testing.T) {
	prop := func(ops []uint16, clockPolicy bool, budget uint8) bool {
		o := NewOS(SSD())
		o.CacheBudget = int(budget % 24)
		if clockPolicy {
			o.Policy = EvictClock
		}
		o.FaultAround = 4
		f, err := o.NewFile("bin", 64*PageSize, []Section{
			{Name: ".text", Off: 0, Len: 40 * PageSize},
		})
		if err != nil {
			return false
		}
		m := f.Map()
		for _, op := range ops {
			switch op % 8 {
			case 6:
				o.Reclaim(int(op>>8) % 8)
			case 7:
				o.DropCaches()
			default:
				m.Touch((int64(op>>3) % 64) * PageSize)
			}
			if int64(f.ResidentPages()) != f.ReadInPages()-f.EvictedPages() {
				return false
			}
			if o.CacheBudget > 0 && o.ResidentPages() > o.CacheBudget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionObserverSeesEveryEviction(t *testing.T) {
	_, f, m := newBudgetOS(t, 8, 2, EvictLRU)
	lg := &evictLog{}
	m.EvictObserver = lg
	m.Touch(0 * PageSize)
	m.Touch(1 * PageSize)
	m.Touch(2 * PageSize) // budget eviction of page 0
	if len(lg.events) != 1 {
		t.Fatalf("events = %d, want 1", len(lg.events))
	}
	ev := lg.events[0]
	if ev.Page != 0 || ev.Cause != EvictBudget || !ev.Mapped || ev.Section != 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.Off != 0 {
		t.Fatalf("event offset = %d", ev.Off)
	}
	f.os.Reclaim(1) // pressure eviction of page 1
	if len(lg.events) != 2 || lg.events[1].Cause != EvictPressure {
		t.Fatalf("expected pressure event, got %+v", lg.events)
	}
	f.os.DropCaches() // drop eviction of the last resident page
	last := lg.events[len(lg.events)-1]
	if last.Cause != EvictDrop {
		t.Fatalf("expected drop event, got %+v", last)
	}
	if int64(len(lg.events)) != f.EvictedPages() {
		t.Fatalf("observer saw %d events, file evicted %d", len(lg.events), f.EvictedPages())
	}
}

func TestReleaseStopsUnmapAndEvents(t *testing.T) {
	_, f, m := newBudgetOS(t, 8, 0, EvictLRU)
	lg := &evictLog{}
	m.EvictObserver = lg
	m.Touch(0 * PageSize)
	m.Release()
	f.os.DropCaches()
	if len(lg.events) != 0 {
		t.Fatalf("released mapping still observed %d events", len(lg.events))
	}
	// The released mapping's view is frozen: page 0 stays mapped there.
	if !m.mapped[0] {
		t.Fatal("released mapping lost its page table")
	}
}

func TestDropCachesResetsRefaultTracking(t *testing.T) {
	_, f, m := newBudgetOS(t, 8, 2, EvictLRU)
	m.Touch(0 * PageSize)
	m.Touch(1 * PageSize)
	m.Touch(2 * PageSize) // evicts 0
	f.os.DropCaches()
	m2 := f.Map()
	m2.Touch(0 * PageSize)
	if m2.Refaults != 0 {
		t.Fatalf("cold-start fault after DropCaches counted as refault")
	}
	if f.RefaultedPages() != 0 {
		t.Fatalf("file refaults after DropCaches = %d", f.RefaultedPages())
	}
}

func TestEvictionsBySectionAttribution(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f, err := o.NewFile("bin", 8*PageSize, []Section{
		{Name: ".text", Off: 0, Len: 4 * PageSize},
		{Name: ".svm_heap", Off: 4 * PageSize, Len: 4 * PageSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := f.Map()
	m.Touch(0 * PageSize)
	m.Touch(5 * PageSize)
	m.Touch(6 * PageSize)
	o.Reclaim(3)
	by := f.EvictionsBySection()
	if by[0].Section != ".text" || by[0].Pages != 1 {
		t.Fatalf(".text evictions = %+v", by[0])
	}
	if by[1].Section != ".svm_heap" || by[1].Pages != 2 {
		t.Fatalf(".svm_heap evictions = %+v", by[1])
	}
}

func TestResidentInSection(t *testing.T) {
	o := NewOS(SSD())
	o.FaultAround = 1
	f, err := o.NewFile("bin", 8*PageSize, []Section{
		{Name: ".text", Off: 0, Len: 4 * PageSize},
		{Name: ".svm_heap", Off: 4 * PageSize, Len: 4 * PageSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := f.Map()
	m.Touch(1 * PageSize)
	m.Touch(4 * PageSize)
	m.Touch(7 * PageSize)
	if got := f.ResidentInSection(".text"); got != 1 {
		t.Fatalf("resident .text = %d, want 1", got)
	}
	if got := f.ResidentInSection(".svm_heap"); got != 2 {
		t.Fatalf("resident .svm_heap = %d, want 2", got)
	}
}

func TestBudgetNeverEvictsFaultingPage(t *testing.T) {
	// Budget of 1: every fault must keep exactly its own page.
	_, f, m := newBudgetOS(t, 8, 1, EvictLRU)
	for p := int64(0); p < 8; p++ {
		m.Touch(p * PageSize)
		if f.ResidentPages() != 1 {
			t.Fatalf("resident = %d, want 1", f.ResidentPages())
		}
		if !f.resident[p] {
			t.Fatalf("faulting page %d evicted by its own fault", p)
		}
	}
}

func TestBudgetWithFaultAroundWindow(t *testing.T) {
	// A fault-around read larger than the budget still completes, then
	// the budget trims the cache back down keeping the faulting page.
	o := NewOS(SSD())
	o.FaultAround = 8
	o.CacheBudget = 4
	f, err := o.NewFile("bin", 16*PageSize, []Section{{Name: ".text", Off: 0, Len: 16 * PageSize}})
	if err != nil {
		t.Fatal(err)
	}
	m := f.Map()
	m.Touch(2 * PageSize)
	if got := f.ResidentPages(); got != 4 {
		t.Fatalf("resident = %d, want 4 (budget)", got)
	}
	if !f.resident[2] {
		t.Fatal("faulting page not resident")
	}
	if int64(f.ResidentPages()) != f.ReadInPages()-f.EvictedPages() {
		t.Fatalf("reconciliation broken: %d != %d-%d", f.ResidentPages(), f.ReadInPages(), f.EvictedPages())
	}
}

func TestPolicyAndCauseStrings(t *testing.T) {
	if EvictLRU.String() != "lru" || EvictClock.String() != "clock" {
		t.Fatal("policy names")
	}
	if EvictBudget.String() != "budget" || EvictPressure.String() != "pressure" || EvictDrop.String() != "drop" {
		t.Fatal("cause names")
	}
	if EvictionPolicy(99).String() != "unknown" || EvictCause(99).String() != "unknown" {
		t.Fatal("unknown names")
	}
}
