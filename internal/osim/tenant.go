package osim

// Multi-tenant page-cache accounting. The fleet observatory serves N
// tenants (one long-lived image each) from a single OS with one shared
// CacheBudget, and needs every fault, eviction and re-fault charged to a
// tenant so cross-tenant interference is attributable: which tenant's
// faults pushed whose pages out, and who paid the re-fault bill. Tenancy
// mirrors the per-stream accounting of serve mode (SetStream): tagging is
// explicit, the counters partition the shared totals exactly (enforced by
// test), and an OS that never tags a tenant pays nothing.
//
// Ownership versus charge: files are *owned* by the tenant that created
// them (OS.DefaultTenant at NewFile time), while faults are *charged* to
// the tenant tagged on the faulting mapping. The interference matrix
// crosses the two — entry [i][j] counts pages owned by tenant j-1 that
// tenant i-1's faults evicted, with row 0 for external pressure (Reclaim,
// DropCaches) and column 0 for untenanted files.

import (
	"fmt"
	"time"
)

// TenantFaults is the fault traffic one tenant incurred across every
// mapping of the OS — the fleet-mode contention accounting, where several
// tenants' processes compete for one page-cache budget. The per-tenant
// counters partition the fault totals exactly (enforced by test): every
// fault is charged to the tenant tagged on the mapping that took it.
type TenantFaults struct {
	Tenant      int   `json:"tenant"`
	Faults      int64 `json:"faults"`
	MajorFaults int64 `json:"major_faults"`
	Refaults    int64 `json:"refaults"`
	IONanos     int64 `json:"io_nanos"`
}

// SetTenant tags the mapping with the tenant that owns the accesses until
// the next SetTenant: faults taken while the tag is t are charged to
// tenant t's TenantFaults and evictions those faults force are attributed
// to t in the interference matrix. The first call enables tenant
// accounting on the OS; ids must be non-negative and are expected to stay
// small (the fleet harness uses 0..Tenants-1).
func (m *Mapping) SetTenant(t int) {
	if t < 0 {
		panic(fmt.Sprintf("osim: negative tenant id %d", t))
	}
	m.tenant = t
	m.file.os.enableTenants(t)
}

// Tenant returns the tenant id the mapping currently charges (-1 when
// untenanted).
func (m *Mapping) Tenant() int { return m.tenant }

// Tenant returns the tenant owning the file's pages (-1 when untenanted).
// Ownership is fixed at NewFile time from OS.DefaultTenant.
func (f *File) Tenant() int { return f.tenant }

// enableTenants turns tenant accounting on (idempotent) and grows the
// per-tenant counters and the interference matrix to cover tenant t.
func (o *OS) enableTenants(t int) {
	for len(o.perTenant) <= t {
		o.perTenant = append(o.perTenant, TenantFaults{Tenant: len(o.perTenant)})
	}
	if o.evictedBy == nil {
		o.evictedBy = [][]int64{{0}}
	}
	o.growMatrix(t, t)
}

// growMatrix ensures the interference matrix covers evictor row and owner
// column for the given tenant ids (id -1 maps to row/column 0), keeping
// the matrix rectangular.
func (o *OS) growMatrix(evictor, owner int) {
	width := len(o.evictedBy[0])
	if owner+2 > width {
		width = owner + 2
		for i := range o.evictedBy {
			for len(o.evictedBy[i]) < width {
				o.evictedBy[i] = append(o.evictedBy[i], 0)
			}
		}
	}
	for len(o.evictedBy) <= evictor+1 {
		o.evictedBy = append(o.evictedBy, make([]int64, width))
	}
}

// noteEviction records one eviction in the interference matrix: the
// tenant whose fault (or the external pressure, evictor -1) evicted a
// page of the owning tenant's file. No-op until tenancy is enabled.
func (o *OS) noteEviction(evictor, owner int) {
	if o.evictedBy == nil {
		return
	}
	o.growMatrix(evictor, owner)
	o.evictedBy[evictor+1][owner+1]++
}

// chargeTenant attributes one fault to the mapping's tenant, beside the
// per-stream charge — tenancy and streams are orthogonal partitions of
// the same fault totals.
func (m *Mapping) chargeTenant(major, refault bool, faultIO time.Duration) {
	if m.tenant < 0 {
		return
	}
	tf := &m.file.os.perTenant[m.tenant]
	tf.Faults++
	if major {
		tf.MajorFaults++
		tf.IONanos += faultIO.Nanoseconds()
	}
	if refault {
		tf.Refaults++
	}
}

// TenantCounters returns a copy of the per-tenant fault counters, one
// entry per tenant id seen (nil when tenancy was never enabled).
func (o *OS) TenantCounters() []TenantFaults {
	if o.perTenant == nil {
		return nil
	}
	return append([]TenantFaults(nil), o.perTenant...)
}

// InterferenceMatrix returns a copy of the eviction interference matrix:
// entry [i][j] counts pages owned by tenant j-1 that tenant i-1's faults
// evicted. Row 0 is external pressure (Reclaim, DropCaches); column 0 is
// untenanted files. The entries partition every eviction since tenancy
// was enabled (enforced by test): the whole matrix sums to the total
// evictions, and column j+1 sums to tenant j's evicted pages. Nil when
// tenancy was never enabled.
func (o *OS) InterferenceMatrix() [][]int64 {
	if o.evictedBy == nil {
		return nil
	}
	out := make([][]int64, len(o.evictedBy))
	for i, row := range o.evictedBy {
		out[i] = append([]int64(nil), row...)
	}
	return out
}

// TenantEvictions returns the cumulative pages evicted (any cause) from
// files owned by tenant t — the owner-side count the interference
// matrix's column must reconcile with.
func (o *OS) TenantEvictions(t int) int64 {
	var n int64
	for _, f := range o.files {
		if f.tenant == t {
			n += f.evicted
		}
	}
	return n
}

// TenantRefaults returns the cumulative re-faulted pages of files owned
// by tenant t.
func (o *OS) TenantRefaults(t int) int64 {
	var n int64
	for _, f := range o.files {
		if f.tenant == t {
			n += f.refaults
		}
	}
	return n
}

// TenantResidentPages returns how many pages of tenant t's files are
// currently resident.
func (o *OS) TenantResidentPages(t int) int {
	n := 0
	for _, f := range o.files {
		if f.tenant == t {
			n += f.ResidentPages()
		}
	}
	return n
}

// SetTenantQuota caps the resident pages of the files owned by tenant t.
// When a fault's read pushes the tenant past its quota, the OS evicts the
// tenant's own coldest pages (LRU within the tenant, self-charged in the
// interference matrix) until it fits again — residency isolation paid for
// by the tenant's own churn, the arbitration policy the fleet scorecards
// measure. pages <= 0 removes the quota.
func (o *OS) SetTenantQuota(t, pages int) {
	if t < 0 {
		panic(fmt.Sprintf("osim: negative tenant id %d", t))
	}
	if pages <= 0 {
		delete(o.tenantQuota, t)
		return
	}
	if o.tenantQuota == nil {
		o.tenantQuota = make(map[int]int)
	}
	o.tenantQuota[t] = pages
	o.enableTenants(t)
}

// TenantQuota returns tenant t's residency quota in pages (0: none).
func (o *OS) TenantQuota(t int) int { return o.tenantQuota[t] }

// enforceQuota evicts tenant t's own coldest pages while it exceeds its
// residency quota, never evicting the pinned (currently faulting) page.
func (o *OS) enforceQuota(t int, pin *File, pinPage int) {
	if t < 0 || o.tenantQuota == nil {
		return
	}
	q, ok := o.tenantQuota[t]
	if !ok {
		return
	}
	for o.TenantResidentPages(t) > q {
		if !o.tenantLRUEvict(t, pin, pinPage) {
			return
		}
	}
}

// tenantLRUEvict evicts tenant t's least-recently-used resident page
// (the same deterministic tie-breaks as lruEvict: file registration
// order, then page index), charged to t itself.
func (o *OS) tenantLRUEvict(t int, pin *File, pinPage int) bool {
	var victim *File
	vp := -1
	var vUse int64
	for _, f := range o.files {
		if f.tenant != t {
			continue
		}
		for p, res := range f.resident {
			if !res || (f == pin && p == pinPage) {
				continue
			}
			if victim == nil || f.lastUse[p] < vUse {
				victim, vp, vUse = f, p, f.lastUse[p]
			}
		}
	}
	if victim == nil {
		return false
	}
	o.evictPage(victim, vp, EvictBudget, t)
	return true
}
