package postproc

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadProfilesHostileInput covers the CSV readers' failure paths:
// lines past the scanner's token limit, malformed hex, and signatures the
// writer could never have produced.
func TestReadProfilesHostileInput(t *testing.T) {
	t.Run("code-overlong-line", func(t *testing.T) {
		if _, err := ReadCodeProfile(strings.NewReader(strings.Repeat("x", 1<<20))); err == nil {
			t.Error("megabyte line accepted")
		}
	})
	t.Run("code-embedded-cr", func(t *testing.T) {
		_, err := ReadCodeProfile(strings.NewReader("a.b(1)\rc.d(2)\n"))
		if err == nil || !strings.Contains(err.Error(), "carriage return") {
			t.Errorf("err = %v, want carriage-return rejection", err)
		}
	})
	t.Run("code-crlf-ok", func(t *testing.T) {
		// Trailing \r before \n is line-ending noise, not content.
		got, err := ReadCodeProfile(strings.NewReader("a.b(1)\r\nc.d(2)\r\n"))
		if err != nil || len(got) != 2 || got[0] != "a.b(1)" {
			t.Errorf("got %v, %v", got, err)
		}
	})
	t.Run("code-blank-and-space", func(t *testing.T) {
		got, err := ReadCodeProfile(strings.NewReader("\n  a.b(1)  \n\n\t\n"))
		if err != nil || len(got) != 1 || got[0] != "a.b(1)" {
			t.Errorf("got %v, %v", got, err)
		}
	})
	t.Run("heap-bad-hex", func(t *testing.T) {
		for _, in := range []string{"zz\n", "0x10\n", "-1\n", "1 2\n", "10000000000000000\n"} {
			if _, err := ReadHeapProfile(strings.NewReader(in)); err == nil {
				t.Errorf("malformed hex %q accepted", in)
			}
		}
	})
	t.Run("heap-overlong-line", func(t *testing.T) {
		if _, err := ReadHeapProfile(strings.NewReader(strings.Repeat("1", 1<<20))); err == nil {
			t.Error("megabyte line accepted")
		}
	})
	t.Run("write-rejects-newline", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteCodeProfile(&buf, []string{"a\nb"}); err == nil {
			t.Error("newline in signature accepted")
		}
		if err := WriteCodeProfile(&buf, []string{"a\rb"}); err == nil {
			t.Error("carriage return in signature accepted")
		}
	})
}

// FuzzProfileCSV asserts the profile CSV readers never panic, and that
// anything they accept re-serializes canonically: encode(decode(data))
// must be a fixed point of a further decode/encode round trip.
func FuzzProfileCSV(f *testing.F) {
	var code bytes.Buffer
	if err := WriteCodeProfile(&code, []string{"App.main()", "Sieve.run(2)", "Heap.get(1)"}); err != nil {
		f.Fatal(err)
	}
	f.Add(code.Bytes())
	var hp bytes.Buffer
	if err := WriteHeapProfile(&hp, []uint64{1, 0xdeadbeef, 1 << 62}); err != nil {
		f.Fatal(err)
	}
	f.Add(hp.Bytes())
	f.Add([]byte("a.b(1)\r\nc.d(2)\n"))
	f.Add([]byte("ff\nZZ\n"))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		if sigs, err := ReadCodeProfile(bytes.NewReader(data)); err == nil {
			var b1 bytes.Buffer
			if err := WriteCodeProfile(&b1, sigs); err != nil {
				t.Fatalf("re-encoding accepted code profile: %v", err)
			}
			again, err := ReadCodeProfile(bytes.NewReader(b1.Bytes()))
			if err != nil {
				t.Fatalf("re-decoding own code CSV: %v", err)
			}
			var b2 bytes.Buffer
			if err := WriteCodeProfile(&b2, again); err != nil {
				t.Fatalf("second code re-encode: %v", err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatal("code profile CSV is not canonical under round trip")
			}
		}
		if ids, err := ReadHeapProfile(bytes.NewReader(data)); err == nil {
			var b1 bytes.Buffer
			if err := WriteHeapProfile(&b1, ids); err != nil {
				t.Fatalf("re-encoding accepted heap profile: %v", err)
			}
			again, err := ReadHeapProfile(bytes.NewReader(b1.Bytes()))
			if err != nil {
				t.Fatalf("re-decoding own heap CSV: %v", err)
			}
			var b2 bytes.Buffer
			if err := WriteHeapProfile(&b2, again); err != nil {
				t.Fatalf("second heap re-encode: %v", err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatal("heap profile CSV is not canonical under round trip")
			}
		}
	})
}
